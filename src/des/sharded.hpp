// Conservative parallel DES over spatial shards.
//
// A ShardedSimulator splits one logical simulation into N shard
// Simulators plus the original "main" (coordinator) Simulator. Hosts are
// statically owned by shards (the owner map is derived from the initial
// MSS-cell placement); every per-host event — workload operations,
// mobility timers, message legs keyed by destination — lives in the
// owner's queue, while globally ordered machinery (coordinated-protocol
// markers, checkpoint-transfer timers, crash injection, analysis hooks)
// stays on the main queue.
//
// Synchronization is conservative with lookahead L = the minimum network
// leg latency (0.01 tu wired/wireless by default). Every cross-host
// interaction travels through the network as a scheduled leg of delay
// >= L, so with
//
//     s = min over shards of the next pending event time,
//     m = the main queue's next event time,
//
// every event in [s, min(s + L, m)) is causally independent across
// shards: a message sent at t >= s cannot be seen by another shard
// before t + L >= s + L. Each window therefore runs all shards in
// parallel up to the horizon H = min(s + L, m), then a barrier drains
// cross-shard effects (egress message legs, trace buffers, journals)
// in deterministic (time, source shard, index) order. Main-queue events
// execute solo between windows whenever m <= s, which keeps every
// deterministic-time event (markers, crash plans) globally ordered
// against all shard work.
//
// Determinism: shard queues order by (time, seq) exactly like the
// sequential engine; the barrier merge is the cross-shard tie-break on
// (time, src shard, src index). All stochastic event times are
// continuous draws, so cross-shard ties have measure zero and the merged
// trace reproduces the sequential trace bit-identically — the audit and
// the golden Fig.1 hash hold for every shard count and queue kind.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "des/simulator.hpp"
#include "des/trace.hpp"
#include "des/types.hpp"

namespace mobichk::des {

/// Identity of the shard the current thread is executing a window for.
/// Installed around Simulator::run_window by the shard runner; domain
/// layers consult it to route clocks, counters and journals.
struct ShardContext {
  u32 shard = 0;
  Simulator* sim = nullptr;
};

/// The calling thread's shard context (nullptr on the coordinator and in
/// sequential runs).
ShardContext* current_shard() noexcept;
void set_current_shard(ShardContext* ctx) noexcept;

/// Barrier-side merge hooks, implemented by the domain composition (the
/// Experiment wires Network + ProtocolHarness in here). Called on the
/// coordinator thread, with all shard threads parked, after every window.
class ShardHooks {
 public:
  virtual ~ShardHooks() = default;
  /// `window_end` is the exclusive horizon the window just ran to.
  virtual void on_window_merge(Time window_end) = 0;
};

/// TLS-routing trace sink for sharded runs. Records emitted inside a
/// shard window are buffered per shard (each buffer is time-ordered by
/// construction, because a shard executes events in time order) and
/// flushed to the downstream sink at the barrier in merged
/// (time, shard, index) order; coordinator-side records pass straight
/// through, which is correct because every buffered record is flushed
/// before the coordinator executes its next event.
class ShardTraceMux final : public TraceSink {
 public:
  ShardTraceMux(u32 n_shards, TraceSink* downstream);

  void record(const TraceRecord& rec) override {
    if (ShardContext* c = current_shard()) {
      buffers_[c->shard].recs.push_back(rec);
    } else {
      downstream_->record(rec);
    }
  }

  /// Records currently buffered for `shard` (the index the next record
  /// from that shard will land at — used to register patch sites).
  usize buffered(u32 shard) const noexcept { return buffers_[shard].recs.size(); }

  /// Rewrites the `a` operand of a buffered record (deferred message-id
  /// assignment patches kSend records before they are hashed).
  void patch_a(u32 shard, usize idx, u64 a) { buffers_[shard].recs[idx].a = a; }

  /// Merges all buffers into the downstream sink and clears them.
  void flush();

 private:
  struct alignas(64) Buffer {
    std::vector<TraceRecord> recs;
  };

  TraceSink* downstream_;
  std::vector<Buffer> buffers_;
};

/// Coordinates N shard Simulators against a main Simulator with the
/// conservative window protocol described above.
class ShardedSimulator {
 public:
  /// `lookahead` must be a strict lower bound on every cross-shard
  /// interaction delay (the minimum network leg latency).
  ShardedSimulator(Simulator& main, u32 n_shards, QueueKind queue_kind, Time lookahead);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  /// Static owner map: owner_shard[host] = shard index. Must cover every
  /// host id that routing will see.
  void set_owner_map(std::vector<u32> owner_shard) { owner_shard_ = std::move(owner_shard); }
  void set_hooks(ShardHooks* hooks) noexcept { hooks_ = hooks; }

  u32 n_shards() const noexcept { return static_cast<u32>(shards_.size()); }
  u32 shard_of(u32 owner) const { return owner_shard_[owner]; }
  Simulator& shard_sim(u32 shard) { return *shards_[shard]; }
  Simulator& main_sim() noexcept { return main_; }
  Time lookahead() const noexcept { return lookahead_; }

  /// The sharded equivalent of main.run_until(t_end): executes every
  /// event with time <= t_end across all queues, then aligns every clock
  /// to t_end.
  void run_until(Time t_end);

  // -- accounting --------------------------------------------------------
  u64 sync_rounds() const noexcept { return sync_rounds_; }
  /// Wall seconds the coordinator spent waiting for shard windows to
  /// finish (load imbalance + barrier cost).
  f64 barrier_stall_seconds() const noexcept { return barrier_stall_; }
  u64 events_executed() const;
  /// Field-wise sum over all engines (max_pending is the max).
  SimInvariants invariants() const;
  bool invariants_ok() const;

  /// When enabled, records every window horizon (explain uses this to map
  /// event times to barrier windows).
  void enable_window_log(bool on) noexcept { log_windows_ = on; }
  const std::vector<Time>& window_log() const noexcept { return window_log_; }

  /// Attaches (or detaches, with nullptr) a host-time profiler. Lane 0
  /// goes to the main engine (coordinator work), lane 1+s to shard s;
  /// window execution and barrier waits are journaled per lane. Must be
  /// called before run_until.
  void set_profiler(obs::Profiler* prof);

 private:
  void start_workers();
  void worker_loop(u32 shard);
  void run_window(Time h_excl, Time cap);

  Simulator& main_;
  Time lookahead_;
  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<u32> owner_shard_;
  ShardHooks* hooks_ = nullptr;
  obs::Profiler* prof_ = nullptr;

  // Window release/park protocol: the coordinator publishes the window
  // bounds, bumps go_gen_ (release) to wake workers, runs shard 0 inline,
  // then waits for done_count_ (acquire) — a generation-counter barrier
  // with no locks on the steady-state path.
  std::atomic<u64> go_gen_{0};
  std::atomic<u32> done_count_{0};
  std::atomic<bool> quit_{false};
  Time window_h_ = 0.0;
  Time window_cap_ = 0.0;
  std::vector<std::thread> workers_;
  bool workers_started_ = false;

  u64 sync_rounds_ = 0;
  f64 barrier_stall_ = 0.0;
  bool log_windows_ = false;
  std::vector<Time> window_log_;
};

/// Routes a driver's self-rescheduling through the owning shard.
///
/// Inside a shard window the TLS context wins (a driver rescheduling the
/// host it just serviced stays on that host's shard, with the shard's
/// clock). On the coordinator of a sharded run (`declared.sharded()` set),
/// per-host payload kinds (workload ops, mobility timers) are filed into
/// the owner shard's queue at the main clock's absolute time; everything
/// else — and every call in a plain sequential run — goes to `declared`
/// unchanged.
EventHandle route_schedule_after(Simulator& declared, Time dt, const EventPayload& payload);

}  // namespace mobichk::des
