// Exporters for one observed run:
//  * write_metrics_jsonl — newline-delimited JSON: one "event" line per
//    timeline entry (time-ordered), then one "metric" line per registry
//    sample. Greppable, streamable, trivially diffable.
//  * write_chrome_trace — Chrome trace-event JSON (the chrome://tracing /
//    Perfetto "JSON Object Format"): per-host tracks, checkpoint events
//    with the triggering rule, mobility markers, send/deliver slices and
//    flow arrows ("s"/"f") linking each send to its delivery and to any
//    forced checkpoint it triggered.
//
// The obs layer sits below sim/, so these implement their own minimal
// JSON emission (escaping + shortest-round-trip doubles) rather than
// reusing sim::JsonWriter.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/observer.hpp"
#include "obs/prof.hpp"

namespace mobichk::obs {

void write_metrics_jsonl(std::ostream& os, const RunObserver& run);
void write_chrome_trace(std::ostream& os, const RunObserver& run);

/// Combined export: the sim-time tracks plus a second "host-time" track
/// (pid 9999, one thread row per profiler lane with B/E window/barrier
/// slices, one "totals" row per lane with the phase breakdown laid end
/// to end). `prof` may be nullptr — then the output is byte-identical to
/// the two-argument overload.
void write_chrome_trace(std::ostream& os, const RunObserver& run, const Profiler* prof);

/// Host-time-only trace for runs that cannot carry an observer (sharded
/// runs): the same host-time track in its own self-contained document,
/// with the prof.* snapshot as the trailing "metrics" object.
void write_host_trace(std::ostream& os, const Profiler& prof);

/// Convenience wrappers: write to `path`. Throw std::runtime_error
/// naming the path and the errno text when the file cannot be opened or
/// the stream fails after writing — an export must never silently
/// truncate and report success.
void write_metrics_jsonl(const std::string& path, const RunObserver& run);
void write_chrome_trace(const std::string& path, const RunObserver& run);
void write_chrome_trace(const std::string& path, const RunObserver& run, const Profiler* prof);
void write_host_trace(const std::string& path, const Profiler& prof);

}  // namespace mobichk::obs
