#include "des/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace mobichk::des {
namespace {

class SimulatorTest : public ::testing::TestWithParam<QueueKind> {};

TEST_P(SimulatorTest, StartsAtZero) {
  Simulator sim(GetParam());
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.events_executed(), 0u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST_P(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim(GetParam());
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(SimulatorTest, SimultaneousEventsRunInScheduleOrder) {
  Simulator sim(GetParam());
  std::vector<int> order;
  sim.schedule_at(5.0, [&] { order.push_back(1); });
  sim.schedule_at(5.0, [&] { order.push_back(2); });
  sim.schedule_at(5.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim(GetParam());
  Time seen = -1.0;
  sim.schedule_at(7.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 7.5);
  EXPECT_DOUBLE_EQ(sim.now(), 7.5);
}

TEST_P(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim(GetParam());
  Time seen = -1.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_after(2.5, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 12.5);
}

TEST_P(SimulatorTest, EventsCanScheduleChains) {
  Simulator sim(GetParam());
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 100) sim.schedule_after(1.0, tick);
  };
  sim.schedule_at(0.0, tick);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 99.0);
}

TEST_P(SimulatorTest, RunUntilStopsAtHorizon) {
  Simulator sim(GetParam());
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(static_cast<Time>(i), [&] { ++fired; });
  }
  EXPECT_EQ(sim.run_until(5.0), 5u);
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending(), 5u);
  EXPECT_EQ(sim.run_until(100.0), 5u);
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST_P(SimulatorTest, RunUntilIncludesEventsAtHorizon) {
  Simulator sim(GetParam());
  int fired = 0;
  sim.schedule_at(5.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
}

TEST_P(SimulatorTest, CancelPreventsExecution) {
  Simulator sim(GetParam());
  int fired = 0;
  EventHandle h = sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.cancel(h);
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST_P(SimulatorTest, CancelFromWithinEvent) {
  Simulator sim(GetParam());
  int fired = 0;
  EventHandle victim = sim.schedule_at(2.0, [&] { ++fired; });
  sim.schedule_at(1.0, [&] { sim.cancel(victim); });
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST_P(SimulatorTest, StopEndsRun) {
  Simulator sim(GetParam());
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(3.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST_P(SimulatorTest, ThrowsOnSchedulingInThePast) {
  Simulator sim(GetParam());
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), std::invalid_argument);
}

TEST_P(SimulatorTest, InvalidHandleIsNoop) {
  Simulator sim(GetParam());
  EventHandle h;
  EXPECT_FALSE(h.valid());
  sim.cancel(h);  // must not crash
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST_P(SimulatorTest, CountsExecutedEvents) {
  Simulator sim(GetParam());
  for (int i = 0; i < 37; ++i) sim.schedule_at(static_cast<Time>(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 37u);
}

INSTANTIATE_TEST_SUITE_P(AllQueues, SimulatorTest,
                         ::testing::Values(QueueKind::kBinaryHeap, QueueKind::kCalendar),
                         [](const ::testing::TestParamInfo<QueueKind>& pi) {
                           return pi.param == QueueKind::kBinaryHeap ? "BinaryHeap" : "Calendar";
                         });

}  // namespace
}  // namespace mobichk::des
