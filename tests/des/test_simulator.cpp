#include "des/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace mobichk::des {
namespace {

class SimulatorTest : public ::testing::TestWithParam<QueueKind> {};

TEST_P(SimulatorTest, StartsAtZero) {
  Simulator sim(GetParam());
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.events_executed(), 0u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST_P(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim(GetParam());
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(SimulatorTest, SimultaneousEventsRunInScheduleOrder) {
  Simulator sim(GetParam());
  std::vector<int> order;
  sim.schedule_at(5.0, [&] { order.push_back(1); });
  sim.schedule_at(5.0, [&] { order.push_back(2); });
  sim.schedule_at(5.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim(GetParam());
  Time seen = -1.0;
  sim.schedule_at(7.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 7.5);
  EXPECT_DOUBLE_EQ(sim.now(), 7.5);
}

TEST_P(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim(GetParam());
  Time seen = -1.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_after(2.5, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 12.5);
}

TEST_P(SimulatorTest, EventsCanScheduleChains) {
  Simulator sim(GetParam());
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 100) sim.schedule_after(1.0, tick);
  };
  sim.schedule_at(0.0, tick);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 99.0);
}

TEST_P(SimulatorTest, RunUntilStopsAtHorizon) {
  Simulator sim(GetParam());
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(static_cast<Time>(i), [&] { ++fired; });
  }
  EXPECT_EQ(sim.run_until(5.0), 5u);
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending(), 5u);
  EXPECT_EQ(sim.run_until(100.0), 5u);
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST_P(SimulatorTest, RunUntilIncludesEventsAtHorizon) {
  Simulator sim(GetParam());
  int fired = 0;
  sim.schedule_at(5.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
}

TEST_P(SimulatorTest, CancelPreventsExecution) {
  Simulator sim(GetParam());
  int fired = 0;
  EventHandle h = sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.cancel(h);
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST_P(SimulatorTest, CancelFromWithinEvent) {
  Simulator sim(GetParam());
  int fired = 0;
  EventHandle victim = sim.schedule_at(2.0, [&] { ++fired; });
  sim.schedule_at(1.0, [&] { sim.cancel(victim); });
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST_P(SimulatorTest, StopEndsRun) {
  Simulator sim(GetParam());
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(3.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST_P(SimulatorTest, ThrowsOnSchedulingInThePast) {
  Simulator sim(GetParam());
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), std::invalid_argument);
}

TEST_P(SimulatorTest, InvalidHandleIsNoop) {
  Simulator sim(GetParam());
  EventHandle h;
  EXPECT_FALSE(h.valid());
  sim.cancel(h);  // must not crash
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST_P(SimulatorTest, CountsExecutedEvents) {
  Simulator sim(GetParam());
  for (int i = 0; i < 37; ++i) sim.schedule_at(static_cast<Time>(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 37u);
}

TEST_P(SimulatorTest, CancelOfFiredHandleCannotTruncateTheRun) {
  // Regression for the event-queue lifetime bug: cancelling a handle
  // whose event already fired corrupted the live count, so empty()
  // reported true while real events remained and run()/run_until()
  // silently dropped the tail of the simulation.
  Simulator sim(GetParam());
  int fired = 0;
  EventHandle h = sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.schedule_at(3.0, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(1.5), 1u);
  ASSERT_EQ(fired, 1);
  sim.cancel(h);  // h already fired: must be a no-op
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_EQ(sim.run_until(2.5), 1u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_TRUE(sim.invariants_ok());
}

TEST_P(SimulatorTest, RepeatedCancelOfFiredHandleIsStable) {
  Simulator sim(GetParam());
  int fired = 0;
  EventHandle h = sim.schedule_at(1.0, [&] { ++fired; });
  for (int i = 2; i <= 10; ++i) {
    sim.schedule_at(static_cast<Time>(i), [&] { ++fired; });
  }
  sim.run_until(1.0);
  for (int i = 0; i < 5; ++i) sim.cancel(h);
  EXPECT_EQ(sim.pending(), 9u);
  sim.run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(sim.invariants().cancels_requested, 5u);
  EXPECT_EQ(sim.invariants().cancels_effective, 0u);
  EXPECT_EQ(sim.invariants().cancels_noop(), 5u);
  EXPECT_TRUE(sim.invariants_ok());
}

TEST_P(SimulatorTest, InvariantLedgerReconciles) {
  Simulator sim(GetParam());
  int fired = 0;
  std::vector<EventHandle> handles;
  for (int i = 1; i <= 20; ++i) {
    handles.push_back(sim.schedule_at(static_cast<Time>(i), [&] { ++fired; }));
  }
  sim.cancel(handles[4]);
  sim.cancel(handles[4]);  // double cancel: one effective, two requested
  sim.cancel(handles[9]);
  sim.cancel(EventHandle{});  // invalid handle: not even counted
  sim.run_until(12.0);
  const SimInvariants& inv = sim.invariants();
  EXPECT_EQ(inv.scheduled, 20u);
  EXPECT_EQ(inv.cancels_requested, 3u);
  EXPECT_EQ(inv.cancels_effective, 2u);
  EXPECT_EQ(inv.executed, 10u);  // events at t=1..12 minus the two cancelled
  EXPECT_EQ(inv.time_regressions, 0u);
  EXPECT_EQ(inv.max_pending, 20u);
  EXPECT_TRUE(inv.consistent(sim.pending()));
  EXPECT_TRUE(sim.invariants_ok());
  sim.run();
  EXPECT_EQ(fired, 18);
  EXPECT_TRUE(sim.invariants_ok());
}

/// Test target recording every dispatched payload.
struct RecordingTarget final : EventTarget {
  struct Hit {
    Time at;
    EventKind kind;
    u8 sub;
    u32 a;
    u64 b;
    u64 c;
  };
  Simulator* sim = nullptr;
  std::vector<Hit> hits;

  void on_event(const EventPayload& p) override {
    hits.push_back(Hit{sim->now(), p.kind, p.sub, p.a, p.b, p.c});
  }
};

EventPayload typed(EventTarget* target, EventKind kind, u8 sub = 0, u32 a = 0, u64 b = 0,
                   u64 c = 0) {
  EventPayload p;
  p.target = target;
  p.kind = kind;
  p.sub = sub;
  p.a = a;
  p.b = b;
  p.c = c;
  return p;
}

TEST_P(SimulatorTest, TypedEventsDispatchWithOperandsIntact) {
  Simulator sim(GetParam());
  RecordingTarget target;
  target.sim = &sim;
  sim.schedule_at(2.0, typed(&target, EventKind::kMessageHop, 1, 42, 7, 99));
  sim.schedule_at(1.0, typed(&target, EventKind::kHandoff, 0, 3));
  sim.schedule_after(3.0, typed(&target, EventKind::kWorkloadOp, 2, 5, 11, 13));
  EXPECT_EQ(sim.run(), 3u);
  ASSERT_EQ(target.hits.size(), 3u);
  EXPECT_DOUBLE_EQ(target.hits[0].at, 1.0);
  EXPECT_EQ(target.hits[0].kind, EventKind::kHandoff);
  EXPECT_EQ(target.hits[0].a, 3u);
  EXPECT_DOUBLE_EQ(target.hits[1].at, 2.0);
  EXPECT_EQ(target.hits[1].kind, EventKind::kMessageHop);
  EXPECT_EQ(target.hits[1].sub, 1);
  EXPECT_EQ(target.hits[1].a, 42u);
  EXPECT_EQ(target.hits[1].b, 7u);
  EXPECT_EQ(target.hits[1].c, 99u);
  EXPECT_DOUBLE_EQ(target.hits[2].at, 3.0);
  EXPECT_EQ(target.hits[2].kind, EventKind::kWorkloadOp);
  EXPECT_TRUE(sim.invariants_ok());
}

TEST_P(SimulatorTest, TypedAndClosureEventsInterleaveInScheduleOrder) {
  // Mixed representation must not perturb (time, seq) ordering: ties at
  // the same instant fire in scheduling order regardless of kind.
  Simulator sim(GetParam());
  RecordingTarget target;
  target.sim = &sim;
  std::vector<int> order;
  sim.schedule_at(5.0, [&] { order.push_back(1); });
  sim.schedule_at(5.0, typed(&target, EventKind::kConnectivity, 0, 2));
  sim.schedule_at(5.0, [&] { order.push_back(3); });
  sim.schedule_at(5.0, typed(&target, EventKind::kConnectivity, 1, 4));
  sim.run();
  ASSERT_EQ(target.hits.size(), 2u);
  // Closures saw positions 1 and 3; typed events fired between them.
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_EQ(target.hits[0].a, 2u);
  EXPECT_EQ(target.hits[1].a, 4u);
}

TEST_P(SimulatorTest, TypedEventsCancelLikeClosures) {
  Simulator sim(GetParam());
  RecordingTarget target;
  target.sim = &sim;
  const EventHandle h =
      sim.schedule_at(1.0, typed(&target, EventKind::kCheckpointTransfer, 0, 8));
  sim.schedule_at(2.0, typed(&target, EventKind::kCheckpointTransfer, 1, 9));
  sim.cancel(h);
  sim.run();
  ASSERT_EQ(target.hits.size(), 1u);
  EXPECT_EQ(target.hits[0].a, 9u);
  EXPECT_EQ(sim.invariants().cancels_effective, 1u);
  EXPECT_TRUE(sim.invariants_ok());
}

TEST_P(SimulatorTest, RunUntilHorizonPeekKeepsHandlesLive) {
  // Regression guard for the peek path: an event beyond the horizon is
  // only peeked, never popped-and-repushed, so its handle must stay
  // cancellable after run_until returns.
  Simulator sim(GetParam());
  int fired = 0;
  const EventHandle h = sim.schedule_at(10.0, [&] { ++fired; });
  sim.schedule_at(1.0, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(5.0), 1u);
  sim.cancel(h);  // must still refer to the t=10 event
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.run(), 0u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.invariants().cancels_effective, 1u);
  EXPECT_TRUE(sim.invariants_ok());
}

INSTANTIATE_TEST_SUITE_P(AllQueues, SimulatorTest,
                         ::testing::ValuesIn(kAllQueueKinds),
                         [](const ::testing::TestParamInfo<QueueKind>& pi) {
                           switch (pi.param) {
                             case QueueKind::kBinaryHeap: return "BinaryHeap";
                             case QueueKind::kCalendar: return "Calendar";
                             case QueueKind::kSortedList: return "SortedList";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace mobichk::des
