// Mobility models (paper §5.1 plus two alternates).
//
// Paper model: upon entering a cell, with probability P_switch the host
// will switch to another cell after an Exp(T_i) residence; otherwise it
// will voluntarily disconnect after an Exp(T_i / 3) residence, stay
// disconnected for Exp(1000) and reconnect at a random cell. T_i is
// T_switch for slow hosts and T_switch / fast_factor for the fast ones
// (heterogeneity H).
//
// Alternates (selected by SimConfig::mobility_model):
//  * kRingNeighbor — switch targets are ring neighbours of the current
//    cell instead of uniform over all cells.
//  * kParetoResidence — residence times are Pareto(alpha = 1.5) with the
//    same mean (bursty dwell times).
#pragma once

#include <vector>

#include "des/distributions.hpp"
#include "des/event.hpp"
#include "des/rng.hpp"
#include "des/simulator.hpp"
#include "net/network.hpp"
#include "sim/config.hpp"
#include "sim/workload.hpp"

namespace mobichk::sim {

class MobilityDriver final : public des::EventTarget {
 public:
  /// `workload` may be null (pure-mobility tests); when present it is
  /// paused on disconnect and resumed on reconnect.
  MobilityDriver(des::Simulator& sim, net::Network& net, const SimConfig& cfg,
                 WorkloadDriver* workload);

  /// Schedules the first mobility event of every host. Call after
  /// net.start().
  void start();

  /// Invalidates the host's pending mobility timer (the crash engine
  /// calls this when the host fails: a dead host neither hands off nor
  /// disconnects).
  void pause(net::HostId host) { ++epoch_.at(host); }

  /// Restarts the host's mobility cycle after recovery.
  void resume(net::HostId host) {
    ++epoch_.at(host);
    enter_cell(host);
  }

  /// Typed-event dispatch: kHandoff fires a cell switch; kConnectivity
  /// fires a disconnect (sub 0) or reconnect (sub 1). a = host, b = the
  /// host's epoch at scheduling (stale epochs are dropped — the host
  /// crashed and recovered since).
  void on_event(const des::EventPayload& payload) override;

 private:
  /// kConnectivity sub-kinds.
  enum : u8 { kSubDisconnect = 0, kSubReconnect = 1 };

  void enter_cell(net::HostId host);
  void do_switch(net::HostId host);
  void do_disconnect(net::HostId host);
  void do_reconnect(net::HostId host);

  /// Residence draw with the configured distribution and the given mean.
  f64 sample_residence(net::HostId host, f64 mean);

  /// Switch target under the configured model.
  net::MssId pick_switch_target(net::HostId host);

  des::Simulator& sim_;
  net::Network& net_;
  const SimConfig& cfg_;
  WorkloadDriver* workload_;
  std::vector<des::RngStream> rng_;
  std::vector<u64> epoch_;  ///< Bumped by pause/resume to void stale timers.
};

}  // namespace mobichk::sim
