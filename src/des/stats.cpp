#include "des/stats.hpp"

#include <array>
#include <cassert>
#include <cstdio>
#include <limits>

namespace mobichk::des {

Histogram::Histogram(f64 lo, f64 hi, usize bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<f64>(bins == 0 ? 1 : bins)),
      counts_(bins == 0 ? 1 : bins, 0) {
  assert(hi > lo);
}

void Histogram::add(f64 x) noexcept {
  ++total_;
  if (std::isnan(x)) {
    // NaN fails both range checks below; casting it to usize is UB.
    ++nan_;
    return;
  }
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<usize>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // float edge case
  ++counts_[idx];
}

f64 Histogram::quantile(f64 q) const noexcept {
  if (total_ == 0) return lo_;
  if (q <= 0.0) return lo_;
  if (q >= 1.0) return hi_;
  const f64 target = q * static_cast<f64>(total_);
  f64 cum = static_cast<f64>(underflow_);
  if (cum >= target) return lo_;
  for (usize i = 0; i < counts_.size(); ++i) {
    const f64 next = cum + static_cast<f64>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const f64 frac = (target - cum) / static_cast<f64>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

namespace {

// Two-sided critical values t_{alpha/2, dof} for dof = 1..30, then selected
// larger dofs; the last entry is the normal-approximation limit.
struct TtableRow {
  u64 dof;
  f64 t90, t95, t99;
};

constexpr std::array<TtableRow, 35> kTtable = {{
    {1, 6.314, 12.706, 63.657},  {2, 2.920, 4.303, 9.925},   {3, 2.353, 3.182, 5.841},
    {4, 2.132, 2.776, 4.604},    {5, 2.015, 2.571, 4.032},   {6, 1.943, 2.447, 3.707},
    {7, 1.895, 2.365, 3.499},    {8, 1.860, 2.306, 3.355},   {9, 1.833, 2.262, 3.250},
    {10, 1.812, 2.228, 3.169},   {11, 1.796, 2.201, 3.106},  {12, 1.782, 2.179, 3.055},
    {13, 1.771, 2.160, 3.012},   {14, 1.761, 2.145, 2.977},  {15, 1.753, 2.131, 2.947},
    {16, 1.746, 2.120, 2.921},   {17, 1.740, 2.110, 2.898},  {18, 1.734, 2.101, 2.878},
    {19, 1.729, 2.093, 2.861},   {20, 1.725, 2.086, 2.845},  {21, 1.721, 2.080, 2.831},
    {22, 1.717, 2.074, 2.819},   {23, 1.714, 2.069, 2.807},  {24, 1.711, 2.064, 2.797},
    {25, 1.708, 2.060, 2.787},   {26, 1.706, 2.056, 2.779},  {27, 1.703, 2.052, 2.771},
    {28, 1.701, 2.048, 2.763},   {29, 1.699, 2.045, 2.756},  {30, 1.697, 2.042, 2.750},
    {40, 1.684, 2.021, 2.704},   {60, 1.671, 2.000, 2.660},  {120, 1.658, 1.980, 2.617},
    {1000, 1.646, 1.962, 2.581}, {0, 1.645, 1.960, 2.576},  // dof 0 row = infinity
}};

}  // namespace

f64 student_t_critical(f64 confidence, u64 dof) {
  if (dof == 0) dof = 1;
  // Conservative mapping: pick the largest tabulated dof that does not
  // exceed the requested one. Critical values shrink as dof grows, so
  // rounding *up* to the next row (e.g. dof 500 -> the 1000 row) would
  // understate the half-width and produce anti-conservative intervals.
  const TtableRow* row = &kTtable.front();
  for (const auto& r : kTtable) {
    if (r.dof == 0 || r.dof > dof) break;
    row = &r;
  }
  if (confidence >= 0.989) return row->t99;
  if (confidence >= 0.949) return row->t95;
  return row->t90;
}

f64 confidence_half_width(const Tally& tally, f64 confidence) {
  if (tally.count() < 2) return 0.0;
  const f64 t = student_t_critical(confidence, tally.count() - 1);
  return t * tally.stddev() / std::sqrt(static_cast<f64>(tally.count()));
}

f64 relative_half_width(const Tally& tally, f64 confidence) {
  constexpr f64 kInf = std::numeric_limits<f64>::infinity();
  if (tally.count() < 2) return kInf;
  const f64 hw = confidence_half_width(tally, confidence);
  const f64 scale = std::fabs(tally.mean());
  if (scale == 0.0) return hw == 0.0 ? 0.0 : kInf;
  return hw / scale;
}

std::string format_ci(const Tally& tally, f64 confidence) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g ± %.2g", tally.mean(),
                confidence_half_width(tally, confidence));
  return buf;
}

}  // namespace mobichk::des
