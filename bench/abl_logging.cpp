// LOGS: station-based message logging on top of the checkpointing
// protocols (the complementary technique of the survey the paper cites).
//
// With MSSs retaining routed messages, a single-host failure rolls back
// only the failed host, which replays its logged in-bound messages.
// This bench compares the undone computation of plain consistent-cut
// rollback vs logging-assisted rollback, and prices the MSS log storage
// (with the stable-line GC applied).
#include <cstdio>

#include "core/gc.hpp"
#include "core/message_logging.hpp"
#include "sim/cli.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace mobichk;
  const sim::ArgParser args(argc, argv);
  const u64 seeds = args.get_u64("seeds", 5);

  std::printf("LOGS — message logging vs plain rollback (single-host failures, QBC,\n"
              "T_switch=1000, P_switch=0.8; averages over %llu seeds x 10 failed hosts)\n\n",
              static_cast<unsigned long long>(seeds));

  f64 undone_plain = 0, undone_logs = 0, replayed = 0, samples = 0;
  f64 logged_mb = 0, collectible_mb = 0, runs = 0;
  for (u64 s = 1; s <= seeds; ++s) {
    sim::SimConfig cfg;
    cfg.sim_length = args.get_f64("length", 50'000.0);
    cfg.t_switch = 1'000.0;
    cfg.p_switch = 0.8;
    cfg.seed = s;
    sim::ExperimentOptions opts;
    opts.protocols = {core::ProtocolKind::kQbc};
    sim::Experiment exp(cfg, opts);
    exp.run();
    const auto fail_pos = exp.harness().current_positions();
    const auto& messages = exp.harness().message_log();
    for (net::HostId failed = 0; failed < exp.network().n_hosts(); ++failed) {
      const auto plain = core::rollback_to_consistent(exp.log(0), messages, fail_pos, failed);
      const auto logs = core::logging_rollback(exp.log(0), messages, fail_pos, failed);
      undone_plain += static_cast<f64>(plain.undone_events());
      undone_logs += static_cast<f64>(logs.rollback.undone_events());
      replayed += static_cast<f64>(logs.replayed_deliveries);
      samples += 1.0;
    }
    const auto gc = core::analyze_gc(exp.log(0), core::IndexLineRule::kLastEqual,
                                     exp.network().n_mss());
    const u64 msg_bytes = cfg.payload_bytes + sizeof(u64);  // payload + sn
    const auto stats = core::log_storage_stats(messages, gc.stable_line, msg_bytes);
    logged_mb += static_cast<f64>(stats.bytes_logged) / 1e6;
    collectible_mb += static_cast<f64>(stats.bytes_collectible) / 1e6;
    runs += 1.0;
  }

  std::printf("undone events per failure:  plain rollback %.1f   with logging %.1f  (-%.0f%%)\n",
              undone_plain / samples, undone_logs / samples,
              100.0 * (1.0 - undone_logs / undone_plain));
  std::printf("messages replayed per recovery: %.1f\n", replayed / samples);
  std::printf("MSS log storage per run: %.1f MB logged, %.1f MB collectible by stable-line GC"
              " (%.0f%%)\n",
              logged_mb / runs, collectible_mb / runs, 100.0 * collectible_mb / logged_mb);
  std::printf("\nexpected: logging confines every rollback to the failed host (often saving\n"
              "most of the undone work) at the price of MSS log space — which the stable\n"
              "recovery line garbage-collects almost entirely on an ongoing basis.\n");
  return 0;
}
