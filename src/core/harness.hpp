// ProtocolHarness: binds one or more checkpointing protocols to a network
// run as *paired observers*.
//
// The paper evaluates protocols with instantaneous checkpoint insertion
// (§5.1), so a protocol never perturbs the event timeline. That makes it
// sound — and statistically ideal — to run every protocol against the
// same trace: each protocol keeps its own per-host state, its own
// CheckpointLog / StorageModel, and produces its own piggyback for every
// message (the harness routes each protocol its own control information
// at receive time). Slot 0 is the "primary" protocol whose piggyback
// physically rides on the wire (and is counted by NetworkStats); the
// harness additionally accounts per-protocol piggyback bytes so overhead
// comparisons cover every slot.
//
// The harness also maintains the MessageLog — the send/receive position
// oracle used by the consistency checker and the rollback machinery.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/checkpoint_log.hpp"
#include "core/message_log.hpp"
#include "core/protocol.hpp"
#include "core/storage.hpp"
#include "net/handler.hpp"
#include "net/network.hpp"

namespace mobichk::core {

class ProtocolHarness final : public net::HostEventHandler {
 public:
  /// Creates the harness and installs it as the network's handler.
  ProtocolHarness(net::Network& net, des::TraceSink* sink = nullptr);

  /// Registers a protocol (before net.start()). Returns its slot index.
  /// When `storage` is non-null, the slot accounts checkpoint-storage
  /// traffic under that configuration.
  usize add_protocol(std::unique_ptr<CheckpointProtocol> protocol,
                     const StorageConfig* storage = nullptr);

  usize protocol_count() const noexcept { return slots_.size(); }
  CheckpointProtocol& protocol(usize slot) { return *slots_.at(slot)->protocol; }
  const CheckpointProtocol& protocol(usize slot) const { return *slots_.at(slot)->protocol; }
  const CheckpointLog& log(usize slot) const { return slots_.at(slot)->log; }
  const StorageModel* storage(usize slot) const { return slots_.at(slot)->storage.get(); }
  /// Control-information bytes protocol `slot` put (or would have put) on
  /// the wire over the whole run, as actually encoded (sparse piggybacks
  /// count their delta encoding, not the dense vectors they replace).
  u64 piggyback_bytes(usize slot) const { return slots_.at(slot)->pb_bytes; }
  /// Dense-equivalent control bytes for `slot`: what the same control
  /// information would have cost with full vectors on every message.
  /// Equal to piggyback_bytes for protocols without a sparse encoding.
  u64 piggyback_dense_bytes(usize slot) const { return slots_.at(slot)->pb_dense_bytes; }

  const MessageLog& message_log() const noexcept { return msg_log_; }

  /// Current event position of every host (the "now" cut); recovery-line
  /// builders use it for virtual (current-state) members.
  std::vector<u64> current_positions() const;

  /// Keep per-message piggybacks after first delivery (required when the
  /// network exposes duplicate deliveries to the application).
  void retain_piggybacks(bool retain) noexcept { retain_piggybacks_ = retain; }

  /// Routes checkpoint-timeline probes into `timeline` (nullptr = off).
  /// Must be called before add_protocol; later slots inherit it.
  void set_timeline(obs::Timeline* timeline) noexcept { timeline_ = timeline; }

  /// Attaches the host-time profiler (nullptr = off). Piggyback encode
  /// (on_send) and merge (on_receive) are timed on the executing lane,
  /// with per-slot handler time nested under prof.proto.*.
  void set_profiler(obs::Profiler* prof) noexcept { prof_ = prof; }

  /// Attaches the checkpoint data plane (nullptr = off). Must be called
  /// before add_protocol: slot 0 — the physical run — prices its
  /// checkpoints through it, and every cell switch becomes a handoff
  /// (checkpoint-migration) hook.
  void set_data_plane(storage::DataPlane* data_plane) noexcept { data_plane_ = data_plane; }

  // -- spatial sharding -------------------------------------------------

  /// Switches the harness into shard-parallel mode (call after every
  /// add_protocol): piggybacks travel by value on messages instead of
  /// through the pooled shared parking, per-slot piggyback bytes go to
  /// per-shard slices, and MessageLog updates are journaled per shard
  /// for the barrier merge.
  void enable_sharding(u32 n_shards);

  /// Barrier-time merge (coordinator, shards parked): folds this window's
  /// send/receive journals into the MessageLog — sends first, translated
  /// through `idmap` (provisional -> final message ids), then deliveries
  /// in merged (time, shard) order, which is the sequential order the
  /// rollback machinery depends on.
  void merge_window(const std::unordered_map<u64, u64>& idmap);

  /// End-of-run fold of the per-shard piggyback byte slices.
  void finalize_sharding();

  // -- net::HostEventHandler --------------------------------------------
  void on_host_init(net::MobileHost& host) override;
  void on_send(net::MobileHost& host, net::AppMessage& msg) override;
  void on_receive(net::MobileHost& host, const net::AppMessage& msg) override;
  void on_cell_switch(net::MobileHost& host, net::MssId from, net::MssId to) override;
  void on_disconnect(net::MobileHost& host) override;
  void on_reconnect(net::MobileHost& host, net::MssId mss) override;

 private:
  struct Slot {
    std::unique_ptr<CheckpointProtocol> protocol;
    CheckpointLog log;
    std::unique_ptr<StorageModel> storage;
    u64 pb_bytes = 0;
    u64 pb_dense_bytes = 0;
  };

  /// Pooled per-message piggyback parking: slots are recycled after
  /// delivery so the inner vectors keep their capacity and steady-state
  /// sends stop allocating.
  struct Parked {
    std::vector<net::Piggyback> pbs;
  };

  struct SendRec {
    u64 id = 0;  ///< Provisional message id (finalized at the barrier).
    net::HostId src = 0;
    net::HostId dst = 0;
    u64 pos = 0;
  };
  struct RecvRec {
    des::Time t = 0.0;  ///< Receive time (merge key).
    u64 id = 0;         ///< Final message id (assigned before delivery).
    u64 pos = 0;
    u64 sn = 0;
  };

  /// Per-shard journal + hot-counter slice, padded against false sharing.
  struct alignas(64) Slice {
    std::vector<SendRec> sends;       ///< This window's sends.
    std::vector<RecvRec> recvs;       ///< This window's deliveries.
    std::vector<u64> pb_bytes;        ///< Per protocol slot, whole run.
    std::vector<u64> pb_dense_bytes;  ///< Per protocol slot, whole run.
  };

  net::Network& net_;
  des::TraceSink* sink_;
  obs::Timeline* timeline_ = nullptr;
  obs::Profiler* prof_ = nullptr;
  storage::DataPlane* data_plane_ = nullptr;
  /// Heap-allocated: protocols hold pointers into their slot's log and
  /// storage, which must stay stable as more slots are added.
  std::vector<std::unique_ptr<Slot>> slots_;
  MessageLog msg_log_;
  /// msg id -> pool index; the pool entry holds one piggyback per slot,
  /// parked between send and receive.
  std::unordered_map<u64, u32> in_flight_;
  std::vector<Parked> park_;
  std::vector<u32> park_free_;
  bool retain_piggybacks_ = false;
  std::vector<Slice> slices_;  ///< Non-empty exactly in sharded mode.
};

}  // namespace mobichk::core
