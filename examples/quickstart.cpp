// Quickstart: run the paper's default scenario once and print what each
// protocol did.
//
//   ./quickstart [--length=100000] [--tswitch=1000] [--pswitch=1.0]
//                [--psend=0.4] [--h=0.0] [--seed=1] [--verify]
//
// This exercises the whole public API: configuration, the experiment
// runner with TP / BCS / QBC as paired observers, checkpoint-storage
// accounting, and (with --verify) the orphan-message consistency oracle.
#include <cstdio>

#include "mobichk.hpp"

int main(int argc, char** argv) {
  using namespace mobichk;
  const sim::ArgParser args(argc, argv);

  sim::SimConfig cfg;
  cfg.sim_length = args.get_f64("length", 100'000.0);
  cfg.t_switch = args.get_f64("tswitch", 1'000.0);
  cfg.p_switch = args.get_f64("pswitch", 1.0);
  cfg.p_send = args.get_f64("psend", 0.4);
  cfg.heterogeneity = args.get_f64("h", 0.0);
  cfg.seed = args.get_u64("seed", 1);

  sim::ExperimentOptions opts;
  opts.with_storage = true;
  opts.verify_consistency = args.get_flag("verify");

  const sim::RunResult result = sim::run_experiment(cfg, opts);

  std::printf("mobichk quickstart — %u MHs, %u MSSs, horizon %.0f tu, seed %llu\n",
              cfg.network.n_hosts, cfg.network.n_mss, cfg.sim_length,
              static_cast<unsigned long long>(cfg.seed));
  std::printf("workload: %llu ops, %llu sends, %llu receives; %llu handoffs, %llu disconnects\n",
              static_cast<unsigned long long>(result.workload_ops),
              static_cast<unsigned long long>(result.net.app_sent),
              static_cast<unsigned long long>(result.net.app_received),
              static_cast<unsigned long long>(result.net.handoffs),
              static_cast<unsigned long long>(result.net.disconnects));
  std::printf("\n%-8s %10s %10s %10s %10s %14s %12s\n", "proto", "N_tot", "basic", "forced",
              "max_idx", "piggyback(B)", "ckpt-up(MB)");
  for (const auto& p : result.protocols) {
    std::printf("%-8s %10llu %10llu %10llu %10llu %14llu %12.1f\n", p.name.c_str(),
                static_cast<unsigned long long>(p.n_tot),
                static_cast<unsigned long long>(p.basic),
                static_cast<unsigned long long>(p.forced),
                static_cast<unsigned long long>(p.max_index),
                static_cast<unsigned long long>(p.piggyback_bytes),
                static_cast<double>(p.storage_wireless_bytes) / 1e6);
  }
  if (opts.verify_consistency) {
    std::printf("\nconsistency oracle:\n");
    for (const auto& p : result.protocols) {
      std::printf("  %-8s %llu recovery lines checked, %llu orphan messages\n", p.name.c_str(),
                  static_cast<unsigned long long>(p.lines_checked),
                  static_cast<unsigned long long>(p.orphans_found));
    }
  }
  return 0;
}
