// CONT: channel contention under limited wireless bandwidth (paper §2.1
// point b).
//
// With a finite cell bandwidth every transmission — payload, piggyback,
// control — occupies the shared channel. TP's 2n-integer vectors are not
// just battery cost: they raise channel utilization and delivery latency
// for *everyone* in the cell. Each protocol runs alone here (its bytes
// are physically on the wire), so the comparison is end to end.
#include <cstdio>

#include "sim/cli.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace mobichk;
  const sim::ArgParser args(argc, argv);

  const core::ProtocolKind kinds[] = {core::ProtocolKind::kTp, core::ProtocolKind::kBcs,
                                      core::ProtocolKind::kQbc};

  std::printf("CONT — delivery latency and channel utilization vs cell bandwidth\n"
              "(each protocol alone on the wire; payload 1 KiB, busy traffic, no disconnections)\n\n");
  std::printf("%12s  %-8s %16s %16s %14s\n", "bandwidth", "proto", "mean latency", "p-lat x ideal",
              "utilization");

  for (const f64 bw : {5'000.0, 2'000.0, 1'200.0}) {
    for (const auto kind : kinds) {
      sim::SimConfig cfg;
      cfg.sim_length = args.get_f64("length", 50'000.0);
      cfg.t_switch = 1'000.0;
      cfg.p_switch = 1.0;        // keep buffering delays out of the latency signal
      cfg.comm_mean = 5.0;       // busy application traffic
      cfg.payload_bytes = 1024;
      cfg.seed = 9;
      cfg.network.wireless_bandwidth = bw;
      sim::ExperimentOptions opts;
      opts.protocols = {kind};
      sim::Experiment exp(cfg, opts);
      exp.run();
      const auto& r = exp.result();
      f64 util = 0.0;
      for (net::MssId m = 0; m < exp.network().n_mss(); ++m) {
        util += exp.network().channel(m).utilization(cfg.sim_length);
      }
      util /= static_cast<f64>(exp.network().n_mss());
      const f64 ideal = 2.0 * cfg.network.wireless_latency;  // two propagation hops
      std::printf("%10.0f    %-8s %14.4f %15.1fx %13.1f%%\n", bw,
                  core::protocol_kind_name(kind), r.net.delivery_latency.mean(),
                  r.net.delivery_latency.mean() / ideal, 100.0 * util);
    }
    std::printf("\n");
  }
  std::printf("expected: TP's fat piggybacks push utilization and latency up fastest as\n"
              "bandwidth shrinks; the one-integer protocols degrade together and gently.\n");
  return 0;
}
