#include "obs/export.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace mobichk::obs {
namespace {

// Shortest round-trip decimal form (std::to_chars), so exports are
// byte-deterministic and free of printf locale surprises.
void emit_number(std::ostream& os, f64 v) {
  if (!std::isfinite(v)) {
    os << "0";  // JSON has no NaN/Inf; metrics should never produce them
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  os.write(buf, res.ptr - buf);
}

void emit_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// Data-plane transfer sub-kind (ProbeEvent::b mirrors
// storage::DataPlane::kSub*).
const char* storage_transfer_name(u64 sub) {
  if (sub == 1) return "migration";
  if (sub == 2) return "fetch";
  return "upload";
}

const char* ckpt_event_name(const ProbeEvent& e) {
  if (e.ckpt_kind == CkptKind::kForced) return "forced checkpoint";
  if (e.replaced) return "basic checkpoint (equivalence reuse)";
  if (e.ckpt_kind == CkptKind::kBasic) return "basic checkpoint";
  return "initial checkpoint";
}

std::string protocol_label(const RunObserver& run, i32 slot) {
  const auto& names = run.protocol_names();
  if (slot >= 0 && static_cast<usize>(slot) < names.size()) return names[static_cast<usize>(slot)];
  return "protocol " + std::to_string(slot);
}

// Chrome trace ts is integer microseconds; we map 1 simulation tu to
// 1000 us so a 50k-tu run spans a readable 50 s of trace time.
void emit_ts(std::ostream& os, f64 t) { emit_number(os, t * 1000.0); }

void emit_metadata(std::ostream& os, const char* what, i32 pid, i32 tid,
                   std::string_view name, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "  {\"ph\":\"M\",\"name\":\"" << what << "\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"args\":{\"name\":";
  emit_string(os, name);
  os << "}}";
}

}  // namespace

void write_metrics_jsonl(std::ostream& os, const RunObserver& run) {
  for (const ProbeEvent& e : run.timeline().events()) {
    os << "{\"type\":\"event\",\"t\":";
    emit_number(os, e.t);
    os << ",\"kind\":";
    emit_string(os, probe_kind_name(e.kind));
    if (e.kind == ProbeKind::kCheckpoint) {
      os << ",\"host\":" << e.actor << ",\"slot\":" << e.track << ",\"protocol\":";
      emit_string(os, protocol_label(run, e.track));
      os << ",\"ckpt\":"
         << (e.ckpt_kind == CkptKind::kForced
                 ? "\"forced\""
                 : (e.ckpt_kind == CkptKind::kBasic ? "\"basic\"" : "\"initial\""));
      os << ",\"rule\":";
      emit_string(os, forced_rule_name(e.rule));
      os << ",\"replaced\":" << (e.replaced ? "true" : "false") << ",\"sn\":" << e.a;
      if (e.b != 0) os << ",\"msg\":" << e.b;
    } else if (e.kind == ProbeKind::kHandoff) {
      os << ",\"host\":" << e.actor << ",\"mss\":" << e.track;
    } else if (e.kind == ProbeKind::kDisconnect || e.kind == ProbeKind::kReconnect) {
      os << ",\"host\":" << e.actor;
    } else if (e.kind == ProbeKind::kReplication) {
      os << ",\"point\":" << e.actor << ",\"replications\":" << e.a << ",\"wall_seconds\":";
      emit_number(os, e.value);
    } else if (e.kind == ProbeKind::kConvergence) {
      os << ",\"point\":" << e.actor << ",\"replications\":" << e.a << ",\"half_width\":";
      emit_number(os, e.value);
    } else if (e.kind == ProbeKind::kSend) {
      os << ",\"src\":" << e.actor << ",\"dst\":" << e.track << ",\"msg\":" << e.a
         << ",\"sn\":" << e.b;
    } else if (e.kind == ProbeKind::kDeliver) {
      os << ",\"host\":" << e.actor << ",\"src\":" << e.track << ",\"msg\":" << e.a
         << ",\"sn\":" << e.b;
    } else if (e.kind == ProbeKind::kSnPromote) {
      os << ",\"host\":" << e.actor << ",\"slot\":" << e.track << ",\"protocol\":";
      emit_string(os, protocol_label(run, e.track));
      os << ",\"sn\":" << e.a;
    } else if (e.kind == ProbeKind::kCrash) {
      os << ",\"host\":" << e.actor;
    } else if (e.kind == ProbeKind::kRecover) {
      os << ",\"host\":" << e.actor << ",\"mss\":" << e.track;
    } else if (e.kind == ProbeKind::kStorageTransfer) {
      os << ",\"host\":" << e.actor << ",\"mss\":" << e.track << ",\"transfer\":";
      emit_string(os, storage_transfer_name(e.b));
      os << ",\"bytes\":" << e.a << ",\"duration\":";
      emit_number(os, e.value);
    }
    os << "}\n";
  }
  for (const MetricSample& s : run.registry().snapshot()) {
    os << "{\"type\":\"metric\",\"name\":";
    emit_string(os, s.name);
    os << ",\"value\":";
    emit_number(os, s.value);
    os << "}\n";
  }
}

void write_chrome_trace(std::ostream& os, const RunObserver& run) {
  os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;

  // Track naming. pid 0 carries network & mobility (one thread per
  // host); pid slot+1 carries one protocol's checkpoints (again one
  // thread per host), so Perfetto groups each protocol as a process.
  emit_metadata(os, "process_name", 0, 0, "network & mobility", first);
  for (i32 h = 0; h < run.n_hosts(); ++h) {
    emit_metadata(os, "thread_name", 0, h, "host " + std::to_string(h), first);
  }
  const usize n_protocols = run.protocol_names().size();
  for (usize slot = 0; slot < n_protocols; ++slot) {
    const i32 pid = static_cast<i32>(slot) + 1;
    emit_metadata(os, "process_name", pid, 0,
                  "protocol: " + run.protocol_names()[slot], first);
    for (i32 h = 0; h < run.n_hosts(); ++h) {
      emit_metadata(os, "thread_name", pid, h, "host " + std::to_string(h), first);
    }
  }

  // Flow-event prescan: a send emits a flow-start ("s") only for arrows
  // that will terminate ("f") later in the file — the delivery arrow when
  // the message is consumed, and one forced-checkpoint arrow per protocol
  // slot whose forced checkpoint names this message as its trigger.
  // Flow ids partition a message id into kFlowStride lanes: lane 0 is the
  // send->deliver arrow, lane 1+slot the send->forced-checkpoint arrow.
  std::unordered_set<u64> delivered;
  std::unordered_map<u64, u64> forced_slots;  // msg id -> slot bitmask
  // Outage prescan: pair each crash with the host's next recover so the
  // outage renders as one duration slice instead of two instants.
  std::unordered_map<i32, std::vector<f64>> recover_times;  // host -> times, in order
  std::unordered_map<i32, usize> recover_cursor;
  for (const ProbeEvent& e : run.timeline().events()) {
    if (e.kind == ProbeKind::kDeliver) {
      delivered.insert(e.a);
    } else if (e.kind == ProbeKind::kCheckpoint && e.ckpt_kind == CkptKind::kForced &&
               e.b != 0 && e.track >= 0 && e.track < 62) {
      forced_slots[e.b] |= u64{1} << e.track;
    } else if (e.kind == ProbeKind::kRecover) {
      recover_times[e.actor].push_back(e.t);
    }
  }
  constexpr u64 kFlowStride = 64;
  constexpr f64 kSliceDurUs = 100.0;  // 0.1 tu: wide enough to click on
  std::unordered_set<u64> flow_open;    // flow ids whose "s" was emitted
  std::unordered_set<u64> flow_closed;  // flow ids whose "f" was emitted

  const auto begin_event = [&os, &first] {
    if (!first) os << ",\n";
    first = false;
    os << "  ";
  };
  // A flow start/finish binds to the slice with the same pid/tid/ts.
  const auto emit_flow = [&](char ph, const char* cat, u64 id, f64 t, i32 pid, i32 tid) {
    begin_event();
    os << "{\"ph\":\"" << ph << "\",\"cat\":\"" << cat << "\",\"name\":\"" << cat
       << " flow\",\"id\":" << id << ",\"ts\":";
    emit_ts(os, t);
    os << ",\"pid\":" << pid << ",\"tid\":" << tid;
    if (ph == 'f') os << ",\"bp\":\"e\"";
    os << "}";
  };

  for (const ProbeEvent& e : run.timeline().events()) {
    if (e.kind == ProbeKind::kReplication || e.kind == ProbeKind::kConvergence) {
      continue;  // sweep-level entries have no place on a per-run trace
    }
    if (e.kind == ProbeKind::kCheckpoint) {
      const bool has_flow = e.ckpt_kind == CkptKind::kForced && e.b != 0;
      begin_event();
      os << "{\"name\":";
      emit_string(os, ckpt_event_name(e));
      // Forced checkpoints with a triggering message become slices so a
      // flow arrow can land on them; the rest stay instants.
      if (has_flow) {
        os << ",\"ph\":\"X\",\"dur\":";
        emit_number(os, kSliceDurUs);
      } else {
        os << ",\"ph\":\"i\",\"s\":\"t\"";
      }
      os << ",\"ts\":";
      emit_ts(os, e.t);
      os << ",\"pid\":" << (e.track + 1) << ",\"tid\":" << e.actor << ",\"args\":{\"sn\":" << e.a
         << ",\"rule\":";
      emit_string(os, forced_rule_name(e.rule));
      if (e.replaced) os << ",\"replaced\":true";
      if (e.b != 0) os << ",\"msg\":" << e.b;
      os << "}}";
      if (has_flow && e.track >= 0 && e.track < 62) {
        const u64 flow_id = e.b * kFlowStride + 1 + static_cast<u64>(e.track);
        if (flow_open.count(flow_id) != 0 && flow_closed.insert(flow_id).second) {
          emit_flow('f', "force", flow_id, e.t, e.track + 1, e.actor);
        }
      }
    } else if (e.kind == ProbeKind::kSend) {
      begin_event();
      os << "{\"name\":\"send #" << e.a << "\",\"ph\":\"X\",\"dur\":";
      emit_number(os, kSliceDurUs);
      os << ",\"ts\":";
      emit_ts(os, e.t);
      os << ",\"pid\":0,\"tid\":" << e.actor << ",\"args\":{\"msg\":" << e.a
         << ",\"dst\":" << e.track << ",\"sn\":" << e.b << "}}";
      if (delivered.count(e.a) != 0) {
        flow_open.insert(e.a * kFlowStride);
        emit_flow('s', "msg", e.a * kFlowStride, e.t, 0, e.actor);
      }
      const auto fs = forced_slots.find(e.a);
      if (fs != forced_slots.end()) {
        for (u64 slot = 0; slot < 62; ++slot) {
          if ((fs->second >> slot) & 1) {
            flow_open.insert(e.a * kFlowStride + 1 + slot);
            emit_flow('s', "force", e.a * kFlowStride + 1 + slot, e.t, 0, e.actor);
          }
        }
      }
    } else if (e.kind == ProbeKind::kDeliver) {
      begin_event();
      os << "{\"name\":\"deliver #" << e.a << "\",\"ph\":\"X\",\"dur\":";
      emit_number(os, kSliceDurUs);
      os << ",\"ts\":";
      emit_ts(os, e.t);
      os << ",\"pid\":0,\"tid\":" << e.actor << ",\"args\":{\"msg\":" << e.a
         << ",\"src\":" << e.track << ",\"sn\":" << e.b << "}}";
      const u64 flow_id = e.a * kFlowStride;
      if (flow_open.count(flow_id) != 0 && flow_closed.insert(flow_id).second) {
        emit_flow('f', "msg", flow_id, e.t, 0, e.actor);
      }
    } else if (e.kind == ProbeKind::kStorageTransfer) {
      // Transfers are real durations: render the whole wire + storage
      // occupancy as a slice on the host's network track.
      begin_event();
      os << "{\"name\":\"storage: " << storage_transfer_name(e.b) << "\",\"ph\":\"X\",\"dur\":";
      emit_number(os, e.value > 0.0 ? e.value * 1000.0 : kSliceDurUs);
      os << ",\"ts\":";
      emit_ts(os, e.t);
      os << ",\"pid\":0,\"tid\":" << e.actor << ",\"args\":{\"mss\":" << e.track
         << ",\"bytes\":" << e.a << "}}";
    } else if (e.kind == ProbeKind::kSnPromote) {
      begin_event();
      os << "{\"name\":\"sn promote\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
      emit_ts(os, e.t);
      os << ",\"pid\":" << (e.track + 1) << ",\"tid\":" << e.actor << ",\"args\":{\"sn\":" << e.a
         << "}}";
    } else if (e.kind == ProbeKind::kCrash) {
      // The outage is a slice from the crash to the host's next recover
      // (open-ended instants if the run stopped before the recovery).
      f64 dur_us = kSliceDurUs;
      const auto rt = recover_times.find(e.actor);
      if (rt != recover_times.end()) {
        usize& cursor = recover_cursor[e.actor];
        while (cursor < rt->second.size() && rt->second[cursor] < e.t) ++cursor;
        if (cursor < rt->second.size()) {
          dur_us = (rt->second[cursor] - e.t) * 1000.0;
          ++cursor;
        }
      }
      begin_event();
      os << "{\"name\":\"crashed (recovering)\",\"ph\":\"X\",\"dur\":";
      emit_number(os, dur_us);
      os << ",\"ts\":";
      emit_ts(os, e.t);
      os << ",\"pid\":0,\"tid\":" << e.actor << "}";
    } else {
      begin_event();
      os << "{\"name\":";
      emit_string(os, probe_kind_name(e.kind));
      os << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
      emit_ts(os, e.t);
      os << ",\"pid\":0,\"tid\":" << e.actor;
      if (e.kind == ProbeKind::kHandoff) {
        os << ",\"args\":{\"mss\":" << e.track << "}";
      }
      os << "}";
    }
  }

  os << "\n],\n\"metrics\": {";
  bool first_metric = true;
  for (const MetricSample& s : run.registry().snapshot()) {
    if (!first_metric) os << ",";
    first_metric = false;
    os << "\n  ";
    emit_string(os, s.name);
    os << ": ";
    emit_number(os, s.value);
  }
  os << "\n}\n}\n";
}

namespace {

void write_file(const std::string& path, const RunObserver& run,
                void (*writer)(std::ostream&, const RunObserver&)) {
  errno = 0;
  std::ofstream os(path);
  if (!os.is_open()) {
    const int err = errno;
    throw std::runtime_error("obs: cannot open " + path + " for writing: " +
                             (err != 0 ? std::strerror(err) : "unknown error"));
  }
  writer(os, run);
  os.flush();
  if (os.fail()) {
    const int err = errno;
    throw std::runtime_error("obs: write to " + path + " failed: " +
                             (err != 0 ? std::strerror(err) : "unknown error"));
  }
}

}  // namespace

void write_metrics_jsonl(const std::string& path, const RunObserver& run) {
  write_file(path, run, &write_metrics_jsonl);
}

void write_chrome_trace(const std::string& path, const RunObserver& run) {
  write_file(path, run, &write_chrome_trace);
}

}  // namespace mobichk::obs
