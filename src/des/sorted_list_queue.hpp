// Reference pending-event set: one flat list kept sorted at all times,
// with eager (non-tombstoned) cancellation.
//
// Deliberately the simplest implementation that can be correct — O(n)
// push and cancel, O(1) pop — so the determinism audit (sim/audit.hpp)
// and the queue-equivalence fuzz tests can use it as an oracle against
// the optimised BinaryHeapQueue and CalendarQueue. It shares the
// generation-stamped SlotTable so handle semantics (stale handles are
// no-ops, slots recycle with a generation bump) are byte-for-byte the
// contract the optimised queues must match.
#pragma once

#include <vector>

#include "des/event_queue.hpp"

namespace mobichk::des {

/// Sorted-list event queue: descending (time, seq) order, so the next
/// event to fire sits at the back of the vector.
class SortedListQueue final : public EventQueue {
 public:
  EventHandle push(EventEntry entry) override;
  EventEntry pop() override;
  Time peek_time() override;
  Time peek_time_below(Time bound) override;
  bool cancel(EventHandle handle) override;
  bool empty() const override { return entries_.empty(); }
  usize size() const override { return entries_.size(); }
  usize stored() const override { return entries_.size(); }
  const char* name() const noexcept override { return "sorted-list"; }

 private:
  std::vector<EventEntry> entries_;
  SlotTable slots_;
};

}  // namespace mobichk::des
