#include "core/checkpoint_log.hpp"

#include <algorithm>
#include <cassert>

namespace mobichk::core {

const CheckpointRecord& CheckpointLog::append(CheckpointRecord rec) {
  auto& vec = per_host_.at(rec.host);
  rec.ordinal = vec.size();
  assert((vec.empty() || vec.back().sn <= rec.sn) && "per-host sn must be non-decreasing");
  assert((vec.empty() || vec.back().event_pos <= rec.event_pos) && "event_pos must be non-decreasing");
  ++total_;
  switch (rec.kind) {
    case CheckpointKind::kInitial: ++initial_; break;
    case CheckpointKind::kBasic: ++basic_; break;
    case CheckpointKind::kForced: ++forced_; break;
  }
  vec.push_back(std::move(rec));
  return vec.back();
}

const CheckpointRecord* CheckpointLog::by_ordinal(net::HostId host, u64 ordinal) const {
  const auto& vec = per_host_.at(host);
  return ordinal < vec.size() ? &vec[ordinal] : nullptr;
}

const CheckpointRecord* CheckpointLog::first_with_sn_at_least(net::HostId host, u64 sn) const {
  const auto& vec = per_host_.at(host);
  const auto it = std::lower_bound(vec.begin(), vec.end(), sn,
                                   [](const CheckpointRecord& r, u64 s) { return r.sn < s; });
  return it == vec.end() ? nullptr : &*it;
}

const CheckpointRecord* CheckpointLog::last_with_sn(net::HostId host, u64 sn) const {
  const auto& vec = per_host_.at(host);
  const auto it = std::upper_bound(vec.begin(), vec.end(), sn,
                                   [](u64 s, const CheckpointRecord& r) { return s < r.sn; });
  if (it == vec.begin()) return nullptr;
  const CheckpointRecord* prev = &*(it - 1);
  return prev->sn == sn ? prev : nullptr;
}

const CheckpointRecord* CheckpointLog::last_at_or_before_pos(net::HostId host, u64 pos) const {
  const auto& vec = per_host_.at(host);
  const auto it =
      std::upper_bound(vec.begin(), vec.end(), pos,
                       [](u64 p, const CheckpointRecord& r) { return p < r.event_pos; });
  return it == vec.begin() ? nullptr : &*(it - 1);
}

void CheckpointLog::promote_sn(net::HostId host, u64 new_sn) {
  auto& vec = per_host_.at(host);
  assert(!vec.empty() && "promote_sn on host without checkpoints");
  assert(vec.back().sn <= new_sn && "promote_sn must not decrease sn");
  vec.back().sn = new_sn;
}

u64 CheckpointLog::max_sn(net::HostId host) const {
  const auto& vec = per_host_.at(host);
  return vec.empty() ? 0 : vec.back().sn;
}

u64 CheckpointLog::max_sn() const {
  u64 m = 0;
  for (net::HostId h = 0; h < n_hosts(); ++h) m = std::max(m, max_sn(h));
  return m;
}

}  // namespace mobichk::core
