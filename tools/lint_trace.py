#!/usr/bin/env python3
"""Structural linter for mobichk's observability exports.

Validates two formats (dispatched on file extension, or forced with
--format):

  *.json   Chrome-trace files (obs::write_chrome_trace): checks the
           top-level shape, the per-phase required keys, and — the part a
           generic JSON check cannot see — that every flow-finish event
           ("ph":"f") is preceded in file order by a flow-start ("ph":"s")
           with the same (cat, id), that no flow terminates twice, and
           that flow events carry the binding fields (pid, tid, ts).

  *.jsonl  Metrics/event JSONL files (obs::write_metrics_jsonl): every
           line parses on its own, carries a known "type", and all event
           lines precede all metric lines (consumers stream them in one
           pass).

Exit status: 0 clean, 1 with a message naming file, line/event and reason.
Usage: tools/lint_trace.py FILE [FILE ...]
"""

import json
import sys

PHASE_REQUIRED = {
    "M": ("name", "pid"),
    "i": ("name", "ts", "pid", "tid", "s"),
    "X": ("name", "ts", "dur", "pid", "tid"),
    "s": ("name", "cat", "id", "ts", "pid", "tid"),
    "f": ("name", "cat", "id", "ts", "pid", "tid", "bp"),
}

JSONL_TYPES = {"event", "metric"}


class LintError(Exception):
    pass


def lint_chrome_trace(path, data):
    try:
        doc = json.loads(data)
    except json.JSONDecodeError as e:
        raise LintError(f"not valid JSON: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise LintError("top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise LintError("traceEvents is not an array")

    open_flows = set()
    closed_flows = set()
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            raise LintError(f"{where}: not an object")
        ph = e.get("ph")
        if ph not in PHASE_REQUIRED:
            raise LintError(f"{where}: unknown ph {ph!r}")
        for key in PHASE_REQUIRED[ph]:
            if key not in e:
                raise LintError(f"{where}: ph {ph!r} is missing {key!r}")
        if ph in ("s", "f"):
            flow = (e["cat"], e["id"])
            if ph == "s":
                open_flows.add(flow)
            else:
                if e["bp"] != "e":
                    raise LintError(f"{where}: flow finish must bind enclosing (bp='e')")
                if flow not in open_flows:
                    raise LintError(f"{where}: flow finish {flow} has no earlier start")
                if flow in closed_flows:
                    raise LintError(f"{where}: flow {flow} terminated twice")
                closed_flows.add(flow)
    dangling = open_flows - closed_flows
    if dangling:
        raise LintError(f"{len(dangling)} flow start(s) never finish, e.g. {sorted(dangling)[0]}")


def lint_jsonl(path, data):
    seen_metric = False
    n_events = n_metrics = 0
    for lineno, line in enumerate(data.splitlines(), start=1):
        if not line.strip():
            raise LintError(f"line {lineno}: blank line")
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            raise LintError(f"line {lineno}: not valid JSON: {e}")
        kind = obj.get("type")
        if kind not in JSONL_TYPES:
            raise LintError(f"line {lineno}: unknown type {kind!r}")
        if kind == "metric":
            seen_metric = True
            n_metrics += 1
            if "name" not in obj or "value" not in obj:
                raise LintError(f"line {lineno}: metric without name/value")
        else:
            n_events += 1
            if seen_metric:
                raise LintError(f"line {lineno}: event after the metric block")
            if "kind" not in obj or "t" not in obj:
                raise LintError(f"line {lineno}: event without kind/t")
    if n_metrics == 0:
        raise LintError("no metric lines (every observed run exports some)")
    return n_events, n_metrics


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    forced = None
    for a in argv[1:]:
        if a.startswith("--format="):
            forced = a.split("=", 1)[1]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in args:
        fmt = forced or ("jsonl" if path.endswith(".jsonl") else "json")
        try:
            with open(path, encoding="utf-8") as f:
                data = f.read()
            if fmt == "jsonl":
                lint_jsonl(path, data)
            else:
                lint_chrome_trace(path, data)
        except (OSError, LintError) as e:
            print(f"lint_trace: {path}: {e}", file=sys.stderr)
            return 1
        print(f"lint_trace: {path}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
