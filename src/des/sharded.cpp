#include "des/sharded.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace mobichk::des {

namespace {

thread_local ShardContext* tls_shard = nullptr;

/// Polite spin: pause the pipeline, and back off to the scheduler when
/// the wait drags on (oversubscribed machines, TSan builds).
struct SpinWait {
  u32 spins = 0;
  void relax() noexcept {
    if (++spins % 4096 == 0) {
      std::this_thread::yield();
      return;
    }
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#endif
  }
};

}  // namespace

ShardContext* current_shard() noexcept { return tls_shard; }
void set_current_shard(ShardContext* ctx) noexcept { tls_shard = ctx; }

// ---------------------------------------------------------------------------
// ShardTraceMux
// ---------------------------------------------------------------------------

ShardTraceMux::ShardTraceMux(u32 n_shards, TraceSink* downstream)
    : downstream_(downstream), buffers_(n_shards) {}

void ShardTraceMux::flush() {
  // K-way merge over the (already time-ordered) shard buffers; the shard
  // index breaks exact-time ties, matching the documented cross-shard
  // tie-break. Shard counts are single digits, so a linear head scan per
  // record beats a heap.
  const usize n = buffers_.size();
  std::vector<usize> head(n, 0);
  for (;;) {
    usize best = n;
    for (usize s = 0; s < n; ++s) {
      if (head[s] >= buffers_[s].recs.size()) continue;
      if (best == n || buffers_[s].recs[head[s]].time < buffers_[best].recs[head[best]].time) {
        best = s;
      }
    }
    if (best == n) break;
    downstream_->record(buffers_[best].recs[head[best]]);
    ++head[best];
  }
  for (auto& b : buffers_) b.recs.clear();
}

// ---------------------------------------------------------------------------
// ShardedSimulator
// ---------------------------------------------------------------------------

ShardedSimulator::ShardedSimulator(Simulator& main, u32 n_shards, QueueKind queue_kind,
                                   Time lookahead)
    : main_(main), lookahead_(lookahead) {
  assert(n_shards >= 1);
  assert(lookahead > 0.0 && "conservative sync needs a positive lookahead");
  shards_.reserve(n_shards);
  for (u32 s = 0; s < n_shards; ++s) shards_.push_back(std::make_unique<Simulator>(queue_kind));
  main_.set_sharded(this);
}

ShardedSimulator::~ShardedSimulator() {
  if (workers_started_) {
    quit_.store(true, std::memory_order_relaxed);
    go_gen_.fetch_add(1, std::memory_order_release);
    for (auto& w : workers_) w.join();
  }
  main_.set_sharded(nullptr);
}

void ShardedSimulator::start_workers() {
  if (workers_started_) return;
  workers_started_ = true;
  // Shard 0 runs inline on the coordinator thread; shards 1..N-1 get
  // dedicated workers. At N shards the run occupies exactly N threads.
  workers_.reserve(shards_.size() > 0 ? shards_.size() - 1 : 0);
  for (u32 s = 1; s < shards_.size(); ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
}

void ShardedSimulator::set_profiler(obs::Profiler* prof) {
  prof_ = prof;
  if (prof != nullptr) {
    prof->ensure_lanes(1 + shards_.size());
    main_.set_prof(&prof->lane_ref(0));
    for (usize s = 0; s < shards_.size(); ++s) shards_[s]->set_prof(&prof->lane_ref(1 + s));
  } else {
    main_.set_prof(nullptr);
    for (auto& sh : shards_) sh->set_prof(nullptr);
  }
}

void ShardedSimulator::worker_loop(u32 shard) {
  // prof_ is stable for the workers' whole life: set_profiler must run
  // before run_until, which is what starts these threads.
  obs::ProfLane* lane = prof_ != nullptr ? &prof_->lane_ref(1 + shard) : nullptr;
  u64 seen = 0;
  for (;;) {
    SpinWait spin;
    u64 gen;
    const u64 wait_start = lane != nullptr ? obs::prof_now_ns() : 0;
    while ((gen = go_gen_.load(std::memory_order_acquire)) == seen) spin.relax();
    seen = gen;
    if (quit_.load(std::memory_order_relaxed)) break;
    if (lane != nullptr) {
      const u64 wait_end = obs::prof_now_ns();
      lane->barrier.add(wait_end - wait_start);
      lane->record_slice(obs::ProfPhase::kBarrier, wait_start, wait_end - wait_start);
    }
    ShardContext ctx{shard, shards_[shard].get()};
    set_current_shard(&ctx);
    if (lane != nullptr) {
      obs::set_prof_tls_lane(lane);
      const u64 t0 = obs::prof_now_ns();
      shards_[shard]->run_window(window_h_, window_cap_);
      const u64 t1 = obs::prof_now_ns();
      lane->window.add(t1 - t0);
      lane->record_slice(obs::ProfPhase::kWindow, t0, t1 - t0);
      obs::set_prof_tls_lane(nullptr);
    } else {
      shards_[shard]->run_window(window_h_, window_cap_);
    }
    set_current_shard(nullptr);
    done_count_.fetch_add(1, std::memory_order_release);
  }
}

void ShardedSimulator::run_window(Time h_excl, Time cap) {
  window_h_ = h_excl;
  window_cap_ = cap;
  done_count_.store(0, std::memory_order_relaxed);
  go_gen_.fetch_add(1, std::memory_order_release);
  {
    // Shard 0 runs inline on the coordinator thread, so its lane (1 + 0)
    // sees no writes from any other thread during the window.
    ShardContext ctx{0, shards_[0].get()};
    set_current_shard(&ctx);
    if (prof_ != nullptr) {
      obs::ProfLane& lane = prof_->lane_ref(1);
      obs::set_prof_tls_lane(&lane);
      const u64 t0 = obs::prof_now_ns();
      shards_[0]->run_window(h_excl, cap);
      const u64 t1 = obs::prof_now_ns();
      lane.window.add(t1 - t0);
      lane.record_slice(obs::ProfPhase::kWindow, t0, t1 - t0);
      obs::set_prof_tls_lane(nullptr);
    } else {
      shards_[0]->run_window(h_excl, cap);
    }
    set_current_shard(nullptr);
  }
  const u32 others = static_cast<u32>(shards_.size() - 1);
  if (others > 0) {
    const auto wait_start = std::chrono::steady_clock::now();
    const u64 prof_wait_start = prof_ != nullptr ? obs::prof_now_ns() : 0;
    SpinWait spin;
    while (done_count_.load(std::memory_order_acquire) != others) spin.relax();
    barrier_stall_ +=
        std::chrono::duration<f64>(std::chrono::steady_clock::now() - wait_start).count();
    if (prof_ != nullptr) {
      obs::ProfLane& lane = prof_->lane_ref(0);
      const u64 wait_end = obs::prof_now_ns();
      lane.barrier.add(wait_end - prof_wait_start);
      lane.record_slice(obs::ProfPhase::kBarrier, prof_wait_start, wait_end - prof_wait_start);
    }
  }
}

void ShardedSimulator::run_until(Time t_end) {
  start_workers();
  for (;;) {
    const Time m = main_.next_event_time_below();
    Time s = kNoEventBelow;
    for (const auto& sh : shards_) s = std::min(s, sh->next_event_time_below());
    if (m > t_end && s > t_end) break;
    if (m <= s) {
      // The main event is the global minimum (every shard event is >= s).
      // Executing it solo keeps markers / crashes / analysis hooks
      // ordered against all shard work exactly as in the sequential run.
      main_.step_one();
      continue;
    }
    // s < m: nothing on main before the window, and no cross-shard
    // interaction can materialize before s + lookahead.
    const Time h = std::min(s + lookahead_, m);
    ++sync_rounds_;
    if (log_windows_) window_log_.push_back(h);
    run_window(h, t_end);
    if (hooks_ != nullptr) hooks_->on_window_merge(h);
  }
  main_.advance_clock_to(t_end);
  for (const auto& sh : shards_) sh->advance_clock_to(t_end);
}

u64 ShardedSimulator::events_executed() const {
  u64 total = main_.events_executed();
  for (const auto& sh : shards_) total += sh->events_executed();
  return total;
}

SimInvariants ShardedSimulator::invariants() const {
  SimInvariants sum = main_.invariants();
  for (const auto& sh : shards_) {
    const SimInvariants& i = sh->invariants();
    sum.scheduled += i.scheduled;
    sum.executed += i.executed;
    sum.cancels_requested += i.cancels_requested;
    sum.cancels_effective += i.cancels_effective;
    sum.time_regressions += i.time_regressions;
    sum.max_pending = std::max(sum.max_pending, i.max_pending);
  }
  return sum;
}

bool ShardedSimulator::invariants_ok() const {
  if (!main_.invariants_ok()) return false;
  for (const auto& sh : shards_) {
    if (!sh->invariants_ok()) return false;
  }
  return true;
}

EventHandle route_schedule_after(Simulator& declared, Time dt, const EventPayload& payload) {
  if (ShardContext* c = current_shard()) return c->sim->schedule_after(dt, payload);
  ShardedSimulator* sharded = declared.sharded();
  if (sharded != nullptr) {
    switch (payload.kind) {
      case EventKind::kWorkloadOp:
      case EventKind::kHandoff:
      case EventKind::kConnectivity:
        // Per-host timers belong to the owner shard; the absolute time is
        // anchored to the coordinator clock (start-up and post-recovery
        // injections both happen coordinator-side).
        return sharded->shard_sim(sharded->shard_of(payload.a))
            .schedule_at(declared.now() + dt, payload);
      default:
        break;
    }
  }
  return declared.schedule_after(dt, payload);
}

}  // namespace mobichk::des
