#include "core/zgraph.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace mobichk::core {

IntervalGraph::IntervalGraph(const CheckpointLog& log, const MessageLog& messages) : log_(log) {
  const u32 n = log.n_hosts();
  interval_count_.resize(n);
  node_base_.resize(n);
  for (net::HostId h = 0; h < n; ++h) {
    if (log.count(h) == 0) {
      throw std::invalid_argument("IntervalGraph: host without checkpoints");
    }
    node_base_[h] = node_total_;
    interval_count_[h] = log.count(h);
    node_total_ += static_cast<usize>(log.count(h));
  }
  message_adj_.resize(node_total_);
  for (const auto& d : messages.deliveries()) {
    const u64 src_interval = interval_of(d.src, d.send_pos);
    const u64 dst_interval = interval_of(d.dst, d.recv_pos);
    message_adj_[node_id(d.src, src_interval)].push_back(
        static_cast<u32>(node_id(d.dst, dst_interval)));
  }
}

u64 IntervalGraph::interval_of(net::HostId host, u64 pos) const {
  // Interval x spans events in (C_x.event_pos, C_{x+1}.event_pos]; an
  // event at position p therefore belongs to the interval of the last
  // checkpoint whose cut position is < p.
  if (pos == 0) return 0;
  const CheckpointRecord* rec = log_.last_at_or_before_pos(host, pos - 1);
  return rec != nullptr ? rec->ordinal : 0;
}

std::vector<bool> IntervalGraph::reach_from(net::HostId host, u64 interval) const {
  std::vector<bool> visited(node_total_, false);
  std::vector<bool> msg_entry(node_total_, false);
  std::deque<usize> queue;
  const usize start = node_id(host, interval);
  visited[start] = true;
  queue.push_back(start);
  while (!queue.empty()) {
    const usize u = queue.front();
    queue.pop_front();
    // Forward edge to the next interval of the same host.
    // Recover (host, interval) from the node id.
    // (Linear scan over hosts is avoided by storing host in the walk.)
    for (const u32 v : message_adj_[u]) {
      msg_entry[v] = true;
      if (!visited[v]) {
        visited[v] = true;
        queue.push_back(v);
      }
    }
    // Forward edge: u+1 belongs to the same host iff it is below the next
    // host's base. Find the host of u cheaply via binary search.
    const usize next = u + 1;
    if (next < node_total_) {
      // Host of u: the last base <= u.
      const auto it = std::upper_bound(node_base_.begin(), node_base_.end(), u);
      const usize host_of_u = static_cast<usize>(it - node_base_.begin()) - 1;
      const usize host_end = host_of_u + 1 < node_base_.size() ? node_base_[host_of_u + 1]
                                                               : node_total_;
      if (next < host_end && !visited[next]) {
        visited[next] = true;
        queue.push_back(next);
      }
    }
  }
  // Terminal condition needs message-entered nodes only.
  return msg_entry;
}

bool IntervalGraph::z_path_exists(net::HostId a, u64 xa, net::HostId b, u64 xb) const {
  if (xa >= intervals(a) || xb >= intervals(b) + 1) return false;
  const std::vector<bool> msg_entry = reach_from(a, xa);
  // The final message of the Z-path must be received in an interval
  // strictly before checkpoint C_{b,xb}, i.e. interval index <= xb - 1.
  for (u64 y = 0; y < xb && y < intervals(b); ++y) {
    if (msg_entry[node_id(b, y)]) return true;
  }
  return false;
}

bool IntervalGraph::on_z_cycle(net::HostId host, u64 ordinal) const {
  if (ordinal == 0) return false;  // nothing precedes the initial checkpoint
  if (ordinal >= intervals(host)) return false;
  return z_path_exists(host, ordinal, host, ordinal);
}

std::vector<const CheckpointRecord*> IntervalGraph::useless_checkpoints() const {
  std::vector<const CheckpointRecord*> out;
  for (net::HostId h = 0; h < log_.n_hosts(); ++h) {
    for (const auto& rec : log_.of(h)) {
      if (rec.ordinal == 0) continue;
      if (on_z_cycle(h, rec.ordinal)) out.push_back(&rec);
    }
  }
  return out;
}

}  // namespace mobichk::core
