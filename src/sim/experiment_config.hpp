// ExperimentConfig: the nested, file-facing configuration of one run.
//
// SimConfig / ExperimentOptions are the engine-facing structs — flat,
// grown field by field, split across two objects for historical reasons.
// ExperimentConfig is the *interface*: one document, grouped the way a
// user thinks about a run (network / run / workload / mobility / faults /
// data_plane / protocols), serializable to JSON and loadable back
// byte-identically. The CLI's --config reads one, --dump-config writes
// the effective one, and every flag is an override on top of it.
//
// Sub-struct defaults mirror the engine defaults exactly, so a default
// ExperimentConfig maps onto a default SimConfig + ExperimentOptions
// (test_experiment_config pins this field by field).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "des/event_queue.hpp"
#include "net/topology.hpp"
#include "sim/config.hpp"
#include "sim/experiment.hpp"
#include "sim/json.hpp"
#include "storage/data_plane.hpp"

namespace mobichk::sim {

struct ExperimentConfig {
  /// Substrate shape (maps onto net::NetworkConfig).
  struct Network {
    u32 n_hosts = 10;
    u32 n_mss = 5;
    net::MssTopologyKind topology = net::MssTopologyKind::kFullMesh;
    f64 wireless_bandwidth = 0.0;  ///< 0 = ideal channel (paper model).
  };

  /// Run horizon, determinism and engine knobs.
  struct Run {
    f64 sim_length = 100'000.0;
    u64 seed = 1;
    des::QueueKind queue_kind = des::QueueKind::kBinaryHeap;
    u32 shards = 1;  ///< Spatial shards (1 = sequential; bit-identical).
  };

  /// Application workload (paper §5.1).
  struct Workload {
    f64 comm_mean = 20.0;
    f64 p_send = 0.4;
    f64 internal_mean = 1.0;
    u32 payload_bytes = 256;
  };

  /// Host mobility (paper §5.1).
  struct Mobility {
    MobilityModelKind model = MobilityModelKind::kPaperUniform;
    f64 t_switch = 1'000.0;
    f64 p_switch = 1.0;
    f64 disconnect_mean = 1'000.0;
    f64 heterogeneity = 0.0;
  };

  /// Crash injection (serialized only when mode != none).
  struct Faults {
    CrashMode mode = CrashMode::kNone;
    f64 first_crash_at = 0.0;  ///< 0 = sim_length / 2 (the CLI convention).
    f64 crash_interval = 0.0;
    u32 max_crashes = 1;
    u32 target = FaultConfig::kRandomTarget;
    u32 correlated = 2;

    bool enabled() const noexcept { return mode != CrashMode::kNone; }
  };

  Network network;
  Run run;
  Workload workload;
  Mobility mobility;
  Faults faults;
  /// Checkpoint data plane (serialized only when enabled).
  storage::DataPlaneConfig data_plane;
  /// Protocol set; slot 0's piggyback rides the wire.
  std::vector<core::ProtocolKind> protocols{core::ProtocolKind::kTp, core::ProtocolKind::kBcs,
                                            core::ProtocolKind::kQbc};

  /// Engine-facing views. Fields ExperimentConfig does not model
  /// (ckpt_latency, the recovery cost model, ...) keep their defaults.
  SimConfig to_sim_config() const;
  ExperimentOptions to_options() const;
};

/// Serializes the nested document. write -> parse -> write is
/// byte-identical (round-trip pinned by test_experiment_config).
void write_json(std::ostream& os, const ExperimentConfig& cfg);

/// Inverse of write_json(ExperimentConfig): absent members keep their
/// defaults; malformed members throw std::invalid_argument.
ExperimentConfig experiment_config_from_json(const JsonValue& json);

/// Reads and parses `path`; throws std::runtime_error (naming the path)
/// when the file cannot be read.
ExperimentConfig load_experiment_config(const std::string& path);

}  // namespace mobichk::sim
