#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace mobichk::obs {

FixedHistogram::FixedHistogram(f64 lo, f64 hi, u32 buckets)
    : lo_(lo), hi_(hi), width_(0.0), counts_(buckets > 0 ? buckets : 1, 0) {
  if (!(hi > lo)) throw std::invalid_argument("FixedHistogram: hi must exceed lo");
  width_ = (hi_ - lo_) / static_cast<f64>(counts_.size());
}

void FixedHistogram::add(f64 x) noexcept {
  if (std::isnan(x)) return;
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  sum_ += x;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    usize idx = static_cast<usize>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge at hi
    ++counts_[idx];
  }
}

f64 FixedHistogram::quantile(f64 q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const f64 rank = q * static_cast<f64>(count_);
  f64 seen = static_cast<f64>(underflow_);
  if (rank <= seen) return lo_;
  for (usize i = 0; i < counts_.size(); ++i) {
    const f64 in_bucket = static_cast<f64>(counts_[i]);
    if (rank <= seen + in_bucket && in_bucket > 0.0) {
      const f64 frac = (rank - seen) / in_bucket;
      return bucket_lo(i) + frac * width_;
    }
    seen += in_bucket;
  }
  return hi_;
}

ScopedTimer::ScopedTimer(FixedHistogram* hist) noexcept : hist_(hist) {
  if (hist_ != nullptr) {
    start_ns_ = static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
}

f64 ScopedTimer::stop() noexcept {
  if (hist_ == nullptr) return 0.0;
  const u64 now_ns = static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  const f64 elapsed = static_cast<f64>(now_ns - start_ns_) * 1e-9;
  hist_->add(elapsed);
  hist_ = nullptr;
  return elapsed;
}

MetricRegistry::Entry* MetricRegistry::find_entry(std::string_view name) noexcept {
  for (Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const MetricRegistry::Entry* MetricRegistry::find_entry(std::string_view name) const noexcept {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Counter& MetricRegistry::counter(std::string_view name) {
  if (Entry* e = find_entry(name)) {
    if (e->counter == nullptr) {
      throw std::invalid_argument("metric '" + std::string(name) +
                                  "' already registered with a different kind");
    }
    return *e->counter;
  }
  Entry e;
  e.name = std::string(name);
  e.counter = std::make_unique<Counter>();
  entries_.push_back(std::move(e));
  return *entries_.back().counter;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  if (Entry* e = find_entry(name)) {
    if (e->gauge == nullptr) {
      throw std::invalid_argument("metric '" + std::string(name) +
                                  "' already registered with a different kind");
    }
    return *e->gauge;
  }
  Entry e;
  e.name = std::string(name);
  e.gauge = std::make_unique<Gauge>();
  entries_.push_back(std::move(e));
  return *entries_.back().gauge;
}

FixedHistogram& MetricRegistry::histogram(std::string_view name, f64 lo, f64 hi, u32 buckets) {
  if (Entry* e = find_entry(name)) {
    if (e->histogram == nullptr) {
      throw std::invalid_argument("metric '" + std::string(name) +
                                  "' already registered with a different kind");
    }
    if (e->histogram->buckets() != buckets || e->histogram->lo() != lo ||
        e->histogram->hi() != hi) {
      throw std::invalid_argument("metric '" + std::string(name) +
                                  "' already registered with a different shape");
    }
    return *e->histogram;
  }
  Entry e;
  e.name = std::string(name);
  e.histogram = std::make_unique<FixedHistogram>(lo, hi, buckets);
  entries_.push_back(std::move(e));
  return *entries_.back().histogram;
}

const Counter* MetricRegistry::find_counter(std::string_view name) const noexcept {
  const Entry* e = find_entry(name);
  return e != nullptr ? e->counter.get() : nullptr;
}

const Gauge* MetricRegistry::find_gauge(std::string_view name) const noexcept {
  const Entry* e = find_entry(name);
  return e != nullptr ? e->gauge.get() : nullptr;
}

const FixedHistogram* MetricRegistry::find_histogram(std::string_view name) const noexcept {
  const Entry* e = find_entry(name);
  return e != nullptr ? e->histogram.get() : nullptr;
}

std::vector<MetricSample> MetricRegistry::snapshot() const {
  std::vector<MetricSample> out;
  out.reserve(entries_.size() * 2);
  for (const Entry& e : entries_) {
    if (e.counter != nullptr) {
      out.push_back({e.name, static_cast<f64>(e.counter->value())});
    } else if (e.gauge != nullptr) {
      out.push_back({e.name, e.gauge->value()});
    } else if (e.histogram != nullptr) {
      const FixedHistogram& h = *e.histogram;
      out.push_back({e.name + ".count", static_cast<f64>(h.count())});
      out.push_back({e.name + ".mean", h.mean()});
      out.push_back({e.name + ".p50", h.quantile(0.50)});
      out.push_back({e.name + ".p95", h.quantile(0.95)});
      out.push_back({e.name + ".max", h.max()});
    }
  }
  return out;
}

}  // namespace mobichk::obs
