#include "core/recovery.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace mobichk::core {

GlobalCheckpoint index_recovery_line(const CheckpointLog& log, u64 index, IndexLineRule rule,
                                     const std::vector<u64>& current_pos) {
  const u32 n = log.n_hosts();
  if (current_pos.size() != n) {
    throw std::invalid_argument("index_recovery_line: current_pos size mismatch");
  }
  GlobalCheckpoint cut;
  cut.index = index;
  cut.pos.resize(n);
  cut.members.resize(n, nullptr);
  for (net::HostId h = 0; h < n; ++h) {
    const CheckpointRecord* member = nullptr;
    if (rule == IndexLineRule::kLastEqual) {
      member = log.last_with_sn(h, index);
    }
    if (member == nullptr) {
      member = log.first_with_sn_at_least(h, index);
    }
    if (member != nullptr) {
      cut.members[h] = member;
      cut.pos[h] = member->event_pos;
    } else {
      // The host never reached index M: it never received a message with
      // sn >= M, so its current state is consistent with the line.
      cut.pos[h] = current_pos[h];
    }
  }
  return cut;
}

GlobalCheckpoint tp_recovery_line(const CheckpointLog& log, const CheckpointRecord& anchor,
                                  const std::vector<u64>& current_pos) {
  const u32 n = log.n_hosts();
  if (!anchor.has_deps() || anchor.deps_rank() != n) {
    throw std::invalid_argument("tp_recovery_line: anchor lacks dependency vectors");
  }
  GlobalCheckpoint cut;
  cut.index = anchor.ordinal;
  cut.pos.resize(n);
  cut.members.resize(n, nullptr);
  for (net::HostId h = 0; h < n; ++h) {
    const CheckpointRecord* member =
        h == anchor.host ? &anchor : log.by_ordinal(h, anchor.dep_ckpt_at(h));
    if (member != nullptr) {
      cut.members[h] = member;
      cut.pos[h] = member->event_pos;
    } else {
      // The required checkpoint has not been taken yet; under the phase
      // discipline the host's current state is a sound stand-in (it has
      // received nothing since its last send).
      cut.pos[h] = current_pos[h];
    }
  }
  return cut;
}

std::vector<const MessageLog::Delivery*> find_orphans(const MessageLog& messages,
                                                      const GlobalCheckpoint& cut) {
  std::vector<const MessageLog::Delivery*> orphans;
  for (const auto& d : messages.deliveries()) {
    if (d.send_pos > cut.pos.at(d.src) && d.recv_pos <= cut.pos.at(d.dst)) {
      orphans.push_back(&d);
    }
  }
  return orphans;
}

std::string describe_orphan(const MessageLog::Delivery& d, const GlobalCheckpoint& cut) {
  std::ostringstream os;
  os << "orphan: msg " << d.msg_id << " h" << d.src << "@" << d.send_pos << " -> h" << d.dst
     << "@" << d.recv_pos << " vs cut (src<=" << cut.pos.at(d.src) << ", dst<=" << cut.pos.at(d.dst)
     << ") index " << cut.index;
  return os.str();
}

u64 RollbackResult::total_discarded() const noexcept {
  u64 total = 0;
  for (const u64 d : checkpoints_discarded) total += d;
  return total;
}

u64 RollbackResult::undone_events() const {
  if (line.pos.size() != fail_pos.size()) {
    throw std::logic_error("RollbackResult::undone_events: line/fail_pos size mismatch");
  }
  u64 total = 0;
  for (usize h = 0; h < fail_pos.size(); ++h) {
    if (fail_pos[h] < line.pos[h]) {
      throw std::logic_error("RollbackResult::undone_events: line above the failure cut");
    }
    total += fail_pos[h] - line.pos[h];
  }
  return total;
}

namespace {

std::vector<bool> failure_mask(u32 n, net::HostId failed_host, const char* fn) {
  std::vector<bool> failed(n, failed_host == kAllHostsFailed);
  if (failed_host != kAllHostsFailed) {
    if (failed_host >= n) {
      throw std::invalid_argument(std::string(fn) + ": failed_host out of range");
    }
    failed[failed_host] = true;
  }
  return failed;
}

}  // namespace

RollbackResult rollback_to_consistent(const CheckpointLog& log, const MessageLog& messages,
                                      const std::vector<u64>& fail_pos,
                                      net::HostId failed_host) {
  return rollback_to_consistent(log, messages, fail_pos,
                                failure_mask(log.n_hosts(), failed_host, "rollback_to_consistent"));
}

RollbackResult rollback_to_consistent(const CheckpointLog& log, const MessageLog& messages,
                                      const std::vector<u64>& fail_pos,
                                      const std::vector<bool>& failed) {
  const u32 n = log.n_hosts();
  if (fail_pos.size() != n || failed.size() != n) {
    throw std::invalid_argument("rollback_to_consistent: fail_pos/failed size mismatch");
  }
  RollbackResult result;
  result.fail_pos = fail_pos;
  result.line.pos.resize(n);
  result.line.members.resize(n, nullptr);
  result.checkpoints_discarded.assign(n, 0);

  std::vector<u64> latest_ordinal(n, 0);
  for (net::HostId h = 0; h < n; ++h) {
    const CheckpointRecord* member = log.last_at_or_before_pos(h, fail_pos[h]);
    if (member == nullptr) {
      throw std::logic_error("rollback_to_consistent: host lacks an initial checkpoint");
    }
    latest_ordinal[h] = member->ordinal;
    if (failed[h]) {
      result.line.members[h] = member;
      result.line.pos[h] = member->event_pos;
    } else {
      // Survivor: its failure state is intact and can be checkpointed on
      // the spot (virtual member).
      result.line.pos[h] = fail_pos[h];
    }
  }

  // Fixpoint: keep rolling receivers of orphan messages back. Each
  // rollback strictly decreases some cut position, so this terminates
  // (at worst at the initial checkpoints).
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.iterations;
    for (const auto& d : messages.deliveries()) {
      if (d.send_pos > result.line.pos[d.src] && d.recv_pos <= result.line.pos[d.dst]) {
        // The receiver must roll strictly below the orphan receive. A
        // receive at pos 0 cannot be rolled under (and `recv_pos - 1`
        // would wrap the u64); likewise, when no stored checkpoint lies
        // strictly below the current cut the line cannot move — skip the
        // delivery instead of looping on it forever.
        const CheckpointRecord* member =
            d.recv_pos == 0 ? nullptr : log.last_at_or_before_pos(d.dst, d.recv_pos - 1);
        if (member == nullptr || member->event_pos >= result.line.pos[d.dst]) continue;
        result.line.members[d.dst] = member;
        result.line.pos[d.dst] = member->event_pos;
        changed = true;
      }
    }
  }

  for (net::HostId h = 0; h < n; ++h) {
    if (result.line.members[h] != nullptr) {
      result.checkpoints_discarded[h] = latest_ordinal[h] - result.line.members[h]->ordinal;
    }
  }
  return result;
}

RollbackResult index_rollback(const CheckpointLog& log, IndexLineRule rule,
                              const std::vector<u64>& fail_pos, net::HostId failed_host) {
  return index_rollback(log, rule, fail_pos,
                        failure_mask(log.n_hosts(), failed_host, "index_rollback"));
}

RollbackResult index_rollback(const CheckpointLog& log, IndexLineRule rule,
                              const std::vector<u64>& fail_pos, const std::vector<bool>& failed) {
  const u32 n = log.n_hosts();
  if (fail_pos.size() != n || failed.size() != n) {
    throw std::invalid_argument("index_rollback: fail_pos/failed size mismatch");
  }
  RollbackResult result;
  result.fail_pos = fail_pos;
  result.iterations = 1;
  if (n == 0) return result;  // degenerate zero-host log: nothing to roll back
  // Every crashed host must restart from a stored checkpoint; the best
  // index is the highest one all of them reached. (Feeding the
  // kAllHostsFailed sentinel into max_sn used to index out of range.)
  bool any_failed = false;
  u64 index = ~0ULL;
  for (net::HostId h = 0; h < n; ++h) {
    if (!failed[h]) continue;
    any_failed = true;
    index = std::min(index, log.max_sn(h));
  }
  if (!any_failed) {
    throw std::invalid_argument("index_rollback: no failed host — line index undefined");
  }
  result.line = index_recovery_line(log, index, rule, fail_pos);
  // Survivors whose member lies beyond their failure position roll to
  // their last stored checkpoint with sn semantics intact: this cannot
  // happen for the index = failed hosts' max sn (members were taken
  // before the failure), but clamp defensively.
  for (net::HostId h = 0; h < n; ++h) {
    if (result.line.pos[h] > fail_pos[h]) {
      const CheckpointRecord* member = log.last_at_or_before_pos(h, fail_pos[h]);
      result.line.members[h] = member;
      result.line.pos[h] = member != nullptr ? member->event_pos : 0;
    }
  }
  result.checkpoints_discarded.assign(n, 0);
  for (net::HostId h = 0; h < n; ++h) {
    const CheckpointRecord* latest = log.last_at_or_before_pos(h, fail_pos[h]);
    if (latest != nullptr && result.line.members[h] != nullptr) {
      result.checkpoints_discarded[h] = latest->ordinal - result.line.members[h]->ordinal;
    }
  }
  return result;
}

}  // namespace mobichk::core
