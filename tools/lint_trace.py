#!/usr/bin/env python3
"""Structural linter for mobichk's observability exports.

Validates three formats (dispatched on file extension, or forced with
--format):

  *.json   Chrome-trace files (obs::write_chrome_trace / write_host_trace):
           checks the top-level shape, the per-phase required keys, and —
           the parts a generic JSON check cannot see —
             * every flow-finish event ("ph":"f") is preceded in file
               order by a flow-start ("ph":"s") with the same (cat, id),
               and no flow terminates twice;
             * duration slices nest: every "B" has a matching "E" on the
               same (pid, tid), never an "E" on an empty stack, and
               begin/complete timestamps never regress within one row;
             * host-time separation: a pid that carries B/E slices (the
               profiler's host-time track) must not also carry sim-time
               flow or instant events — host wall-clock and simulated
               time never share a track.

  *.jsonl  Metrics/event JSONL files (obs::write_metrics_jsonl): every
           line parses on its own, carries a known "type", and all event
           lines precede all metric lines (consumers stream them in one
           pass).

  *.html   Run reports (sim::write_html_report): the document must be
           self-contained — no external stylesheet/script/image/font
           references, no <script> at all — so the file works offline and
           archives as one artifact.

Exit status: 0 clean, 1 with a message naming file, line/event and reason.
Usage: tools/lint_trace.py FILE [FILE ...]
"""

import json
import re
import sys

PHASE_REQUIRED = {
    "M": ("name", "pid"),
    "i": ("name", "ts", "pid", "tid", "s"),
    "X": ("name", "ts", "dur", "pid", "tid"),
    "B": ("name", "ts", "pid", "tid"),
    "E": ("ts", "pid", "tid"),
    "s": ("name", "cat", "id", "ts", "pid", "tid"),
    "f": ("name", "cat", "id", "ts", "pid", "tid", "bp"),
}

JSONL_TYPES = {"event", "metric"}

# Sim-time phases that must never share a pid with host-time B/E slices.
SIM_ONLY_PHASES = ("i", "s", "f")


class LintError(Exception):
    pass


def lint_chrome_trace(path, data):
    try:
        doc = json.loads(data)
    except json.JSONDecodeError as e:
        raise LintError(f"not valid JSON: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise LintError("top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise LintError("traceEvents is not an array")

    # First pass: which pids carry B/E rows (the host-time track)? The
    # monotonic-timestamp rule below only binds there — sim-time X slices
    # (checkpoint transfers) are grouped per host, not time-ordered.
    slice_pids = set()
    for e in events:
        if isinstance(e, dict) and e.get("ph") in ("B", "E") and "pid" in e:
            slice_pids.add(e["pid"])

    open_flows = set()
    closed_flows = set()
    slice_stacks = {}  # (pid, tid) -> list of open B names
    last_ts = {}  # (pid, tid) -> last B/X timestamp on that row
    sim_pids = set()  # pids carrying flow/instant rows (sim-time tracks)
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            raise LintError(f"{where}: not an object")
        ph = e.get("ph")
        if ph not in PHASE_REQUIRED:
            raise LintError(f"{where}: unknown ph {ph!r}")
        for key in PHASE_REQUIRED[ph]:
            if key not in e:
                raise LintError(f"{where}: ph {ph!r} is missing {key!r}")
        if ph in ("s", "f"):
            sim_pids.add(e["pid"])
            flow = (e["cat"], e["id"])
            if ph == "s":
                open_flows.add(flow)
            else:
                if e["bp"] != "e":
                    raise LintError(f"{where}: flow finish must bind enclosing (bp='e')")
                if flow not in open_flows:
                    raise LintError(f"{where}: flow finish {flow} has no earlier start")
                if flow in closed_flows:
                    raise LintError(f"{where}: flow {flow} terminated twice")
                closed_flows.add(flow)
        elif ph == "i":
            sim_pids.add(e["pid"])
        elif ph in ("B", "E", "X"):
            row = (e["pid"], e["tid"])
            if ph in ("B", "X") and e["pid"] in slice_pids:
                ts = e["ts"]
                if row in last_ts and ts < last_ts[row]:
                    raise LintError(
                        f"{where}: ts {ts} regresses below {last_ts[row]} on row {row}"
                    )
                last_ts[row] = ts
            if ph == "B":
                slice_stacks.setdefault(row, []).append(e["name"])
            elif ph == "E":
                stack = slice_stacks.get(row)
                if not stack:
                    raise LintError(f"{where}: E with no open B on row {row}")
                stack.pop()
    dangling = open_flows - closed_flows
    if dangling:
        raise LintError(f"{len(dangling)} flow start(s) never finish, e.g. {sorted(dangling)[0]}")
    for row, stack in slice_stacks.items():
        if stack:
            raise LintError(f"{len(stack)} B slice(s) never closed on row {row}, e.g. {stack[-1]!r}")
    shared = slice_pids & sim_pids
    if shared:
        raise LintError(
            f"pid(s) {sorted(shared)} mix host-time slices with sim-time events"
        )


def lint_jsonl(path, data):
    seen_metric = False
    n_events = n_metrics = 0
    for lineno, line in enumerate(data.splitlines(), start=1):
        if not line.strip():
            raise LintError(f"line {lineno}: blank line")
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            raise LintError(f"line {lineno}: not valid JSON: {e}")
        kind = obj.get("type")
        if kind not in JSONL_TYPES:
            raise LintError(f"line {lineno}: unknown type {kind!r}")
        if kind == "metric":
            seen_metric = True
            n_metrics += 1
            if "name" not in obj or "value" not in obj:
                raise LintError(f"line {lineno}: metric without name/value")
        else:
            n_events += 1
            if seen_metric:
                raise LintError(f"line {lineno}: event after the metric block")
            if "kind" not in obj or "t" not in obj:
                raise LintError(f"line {lineno}: event without kind/t")
    if n_metrics == 0:
        raise LintError("no metric lines (every observed run exports some)")
    return n_events, n_metrics


def lint_html(path, data):
    lower = data.lower()
    if "<html" not in lower or "</html>" not in lower:
        raise LintError("not an HTML document (missing <html>...</html>)")
    if "<script" in lower:
        raise LintError("report must not contain <script> (self-contained, no JS)")
    # Any attribute or CSS reference reaching off the file breaks the
    # "one artifact, works offline" contract.
    external = re.search(
        r"""(?:src|href)\s*=\s*["'](?:https?:)?//|@import|url\(\s*["']?(?:https?:)?//""",
        data,
        re.IGNORECASE,
    )
    if external:
        snippet = data[external.start() : external.start() + 60]
        raise LintError(f"external reference: {snippet!r}")


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    forced = None
    for a in argv[1:]:
        if a.startswith("--format="):
            forced = a.split("=", 1)[1]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in args:
        if forced:
            fmt = forced
        elif path.endswith(".jsonl"):
            fmt = "jsonl"
        elif path.endswith(".html"):
            fmt = "html"
        else:
            fmt = "json"
        try:
            with open(path, encoding="utf-8") as f:
                data = f.read()
            if fmt == "jsonl":
                lint_jsonl(path, data)
            elif fmt == "html":
                lint_html(path, data)
            else:
                lint_chrome_trace(path, data)
        except (OSError, LintError) as e:
            print(f"lint_trace: {path}: {e}", file=sys.stderr)
            return 1
        print(f"lint_trace: {path}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
