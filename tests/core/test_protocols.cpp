// Protocol behaviour tests: the truth tables of the paper's pseudocode
// (§4.1, §4.2), driven through a tiny real network.
#include <gtest/gtest.h>

#include "core/harness.hpp"
#include "core/protocols/basic_only.hpp"
#include "core/protocols/bcs.hpp"
#include "core/protocols/coordinated.hpp"
#include "core/protocols/qbc.hpp"
#include "core/protocols/tp.hpp"
#include "core/protocols/uncoordinated.hpp"
#include "des/simulator.hpp"
#include "net/network.hpp"

namespace mobichk::core {
namespace {

/// Three hosts on three MSSs, one protocol under test.
class ProtocolFixture : public ::testing::Test {
 protected:
  ProtocolFixture() : net_(sim_, config(), 1), harness_(net_) {}

  static net::NetworkConfig config() {
    net::NetworkConfig cfg;
    cfg.n_hosts = 3;
    cfg.n_mss = 3;
    return cfg;
  }

  template <typename P, typename... Args>
  P& install(Args&&... args) {
    const usize slot = harness_.add_protocol(std::make_unique<P>(std::forward<Args>(args)...));
    net_.start({0, 1, 2});
    return static_cast<P&>(harness_.protocol(slot));
  }

  /// Sends src -> dst and delivers + consumes it.
  void transfer(net::HostId src, net::HostId dst) {
    net_.send_app_message(src, dst, 64);
    sim_.run();
    ASSERT_TRUE(net_.consume_one(dst));
  }

  const CheckpointLog& log() const { return harness_.log(0); }

  des::Simulator sim_;
  net::Network net_;
  ProtocolHarness harness_;
};

// ---------------------------------------------------------------------------
// TP (Acharya-Badrinath two-phase, §4.1)
// ---------------------------------------------------------------------------

using TpTest = ProtocolFixture;

TEST_F(TpTest, InitialCheckpointAndRecvPhase) {
  TpProtocol& tp = install<TpProtocol>();
  EXPECT_EQ(log().initial(), 3u);
  for (net::HostId h = 0; h < 3; ++h) EXPECT_FALSE(tp.phase_is_send(h));
}

TEST_F(TpTest, SendSetsPhase) {
  TpProtocol& tp = install<TpProtocol>();
  net_.send_app_message(0, 1, 64);
  EXPECT_TRUE(tp.phase_is_send(0));
  EXPECT_FALSE(tp.phase_is_send(1));
}

TEST_F(TpTest, ReceiveWithoutPriorSendDoesNotForce) {
  install<TpProtocol>();
  transfer(0, 1);  // 1 has not sent: no forced checkpoint.
  EXPECT_EQ(log().forced(), 0u);
  EXPECT_EQ(log().count(1), 1u);  // only the initial one
}

TEST_F(TpTest, ReceiveAfterSendForcesExactlyOne) {
  TpProtocol& tp = install<TpProtocol>();
  net_.send_app_message(1, 2, 64);  // host 1 enters SEND phase
  transfer(0, 1);                   // receive while SEND -> forced ckpt
  EXPECT_EQ(log().forced(), 1u);
  EXPECT_EQ(log().of(1).back().kind, CheckpointKind::kForced);
  EXPECT_FALSE(tp.phase_is_send(1));  // phase reset by the checkpoint
}

TEST_F(TpTest, SecondReceiveInRecvPhaseDoesNotForce) {
  install<TpProtocol>();
  net_.send_app_message(1, 2, 64);
  transfer(0, 1);  // forces
  transfer(2, 1);  // no new send since the forced ckpt: no force
  EXPECT_EQ(log().forced(), 1u);
}

TEST_F(TpTest, BasicCheckpointResetsPhase) {
  TpProtocol& tp = install<TpProtocol>();
  net_.send_app_message(1, 2, 64);
  EXPECT_TRUE(tp.phase_is_send(1));
  net_.switch_cell(1, 0);  // basic checkpoint
  EXPECT_FALSE(tp.phase_is_send(1));
  transfer(0, 1);  // fresh interval, receive is safe
  EXPECT_EQ(log().forced(), 0u);
  EXPECT_EQ(log().basic(), 1u);
}

TEST_F(TpTest, CellSwitchAndDisconnectTakeBasicCheckpoints) {
  install<TpProtocol>();
  net_.switch_cell(0, 1);
  net_.disconnect(2);
  EXPECT_EQ(log().basic(), 2u);
  EXPECT_EQ(log().of(0).back().kind, CheckpointKind::kBasic);
  EXPECT_EQ(log().of(2).back().kind, CheckpointKind::kBasic);
}

TEST_F(TpTest, DependencyVectorsPropagateTransitively) {
  TpProtocol& tp = install<TpProtocol>();
  // 0 sends to 1: 1 requires 0's checkpoint #1 (the one closing 0's
  // current interval).
  transfer(0, 1);
  EXPECT_EQ(tp.requirement_vector(1)[0], 1u);
  // 1 sends to 2: 2 transitively requires 0's #1 and 1's #1.
  transfer(1, 2);
  EXPECT_EQ(tp.requirement_vector(2)[0], 1u);
  EXPECT_EQ(tp.requirement_vector(2)[1], 1u);
}

TEST_F(TpTest, CheckpointRecordsCarryDependencyVectors) {
  install<TpProtocol>();
  transfer(0, 1);
  net_.switch_cell(1, 2);
  const CheckpointRecord& rec = log().of(1).back();
  ASSERT_TRUE(rec.has_deps());
  ASSERT_EQ(rec.deps_rank(), 3u);
  EXPECT_EQ(rec.dep_ckpt_at(0), 1u);  // requires 0's checkpoint ordinal 1
  EXPECT_EQ(rec.dep_ckpt_at(1), 1u);  // its own ordinal
  EXPECT_EQ(rec.dep_ckpt_at(2), 0u);  // no dependency on host 2
}

TEST_F(TpTest, DensePiggybackCarriesTwoVectors) {
  TpProtocol& tp = install<TpProtocol>(TpEncoding::kDense);
  const net::Piggyback pb = tp.make_piggyback(net_.host(0), 1);
  EXPECT_EQ(pb.vec_a.size(), 3u);
  EXPECT_EQ(pb.vec_b.size(), 3u);
  EXPECT_EQ(pb.wire_bytes(), 6 * sizeof(u32));
  EXPECT_EQ(pb.dense_bytes(), pb.wire_bytes());
}

TEST_F(TpTest, SparsePiggybackCarriesDeltas) {
  TpProtocol& tp = install<TpProtocol>();
  ASSERT_EQ(tp.encoding(), TpEncoding::kSparse);
  const net::Piggyback pb = tp.make_piggyback(net_.host(0), 1);
  EXPECT_TRUE(pb.has_delta);
  EXPECT_TRUE(pb.vec_a.empty());
  // Nothing learned yet: only the sender's own entry travels.
  ASSERT_EQ(pb.deltas.size(), 1u);
  EXPECT_EQ(pb.deltas[0].idx, 0u);
  EXPECT_EQ(pb.deltas[0].ckpt, 1u);  // the checkpoint closing 0's interval
  EXPECT_EQ(pb.dense_bytes(), 6 * sizeof(u32));
  EXPECT_LE(pb.wire_bytes(), pb.dense_bytes());
}

TEST_F(TpTest, SparseDeltaShipsOnlyChangesPerDestination) {
  TpProtocol& tp = install<TpProtocol>();
  transfer(0, 1);  // 1 learns about 0
  // First message 1 -> 2 carries 1's own entry plus the learned entry.
  net::Piggyback first = tp.make_piggyback(net_.host(1), 2);
  ASSERT_EQ(first.deltas.size(), 2u);
  EXPECT_EQ(first.delta_seq, 0u);
  // Nothing changed since: the next message to the same destination
  // carries only the (always-fresh) own entry, and the sequence advances.
  net::Piggyback second = tp.make_piggyback(net_.host(1), 2);
  ASSERT_EQ(second.deltas.size(), 1u);
  EXPECT_EQ(second.deltas[0].idx, 1u);
  EXPECT_EQ(second.delta_seq, 1u);
  // A different destination has seen nothing and gets the full set.
  net::Piggyback other = tp.make_piggyback(net_.host(1), 0);
  EXPECT_EQ(other.deltas.size(), 2u);
}

// ---------------------------------------------------------------------------
// BCS (Briatico-Ciuffoletti-Simoncini, §4.2)
// ---------------------------------------------------------------------------

using BcsTest = ProtocolFixture;

TEST_F(BcsTest, InitialSequenceNumbersAreZero) {
  BcsProtocol& bcs = install<BcsProtocol>();
  for (net::HostId h = 0; h < 3; ++h) EXPECT_EQ(bcs.sequence_number(h), 0u);
  EXPECT_EQ(log().of(0)[0].sn, 0u);
}

TEST_F(BcsTest, BasicCheckpointIncrementsSn) {
  BcsProtocol& bcs = install<BcsProtocol>();
  net_.switch_cell(0, 1);
  EXPECT_EQ(bcs.sequence_number(0), 1u);
  EXPECT_EQ(log().of(0).back().sn, 1u);
  net_.disconnect(0);
  EXPECT_EQ(bcs.sequence_number(0), 2u);
}

TEST_F(BcsTest, EqualSnReceiveDoesNotForce) {
  install<BcsProtocol>();
  transfer(0, 1);  // m.sn = 0 = sn_1
  EXPECT_EQ(log().forced(), 0u);
}

TEST_F(BcsTest, HigherSnReceiveForcesAndAdopts) {
  BcsProtocol& bcs = install<BcsProtocol>();
  net_.switch_cell(0, 1);  // sn_0 = 1
  transfer(0, 2);          // m.sn = 1 > sn_2 = 0 -> forced, sn_2 = 1
  EXPECT_EQ(log().forced(), 1u);
  EXPECT_EQ(bcs.sequence_number(2), 1u);
  EXPECT_EQ(log().of(2).back().sn, 1u);
  EXPECT_EQ(log().of(2).back().kind, CheckpointKind::kForced);
}

TEST_F(BcsTest, SnJumpsToMessageSn) {
  BcsProtocol& bcs = install<BcsProtocol>();
  for (int i = 0; i < 5; ++i) net_.switch_cell(0, (net_.host(0).mss() + 1) % 3);
  EXPECT_EQ(bcs.sequence_number(0), 5u);
  transfer(0, 1);
  EXPECT_EQ(bcs.sequence_number(1), 5u);  // jumped straight to 5
  EXPECT_EQ(log().of(1).back().sn, 5u);
}

TEST_F(BcsTest, StaleMessageDoesNotForce) {
  install<BcsProtocol>();
  net_.send_app_message(0, 1, 64);  // carries sn 0
  sim_.run();
  net_.switch_cell(1, 0);  // sn_1 = 1
  ASSERT_TRUE(net_.consume_one(1));
  EXPECT_EQ(log().forced(), 0u);  // 0 < 1: no force
}

TEST_F(BcsTest, PiggybackIsOneInteger) {
  BcsProtocol& bcs = install<BcsProtocol>();
  const net::Piggyback pb = bcs.make_piggyback(net_.host(0), 1);
  EXPECT_TRUE(pb.has_sn);
  EXPECT_EQ(pb.wire_bytes(), sizeof(u64));
}

// ---------------------------------------------------------------------------
// QBC (Quaglia-Baldoni-Ciciani, §4.2)
// ---------------------------------------------------------------------------

using QbcTest = ProtocolFixture;

TEST_F(QbcTest, InitStateMatchesPaper) {
  QbcProtocol& qbc = install<QbcProtocol>();
  for (net::HostId h = 0; h < 3; ++h) {
    EXPECT_EQ(qbc.sequence_number(h), 0u);
    EXPECT_EQ(qbc.receive_number(h), -1);
  }
}

TEST_F(QbcTest, BasicCheckpointReplacesWhenRnBelowSn) {
  QbcProtocol& qbc = install<QbcProtocol>();
  // rn = -1 < sn = 0: the checkpoint replaces its predecessor, sn stays.
  net_.switch_cell(0, 1);
  EXPECT_EQ(qbc.sequence_number(0), 0u);
  EXPECT_EQ(log().of(0).back().sn, 0u);
  EXPECT_TRUE(log().of(0).back().replaced_predecessor);
  // And again: still replacing.
  net_.switch_cell(0, 2);
  EXPECT_EQ(qbc.sequence_number(0), 0u);
  EXPECT_EQ(log().count(0), 3u);
}

TEST_F(QbcTest, BasicCheckpointIncrementsWhenRnEqualsSn) {
  QbcProtocol& qbc = install<QbcProtocol>();
  transfer(1, 0);  // 0 receives sn 0 -> rn_0 = 0 = sn_0
  EXPECT_EQ(qbc.receive_number(0), 0);
  net_.switch_cell(0, 1);
  EXPECT_EQ(qbc.sequence_number(0), 1u);
  EXPECT_FALSE(log().of(0).back().replaced_predecessor);
}

TEST_F(QbcTest, ReceiveUpdatesRnAndForcesOnHigherSn) {
  QbcProtocol& qbc = install<QbcProtocol>();
  transfer(1, 0);  // rn_0 = 0, no force
  EXPECT_EQ(log().forced(), 0u);
  net_.switch_cell(1, 0);  // sn_1: rn=-1<0 -> replace, sn_1 stays 0... force rn up:
  transfer(0, 1);          // deliver sn 0 to 1: rn_1 = 0 = sn_1
  net_.switch_cell(1, 2);  // now increments: sn_1 = 1
  EXPECT_EQ(qbc.sequence_number(1), 1u);
  transfer(1, 2);  // m.sn = 1 > sn_2 = 0: forced
  EXPECT_EQ(log().forced(), 1u);
  EXPECT_EQ(qbc.sequence_number(2), 1u);
  EXPECT_EQ(qbc.receive_number(2), 1);
}

TEST_F(QbcTest, RnNeverExceedsSn) {
  QbcProtocol& qbc = install<QbcProtocol>();
  for (int round = 0; round < 10; ++round) {
    net_.switch_cell(0, (net_.host(0).mss() + 1) % 3);
    transfer(0, 1);
    transfer(1, 2);
    transfer(2, 0);
    for (net::HostId h = 0; h < 3; ++h) {
      EXPECT_LE(qbc.receive_number(h), static_cast<i64>(qbc.sequence_number(h)));
    }
  }
}

TEST_F(QbcTest, SlowerIndexGrowthThanBcs) {
  // Paired BCS + QBC on the same run: QBC sequence numbers never exceed
  // BCS's, host by host.
  const usize bcs_slot = harness_.add_protocol(std::make_unique<BcsProtocol>());
  const usize qbc_slot = harness_.add_protocol(std::make_unique<QbcProtocol>());
  net_.start({0, 1, 2});
  auto& bcs = static_cast<BcsProtocol&>(harness_.protocol(bcs_slot));
  auto& qbc = static_cast<QbcProtocol&>(harness_.protocol(qbc_slot));
  for (int round = 0; round < 8; ++round) {
    net_.switch_cell(0, (net_.host(0).mss() + 1) % 3);
    net_.switch_cell(1, (net_.host(1).mss() + 1) % 3);
    net_.send_app_message(0, 1, 8);
    net_.send_app_message(1, 2, 8);
    sim_.run();
    net_.consume_one(1);
    net_.consume_one(2);
    for (net::HostId h = 0; h < 3; ++h) {
      EXPECT_LE(qbc.sequence_number(h), bcs.sequence_number(h));
    }
  }
  EXPECT_LE(harness_.log(qbc_slot).n_tot(), harness_.log(bcs_slot).n_tot());
}

// ---------------------------------------------------------------------------
// BasicOnly
// ---------------------------------------------------------------------------

using BasicOnlyTest = ProtocolFixture;

TEST_F(BasicOnlyTest, OnlyMandatoryCheckpoints) {
  install<BasicOnlyProtocol>();
  transfer(0, 1);
  transfer(1, 0);
  EXPECT_EQ(log().forced(), 0u);
  net_.switch_cell(0, 1);
  net_.disconnect(1);
  EXPECT_EQ(log().basic(), 2u);
  EXPECT_EQ(log().n_tot(), 2u);
}

TEST_F(BasicOnlyTest, NoPiggyback) {
  BasicOnlyProtocol& p = install<BasicOnlyProtocol>();
  EXPECT_EQ(p.make_piggyback(net_.host(0), 1).wire_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Uncoordinated
// ---------------------------------------------------------------------------

using UncoordinatedTest = ProtocolFixture;

TEST_F(UncoordinatedTest, TakesPeriodicLocalCheckpoints) {
  install<UncoordinatedProtocol>(10.0, 7);
  sim_.run_until(1000.0);
  // ~100 ticks per host expected; allow wide slack.
  EXPECT_GT(log().forced(), 150u);
  EXPECT_LT(log().forced(), 600u);
}

TEST_F(UncoordinatedTest, SkipsTicksWhileDisconnected) {
  install<UncoordinatedProtocol>(10.0, 7);
  net_.disconnect(0);
  sim_.run_until(1000.0);
  // Host 0 contributed only its basic disconnect checkpoint.
  EXPECT_EQ(log().count(0), 2u);  // initial + disconnect
  EXPECT_GT(log().count(1), 50u);
}

// ---------------------------------------------------------------------------
// Coordinated (Chandy-Lamport style, mobile-adapted)
// ---------------------------------------------------------------------------

using CoordinatedTest = ProtocolFixture;

TEST_F(CoordinatedTest, RoundsForceOneCheckpointPerHost) {
  CoordinatedProtocol& coord = install<CoordinatedProtocol>(100.0);
  sim_.run_until(350.0);  // rounds at 100, 200, 300
  EXPECT_EQ(coord.rounds_initiated(), 3u);
  for (net::HostId h = 0; h < 3; ++h) {
    EXPECT_EQ(coord.round_of(h), 3u);
    EXPECT_EQ(log().count(h), 4u);  // initial + 3 rounds
  }
  EXPECT_EQ(coord.control_messages(), 9u);
}

TEST_F(CoordinatedTest, PiggybackedRoundForcesEarlyCheckpoint) {
  CoordinatedProtocol& coord = install<CoordinatedProtocol>(100.0, /*marker_latency=*/50.0);
  sim_.run_until(160.0);  // markers of round 1 arrive at t=150
  EXPECT_EQ(coord.round_of(0), 1u);
  // Host 0 (already in round 1) sends to host 1 before its marker of a
  // hypothetical round 2 exists; now initiate round 2 by time passing,
  // but deliver an app message first: simulate by sending at t=160 after
  // round 2 starts at t=200... Simpler: verify the message rule directly.
  net_.send_app_message(0, 1, 8);
  sim_.run_until(161.0);
  net_.consume_one(1);
  EXPECT_EQ(coord.round_of(1), 1u);  // adopted via piggyback or marker
}

TEST_F(CoordinatedTest, DisconnectedHostAdoptsRoundWithoutCheckpoint) {
  CoordinatedProtocol& coord = install<CoordinatedProtocol>(100.0);
  net_.disconnect(0);
  const u64 ckpts_after_disconnect = log().count(0);
  sim_.run_until(250.0);  // two rounds pass while disconnected
  EXPECT_EQ(coord.round_of(0), 2u);
  EXPECT_EQ(log().count(0), ckpts_after_disconnect);  // no new checkpoints
  // The disconnect checkpoint was relabeled to stand in for round 2.
  EXPECT_EQ(log().of(0).back().sn, 2u);
}

}  // namespace
}  // namespace mobichk::core
