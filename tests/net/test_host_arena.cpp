// SoA host arena and location directory: unit properties plus a
// randomized differential against brute-force oracles at n in {1, 2,
// 1000}, and a live-network consistency check after scripted mobility.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "des/distributions.hpp"
#include "des/rng.hpp"
#include "des/simulator.hpp"
#include "net/handler.hpp"
#include "net/host_arena.hpp"
#include "net/location_directory.hpp"
#include "net/network.hpp"

namespace mobichk::net {
namespace {

// ---------------------------------------------------------------------------
// Mailbox
// ---------------------------------------------------------------------------

AppMessage make_msg(u64 id) {
  AppMessage m;
  m.id = id;
  return m;
}

TEST(Mailbox, FifoOrderAndSizes) {
  Mailbox box;
  EXPECT_TRUE(box.empty());
  for (u64 i = 1; i <= 5; ++i) box.push(make_msg(i));
  EXPECT_EQ(box.size(), 5u);
  for (u64 i = 1; i <= 5; ++i) EXPECT_EQ(box.pop().id, i);
  EXPECT_TRUE(box.empty());
}

TEST(Mailbox, RewindsAndReusesCapacityWhenDrained) {
  Mailbox box;
  // Steady-state cycles: after each full drain the head rewinds, so the
  // vector never grows past the high-water mark of one burst.
  for (int round = 0; round < 100; ++round) {
    for (u64 i = 0; i < 4; ++i) box.push(make_msg(i));
    for (u64 i = 0; i < 4; ++i) EXPECT_EQ(box.pop().id, i);
    EXPECT_TRUE(box.empty());
  }
}

TEST(Mailbox, InterleavedPushPopKeepsFifo) {
  Mailbox box;
  u64 next_in = 0, next_out = 0;
  des::RngStream rng(3, "mailbox-fuzz");
  for (int step = 0; step < 2000; ++step) {
    if (box.empty() || rng.uniform01() < 0.55) {
      box.push(make_msg(next_in++));
    } else {
      ASSERT_EQ(box.pop().id, next_out++);
    }
    ASSERT_EQ(box.size(), next_in - next_out);
  }
  while (!box.empty()) ASSERT_EQ(box.pop().id, next_out++);
}

TEST(Mailbox, DrainVisitsInOrderAndEmpties) {
  Mailbox box;
  for (u64 i = 0; i < 6; ++i) box.push(make_msg(i));
  ASSERT_EQ(box.pop().id, 0u);  // a consumed head must not be re-drained
  std::vector<u64> seen;
  box.drain([&seen](AppMessage&& m) { seen.push_back(m.id); });
  EXPECT_EQ(seen, (std::vector<u64>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(box.empty());
}

// ---------------------------------------------------------------------------
// LocationDirectory vs a brute-force oracle
// ---------------------------------------------------------------------------

TEST(LocationDirectory, PlacementAndPopulation) {
  LocationDirectory dir;
  dir.init(6, 3);
  for (HostId h = 0; h < 6; ++h) dir.move(h, static_cast<MssId>(h % 3));
  for (MssId m = 0; m < 3; ++m) {
    EXPECT_EQ(dir.population(m), 2u);
    const auto members = dir.hosts_in_cell(m);
    ASSERT_EQ(members.size(), 2u);
    EXPECT_EQ(members[0], m);      // sorted ascending
    EXPECT_EQ(members[1], m + 3);
  }
  EXPECT_EQ(dir.cell_of(4), 1u);
}

TEST(LocationDirectory, MoveIsIdempotentAndRelinks) {
  LocationDirectory dir;
  dir.init(3, 2);
  for (HostId h = 0; h < 3; ++h) dir.move(h, 0);
  dir.move(1, 0);  // no-op
  EXPECT_EQ(dir.population(0), 3u);
  dir.move(1, 1);
  EXPECT_EQ(dir.population(0), 2u);
  EXPECT_EQ(dir.population(1), 1u);
  EXPECT_EQ(dir.hosts_in_cell(0), (std::vector<HostId>{0, 2}));
  EXPECT_EQ(dir.hosts_in_cell(1), (std::vector<HostId>{1}));
}

class DirectoryFuzz : public ::testing::TestWithParam<u32> {};

TEST_P(DirectoryFuzz, MatchesMapOracleUnderRandomMoves) {
  const u32 n_hosts = GetParam();
  const u32 n_mss = std::max(2u, n_hosts / 20u);
  LocationDirectory dir;
  dir.init(n_hosts, n_mss);
  std::map<HostId, MssId> oracle;
  des::RngStream rng(41, "dir-fuzz");
  for (HostId h = 0; h < n_hosts; ++h) {
    const auto m = static_cast<MssId>(des::uniform_index(rng, n_mss));
    dir.move(h, m);
    oracle[h] = m;
  }
  const int steps = n_hosts >= 1000 ? 5000 : 500;
  for (int step = 0; step < steps; ++step) {
    const auto h = static_cast<HostId>(des::uniform_index(rng, n_hosts));
    const auto m = static_cast<MssId>(des::uniform_index(rng, n_mss));
    dir.move(h, m);
    oracle[h] = m;
    ASSERT_EQ(dir.cell_of(h), m);
  }
  // Full reconciliation: per-cell membership and populations match the
  // brute-force oracle exactly.
  for (MssId m = 0; m < n_mss; ++m) {
    std::vector<HostId> expected;
    for (const auto& [h, cell] : oracle) {
      if (cell == m) expected.push_back(h);
    }
    EXPECT_EQ(dir.hosts_in_cell(m), expected) << "cell " << m;
    EXPECT_EQ(dir.population(m), expected.size()) << "cell " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DirectoryFuzz, ::testing::Values(1u, 2u, 1000u));

// ---------------------------------------------------------------------------
// Arena-backed network: views and directory stay consistent live
// ---------------------------------------------------------------------------

TEST(NetworkDirectory, TracksMobilityExactly) {
  des::Simulator sim;
  NetworkConfig cfg;
  cfg.n_hosts = 20;
  cfg.n_mss = 4;
  Network net(sim, cfg, 1);
  NullHostEventHandler handler;
  net.set_handler(&handler);
  net.start();

  des::RngStream rng(17, "netdir-fuzz");
  std::vector<bool> down(cfg.n_hosts, false);
  for (int step = 0; step < 400; ++step) {
    const auto h = static_cast<HostId>(des::uniform_index(rng, cfg.n_hosts));
    const auto op = des::uniform_index(rng, 3);
    if (op == 0 && !down[h]) {
      const auto m = static_cast<MssId>(des::uniform_index(rng, cfg.n_mss));
      if (m != net.host(h).mss()) net.switch_cell(h, m);
    } else if (op == 1 && !down[h]) {
      net.disconnect(h);
      down[h] = true;
    } else if (op == 2 && down[h]) {
      net.reconnect(h, static_cast<MssId>(des::uniform_index(rng, cfg.n_mss)));
      down[h] = false;
    }
    // The directory's answer must match the per-host view at all times
    // (disconnected hosts stay filed under their last cell).
    ASSERT_EQ(net.directory().cell_of(h), net.host(h).mss());
  }
  // Per-cell enumeration covers every host exactly once.
  std::set<HostId> seen;
  u32 total = 0;
  for (MssId m = 0; m < cfg.n_mss; ++m) {
    for (const HostId h : net.directory().hosts_in_cell(m)) {
      EXPECT_EQ(net.host(h).mss(), m);
      seen.insert(h);
      ++total;
    }
  }
  EXPECT_EQ(total, cfg.n_hosts);
  EXPECT_EQ(seen.size(), cfg.n_hosts);
}

TEST(HostArena, ViewsReadArenaState) {
  HostArena arena;
  arena.init(3);
  MobileHost view(&arena, 2);
  EXPECT_EQ(view.id(), 2u);
  EXPECT_TRUE(view.connected());
  arena.connected[2] = 0;
  arena.mss[2] = 7;
  arena.event_pos[2] = 42;
  arena.mailbox[2].push(make_msg(1));
  EXPECT_FALSE(view.connected());
  EXPECT_EQ(view.mss(), 7u);
  EXPECT_EQ(view.event_pos(), 42u);
  EXPECT_EQ(view.mailbox_size(), 1u);
}

}  // namespace
}  // namespace mobichk::net
