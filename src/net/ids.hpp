// Identifier types for the mobile network substrate.
#pragma once

#include <limits>

#include "des/types.hpp"

namespace mobichk::net {

/// Identifies a mobile host (MH); dense, 0-based.
using HostId = u32;

/// Identifies a mobile support station (MSS); dense, 0-based.
using MssId = u32;

/// Sentinel: "not attached to any MSS".
inline constexpr MssId kNoMss = std::numeric_limits<MssId>::max();

/// Identifies an application message; dense, 1-based (0 = "no message",
/// used by the observability layer for "not triggered by a message").
using MsgId = u64;

}  // namespace mobichk::net
