#include "net/topology.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace mobichk::net {

const char* mss_topology_name(MssTopologyKind kind) noexcept {
  switch (kind) {
    case MssTopologyKind::kFullMesh: return "full-mesh";
    case MssTopologyKind::kRing: return "ring";
    case MssTopologyKind::kLine: return "line";
    case MssTopologyKind::kStar: return "star";
  }
  return "?";
}

MssTopology::MssTopology(MssTopologyKind kind, u32 n_mss) : kind_(kind) {
  if (n_mss == 0) throw std::invalid_argument("MssTopology: need at least one MSS");
  // Adjacency lists.
  std::vector<std::vector<MssId>> adj(n_mss);
  const auto link = [&](MssId a, MssId b) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  };
  switch (kind) {
    case MssTopologyKind::kFullMesh:
      for (MssId a = 0; a < n_mss; ++a) {
        for (MssId b = a + 1; b < n_mss; ++b) link(a, b);
      }
      break;
    case MssTopologyKind::kRing:
      for (MssId a = 0; a + 1 < n_mss; ++a) link(a, a + 1);
      if (n_mss > 2) link(n_mss - 1, 0);
      break;
    case MssTopologyKind::kLine:
      for (MssId a = 0; a + 1 < n_mss; ++a) link(a, a + 1);
      break;
    case MssTopologyKind::kStar:
      for (MssId a = 1; a < n_mss; ++a) link(0, a);
      break;
  }
  // All-pairs BFS.
  dist_.assign(n_mss, std::vector<u32>(n_mss, 0));
  for (MssId src = 0; src < n_mss; ++src) {
    std::vector<u32>& d = dist_[src];
    std::vector<bool> seen(n_mss, false);
    std::deque<MssId> queue{src};
    seen[src] = true;
    while (!queue.empty()) {
      const MssId u = queue.front();
      queue.pop_front();
      for (const MssId v : adj[u]) {
        if (!seen[v]) {
          seen[v] = true;
          d[v] = d[u] + 1;
          queue.push_back(v);
        }
      }
    }
    for (MssId v = 0; v < n_mss; ++v) {
      if (!seen[v]) throw std::logic_error("MssTopology: disconnected graph");
      diameter_ = std::max(diameter_, d[v]);
    }
  }
}

}  // namespace mobichk::net
