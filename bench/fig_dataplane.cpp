// FIG-DATAPLANE: the checkpoint data plane measured — what the bytes
// cost, where they live, and what recovery pays to get them back.
//
// Four panels, all through the adaptive-precision sweep engine (each cell
// replicated until its 95% CI is tight, like the paper figures), using
// FigureSpec::metric to aggregate data-plane quantities instead of N_tot:
//
//  1. migration stall vs T_switch — pre-copy vs post-copy phase
//     accounting per handoff (faster mobility = more migrations, but the
//     per-handoff stall is set by the residual dirty set).
//  2. recovery-data locality vs T_switch under migration=none — the image
//     stays where the first checkpoint wrote it, so the mean wired
//     distance host -> recovery bytes grows as hosts drift.
//  3. stall / locality vs P_switch — per-value adaptive sweeps at fixed
//     T_switch (lower P_switch = fewer real switches).
//  4. mean checkpoint size vs checkpoint rate — dirty-delta incremental
//     uploads against dense full snapshots as T_switch (and with it the
//     basic-checkpoint rate) varies.
//
// A final single-run demonstration injects a mid-run crash on a line
// topology and prints how the executed recovery time stretches with the
// placement distance and storage contention (migration=none vs precopy).
//
// Flags: the usual sweep set plus --out=PATH to write every panel as one
// JSON document (BENCH_dataplane.json in CI).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "mobichk.hpp"

namespace {

using namespace mobichk;

struct Panel {
  std::string name;
  std::vector<f64> x;       ///< Swept parameter values.
  std::vector<f64> mean;    ///< Metric mean per point.
  std::vector<f64> ci95;    ///< Half-width per point.
  std::vector<u64> seeds;   ///< Replications accepted per point.
};

Panel panel_from(const std::string& name, const sim::FigureResult& result,
                 const std::vector<f64>& x) {
  Panel panel;
  panel.name = name;
  panel.x = x;
  for (usize p = 0; p < result.cells.size(); ++p) {
    const des::Tally& tally = result.cells[p][0];
    panel.mean.push_back(tally.mean());
    panel.ci95.push_back(des::confidence_half_width(tally, 0.95));
    panel.seeds.push_back(result.seeds_used[p]);
  }
  return panel;
}

void print_panel(const Panel& panel, const char* x_name, const char* metric_name) {
  std::printf("\n%s\n%12s %14s %12s %6s\n", panel.name.c_str(), x_name, metric_name, "ci95",
              "reps");
  for (usize p = 0; p < panel.x.size(); ++p) {
    std::printf("%12g %14.6g %12.3g %6llu\n", panel.x[p], panel.mean[p], panel.ci95[p],
                static_cast<unsigned long long>(panel.seeds[p]));
  }
}

/// Shared sweep shape: one protocol (the plane prices only slot 0), the
/// data plane on, small cells so migrations actually cross MSS borders.
sim::FigureSpec base_spec(const std::string& title, f64 length, const sim::ArgParser& args) {
  sim::FigureSpec spec;
  spec.title = title;
  spec.base.sim_length = length;
  spec.protocols = {core::ProtocolKind::kBcs};
  sim::apply_cli_flags(spec, args);
  return spec;
}

storage::DataPlaneConfig plane_defaults() {
  storage::DataPlaneConfig dp;
  dp.enabled = true;
  return dp;
}

}  // namespace

int main(int argc, char** argv) {
  sim::FlagSet flags("fig_dataplane [flags]");
  flags.add("length", sim::FlagType::kNumber, "50000", "simulation horizon per run")
      .add("precision", sim::FlagType::kNumber, "0.08", "target relative CI half-width")
      .add("min-seeds", sim::FlagType::kUInt, "3", "replications always run per point")
      .add("max-seeds", sim::FlagType::kUInt, "8", "replication cap per point")
      .add("batch", sim::FlagType::kUInt, "", "replications per adaptive round (default auto)")
      .add("seeds", sim::FlagType::kUInt, "", "fixed replication count (min = max = n)")
      .add("seed-base", sim::FlagType::kUInt, "42", "replication seed root")
      .add("threads", sim::FlagType::kUInt, "0", "worker threads (0 = hardware concurrency)")
      .add("out", sim::FlagType::kString, "", "write every panel as one JSON document");
  sim::ArgParser args(0, nullptr);
  try {
    args = flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (args.get_flag("help")) {
    flags.print_help(std::cout);
    return 0;
  }
  const f64 length = args.get_f64("length", 50'000.0);
  const u32 threads = args.get_u32("threads", 0);
  const std::vector<f64> t_switch_values{100, 200, 500, 1'000, 2'000};
  const std::vector<f64> p_switch_values{0.2, 0.4, 0.6, 0.8, 1.0};
  std::vector<Panel> panels;

  std::printf("FIG-DATAPLANE — checkpoint bytes, placement and recovery cost\n");

  // Panel 1: per-handoff migration stall vs T_switch, both strategies.
  for (const auto strategy :
       {storage::MigrationStrategy::kPreCopy, storage::MigrationStrategy::kPostCopy}) {
    const char* name = storage::migration_strategy_name(strategy);
    sim::FigureSpec spec =
        base_spec(std::string("stall vs T_switch (") + name + ")", length, args);
    spec.t_switch_values = t_switch_values;
    spec.metric = [](const sim::RunResult& r, usize) {
      return r.data_plane.migrations == 0
                 ? 0.0
                 : r.data_plane.migration_stall / static_cast<f64>(r.data_plane.migrations);
    };
    sim::ExperimentOptions opts;
    opts.data_plane = plane_defaults();
    opts.data_plane.migration = strategy;
    panels.push_back(panel_from(std::string("stall_vs_tswitch_") + name,
                                sim::run_figure(spec, opts, threads), t_switch_values));
    print_panel(panels.back(), "T_switch", "stall/handoff (tu)");
  }

  // Panel 2: recovery-data locality vs T_switch with the image frozen at
  // its first write (migration=none): the drift story.
  {
    sim::FigureSpec spec = base_spec("locality vs T_switch (no migration)", length, args);
    spec.t_switch_values = t_switch_values;
    spec.metric = [](const sim::RunResult& r, usize) { return r.data_plane.mean_locality(); };
    sim::ExperimentOptions opts;
    opts.data_plane = plane_defaults();
    opts.data_plane.migration = storage::MigrationStrategy::kNone;
    panels.push_back(panel_from("locality_vs_tswitch_none", sim::run_figure(spec, opts, threads),
                                t_switch_values));
    print_panel(panels.back(), "T_switch", "mean hops to image");
  }

  // Panel 3: stall and locality vs P_switch — one single-point adaptive
  // sweep per value (P_switch is a base-config field, not the sweep axis,
  // so each value gets its own spec).
  {
    Panel stall{"stall_vs_pswitch_precopy", {}, {}, {}, {}};
    Panel locality{"locality_vs_pswitch_none", {}, {}, {}, {}};
    for (const f64 ps : p_switch_values) {
      sim::FigureSpec spec =
          base_spec("data plane vs P_switch = " + std::to_string(ps), length, args);
      spec.t_switch_values = {1'000.0};
      spec.base.p_switch = ps;
      spec.base.disconnect_mean = 500.0;  // P_switch < 1 needs disconnections
      // Total stall here, not per-handoff: P_switch scales how many
      // mobility events are real switches, i.e. how often the plane pays.
      spec.metric = [](const sim::RunResult& r, usize) { return r.data_plane.migration_stall; };
      sim::ExperimentOptions opts;
      opts.data_plane = plane_defaults();
      const Panel a = panel_from("", sim::run_figure(spec, opts, threads), {ps});
      stall.x.push_back(ps);
      stall.mean.push_back(a.mean[0]);
      stall.ci95.push_back(a.ci95[0]);
      stall.seeds.push_back(a.seeds[0]);

      spec.metric = [](const sim::RunResult& r, usize) { return r.data_plane.mean_locality(); };
      opts.data_plane.migration = storage::MigrationStrategy::kNone;
      const Panel b = panel_from("", sim::run_figure(spec, opts, threads), {ps});
      locality.x.push_back(ps);
      locality.mean.push_back(b.mean[0]);
      locality.ci95.push_back(b.ci95[0]);
      locality.seeds.push_back(b.seeds[0]);
    }
    print_panel(stall, "P_switch", "total stall (tu)");
    print_panel(locality, "P_switch", "mean hops to image");
    panels.push_back(std::move(stall));
    panels.push_back(std::move(locality));
  }

  // Panel 4: mean upload size vs T_switch (the basic-checkpoint rate
  // tracks the handoff rate, so T_switch sweeps the checkpoint rate),
  // incremental dirty-delta vs dense full snapshots.
  for (const bool incremental : {true, false}) {
    const char* name = incremental ? "incremental" : "full";
    sim::FigureSpec spec =
        base_spec(std::string("upload bytes vs T_switch (") + name + ")", length, args);
    spec.t_switch_values = t_switch_values;
    spec.metric = [](const sim::RunResult& r, usize) {
      return r.data_plane.checkpoints == 0
                 ? 0.0
                 : static_cast<f64>(r.data_plane.upload_bytes) /
                       static_cast<f64>(r.data_plane.checkpoints);
    };
    sim::ExperimentOptions opts;
    opts.data_plane = plane_defaults();
    opts.data_plane.incremental = incremental;
    panels.push_back(panel_from(std::string("bytes_vs_tswitch_") + name,
                                sim::run_figure(spec, opts, threads), t_switch_values));
    print_panel(panels.back(), "T_switch", "bytes/checkpoint");
  }

  // Demonstration: executed recovery pays for the bytes, on two isolated
  // axes. Same crash on a line of MSSs every time.
  //
  //  * Distance — infinite storage (no disk queueing), migration=none vs
  //    precopy. The only difference between the runs is where the image
  //    sits, so the frozen placement's wired legs must stretch recovery.
  //  * Contention — local image (precopy), infinite vs contention disk.
  //    The only difference is the storage queue, so the busy disk must
  //    stretch recovery.
  const auto crashed_run = [&](storage::MigrationStrategy strategy,
                               storage::StableStorageKind model) {
    sim::SimConfig cfg;
    cfg.sim_length = length;
    cfg.t_switch = 200.0;  // plenty of drift before the crash
    cfg.network.mss_topology = net::MssTopologyKind::kLine;
    cfg.seed = 7;
    cfg.faults.mode = sim::CrashMode::kCorrelated;
    cfg.faults.correlated = 4;
    cfg.faults.first_crash_at = length / 2.0;
    sim::ExperimentOptions opts;
    opts.protocols = {core::ProtocolKind::kBcs};
    opts.data_plane = plane_defaults();
    opts.data_plane.migration = strategy;
    opts.data_plane.model = model;
    // A slow wide-area backbone: the recovery record closes when the LAST
    // victim restores, so the wire must dominate whenever any victim's
    // image is remote, regardless of which victim was the straggler.
    opts.data_plane.wired_bandwidth = 2e4;
    const sim::RunResult r = sim::run_experiment(cfg, opts);
    std::printf("\nrecovery fetch (%s, %s disk): %llu fetch(es) over %llu hop(s), "
                "fetch time %.3f tu, measured recovery %.3f tu",
                storage::migration_strategy_name(strategy),
                storage::stable_storage_kind_name(model),
                static_cast<unsigned long long>(r.data_plane.fetches),
                static_cast<unsigned long long>(r.data_plane.fetch_hops),
                r.data_plane.fetch_time, r.recovery.total_recovery_time);
    return r;
  };
  const sim::RunResult far_run =
      crashed_run(storage::MigrationStrategy::kNone, storage::StableStorageKind::kInfinite);
  const sim::RunResult near_run =
      crashed_run(storage::MigrationStrategy::kPreCopy, storage::StableStorageKind::kInfinite);
  const sim::RunResult busy_run =
      crashed_run(storage::MigrationStrategy::kPreCopy, storage::StableStorageKind::kContention);
  const f64 rec_far = far_run.recovery.total_recovery_time;
  const f64 rec_near = near_run.recovery.total_recovery_time;
  const f64 rec_busy = busy_run.recovery.total_recovery_time;
  const bool distance_costs = rec_far > rec_near;
  const bool contention_costs = rec_busy > rec_near;
  std::printf("\n\ndistance:   %llu hops frozen vs %llu migrated -> recovery %.3f vs %.3f tu "
              "(must cost time: %s)\n",
              static_cast<unsigned long long>(far_run.data_plane.fetch_hops),
              static_cast<unsigned long long>(near_run.data_plane.fetch_hops), rec_far, rec_near,
              distance_costs ? "yes" : "NO");
  std::printf("contention: busy local disk vs idle -> recovery %.3f vs %.3f tu "
              "(must cost time: %s)\n",
              rec_busy, rec_near, contention_costs ? "yes" : "NO");

  const std::string out = args.get_string("out", "");
  if (!out.empty()) {
    std::ofstream os(out);
    if (!os.is_open()) {
      std::fprintf(stderr, "cannot open %s\n", out.c_str());
      return 1;
    }
    sim::JsonWriter w(os);
    w.begin_object();
    w.field("benchmark", "fig_dataplane").field("length", length);
    w.key("panels").begin_array();
    for (const Panel& panel : panels) {
      w.begin_object();
      w.field("name", panel.name);
      w.key("points").begin_array();
      for (usize p = 0; p < panel.x.size(); ++p) {
        w.begin_object();
        w.field("x", panel.x[p])
            .field("mean", panel.mean[p])
            .field("ci95", panel.ci95[p])
            .field("replications", panel.seeds[p]);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.key("recovery_fetch").begin_object();
    w.field("fetch_hops_frozen", far_run.data_plane.fetch_hops)
        .field("fetch_hops_migrated", near_run.data_plane.fetch_hops)
        .field("recovery_time_frozen", rec_far)
        .field("recovery_time_migrated", rec_near)
        .field("recovery_time_contended", rec_busy);
    w.end_object();
    w.end_object();
    os << '\n';
    std::printf("wrote %s\n", out.c_str());
  }
  // The distance and contention stories are the acceptance gate: if
  // pulling the image from farther away (or through a busy disk) is not
  // slower, the fetch path is broken.
  return distance_costs && contention_costs ? 0 : 1;
}
