// Host-time profiler: wall-clock attribution with the probe layer's
// zero-cost discipline.
//
// Where probes.hpp counts *simulated* work, this layer times *host*
// work: every instrumented component holds one `obs::ProfLane*` (or a
// `Profiler*` for the shared layers) that is null when profiling is off,
// and guards every clock read with that single branch — a profile-off
// run pays one predictable branch per site, never reads the clock,
// allocates nothing, and reproduces the golden trace bit-identically.
//
// Lanes make the profiler shard-safe without atomics: lane 0 belongs to
// the coordinator (and to the whole run when sequential), lane 1+s to
// shard s. The sharded executor installs a thread-local lane around each
// window, so shared layers (network, harness, storage) resolve the
// executing lane through `Profiler::lane()` and only ever write memory
// owned by the current thread. Lanes are cache-line aligned to keep the
// accumulators of neighbouring shards off each other's lines.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "des/types.hpp"
#include "obs/metrics.hpp"

namespace mobichk::obs {

/// Monotonic host clock in nanoseconds (the profiler's only time source).
inline u64 prof_now_ns() noexcept {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One phase's running total: summed nanoseconds plus a call count.
struct PhaseAccum {
  u64 ns = 0;
  u64 count = 0;

  void add(u64 d) noexcept {
    ns += d;
    ++count;
  }
  f64 seconds() const noexcept { return static_cast<f64>(ns) * 1e-9; }
};

/// RAII phase timer. A null accumulator makes the whole object a no-op —
/// the clock is never read (same contract as ScopedTimer).
class ProfScope {
 public:
  explicit ProfScope(PhaseAccum* acc) noexcept : acc_(acc) {
    if (acc_ != nullptr) start_ns_ = prof_now_ns();
  }
  ~ProfScope() {
    if (acc_ != nullptr) acc_->add(prof_now_ns() - start_ns_);
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  PhaseAccum* acc_;
  u64 start_ns_ = 0;
};

/// Journal phases recorded as host-time slices (Chrome-trace B/E rows).
enum class ProfPhase : u8 {
  kWindow = 0,   ///< shard window execution
  kBarrier = 1,  ///< barrier / go-signal wait
};

/// One journaled slice: [start_ns, start_ns + dur_ns) on the owning lane,
/// absolute steady-clock nanoseconds (the exporter rebases onto t0).
struct ProfSlice {
  ProfPhase phase = ProfPhase::kWindow;
  u64 start_ns = 0;
  u64 dur_ns = 0;
};

/// Per-thread accumulator set. All writes to a lane come from exactly one
/// thread at a time (coordinator between windows, the owning shard thread
/// inside them), so plain words suffice.
struct alignas(64) ProfLane {
  static constexpr usize kMaxEventKinds = 8;  ///< mirrors KernelProbe
  static constexpr usize kMaxProtoSlots = 8;
  /// Journal cap per lane: a 50k-window run stays well under this; past
  /// it the totals keep accumulating and only slices are dropped.
  static constexpr usize kMaxSlices = 1u << 18;

  // -- DES kernel ---------------------------------------------------------
  PhaseAccum dispatch[kMaxEventKinds];  ///< fire() bucketed by EventKind
  PhaseAccum queue_push;
  PhaseAccum queue_pop;
  PhaseAccum queue_cancel;

  // -- shared layers (resolved through the TLS lane) ----------------------
  PhaseAccum net_leg;    ///< net::Network message-hop handling
  PhaseAccum pb_encode;  ///< sparse piggyback encode (on_send)
  PhaseAccum pb_merge;   ///< sparse piggyback decode + merge (on_receive)
  PhaseAccum proto[kMaxProtoSlots];  ///< protocol handlers per slot
  PhaseAccum storage;    ///< storage data plane handlers

  // -- sharded executor ---------------------------------------------------
  PhaseAccum window;   ///< window execution (busy time)
  PhaseAccum barrier;  ///< barrier / go-signal wait (stall time)

  u64 events = 0;  ///< events fired on this lane

  std::vector<ProfSlice> slices;  ///< window/barrier journal (may drop)
  u64 slices_dropped = 0;

  void record_slice(ProfPhase phase, u64 start_ns, u64 dur_ns) {
    if (slices.size() >= kMaxSlices) {
      ++slices_dropped;
      return;
    }
    slices.push_back(ProfSlice{phase, start_ns, dur_ns});
  }
};

/// The profiler for one run: owns the lanes, resolves the executing lane
/// through TLS, and flattens everything into the `prof.*` metric catalog
/// (see docs/observability.md).
class Profiler {
 public:
  Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Grows the lane set to at least `n` (setup time only; lane addresses
  /// are stable across growth so hot paths can cache ProfLane*).
  void ensure_lanes(usize n);

  usize n_lanes() const noexcept { return lanes_.size(); }
  ProfLane& lane_ref(usize i) { return *lanes_[i]; }
  const ProfLane& lane_ref(usize i) const { return *lanes_[i]; }

  /// The calling thread's lane: the TLS lane inside a shard window, lane
  /// 0 everywhere else (coordinator, sequential runs).
  ProfLane& lane() noexcept;

  /// Construction instant; Chrome-trace `ts` values are relative to it.
  u64 t0_ns() const noexcept { return t0_ns_; }

  /// Names the protocol slots (snapshot uses them for prof.proto.*).
  void set_slot_names(std::vector<std::string> names) { slot_names_ = std::move(names); }
  const std::vector<std::string>& slot_names() const noexcept { return slot_names_; }

  /// Per-kind dispatch totals summed over all lanes (the reconciliation
  /// hook: counts must match the des.dispatch.* counters exactly).
  u64 dispatch_count(usize kind) const;
  f64 dispatch_seconds(usize kind) const;
  u64 events_total() const;

  /// max/mean of per-shard busy (window) seconds; 1.0 when not sharded
  /// or nothing ran.
  f64 imbalance_ratio() const;

  /// Flattens the lanes into prof.* samples, in catalog order.
  std::vector<MetricSample> snapshot() const;

 private:
  // unique_ptr keeps lane addresses stable across ensure_lanes growth.
  std::vector<std::unique_ptr<ProfLane>> lanes_;
  std::vector<std::string> slot_names_;
  u64 t0_ns_ = 0;
};

/// Installs/clears the calling thread's lane (the sharded executor brackets
/// every window with this; sequential runs never touch it).
void set_prof_tls_lane(ProfLane* lane) noexcept;
ProfLane* prof_tls_lane() noexcept;

/// Name of dispatch bucket `kind` (tracks des::EventKind, same order as
/// the des.dispatch.* counters). Pre: kind < ProfLane::kMaxEventKinds.
const char* prof_kind_name(usize kind) noexcept;

}  // namespace mobichk::obs
