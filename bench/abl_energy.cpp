// ENER: mobile-host energy per protocol (paper §2.1 point e).
//
// Applies the radio energy model to the figure-2 environment across the
// T_switch sweep, splitting each protocol's cost into control
// information, dedicated control messages and checkpoint uploads — the
// battery budget the paper's design guidelines are about.
#include <cstdio>

#include "sim/cli.hpp"
#include "sim/energy.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace mobichk;
  const sim::ArgParser args(argc, argv);

  sim::ExperimentOptions opts;
  opts.protocols = {core::ProtocolKind::kTp, core::ProtocolKind::kBcs, core::ProtocolKind::kQbc,
                    core::ProtocolKind::kCoordinated};
  opts.with_storage = true;
  const sim::EnergyConfig ecfg;

  std::printf("ENER — checkpointing energy (J) per protocol, P_switch=0.8, H=0%%\n");
  std::printf("(split: piggybacked info + dedicated messages + checkpoint uploads)\n\n");
  std::printf("%10s  %-8s %12s %12s %12s %14s\n", "Tswitch", "proto", "ctrl-info", "ctrl-msgs",
              "ckpt-upload", "ckpt total");

  for (const f64 ts : {100.0, 1'000.0, 10'000.0}) {
    sim::SimConfig cfg;
    cfg.sim_length = args.get_f64("length", 100'000.0);
    cfg.t_switch = ts;
    cfg.p_switch = 0.8;
    cfg.seed = 4;
    const sim::RunResult r = sim::run_experiment(cfg, opts);
    for (const auto& p : r.protocols) {
      const sim::EnergyBreakdown e = sim::estimate_energy(ecfg, r.net, p);
      std::printf("%10.0f  %-8s %12.3f %12.3f %12.3f %14.3f\n", ts, p.name.c_str(),
                  e.control_info, e.control_messages, e.checkpoint_upload,
                  e.checkpointing_total());
    }
    std::printf("\n");
  }
  std::printf("expected: checkpoint uploads dominate and follow N_tot, so QBC spends the\n"
              "least; TP additionally pays vector piggybacks; COORD pays marker traffic.\n");
  return 0;
}
