#include "obs/observer.hpp"

namespace mobichk::obs {

RunObserver::RunObserver() {
  kernel_.resolve(registry_);
  net_.resolve(registry_);
  sweep_.resolve(registry_);
}

}  // namespace mobichk::obs
