// Output-analysis front ends: steady-state checkpoint-rate estimation
// (single long run, MSER warm-up removal, batch-means confidence
// intervals) and precision-driven replication (keep adding seeds until
// the confidence interval is tight enough).
#pragma once

#include <string>
#include <vector>

#include "core/factory.hpp"
#include "des/types.hpp"
#include "sim/config.hpp"
#include "sim/experiment.hpp"

namespace mobichk::sim {

// ---------------------------------------------------------------------------
// Steady-state rate estimation
// ---------------------------------------------------------------------------

struct SteadyStateSpec {
  SimConfig cfg;
  std::vector<core::ProtocolKind> protocols{core::ProtocolKind::kTp, core::ProtocolKind::kBcs,
                                            core::ProtocolKind::kQbc};
  core::ProtocolParams params;
  f64 window = 500.0;     ///< Sampling-window width (tu).
  usize mser_batch = 5;   ///< MSER batch size over the window series.
  u64 batch_windows = 4;  ///< Batch-means size for the CI (post-warm-up windows).

  void validate() const;
};

struct SteadyStateEstimate {
  std::string protocol;
  f64 rate = 0.0;          ///< Checkpoints per time unit, post-warm-up.
  f64 ci95 = 0.0;          ///< 95% half-width on the rate.
  usize windows = 0;       ///< Windows observed.
  usize warmup_windows = 0;///< Windows MSER discarded.
};

/// Runs one long simulation, sampling each protocol's checkpoint count
/// per window, and returns warm-up-corrected rate estimates.
std::vector<SteadyStateEstimate> estimate_steady_state(const SteadyStateSpec& spec);

// ---------------------------------------------------------------------------
// Precision-driven replication
// ---------------------------------------------------------------------------

struct PrecisionSpec {
  SimConfig base;  ///< Seed field is ignored; seeds are seed_base, seed_base+1, ...
  std::vector<core::ProtocolKind> protocols{core::ProtocolKind::kTp, core::ProtocolKind::kBcs,
                                            core::ProtocolKind::kQbc};
  u64 seed_base = 1;
  f64 target_relative_ci = 0.05;  ///< Stop when ci95/mean <= this for every protocol.
  u32 min_seeds = 3;
  u32 max_seeds = 64;
};

struct PrecisionEstimate {
  std::string protocol;
  f64 n_tot_mean = 0.0;
  f64 ci95 = 0.0;
};

struct PrecisionResult {
  std::vector<PrecisionEstimate> protocols;
  u32 seeds_used = 0;
  bool target_met = false;
};

/// Replicates the experiment with fresh seeds until every protocol's
/// relative 95% CI on N_tot reaches the target (or max_seeds is hit).
PrecisionResult run_until_precision(const PrecisionSpec& spec);

}  // namespace mobichk::sim
