#include "sim/report.hpp"

#include <ostream>
#include <stdexcept>
#include <utility>

#include "sim/json.hpp"

namespace mobichk::sim {

namespace {

// Shared between the standalone SweepLedger document and the "ledger"
// object inside a FigureResult document.
void write_ledger_fields(JsonWriter& w, const SweepLedger& ledger) {
  w.begin_object();
  w.field("wall_seconds", ledger.wall_seconds)
      .field("events_executed", ledger.events_executed)
      .field("events_per_second", ledger.events_per_second())
      .field("replications_run", ledger.replications_run)
      .field("replications_used", ledger.replications_used)
      .field("replication_cap", ledger.replication_cap);
  // Always present (0.0 for sequential sweeps) so cost reports diff
  // cleanly across shard counts instead of fields appearing and
  // vanishing with the configuration.
  w.field("barrier_stall_seconds", ledger.barrier_stall_seconds);
  // Shard topology fields still appear only for parallel sweeps.
  if (ledger.shards > 1) {
    w.field("shards", static_cast<u64>(ledger.shards)).field("sync_rounds", ledger.sync_rounds);
  }
  if (!ledger.point_wall_seconds.empty()) {
    w.key("point_wall_seconds").begin_array();
    for (const f64 s : ledger.point_wall_seconds) w.value(s);
    w.end_array();
  }
  w.end_object();
}

}  // namespace

void write_json(std::ostream& os, const RunResult& result) {
  JsonWriter w(os);
  w.begin_object();
  w.key("config").begin_object();
  w.field("n_hosts", result.cfg.network.n_hosts)
      .field("n_mss", result.cfg.network.n_mss)
      .field("sim_length", result.cfg.sim_length)
      .field("seed", result.cfg.seed)
      .field("t_switch", result.cfg.t_switch)
      .field("p_switch", result.cfg.p_switch)
      .field("p_send", result.cfg.p_send)
      .field("comm_mean", result.cfg.comm_mean)
      .field("heterogeneity", result.cfg.heterogeneity)
      .field("mobility_model", mobility_model_name(result.cfg.mobility_model));
  w.end_object();

  w.key("network").begin_object();
  w.field("app_sent", result.net.app_sent)
      .field("app_delivered", result.net.app_delivered)
      .field("app_received", result.net.app_received)
      .field("handoffs", result.net.handoffs)
      .field("disconnects", result.net.disconnects)
      .field("reconnects", result.net.reconnects)
      .field("control_messages", result.net.control_messages)
      .field("wireless_messages", result.net.wireless_messages)
      .field("wired_hops", result.net.wired_hops)
      .field("chase_forwards", result.net.chase_forwards)
      .field("buffered_deliveries", result.net.buffered_deliveries)
      .field("piggyback_bytes", result.net.piggyback_bytes)
      .field("piggyback_dense_bytes", result.net.piggyback_dense_bytes);
  // Bulk (data-plane) wired traffic appears only when the plane moved
  // bytes, so plane-off documents stay byte-identical to earlier versions.
  if (result.net.bulk_transfers > 0) {
    w.field("bulk_transfers", result.net.bulk_transfers)
        .field("bulk_wired_bytes", result.net.bulk_wired_bytes);
  }
  w.field("mean_delivery_latency", result.net.delivery_latency.mean());
  w.end_object();

  w.key("protocols").begin_array();
  for (const auto& p : result.protocols) {
    w.begin_object();
    w.field("name", p.name)
        .field("n_tot", p.n_tot)
        .field("basic", p.basic)
        .field("forced", p.forced)
        .field("initial", p.initial)
        .field("max_index", p.max_index)
        .field("piggyback_bytes", p.piggyback_bytes)
        .field("piggyback_dense_bytes", p.piggyback_dense_bytes)
        .field("control_messages", p.control_messages)
        .field("storage_wireless_bytes", p.storage_wireless_bytes)
        .field("storage_wired_bytes", p.storage_wired_bytes)
        .field("storage_transfers", p.storage_transfers)
        .field("lines_checked", p.lines_checked)
        .field("orphans_found", p.orphans_found);
    w.end_object();
  }
  w.end_array();
  w.field("events_executed", result.events_executed)
      .field("workload_ops", result.workload_ops)
      .field("trace_hash", result.trace_hash)
      .field("invariants_ok", result.invariants_ok)
      .field("cancels_effective", result.invariants.cancels_effective)
      .field("cancels_noop", result.invariants.cancels_noop())
      .field("max_pending", static_cast<u64>(result.invariants.max_pending));
  // Written only for sharded runs, so shards=1 documents stay
  // byte-identical to earlier versions.
  if (result.shards > 1) {
    w.field("shards", static_cast<u64>(result.shards))
        .field("sync_rounds", result.sync_rounds)
        .field("barrier_stall_seconds", result.barrier_stall_seconds);
  }
  if (!result.metrics.empty()) {
    w.key("metrics").begin_object();
    for (const obs::MetricSample& m : result.metrics) w.field(m.name, m.value);
    w.end_object();
  }
  // Written only when a crash actually executed, so crash-free documents
  // stay byte-identical to earlier versions.
  if (result.recovery.crashes_executed > 0) {
    const CrashRunStats& r = result.recovery;
    w.key("recovery").begin_object();
    w.field("crashes_executed", r.crashes_executed)
        .field("crashes_skipped", r.crashes_skipped)
        .field("hosts_crashed", r.hosts_crashed)
        .field("hosts_rolled_back", r.hosts_rolled_back)
        .field("undone_events", r.undone_events)
        .field("replayed_messages", r.replayed_messages)
        .field("checkpoints_discarded", r.checkpoints_discarded)
        .field("total_recovery_time", r.total_recovery_time)
        .field("max_recovery_time", r.max_recovery_time)
        .field("total_planned", r.total_planned)
        .field("total_estimated", r.total_estimated);
    w.end_object();
  }
  // Written only when the checkpoint data plane ran, so plane-off
  // documents stay byte-identical to earlier versions.
  if (result.data_plane_enabled) {
    const storage::DataPlaneStats& d = result.data_plane;
    w.key("data_plane").begin_object();
    w.field("checkpoints", d.checkpoints)
        .field("upload_bytes", d.upload_bytes)
        .field("full_bytes", d.full_bytes)
        .field("transfers_completed", d.transfers_completed)
        .field("transfer_time", d.transfer_time)
        .field("queue_delay", d.queue_delay)
        .field("migrations", d.migrations)
        .field("migration_bytes", d.migration_bytes)
        .field("migration_copy_time", d.migration_copy_time)
        .field("migration_stall", d.migration_stall)
        .field("locality_samples", d.locality_samples)
        .field("locality_hops", d.locality_hops)
        .field("mean_locality", d.mean_locality())
        .field("fetches", d.fetches)
        .field("fetch_bytes", d.fetch_bytes)
        .field("fetch_hops", d.fetch_hops)
        .field("fetch_time", d.fetch_time);
    w.end_object();
  }
  w.end_object();
  os << '\n';
}

void write_json(std::ostream& os, const FigureResult& result) {
  JsonWriter w(os);
  w.begin_object();
  w.field("title", result.title);
  w.key("protocols").begin_array();
  for (const auto& name : result.protocol_names) w.value(name);
  w.end_array();
  w.key("precision").begin_object();
  w.field("target_relative_ci", result.target_relative_ci)
      .field("all_targets_met", result.all_targets_met());
  w.end_object();
  w.key("points").begin_array();
  for (usize p = 0; p < result.t_switch_values.size(); ++p) {
    w.begin_object();
    w.field("t_switch", result.t_switch_values[p])
        .field("replications", static_cast<u64>(result.seeds_used[p]))
        .field("target_met", static_cast<bool>(result.target_met[p]));
    w.key("n_tot").begin_array();
    for (usize k = 0; k < result.protocol_names.size(); ++k) {
      const des::Tally& tally = result.cells[p][k];
      w.begin_object();
      w.field("mean", tally.mean())
          .field("ci95", des::confidence_half_width(tally, 0.95))
          .field("relative_ci95", des::relative_half_width(tally, 0.95))
          .field("min", tally.min())
          .field("max", tally.max())
          .field("replications", tally.count());
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.field("max_relative_spread", result.max_relative_spread());
  w.key("ledger");
  write_ledger_fields(w, result.ledger);
  w.end_object();
  os << '\n';
}

void write_json(std::ostream& os, const SweepLedger& ledger) {
  JsonWriter w(os);
  write_ledger_fields(w, ledger);
  os << '\n';
}

void write_json(std::ostream& os, const FigureSpec& spec) {
  JsonWriter w(os);
  w.begin_object();
  w.field("title", spec.title);
  w.key("t_switch_values").begin_array();
  for (const f64 t : spec.t_switch_values) w.value(t);
  w.end_array();
  w.key("protocols").begin_array();
  for (const auto kind : spec.protocols) w.value(core::protocol_kind_name(kind));
  w.end_array();
  w.field("target_relative_ci", spec.target_relative_ci)
      .field("min_seeds", spec.min_seeds)
      .field("max_seeds", spec.max_seeds)
      .field("batch_size", spec.batch_size)
      .field("seed_base", spec.seed_base);
  w.key("base").begin_object();
  w.field("n_hosts", spec.base.network.n_hosts)
      .field("n_mss", spec.base.network.n_mss)
      .field("sim_length", spec.base.sim_length)
      .field("comm_mean", spec.base.comm_mean)
      .field("p_send", spec.base.p_send)
      .field("p_switch", spec.base.p_switch)
      .field("disconnect_mean", spec.base.disconnect_mean)
      .field("heterogeneity", spec.base.heterogeneity)
      .field("mobility_model", mobility_model_name(spec.base.mobility_model));
  w.end_object();
  w.end_object();
  os << '\n';
}

void write_json(std::ostream& os, const ExperimentOptions& opts) {
  JsonWriter w(os);
  w.begin_object();
  w.key("protocols").begin_array();
  for (const auto kind : opts.protocols) w.value(core::protocol_kind_name(kind));
  w.end_array();
  w.field("with_storage", opts.with_storage)
      .field("verify_consistency", opts.verify_consistency)
      .field("verify_max_lines", static_cast<u64>(opts.verify_max_lines))
      .field("queue_kind", des::queue_kind_name(opts.queue_kind))
      .field("collect_trace_hash", opts.collect_trace_hash);
  if (opts.shards > 1) w.field("shards", static_cast<u64>(opts.shards));
  // Serialized only when enabled, so plane-off documents stay
  // byte-identical to earlier versions.
  if (opts.data_plane.enabled) {
    w.key("data_plane");
    write_data_plane_fields(w, opts.data_plane);
  }
  w.end_object();
  os << '\n';
}

void write_data_plane_fields(JsonWriter& w, const storage::DataPlaneConfig& cfg) {
  w.begin_object();
  w.field("full_state_bytes", cfg.full_state_bytes)
      .field("dirty_rate", cfg.dirty_rate)
      .field("incremental", cfg.incremental)
      .field("model", storage::stable_storage_kind_name(cfg.model))
      .field("storage_bandwidth", cfg.storage_bandwidth)
      .field("wireless_bandwidth", cfg.wireless_bandwidth)
      .field("wired_bandwidth", cfg.wired_bandwidth)
      .field("migration", storage::migration_strategy_name(cfg.migration))
      .field("precopy_rounds", static_cast<u64>(cfg.precopy_rounds))
      .field("precopy_stop_fraction", cfg.precopy_stop_fraction);
  w.end_object();
}

storage::DataPlaneConfig data_plane_config_from_json(const JsonValue& json) {
  storage::DataPlaneConfig cfg;
  cfg.enabled = true;
  if (const JsonValue* v = json.find("full_state_bytes")) cfg.full_state_bytes = v->as_u64();
  if (const JsonValue* v = json.find("dirty_rate")) cfg.dirty_rate = v->as_f64();
  if (const JsonValue* v = json.find("incremental")) cfg.incremental = v->as_bool();
  if (const JsonValue* v = json.find("model")) {
    if (!storage::parse_stable_storage_kind(v->as_string(), cfg.model)) {
      throw std::invalid_argument("unknown stable-storage model: " + v->as_string());
    }
  }
  if (const JsonValue* v = json.find("storage_bandwidth")) cfg.storage_bandwidth = v->as_f64();
  if (const JsonValue* v = json.find("wireless_bandwidth")) cfg.wireless_bandwidth = v->as_f64();
  if (const JsonValue* v = json.find("wired_bandwidth")) cfg.wired_bandwidth = v->as_f64();
  if (const JsonValue* v = json.find("migration")) {
    if (!storage::parse_migration_strategy(v->as_string(), cfg.migration)) {
      throw std::invalid_argument("unknown migration strategy: " + v->as_string());
    }
  }
  if (const JsonValue* v = json.find("precopy_rounds")) {
    cfg.precopy_rounds = static_cast<u32>(v->as_u64());
  }
  if (const JsonValue* v = json.find("precopy_stop_fraction")) {
    cfg.precopy_stop_fraction = v->as_f64();
  }
  return cfg;
}

namespace {

std::vector<core::ProtocolKind> protocols_from_json(const JsonValue& json) {
  std::vector<core::ProtocolKind> kinds;
  for (const JsonValue& name : json.as_array()) {
    kinds.push_back(core::protocol_kind_from_name(name.as_string()));
  }
  return kinds;
}

MobilityModelKind mobility_model_from_name(const std::string& name) {
  for (const auto kind :
       {MobilityModelKind::kPaperUniform, MobilityModelKind::kRingNeighbor,
        MobilityModelKind::kParetoResidence}) {
    if (name == mobility_model_name(kind)) return kind;
  }
  throw std::invalid_argument("unknown mobility model: " + name);
}

}  // namespace

FigureSpec figure_spec_from_json(const JsonValue& json) {
  FigureSpec spec;
  if (const JsonValue* v = json.find("title")) spec.title = v->as_string();
  if (const JsonValue* v = json.find("t_switch_values")) {
    spec.t_switch_values.clear();
    for (const JsonValue& t : v->as_array()) spec.t_switch_values.push_back(t.as_f64());
  }
  if (const JsonValue* v = json.find("protocols")) spec.protocols = protocols_from_json(*v);
  if (const JsonValue* v = json.find("target_relative_ci")) spec.target_relative_ci = v->as_f64();
  if (const JsonValue* v = json.find("min_seeds")) spec.min_seeds = static_cast<u32>(v->as_u64());
  if (const JsonValue* v = json.find("max_seeds")) spec.max_seeds = static_cast<u32>(v->as_u64());
  if (const JsonValue* v = json.find("batch_size")) spec.batch_size = static_cast<u32>(v->as_u64());
  if (const JsonValue* v = json.find("seed_base")) spec.seed_base = v->as_u64();
  if (const JsonValue* base = json.find("base")) {
    if (const JsonValue* v = base->find("n_hosts")) spec.base.network.n_hosts = static_cast<u32>(v->as_u64());
    if (const JsonValue* v = base->find("n_mss")) spec.base.network.n_mss = static_cast<u32>(v->as_u64());
    if (const JsonValue* v = base->find("sim_length")) spec.base.sim_length = v->as_f64();
    if (const JsonValue* v = base->find("comm_mean")) spec.base.comm_mean = v->as_f64();
    if (const JsonValue* v = base->find("p_send")) spec.base.p_send = v->as_f64();
    if (const JsonValue* v = base->find("p_switch")) spec.base.p_switch = v->as_f64();
    if (const JsonValue* v = base->find("disconnect_mean")) spec.base.disconnect_mean = v->as_f64();
    if (const JsonValue* v = base->find("heterogeneity")) spec.base.heterogeneity = v->as_f64();
    if (const JsonValue* v = base->find("mobility_model")) {
      spec.base.mobility_model = mobility_model_from_name(v->as_string());
    }
  }
  return spec;
}

ExperimentOptions experiment_options_from_json(const JsonValue& json) {
  ExperimentOptions opts;
  if (const JsonValue* v = json.find("protocols")) opts.protocols = protocols_from_json(*v);
  if (const JsonValue* v = json.find("with_storage")) opts.with_storage = v->as_bool();
  if (const JsonValue* v = json.find("verify_consistency")) opts.verify_consistency = v->as_bool();
  if (const JsonValue* v = json.find("verify_max_lines")) opts.verify_max_lines = v->as_u64();
  if (const JsonValue* v = json.find("queue_kind")) {
    opts.queue_kind = des::queue_kind_from_name(v->as_string());
  }
  if (const JsonValue* v = json.find("collect_trace_hash")) opts.collect_trace_hash = v->as_bool();
  if (const JsonValue* v = json.find("shards")) opts.shards = static_cast<u32>(v->as_u64());
  if (const JsonValue* dp = json.find("data_plane")) {
    opts.data_plane = data_plane_config_from_json(*dp);
  }
  return opts;
}

RunResult run_result_from_json(const JsonValue& json) {
  RunResult result;
  if (const JsonValue* cfg = json.find("config")) {
    if (const JsonValue* v = cfg->find("n_hosts")) result.cfg.network.n_hosts = static_cast<u32>(v->as_u64());
    if (const JsonValue* v = cfg->find("n_mss")) result.cfg.network.n_mss = static_cast<u32>(v->as_u64());
    if (const JsonValue* v = cfg->find("sim_length")) result.cfg.sim_length = v->as_f64();
    if (const JsonValue* v = cfg->find("seed")) result.cfg.seed = v->as_u64();
    if (const JsonValue* v = cfg->find("t_switch")) result.cfg.t_switch = v->as_f64();
    if (const JsonValue* v = cfg->find("p_switch")) result.cfg.p_switch = v->as_f64();
    if (const JsonValue* v = cfg->find("p_send")) result.cfg.p_send = v->as_f64();
    if (const JsonValue* v = cfg->find("comm_mean")) result.cfg.comm_mean = v->as_f64();
    if (const JsonValue* v = cfg->find("heterogeneity")) result.cfg.heterogeneity = v->as_f64();
    if (const JsonValue* v = cfg->find("mobility_model")) {
      result.cfg.mobility_model = mobility_model_from_name(v->as_string());
    }
  }
  if (const JsonValue* net = json.find("network")) {
    if (const JsonValue* v = net->find("app_sent")) result.net.app_sent = v->as_u64();
    if (const JsonValue* v = net->find("app_delivered")) result.net.app_delivered = v->as_u64();
    if (const JsonValue* v = net->find("app_received")) result.net.app_received = v->as_u64();
    if (const JsonValue* v = net->find("handoffs")) result.net.handoffs = v->as_u64();
    if (const JsonValue* v = net->find("disconnects")) result.net.disconnects = v->as_u64();
    if (const JsonValue* v = net->find("reconnects")) result.net.reconnects = v->as_u64();
    if (const JsonValue* v = net->find("control_messages")) result.net.control_messages = v->as_u64();
    if (const JsonValue* v = net->find("wireless_messages")) result.net.wireless_messages = v->as_u64();
    if (const JsonValue* v = net->find("wired_hops")) result.net.wired_hops = v->as_u64();
    if (const JsonValue* v = net->find("chase_forwards")) result.net.chase_forwards = v->as_u64();
    if (const JsonValue* v = net->find("buffered_deliveries")) result.net.buffered_deliveries = v->as_u64();
    if (const JsonValue* v = net->find("piggyback_bytes")) result.net.piggyback_bytes = v->as_u64();
    if (const JsonValue* v = net->find("piggyback_dense_bytes")) {
      result.net.piggyback_dense_bytes = v->as_u64();
    }
    if (const JsonValue* v = net->find("bulk_transfers")) result.net.bulk_transfers = v->as_u64();
    if (const JsonValue* v = net->find("bulk_wired_bytes")) {
      result.net.bulk_wired_bytes = v->as_u64();
    }
    if (const JsonValue* v = net->find("mean_delivery_latency")) {
      // The writer serializes only the mean; a one-sample tally re-emits
      // it exactly (write -> parse -> write is byte-identical).
      result.net.delivery_latency.add(v->as_f64());
    }
  }
  if (const JsonValue* protocols = json.find("protocols")) {
    for (const JsonValue& entry : protocols->as_array()) {
      ProtocolRunStats p;
      if (const JsonValue* v = entry.find("name")) {
        p.name = v->as_string();
        p.kind = core::protocol_kind_from_name(p.name);
      }
      if (const JsonValue* v = entry.find("n_tot")) p.n_tot = v->as_u64();
      if (const JsonValue* v = entry.find("basic")) p.basic = v->as_u64();
      if (const JsonValue* v = entry.find("forced")) p.forced = v->as_u64();
      if (const JsonValue* v = entry.find("initial")) p.initial = v->as_u64();
      p.total = p.basic + p.forced + p.initial;
      if (const JsonValue* v = entry.find("max_index")) p.max_index = v->as_u64();
      if (const JsonValue* v = entry.find("piggyback_bytes")) p.piggyback_bytes = v->as_u64();
      if (const JsonValue* v = entry.find("piggyback_dense_bytes")) {
        p.piggyback_dense_bytes = v->as_u64();
      }
      if (const JsonValue* v = entry.find("control_messages")) p.control_messages = v->as_u64();
      if (const JsonValue* v = entry.find("storage_wireless_bytes")) p.storage_wireless_bytes = v->as_u64();
      if (const JsonValue* v = entry.find("storage_wired_bytes")) p.storage_wired_bytes = v->as_u64();
      if (const JsonValue* v = entry.find("storage_transfers")) p.storage_transfers = v->as_u64();
      if (const JsonValue* v = entry.find("lines_checked")) p.lines_checked = v->as_u64();
      if (const JsonValue* v = entry.find("orphans_found")) p.orphans_found = v->as_u64();
      result.protocols.push_back(std::move(p));
    }
  }
  if (const JsonValue* v = json.find("events_executed")) result.events_executed = v->as_u64();
  if (const JsonValue* v = json.find("workload_ops")) result.workload_ops = v->as_u64();
  if (const JsonValue* v = json.find("trace_hash")) result.trace_hash = v->as_u64();
  if (const JsonValue* v = json.find("invariants_ok")) result.invariants_ok = v->as_bool();
  if (const JsonValue* v = json.find("cancels_effective")) {
    result.invariants.cancels_effective = v->as_u64();
    result.invariants.cancels_requested = v->as_u64();
  }
  if (const JsonValue* v = json.find("cancels_noop")) {
    result.invariants.cancels_requested += v->as_u64();
  }
  if (const JsonValue* v = json.find("max_pending")) {
    result.invariants.max_pending = static_cast<usize>(v->as_u64());
  }
  if (const JsonValue* v = json.find("shards")) result.shards = static_cast<u32>(v->as_u64());
  if (const JsonValue* v = json.find("sync_rounds")) result.sync_rounds = v->as_u64();
  if (const JsonValue* v = json.find("barrier_stall_seconds")) {
    result.barrier_stall_seconds = v->as_f64();
  }
  if (const JsonValue* metrics = json.find("metrics")) {
    for (const auto& [name, value] : metrics->object) {
      result.metrics.push_back(obs::MetricSample{name, value.as_f64()});
    }
  }
  if (const JsonValue* rec = json.find("recovery")) {
    CrashRunStats& r = result.recovery;
    if (const JsonValue* v = rec->find("crashes_executed")) r.crashes_executed = v->as_u64();
    if (const JsonValue* v = rec->find("crashes_skipped")) r.crashes_skipped = v->as_u64();
    if (const JsonValue* v = rec->find("hosts_crashed")) r.hosts_crashed = v->as_u64();
    if (const JsonValue* v = rec->find("hosts_rolled_back")) r.hosts_rolled_back = v->as_u64();
    if (const JsonValue* v = rec->find("undone_events")) r.undone_events = v->as_u64();
    if (const JsonValue* v = rec->find("replayed_messages")) r.replayed_messages = v->as_u64();
    if (const JsonValue* v = rec->find("checkpoints_discarded")) {
      r.checkpoints_discarded = v->as_u64();
    }
    if (const JsonValue* v = rec->find("total_recovery_time")) r.total_recovery_time = v->as_f64();
    if (const JsonValue* v = rec->find("max_recovery_time")) r.max_recovery_time = v->as_f64();
    if (const JsonValue* v = rec->find("total_planned")) r.total_planned = v->as_f64();
    if (const JsonValue* v = rec->find("total_estimated")) r.total_estimated = v->as_f64();
  }
  if (const JsonValue* dp = json.find("data_plane")) {
    result.data_plane_enabled = true;
    storage::DataPlaneStats& d = result.data_plane;
    if (const JsonValue* v = dp->find("checkpoints")) d.checkpoints = v->as_u64();
    if (const JsonValue* v = dp->find("upload_bytes")) d.upload_bytes = v->as_u64();
    if (const JsonValue* v = dp->find("full_bytes")) d.full_bytes = v->as_u64();
    if (const JsonValue* v = dp->find("transfers_completed")) d.transfers_completed = v->as_u64();
    if (const JsonValue* v = dp->find("transfer_time")) d.transfer_time = v->as_f64();
    if (const JsonValue* v = dp->find("queue_delay")) d.queue_delay = v->as_f64();
    if (const JsonValue* v = dp->find("migrations")) d.migrations = v->as_u64();
    if (const JsonValue* v = dp->find("migration_bytes")) d.migration_bytes = v->as_u64();
    if (const JsonValue* v = dp->find("migration_copy_time")) d.migration_copy_time = v->as_f64();
    if (const JsonValue* v = dp->find("migration_stall")) d.migration_stall = v->as_f64();
    if (const JsonValue* v = dp->find("locality_samples")) d.locality_samples = v->as_u64();
    if (const JsonValue* v = dp->find("locality_hops")) d.locality_hops = v->as_u64();
    // mean_locality is derived from samples/hops; the writer re-emits it
    // exactly, so write -> parse -> write stays byte-identical.
    if (const JsonValue* v = dp->find("fetches")) d.fetches = v->as_u64();
    if (const JsonValue* v = dp->find("fetch_bytes")) d.fetch_bytes = v->as_u64();
    if (const JsonValue* v = dp->find("fetch_hops")) d.fetch_hops = v->as_u64();
    if (const JsonValue* v = dp->find("fetch_time")) d.fetch_time = v->as_f64();
  }
  return result;
}

SweepLedger sweep_ledger_from_json(const JsonValue& json) {
  SweepLedger ledger;
  if (const JsonValue* v = json.find("wall_seconds")) ledger.wall_seconds = v->as_f64();
  if (const JsonValue* v = json.find("events_executed")) ledger.events_executed = v->as_u64();
  if (const JsonValue* v = json.find("replications_run")) ledger.replications_run = v->as_u64();
  if (const JsonValue* v = json.find("replications_used")) ledger.replications_used = v->as_u64();
  if (const JsonValue* v = json.find("replication_cap")) ledger.replication_cap = v->as_u64();
  if (const JsonValue* v = json.find("shards")) ledger.shards = static_cast<u32>(v->as_u64());
  if (const JsonValue* v = json.find("sync_rounds")) ledger.sync_rounds = v->as_u64();
  if (const JsonValue* v = json.find("barrier_stall_seconds")) {
    ledger.barrier_stall_seconds = v->as_f64();
  }
  if (const JsonValue* v = json.find("point_wall_seconds")) {
    for (const JsonValue& s : v->array) ledger.point_wall_seconds.push_back(s.as_f64());
  }
  return ledger;
}

}  // namespace mobichk::sim
