// ABL5: the protocol classes of paper §2, side by side.
//
// BASIC is the mandatory-checkpoint floor; UNCOORD adds independent local
// checkpoints (cheap in checkpoints, catastrophic at recovery — domino);
// COORD is a Chandy-Lamport-style coordinated scheme (adds dedicated
// control messages, the cost §2 holds against that class); TP/BCS/QBC are
// the communication-induced protocols the paper champions.
#include <cstdio>

#include "core/recovery.hpp"
#include "sim/cli.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace mobichk;
  const sim::ArgParser args(argc, argv);

  sim::SimConfig cfg;
  cfg.sim_length = args.get_f64("length", 100'000.0);
  cfg.t_switch = 1'000.0;
  cfg.p_switch = 0.8;
  cfg.seed = args.get_u64("seed", 3);

  sim::ExperimentOptions opts;
  opts.protocols = core::all_protocol_kinds();
  opts.params.uncoordinated_mean_period = 500.0;
  opts.params.coordinated_interval = 500.0;

  sim::Experiment exp(cfg, opts);
  exp.run();
  const auto& r = exp.result();
  const auto fail_pos = exp.harness().current_positions();
  const auto& messages = exp.harness().message_log();

  std::printf("ABL5 — protocol classes at T_switch=1000, P_switch=0.8, horizon %.0f tu\n",
              cfg.sim_length);
  std::printf("%-8s %10s %10s %10s %12s %14s %16s %14s\n", "proto", "N_tot", "basic", "forced",
              "ctrl msgs", "pb bytes", "undone events", "ckpts lost");
  for (usize slot = 0; slot < r.protocols.size(); ++slot) {
    const auto& p = r.protocols[slot];
    // Recovery cost after a total failure at the end of the run: every
    // host restarts from stable storage (the demanding case that exposes
    // the domino effect).
    const auto rb = core::rollback_to_consistent(exp.log(slot), messages, fail_pos);
    std::printf("%-8s %10llu %10llu %10llu %12llu %14llu %16llu %14llu\n", p.name.c_str(),
                static_cast<unsigned long long>(p.n_tot),
                static_cast<unsigned long long>(p.basic),
                static_cast<unsigned long long>(p.forced),
                static_cast<unsigned long long>(p.control_messages),
                static_cast<unsigned long long>(p.piggyback_bytes),
                static_cast<unsigned long long>(rb.undone_events()),
                static_cast<unsigned long long>(rb.total_discarded()));
  }
  std::printf("\nexpected: BASIC has the fewest checkpoints but (like UNCOORD) pays at\n"
              "recovery; COORD needs dedicated control messages; the index-based\n"
              "communication-induced protocols sit at the sweet spot the paper argues for.\n");
  return 0;
}
