// Checkpoint records: what a protocol writes to stable storage.
#pragma once

#include <vector>

#include "des/types.hpp"
#include "net/ids.hpp"

namespace mobichk::core {

/// Why a checkpoint was taken.
enum class CheckpointKind : u8 {
  kInitial,  ///< The mandatory checkpoint at computation start.
  kBasic,    ///< Mandated by mobility: cell switch or voluntary disconnection.
  kForced,   ///< Induced by the protocol (communication pattern or marker).
};

/// Returns a stable display name for a kind.
constexpr const char* checkpoint_kind_name(CheckpointKind kind) noexcept {
  switch (kind) {
    case CheckpointKind::kInitial: return "initial";
    case CheckpointKind::kBasic: return "basic";
    case CheckpointKind::kForced: return "forced";
  }
  return "?";
}

/// One sparse dependency entry: what a TP checkpoint requires of `host`.
/// Entries absent from a sparse record mean "no dependency" (ckpt 0, the
/// initial checkpoint) and "location never learned" (MSS 0), matching the
/// zero-initialised dense vectors they replace.
struct DepEntry {
  u32 host = 0;
  u32 ckpt = 0;  ///< Minimal checkpoint ordinal of `host` the line requires.
  u32 loc = 0;   ///< Last-known MSS of `host` (retrieval metadata).
};

/// One local checkpoint C_{i,x}.
struct CheckpointRecord {
  net::HostId host = 0;
  u64 ordinal = 0;       ///< Per-host creation order (0-based, includes initial).
  u64 sn = 0;            ///< Protocol index: sequence number (BCS/QBC), checkpoint
                         ///< count (TP), snapshot round (coordinated), = ordinal otherwise.
  CheckpointKind kind = CheckpointKind::kInitial;
  des::Time time = 0.0;
  net::MssId location = 0;  ///< MSS whose stable storage holds it.
  u64 event_pos = 0;        ///< Host events with position <= event_pos precede it.
  u64 bytes = 0;            ///< Upload size (0 when no byte model is attached).
  bool replaced_predecessor = false;  ///< QBC equivalence rule fired (same sn as predecessor).

  /// TP dense mode: transitive dependency vectors recorded with the
  /// checkpoint (size n when present).
  std::vector<u32> dep_ckpt;
  std::vector<u32> dep_loc;
  /// TP sparse mode: only the entries actually depended on, sorted by
  /// host; `dep_rank` is the logical vector length (n_hosts). Exactly one
  /// of the dense/sparse representations is populated per record.
  std::vector<DepEntry> sparse_deps;
  u32 dep_rank = 0;

  /// True when the record carries TP dependency information (either
  /// representation). Readers must go through the `dep_*_at` accessors.
  bool has_deps() const noexcept { return !dep_ckpt.empty() || dep_rank > 0; }

  /// Logical length of the dependency vectors (n_hosts at record time).
  u32 deps_rank() const noexcept {
    return dep_rank > 0 ? dep_rank : static_cast<u32>(dep_ckpt.size());
  }

  /// CKPT[j] / LOC[j] under either representation. Out-of-range or absent
  /// entries read as 0, the no-dependency default.
  u32 dep_ckpt_at(u32 j) const noexcept {
    if (!dep_ckpt.empty()) return j < dep_ckpt.size() ? dep_ckpt[j] : 0;
    const DepEntry* e = find_sparse(j);
    return e != nullptr ? e->ckpt : 0;
  }
  u32 dep_loc_at(u32 j) const noexcept {
    if (!dep_loc.empty()) return j < dep_loc.size() ? dep_loc[j] : 0;
    const DepEntry* e = find_sparse(j);
    return e != nullptr ? e->loc : 0;
  }

 private:
  const DepEntry* find_sparse(u32 j) const noexcept {
    usize lo = 0, hi = sparse_deps.size();
    while (lo < hi) {
      const usize mid = (lo + hi) / 2;
      if (sparse_deps[mid].host < j) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo < sparse_deps.size() && sparse_deps[lo].host == j ? &sparse_deps[lo] : nullptr;
  }
};

}  // namespace mobichk::core
