// Property-based integration tests: invariants that must hold for every
// protocol on randomized end-to-end runs.
//
//  * Safety — every recovery line a protocol builds on the fly is free of
//    orphan messages (checked exhaustively, not sampled).
//  * QBC dominance — on the same trace, QBC's indices and checkpoint
//    counts never exceed BCS's.
//  * QBC internal invariant — rn_i <= sn_i at all times (checked at end).
//  * TP phase discipline — within any checkpoint interval, every receive
//    precedes every send.
//  * Basic-checkpoint mandate — exactly one basic checkpoint per handoff
//    and per disconnection.
//  * Duplicate tolerance — all of the above with at-least-once delivery
//    exposing duplicates to the protocols.
#include <gtest/gtest.h>

#include <sstream>

#include "core/protocols/qbc.hpp"
#include "core/recovery.hpp"
#include "core/vc_oracle.hpp"
#include "core/zgraph.hpp"
#include "sim/experiment.hpp"

namespace mobichk::sim {
namespace {

struct PropertyCase {
  u64 seed;
  f64 t_switch;
  f64 p_switch;
  f64 heterogeneity;
  bool duplicates;
  bool contention = false;                 ///< Finite cell bandwidth.
  net::MssTopologyKind topology = net::MssTopologyKind::kFullMesh;
  sim::MobilityModelKind mobility = sim::MobilityModelKind::kPaperUniform;

  friend std::ostream& operator<<(std::ostream& os, const PropertyCase& c) {
    os << "seed" << c.seed << "_ts" << c.t_switch << "_psw" << c.p_switch << "_h"
       << c.heterogeneity << (c.duplicates ? "_dup" : "");
    return os;
  }
};

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& pi) {
  std::ostringstream os;
  os << "seed" << pi.param.seed << "_ts" << static_cast<int>(pi.param.t_switch) << "_psw"
     << static_cast<int>(pi.param.p_switch * 10) << "_h"
     << static_cast<int>(pi.param.heterogeneity * 100) << (pi.param.duplicates ? "_dup" : "");
  return os.str();
}

class ProtocolProperties : public ::testing::TestWithParam<PropertyCase> {
 protected:
  SimConfig config() const {
    const PropertyCase& c = GetParam();
    SimConfig cfg;
    cfg.sim_length = 4'000.0;
    cfg.seed = c.seed;
    cfg.t_switch = c.t_switch;
    cfg.p_switch = c.p_switch;
    cfg.heterogeneity = c.heterogeneity;
    cfg.disconnect_mean = 300.0;  // shorter outages so short runs see reconnects
    if (c.duplicates) {
      cfg.network.duplicate_prob = 0.2;
      cfg.network.transport_dedup = false;
    }
    if (c.contention) cfg.network.wireless_bandwidth = 5'000.0;
    cfg.network.mss_topology = c.topology;
    cfg.mobility_model = c.mobility;
    return cfg;
  }

  static ExperimentOptions options() {
    ExperimentOptions opts;
    opts.protocols = {core::ProtocolKind::kTp, core::ProtocolKind::kBcs,
                      core::ProtocolKind::kQbc, core::ProtocolKind::kCoordinated};
    opts.params.coordinated_interval = 400.0;
    return opts;
  }
};

TEST_P(ProtocolProperties, AllRecoveryLinesAreOrphanFree) {
  Experiment exp(config(), options());
  exp.run();
  const auto& messages = exp.harness().message_log();
  const auto current = exp.harness().current_positions();

  for (usize slot = 0; slot < exp.harness().protocol_count(); ++slot) {
    const auto& log = exp.log(slot);
    const auto kind = exp.kind(slot);
    if (kind == core::ProtocolKind::kTp) {
      // Every checkpoint's on-the-fly line must be consistent.
      for (net::HostId h = 0; h < log.n_hosts(); ++h) {
        for (const auto& anchor : log.of(h)) {
          const auto cut = core::tp_recovery_line(log, anchor, current);
          const auto orphans = core::find_orphans(messages, cut);
          ASSERT_TRUE(orphans.empty())
              << "TP anchor h" << h << "#" << anchor.ordinal << ": "
              << core::describe_orphan(*orphans.front(), cut);
        }
      }
    } else {
      const auto rule = core::recovery_rule_for(kind);
      for (u64 m = 0; m <= log.max_sn(); ++m) {
        const auto cut = core::index_recovery_line(log, m, rule, current);
        const auto orphans = core::find_orphans(messages, cut);
        ASSERT_TRUE(orphans.empty())
            << core::protocol_kind_name(kind) << " index " << m << ": "
            << core::describe_orphan(*orphans.front(), cut);
      }
    }
  }
}

TEST_P(ProtocolProperties, QbcIndexDominanceOverBcs) {
  // The theorem: on the same trace QBC's sequence numbers never exceed
  // BCS's, host by host (inductive over the trace). Checkpoint *counts*
  // are dominated only in expectation — slower index growth can re-time
  // forced checkpoints and occasionally add a couple — so the count
  // check carries slack (the randomized stress test documents the
  // counterexamples).
  Experiment exp(config(), options());
  exp.run();
  const auto& bcs_log = exp.log(1);
  const auto& qbc_log = exp.log(2);
  EXPECT_EQ(qbc_log.basic(), bcs_log.basic());
  for (net::HostId h = 0; h < bcs_log.n_hosts(); ++h) {
    EXPECT_LE(qbc_log.max_sn(h), bcs_log.max_sn(h)) << "host " << h;
  }
  EXPECT_LE(static_cast<f64>(qbc_log.n_tot()),
            static_cast<f64>(bcs_log.n_tot()) * 1.05 + 5.0);
}

TEST_P(ProtocolProperties, QbcReceiveNumberNeverExceedsSequenceNumber) {
  Experiment exp(config(), options());
  exp.run();
  const auto& qbc = dynamic_cast<const core::QbcProtocol&>(exp.harness().protocol(2));
  for (net::HostId h = 0; h < exp.network().n_hosts(); ++h) {
    EXPECT_LE(qbc.receive_number(h), static_cast<i64>(qbc.sequence_number(h))) << "host " << h;
  }
}

TEST_P(ProtocolProperties, TpIntervalsReceiveThenSend) {
  Experiment exp(config(), options());
  exp.run();
  const auto& log = exp.log(0);  // TP
  const auto& deliveries = exp.harness().message_log().deliveries();

  // Bucket events per host: positions of sends and receives.
  const u32 n = exp.network().n_hosts();
  std::vector<std::vector<u64>> send_pos(n), recv_pos(n);
  for (const auto& d : deliveries) recv_pos[d.dst].push_back(d.recv_pos);
  // Receives tell us only delivered messages; for sends use sends from the
  // message log via deliveries' send side plus undelivered are unknowable
  // here — but any send that was never received cannot create an orphan,
  // and for the discipline check we only need sends we know about.
  for (const auto& d : deliveries) send_pos[d.src].push_back(d.send_pos);

  for (net::HostId h = 0; h < n; ++h) {
    const auto& ckpts = log.of(h);
    for (usize i = 0; i < ckpts.size(); ++i) {
      const u64 lo = ckpts[i].event_pos;
      const u64 hi = (i + 1 < ckpts.size()) ? ckpts[i + 1].event_pos : ~0ULL;
      // Within (lo, hi]: no receive may follow a send.
      u64 first_send = ~0ULL;
      for (const u64 s : send_pos[h]) {
        if (s > lo && s <= hi) first_send = std::min(first_send, s);
      }
      for (const u64 r : recv_pos[h]) {
        if (r > lo && r <= hi) {
          EXPECT_LT(r, first_send) << "host " << h << " interval after ckpt " << i
                                   << ": receive at " << r << " follows send at " << first_send;
        }
      }
    }
  }
}

TEST_P(ProtocolProperties, BasicCheckpointMandate) {
  Experiment exp(config(), options());
  exp.run();
  const u64 mobility_events = exp.network().stats().handoffs + exp.network().stats().disconnects;
  for (usize slot = 0; slot < 3; ++slot) {  // TP, BCS, QBC
    EXPECT_EQ(exp.log(slot).basic(), mobility_events)
        << core::protocol_kind_name(exp.kind(slot));
  }
}

TEST_P(ProtocolProperties, RollbackAlwaysReachesConsistency) {
  Experiment exp(config(), options());
  exp.run();
  const auto& messages = exp.harness().message_log();
  const auto fail_pos = exp.harness().current_positions();
  for (usize slot = 0; slot < exp.harness().protocol_count(); ++slot) {
    // Total failure: everyone restarts from stored checkpoints.
    const auto total = core::rollback_to_consistent(exp.log(slot), messages, fail_pos);
    EXPECT_TRUE(core::find_orphans(messages, total.line).empty());
    // Single-host failure: survivors may keep their failure state.
    const auto single = core::rollback_to_consistent(exp.log(slot), messages, fail_pos,
                                                     /*failed_host=*/0);
    EXPECT_TRUE(core::find_orphans(messages, single.line).empty());
    EXPECT_LE(single.undone_events(), total.undone_events());
    // The generic rollback finds the maximum consistent cut, so for the
    // same single-host failure it never undoes more than the protocol's
    // own index line.
    const auto kind = exp.kind(slot);
    if (kind == core::ProtocolKind::kBcs || kind == core::ProtocolKind::kQbc) {
      const auto idx = core::index_rollback(exp.log(slot), core::recovery_rule_for(kind),
                                            fail_pos, /*failed_host=*/0);
      EXPECT_TRUE(core::find_orphans(messages, idx.line).empty())
          << core::protocol_kind_name(kind);
      EXPECT_LE(single.undone_events(), idx.undone_events());
    }
  }
}

TEST_P(ProtocolProperties, OrphanOracleAgreesWithVectorClockOracle) {
  // Two independent consistency characterizations — direct message
  // crossings vs transitive vector-clock knowledge — must agree on every
  // cut we can build, including deliberately inconsistent ones.
  Experiment exp(config(), options());
  exp.run();
  const auto& messages = exp.harness().message_log();
  const auto current = exp.harness().current_positions();
  const core::VcOracle vc(exp.network().n_hosts(), messages);

  for (usize slot = 1; slot < 3; ++slot) {  // BCS, QBC
    const auto& log = exp.log(slot);
    const auto rule = core::recovery_rule_for(exp.kind(slot));
    for (u64 m = 0; m <= log.max_sn(); ++m) {
      const auto cut = core::index_recovery_line(log, m, rule, current);
      const bool by_orphans = core::find_orphans(messages, cut).empty();
      EXPECT_EQ(by_orphans, vc.consistent(cut)) << "index " << m;
    }
  }
  // Skewed cuts: take a valid line and damage one host's position.
  const auto& log = exp.log(1);
  auto cut = core::index_recovery_line(log, log.max_sn() / 2, core::IndexLineRule::kFirstAtLeast,
                                       current);
  for (net::HostId h = 0; h < exp.network().n_hosts(); ++h) {
    auto damaged = cut;
    damaged.pos[h] = current[h];  // pull one host to "now"
    EXPECT_EQ(core::find_orphans(messages, damaged).empty(), vc.consistent(damaged))
        << "damaged host " << h;
  }
}

TEST_P(ProtocolProperties, DominoFreeProtocolsHaveNoUselessCheckpoints) {
  // Netzer-Xu: a checkpoint is useless iff it lies on a zigzag cycle.
  // Every checkpoint of a communication-induced or coordinated protocol
  // belongs to some consistent global checkpoint, so the Z-cycle count
  // must be zero — an independent theory check of the same guarantee the
  // orphan oracle verifies.
  Experiment exp(config(), options());
  exp.run();
  const auto& messages = exp.harness().message_log();
  for (usize slot = 0; slot < 3; ++slot) {  // TP, BCS, QBC
    const core::IntervalGraph graph(exp.log(slot), messages);
    EXPECT_EQ(graph.useless_count(), 0u) << core::protocol_kind_name(exp.kind(slot));
  }
  // The coordinated protocol guarantees usefulness only for its round
  // checkpoints; the mobility-mandated basic checkpoints are outside the
  // coordination and *can* be useless — one more mark against the
  // coordinated class in a mobile setting (§2). Verify the split.
  const core::IntervalGraph coord_graph(exp.log(3), messages);
  for (const auto* useless : coord_graph.useless_checkpoints()) {
    EXPECT_EQ(useless->kind, core::CheckpointKind::kBasic)
        << "COORD round checkpoint h" << useless->host << "#" << useless->ordinal
        << " must belong to its round's line";
  }
}

TEST_P(ProtocolProperties, UncoordinatedCheckpointingProducesUselessCheckpoints) {
  // The contrast case: with independent local checkpoints, zigzag cycles
  // appear under any meaningful communication load.
  SimConfig cfg = config();
  cfg.comm_mean = 5.0;  // dense communication makes Z-cycles likely
  ExperimentOptions opts;
  opts.protocols = {core::ProtocolKind::kUncoordinated};
  opts.params.uncoordinated_mean_period = 50.0;
  Experiment exp(cfg, opts);
  exp.run();
  const core::IntervalGraph graph(exp.log(0), exp.harness().message_log());
  EXPECT_GT(graph.useless_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolProperties,
    ::testing::Values(PropertyCase{1, 100.0, 1.0, 0.0, false},
                      PropertyCase{2, 500.0, 0.8, 0.0, false},
                      PropertyCase{3, 1000.0, 0.8, 0.3, false},
                      PropertyCase{4, 200.0, 0.5, 0.5, false},
                      PropertyCase{5, 2000.0, 1.0, 0.3, false},
                      PropertyCase{6, 500.0, 0.8, 0.3, true},
                      PropertyCase{7, 100.0, 0.9, 0.5, true},
                      PropertyCase{8, 5000.0, 0.8, 0.0, false},
                      // The extended substrate must not break any invariant:
                      // finite cell bandwidth (queued deliveries reorder
                      // nothing the protocols rely on)...
                      PropertyCase{9, 500.0, 0.8, 0.3, false, true},
                      // ...a multi-hop wired topology (longer, uneven
                      // forwarding paths)...
                      PropertyCase{10, 500.0, 0.8, 0.0, false, false,
                                   net::MssTopologyKind::kLine},
                      // ...and the alternate mobility models, with duplicates
                      // and contention stacked on for good measure.
                      PropertyCase{11, 300.0, 0.7, 0.3, true, true,
                                   net::MssTopologyKind::kRing,
                                   sim::MobilityModelKind::kRingNeighbor},
                      PropertyCase{12, 1000.0, 0.8, 0.5, false, false,
                                   net::MssTopologyKind::kStar,
                                   sim::MobilityModelKind::kParetoResidence}),
    case_name);

}  // namespace
}  // namespace mobichk::sim
