// Fundamental type aliases shared across the mobichk libraries.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mobichk {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using usize = std::size_t;
using f64 = double;

namespace des {

/// Simulation time, in abstract "time units" (tu) as in the paper.
using Time = double;

/// Sentinel for "no time" / unscheduled.
inline constexpr Time kTimeNever = -1.0;

/// Largest representable simulation time.
inline constexpr Time kTimeInf = 1e300;

}  // namespace des
}  // namespace mobichk
