#include "net/channel.hpp"

#include <gtest/gtest.h>

#include "des/simulator.hpp"
#include "net/network.hpp"

namespace mobichk::net {
namespace {

TEST(CellChannel, IdleChannelStartsImmediately) {
  CellChannel ch;
  EXPECT_DOUBLE_EQ(ch.reserve(10.0, 2.0), 12.0);
  EXPECT_DOUBLE_EQ(ch.busy_time(), 2.0);
  EXPECT_DOUBLE_EQ(ch.queued_time(), 0.0);
  EXPECT_EQ(ch.transmissions(), 1u);
}

TEST(CellChannel, BusyChannelSerializes) {
  CellChannel ch;
  EXPECT_DOUBLE_EQ(ch.reserve(0.0, 5.0), 5.0);
  // Arrives at t=1 while busy until 5: waits 4, finishes at 8.
  EXPECT_DOUBLE_EQ(ch.reserve(1.0, 3.0), 8.0);
  EXPECT_DOUBLE_EQ(ch.queued_time(), 4.0);
  EXPECT_DOUBLE_EQ(ch.busy_time(), 8.0);
}

TEST(CellChannel, GapsDoNotCountAsBusy) {
  CellChannel ch;
  ch.reserve(0.0, 1.0);
  ch.reserve(10.0, 1.0);
  EXPECT_DOUBLE_EQ(ch.busy_time(), 2.0);
  EXPECT_NEAR(ch.utilization(20.0), 0.1, 1e-12);
}

TEST(CellChannel, UtilizationAtTimeZeroIsZero) {
  CellChannel ch;
  EXPECT_DOUBLE_EQ(ch.utilization(0.0), 0.0);
}

class ContentionNetworkTest : public ::testing::Test {
 protected:
  static NetworkConfig make_config(f64 bandwidth) {
    NetworkConfig cfg;
    cfg.n_hosts = 3;
    cfg.n_mss = 2;
    cfg.wireless_bandwidth = bandwidth;
    return cfg;
  }
};

TEST_F(ContentionNetworkTest, ZeroBandwidthKeepsIdealLatency) {
  des::Simulator sim;
  Network net(sim, make_config(0.0), 1);
  NullHostEventHandler handler;
  net.set_handler(&handler);
  net.start({0, 0, 1});
  net.send_app_message(0, 1, 100);
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 0.02);  // two ideal wireless hops
  EXPECT_EQ(net.channel(0).transmissions(), 0u);
}

TEST_F(ContentionNetworkTest, TransmissionTimeAddsBytesOverBandwidth) {
  des::Simulator sim;
  Network net(sim, make_config(1000.0), 1);  // 1000 B/tu
  NullHostEventHandler handler;
  net.set_handler(&handler);
  net.start({0, 0, 1});
  net.send_app_message(0, 1, 100);  // 100 B, no piggyback
  sim.run();
  // Each hop: 0.01 propagation + 100/1000 transmission = 0.11.
  EXPECT_NEAR(sim.now(), 0.22, 1e-9);
  EXPECT_DOUBLE_EQ(net.stats().delivery_latency.max(), sim.now());
}

TEST_F(ContentionNetworkTest, ConcurrentSendsInOneCellQueue) {
  des::Simulator sim;
  Network net(sim, make_config(1000.0), 1);
  NullHostEventHandler handler;
  net.set_handler(&handler);
  net.start({0, 0, 1});
  // Two hosts in cell 0 send simultaneously: the second uplink waits for
  // the first (0.11 service each).
  net.send_app_message(0, 2, 100);
  net.send_app_message(1, 2, 100);
  sim.run();
  EXPECT_NEAR(net.channel(0).busy_time(), 0.22, 1e-9);
  EXPECT_NEAR(net.channel(0).queued_time(), 0.11, 1e-9);
  // Destination cell 1 serializes the two downlinks as well.
  EXPECT_NEAR(net.channel(1).busy_time(), 0.22, 1e-9);
  EXPECT_EQ(net.stats().delivery_latency.count(), 2u);
  EXPECT_GT(net.stats().delivery_latency.max(), net.stats().delivery_latency.min());
}

TEST_F(ContentionNetworkTest, PiggybackBytesOccupyTheChannel) {
  // Same payload, bigger piggyback => longer channel occupancy. The
  // handler injects a fat control vector (as TP would).
  class FatPiggybackHandler : public NullHostEventHandler {
   public:
    void on_send(MobileHost&, AppMessage& msg) override {
      msg.pb.vec_a.assign(20, 1);  // 80 extra bytes
      msg.pb.vec_b.assign(20, 1);  // 80 extra bytes
    }
  };
  des::Simulator sim_small, sim_fat;
  Network net_small(sim_small, make_config(1000.0), 1);
  Network net_fat(sim_fat, make_config(1000.0), 1);
  NullHostEventHandler small;
  FatPiggybackHandler fat;
  net_small.set_handler(&small);
  net_fat.set_handler(&fat);
  net_small.start({0, 0, 1});
  net_fat.start({0, 0, 1});
  net_small.send_app_message(0, 1, 100);
  net_fat.send_app_message(0, 1, 100);
  sim_small.run();
  sim_fat.run();
  EXPECT_GT(net_fat.channel(0).busy_time(), net_small.channel(0).busy_time());
  EXPECT_GT(sim_fat.now(), sim_small.now());
}

TEST_F(ContentionNetworkTest, ControlMessagesOccupyWithoutDelaying) {
  des::Simulator sim;
  Network net(sim, make_config(1000.0), 1);
  NullHostEventHandler handler;
  net.set_handler(&handler);
  net.start({0, 0, 1});
  net.switch_cell(0, 1);  // occupies both cells' channels
  EXPECT_EQ(net.host(0).mss(), 1u);  // state change is immediate
  // 0.01 + 64/1000 = 0.074 per control message.
  EXPECT_NEAR(net.channel(0).busy_time(), 0.074, 1e-9);
  EXPECT_NEAR(net.channel(1).busy_time(), 0.074, 1e-9);
}

TEST_F(ContentionNetworkTest, NegativeBandwidthRejected) {
  NetworkConfig cfg = make_config(-1.0);
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace mobichk::net
