// Causal observability tests: the three-way reconciliation at the heart
// of this layer (online RecoveryLineTracker == offline line builders ==
// vector-clock / Z-cycle oracles, for every checkpoint of a seeded run on
// every queue kind), forced-rule attribution per protocol from scripted
// scenarios, the timeline-cap invariance of the rl.* metrics, and the
// causal-chain explainer.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/protocols/bcs.hpp"
#include "core/protocols/qbc.hpp"
#include "core/protocols/tp.hpp"
#include "core/vc_oracle.hpp"
#include "core/zgraph.hpp"
#include "des/event_queue.hpp"
#include "mobichk.hpp"

namespace mobichk {
namespace {

using core::ProtocolKind;

sim::SimConfig small_cfg(u64 seed) {
  sim::SimConfig cfg;
  cfg.network.n_hosts = 6;
  cfg.network.n_mss = 3;
  cfg.sim_length = 3'000.0;
  cfg.t_switch = 150.0;
  cfg.p_switch = 0.9;
  cfg.seed = seed;
  return cfg;
}

void expect_members_match(const std::vector<obs::LineMember>& online,
                          const core::GlobalCheckpoint& cut) {
  ASSERT_EQ(online.size(), cut.members.size());
  for (usize h = 0; h < online.size(); ++h) {
    SCOPED_TRACE("member host " + std::to_string(h));
    if (cut.members[h] == nullptr) {
      EXPECT_TRUE(online[h].is_virtual);
    } else {
      EXPECT_FALSE(online[h].is_virtual);
      EXPECT_EQ(online[h].ordinal, cut.members[h]->ordinal);
    }
  }
}

// Three-way theory check, the acceptance bar of the causal layer: for
// EVERY checkpoint of a seeded run, on every queue kind,
//   (1) the tracker's online line equals the offline line builder's,
//   (2) that line is consistent under the VC oracle and orphan-free,
//   (3) the tracker's Z-cycle verdict per checkpoint and its useless
//       count equal the offline interval graph's.
// The tracker sees nothing but probe events; the oracles see nothing but
// the core logs — agreement means the probe stream carries the theory.
TEST(CausalReconciliation, OnlineTrackerMatchesOfflineOraclesOnEveryQueueKind) {
  for (const des::QueueKind qk : des::kAllQueueKinds) {
    SCOPED_TRACE(std::string("queue kind ") + std::to_string(static_cast<int>(qk)));
    const sim::SimConfig cfg = small_cfg(13);
    obs::RunObserver observer;
    sim::ExperimentOptions opts;
    opts.protocols = {ProtocolKind::kTp, ProtocolKind::kBcs, ProtocolKind::kQbc,
                      ProtocolKind::kCoordinated};
    opts.queue_kind = qk;
    opts.observer = &observer;
    sim::Experiment exp(cfg, opts);
    exp.run();

    const obs::CausalMonitor* monitor = observer.causal();
    ASSERT_NE(monitor, nullptr);
    ASSERT_EQ(monitor->slots(), opts.protocols.size());
    const core::MessageLog& messages = exp.harness().message_log();
    const std::vector<u64> current = exp.harness().current_positions();
    const core::VcOracle oracle(cfg.network.n_hosts, messages);

    for (usize slot = 0; slot < opts.protocols.size(); ++slot) {
      SCOPED_TRACE("slot " + std::to_string(slot) + " (" +
                   core::protocol_kind_name(opts.protocols[slot]) + ")");
      const obs::RecoveryLineTracker* tracker = monitor->tracker(slot);
      ASSERT_NE(tracker, nullptr);
      const ProtocolKind kind = opts.protocols[slot];
      const core::CheckpointLog& log = exp.log(slot);
      const core::IntervalGraph graph(log, messages);

      for (u32 h = 0; h < log.n_hosts(); ++h) {
        ASSERT_EQ(tracker->checkpoints(h), log.of(h).size()) << "host " << h;
        for (const core::CheckpointRecord& rec : log.of(h)) {
          SCOPED_TRACE("checkpoint host " + std::to_string(h) + " #" +
                       std::to_string(rec.ordinal));
          core::GlobalCheckpoint cut;
          std::vector<obs::LineMember> online;
          if (kind == ProtocolKind::kTp) {
            cut = core::tp_recovery_line(log, rec, current);
            online = tracker->tp_line(h, rec.ordinal);
          } else {
            cut = core::index_recovery_line(log, rec.sn, core::recovery_rule_for(kind), current);
            online = tracker->index_line(rec.sn);
          }
          expect_members_match(online, cut);
          EXPECT_TRUE(oracle.consistent(cut));
          EXPECT_TRUE(core::find_orphans(messages, cut).empty());
          if (rec.ordinal > 0) {
            EXPECT_EQ(tracker->on_z_cycle(h, rec.ordinal), graph.on_z_cycle(h, rec.ordinal));
          }
        }
      }
      EXPECT_EQ(tracker->useless_count(), graph.useless_checkpoints().size());
      if (kind == ProtocolKind::kTp) {
        // Russell's discipline: the protocol checkpoints before any
        // receive that follows a send, so the tracker — which sees the
        // forced-checkpoint event before the deliver event — must never
        // observe a delivery landing in a SEND phase.
        EXPECT_EQ(tracker->phase_violations(), 0u);
      }
    }
  }
}

TEST(CausalMetrics, RecoveryLineFamiliesAreExportedAndReconcileWithRunStats) {
  const sim::SimConfig cfg = small_cfg(11);
  obs::RunObserver observer;
  sim::ExperimentOptions opts;
  opts.observer = &observer;
  sim::Experiment exp(cfg, opts);  // default protocols: TP, BCS, QBC
  exp.run();
  const sim::RunResult& result = exp.result();

  for (usize slot = 0; slot < result.protocols.size(); ++slot) {
    const sim::ProtocolRunStats& stats = result.protocols[slot];
    SCOPED_TRACE(stats.name);
    const std::string prefix = "rl." + std::to_string(slot) + "." + stats.name;
    const obs::RecoveryLineTracker* tracker = observer.causal()->tracker(slot);
    ASSERT_NE(tracker, nullptr);

    // The gauge mirrors the tracker's committed line.
    const obs::Gauge* line = observer.registry().find_gauge(prefix + ".line_index");
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(static_cast<u64>(line->value()), tracker->line_index());

    // Every forced checkpoint contributed one forced-chain sample.
    const obs::FixedHistogram* chains = observer.registry().find_histogram(prefix + ".forced_chain");
    ASSERT_NE(chains, nullptr);
    EXPECT_EQ(chains->count(), stats.forced);
    if (stats.forced > 0) {
      EXPECT_GE(tracker->max_forced_chain(), 1u);
      EXPECT_EQ(static_cast<u64>(chains->max()), tracker->max_forced_chain());
    }
    EXPECT_NE(observer.registry().find_counter(prefix + ".line_advances"), nullptr);
    EXPECT_NE(observer.registry().find_counter(prefix + ".useless_checkpoints"), nullptr);

    // Forced-rule attribution on the timeline reconciles with the
    // per-protocol counters, and each protocol fires only its own rule.
    u64 forced_events = 0;
    for (const obs::ProbeEvent& e : observer.timeline().events()) {
      if (e.kind != obs::ProbeKind::kCheckpoint || e.track != static_cast<i32>(slot) ||
          e.ckpt_kind != obs::CkptKind::kForced) {
        continue;
      }
      ++forced_events;
      const obs::ForcedRule want = stats.kind == ProtocolKind::kTp
                                       ? obs::ForcedRule::kReceiveAfterSend
                                       : obs::ForcedRule::kSnGreater;
      EXPECT_EQ(e.rule, want);
      EXPECT_NE(e.b, 0u) << "forced checkpoint without a triggering message id";
    }
    EXPECT_EQ(forced_events, stats.forced);
  }
}

TEST(CausalMetrics, TimelineCapDoesNotPerturbRecoveryLineMetrics) {
  const sim::SimConfig cfg = small_cfg(17);

  auto rl_samples = [](const obs::RunObserver& o) {
    std::vector<obs::MetricSample> rl;
    for (const obs::MetricSample& s : o.registry().snapshot()) {
      if (s.name.rfind("rl.", 0) == 0) rl.push_back(s);
    }
    return rl;
  };

  obs::RunObserver full;
  {
    sim::ExperimentOptions opts;
    opts.observer = &full;
    sim::Experiment exp(cfg, opts);
    exp.run();
  }
  obs::RunObserver capped;
  capped.set_timeline_capacity(64);
  {
    sim::ExperimentOptions opts;
    opts.observer = &capped;
    sim::Experiment exp(cfg, opts);
    exp.run();
  }

  // The cap bounded storage and counted the overflow...
  EXPECT_EQ(capped.timeline().size(), 64u);
  EXPECT_GT(capped.timeline().dropped(), 0u);
  EXPECT_EQ(capped.registry().find_counter("obs.timeline.dropped_events")->value(),
            capped.timeline().dropped());
  EXPECT_EQ(full.timeline().dropped(), 0u);

  // ...but the online analysis listens ahead of the cap, so every rl.*
  // metric is identical to the uncapped run's.
  const auto want = rl_samples(full);
  const auto got = rl_samples(capped);
  ASSERT_FALSE(want.empty());
  ASSERT_EQ(got.size(), want.size());
  for (usize i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].name, want[i].name);
    EXPECT_EQ(got[i].value, want[i].value) << want[i].name;
  }
}

// -- scripted forced-rule attribution ----------------------------------
//
// Hand-driven scenarios pin the exact (rule, trigger message) pair each
// protocol stamps on its forced checkpoints.

class ScriptedRun : public ::testing::Test {
 protected:
  ScriptedRun() : net_(sim_, config(), 1), harness_(net_) {
    harness_.set_timeline(&timeline_);  // before add_protocol
    net_.set_observer(nullptr, &timeline_);
  }

  static net::NetworkConfig config() {
    net::NetworkConfig cfg;
    cfg.n_hosts = 3;
    cfg.n_mss = 2;
    return cfg;
  }

  /// The id of the `ordinal`-th kSend event (0-based), or 0.
  u64 sent_msg_id(usize ordinal) const {
    usize seen = 0;
    for (const obs::ProbeEvent& e : timeline_.events()) {
      if (e.kind == obs::ProbeKind::kSend && seen++ == ordinal) return e.a;
    }
    return 0;
  }

  /// The single forced-checkpoint event on the timeline.
  const obs::ProbeEvent* the_forced() const {
    const obs::ProbeEvent* found = nullptr;
    for (const obs::ProbeEvent& e : timeline_.events()) {
      if (e.kind == obs::ProbeKind::kCheckpoint && e.ckpt_kind == obs::CkptKind::kForced) {
        EXPECT_EQ(found, nullptr) << "more than one forced checkpoint";
        found = &e;
      }
    }
    return found;
  }

  des::Simulator sim_;
  obs::Timeline timeline_;
  net::Network net_;
  core::ProtocolHarness harness_;
};

TEST_F(ScriptedRun, BcsStampsSnRuleAndTriggeringMessageOnForcedCheckpoints) {
  const usize slot = harness_.add_protocol(std::make_unique<core::BcsProtocol>());
  net_.start({0, 0, 1});
  net_.switch_cell(0, 1);          // basic checkpoint: sn_0 = 1
  net_.send_app_message(0, 1, 8);  // piggybacks sn 1
  sim_.run();
  net_.consume_one(1);  // 1 > sn_1 (0): forced
  ASSERT_EQ(harness_.log(slot).forced(), 1u);

  const obs::ProbeEvent* forced = the_forced();
  ASSERT_NE(forced, nullptr);
  EXPECT_EQ(forced->rule, obs::ForcedRule::kSnGreater);
  EXPECT_EQ(forced->actor, 1);
  EXPECT_EQ(forced->track, static_cast<i32>(slot));
  EXPECT_EQ(forced->b, sent_msg_id(0));
  EXPECT_NE(forced->b, 0u);
}

TEST_F(ScriptedRun, TpStampsReceiveAfterSendRuleWithTheIncomingMessage) {
  const usize slot = harness_.add_protocol(std::make_unique<core::TpProtocol>());
  net_.start({0, 0, 1});
  net_.send_app_message(1, 0, 8);  // host 1 enters its SEND phase
  net_.send_app_message(0, 1, 8);  // the message that will interrupt it
  sim_.run();
  net_.consume_one(1);  // receive after send: forced, then delivered
  ASSERT_EQ(harness_.log(slot).forced(), 1u);

  const obs::ProbeEvent* forced = the_forced();
  ASSERT_NE(forced, nullptr);
  EXPECT_EQ(forced->rule, obs::ForcedRule::kReceiveAfterSend);
  EXPECT_EQ(forced->actor, 1);
  EXPECT_EQ(forced->b, sent_msg_id(1));  // the 0 -> 1 message
  EXPECT_NE(forced->b, 0u);
}

TEST_F(ScriptedRun, QbcStampsSnRuleAndMarksEquivalenceReplacements) {
  const usize slot = harness_.add_protocol(std::make_unique<core::QbcProtocol>());
  net_.start({0, 0, 1});
  net_.send_app_message(1, 0, 8);  // pb.sn 0: ties host 0 (rn = sn = 0)
  sim_.run();
  net_.consume_one(0);             // no force (0 is not > 0)
  net_.switch_cell(0, 1);          // rn == sn: new index, sn_0 = 1
  net_.send_app_message(0, 1, 8);  // piggybacks sn 1
  sim_.run();
  net_.consume_one(1);   // 1 > sn_1 (0): forced
  net_.switch_cell(0, 0);  // rn (0) < sn (1): equivalence replacement
  ASSERT_EQ(harness_.log(slot).forced(), 1u);

  const obs::ProbeEvent* forced = the_forced();
  ASSERT_NE(forced, nullptr);
  EXPECT_EQ(forced->rule, obs::ForcedRule::kSnGreater);
  EXPECT_EQ(forced->actor, 1);
  EXPECT_EQ(forced->b, sent_msg_id(1));
  bool saw_replacement = false;
  for (const obs::ProbeEvent& e : timeline_.events()) {
    if (e.kind == obs::ProbeKind::kCheckpoint && e.replaced) {
      saw_replacement = true;
      EXPECT_EQ(e.actor, 0);
      EXPECT_EQ(e.ckpt_kind, obs::CkptKind::kBasic);
    }
  }
  EXPECT_TRUE(saw_replacement);
}

TEST_F(ScriptedRun, ForcedCheckpointEventPrecedesTheDeliverEvent) {
  // The tracker's interval accounting (receiver interval at delivery)
  // relies on this ordering; pin it.
  harness_.add_protocol(std::make_unique<core::BcsProtocol>());
  net_.start({0, 0, 1});
  net_.switch_cell(0, 1);
  net_.send_app_message(0, 1, 8);
  sim_.run();
  net_.consume_one(1);
  i64 forced_at = -1, deliver_at = -1;
  const auto& events = timeline_.events();
  for (usize i = 0; i < events.size(); ++i) {
    if (events[i].kind == obs::ProbeKind::kCheckpoint &&
        events[i].ckpt_kind == obs::CkptKind::kForced) {
      forced_at = static_cast<i64>(i);
    }
    if (events[i].kind == obs::ProbeKind::kDeliver) deliver_at = static_cast<i64>(i);
  }
  ASSERT_GE(forced_at, 0);
  ASSERT_GE(deliver_at, 0);
  EXPECT_LT(forced_at, deliver_at);
}

TEST(CausalAttribution, CoordinatedForcedCheckpointsAreAllMarkerDriven) {
  sim::SimConfig cfg = small_cfg(7);
  cfg.sim_length = 1'500.0;
  obs::RunObserver observer;
  sim::ExperimentOptions opts;
  opts.protocols = {ProtocolKind::kCoordinated};
  opts.observer = &observer;
  sim::Experiment exp(cfg, opts);
  exp.run();
  const sim::ProtocolRunStats& stats = exp.result().protocols.at(0);

  u64 forced_events = 0;
  for (const obs::ProbeEvent& e : observer.timeline().events()) {
    if (e.kind != obs::ProbeKind::kCheckpoint || e.ckpt_kind != obs::CkptKind::kForced) continue;
    ++forced_events;
    EXPECT_EQ(e.rule, obs::ForcedRule::kMarker);
    EXPECT_EQ(e.b, 0u) << "marker-forced checkpoints have no triggering app message";
  }
  EXPECT_GT(stats.forced, 0u);
  EXPECT_EQ(forced_events, stats.forced);
}

// -- the explainer -----------------------------------------------------

TEST(CausalExplain, ChainStartsAtTheTargetAndFollowsTriggeringSends) {
  const sim::SimConfig cfg = small_cfg(19);
  obs::RunObserver observer;
  sim::ExperimentOptions opts;
  opts.observer = &observer;
  sim::Experiment exp(cfg, opts);
  exp.run();

  // Pick the first forced BCS checkpoint off the timeline, deriving its
  // per-host ordinal the same way the explainer does (event order).
  constexpr i32 kSlot = 1;  // BCS in the default protocol set
  i32 host = -1;
  u64 ordinal = 0;
  std::vector<u64> seen(cfg.network.n_hosts, 0);
  for (const obs::ProbeEvent& e : observer.timeline().events()) {
    if (e.kind != obs::ProbeKind::kCheckpoint || e.track != kSlot) continue;
    if (e.ckpt_kind == obs::CkptKind::kForced && host < 0) {
      host = e.actor;
      ordinal = seen[static_cast<usize>(e.actor)];
    }
    ++seen[static_cast<usize>(e.actor)];
  }
  ASSERT_GE(host, 0) << "run produced no forced BCS checkpoint";

  const auto chain = obs::explain_checkpoint_chain(observer.timeline(), kSlot, host, ordinal);
  ASSERT_FALSE(chain.empty());
  EXPECT_EQ(chain[0].host, host);
  EXPECT_EQ(chain[0].ordinal, ordinal);
  EXPECT_EQ(chain[0].ckpt_kind, obs::CkptKind::kForced);
  EXPECT_NE(chain[0].trigger_msg, 0u);
  for (usize i = 0; i + 1 < chain.size(); ++i) {
    // Each next step is the sender-side checkpoint behind the trigger.
    ASSERT_TRUE(chain[i].msg_found);
    EXPECT_EQ(chain[i + 1].host, chain[i].msg_src);
    EXPECT_LE(chain[i + 1].t, chain[i].t);
  }
  const obs::ChainStep& last = chain.back();
  EXPECT_TRUE(last.trigger_msg == 0 || !last.msg_found || chain.size() == 16u);

  // Out-of-range targets are reported as empty, not fabricated.
  EXPECT_TRUE(obs::explain_checkpoint_chain(observer.timeline(), kSlot, host, 100'000).empty());

  // The CLI-facing printer renders the same chain without throwing.
  std::ostringstream os;
  sim::print_checkpoint_chain(os, observer.timeline(), {"TP", "BCS", "QBC"}, kSlot, host, ordinal);
  EXPECT_NE(os.str().find("causal chain for BCS"), std::string::npos);
  EXPECT_NE(os.str().find("triggered by msg"), std::string::npos);
}

TEST(CausalExplain, ParseCkptTargetValidatesSpecAndProtocolName) {
  const std::vector<std::string> names = {"TP", "BCS", "QBC"};
  const sim::CkptTarget t = sim::parse_ckpt_target("bcs:2:5", names);
  EXPECT_EQ(t.slot, 1u);
  EXPECT_EQ(t.host, 2u);
  EXPECT_EQ(t.ordinal, 5u);
  EXPECT_THROW(sim::parse_ckpt_target("NOPE:1:2", names), std::invalid_argument);
  EXPECT_THROW(sim::parse_ckpt_target("BCS:1", names), std::invalid_argument);
  EXPECT_THROW(sim::parse_ckpt_target("BCS:x:2", names), std::invalid_argument);
}

// -- tracker edge cases ------------------------------------------------

TEST(TrackerEdgeCases, ConstructionAndQueriesGuardTheirDomains) {
  EXPECT_THROW(obs::RecoveryLineTracker(obs::TrackerMode::kIndexFirstAtLeast, 0),
               std::invalid_argument);
  obs::RecoveryLineTracker index(obs::TrackerMode::kIndexFirstAtLeast, 2);
  EXPECT_THROW(index.tp_line(0, 0), std::logic_error);   // wrong mode
  EXPECT_THROW(index.on_z_cycle(0, 1), std::logic_error);  // before finalize
  // Unknown deliveries (no recorded send) are ignored, not invented.
  index.on_deliver(0, 42);
  EXPECT_EQ(index.max_forced_chain(), 0u);
}

}  // namespace
}  // namespace mobichk
