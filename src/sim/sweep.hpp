// Parallel experiment sweeps: run many independent simulations across a
// thread pool and aggregate per-point, per-protocol statistics.
//
// Every simulation is fully determined by its SimConfig (including the
// seed), so runs are embarrassingly parallel; the pool simply hands out
// job indices.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "des/stats.hpp"
#include "sim/experiment.hpp"

namespace mobichk::sim {

/// Runs every (cfg, opts) job, possibly concurrently, and returns results
/// in job order. `threads` = 0 picks the hardware concurrency.
std::vector<RunResult> run_parallel(const std::vector<SimConfig>& configs,
                                    const ExperimentOptions& opts, u32 threads = 0);

/// Specification of one paper figure: N_tot vs T_switch for a protocol set.
struct FigureSpec {
  std::string title;
  SimConfig base;                       ///< p_switch / heterogeneity / length set here.
  std::vector<f64> t_switch_values{100, 200, 500, 1'000, 2'000, 5'000, 10'000};
  std::vector<core::ProtocolKind> protocols{core::ProtocolKind::kTp, core::ProtocolKind::kBcs,
                                            core::ProtocolKind::kQbc};
  u32 seeds = 5;       ///< Independent replications per point.
  u64 seed_base = 42;  ///< Replication r of point p uses seed_base + p * seeds + r.
};

/// Aggregated sweep outcome: cells[point][protocol] tallies N_tot across
/// the replications.
struct FigureResult {
  std::string title;
  std::vector<f64> t_switch_values;
  std::vector<std::string> protocol_names;
  std::vector<std::vector<des::Tally>> cells;  ///< [point][protocol].

  /// Mean N_tot of `protocol` at `point`.
  f64 mean(usize point, usize protocol) const { return cells.at(point).at(protocol).mean(); }

  /// Relative gain of protocol `b` over `a` at `point`:
  /// (N_a - N_b) / N_a, in percent.
  f64 gain_percent(usize point, usize a, usize b) const;

  /// Largest relative half-spread across replications (the paper reports
  /// "within 4% of each other").
  f64 max_relative_spread() const;

  /// Paper-style table: one row per T_switch, one column per protocol.
  void print(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

  /// Self-contained gnuplot script (inline data, log-log axes like the
  /// paper's figures). Pipe into gnuplot to render.
  void write_gnuplot(std::ostream& os) const;
};

/// Runs the sweep (points x seeds simulations) on `threads` workers.
FigureResult run_figure(const FigureSpec& spec, const ExperimentOptions& opts = {},
                        u32 threads = 0);

}  // namespace mobichk::sim
