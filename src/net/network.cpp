#include "net/network.hpp"

#include <cassert>
#include <stdexcept>

namespace mobichk::net {

void NetworkConfig::validate() const {
  if (n_hosts < 2) throw std::invalid_argument("NetworkConfig: need at least 2 hosts");
  if (n_mss < 1) throw std::invalid_argument("NetworkConfig: need at least 1 MSS");
  if (wireless_latency < 0.0 || wired_latency < 0.0) {
    throw std::invalid_argument("NetworkConfig: negative latency");
  }
  if (duplicate_prob < 0.0 || duplicate_prob >= 1.0) {
    throw std::invalid_argument("NetworkConfig: duplicate_prob must be in [0, 1)");
  }
  if (wireless_bandwidth < 0.0) {
    throw std::invalid_argument("NetworkConfig: negative wireless bandwidth");
  }
}

Network::Network(des::Simulator& sim, NetworkConfig cfg, u64 seed, des::TraceSink* sink)
    : sim_(sim),
      cfg_(cfg),
      sink_(sink != nullptr ? sink : &null_sink_),
      channel_rng_(seed, "net.channel"),
      topology_(cfg.mss_topology, cfg.n_mss) {
  cfg_.validate();
  mss_.reserve(cfg_.n_mss);
  for (MssId m = 0; m < cfg_.n_mss; ++m) mss_.emplace_back(m);
  channels_.resize(cfg_.n_mss);
  arena_.init(cfg_.n_hosts);
  directory_.init(cfg_.n_hosts, cfg_.n_mss);
  hosts_.reserve(cfg_.n_hosts);
  for (HostId h = 0; h < cfg_.n_hosts; ++h) {
    hosts_.emplace_back(&arena_, h);
    set_mss(h, static_cast<MssId>(h % cfg_.n_mss));
  }
}

void Network::start() {
  std::vector<MssId> placement(cfg_.n_hosts);
  for (HostId h = 0; h < cfg_.n_hosts; ++h) placement[h] = static_cast<MssId>(h % cfg_.n_mss);
  start(placement);
}

void Network::start(const std::vector<MssId>& placement) {
  if (started_) throw std::logic_error("Network::start called twice");
  if (placement.size() != cfg_.n_hosts) {
    throw std::invalid_argument("Network::start: placement size mismatch");
  }
  if (handler_ == nullptr) throw std::logic_error("Network::start: no handler installed");
  for (HostId h = 0; h < cfg_.n_hosts; ++h) {
    if (placement[h] >= cfg_.n_mss) throw std::invalid_argument("Network::start: bad MSS id");
    set_mss(h, placement[h]);
  }
  started_ = true;
  for (auto& host : hosts_) handler_->on_host_init(host);
}

u32 Network::park(AppMessage msg) {
  u32 idx;
  if (!park_free_.empty()) {
    idx = park_free_.back();
    park_free_.pop_back();
    parked_[idx] = std::move(msg);
  } else {
    idx = static_cast<u32>(parked_.size());
    parked_.push_back(std::move(msg));
  }
  return idx;
}

AppMessage Network::unpark(u32 idx) {
  AppMessage msg = std::move(parked_[idx]);
  park_free_.push_back(idx);
  return msg;
}

des::EventPayload Network::hop_payload(u8 sub, MssId at, u32 park_idx, bool flag) noexcept {
  des::EventPayload p;
  p.target = this;
  p.kind = des::EventKind::kMessageHop;
  p.sub = sub;
  p.flags = flag ? 1 : 0;
  p.a = at;
  p.b = park_idx;
  return p;
}

void Network::on_event(const des::EventPayload& p) {
  const MssId at = static_cast<MssId>(p.a);
  const u32 park_idx = static_cast<u32>(p.b);
  switch (p.sub) {
    case kSubUplink:
      // Location search: modeled as extra wired hops before forwarding.
      if (cfg_.location_search_hops > 0) {
        stats_.wired_hops += cfg_.location_search_hops;
        if (probe_ != nullptr) probe_->wired_hops->add(cfg_.location_search_hops);
        const f64 delay = cfg_.wired_latency * static_cast<f64>(cfg_.location_search_hops);
        // The message stays parked across the search leg.
        sim_.schedule_after(delay, hop_payload(kSubRouted, at, park_idx, /*targeted=*/false));
      } else {
        msg_at_mss(at, unpark(park_idx), /*targeted=*/false);
      }
      break;
    case kSubRouted:
      msg_at_mss(at, unpark(park_idx), /*targeted=*/(p.flags & 1) != 0);
      break;
    case kSubDeliver:
      deliver_to_host(at, unpark(park_idx), /*is_duplicate=*/(p.flags & 1) != 0);
      break;
    default:
      assert(false && "unknown kMessageHop sub-kind");
  }
}

f64 Network::wireless_delay(MssId cell, usize bytes) {
  if (cfg_.wireless_bandwidth <= 0.0) return cfg_.wireless_latency;
  const f64 service =
      cfg_.wireless_latency + static_cast<f64>(bytes) / cfg_.wireless_bandwidth;
  return channels_.at(cell).reserve(sim_.now(), service) - sim_.now();
}

void Network::wired_forward(MssId from, MssId to, AppMessage msg) {
  const u32 hops = topology_.hops(from, to);
  stats_.wired_hops += hops;
  if (probe_ != nullptr) probe_->wired_hops->add(hops);
  sim_.schedule_after(cfg_.wired_latency * static_cast<f64>(hops),
                      hop_payload(kSubRouted, to, park(std::move(msg)), /*targeted=*/true));
}

void Network::occupy_control(MssId cell) {
  if (cfg_.wireless_bandwidth <= 0.0) return;
  const f64 service = cfg_.wireless_latency +
                      static_cast<f64>(cfg_.control_message_bytes) / cfg_.wireless_bandwidth;
  channels_.at(cell).reserve(sim_.now(), service);
}

void Network::trace(des::TraceKind kind, u32 actor, u64 a, u64 b) {
  sink_->record(des::TraceRecord{sim_.now(), actor, kind, a, b});
}

void Network::internal_event(HostId host_id) { internal_events(host_id, 1); }

void Network::internal_events(HostId host_id, u64 count) {
  if (count == 0) return;
  MobileHost& h = hosts_.at(host_id);
  for (u64 i = 0; i < count; ++i) h.advance_pos();
  trace(des::TraceKind::kInternalEvent, host_id, h.event_pos(), count);
}

void Network::send_app_message(HostId src, HostId dst, u32 payload_bytes) {
  MobileHost& s = hosts_.at(src);
  assert(s.connected() && "disconnected hosts cannot send");
  assert(dst < cfg_.n_hosts && dst != src);

  AppMessage msg;
  msg.id = next_msg_id_++;
  msg.src = src;
  msg.dst = dst;
  msg.payload_bytes = payload_bytes;
  msg.sent_at = sim_.now();
  // The handler runs while event_pos() still names the last event *before*
  // this send, so a protocol that checkpoints on send produces a cut that
  // excludes the send. The send event then takes the next position.
  handler_->on_send(s, msg);
  msg.send_pos = s.advance_pos();
  observe_message(obs::ProbeKind::kSend, msg, src, dst);

  trace(des::TraceKind::kSend, src, msg.id, dst);
  ++stats_.app_sent;
  ++stats_.wireless_messages;  // MH -> MSS uplink.
  stats_.payload_bytes += payload_bytes;
  stats_.piggyback_bytes += msg.pb.wire_bytes();
  stats_.piggyback_dense_bytes += msg.pb.dense_bytes();
  if (probe_ != nullptr) {
    probe_->uplink_legs->add();
    probe_->payload_bytes->add(payload_bytes);
    probe_->piggyback_bytes->add(msg.pb.wire_bytes());
    probe_->piggyback_dense_bytes->add(msg.pb.dense_bytes());
  }

  const MssId src_mss = s.mss();
  const f64 uplink = wireless_delay(src_mss, msg.wire_bytes());
  sim_.schedule_after(uplink, hop_payload(kSubUplink, src_mss, park(std::move(msg)), false));
}

void Network::msg_at_mss(MssId at, AppMessage msg, bool targeted) {
  mss_.at(at).note_routed();
  MobileHost& d = hosts_.at(msg.dst);
  if (!d.connected()) {
    if (d.mss() == at) {
      mss_.at(at).buffer_message(msg.dst, std::move(msg));
    } else {
      // Forward to the destination's last MSS, which buffers.
      wired_forward(at, d.mss(), std::move(msg));
    }
    return;
  }
  if (d.mss() != at) {
    // We expected the destination here and it moved: that is a chase.
    // From the source's own MSS it is just the normal routing hop.
    if (targeted) ++stats_.chase_forwards;
    wired_forward(at, d.mss(), std::move(msg));
    return;
  }
  // Destination is attached here: wireless downlink.
  ++stats_.wireless_messages;
  if (probe_ != nullptr) probe_->downlink_legs->add();
  const f64 downlink = wireless_delay(at, msg.wire_bytes());
  sim_.schedule_after(downlink, hop_payload(kSubDeliver, at, park(std::move(msg)),
                                            /*is_duplicate=*/false));
}

void Network::deliver_to_host(MssId from_mss, AppMessage msg, bool is_duplicate) {
  MobileHost& d = hosts_.at(msg.dst);
  if (!d.connected()) {
    // Disconnected during the wireless leg: the MSS retains the message.
    mss_.at(from_mss).buffer_message(msg.dst, std::move(msg));
    return;
  }
  if (d.mss() != from_mss) {
    // Moved during the wireless leg: the old MSS re-routes.
    ++stats_.chase_forwards;
    wired_forward(from_mss, d.mss(), std::move(msg));
    return;
  }
  // At-least-once transport: the delivery may be duplicated.
  if (!is_duplicate && cfg_.duplicate_prob > 0.0 &&
      des::bernoulli(channel_rng_, cfg_.duplicate_prob)) {
    ++stats_.duplicates_generated;
    ++stats_.wireless_messages;
    if (probe_ != nullptr) probe_->downlink_legs->add();
    AppMessage copy = msg;
    const f64 redelivery = wireless_delay(from_mss, copy.wire_bytes());
    sim_.schedule_after(redelivery, hop_payload(kSubDeliver, from_mss, park(std::move(copy)),
                                               /*is_duplicate=*/true));
  }
  if (cfg_.duplicate_prob > 0.0 && cfg_.transport_dedup) {
    if (!arena_.seen_ids[msg.dst].insert(msg.id).second) {
      ++stats_.duplicates_suppressed;
      return;
    }
  }
  trace(des::TraceKind::kDeliver, msg.dst, msg.id, msg.src);
  ++stats_.app_delivered;
  stats_.delivery_latency.add(sim_.now() - msg.sent_at);
  if (probe_ != nullptr) probe_->delivery_latency->add(sim_.now() - msg.sent_at);
  d.mailbox().push(std::move(msg));
}

bool Network::consume_one(HostId host_id) {
  MobileHost& h = hosts_.at(host_id);
  if (h.mailbox().empty()) return false;
  AppMessage msg = h.mailbox().pop();
  // The protocol reacts (and possibly checkpoints) *before* the receive
  // event occupies its position, so a forced checkpoint excludes the
  // message being processed (no orphan by construction).
  handler_->on_receive(h, msg);
  h.advance_pos();
  // After on_receive: any forced-checkpoint probe event precedes the
  // deliver event, so online trackers see the cut the protocol built.
  observe_message(obs::ProbeKind::kDeliver, msg, host_id, msg.src);
  trace(des::TraceKind::kReceive, host_id, msg.id, msg.src);
  ++stats_.app_received;
  return true;
}

void Network::switch_cell(HostId host_id, MssId new_mss) {
  MobileHost& h = hosts_.at(host_id);
  assert(h.connected() && "cannot hand off a disconnected host");
  assert(new_mss < cfg_.n_mss && new_mss != h.mss());
  const MssId old_mss = h.mss();
  // Handoff protocol: one message to the MSS being left, one to the new
  // current MSS (paper §5.1).
  stats_.control_messages += 2;
  stats_.wireless_messages += 2;
  ++stats_.handoffs;
  if (probe_ != nullptr) probe_->handoffs->add();
  observe_mobility(obs::ProbeKind::kHandoff, host_id, static_cast<i32>(new_mss));
  occupy_control(old_mss);
  occupy_control(new_mss);
  set_mss(host_id, new_mss);
  trace(des::TraceKind::kHandoff, host_id, old_mss, new_mss);
  handler_->on_cell_switch(h, old_mss, new_mss);
}

void Network::disconnect(HostId host_id) {
  MobileHost& h = hosts_.at(host_id);
  assert(h.connected() && "already disconnected");
  // Disconnection protocol: one message to the current MSS (paper §5.1).
  stats_.control_messages += 1;
  stats_.wireless_messages += 1;
  ++stats_.disconnects;
  if (probe_ != nullptr) probe_->disconnects->add();
  observe_mobility(obs::ProbeKind::kDisconnect, host_id, -1);
  occupy_control(h.mss());
  trace(des::TraceKind::kDisconnect, host_id, h.mss());
  // The basic checkpoint is taken while still attached.
  handler_->on_disconnect(h);
  arena_.connected[host_id] = 0;
}

void Network::reconnect(HostId host_id, MssId new_mss) {
  MobileHost& h = hosts_.at(host_id);
  assert(!h.connected() && "already connected");
  assert(new_mss < cfg_.n_mss);
  const MssId last_mss = h.mss();
  stats_.control_messages += 1;
  stats_.wireless_messages += 1;
  ++stats_.reconnects;
  if (probe_ != nullptr) probe_->reconnects->add();
  observe_mobility(obs::ProbeKind::kReconnect, host_id, static_cast<i32>(new_mss));
  occupy_control(new_mss);
  arena_.connected[host_id] = 1;
  set_mss(host_id, new_mss);
  trace(des::TraceKind::kReconnect, host_id, last_mss, new_mss);
  handler_->on_reconnect(h, new_mss);
  // Messages that waited out the disconnection now flow to the new cell.
  auto pending = mss_.at(last_mss).drain_buffer(host_id);
  stats_.buffered_deliveries += pending.size();
  for (auto& msg : pending) {
    msg_at_mss(last_mss, std::move(msg), /*targeted=*/false);
  }
}

void Network::crash(HostId host_id) {
  MobileHost& h = hosts_.at(host_id);
  assert(h.connected() && "cannot crash a disconnected host");
  // A failure is unannounced: no control message, no upcall — the host
  // gets no chance to checkpoint (contrast disconnect()).
  ++stats_.crashes;
  if (probe_ != nullptr) probe_->crashes->add();
  observe_mobility(obs::ProbeKind::kCrash, host_id, -1);
  trace(des::TraceKind::kCrash, host_id, h.mss(), h.mailbox_size());
  arena_.connected[host_id] = 0;
  // Volatile state dies with the host. Messages delivered but not yet
  // consumed were already counted received by the MSS's stable log; park
  // them back in the cell buffer so replay re-delivers them.
  Mss& cell = mss_.at(h.mss());
  h.mailbox().drain(
      [&cell, host_id](AppMessage&& msg) { cell.buffer_message(host_id, std::move(msg)); });
  arena_.seen_ids[host_id].clear();
}

void Network::restore(HostId host_id, MssId at_mss) {
  MobileHost& h = hosts_.at(host_id);
  assert(!h.connected() && "cannot restore a live host");
  assert(at_mss < cfg_.n_mss);
  const MssId last_mss = h.mss();
  // The rejoin itself looks like a reconnection to the substrate: one
  // control message announcing the restored host to its MSS.
  stats_.control_messages += 1;
  stats_.wireless_messages += 1;
  ++stats_.restores;
  if (probe_ != nullptr) probe_->restores->add();
  observe_mobility(obs::ProbeKind::kRecover, host_id, static_cast<i32>(at_mss));
  occupy_control(at_mss);
  arena_.connected[host_id] = 1;
  set_mss(host_id, at_mss);
  trace(des::TraceKind::kRecover, host_id, last_mss, at_mss);
  handler_->on_reconnect(h, at_mss);
  // Messages buffered during the outage (including the crash-parked
  // mailbox) flow to the restored host.
  auto pending = mss_.at(last_mss).drain_buffer(host_id);
  stats_.buffered_deliveries += pending.size();
  for (auto& msg : pending) {
    msg_at_mss(last_mss, std::move(msg), /*targeted=*/false);
  }
}

}  // namespace mobichk::net
