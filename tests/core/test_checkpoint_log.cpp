#include "core/checkpoint_log.hpp"

#include <gtest/gtest.h>

namespace mobichk::core {
namespace {

CheckpointRecord make(net::HostId host, u64 sn, u64 pos,
                      CheckpointKind kind = CheckpointKind::kBasic) {
  CheckpointRecord rec;
  rec.host = host;
  rec.sn = sn;
  rec.event_pos = pos;
  rec.kind = kind;
  return rec;
}

TEST(CheckpointLog, AssignsOrdinalsPerHost) {
  CheckpointLog log(2);
  EXPECT_EQ(log.append(make(0, 0, 0)).ordinal, 0u);
  EXPECT_EQ(log.append(make(1, 0, 0)).ordinal, 0u);
  EXPECT_EQ(log.append(make(0, 1, 5)).ordinal, 1u);
  EXPECT_EQ(log.count(0), 2u);
  EXPECT_EQ(log.count(1), 1u);
}

TEST(CheckpointLog, CountsByKind) {
  CheckpointLog log(1);
  log.append(make(0, 0, 0, CheckpointKind::kInitial));
  log.append(make(0, 1, 2, CheckpointKind::kBasic));
  log.append(make(0, 2, 4, CheckpointKind::kForced));
  log.append(make(0, 3, 6, CheckpointKind::kForced));
  EXPECT_EQ(log.total(), 4u);
  EXPECT_EQ(log.initial(), 1u);
  EXPECT_EQ(log.basic(), 1u);
  EXPECT_EQ(log.forced(), 2u);
  EXPECT_EQ(log.n_tot(), 3u);  // excludes initial
}

TEST(CheckpointLog, ByOrdinal) {
  CheckpointLog log(1);
  log.append(make(0, 0, 0));
  log.append(make(0, 3, 9));
  EXPECT_EQ(log.by_ordinal(0, 1)->sn, 3u);
  EXPECT_EQ(log.by_ordinal(0, 2), nullptr);
}

TEST(CheckpointLog, FirstWithSnAtLeastHandlesJumps) {
  CheckpointLog log(1);
  log.append(make(0, 0, 0));
  log.append(make(0, 2, 4));  // jump over 1
  log.append(make(0, 5, 8));
  EXPECT_EQ(log.first_with_sn_at_least(0, 0)->sn, 0u);
  EXPECT_EQ(log.first_with_sn_at_least(0, 1)->sn, 2u);  // first greater
  EXPECT_EQ(log.first_with_sn_at_least(0, 2)->sn, 2u);
  EXPECT_EQ(log.first_with_sn_at_least(0, 3)->sn, 5u);
  EXPECT_EQ(log.first_with_sn_at_least(0, 6), nullptr);
}

TEST(CheckpointLog, LastWithSnFindsReplacements) {
  CheckpointLog log(1);
  log.append(make(0, 0, 0));
  log.append(make(0, 0, 3));  // QBC-style replacement
  log.append(make(0, 0, 7));
  log.append(make(0, 1, 9));
  EXPECT_EQ(log.last_with_sn(0, 0)->event_pos, 7u);
  EXPECT_EQ(log.last_with_sn(0, 1)->event_pos, 9u);
  EXPECT_EQ(log.last_with_sn(0, 2), nullptr);
}

TEST(CheckpointLog, LastAtOrBeforePos) {
  CheckpointLog log(1);
  log.append(make(0, 0, 0));
  log.append(make(0, 1, 10));
  log.append(make(0, 2, 20));
  EXPECT_EQ(log.last_at_or_before_pos(0, 0)->sn, 0u);
  EXPECT_EQ(log.last_at_or_before_pos(0, 9)->sn, 0u);
  EXPECT_EQ(log.last_at_or_before_pos(0, 10)->sn, 1u);
  EXPECT_EQ(log.last_at_or_before_pos(0, 100)->sn, 2u);
}

TEST(CheckpointLog, MaxSnPerHostAndGlobal) {
  CheckpointLog log(3);
  log.append(make(0, 4, 1));
  log.append(make(1, 7, 1));
  EXPECT_EQ(log.max_sn(0), 4u);
  EXPECT_EQ(log.max_sn(1), 7u);
  EXPECT_EQ(log.max_sn(2), 0u);
  EXPECT_EQ(log.max_sn(), 7u);
}

TEST(CheckpointLog, PromoteSnRelabelsLast) {
  CheckpointLog log(1);
  log.append(make(0, 1, 5));
  log.promote_sn(0, 4);
  EXPECT_EQ(log.of(0).back().sn, 4u);
  EXPECT_EQ(log.last_with_sn(0, 4)->event_pos, 5u);
  EXPECT_EQ(log.first_with_sn_at_least(0, 2)->sn, 4u);
}

}  // namespace
}  // namespace mobichk::core
