#include "core/harness.hpp"

#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "core/protocols/bcs.hpp"
#include "core/protocols/qbc.hpp"
#include "core/protocols/tp.hpp"
#include "des/simulator.hpp"
#include "net/network.hpp"

namespace mobichk::core {
namespace {

class HarnessTest : public ::testing::Test {
 protected:
  HarnessTest() : net_(sim_, config(), 1), harness_(net_) {}

  static net::NetworkConfig config() {
    net::NetworkConfig cfg;
    cfg.n_hosts = 3;
    cfg.n_mss = 2;
    return cfg;
  }

  des::Simulator sim_;
  net::Network net_;
  ProtocolHarness harness_;
};

TEST_F(HarnessTest, RejectsNullProtocol) {
  EXPECT_THROW(harness_.add_protocol(nullptr), std::invalid_argument);
}

TEST_F(HarnessTest, SlotZeroPiggybackRidesTheWire) {
  harness_.add_protocol(std::make_unique<TpProtocol>(TpEncoding::kDense));
  harness_.add_protocol(std::make_unique<BcsProtocol>());
  net_.start({0, 0, 1});
  net_.send_app_message(0, 1, 8);
  sim_.run();
  // TP's two vectors are on the wire; BCS's integer is only accounted.
  EXPECT_EQ(net_.stats().piggyback_bytes, 6 * sizeof(u32));
  EXPECT_EQ(net_.stats().piggyback_dense_bytes, 6 * sizeof(u32));
  EXPECT_EQ(harness_.piggyback_bytes(0), 6 * sizeof(u32));
  EXPECT_EQ(harness_.piggyback_bytes(1), sizeof(u64));
}

TEST_F(HarnessTest, SparseTpEncodedBytesStayBelowDense) {
  harness_.add_protocol(std::make_unique<TpProtocol>());  // sparse default
  net_.start({0, 0, 1});
  net_.send_app_message(0, 1, 8);
  sim_.run();
  // One delta entry (the sender's own) versus two 3-entry vectors.
  EXPECT_LT(net_.stats().piggyback_bytes, net_.stats().piggyback_dense_bytes);
  EXPECT_EQ(net_.stats().piggyback_dense_bytes, 6 * sizeof(u32));
  EXPECT_EQ(harness_.piggyback_dense_bytes(0), 6 * sizeof(u32));
  EXPECT_EQ(harness_.piggyback_bytes(0), net_.stats().piggyback_bytes);
}

TEST_F(HarnessTest, EachProtocolSeesItsOwnPiggyback) {
  const usize bcs = harness_.add_protocol(std::make_unique<BcsProtocol>());
  const usize qbc = harness_.add_protocol(std::make_unique<QbcProtocol>());
  net_.start({0, 0, 1});
  // Drive BCS's sn of host 0 above QBC's by a basic checkpoint: both
  // increment... instead force divergence: 2 switches make BCS sn=2 while
  // QBC replaces (sn stays 0).
  net_.switch_cell(0, 1);
  net_.switch_cell(0, 0);
  auto& bcs_p = static_cast<BcsProtocol&>(harness_.protocol(bcs));
  auto& qbc_p = static_cast<QbcProtocol&>(harness_.protocol(qbc));
  ASSERT_EQ(bcs_p.sequence_number(0), 2u);
  ASSERT_EQ(qbc_p.sequence_number(0), 0u);
  // A message 0 -> 1 must force a BCS checkpoint at 1 (sn 2 > 0) but NOT
  // a QBC one (sn 0 == 0) — only possible if each saw its own piggyback.
  net_.send_app_message(0, 1, 8);
  sim_.run();
  net_.consume_one(1);
  EXPECT_EQ(harness_.log(bcs).forced(), 1u);
  EXPECT_EQ(harness_.log(qbc).forced(), 0u);
}

TEST_F(HarnessTest, MessageLogRecordsPositions) {
  harness_.add_protocol(std::make_unique<BcsProtocol>());
  net_.start({0, 0, 1});
  net_.internal_events(0, 4);
  net_.send_app_message(0, 1, 8);  // send pos = 5
  sim_.run();
  net_.internal_event(1);
  net_.consume_one(1);  // recv pos = 2
  const auto& deliveries = harness_.message_log().deliveries();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].src, 0u);
  EXPECT_EQ(deliveries[0].dst, 1u);
  EXPECT_EQ(deliveries[0].send_pos, 5u);
  EXPECT_EQ(deliveries[0].recv_pos, 2u);
  EXPECT_EQ(harness_.message_log().sends_recorded(), 1u);
}

TEST_F(HarnessTest, ForcedCheckpointExcludesTriggeringReceive) {
  harness_.add_protocol(std::make_unique<BcsProtocol>());
  net_.start({0, 0, 1});
  net_.switch_cell(0, 1);          // sn_0 = 1
  net_.send_app_message(0, 1, 8);  // sn 1 -> forces at host 1
  sim_.run();
  net_.consume_one(1);
  const CheckpointRecord& forced = harness_.log(0).of(1).back();
  const auto& d = harness_.message_log().deliveries().at(0);
  // The checkpoint's cut position must be strictly before the receive.
  EXPECT_LT(forced.event_pos, d.recv_pos);
}

TEST_F(HarnessTest, CurrentPositionsMatchHosts) {
  harness_.add_protocol(std::make_unique<BcsProtocol>());
  net_.start({0, 0, 1});
  net_.internal_events(0, 3);
  net_.internal_events(2, 7);
  const auto pos = harness_.current_positions();
  EXPECT_EQ(pos, (std::vector<u64>{3, 0, 7}));
}

TEST_F(HarnessTest, UndeliveredMessagesAreTracked) {
  harness_.add_protocol(std::make_unique<BcsProtocol>());
  net_.start({0, 0, 1});
  net_.disconnect(1);
  net_.send_app_message(0, 1, 8);  // will be buffered, never consumed
  sim_.run();
  EXPECT_EQ(harness_.message_log().undelivered(), 1u);
}

TEST(HarnessDuplicates, RetainedPiggybacksServeDuplicateDeliveries) {
  des::Simulator sim;
  net::NetworkConfig cfg;
  cfg.n_hosts = 2;
  cfg.n_mss = 1;
  cfg.duplicate_prob = 0.6;
  cfg.transport_dedup = false;
  net::Network net(sim, cfg, 5);
  ProtocolHarness harness(net);
  harness.retain_piggybacks(true);
  harness.add_protocol(std::make_unique<BcsProtocol>());
  net.start({0, 0});
  for (int i = 0; i < 100; ++i) net.send_app_message(0, 1, 4);
  sim.run();
  ASSERT_GT(net.stats().duplicates_generated, 10u);
  u64 consumed = 0;
  while (net.consume_one(1)) ++consumed;
  EXPECT_EQ(consumed, 100u + net.stats().duplicates_generated);
  EXPECT_EQ(harness.message_log().deliveries().size(), consumed);
}

TEST(HarnessFactory, AllProtocolsInstantiateAndRun) {
  for (const auto kind : all_protocol_kinds()) {
    des::Simulator sim;
    net::NetworkConfig cfg;
    cfg.n_hosts = 3;
    cfg.n_mss = 2;
    net::Network net(sim, cfg, 2);
    ProtocolHarness harness(net);
    harness.add_protocol(make_protocol(kind));
    net.start({0, 1, 0});
    net.send_app_message(0, 1, 8);
    net.switch_cell(2, 1);
    sim.run_until(50.0);
    net.consume_one(1);
    EXPECT_GE(harness.log(0).total(), 4u) << protocol_kind_name(kind);
    EXPECT_STREQ(harness.protocol(0).name(), protocol_kind_name(kind));
  }
}

TEST(HarnessFactory, NameRoundTrip) {
  for (const auto kind : all_protocol_kinds()) {
    EXPECT_EQ(protocol_kind_from_name(protocol_kind_name(kind)), kind);
  }
  EXPECT_EQ(protocol_kind_from_name("qbc"), ProtocolKind::kQbc);
  EXPECT_THROW(protocol_kind_from_name("nope"), std::invalid_argument);
}

TEST(HarnessFactory, RecoveryRules) {
  EXPECT_EQ(recovery_rule_for(ProtocolKind::kQbc), IndexLineRule::kLastEqual);
  EXPECT_EQ(recovery_rule_for(ProtocolKind::kBcs), IndexLineRule::kFirstAtLeast);
  EXPECT_EQ(recovery_rule_for(ProtocolKind::kTp), IndexLineRule::kFirstAtLeast);
}

TEST(HarnessFactory, PaperProtocolOrder) {
  const auto kinds = paper_protocol_kinds();
  ASSERT_EQ(kinds.size(), 3u);
  EXPECT_EQ(kinds[0], ProtocolKind::kTp);
  EXPECT_EQ(kinds[1], ProtocolKind::kBcs);
  EXPECT_EQ(kinds[2], ProtocolKind::kQbc);
}

}  // namespace
}  // namespace mobichk::core
