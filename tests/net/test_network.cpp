#include "net/network.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "des/simulator.hpp"

namespace mobichk::net {
namespace {

/// Handler that records upcalls for inspection.
class RecordingHandler : public HostEventHandler {
 public:
  void on_host_init(MobileHost&) override { ++inits; }
  void on_send(MobileHost&, AppMessage& msg) override {
    ++sends;
    msg.pb.sn = 777;  // visible marker
    msg.pb.has_sn = true;
  }
  void on_receive(MobileHost&, const AppMessage& msg) override {
    ++receives;
    last_sn = msg.pb.sn;
    last_msg_id = msg.id;
  }
  void on_cell_switch(MobileHost&, MssId from, MssId to) override {
    ++switches;
    last_from = from;
    last_to = to;
  }
  void on_disconnect(MobileHost& host) override {
    ++disconnects;
    disconnect_was_connected = host.connected();
  }
  void on_reconnect(MobileHost&, MssId) override { ++reconnects; }

  int inits = 0, sends = 0, receives = 0, switches = 0, disconnects = 0, reconnects = 0;
  u64 last_sn = 0, last_msg_id = 0;
  MssId last_from = kNoMss, last_to = kNoMss;
  bool disconnect_was_connected = false;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(sim_, make_config(), 1) { net_.set_handler(&handler_); }

  static NetworkConfig make_config() {
    NetworkConfig cfg;
    cfg.n_hosts = 4;
    cfg.n_mss = 3;
    return cfg;
  }

  des::Simulator sim_;
  RecordingHandler handler_;
  Network net_;
};

TEST_F(NetworkTest, StartPlacesHostsAndFiresInit) {
  net_.start({0, 1, 2, 0});
  EXPECT_EQ(handler_.inits, 4);
  EXPECT_EQ(net_.host(0).mss(), 0u);
  EXPECT_EQ(net_.host(1).mss(), 1u);
  EXPECT_EQ(net_.host(2).mss(), 2u);
  EXPECT_EQ(net_.host(3).mss(), 0u);
  for (HostId h = 0; h < 4; ++h) EXPECT_TRUE(net_.host(h).connected());
}

TEST_F(NetworkTest, StartRejectsDoubleStartAndBadPlacement) {
  EXPECT_THROW(net_.start({0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(net_.start({0, 1, 2, 99}), std::invalid_argument);
  net_.start();
  EXPECT_THROW(net_.start(), std::logic_error);
}

TEST_F(NetworkTest, StartRequiresHandler) {
  des::Simulator sim;
  Network net(sim, make_config(), 1);
  EXPECT_THROW(net.start(), std::logic_error);
}

TEST_F(NetworkTest, SameCellDeliveryLatency) {
  net_.start({0, 0, 1, 2});
  net_.send_app_message(0, 1, 100);
  sim_.run();
  // wireless up + wireless down = 0.02; no wired hop.
  EXPECT_DOUBLE_EQ(sim_.now(), 0.02);
  EXPECT_EQ(net_.host(1).mailbox_size(), 1u);
  EXPECT_EQ(net_.stats().wired_hops, 0u);
  EXPECT_EQ(net_.stats().wireless_messages, 2u);
}

TEST_F(NetworkTest, CrossCellDeliveryLatency) {
  net_.start({0, 1, 2, 0});
  net_.send_app_message(0, 1, 100);
  sim_.run();
  // wireless + wired + wireless.
  EXPECT_DOUBLE_EQ(sim_.now(), 0.03);
  EXPECT_EQ(net_.stats().wired_hops, 1u);
}

TEST_F(NetworkTest, LocationSearchHopsAddLatency) {
  des::Simulator sim;
  NetworkConfig cfg = make_config();
  cfg.location_search_hops = 2;
  Network net(sim, cfg, 1);
  RecordingHandler handler;
  net.set_handler(&handler);
  net.start({0, 1, 0, 0});
  net.send_app_message(0, 1, 10);
  sim.run();
  // up 0.01 + search 0.02 + wired 0.01 + down 0.01.
  EXPECT_DOUBLE_EQ(sim.now(), 0.05);
  EXPECT_EQ(net.stats().wired_hops, 3u);
}

TEST_F(NetworkTest, HandlerFillsPiggybackOnWire) {
  net_.start({0, 0, 0, 0});
  net_.send_app_message(0, 1, 100);
  sim_.run();
  net_.consume_one(1);
  EXPECT_EQ(handler_.last_sn, 777u);
  EXPECT_EQ(net_.stats().piggyback_bytes, sizeof(u64));
}

TEST_F(NetworkTest, ConsumeIsFifoAndCountsPositions) {
  net_.start({0, 0, 0, 0});
  net_.send_app_message(0, 1, 1);
  net_.send_app_message(2, 1, 1);
  sim_.run();
  ASSERT_EQ(net_.host(1).mailbox_size(), 2u);
  EXPECT_TRUE(net_.consume_one(1));
  EXPECT_EQ(handler_.last_msg_id, 1u);  // first sent, first consumed
  EXPECT_TRUE(net_.consume_one(1));
  EXPECT_EQ(handler_.last_msg_id, 2u);
  EXPECT_FALSE(net_.consume_one(1));
  EXPECT_EQ(net_.stats().app_received, 2u);
}

TEST_F(NetworkTest, EventPositionsAdvancePerEvent) {
  net_.start({0, 0, 0, 0});
  EXPECT_EQ(net_.host(0).event_pos(), 0u);
  net_.internal_event(0);
  EXPECT_EQ(net_.host(0).event_pos(), 1u);
  net_.internal_events(0, 5);
  EXPECT_EQ(net_.host(0).event_pos(), 6u);
  net_.send_app_message(0, 1, 1);
  EXPECT_EQ(net_.host(0).event_pos(), 7u);
  sim_.run();
  net_.consume_one(1);
  EXPECT_EQ(net_.host(1).event_pos(), 1u);
}

TEST_F(NetworkTest, SwitchCellUpdatesAttachmentAndCosts) {
  net_.start({0, 0, 0, 0});
  net_.switch_cell(0, 2);
  EXPECT_EQ(net_.host(0).mss(), 2u);
  EXPECT_EQ(handler_.switches, 1);
  EXPECT_EQ(handler_.last_from, 0u);
  EXPECT_EQ(handler_.last_to, 2u);
  EXPECT_EQ(net_.stats().handoffs, 1u);
  EXPECT_EQ(net_.stats().control_messages, 2u);
  EXPECT_EQ(net_.stats().wireless_messages, 2u);
}

TEST_F(NetworkTest, InFlightMessageChasesMovingHost) {
  net_.start({0, 1, 2, 0});
  net_.send_app_message(0, 1, 100);
  // Let routing target MSS 1, then move the destination while the
  // message crosses the wired network (uplink done at 0.01, wired leg
  // until 0.02): the old MSS must chase it to MSS 2.
  sim_.run_until(0.015);
  net_.switch_cell(1, 2);
  sim_.run();
  EXPECT_EQ(net_.host(1).mailbox_size(), 1u);
  EXPECT_EQ(net_.stats().chase_forwards, 1u);
  EXPECT_EQ(net_.stats().app_delivered, 1u);
}

TEST_F(NetworkTest, NormalRoutingIsNotCountedAsChase) {
  net_.start({0, 1, 2, 0});
  net_.send_app_message(0, 1, 100);  // plain cross-cell delivery
  sim_.run();
  EXPECT_EQ(net_.stats().chase_forwards, 0u);
  EXPECT_EQ(net_.stats().wired_hops, 1u);
}

TEST_F(NetworkTest, DisconnectBuffersAtLastMss) {
  net_.start({0, 1, 2, 0});
  net_.disconnect(1);
  EXPECT_TRUE(handler_.disconnect_was_connected);  // checkpoint taken while attached
  EXPECT_FALSE(net_.host(1).connected());
  net_.send_app_message(0, 1, 100);
  sim_.run();
  EXPECT_EQ(net_.host(1).mailbox_size(), 0u);
  EXPECT_EQ(net_.mss(1).buffered_count(1), 1u);
  EXPECT_EQ(net_.stats().app_delivered, 0u);
}

TEST_F(NetworkTest, ReconnectFlushesBufferToNewCell) {
  net_.start({0, 1, 2, 0});
  net_.disconnect(1);
  net_.send_app_message(0, 1, 100);
  net_.send_app_message(3, 1, 100);
  sim_.run();
  EXPECT_EQ(net_.mss(1).buffered_count(1), 2u);
  net_.reconnect(1, 2);
  EXPECT_TRUE(net_.host(1).connected());
  EXPECT_EQ(net_.host(1).mss(), 2u);
  EXPECT_EQ(handler_.reconnects, 1);
  sim_.run();
  EXPECT_EQ(net_.host(1).mailbox_size(), 2u);
  EXPECT_EQ(net_.stats().buffered_deliveries, 2u);
  EXPECT_EQ(net_.mss(1).buffered_count(1), 0u);
}

TEST_F(NetworkTest, DisconnectDuringWirelessLegBuffers) {
  net_.start({0, 0, 0, 0});
  net_.send_app_message(0, 1, 100);
  sim_.run_until(0.015);  // after uplink, during downlink
  net_.disconnect(1);
  sim_.run();
  EXPECT_EQ(net_.host(1).mailbox_size(), 0u);
  EXPECT_EQ(net_.mss(0).buffered_count(1), 1u);
  net_.reconnect(1, 0);
  sim_.run();
  EXPECT_EQ(net_.host(1).mailbox_size(), 1u);
}

TEST_F(NetworkTest, MessageToDisconnectedHostForwardsToLastMss) {
  net_.start({0, 1, 2, 0});
  net_.disconnect(1);  // last MSS = 1
  // Sender at MSS 2: message should travel to MSS 1 and be buffered there.
  net_.send_app_message(2, 1, 10);
  sim_.run();
  EXPECT_EQ(net_.mss(1).buffered_count(1), 1u);
}

TEST_F(NetworkTest, StatsCountControlMessages) {
  net_.start({0, 1, 2, 0});
  net_.switch_cell(0, 1);   // 2 control messages
  net_.disconnect(0);       // 1
  net_.reconnect(0, 2);     // 1
  EXPECT_EQ(net_.stats().control_messages, 4u);
  EXPECT_EQ(net_.stats().handoffs, 1u);
  EXPECT_EQ(net_.stats().disconnects, 1u);
  EXPECT_EQ(net_.stats().reconnects, 1u);
}

TEST(NetworkConfigTest, Validation) {
  NetworkConfig cfg;
  cfg.n_hosts = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = NetworkConfig{};
  cfg.n_mss = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = NetworkConfig{};
  cfg.wireless_latency = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = NetworkConfig{};
  cfg.duplicate_prob = 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = NetworkConfig{};
  EXPECT_NO_THROW(cfg.validate());
}

class DuplicationTest : public ::testing::Test {
 protected:
  static NetworkConfig make_config(bool dedup) {
    NetworkConfig cfg;
    cfg.n_hosts = 2;
    cfg.n_mss = 1;
    cfg.duplicate_prob = 0.5;
    cfg.transport_dedup = dedup;
    return cfg;
  }
};

TEST_F(DuplicationTest, DedupSuppressesDuplicates) {
  des::Simulator sim;
  Network net(sim, make_config(true), 3);
  RecordingHandler handler;
  net.set_handler(&handler);
  net.start({0, 0});
  for (int i = 0; i < 200; ++i) net.send_app_message(0, 1, 1);
  sim.run();
  EXPECT_GT(net.stats().duplicates_generated, 20u);
  EXPECT_EQ(net.stats().duplicates_suppressed, net.stats().duplicates_generated);
  EXPECT_EQ(net.stats().app_delivered, 200u);
  EXPECT_EQ(net.host(1).mailbox_size(), 200u);
}

TEST_F(DuplicationTest, WithoutDedupAppSeesDuplicates) {
  des::Simulator sim;
  Network net(sim, make_config(false), 3);
  RecordingHandler handler;
  net.set_handler(&handler);
  net.start({0, 0});
  for (int i = 0; i < 200; ++i) net.send_app_message(0, 1, 1);
  sim.run();
  EXPECT_GT(net.stats().duplicates_generated, 20u);
  EXPECT_EQ(net.stats().duplicates_suppressed, 0u);
  EXPECT_EQ(net.stats().app_delivered, 200u + net.stats().duplicates_generated);
}

}  // namespace
}  // namespace mobichk::net
