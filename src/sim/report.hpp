// Structured (JSON) serialization of experiment results, for dashboards,
// notebooks and regression tooling.
#pragma once

#include <iosfwd>

#include "sim/experiment.hpp"
#include "sim/json.hpp"
#include "sim/sweep.hpp"

namespace mobichk::sim {

/// Full run result: configuration echo, substrate stats, per-protocol
/// checkpoint/overhead numbers.
void write_json(std::ostream& os, const RunResult& result);

/// Figure sweep: the t_switch series with mean / CI / min / max /
/// replication cells, the precision echo and the sweep ledger.
void write_json(std::ostream& os, const FigureResult& result);

/// Sweep specification (title, points, protocols, precision fields and
/// the swept base-config parameters). Round-trips through
/// figure_spec_from_json.
void write_json(std::ostream& os, const FigureSpec& spec);

/// Experiment options (protocol set, storage/verification switches,
/// queue kind). Round-trips through experiment_options_from_json.
void write_json(std::ostream& os, const ExperimentOptions& opts);

/// Sweep cost ledger, standalone (the same object is embedded in the
/// FigureResult JSON under "ledger"). Round-trips through
/// sweep_ledger_from_json.
void write_json(std::ostream& os, const SweepLedger& ledger);

/// Inverse of write_json(FigureSpec): absent members keep their spec
/// defaults; malformed members throw std::invalid_argument.
FigureSpec figure_spec_from_json(const JsonValue& json);

/// Inverse of write_json(ExperimentOptions).
ExperimentOptions experiment_options_from_json(const JsonValue& json);

/// Writes the data-plane sub-object ("{...}") shared by ExperimentOptions
/// and ExperimentConfig documents. The object carries every knob except
/// `enabled` — presence of the object is the enable flag.
void write_data_plane_fields(JsonWriter& w, const storage::DataPlaneConfig& cfg);

/// Inverse of write_data_plane_fields: returns a config with
/// enabled = true and absent members at their defaults.
storage::DataPlaneConfig data_plane_config_from_json(const JsonValue& json);

/// Inverse of write_json(RunResult). Reconstructs everything the writer
/// emits: config echo, network stats (delivery latency collapses to its
/// mean — the writer only serializes the mean), per-protocol stats
/// (kind recovered from the name), counters, the exact u64 trace hash
/// and the metric snapshot. Fields the writer omits (wall_seconds, the
/// full invariants ledger) stay default. write → parse → write is
/// byte-identical.
RunResult run_result_from_json(const JsonValue& json);

/// Inverse of write_json(SweepLedger); also accepts the "ledger" object
/// inside a FigureResult document. events_per_second is derived, not
/// stored.
SweepLedger sweep_ledger_from_json(const JsonValue& json);

}  // namespace mobichk::sim
