// Host-time profiler tests: the zero-cost contract (profile-off runs
// reproduce the golden Figure 1 hash bit-identically and stay
// allocation-free on the hot path, for every queue kind and sharded or
// not), the reconciliation contract (profile-on dispatch counts agree
// with the kernel's event ledger and the trace hash does not move), the
// ProfScope overhead discipline, and the host-time Chrome-trace track's
// structure (including the committed golden_host_trace.json).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <map>
#include <new>
#include <sstream>
#include <string>
#include <utility>

#include "des/event.hpp"
#include "des/rng.hpp"
#include "mobichk.hpp"

namespace {

std::atomic<unsigned long long> g_allocs{0};

}  // namespace

// Count every heap allocation in the process; the zero-cost tests
// difference this counter around their measured regions. GCC flags the
// malloc-backed replacement pair as mismatched; the pairing is intended.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace mobichk {
namespace {

unsigned long long allocs_now() { return g_allocs.load(std::memory_order_relaxed); }

/// The Figure 1 golden determinism anchor (same constant as
/// test_sharded.cpp, test_audit.cpp and kernel_smoke).
constexpr u64 kGoldenFig1Hash = 0xd165928ffbf08bb4ull;

sim::SimConfig golden_config() {
  sim::SimConfig cfg;
  cfg.sim_length = 50'000.0;
  cfg.t_switch = 1'000.0;
  cfg.p_switch = 1.0;
  cfg.heterogeneity = 0.0;
  cfg.seed = 42;
  return cfg;
}

// ---------------------------------------------------------------------------
// Zero-cost contract: profile-off and profile-on both reproduce the
// golden hash — profiling must never perturb the simulation.
// ---------------------------------------------------------------------------

TEST(Prof, GoldenHashUnchangedProfiledOrNotEveryQueueKindAndShardCount) {
  for (const des::QueueKind queue : des::kAllQueueKinds) {
    for (const u32 shards : {1u, 4u}) {
      for (const bool profiled : {false, true}) {
        obs::Profiler profiler;
        sim::ExperimentOptions opts;
        opts.collect_trace_hash = true;
        opts.queue_kind = queue;
        opts.shards = shards;
        if (profiled) opts.profiler = &profiler;
        const sim::RunResult r = sim::run_experiment(golden_config(), opts);
        const std::string label = std::string(des::queue_kind_name(queue)) + " shards=" +
                                  std::to_string(shards) +
                                  (profiled ? " profiled" : " unprofiled");
        EXPECT_EQ(r.trace_hash, kGoldenFig1Hash) << label;
        EXPECT_TRUE(r.invariants_ok) << label;
        if (profiled) {
          // Reconciliation: each event fired exactly once, and the
          // profiler bucketed each exactly once.
          EXPECT_EQ(profiler.events_total(), r.events_executed) << label;
          u64 dispatch_total = 0;
          for (usize k = 0; k < obs::ProfLane::kMaxEventKinds; ++k) {
            dispatch_total += profiler.dispatch_count(k);
          }
          EXPECT_EQ(dispatch_total, r.events_executed) << label;
          // prof.* samples landed in the result's metric snapshot.
          bool have_prof_metric = false;
          for (const obs::MetricSample& m : r.metrics) {
            if (m.name.rfind("prof.", 0) == 0) have_prof_metric = true;
          }
          EXPECT_TRUE(have_prof_metric) << label;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Allocation contract on the kernel hot path: a warmed-up typed-event
// churn loop allocates nothing per event, profile-off AND profile-on,
// on every queue kind. (The ProfLane accumulators are plain counters;
// only the sharded executor's slice journal may allocate, and it is not
// on this path.)
// ---------------------------------------------------------------------------

struct ChurnTarget final : des::EventTarget {
  des::Simulator* sim = nullptr;
  des::RngStream* rng = nullptr;
  u64 fired = 0;
  u64 stop_at = 0;

  void on_event(const des::EventPayload& p) override {
    ++fired;
    if (fired < stop_at) sim->schedule_after(rng->uniform01(), p);
  }
};

TEST(Prof, SteadyStateChurnAllocationFreeOffAndOnEveryQueueKind) {
  constexpr u64 kWarmup = 20'000;
  constexpr u64 kMeasured = 50'000;
  for (const des::QueueKind queue : des::kAllQueueKinds) {
    for (const bool profiled : {false, true}) {
      des::Simulator sim(queue);
      obs::ProfLane lane;
      if (profiled) sim.set_prof(&lane);
      des::RngStream rng(7, "prof-churn");
      ChurnTarget target;
      target.sim = &sim;
      target.rng = &rng;
      target.stop_at = kWarmup;
      des::EventPayload tick;
      tick.target = &target;
      tick.kind = des::EventKind::kWorkloadOp;
      for (int i = 0; i < 16; ++i) sim.schedule_after(rng.uniform01(), tick);
      sim.run();  // warmup: queue storage grown, calendar tuned
      // With 16 events in flight the stop check overshoots by up to 15.
      ASSERT_GE(target.fired, kWarmup);
      ASSERT_LT(target.fired, kWarmup + 16);

      target.stop_at = target.fired + kMeasured;
      for (int i = 0; i < 16; ++i) sim.schedule_after(rng.uniform01(), tick);
      const unsigned long long before = allocs_now();
      sim.run();
      const unsigned long long allocs = allocs_now() - before;
      const std::string label = std::string(des::queue_kind_name(queue)) +
                                (profiled ? " profiled" : " unprofiled");
      // The calendar queue re-tunes its bucket array a couple dozen times
      // over this horizon (identically with the profiler on and off — it
      // is driven by occupancy, not the clock); everything else must be
      // exactly zero. The bound is a constant, not a rate: 50k events may
      // not buy 50k allocations.
      EXPECT_LE(allocs, 64u) << label << ": " << allocs << " allocations over " << kMeasured
                             << " steady-state events";
      if (profiled) {
        EXPECT_EQ(lane.events, target.fired) << label;
        EXPECT_GT(lane.dispatch[static_cast<usize>(des::EventKind::kWorkloadOp)].count, 0u)
            << label;
      }
    }
  }
}

TEST(Prof, ShardedSteadyStateMarginalAllocationRateBoundedProfileOff) {
  // Experiment-level allocation gate for the sharded engine with the
  // profiler explicitly off: the marginal allocations per event between
  // two horizons (startup cost cancels) must stay at the pre-profiler
  // level. A profile-off regression that puts clock reads or journal
  // pushes on the hot path shows up here as a rate jump.
  unsigned long long allocs[2];
  u64 events[2];
  const f64 lengths[2] = {10'000.0, 50'000.0};
  for (int i = 0; i < 2; ++i) {
    sim::SimConfig cfg = golden_config();
    cfg.sim_length = lengths[i];
    sim::ExperimentOptions opts;
    opts.shards = 4;
    sim::Experiment exp(cfg, opts);
    const unsigned long long before = allocs_now();
    exp.run();
    allocs[i] = allocs_now() - before;
    events[i] = exp.result().events_executed;
    ASSERT_TRUE(exp.result().invariants_ok);
  }
  ASSERT_GT(events[1], events[0] + 10'000u);
  const f64 marginal =
      static_cast<f64>(allocs[1] - allocs[0]) / static_cast<f64>(events[1] - events[0]);
  // The sharded engine's per-window machinery (merge journals, id maps,
  // cross-shard parking) runs at ~4.6 allocations/event on this config;
  // the headroom to 7 absorbs platform noise while still failing loudly
  // on an O(n)-per-event regression or profile-off journal pushes.
  EXPECT_LT(marginal, 7.0) << allocs[1] - allocs[0] << " allocations over " << events[1] - events[0]
                           << " steady-state events";
}

// ---------------------------------------------------------------------------
// ProfScope discipline
// ---------------------------------------------------------------------------

TEST(Prof, NullProfScopeNeverReadsTheClockAndAddsNothing) {
  // A null-accumulator scope must be pure branch: no allocation, and
  // cheap enough that 10^6 of them are unmeasurable next to a clock
  // read per iteration. The bound is deliberately generous (CI noise);
  // what it catches is an unconditional prof_now_ns() sneaking in.
  constexpr int kIters = 1'000'000;
  const unsigned long long before_allocs = allocs_now();
  const u64 t0 = obs::prof_now_ns();
  for (int i = 0; i < kIters; ++i) {
    obs::ProfScope scope(nullptr);
  }
  const u64 null_ns = obs::prof_now_ns() - t0;
  EXPECT_EQ(allocs_now() - before_allocs, 0u);

  obs::PhaseAccum acc;
  const u64 t1 = obs::prof_now_ns();
  for (int i = 0; i < kIters; ++i) {
    obs::ProfScope scope(&acc);
  }
  const u64 timed_ns = obs::prof_now_ns() - t1;
  EXPECT_EQ(acc.count, static_cast<u64>(kIters));
  EXPECT_GT(timed_ns, 0u);
  // Null scopes must cost well under a clock read each. Two clock reads
  // per timed scope vs zero per null scope: 10x headroom on the ratio.
  EXPECT_LT(null_ns, timed_ns * 10) << "null ProfScope suspiciously expensive: " << null_ns
                                    << " ns vs timed " << timed_ns << " ns";
}

TEST(Prof, SnapshotCatalogShapeAndImbalance) {
  obs::Profiler prof;
  prof.ensure_lanes(3);  // coordinator + 2 shards
  prof.lane_ref(1).window.ns = 2'000'000'000ull;
  prof.lane_ref(1).window.count = 10;
  prof.lane_ref(2).window.ns = 1'000'000'000ull;
  prof.lane_ref(2).window.count = 10;
  prof.lane_ref(1).events = 100;
  prof.lane_ref(2).events = 50;
  // max busy = 2s, mean = 1.5s.
  EXPECT_DOUBLE_EQ(prof.imbalance_ratio(), 2.0 / 1.5);
  const std::vector<obs::MetricSample> samples = prof.snapshot();
  auto find = [&](const std::string& name) -> const obs::MetricSample* {
    for (const obs::MetricSample& m : samples) {
      if (m.name == name) return &m;
    }
    return nullptr;
  };
  ASSERT_NE(find("prof.shard.0.busy_seconds"), nullptr);
  EXPECT_DOUBLE_EQ(find("prof.shard.0.busy_seconds")->value, 2.0);
  ASSERT_NE(find("prof.shard.1.busy_seconds"), nullptr);
  ASSERT_NE(find("prof.imbalance_ratio"), nullptr);
  ASSERT_NE(find("prof.events"), nullptr);
  EXPECT_DOUBLE_EQ(find("prof.events")->value, 150.0);
  ASSERT_NE(find("prof.dispatch.workload_op.seconds"), nullptr);
  ASSERT_NE(find("prof.queue.push.count"), nullptr);
}

// ---------------------------------------------------------------------------
// Host-time trace structure
// ---------------------------------------------------------------------------

/// Structural validation of one trace document: parses as JSON, host-time
/// rows live on their own pid, every B has a matching E per (pid, tid)
/// with non-decreasing timestamps, and no flow/instant events share the
/// host pid. Mirrors tools/lint_trace.py's host-track checks.
void check_host_trace_structure(const std::string& text, bool expect_host_rows) {
  const sim::JsonValue doc = sim::json_parse(text);
  const sim::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  constexpr i64 kHostPid = 9999;
  bool saw_host_row = false;
  std::map<std::pair<i64, i64>, int> depth;
  std::map<std::pair<i64, i64>, f64> last_ts;
  for (const sim::JsonValue& e : events->as_array()) {
    const std::string ph = e.at("ph").as_string();
    const i64 pid = static_cast<i64>(e.at("pid").as_f64());
    if (ph == "M") continue;  // metadata carries no ts
    const i64 tid = static_cast<i64>(e.at("tid").as_f64());
    const auto key = std::make_pair(pid, tid);
    const f64 ts = e.at("ts").as_f64();
    if (pid == kHostPid) {
      saw_host_row = true;
      EXPECT_TRUE(ph == "B" || ph == "E" || ph == "X")
          << "host pid carries only slice events, got ph=" << ph;
      EXPECT_GE(ts, 0.0);
      if (ph == "B" || ph == "X") {
        auto it = last_ts.find(key);
        if (it != last_ts.end()) {
          EXPECT_GE(ts, it->second) << "host row (tid " << tid << ") timestamps regressed";
        }
        last_ts[key] = ts;
      }
      if (ph == "B") ++depth[key];
      if (ph == "E") {
        EXPECT_GT(depth[key], 0) << "E without B on host tid " << tid;
        --depth[key];
      }
    } else {
      EXPECT_NE(ph, "M");
    }
  }
  for (const auto& [key, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed B slice on pid " << key.first << " tid " << key.second;
  }
  EXPECT_EQ(saw_host_row, expect_host_rows);
}

TEST(Prof, HostTraceOfShardedRunIsStructurallySound) {
  obs::Profiler profiler;
  sim::SimConfig cfg = golden_config();
  cfg.sim_length = 5'000.0;
  sim::ExperimentOptions opts;
  opts.shards = 4;
  opts.profiler = &profiler;
  (void)sim::run_experiment(cfg, opts);
  std::ostringstream os;
  obs::write_host_trace(os, profiler);
  check_host_trace_structure(os.str(), true);
  // The lanes journaled real windows: the document mentions each shard.
  EXPECT_NE(os.str().find("shard 0"), std::string::npos);
  EXPECT_NE(os.str().find("shard 3"), std::string::npos);
  EXPECT_NE(os.str().find("coordinator"), std::string::npos);
}

TEST(Prof, CombinedTraceCarriesBothSimAndHostTracks) {
  sim::SimConfig cfg;
  cfg.network.n_hosts = 4;
  cfg.network.n_mss = 2;
  cfg.sim_length = 300.0;
  cfg.t_switch = 50.0;
  cfg.p_switch = 0.8;
  cfg.seed = 3;
  obs::RunObserver observer;
  obs::Profiler profiler;
  sim::ExperimentOptions opts;
  opts.observer = &observer;
  opts.profiler = &profiler;
  (void)sim::run_experiment(cfg, opts);

  // Without the profiler argument the output must be byte-identical to
  // the legacy two-argument exporter (old goldens stay valid).
  std::ostringstream plain, with_null, with_prof;
  obs::write_chrome_trace(plain, observer);
  obs::write_chrome_trace(with_null, observer, nullptr);
  EXPECT_EQ(plain.str(), with_null.str());

  obs::write_chrome_trace(with_prof, observer, &profiler);
  EXPECT_NE(with_prof.str(), plain.str());
  check_host_trace_structure(with_prof.str(), true);
  EXPECT_NE(with_prof.str().find("\"prof.dispatch.workload_op.count\""), std::string::npos);
}

#ifndef MOBICHK_TEST_DATA_DIR
#error "MOBICHK_TEST_DATA_DIR must point at tests/obs"
#endif

TEST(Prof, CommittedGoldenHostTraceIsStructurallySound) {
  // Host times are wall-clock, so the golden cannot be byte-compared the
  // way golden_chrome_trace.json is; instead the committed file (also
  // linted by tools/lint_trace.py in CI) must keep passing the
  // structural checks. Regenerated here if missing.
  const std::string path = std::string(MOBICHK_TEST_DATA_DIR) + "/golden_host_trace.json";
  std::ifstream file(path);
  if (!file) {
    obs::Profiler profiler;
    sim::SimConfig cfg = golden_config();
    cfg.sim_length = 20.0;  // short run: the committed file stays small
    cfg.t_switch = 5.0;
    sim::ExperimentOptions opts;
    opts.shards = 4;
    opts.profiler = &profiler;
    (void)sim::run_experiment(cfg, opts);
    obs::write_host_trace(path, profiler);
    FAIL() << "golden file was missing; regenerated " << path << " — inspect and commit it";
  }
  std::ostringstream text;
  text << file.rdbuf();
  check_host_trace_structure(text.str(), true);
}

}  // namespace
}  // namespace mobichk
