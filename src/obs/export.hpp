// Exporters for one observed run:
//  * write_metrics_jsonl — newline-delimited JSON: one "event" line per
//    timeline entry (time-ordered), then one "metric" line per registry
//    sample. Greppable, streamable, trivially diffable.
//  * write_chrome_trace — Chrome trace-event JSON (the chrome://tracing /
//    Perfetto "JSON Object Format"): per-host tracks, checkpoint instant
//    events with the triggering rule, mobility markers.
//
// The obs layer sits below sim/, so these implement their own minimal
// JSON emission (escaping + shortest-round-trip doubles) rather than
// reusing sim::JsonWriter.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/observer.hpp"

namespace mobichk::obs {

void write_metrics_jsonl(std::ostream& os, const RunObserver& run);
void write_chrome_trace(std::ostream& os, const RunObserver& run);

/// Convenience wrappers: write to `path`, returning false (with a
/// message on stderr) when the file cannot be opened.
bool write_metrics_jsonl(const std::string& path, const RunObserver& run);
bool write_chrome_trace(const std::string& path, const RunObserver& run);

}  // namespace mobichk::obs
