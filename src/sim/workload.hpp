// The application workload of paper §5.1: every active MH alternates
// internal events (exponential execution time, mean 1.0 tu) with
// communication operations — a send to a uniformly random peer with
// probability P_s, otherwise a receive that consumes the oldest delivered
// message.
#pragma once

#include <vector>

#include "core/checkpoint_log.hpp"
#include "des/distributions.hpp"
#include "des/sharded.hpp"
#include "des/event.hpp"
#include "des/rng.hpp"
#include "des/simulator.hpp"
#include "net/network.hpp"
#include "sim/config.hpp"

namespace mobichk::sim {

class WorkloadDriver final : public des::EventTarget {
 public:
  WorkloadDriver(des::Simulator& sim, net::Network& net, const SimConfig& cfg);

  /// Schedules the first operation of every host. Call after net.start().
  void start();

  /// Invalidates the host's pending operations (mobility calls this when
  /// the host disconnects).
  void pause(net::HostId host) { ++per_host_.at(host).epoch; }

  /// Restarts the host's operation loop (mobility calls this on reconnect).
  void resume(net::HostId host);

  /// Sizes the per-shard counter slices for a shard-parallel run.
  void enable_sharding(u32 n_shards) { slices_.resize(n_shards); }

  /// Communication operations executed (sends + receive attempts).
  u64 ops_executed() const noexcept { return sum(&CounterSlice::ops); }
  u64 sends() const noexcept { return sum(&CounterSlice::sends); }
  u64 receives() const noexcept { return sum(&CounterSlice::receives); }
  /// Receive operations that found an empty mailbox.
  u64 empty_receives() const noexcept { return sum(&CounterSlice::empty_receives); }
  /// Internal events executed between communications.
  u64 internal_events() const noexcept { return sum(&CounterSlice::internal_events); }

  /// Enables the checkpoint-latency extension: after each operation the
  /// host is stalled cfg.ckpt_latency per checkpoint newly recorded for it
  /// in any probed log (ABL1). Pass the logs of every protocol under test;
  /// probing only slot 0 made multi-protocol stalls depend on slot order.
  void set_latency_probes(std::vector<const core::CheckpointLog*> logs);

  /// Single-protocol convenience overload.
  void set_latency_probe(const core::CheckpointLog* log) {
    set_latency_probes({log});
  }

  /// Typed-event dispatch: one kWorkloadOp per scheduled operation
  /// (a = host, b = epoch at scheduling, c = internal-event count).
  void on_event(const des::EventPayload& payload) override;

 private:
  struct HostState {
    des::RngStream rng;
    u64 epoch = 0;
    std::vector<u64> seen_ckpts;  ///< Per-probe counts, for the latency stall.
  };

  /// Hot per-op counters, sliced per shard so parallel windows never
  /// share a cache line (summed by the accessors).
  struct alignas(64) CounterSlice {
    u64 ops = 0;
    u64 sends = 0;
    u64 receives = 0;
    u64 empty_receives = 0;
    u64 internal_events = 0;
  };

  CounterSlice& cnt() {
    if (des::ShardContext* c = des::current_shard()) return slices_[c->shard];
    return base_;
  }

  u64 sum(u64 CounterSlice::* field) const noexcept {
    u64 total = base_.*field;
    for (const auto& sl : slices_) total += sl.*field;
    return total;
  }

  void schedule_next(net::HostId host, f64 extra_delay);
  void execute_op(net::HostId host, u64 internal_count);

  des::Simulator& sim_;
  net::Network& net_;
  const SimConfig& cfg_;
  des::Exponential comm_gap_;
  std::vector<HostState> per_host_;
  std::vector<const core::CheckpointLog*> latency_probes_;
  CounterSlice base_;                 ///< Sequential / coordinator counts.
  std::vector<CounterSlice> slices_;  ///< Per shard (empty when sequential).
};

}  // namespace mobichk::sim
