#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mobichk::net {

void NetworkConfig::validate() const {
  if (n_hosts < 2) throw std::invalid_argument("NetworkConfig: need at least 2 hosts");
  if (n_mss < 1) throw std::invalid_argument("NetworkConfig: need at least 1 MSS");
  if (wireless_latency < 0.0 || wired_latency < 0.0) {
    throw std::invalid_argument("NetworkConfig: negative latency");
  }
  if (duplicate_prob < 0.0 || duplicate_prob >= 1.0) {
    throw std::invalid_argument("NetworkConfig: duplicate_prob must be in [0, 1)");
  }
  if (wireless_bandwidth < 0.0) {
    throw std::invalid_argument("NetworkConfig: negative wireless bandwidth");
  }
}

Network::Network(des::Simulator& sim, NetworkConfig cfg, u64 seed, des::TraceSink* sink)
    : sim_(sim),
      cfg_(cfg),
      sink_(sink != nullptr ? sink : &null_sink_),
      channel_rng_(seed, "net.channel"),
      topology_(cfg.mss_topology, cfg.n_mss) {
  cfg_.validate();
  arena_.init(cfg_.n_hosts);  // Before the MSSs: they buffer through the arena.
  mss_.reserve(cfg_.n_mss);
  for (MssId m = 0; m < cfg_.n_mss; ++m) mss_.emplace_back(m, &arena_);
  channels_.resize(cfg_.n_mss);
  directory_.init(cfg_.n_hosts, cfg_.n_mss);
  hosts_.reserve(cfg_.n_hosts);
  for (HostId h = 0; h < cfg_.n_hosts; ++h) {
    hosts_.emplace_back(&arena_, h);
    set_mss(h, static_cast<MssId>(h % cfg_.n_mss));
  }
}

void Network::start() {
  std::vector<MssId> placement(cfg_.n_hosts);
  for (HostId h = 0; h < cfg_.n_hosts; ++h) placement[h] = static_cast<MssId>(h % cfg_.n_mss);
  start(placement);
}

void Network::start(const std::vector<MssId>& placement) {
  if (started_) throw std::logic_error("Network::start called twice");
  if (placement.size() != cfg_.n_hosts) {
    throw std::invalid_argument("Network::start: placement size mismatch");
  }
  if (handler_ == nullptr) throw std::logic_error("Network::start: no handler installed");
  for (HostId h = 0; h < cfg_.n_hosts; ++h) {
    if (placement[h] >= cfg_.n_mss) throw std::invalid_argument("Network::start: bad MSS id");
    set_mss(h, placement[h]);
  }
  started_ = true;
  for (auto& host : hosts_) handler_->on_host_init(host);
}

Network::Pool& Network::cur_pool() {
  if (des::ShardContext* c = des::current_shard()) return slices_[c->shard].pool;
  return pool_;
}

u32 Network::park(Pool& pool, AppMessage msg) {
  u32 idx;
  if (!pool.free.empty()) {
    idx = pool.free.back();
    pool.free.pop_back();
    pool.parked[idx] = std::move(msg);
  } else {
    idx = static_cast<u32>(pool.parked.size());
    pool.parked.push_back(std::move(msg));
  }
  return idx;
}

AppMessage Network::unpark(u32 idx) {
  Pool& pool = cur_pool();
  AppMessage msg = std::move(pool.parked[idx]);
  pool.free.push_back(idx);
  return msg;
}

des::EventPayload Network::hop_payload(u8 sub, MssId at, u32 park_idx, bool flag) noexcept {
  des::EventPayload p;
  p.target = this;
  p.kind = des::EventKind::kMessageHop;
  p.sub = sub;
  p.flags = flag ? 1 : 0;
  p.a = at;
  p.b = park_idx;
  return p;
}

void Network::on_event(const des::EventPayload& p) {
  // Host-time attribution: the whole leg handling counts as net.leg on
  // the executing lane (nested inside the kernel's dispatch.message_hop).
  obs::ProfScope prof_leg(prof_ != nullptr ? &prof_->lane().net_leg : nullptr);
  const MssId at = static_cast<MssId>(p.a);
  const u32 park_idx = static_cast<u32>(p.b);
  switch (p.sub) {
    case kSubUplink:
      // Location search: modeled as extra wired hops before forwarding.
      if (cfg_.location_search_hops > 0) {
        st().wired_hops += cfg_.location_search_hops;
        if (probe_ != nullptr) probe_->wired_hops->add(cfg_.location_search_hops);
        const f64 delay = cfg_.wired_latency * static_cast<f64>(cfg_.location_search_hops);
        // The message stays parked (same pool) across the search leg; the
        // follow-up leg stays on the executing queue.
        des::ShardContext* c = des::current_shard();
        (c != nullptr ? *c->sim : sim_)
            .schedule_after(delay, hop_payload(kSubRouted, at, park_idx, /*targeted=*/false));
      } else {
        msg_at_mss(at, unpark(park_idx), /*targeted=*/false);
      }
      break;
    case kSubRouted:
      msg_at_mss(at, unpark(park_idx), /*targeted=*/(p.flags & 1) != 0);
      break;
    case kSubDeliver:
      deliver_to_host(at, unpark(park_idx), /*is_duplicate=*/(p.flags & 1) != 0);
      break;
    default:
      assert(false && "unknown kMessageHop sub-kind");
  }
}

f64 Network::wireless_delay(MssId cell, usize bytes) {
  if (cfg_.wireless_bandwidth <= 0.0) return cfg_.wireless_latency;
  const f64 service =
      cfg_.wireless_latency + static_cast<f64>(bytes) / cfg_.wireless_bandwidth;
  return channels_.at(cell).reserve(sim_.now(), service) - sim_.now();
}

void Network::wired_forward(MssId from, MssId to, AppMessage msg) {
  const u32 hops = topology_.hops(from, to);
  st().wired_hops += hops;
  if (probe_ != nullptr) probe_->wired_hops->add(hops);
  schedule_hop(cfg_.wired_latency * static_cast<f64>(hops), kSubRouted, to,
               /*flag=*/true, std::move(msg));
}

void Network::schedule_hop(f64 delay, u8 sub, MssId at, bool flag, AppMessage msg) {
  if (sharded_ == nullptr) {
    sim_.schedule_after(delay, hop_payload(sub, at, park(pool_, std::move(msg)), flag));
    return;
  }
  const u32 dst_shard = owner_shard_[msg.dst];
  if (des::ShardContext* c = des::current_shard()) {
    assert(dst_shard == c->shard && "non-send legs are destination-local");
    const u32 idx = park(slices_[c->shard].pool, std::move(msg));
    c->sim->schedule_after(delay, hop_payload(sub, at, idx, flag));
  } else {
    // Coordinator phase (restore-time redelivery): the shards are parked,
    // so injecting straight into the owner's pool and queue is safe.
    const u32 idx = park(slices_[dst_shard].pool, std::move(msg));
    sharded_->shard_sim(dst_shard).schedule_at(sim_.now() + delay, hop_payload(sub, at, idx, flag));
  }
}

void Network::occupy_control(MssId cell) {
  if (cfg_.wireless_bandwidth <= 0.0) return;
  const f64 service = cfg_.wireless_latency +
                      static_cast<f64>(cfg_.control_message_bytes) / cfg_.wireless_bandwidth;
  channels_.at(cell).reserve(sim_.now(), service);
}

void Network::trace(des::TraceKind kind, u32 actor, u64 a, u64 b) {
  sink_->record(des::TraceRecord{cur_now(), actor, kind, a, b});
}

void Network::internal_event(HostId host_id) { internal_events(host_id, 1); }

void Network::internal_events(HostId host_id, u64 count) {
  if (count == 0) return;
  MobileHost& h = hosts_.at(host_id);
  for (u64 i = 0; i < count; ++i) h.advance_pos();
  trace(des::TraceKind::kInternalEvent, host_id, h.event_pos(), count);
}

void Network::send_app_message(HostId src, HostId dst, u32 payload_bytes) {
  MobileHost& s = hosts_.at(src);
  assert(s.connected() && "disconnected hosts cannot send");
  assert(dst < cfg_.n_hosts && dst != src);

  AppMessage msg;
  des::ShardContext* shard = des::current_shard();
  if (shard != nullptr) {
    // Window-time send: the global id is assigned at the next barrier in
    // merged (time, shard) order — the order the sequential engine would
    // have executed these sends in — and patched everywhere it was
    // recorded. Until then the message carries a provisional id.
    ShardSlice& sl = slices_[shard->shard];
    msg.id = kProvisionalBit | (static_cast<u64>(shard->shard) << 40) | sl.next_provisional++;
  } else {
    msg.id = next_msg_id_++;
  }
  msg.src = src;
  msg.dst = dst;
  msg.payload_bytes = payload_bytes;
  msg.sent_at = cur_now();
  // The handler runs while event_pos() still names the last event *before*
  // this send, so a protocol that checkpoints on send produces a cut that
  // excludes the send. The send event then takes the next position.
  handler_->on_send(s, msg);
  msg.send_pos = s.advance_pos();
  observe_message(obs::ProbeKind::kSend, msg, src, dst);

  if (shard != nullptr) {
    // The kSend record emitted next is the patch site for the final id.
    slices_[shard->shard].sends.push_back(
        SendReg{msg.sent_at, msg.id, mux_->buffered(shard->shard)});
  }
  trace(des::TraceKind::kSend, src, msg.id, dst);
  NetworkStats& ns = st();
  ++ns.app_sent;
  ++ns.wireless_messages;  // MH -> MSS uplink.
  ns.payload_bytes += payload_bytes;
  ns.piggyback_bytes += msg.pb.wire_bytes();
  ns.piggyback_dense_bytes += msg.pb.dense_bytes();
  if (probe_ != nullptr) {
    probe_->uplink_legs->add();
    probe_->payload_bytes->add(payload_bytes);
    probe_->piggyback_bytes->add(msg.pb.wire_bytes());
    probe_->piggyback_dense_bytes->add(msg.pb.dense_bytes());
  }

  const MssId src_mss = s.mss();
  const f64 uplink = wireless_delay(src_mss, msg.wire_bytes());
  if (sharded_ == nullptr) {
    sim_.schedule_after(uplink,
                        hop_payload(kSubUplink, src_mss, park(pool_, std::move(msg)), false));
  } else if (shard != nullptr) {
    // The uplink leg (like every later leg) executes on the owner shard
    // of the *destination*, so all per-host routing state it reads is
    // owner-local. Same-shard legs go straight into the local queue; the
    // cross-shard case is the one egress channel in the system.
    const u32 dst_shard = owner_shard_[dst];
    ShardSlice& sl = slices_[shard->shard];
    if (dst_shard == shard->shard) {
      const u32 idx = park(sl.pool, std::move(msg));
      sl.provisional_parked.push_back(idx);
      shard->sim->schedule_after(uplink, hop_payload(kSubUplink, src_mss, idx, false));
    } else {
      sl.egress[dst_shard].push_back(
          EgressLeg{shard->sim->now() + uplink, src_mss, kSubUplink, false, std::move(msg)});
    }
  } else {
    // Coordinator-side send in a sharded run (not produced by the stock
    // drivers, kept correct): the id is already final and the shards are
    // parked, so inject into the owner's pool and queue directly.
    const u32 dst_shard = owner_shard_[dst];
    const u32 idx = park(slices_[dst_shard].pool, std::move(msg));
    sharded_->shard_sim(dst_shard).schedule_at(sim_.now() + uplink,
                                               hop_payload(kSubUplink, src_mss, idx, false));
  }
}

void Network::msg_at_mss(MssId at, AppMessage msg, bool targeted) {
  mss_.at(at).note_routed();
  MobileHost& d = hosts_.at(msg.dst);
  if (!d.connected()) {
    if (d.mss() == at) {
      mss_.at(at).buffer_message(msg.dst, std::move(msg));
    } else {
      // Forward to the destination's last MSS, which buffers.
      wired_forward(at, d.mss(), std::move(msg));
    }
    return;
  }
  if (d.mss() != at) {
    // We expected the destination here and it moved: that is a chase.
    // From the source's own MSS it is just the normal routing hop.
    if (targeted) ++st().chase_forwards;
    wired_forward(at, d.mss(), std::move(msg));
    return;
  }
  // Destination is attached here: wireless downlink.
  ++st().wireless_messages;
  if (probe_ != nullptr) probe_->downlink_legs->add();
  const f64 downlink = wireless_delay(at, msg.wire_bytes());
  schedule_hop(downlink, kSubDeliver, at, /*flag=*/false, std::move(msg));
}

void Network::deliver_to_host(MssId from_mss, AppMessage msg, bool is_duplicate) {
  MobileHost& d = hosts_.at(msg.dst);
  if (!d.connected()) {
    // Disconnected during the wireless leg: the MSS retains the message.
    mss_.at(from_mss).buffer_message(msg.dst, std::move(msg));
    return;
  }
  if (d.mss() != from_mss) {
    // Moved during the wireless leg: the old MSS re-routes.
    ++st().chase_forwards;
    wired_forward(from_mss, d.mss(), std::move(msg));
    return;
  }
  // At-least-once transport: the delivery may be duplicated. (Duplication
  // is gated off in sharded mode — the shared channel RNG would order-
  // couple shards — so this branch is sequential-only.)
  if (!is_duplicate && cfg_.duplicate_prob > 0.0 &&
      des::bernoulli(channel_rng_, cfg_.duplicate_prob)) {
    ++stats_.duplicates_generated;
    ++stats_.wireless_messages;
    if (probe_ != nullptr) probe_->downlink_legs->add();
    AppMessage copy = msg;
    const f64 redelivery = wireless_delay(from_mss, copy.wire_bytes());
    sim_.schedule_after(redelivery, hop_payload(kSubDeliver, from_mss, park(pool_, std::move(copy)),
                                                /*is_duplicate=*/true));
  }
  if (cfg_.duplicate_prob > 0.0 && cfg_.transport_dedup) {
    if (!arena_.seen_ids[msg.dst].insert(msg.id).second) {
      ++stats_.duplicates_suppressed;
      return;
    }
  }
  trace(des::TraceKind::kDeliver, msg.dst, msg.id, msg.src);
  ++st().app_delivered;
  const f64 latency = cur_now() - msg.sent_at;
  if (des::ShardContext* c = des::current_shard()) {
    // Welford insertion is order-sensitive; journal now, replay into the
    // Tally in global time order at the end of the run.
    slices_[c->shard].latency.emplace_back(cur_now(), latency);
  } else {
    stats_.delivery_latency.add(latency);
  }
  if (probe_ != nullptr) probe_->delivery_latency->add(latency);
  d.mailbox().push(std::move(msg));
}

bool Network::consume_one(HostId host_id) {
  MobileHost& h = hosts_.at(host_id);
  if (h.mailbox().empty()) return false;
  AppMessage msg = h.mailbox().pop();
  // The protocol reacts (and possibly checkpoints) *before* the receive
  // event occupies its position, so a forced checkpoint excludes the
  // message being processed (no orphan by construction).
  handler_->on_receive(h, msg);
  h.advance_pos();
  // After on_receive: any forced-checkpoint probe event precedes the
  // deliver event, so online trackers see the cut the protocol built.
  observe_message(obs::ProbeKind::kDeliver, msg, host_id, msg.src);
  trace(des::TraceKind::kReceive, host_id, msg.id, msg.src);
  ++st().app_received;
  return true;
}

void Network::switch_cell(HostId host_id, MssId new_mss) {
  MobileHost& h = hosts_.at(host_id);
  assert(h.connected() && "cannot hand off a disconnected host");
  assert(new_mss < cfg_.n_mss && new_mss != h.mss());
  const MssId old_mss = h.mss();
  // Handoff protocol: one message to the MSS being left, one to the new
  // current MSS (paper §5.1).
  NetworkStats& ns = st();
  ns.control_messages += 2;
  ns.wireless_messages += 2;
  ++ns.handoffs;
  if (probe_ != nullptr) probe_->handoffs->add();
  observe_mobility(obs::ProbeKind::kHandoff, host_id, static_cast<i32>(new_mss));
  occupy_control(old_mss);
  occupy_control(new_mss);
  set_mss(host_id, new_mss);
  trace(des::TraceKind::kHandoff, host_id, old_mss, new_mss);
  handler_->on_cell_switch(h, old_mss, new_mss);
}

void Network::disconnect(HostId host_id) {
  MobileHost& h = hosts_.at(host_id);
  assert(h.connected() && "already disconnected");
  // Disconnection protocol: one message to the current MSS (paper §5.1).
  NetworkStats& ns = st();
  ns.control_messages += 1;
  ns.wireless_messages += 1;
  ++ns.disconnects;
  if (probe_ != nullptr) probe_->disconnects->add();
  observe_mobility(obs::ProbeKind::kDisconnect, host_id, -1);
  occupy_control(h.mss());
  trace(des::TraceKind::kDisconnect, host_id, h.mss());
  // The basic checkpoint is taken while still attached.
  handler_->on_disconnect(h);
  arena_.connected[host_id] = 0;
}

void Network::reconnect(HostId host_id, MssId new_mss) {
  MobileHost& h = hosts_.at(host_id);
  assert(!h.connected() && "already connected");
  assert(new_mss < cfg_.n_mss);
  const MssId last_mss = h.mss();
  NetworkStats& ns = st();
  ns.control_messages += 1;
  ns.wireless_messages += 1;
  ++ns.reconnects;
  if (probe_ != nullptr) probe_->reconnects->add();
  observe_mobility(obs::ProbeKind::kReconnect, host_id, static_cast<i32>(new_mss));
  occupy_control(new_mss);
  arena_.connected[host_id] = 1;
  set_mss(host_id, new_mss);
  trace(des::TraceKind::kReconnect, host_id, last_mss, new_mss);
  handler_->on_reconnect(h, new_mss);
  // Messages that waited out the disconnection now flow to the new cell.
  auto pending = mss_.at(last_mss).drain_buffer(host_id);
  st().buffered_deliveries += pending.size();
  for (auto& msg : pending) {
    msg_at_mss(last_mss, std::move(msg), /*targeted=*/false);
  }
}

void Network::crash(HostId host_id) {
  MobileHost& h = hosts_.at(host_id);
  assert(h.connected() && "cannot crash a disconnected host");
  // A failure is unannounced: no control message, no upcall — the host
  // gets no chance to checkpoint (contrast disconnect()).
  ++st().crashes;
  if (probe_ != nullptr) probe_->crashes->add();
  observe_mobility(obs::ProbeKind::kCrash, host_id, -1);
  trace(des::TraceKind::kCrash, host_id, h.mss(), h.mailbox_size());
  arena_.connected[host_id] = 0;
  // Volatile state dies with the host. Messages delivered but not yet
  // consumed were already counted received by the MSS's stable log; park
  // them back in the cell buffer so replay re-delivers them.
  Mss& cell = mss_.at(h.mss());
  h.mailbox().drain(
      [&cell, host_id](AppMessage&& msg) { cell.buffer_message(host_id, std::move(msg)); });
  arena_.seen_ids[host_id].clear();
}

void Network::enable_sharding(des::ShardedSimulator* sharded, des::ShardTraceMux* mux) {
  if (sharded == nullptr || mux == nullptr) {
    throw std::invalid_argument("enable_sharding: null coordinator or trace mux");
  }
  if (cfg_.duplicate_prob > 0.0) {
    throw std::invalid_argument(
        "enable_sharding: duplication is sequential-only (shared channel RNG)");
  }
  if (cfg_.wireless_bandwidth > 0.0) {
    throw std::invalid_argument(
        "enable_sharding: bandwidth-limited channels are sequential-only (shared FIFO)");
  }
  if (cfg_.wireless_latency <= 0.0 || cfg_.wired_latency <= 0.0) {
    throw std::invalid_argument(
        "enable_sharding: conservative sync needs strictly positive leg latencies");
  }
  if (probe_ != nullptr || timeline_ != nullptr) {
    throw std::invalid_argument("enable_sharding: observability hooks are sequential-only");
  }
  const u32 n_shards = sharded->n_shards();
  if (n_shards > cfg_.n_mss) {
    throw std::invalid_argument("enable_sharding: more shards than cells");
  }
  sharded_ = sharded;
  mux_ = mux;
  // Static ownership: contiguous cell blocks of the current placement.
  // Cell c belongs to shard c * S / n_mss; a host never migrates owners,
  // whatever cells it later visits.
  owner_shard_.assign(cfg_.n_hosts, 0);
  for (HostId h = 0; h < cfg_.n_hosts; ++h) {
    owner_shard_[h] =
        static_cast<u32>(static_cast<u64>(arena_.mss[h]) * n_shards / cfg_.n_mss);
  }
  sharded_->set_owner_map(owner_shard_);
  slices_.clear();
  slices_.resize(n_shards);
  for (auto& sl : slices_) sl.egress.resize(n_shards);
}

const std::unordered_map<u64, u64>& Network::merge_window() {
  window_idmap_.clear();
  const u32 n = static_cast<u32>(slices_.size());
  // 1. Final message ids, assigned in merged (time, shard) order — the
  //    order the sequential engine executed these sends in (cross-shard
  //    equal-time ties have measure zero; the shard index breaks them
  //    deterministically). Each kSend trace record is patched in place
  //    before the mux flush hashes it.
  std::vector<usize> head(n, 0);
  for (;;) {
    u32 best = n;
    for (u32 s = 0; s < n; ++s) {
      if (head[s] >= slices_[s].sends.size()) continue;
      if (best == n || slices_[s].sends[head[s]].t < slices_[best].sends[head[best]].t) best = s;
    }
    if (best == n) break;
    const SendReg& reg = slices_[best].sends[head[best]++];
    const u64 final_id = next_msg_id_++;
    window_idmap_.emplace(reg.provisional, final_id);
    mux_->patch_a(best, reg.trace_idx, final_id);
  }
  for (auto& sl : slices_) sl.sends.clear();
  // 2. Same-shard uplink legs still in flight carry provisional ids.
  for (auto& sl : slices_) {
    for (const u32 idx : sl.provisional_parked) {
      AppMessage& m = sl.pool.parked[idx];
      m.id = window_idmap_.at(m.id);
    }
    sl.provisional_parked.clear();
  }
  // 3. Cross-shard legs: patch ids, then hand each to its owner shard in
  //    (time, source shard) order. Every leg's arrival time is at or past
  //    the window horizon (delay >= lookahead), so the owner's clock has
  //    not passed it.
  for (u32 dst = 0; dst < n; ++dst) {
    std::fill(head.begin(), head.end(), usize{0});
    for (;;) {
      u32 best = n;
      for (u32 s = 0; s < n; ++s) {
        const auto& eg = slices_[s].egress[dst];
        if (head[s] >= eg.size()) continue;
        if (best == n || eg[head[s]].t < slices_[best].egress[dst][head[best]].t) best = s;
      }
      if (best == n) break;
      EgressLeg& leg = slices_[best].egress[dst][head[best]++];
      if ((leg.msg.id & kProvisionalBit) != 0) leg.msg.id = window_idmap_.at(leg.msg.id);
      const u32 idx = park(slices_[dst].pool, std::move(leg.msg));
      sharded_->shard_sim(dst).schedule_at(leg.t, hop_payload(leg.sub, leg.at, idx, leg.flag));
    }
    for (u32 s = 0; s < n; ++s) slices_[s].egress[dst].clear();
  }
  // 4. Journaled directory moves (per-host order is per-shard order;
  //    cross-shard entries touch disjoint hosts).
  for (auto& sl : slices_) {
    for (const auto& [host, cell] : sl.dir_moves) directory_.move(host, cell);
    sl.dir_moves.clear();
  }
  // 5. Publish this window's trace records downstream, time-merged.
  mux_->flush();
  return window_idmap_;
}

void Network::finalize_sharding() {
  for (auto& sl : slices_) {
    const NetworkStats& s = sl.stats;
    stats_.app_sent += s.app_sent;
    stats_.app_delivered += s.app_delivered;
    stats_.app_received += s.app_received;
    stats_.control_messages += s.control_messages;
    stats_.wireless_messages += s.wireless_messages;
    stats_.wired_hops += s.wired_hops;
    stats_.handoffs += s.handoffs;
    stats_.disconnects += s.disconnects;
    stats_.reconnects += s.reconnects;
    stats_.crashes += s.crashes;
    stats_.restores += s.restores;
    stats_.chase_forwards += s.chase_forwards;
    stats_.buffered_deliveries += s.buffered_deliveries;
    stats_.duplicates_generated += s.duplicates_generated;
    stats_.duplicates_suppressed += s.duplicates_suppressed;
    stats_.payload_bytes += s.payload_bytes;
    stats_.piggyback_bytes += s.piggyback_bytes;
    stats_.piggyback_dense_bytes += s.piggyback_dense_bytes;
    sl.stats = NetworkStats{};
  }
  // Delivery latencies replay into the Tally in merged (time, shard)
  // order — the sequential insertion order, so mean/variance are
  // bit-identical, not just permutation-equal.
  const u32 n = static_cast<u32>(slices_.size());
  std::vector<usize> head(n, 0);
  for (;;) {
    u32 best = n;
    for (u32 s = 0; s < n; ++s) {
      if (head[s] >= slices_[s].latency.size()) continue;
      if (best == n ||
          slices_[s].latency[head[s]].first < slices_[best].latency[head[best]].first) {
        best = s;
      }
    }
    if (best == n) break;
    stats_.delivery_latency.add(slices_[best].latency[head[best]++].second);
  }
  for (auto& sl : slices_) sl.latency.clear();
}

void Network::restore(HostId host_id, MssId at_mss) {
  MobileHost& h = hosts_.at(host_id);
  assert(!h.connected() && "cannot restore a live host");
  assert(at_mss < cfg_.n_mss);
  const MssId last_mss = h.mss();
  // The rejoin itself looks like a reconnection to the substrate: one
  // control message announcing the restored host to its MSS.
  NetworkStats& ns = st();
  ns.control_messages += 1;
  ns.wireless_messages += 1;
  ++ns.restores;
  if (probe_ != nullptr) probe_->restores->add();
  observe_mobility(obs::ProbeKind::kRecover, host_id, static_cast<i32>(at_mss));
  occupy_control(at_mss);
  arena_.connected[host_id] = 1;
  set_mss(host_id, at_mss);
  trace(des::TraceKind::kRecover, host_id, last_mss, at_mss);
  handler_->on_reconnect(h, at_mss);
  // Messages buffered during the outage (including the crash-parked
  // mailbox) flow to the restored host.
  auto pending = mss_.at(last_mss).drain_buffer(host_id);
  st().buffered_deliveries += pending.size();
  for (auto& msg : pending) {
    msg_at_mss(last_mss, std::move(msg), /*targeted=*/false);
  }
}

}  // namespace mobichk::net
