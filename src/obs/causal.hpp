// Causal observability: online recovery-line tracking and causal-chain
// reconstruction, fed purely by the probe-event stream.
//
// The paper's central claim for communication-induced checkpointing is
// that every local checkpoint can be associated with a consistent global
// checkpoint *on the fly*. The offline oracles (core::VcOracle,
// core::IntervalGraph) verify this after a run from the message and
// checkpoint logs; the RecoveryLineTracker here verifies it *during* the
// run from nothing but the kCheckpoint / kSend / kDeliver / kSnPromote
// probe events, by re-deriving the protocol's recovery-line rule from the
// event stream. Reconciling the two (tests/obs/test_causal.cpp) is a
// three-way theory check: online tracker == index/TP line builders ==
// VC-consistency / Z-cycle verdicts.
//
// This layer deliberately never includes core headers: it must work from
// the probe stream alone, or the reconciliation would be circular.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace mobichk::obs {

/// The recovery-line semantics a tracker emulates for one protocol slot.
enum class TrackerMode : u8 {
  kNone = 0,           ///< No on-the-fly recovery line (BASIC, UNCOORD).
  kIndexFirstAtLeast,  ///< BCS / LAZY-BCS / COORD: first checkpoint with sn >= M.
  kIndexLastEqual,     ///< QBC: last checkpoint with sn == M (equivalence rule).
  kTpDependency,       ///< TP: dependency vectors under the phase discipline.
};

const char* tracker_mode_name(TrackerMode mode) noexcept;

/// One member of an online recovery line (mirror of a
/// core::GlobalCheckpoint member, identified by ordinal instead of by
/// record pointer so the obs layer stays core-free).
struct LineMember {
  u32 host = 0;
  u64 ordinal = 0;          ///< Per-host checkpoint ordinal; 0 when virtual.
  bool is_virtual = false;  ///< The host's current state stands in.
};

/// Maintains one protocol's recovery line incrementally from probe
/// events. All inputs arrive through the CausalMonitor listener; queries
/// may be issued at any time (tests query after the run).
class RecoveryLineTracker {
 public:
  RecoveryLineTracker(TrackerMode mode, u32 n_hosts);

  /// Registers this tracker's metric family under `prefix` (e.g.
  /// "rl.1.BCS"); call once, before events arrive. Without it the
  /// tracker still answers queries but exports nothing.
  void resolve_metrics(MetricRegistry& registry, const std::string& prefix);

  // -- event intake (driven by CausalMonitor) ---------------------------
  void on_checkpoint(u32 host, u64 sn, CkptKind kind, u64 trigger_msg);
  void on_sn_promote(u32 host, u64 sn);
  void on_send(u32 host, u64 msg_id);
  void on_deliver(u32 host, u64 msg_id);

  /// Runs the online Z-cycle analysis over everything seen so far and
  /// publishes the final gauges. Idempotent per run; call after the
  /// simulation ends.
  void finalize();

  // -- queries ----------------------------------------------------------
  TrackerMode mode() const noexcept { return mode_; }
  u32 n_hosts() const noexcept { return n_; }

  /// Checkpoints recorded for `host` so far (ordinals 0..count-1).
  u64 checkpoints(u32 host) const { return hosts_.at(host).sns.size(); }

  /// The committed line index: the largest M such that every host has
  /// reached index M (TP mode: the smallest per-host checkpoint count
  /// minus one, i.e. the deepest ordinal every host has anchored).
  u64 line_index() const noexcept { return committed_; }

  /// Checkpoints of `host` beyond the committed line (the "lag").
  u64 lag(u32 host) const;

  /// The line for index M (index modes): one member per host, virtual
  /// when the host never reached M. Mirrors core::index_recovery_line.
  std::vector<LineMember> index_line(u64 index) const;

  /// The line TP associates with checkpoint (host, ordinal), from the
  /// dependency vectors re-derived online. Mirrors core::tp_recovery_line.
  std::vector<LineMember> tp_line(u32 host, u64 ordinal) const;

  /// Whether checkpoint (host, ordinal) lies on a zigzag cycle of the
  /// online interval graph. Valid after finalize().
  bool on_z_cycle(u32 host, u64 ordinal) const;

  /// Useless (Z-cycle) checkpoints found by finalize(), initials excluded.
  u64 useless_count() const noexcept { return useless_; }

  /// Longest send->forced-checkpoint chain observed.
  u64 max_forced_chain() const noexcept { return max_chain_; }

  /// TP-only invariant: deliveries observed while the receiver's phase
  /// was still SEND (the protocol must have checkpointed first; any
  /// violation means the probe stream contradicts Russell's discipline).
  u64 phase_violations() const noexcept { return phase_violations_; }

 private:
  struct HostState {
    std::vector<u64> sns;           ///< Checkpoint sn per ordinal (non-decreasing).
    std::vector<u32> chain_depth;   ///< Forced-chain depth per ordinal.
    std::vector<std::vector<u32>> deps;  ///< TP: dependency vector per ordinal.
    std::vector<u32> req;           ///< TP: running requirement vector.
    bool phase_send = false;        ///< TP: SEND phase flag.
    u32 chain = 0;                  ///< Forced-chain depth of the open interval.
  };
  struct MsgInfo {
    u32 src = 0;
    u32 send_interval = 0;   ///< Sender's open interval ordinal at send.
    u32 chain_at_send = 0;   ///< Sender's forced-chain depth at send.
    std::vector<u32> dep;    ///< TP: requirement vector carried by the message.
  };
  /// One interval-graph message edge: (src, si) -> (dst, di).
  struct Edge {
    u32 src, si, dst, di;
  };

  void advance_committed();
  usize node_id(u32 host, u64 interval) const;
  /// Intervals reachable from (host, interval) via a message edge
  /// (the Z-cycle terminal condition needs message-entered nodes only).
  std::vector<bool> message_reach(u32 host, u64 interval) const;

  TrackerMode mode_;
  u32 n_;
  std::vector<HostState> hosts_;
  std::unordered_map<u64, MsgInfo> in_flight_;
  std::vector<Edge> edges_;
  u64 committed_ = 0;
  u64 useless_ = 0;
  u64 max_chain_ = 0;
  u64 phase_violations_ = 0;
  bool finalized_ = false;
  // Finalize-time graph layout (parallel to IntervalGraph's node space).
  std::vector<usize> node_base_;
  usize node_total_ = 0;
  std::vector<std::vector<u32>> message_adj_;
  std::vector<u8> z_cycle_;  ///< Per node: on a Z-cycle (after finalize).
  // Metrics (null until resolve_metrics).
  Gauge* line_index_g_ = nullptr;
  Gauge* lag_max_g_ = nullptr;
  FixedHistogram* lag_h_ = nullptr;
  FixedHistogram* chain_h_ = nullptr;
  Counter* useless_c_ = nullptr;
  Counter* advances_c_ = nullptr;
};

/// Owns one RecoveryLineTracker per protocol slot and routes probe
/// events to them as the Timeline's listener: checkpoint/promote events
/// go to their slot's tracker, send/deliver events to every tracker
/// (each slot interprets the same communication pattern under its own
/// rule — the paired-observer design carried into the obs layer).
class CausalMonitor final : public ProbeEventListener {
 public:
  /// `modes` is indexed by protocol slot; `names` labels the metric
  /// families ("rl.<slot>.<name>.*"). Slots with TrackerMode::kNone get
  /// no tracker.
  CausalMonitor(u32 n_hosts, const std::vector<TrackerMode>& modes,
                const std::vector<std::string>& names, MetricRegistry& registry);

  void on_probe_event(const ProbeEvent& e) override;

  usize slots() const noexcept { return trackers_.size(); }
  RecoveryLineTracker* tracker(usize slot) { return trackers_.at(slot).get(); }
  const RecoveryLineTracker* tracker(usize slot) const { return trackers_.at(slot).get(); }

  /// Finalizes every tracker (Z-cycle pass + final gauges).
  void finalize();

 private:
  std::vector<std::unique_ptr<RecoveryLineTracker>> trackers_;
};

/// One link of a causal chain behind a forced checkpoint.
struct ChainStep {
  // The checkpoint.
  f64 t = 0.0;
  i32 host = -1;
  u64 ordinal = 0;
  u64 sn = 0;
  CkptKind ckpt_kind = CkptKind::kInitial;
  ForcedRule rule = ForcedRule::kNone;
  bool replaced = false;
  // The message that triggered it (0 = none: basic/initial/marker).
  u64 trigger_msg = 0;
  i32 msg_src = -1;
  f64 msg_sent_t = 0.0;
  u64 msg_wire_sn = 0;    ///< Slot 0's piggybacked sn (wire value, diagnostics).
  bool msg_found = false; ///< The send event was located on the timeline.
};

/// Reconstructs, from the recorded timeline, the causal chain that
/// produced checkpoint `ordinal` of `host` in protocol slot `slot`:
/// element 0 is the checkpoint itself; each following element is the
/// sender-side checkpoint preceding the triggering message, until a
/// checkpoint with no triggering message (or `max_depth`) ends the
/// chain. Returns empty when the checkpoint is not on the timeline.
std::vector<ChainStep> explain_checkpoint_chain(const Timeline& timeline, i32 slot, i32 host,
                                                u64 ordinal, usize max_depth = 16);

}  // namespace mobichk::obs
