// COLL: global-checkpoint collection latency (paper §2.2, "Global
// Checkpoint Collection Latency").
//
// The paper observes that connections and disconnections "may
// significantly increase the completion time of the construction of a
// consistent global checkpoint". We measure exactly that: for every
// index M whose recovery line completed (all ten members stored), the
// formation span = time of the last member minus time of the first.
// Sweeping the disconnection share shows the effect.
#include <algorithm>
#include <cstdio>

#include "core/recovery.hpp"
#include "sim/cli.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace mobichk;
  const sim::ArgParser args(argc, argv);
  const u64 seeds = args.get_u64("seeds", 3);

  std::printf("COLL — recovery-line formation span (tu), QBC and BCS, T_switch=1000\n\n");
  std::printf("%9s %9s | %12s %12s | %12s %12s\n", "P_switch", "outage", "BCS mean", "BCS p95",
              "QBC mean", "QBC p95");

  for (const f64 psw : {1.0, 0.9, 0.8, 0.6}) {
    for (const f64 outage : {300.0, 1'000.0}) {
      if (psw == 1.0 && outage != 300.0) continue;
      std::vector<std::vector<f64>> spans(2);
      for (u64 s = 1; s <= seeds; ++s) {
        sim::SimConfig cfg;
        cfg.sim_length = args.get_f64("length", 100'000.0);
        cfg.t_switch = 1'000.0;
        cfg.p_switch = psw;
        cfg.disconnect_mean = outage;
        cfg.seed = s;
        sim::ExperimentOptions opts;
        opts.protocols = {core::ProtocolKind::kBcs, core::ProtocolKind::kQbc};
        sim::Experiment exp(cfg, opts);
        exp.run();
        const auto current = exp.harness().current_positions();
        for (usize slot = 0; slot < 2; ++slot) {
          const auto& log = exp.log(slot);
          const auto rule = core::recovery_rule_for(opts.protocols[slot]);
          for (u64 m = 1; m <= log.max_sn(); ++m) {
            const auto line = core::index_recovery_line(log, m, rule, current);
            if (line.virtual_members() > 0) continue;  // line not complete yet
            f64 lo = 1e300, hi = -1e300;
            for (const auto* member : line.members) {
              lo = std::min(lo, member->time);
              hi = std::max(hi, member->time);
            }
            spans[slot].push_back(hi - lo);
          }
        }
      }
      f64 stats[2][2] = {};
      for (usize slot = 0; slot < 2; ++slot) {
        auto& v = spans[slot];
        if (v.empty()) continue;
        std::sort(v.begin(), v.end());
        f64 sum = 0.0;
        for (const f64 x : v) sum += x;
        stats[slot][0] = sum / static_cast<f64>(v.size());
        stats[slot][1] = v[static_cast<usize>(0.95 * static_cast<f64>(v.size() - 1))];
      }
      std::printf("%9.1f %9.0f | %12.1f %12.1f | %12.1f %12.1f\n", psw, outage, stats[0][0],
                  stats[0][1], stats[1][0], stats[1][1]);
    }
  }
  std::printf("\nexpected: with no disconnections a line forms in roughly an index period;\n"
              "disconnected hosts stall completion (their next checkpoint waits out the\n"
              "outage), so spans stretch as the disconnection share and outage grow —\n"
              "the paper's §2.2 observation, quantified.\n");
  return 0;
}
