#include "sim/config.hpp"

#include <cmath>
#include <stdexcept>

namespace mobichk::sim {

const char* mobility_model_name(MobilityModelKind kind) noexcept {
  switch (kind) {
    case MobilityModelKind::kPaperUniform: return "paper-uniform";
    case MobilityModelKind::kRingNeighbor: return "ring-neighbor";
    case MobilityModelKind::kParetoResidence: return "pareto-residence";
  }
  return "?";
}

const char* crash_mode_name(CrashMode mode) noexcept {
  switch (mode) {
    case CrashMode::kNone: return "none";
    case CrashMode::kMhCrash: return "host";
    case CrashMode::kCorrelated: return "correlated";
    case CrashMode::kCellOutage: return "cell";
  }
  return "?";
}

void FaultConfig::validate(u32 n_hosts, u32 n_mss) const {
  if (!enabled()) return;
  if (first_crash_at <= 0.0) {
    throw std::invalid_argument("FaultConfig: first_crash_at must be positive");
  }
  if (crash_interval < 0.0) {
    throw std::invalid_argument("FaultConfig: crash_interval must be >= 0");
  }
  if (max_crashes == 0) throw std::invalid_argument("FaultConfig: max_crashes must be >= 1");
  if (target != kRandomTarget) {
    if (mode == CrashMode::kCellOutage && target >= n_mss) {
      throw std::invalid_argument("FaultConfig: target cell out of range");
    }
    if (mode != CrashMode::kCellOutage && target >= n_hosts) {
      throw std::invalid_argument("FaultConfig: target host out of range");
    }
  }
  if (mode == CrashMode::kCorrelated && (correlated == 0 || correlated > n_hosts)) {
    throw std::invalid_argument("FaultConfig: correlated count out of [1, n_hosts]");
  }
  recovery.validate();
}

u32 SimConfig::fast_host_count() const noexcept {
  return static_cast<u32>(
      std::llround(heterogeneity * static_cast<f64>(network.n_hosts)));
}

f64 SimConfig::residence_mean_for(net::HostId host) const noexcept {
  return host < fast_host_count() ? t_switch / fast_factor : t_switch;
}

void SimConfig::validate() const {
  network.validate();
  if (sim_length <= 0.0) throw std::invalid_argument("SimConfig: sim_length must be positive");
  if (internal_mean <= 0.0) throw std::invalid_argument("SimConfig: internal_mean must be positive");
  if (comm_mean <= 0.0) throw std::invalid_argument("SimConfig: comm_mean must be positive");
  if (p_send < 0.0 || p_send > 1.0) throw std::invalid_argument("SimConfig: p_send out of [0,1]");
  if (t_switch <= 0.0) throw std::invalid_argument("SimConfig: t_switch must be positive");
  if (p_switch < 0.0 || p_switch > 1.0) throw std::invalid_argument("SimConfig: p_switch out of [0,1]");
  if (disconnect_residence_divisor <= 0.0) {
    throw std::invalid_argument("SimConfig: disconnect_residence_divisor must be positive");
  }
  if (disconnect_mean <= 0.0) throw std::invalid_argument("SimConfig: disconnect_mean must be positive");
  if (heterogeneity < 0.0 || heterogeneity > 1.0) {
    throw std::invalid_argument("SimConfig: heterogeneity out of [0,1]");
  }
  if (fast_factor < 1.0) throw std::invalid_argument("SimConfig: fast_factor must be >= 1");
  if (ckpt_latency < 0.0) throw std::invalid_argument("SimConfig: ckpt_latency must be >= 0");
  if (p_switch < 1.0 && network.n_mss < 1) {
    throw std::invalid_argument("SimConfig: disconnections need an MSS to buffer at");
  }
  if (network.n_mss < 2 && p_switch > 0.0) {
    throw std::invalid_argument("SimConfig: cell switches need at least 2 MSSs");
  }
  faults.validate(network.n_hosts, network.n_mss);
}

}  // namespace mobichk::sim
