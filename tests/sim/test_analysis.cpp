#include "sim/analysis.hpp"

#include <gtest/gtest.h>

namespace mobichk::sim {
namespace {

TEST(SteadyState, SpecValidation) {
  SteadyStateSpec spec;
  spec.window = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = SteadyStateSpec{};
  spec.cfg.sim_length = 100.0;
  spec.window = 50.0;  // fewer than 4 windows
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = SteadyStateSpec{};
  spec.protocols.clear();
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(SteadyState, RatesMatchDirectCounts) {
  SteadyStateSpec spec;
  spec.cfg.sim_length = 40'000.0;
  spec.cfg.t_switch = 500.0;
  spec.cfg.p_switch = 0.8;
  spec.cfg.seed = 3;
  spec.window = 400.0;
  const auto estimates = estimate_steady_state(spec);
  ASSERT_EQ(estimates.size(), 3u);

  // Cross-check against the plain end-to-end counts: the steady-state
  // rate x horizon should be within ~15% of N_tot (warm-up shifts it a
  // little, which is the point).
  ExperimentOptions opts;
  const RunResult direct = run_experiment(spec.cfg, opts);
  for (usize s = 0; s < estimates.size(); ++s) {
    const f64 projected = estimates[s].rate * spec.cfg.sim_length;
    const f64 actual = static_cast<f64>(direct.protocols[s].n_tot);
    EXPECT_NEAR(projected / actual, 1.0, 0.15) << estimates[s].protocol;
    EXPECT_EQ(estimates[s].windows, 100u);
    EXPECT_GE(estimates[s].ci95, 0.0);
  }
  // The ranking survives the analysis.
  EXPECT_GT(estimates[0].rate, estimates[1].rate);  // TP > BCS
  EXPECT_GE(estimates[1].rate, estimates[2].rate);  // BCS >= QBC
}

TEST(SteadyState, WarmupStaysInFirstHalf) {
  SteadyStateSpec spec;
  spec.cfg.sim_length = 20'000.0;
  spec.window = 200.0;
  const auto estimates = estimate_steady_state(spec);
  for (const auto& est : estimates) {
    EXPECT_LE(est.warmup_windows, est.windows / 2 + spec.mser_batch);
  }
}

TEST(Precision, StopsWhenTargetMet) {
  PrecisionSpec spec;
  spec.base.sim_length = 10'000.0;
  spec.base.t_switch = 500.0;
  spec.base.p_switch = 0.8;
  spec.target_relative_ci = 0.25;  // generous: a handful of seeds suffices
  spec.min_seeds = 3;
  spec.max_seeds = 20;
  const PrecisionResult result = run_until_precision(spec);
  EXPECT_TRUE(result.target_met);
  EXPECT_GE(result.seeds_used, spec.min_seeds);
  EXPECT_LE(result.seeds_used, spec.max_seeds);
  for (const auto& p : result.protocols) {
    EXPECT_GT(p.n_tot_mean, 0.0);
    EXPECT_LE(p.ci95 / p.n_tot_mean, spec.target_relative_ci);
  }
}

TEST(Precision, TightTargetUsesMoreSeeds) {
  PrecisionSpec loose;
  loose.base.sim_length = 5'000.0;
  loose.base.t_switch = 500.0;
  loose.target_relative_ci = 0.5;
  PrecisionSpec tight = loose;
  tight.target_relative_ci = 0.05;
  tight.max_seeds = 40;
  const auto a = run_until_precision(loose);
  const auto b = run_until_precision(tight);
  EXPECT_GE(b.seeds_used, a.seeds_used);
}

TEST(Precision, RespectsMaxSeeds) {
  PrecisionSpec spec;
  spec.base.sim_length = 2'000.0;
  spec.target_relative_ci = 1e-6;  // unreachable
  spec.max_seeds = 5;
  const PrecisionResult result = run_until_precision(spec);
  EXPECT_FALSE(result.target_met);
  EXPECT_EQ(result.seeds_used, 5u);
}

TEST(Precision, BadBoundsThrow) {
  PrecisionSpec spec;
  spec.min_seeds = 0;
  EXPECT_THROW(run_until_precision(spec), std::invalid_argument);
  spec.min_seeds = 10;
  spec.max_seeds = 5;
  EXPECT_THROW(run_until_precision(spec), std::invalid_argument);
}

}  // namespace
}  // namespace mobichk::sim
