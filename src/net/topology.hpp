// Wired-network topology between MSSs.
//
// The paper prices "message transfer between adjacent MSSs" — i.e. the
// wired network is a graph and non-adjacent MSSs pay per-hop. This
// module provides the usual fixed topologies with precomputed all-pairs
// hop counts; kFullMesh (every pair adjacent) reproduces the single-hop
// model most analyses assume.
#pragma once

#include <vector>

#include "des/types.hpp"
#include "net/ids.hpp"

namespace mobichk::net {

enum class MssTopologyKind : u8 {
  kFullMesh,  ///< Every MSS pair is adjacent (1 hop).
  kRing,      ///< MSS i adjacent to (i±1) mod n.
  kLine,      ///< A chain: i adjacent to i±1.
  kStar,      ///< MSS 0 is the hub; everyone else is a leaf.
};

const char* mss_topology_name(MssTopologyKind kind) noexcept;

class MssTopology {
 public:
  MssTopology(MssTopologyKind kind, u32 n_mss);

  MssTopologyKind kind() const noexcept { return kind_; }
  u32 n_mss() const noexcept { return static_cast<u32>(dist_.size()); }

  /// Wired hops between two MSSs (0 when a == b).
  u32 hops(MssId a, MssId b) const { return dist_.at(a).at(b); }

  /// Longest shortest path in the topology.
  u32 diameter() const noexcept { return diameter_; }

 private:
  MssTopologyKind kind_;
  std::vector<std::vector<u32>> dist_;
  u32 diameter_ = 0;
};

}  // namespace mobichk::net
