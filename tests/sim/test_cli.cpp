#include "sim/cli.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

namespace mobichk::sim {
namespace {

ArgParser parse(std::initializer_list<const char*> argv_tail) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), argv_tail.begin(), argv_tail.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, EqualsSyntax) {
  const auto args = parse({"--length=5000", "--name=hello"});
  EXPECT_DOUBLE_EQ(args.get_f64("length", 0.0), 5000.0);
  EXPECT_EQ(args.get_string("name", ""), "hello");
}

TEST(ArgParser, SpaceSyntax) {
  const auto args = parse({"--seeds", "7", "--title", "abc"});
  EXPECT_EQ(args.get_u64("seeds", 0), 7u);
  EXPECT_EQ(args.get_string("title", ""), "abc");
}

TEST(ArgParser, BareFlagIsTrue) {
  const auto args = parse({"--verify", "--csv"});
  EXPECT_TRUE(args.get_flag("verify"));
  EXPECT_TRUE(args.get_flag("csv"));
  EXPECT_FALSE(args.get_flag("json"));
}

TEST(ArgParser, FlagFollowedByFlagDoesNotSwallow) {
  const auto args = parse({"--verify", "--seeds=3"});
  EXPECT_TRUE(args.get_flag("verify"));
  EXPECT_EQ(args.get_u64("seeds", 0), 3u);
}

TEST(ArgParser, DefaultsWhenMissing) {
  const auto args = parse({});
  EXPECT_DOUBLE_EQ(args.get_f64("x", 1.25), 1.25);
  EXPECT_EQ(args.get_u64("y", 9), 9u);
  EXPECT_EQ(args.get_u32("z", 4), 4u);
  EXPECT_EQ(args.get_string("s", "d"), "d");
  EXPECT_FALSE(args.has("x"));
}

TEST(ArgParser, PositionalArguments) {
  const auto args = parse({"run", "--seed=1", "extra"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "run");
  EXPECT_EQ(args.positional()[1], "extra");
  EXPECT_EQ(args.get_u64("seed", 0), 1u);
}

TEST(ArgParser, ExplicitBooleanValues) {
  const auto args = parse({"--a=true", "--b=1", "--c=yes", "--d=false"});
  EXPECT_TRUE(args.get_flag("a"));
  EXPECT_TRUE(args.get_flag("b"));
  EXPECT_TRUE(args.get_flag("c"));
  EXPECT_FALSE(args.get_flag("d"));
}

TEST(ArgParser, LastValueWins) {
  const auto args = parse({"--seed=1", "--seed=2"});
  EXPECT_EQ(args.get_u64("seed", 0), 2u);
}

TEST(ArgParser, NegativeNumbersViaEquals) {
  const auto args = parse({"--offset=-3.5"});
  EXPECT_DOUBLE_EQ(args.get_f64("offset", 0.0), -3.5);
}

TEST(ArgParser, RejectsTrailingGarbageInNumbers) {
  // "--seeds=5x" used to silently parse as 5; the error names the flag.
  const auto args = parse({"--seeds=5x", "--precision=0.04.1"});
  try {
    args.get_u32("seeds", 1);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--seeds"), std::string::npos) << e.what();
  }
  EXPECT_THROW(args.get_f64("precision", 0.0), std::invalid_argument);
}

TEST(ArgParser, RejectsNegativeUnsignedValues) {
  // std::stoull would wrap "-5" to 2^64 - 5; the parser must refuse it.
  const auto args = parse({"--max-seeds=-5"});
  EXPECT_THROW(args.get_u32("max-seeds", 1), std::invalid_argument);
  EXPECT_THROW(args.get_u64("max-seeds", 1), std::invalid_argument);
}

TEST(ArgParser, RejectsNonNumericText) {
  const auto args = parse({"--batch=lots"});
  EXPECT_THROW(args.get_u32("batch", 1), std::invalid_argument);
  EXPECT_THROW(args.get_f64("batch", 1.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// FlagSet: the registered-flag schema on top of ArgParser
// ---------------------------------------------------------------------------

FlagSet demo_flags() {
  FlagSet fs("demo [flags]");
  fs.add("seeds", FlagType::kUInt, "3", "replication count")
      .add("precision", FlagType::kNumber, "0.04", "target relative CI")
      .add("title", FlagType::kString, "", "figure title")
      .add("csv", FlagType::kBool, "", "emit CSV");
  return fs;
}

ArgParser schema_parse(const FlagSet& fs, std::initializer_list<const char*> argv_tail) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), argv_tail.begin(), argv_tail.end());
  return fs.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagSet, AcceptsRegisteredFlags) {
  const auto args = schema_parse(demo_flags(), {"--seeds=7", "--precision", "0.01", "--csv"});
  EXPECT_EQ(args.get_u64("seeds", 0), 7u);
  EXPECT_DOUBLE_EQ(args.get_f64("precision", 0.0), 0.01);
  EXPECT_TRUE(args.get_flag("csv"));
}

TEST(FlagSet, HelpIsAlwaysRegistered) {
  const auto args = schema_parse(demo_flags(), {"--help"});
  EXPECT_TRUE(args.get_flag("help"));
}

TEST(FlagSet, RejectsUnknownFlagWithSuggestion) {
  try {
    schema_parse(demo_flags(), {"--seedz=7"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown flag --seedz"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean --seeds?"), std::string::npos) << what;
    EXPECT_NE(what.find("--help"), std::string::npos) << what;
  }
}

TEST(FlagSet, SuggestsUniquePrefixExtension) {
  // "--prec" is a prefix of a registered flag; that beats edit distance.
  EXPECT_EQ(demo_flags().suggest("prec"), "precision");
  EXPECT_EQ(demo_flags().suggest("sed"), "seeds");      // distance 2
  EXPECT_EQ(demo_flags().suggest("zzzzzzzz"), "");      // nothing close
}

TEST(FlagSet, UnknownFlagWithNoNeighborOmitsSuggestion) {
  try {
    schema_parse(demo_flags(), {"--zzzzzzzz=1"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()).find("did you mean"), std::string::npos) << e.what();
  }
}

TEST(FlagSet, EagerlyValidatesNumericValues) {
  // The PR 2 trailing-garbage fix must hold on the schema path too:
  // "--seeds=5x" fails at parse() naming the flag, not later at get_u64.
  try {
    schema_parse(demo_flags(), {"--seeds=5x"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--seeds"), std::string::npos) << e.what();
  }
  EXPECT_THROW(schema_parse(demo_flags(), {"--precision=0.04.1"}), std::invalid_argument);
  EXPECT_THROW(schema_parse(demo_flags(), {"--seeds=-5"}), std::invalid_argument);
}

TEST(FlagSet, DuplicateRegistrationThrows) {
  FlagSet fs("dup [flags]");
  fs.add("seeds", FlagType::kUInt, "3", "replication count");
  EXPECT_THROW(fs.add("seeds", FlagType::kString, "", "again"), std::logic_error);
  EXPECT_THROW(fs.add("help", FlagType::kBool, "", "shadows the builtin"), std::logic_error);
}

TEST(FlagSet, HelpPageListsEveryFlagAndDefault) {
  std::ostringstream os;
  demo_flags().print_help(os);
  const std::string page = os.str();
  EXPECT_NE(page.find("usage: demo [flags]"), std::string::npos);
  for (const char* needle : {"--help", "--seeds=<uint>", "--precision=<number>",
                             "--title=<string>", "--csv", "(default: 3)", "(default: 0.04)",
                             "replication count"}) {
    EXPECT_NE(page.find(needle), std::string::npos) << needle;
  }
  // Boolean flags take no =<type> suffix.
  EXPECT_EQ(page.find("--csv=<"), std::string::npos);
}

}  // namespace
}  // namespace mobichk::sim
