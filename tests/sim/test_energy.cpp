#include "sim/energy.hpp"

#include <gtest/gtest.h>

namespace mobichk::sim {
namespace {

TEST(EnergyConfig, RejectsNegativeCoefficients) {
  EnergyConfig cfg;
  cfg.tx_per_byte = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(EnergyConfig{}.validate());
}

TEST(EnergyBreakdown, HandComputedCase) {
  EnergyConfig cfg;
  cfg.tx_per_byte = 1.0;
  cfg.rx_per_byte = 0.5;
  cfg.per_message = 10.0;
  cfg.per_checkpoint = 100.0;
  cfg.control_message_bytes = 8;

  net::NetworkStats stats;
  stats.app_sent = 2;
  stats.app_delivered = 2;
  stats.payload_bytes = 200;  // 100 per message
  stats.control_messages = 3;

  ProtocolRunStats proto;
  proto.piggyback_bytes = 20;  // 10 per message
  proto.control_messages = 1;
  proto.storage_wireless_bytes = 1000;
  proto.n_tot = 4;
  proto.initial = 2;

  const EnergyBreakdown e = estimate_energy(cfg, stats, proto);
  // payload: 200 tx + 2 deliveries x 100 B x 0.5 rx = 300.
  EXPECT_DOUBLE_EQ(e.app_payload, 300.0);
  // control info: 20 tx + 2 x 10 x 0.5 = 30.
  EXPECT_DOUBLE_EQ(e.control_info, 30.0);
  // control messages: 4 x (8 x 1.5 + 10) = 88.
  EXPECT_DOUBLE_EQ(e.control_messages, 88.0);
  // checkpoints: 1000 tx + 6 x 100 = 1600.
  EXPECT_DOUBLE_EQ(e.checkpoint_upload, 1600.0);
  // wake-ups: (2 + 2) x 10 = 40.
  EXPECT_DOUBLE_EQ(e.message_overhead, 40.0);
  EXPECT_DOUBLE_EQ(e.total(), 300.0 + 30.0 + 88.0 + 1600.0 + 40.0);
  EXPECT_DOUBLE_EQ(e.checkpointing_total(), 30.0 + 88.0 + 1600.0);
}

TEST(Energy, ProtocolsRankAsExpectedOnARealRun) {
  SimConfig cfg;
  cfg.sim_length = 20'000.0;
  cfg.t_switch = 1'000.0;
  cfg.p_switch = 0.8;
  cfg.seed = 5;
  ExperimentOptions opts;
  opts.with_storage = true;
  // The 10x control-byte pin below is the paper-literal dense TP cost;
  // the sparse default would ship less than that.
  opts.params.tp_encoding = core::TpEncoding::kDense;
  const RunResult r = run_experiment(cfg, opts);

  const EnergyConfig ecfg;
  const EnergyBreakdown tp = estimate_energy(ecfg, r.net, r.by_name("TP"));
  const EnergyBreakdown bcs = estimate_energy(ecfg, r.net, r.by_name("BCS"));
  const EnergyBreakdown qbc = estimate_energy(ecfg, r.net, r.by_name("QBC"));

  // Identical application traffic across paired protocols...
  EXPECT_DOUBLE_EQ(tp.app_payload, bcs.app_payload);
  EXPECT_DOUBLE_EQ(tp.message_overhead, qbc.message_overhead);
  // ...but checkpointing energy ranks TP > BCS >= QBC.
  EXPECT_GT(tp.checkpointing_total(), bcs.checkpointing_total());
  EXPECT_GE(bcs.checkpointing_total(), qbc.checkpointing_total());
  // 2n u32s vs one u64: exactly 10x control bytes with n = 10 hosts.
  EXPECT_DOUBLE_EQ(tp.control_info, 10.0 * bcs.control_info);
}

}  // namespace
}  // namespace mobichk::sim
