// Mobile-host energy accounting (paper §2.1 point e).
//
// Converts a run's substrate and protocol statistics into an energy
// estimate for the MH radios: payload traffic, piggybacked control
// information, dedicated control messages, and checkpoint-state uploads
// each get their own line, so protocols can be compared on the resource
// the paper says checkpointing must conserve.
//
// The default coefficients are ballpark figures for an early-2000s WLAN
// radio (~1 uJ per transmitted byte, half that on receive, a fixed
// wake-up cost per message) — absolute values are not the point, the
// per-protocol *differences* are.
#pragma once

#include "des/types.hpp"
#include "net/network.hpp"
#include "sim/experiment.hpp"

namespace mobichk::sim {

struct EnergyConfig {
  f64 tx_per_byte = 1.0e-6;        ///< J per byte transmitted by an MH.
  f64 rx_per_byte = 0.5e-6;        ///< J per byte received by an MH.
  f64 per_message = 1.0e-4;        ///< Radio wake-up cost per wireless message.
  f64 per_checkpoint = 2.0e-3;     ///< Fixed cost to assemble/cut one checkpoint.
  u32 control_message_bytes = 64;  ///< Size of a dedicated control message.

  void validate() const;
};

/// Energy spent by all MHs together over one run, split by cause.
struct EnergyBreakdown {
  f64 app_payload = 0.0;       ///< Application bytes, sent + received.
  f64 control_info = 0.0;      ///< Piggybacked checkpointing information.
  f64 control_messages = 0.0;  ///< Dedicated messages (handoff, markers, ...).
  f64 checkpoint_upload = 0.0; ///< State transferred to MSS stable storage.
  f64 message_overhead = 0.0;  ///< Per-message radio wake-ups.

  f64 total() const noexcept {
    return app_payload + control_info + control_messages + checkpoint_upload + message_overhead;
  }

  /// Energy attributable to checkpointing alone (everything the protocol
  /// adds on top of the application's own traffic).
  f64 checkpointing_total() const noexcept {
    return control_info + control_messages + checkpoint_upload;
  }
};

/// Estimates the fleet-wide energy of one protocol's run. `stats` is the
/// substrate's view (shared across paired protocols); `protocol` supplies
/// the per-protocol piggyback/control/storage numbers.
EnergyBreakdown estimate_energy(const EnergyConfig& cfg, const net::NetworkStats& stats,
                                const ProtocolRunStats& protocol);

}  // namespace mobichk::sim
