#include "des/sorted_list_queue.hpp"

#include <algorithm>
#include <cassert>

namespace mobichk::des {

EventHandle SortedListQueue::push(EventEntry entry) {
  const EventHandle handle = slots_.acquire();
  entry.slot = handle.slot;
  const auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), entry,
      [](const EventEntry& a, const EventEntry& b) { return b < a; });
  entries_.insert(pos, std::move(entry));
  return handle;
}

EventEntry SortedListQueue::pop() {
  assert(!entries_.empty() && "pop() on empty queue");
  EventEntry out = std::move(entries_.back());
  entries_.pop_back();
  slots_.release(out.slot);
  return out;
}

Time SortedListQueue::peek_time() {
  assert(!entries_.empty() && "peek_time() on empty queue");
  return entries_.back().time;
}

Time SortedListQueue::peek_time_below(Time bound) {
  // The eager oracle carries no tombstones, so the probe is a pure read.
  if (entries_.empty()) return kNoEventBelow;
  const Time t = entries_.back().time;
  return t < bound ? t : kNoEventBelow;
}

bool SortedListQueue::cancel(EventHandle handle) {
  // Eager: validate the handle against the slot table, then physically
  // remove the entry — the oracle never carries tombstones.
  if (!slots_.cancel(handle)) return false;
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const EventEntry& e) { return e.slot == handle.slot; });
  assert(it != entries_.end() && "slot table and entry list out of sync");
  entries_.erase(it);
  slots_.release(handle.slot);
  return true;
}

}  // namespace mobichk::des
