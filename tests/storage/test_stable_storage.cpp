// Stable-storage service models: the infinite (paper) model is free, the
// contention model matches an analytic single-writer FIFO oracle exactly,
// devices are independent across MSSs, and reads and writes share one
// queue per device.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "storage/stable_storage.hpp"

namespace mobichk::storage {
namespace {

TEST(StableStorageNames, RoundTrip) {
  for (const StableStorageKind kind :
       {StableStorageKind::kInfinite, StableStorageKind::kContention}) {
    StableStorageKind parsed{};
    ASSERT_TRUE(parse_stable_storage_kind(stable_storage_kind_name(kind), parsed));
    EXPECT_EQ(parsed, kind);
  }
  StableStorageKind out{};
  EXPECT_FALSE(parse_stable_storage_kind("ramdisk", out));
}

TEST(InfiniteStableStorage, EveryOperationIsFree) {
  InfiniteStableStorage disk;
  EXPECT_EQ(disk.kind(), StableStorageKind::kInfinite);
  const ServiceResult w = disk.write(0, 1'000'000, 12.5);
  EXPECT_DOUBLE_EQ(w.done, 12.5);
  EXPECT_DOUBLE_EQ(w.queue_delay, 0.0);
  const ServiceResult r = disk.read(0, 1'000'000, 12.5);  // same instant: no queueing
  EXPECT_DOUBLE_EQ(r.done, 12.5);
  EXPECT_DOUBLE_EQ(r.queue_delay, 0.0);
  EXPECT_EQ(disk.stats().writes, 1u);
  EXPECT_EQ(disk.stats().reads, 1u);
  EXPECT_EQ(disk.stats().bytes_written, 1'000'000u);
  EXPECT_EQ(disk.stats().bytes_read, 1'000'000u);
  EXPECT_DOUBLE_EQ(disk.stats().service_time, 0.0);
  EXPECT_DOUBLE_EQ(disk.stats().queue_delay, 0.0);
}

/// The analytic oracle for one FIFO device of fixed bandwidth: an op
/// admitted at `now` starts at max(now, busy), holds the device for
/// bytes / bandwidth, and its queue delay is the wait before the start.
struct SingleWriterOracle {
  f64 bandwidth;
  f64 busy = 0.0;

  ServiceResult admit(u64 bytes, f64 now) {
    const f64 start = std::max(now, busy);
    const f64 service = static_cast<f64>(bytes) / bandwidth;
    busy = start + service;
    return ServiceResult{busy, start - now};
  }
};

TEST(ContentionStableStorage, MatchesAnalyticSingleWriterOracle) {
  constexpr f64 kBandwidth = 250.0;
  ContentionStableStorage disk(1, kBandwidth);
  SingleWriterOracle oracle{kBandwidth};
  // An irregular admission pattern: bursts that queue up, then a gap the
  // device drains through, then more load. Reads and writes interleave —
  // the device does not care which direction the bytes flow.
  const struct {
    f64 t;
    u64 bytes;
    bool is_write;
  } ops[] = {
      {0.0, 500, true},   {0.0, 250, true},  {0.5, 125, false}, {3.0, 1'000, true},
      {3.1, 50, false},   {10.0, 25, true},  {10.0, 25, false}, {10.0, 25, true},
      {40.0, 2'000, true}, {41.0, 10, false},
  };
  f64 expected_queue = 0.0;
  f64 expected_service = 0.0;
  for (const auto& op : ops) {
    const ServiceResult want = oracle.admit(op.bytes, op.t);
    const ServiceResult got =
        op.is_write ? disk.write(0, op.bytes, op.t) : disk.read(0, op.bytes, op.t);
    EXPECT_DOUBLE_EQ(got.done, want.done) << "op at t=" << op.t;
    EXPECT_DOUBLE_EQ(got.queue_delay, want.queue_delay) << "op at t=" << op.t;
    expected_queue += want.queue_delay;
    expected_service += static_cast<f64>(op.bytes) / kBandwidth;
  }
  EXPECT_DOUBLE_EQ(disk.busy_until(0), oracle.busy);
  EXPECT_DOUBLE_EQ(disk.stats().queue_delay, expected_queue);
  EXPECT_DOUBLE_EQ(disk.stats().service_time, expected_service);
  EXPECT_EQ(disk.stats().writes + disk.stats().reads, 10u);
}

TEST(ContentionStableStorage, DevicesAreIndependentPerMss) {
  ContentionStableStorage disk(3, 100.0);
  // Saturate MSS 0; MSS 2 must still serve at wire speed.
  (void)disk.write(0, 10'000, 0.0);
  const ServiceResult other = disk.write(2, 100, 0.0);
  EXPECT_DOUBLE_EQ(other.done, 1.0);
  EXPECT_DOUBLE_EQ(other.queue_delay, 0.0);
  const ServiceResult same = disk.write(0, 100, 0.0);
  EXPECT_DOUBLE_EQ(same.queue_delay, 100.0);  // waits out the 10'000-byte write
}

TEST(ContentionStableStorage, RejectsNonPositiveBandwidth) {
  EXPECT_THROW(ContentionStableStorage(1, 0.0), std::invalid_argument);
  EXPECT_THROW(ContentionStableStorage(1, -5.0), std::invalid_argument);
}

TEST(StableStorageFactory, BuildsTheRequestedModel) {
  const auto infinite = make_stable_storage(StableStorageKind::kInfinite, 4, 100.0);
  EXPECT_EQ(infinite->kind(), StableStorageKind::kInfinite);
  const auto contention = make_stable_storage(StableStorageKind::kContention, 4, 100.0);
  EXPECT_EQ(contention->kind(), StableStorageKind::kContention);
}

}  // namespace
}  // namespace mobichk::storage
