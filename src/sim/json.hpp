// Minimal JSON support for structured experiment output.
//
// JsonWriter is a streaming emitter: enough to serialize run results and
// figure tables for downstream tooling, with correct string escaping and
// non-finite-number handling. JsonValue/json_parse is the matching
// reader, just big enough to round-trip what the writer emits (specs and
// reports); it is not a general-purpose JSON library.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "des/types.hpp"

namespace mobichk::sim {

/// Streaming JSON writer with explicit begin/end nesting.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, bool pretty = true) : os_(os), pretty_(pretty) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by a value or a begin_*.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(f64 v);
  JsonWriter& value(u64 v);
  JsonWriter& value(i64 v);
  JsonWriter& value(u32 v) { return value(static_cast<u64>(v)); }
  JsonWriter& value(int v) { return value(static_cast<i64>(v)); }
  JsonWriter& value(bool v);

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  void separator();
  void newline();
  void escape(std::string_view s);

  struct Level {
    bool is_array = false;
    bool has_items = false;
  };

  std::ostream& os_;
  bool pretty_;
  bool pending_key_ = false;
  std::vector<Level> stack_;
};

/// Parsed JSON value. Numbers are kept as f64 plus the raw source token
/// (number_text): as_u64 re-parses the token when it is a plain integer,
/// so values above 2^53 — trace hashes — survive a parse round-trip
/// exactly instead of being squeezed through the double.
struct JsonValue {
  enum class Kind : u8 { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  f64 number = 0.0;
  std::string number_text;  ///< Raw numeric token (kNumber from json_parse only).
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  ///< Insertion order preserved.

  bool is_null() const noexcept { return kind == Kind::kNull; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const noexcept;
  /// Object member lookup; throws std::out_of_range when absent.
  const JsonValue& at(std::string_view key) const;

  /// Typed accessors; throw std::invalid_argument on a kind mismatch.
  f64 as_f64() const;
  u64 as_u64() const;
  bool as_bool() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
};

/// Parses one JSON document (object, array or scalar); trailing
/// non-whitespace and malformed input throw std::invalid_argument.
JsonValue json_parse(std::string_view text);

}  // namespace mobichk::sim
