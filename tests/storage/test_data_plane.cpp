// Checkpoint data-plane semantics, pinned at the unit level against
// closed-form oracles: incremental pricing, pre/post-copy migration
// phase accounting, locality decay under frozen placement, and the
// recovery fetch bill — plus a run-level check that executed recovery
// gets measurably slower when the image is far away or the disk is busy.
#include <gtest/gtest.h>

#include <cmath>

#include "des/simulator.hpp"
#include "net/topology.hpp"
#include "sim/experiment.hpp"
#include "storage/data_plane.hpp"

namespace mobichk::storage {
namespace {

constexpr f64 kWirelessLat = 0.005;
constexpr f64 kWiredLat = 0.01;

DataPlaneConfig enabled_config() {
  DataPlaneConfig cfg;
  cfg.enabled = true;
  return cfg;
}

struct PlaneFixture {
  des::Simulator sim;
  net::MssTopology topology;
  DataPlane plane;

  PlaneFixture(DataPlaneConfig cfg, net::MssTopologyKind kind = net::MssTopologyKind::kLine,
               u32 n_mss = 5, u32 n_hosts = 4)
      : topology(kind, n_mss), plane(sim, topology, cfg, n_hosts, kWirelessLat, kWiredLat) {}
};

TEST(DataPlaneNames, MigrationStrategyRoundTrip) {
  for (const MigrationStrategy s :
       {MigrationStrategy::kNone, MigrationStrategy::kPreCopy, MigrationStrategy::kPostCopy}) {
    MigrationStrategy parsed{};
    ASSERT_TRUE(parse_migration_strategy(migration_strategy_name(s), parsed));
    EXPECT_EQ(parsed, s);
  }
  MigrationStrategy out{};
  EXPECT_FALSE(parse_migration_strategy("teleport", out));
}

TEST(DataPlaneConfigTest, ValidateRejectsBadKnobs) {
  DataPlaneConfig cfg = enabled_config();
  cfg.full_state_bytes = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = enabled_config();
  cfg.storage_bandwidth = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = enabled_config();
  cfg.precopy_stop_fraction = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(DataPlanePricing, FirstCheckpointIsFullThenDirtyDelta) {
  DataPlaneConfig cfg = enabled_config();
  cfg.model = StableStorageKind::kInfinite;
  PlaneFixture f(cfg);
  const u64 first = f.plane.on_checkpoint(0, 0, 10.0, 0);
  EXPECT_EQ(first, cfg.full_state_bytes);  // nothing to diff against
  const f64 dt = 25.0;
  const u64 second = f.plane.on_checkpoint(0, 0, 10.0 + dt, 0);
  const u64 want = static_cast<u64>(std::ceil(static_cast<f64>(cfg.full_state_bytes) *
                                              (1.0 - std::exp(-cfg.dirty_rate * dt))));
  EXPECT_EQ(second, want);
  EXPECT_LT(second, first);
  EXPECT_EQ(f.plane.stats().checkpoints, 2u);
  EXPECT_EQ(f.plane.stats().upload_bytes, first + second);
  EXPECT_EQ(f.plane.stats().full_bytes, 2 * cfg.full_state_bytes);
}

TEST(DataPlanePricing, DenseModeUploadsTheFullImageEveryTime) {
  DataPlaneConfig cfg = enabled_config();
  cfg.incremental = false;
  cfg.model = StableStorageKind::kInfinite;
  PlaneFixture f(cfg);
  EXPECT_EQ(f.plane.on_checkpoint(0, 0, 10.0, 0), cfg.full_state_bytes);
  EXPECT_EQ(f.plane.on_checkpoint(0, 0, 11.0, 0), cfg.full_state_bytes);
  // The dense-equivalent account equals the actual upload account: the
  // differential the abl/figure benches report is exactly this gap.
  EXPECT_EQ(f.plane.stats().upload_bytes, f.plane.stats().full_bytes);
}

TEST(DataPlanePlacement, FirstImageLandsAtTheWritingMssAndFreezesUnderNone) {
  DataPlaneConfig cfg = enabled_config();
  cfg.migration = MigrationStrategy::kNone;
  cfg.model = StableStorageKind::kInfinite;
  PlaneFixture f(cfg);
  EXPECT_EQ(f.plane.placement(0), net::kNoMss);
  (void)f.plane.on_checkpoint(0, 1, 5.0, 0);
  EXPECT_EQ(f.plane.placement(0), 1u);
  // The host drifts down the line; the image stays put and every handoff
  // samples a growing hop distance.
  f.plane.on_handoff(0, 1, 2, 10.0);
  f.plane.on_handoff(0, 2, 3, 20.0);
  f.plane.on_handoff(0, 3, 4, 30.0);
  EXPECT_EQ(f.plane.placement(0), 1u);
  // Samples: checkpoint @hops 0, handoffs @1, @2, @3.
  EXPECT_EQ(f.plane.stats().locality_samples, 4u);
  EXPECT_EQ(f.plane.stats().locality_hops, 0u + 1u + 2u + 3u);
  EXPECT_DOUBLE_EQ(f.plane.stats().mean_locality(), 6.0 / 4.0);
  EXPECT_EQ(f.plane.stats().migrations, 0u);
}

TEST(DataPlaneMigration, PreCopyStallIsTheFinalStopAndCopyOnly) {
  DataPlaneConfig cfg = enabled_config();
  cfg.model = StableStorageKind::kInfinite;
  cfg.migration = MigrationStrategy::kPreCopy;
  cfg.dirty_rate = 0.0;  // nothing re-dirties: one round copies everything
  PlaneFixture f(cfg);
  (void)f.plane.on_checkpoint(0, 0, 5.0, 0);
  f.plane.on_handoff(0, 0, 1, 10.0);  // 1 wired hop on the line
  const DataPlaneStats& s = f.plane.stats();
  EXPECT_EQ(s.migrations, 1u);
  // Round 1 copies the full image in the background; the residual dirty
  // set is empty, so the stop-and-copy stall is just the control latency.
  EXPECT_EQ(s.migration_bytes, cfg.full_state_bytes);
  EXPECT_DOUBLE_EQ(s.migration_copy_time,
                   kWiredLat + static_cast<f64>(cfg.full_state_bytes) / cfg.wired_bandwidth);
  EXPECT_DOUBLE_EQ(s.migration_stall, kWiredLat);
  EXPECT_EQ(f.plane.placement(0), 1u);
}

TEST(DataPlaneMigration, PostCopyFlipsPlacementAndBackFills) {
  DataPlaneConfig cfg = enabled_config();
  cfg.model = StableStorageKind::kInfinite;
  cfg.migration = MigrationStrategy::kPostCopy;
  PlaneFixture f(cfg);
  (void)f.plane.on_checkpoint(0, 0, 5.0, 0);
  f.plane.on_handoff(0, 0, 2, 10.0);  // 2 wired hops on the line
  const DataPlaneStats& s = f.plane.stats();
  const f64 lat = 2.0 * kWiredLat;
  EXPECT_EQ(s.migrations, 1u);
  EXPECT_EQ(s.migration_bytes, cfg.full_state_bytes);
  EXPECT_DOUBLE_EQ(s.migration_stall, lat);  // one control round-trip
  EXPECT_DOUBLE_EQ(s.migration_copy_time,
                   lat + static_cast<f64>(cfg.full_state_bytes) / cfg.wired_bandwidth);
  EXPECT_EQ(f.plane.placement(0), 2u);
}

TEST(DataPlaneMigration, PreCopyRoundsShrinkGeometricallyUnderDirtying) {
  DataPlaneConfig cfg = enabled_config();
  cfg.model = StableStorageKind::kInfinite;
  cfg.migration = MigrationStrategy::kPreCopy;
  // Dirtying fast enough that the residual is sizeable but shrinking:
  // total moved bytes must exceed one image (the rounds) and the stall
  // must be strictly below one full-image copy (the point of pre-copy).
  cfg.dirty_rate = 0.3;
  PlaneFixture f(cfg);
  (void)f.plane.on_checkpoint(0, 0, 5.0, 0);
  f.plane.on_handoff(0, 0, 1, 10.0);
  const DataPlaneStats& s = f.plane.stats();
  EXPECT_GT(s.migration_bytes, cfg.full_state_bytes);
  const f64 full_copy = kWiredLat + static_cast<f64>(cfg.full_state_bytes) / cfg.wired_bandwidth;
  EXPECT_LT(s.migration_stall, full_copy);
  EXPECT_GT(s.migration_stall, 0.0);
}

TEST(DataPlaneFetch, LocalImageOnIdleDiskIsFree) {
  DataPlaneConfig cfg = enabled_config();
  cfg.model = StableStorageKind::kInfinite;
  PlaneFixture f(cfg);
  EXPECT_DOUBLE_EQ(f.plane.recovery_fetch(0, 3, 100.0), 0.0);  // no image yet
  (void)f.plane.on_checkpoint(0, 2, 5.0, 0);
  EXPECT_DOUBLE_EQ(f.plane.recovery_fetch(0, 2, 100.0), 0.0);
}

TEST(DataPlaneFetch, BillGrowsWithHopDistance) {
  DataPlaneConfig cfg = enabled_config();
  cfg.model = StableStorageKind::kInfinite;
  cfg.migration = MigrationStrategy::kNone;
  PlaneFixture f(cfg);
  (void)f.plane.on_checkpoint(0, 0, 5.0, 0);
  const f64 wire = static_cast<f64>(cfg.full_state_bytes) / cfg.wired_bandwidth;
  const f64 near = f.plane.recovery_fetch(0, 1, 100.0);
  const f64 far = f.plane.recovery_fetch(0, 4, 200.0);
  EXPECT_DOUBLE_EQ(near, 1.0 * kWiredLat + wire);
  EXPECT_DOUBLE_EQ(far, 4.0 * kWiredLat + wire);
  EXPECT_GT(far, near);
  EXPECT_EQ(f.plane.stats().fetches, 2u);
  EXPECT_EQ(f.plane.stats().fetch_hops, 5u);
}

TEST(DataPlaneFetch, BusyDiskDelaysTheRead) {
  DataPlaneConfig cfg = enabled_config();
  cfg.model = StableStorageKind::kContention;
  PlaneFixture f(cfg);
  (void)f.plane.on_checkpoint(0, 0, 5.0, 0);  // occupies the device of MSS 0
  const f64 read_service = static_cast<f64>(cfg.full_state_bytes) / cfg.storage_bandwidth;
  // Fetch immediately after the upload was admitted: the read queues
  // behind it, so the bill exceeds the pure device-read time.
  const f64 bill = f.plane.recovery_fetch(0, 0, 5.0);
  EXPECT_GT(bill, read_service);
  EXPECT_GT(f.plane.stats().queue_delay, 0.0);
}

// ---------------------------------------------------------------------------
// Run level: the fetch bill must show up in the measured outage.
// ---------------------------------------------------------------------------

sim::RunResult crashed_run(MigrationStrategy migration, StableStorageKind model) {
  sim::SimConfig cfg;
  cfg.sim_length = 8'000.0;
  cfg.t_switch = 150.0;  // drift far between checkpoints
  cfg.network.mss_topology = net::MssTopologyKind::kLine;
  cfg.seed = 7;
  cfg.faults.mode = sim::CrashMode::kCorrelated;
  cfg.faults.correlated = 4;
  cfg.faults.first_crash_at = 4'000.0;
  sim::ExperimentOptions opts;
  opts.protocols = {core::ProtocolKind::kBcs};
  opts.data_plane.enabled = true;
  opts.data_plane.migration = migration;
  opts.data_plane.model = model;
  opts.data_plane.wired_bandwidth = 2.0e4;  // slow backbone: distance dominates
  return sim::run_experiment(cfg, opts);
}

TEST(DataPlaneRecovery, ExecutedRecoverySlowsWithFetchDistance) {
  const sim::RunResult far = crashed_run(MigrationStrategy::kNone, StableStorageKind::kInfinite);
  const sim::RunResult near =
      crashed_run(MigrationStrategy::kPreCopy, StableStorageKind::kInfinite);
  ASSERT_GT(far.recovery.crashes_executed, 0u);
  ASSERT_GT(far.data_plane.fetch_hops, 0u);  // frozen placement drifted away
  EXPECT_EQ(near.data_plane.fetch_hops, 0u);  // precopy kept the image local
  EXPECT_GT(far.recovery.total_recovery_time, near.recovery.total_recovery_time);
}

TEST(DataPlaneRecovery, ExecutedRecoverySlowsUnderStorageContention) {
  const sim::RunResult idle =
      crashed_run(MigrationStrategy::kPreCopy, StableStorageKind::kInfinite);
  const sim::RunResult busy =
      crashed_run(MigrationStrategy::kPreCopy, StableStorageKind::kContention);
  ASSERT_GT(busy.recovery.crashes_executed, 0u);
  EXPECT_GT(busy.data_plane.queue_delay, 0.0);
  EXPECT_GT(busy.recovery.total_recovery_time, idle.recovery.total_recovery_time);
}

}  // namespace
}  // namespace mobichk::storage
