// Stable-storage model for checkpoints held at MSSs.
//
// Mobile-host local storage is vulnerable (paper §2.1 point a), so every
// checkpoint is transferred over the wireless link to the current MSS.
// This model accounts for that traffic and implements the incremental-
// checkpointing optimization of §2.2:
//
//  * Full mode: every checkpoint uploads the whole state S.
//  * Incremental mode: the upload carries only the state dirtied since the
//    previous checkpoint, modeled as  S * (1 - exp(-omega * dt));  if the
//    previous checkpoint lives at a *different* MSS (a cell switch
//    happened), the new MSS first fetches it over the wired network
//    (S bytes), exactly the "transfer operation" the paper describes.
#pragma once

#include <vector>

#include "des/relaxed_counter.hpp"
#include "des/types.hpp"
#include "net/ids.hpp"

namespace mobichk::core {

struct StorageConfig {
  u64 full_state_bytes = 1u << 20;  ///< S: full process state size.
  f64 dirty_rate = 0.01;            ///< omega: state-dirtying rate per tu.
  bool incremental = true;
  /// Keep the per-checkpoint upload sizes (needed by the GC byte
  /// accounting; off by default to stay O(1) memory per host).
  bool track_history = false;

  void validate() const;
};

class StorageModel {
 public:
  StorageModel(u32 n_hosts, u32 n_mss, StorageConfig cfg);

  /// Accounts for one checkpoint of `host` taken at time `now` and stored
  /// at MSS `location`; returns the upload size in bytes (stamped onto
  /// the CheckpointRecord by the protocol layer).
  u64 record_checkpoint(net::HostId host, net::MssId location, des::Time now);

  // -- aggregate accounting ---------------------------------------------
  u64 checkpoints_written() const noexcept { return writes_; }
  u64 wireless_bytes() const noexcept { return wireless_bytes_; }      ///< MH -> MSS uploads.
  u64 wired_transfer_bytes() const noexcept { return wired_bytes_; }   ///< MSS -> MSS fetches.
  u64 transfers() const noexcept { return transfers_; }                ///< Fetch operations.
  u64 bytes_stored_at(net::MssId mss) const { return per_mss_bytes_.at(mss); }

  /// Upload size of each checkpoint of `host`, in checkpoint-ordinal
  /// order. Requires cfg.track_history.
  const std::vector<u64>& upload_history(net::HostId host) const;

  const StorageConfig& config() const noexcept { return cfg_; }

 private:
  struct HostState {
    bool has_checkpoint = false;
    des::Time last_time = 0.0;
    net::MssId last_location = 0;
  };

  StorageConfig cfg_;
  std::vector<HostState> hosts_;
  std::vector<std::vector<u64>> history_;
  // Relaxed atomics: shard windows record checkpoints for different hosts
  // concurrently. Per-host state (and history) stays owner-local; these
  // aggregates — including per-MSS byte totals, since hosts of several
  // shards share a cell — are order-independent sums.
  std::vector<des::RelaxedCounter> per_mss_bytes_;
  des::RelaxedCounter writes_;
  des::RelaxedCounter wireless_bytes_;
  des::RelaxedCounter wired_bytes_;
  des::RelaxedCounter transfers_;
};

}  // namespace mobichk::core
