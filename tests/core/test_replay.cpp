#include "core/replay.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mobichk::core {
namespace {

CheckpointRecord member_at(net::MssId loc) {
  CheckpointRecord rec;
  rec.location = loc;
  return rec;
}

RollbackResult make_rollback(std::vector<const CheckpointRecord*> members,
                             std::vector<u64> line_pos, std::vector<u64> fail_pos) {
  RollbackResult rb;
  rb.line.members = std::move(members);
  rb.line.pos = std::move(line_pos);
  rb.fail_pos = std::move(fail_pos);
  rb.checkpoints_discarded.assign(rb.line.pos.size(), 0);
  return rb;
}

TEST(PlanRecovery, UntouchedSurvivorsDoNotParticipate) {
  const CheckpointRecord m0 = member_at(0);
  const auto rb = make_rollback({&m0, nullptr}, {5, 20}, {9, 20});
  MessageLog messages;
  const auto plan = plan_recovery(rb, messages, {true, false}, {0, 1}, 2);
  EXPECT_TRUE(plan.hosts[0].participates);
  EXPECT_TRUE(plan.hosts[0].crashed);
  EXPECT_FALSE(plan.hosts[1].participates);
  EXPECT_EQ(plan.hosts_down, 1u);
  EXPECT_EQ(plan.undone_events, 4u);
  EXPECT_DOUBLE_EQ(plan.completion, plan.hosts[0].ready_at);
}

TEST(PlanRecovery, RolledBackSurvivorParticipatesWithoutCrashing) {
  const CheckpointRecord m0 = member_at(0);
  const CheckpointRecord m1 = member_at(1);
  const auto rb = make_rollback({&m0, &m1}, {5, 10}, {9, 25});
  MessageLog messages;
  const auto plan = plan_recovery(rb, messages, {true, false}, {0, 1}, 2);
  EXPECT_TRUE(plan.hosts[1].participates);
  EXPECT_FALSE(plan.hosts[1].crashed);
  EXPECT_EQ(plan.hosts[1].undone_events, 15u);
  EXPECT_EQ(plan.hosts_down, 1u);
}

TEST(PlanRecovery, SameCellTransfersQueueFifo) {
  const CheckpointRecord m0 = member_at(0);
  const CheckpointRecord m1 = member_at(0);
  RecoveryTimeConfig cfg;
  cfg.state_bytes = 1000;
  cfg.wireless_bandwidth = 100.0;  // 10 tu per downlink transfer
  cfg.event_replay_time = 0.0;
  cfg.restart_overhead = 0.0;
  const auto rb = make_rollback({&m0, &m1}, {5, 5}, {5, 5});
  MessageLog messages;
  // Both restore in cell 0: the second host's image waits for the first.
  const auto plan = plan_recovery(rb, messages, {true, true}, {0, 0}, 2, cfg);
  const f64 xfer = cfg.wireless_latency + 10.0;
  EXPECT_NEAR(plan.hosts[0].restore_done - plan.estimate.coordination, xfer, 1e-9);
  EXPECT_NEAR(plan.hosts[1].restore_done - plan.estimate.coordination, 2.0 * xfer, 1e-9);
  // With each image stored in its own cell the downlinks run in parallel.
  const CheckpointRecord m1_local = member_at(1);
  const auto rb_par = make_rollback({&m0, &m1_local}, {5, 5}, {5, 5});
  const auto par = plan_recovery(rb_par, messages, {true, true}, {0, 1}, 2, cfg);
  EXPECT_NEAR(par.hosts[0].restore_done, par.hosts[1].restore_done, 1e-9);
  EXPECT_LT(par.completion, plan.completion);
}

TEST(PlanRecovery, PipelinedCompletionNeverExceedsThePhaseBarrierEstimate) {
  // The reconciliation invariant the crash engine relies on: when every
  // crashed host restores from a stored member, per-host pipelining can
  // only improve on the analytical estimate's global phase barriers.
  const CheckpointRecord m0 = member_at(0);
  const CheckpointRecord m1 = member_at(1);
  const CheckpointRecord m2 = member_at(0);
  RecoveryTimeConfig cfg;
  cfg.state_bytes = 2000;
  cfg.wireless_bandwidth = 100.0;
  cfg.event_replay_time = 0.5;
  const auto rb =
      make_rollback({&m0, &m1, &m2}, {10, 40, 0}, {30, 50, 45});
  MessageLog messages;
  const auto plan = plan_recovery(rb, messages, {true, true, true}, {0, 1, 1}, 2, cfg);
  EXPECT_LE(plan.completion, plan.estimate.total() + 1e-9);
  EXPECT_GT(plan.completion, 0.0);
}

TEST(PlanRecovery, ReplayCountsOnlyUndoneDeliveriesOfParticipants) {
  const CheckpointRecord m0 = member_at(0);
  const auto rb = make_rollback({&m0, nullptr}, {5, 20}, {12, 20});
  MessageLog messages;
  messages.note_send(1, 1, 0, 3);
  messages.note_receive(1, 4, 0);  // received at pos 4 <= line: state kept
  messages.note_send(2, 1, 0, 6);
  messages.note_receive(2, 8, 0);  // undone: 5 < 8 <= 12 — replayed
  messages.note_send(3, 1, 0, 9);
  messages.note_receive(3, 14, 0);  // past the failure cut: never happened
  messages.note_send(4, 0, 1, 2);
  messages.note_receive(4, 10, 0);  // delivered to a non-participant
  const auto plan = plan_recovery(rb, messages, {true, false}, {0, 0}, 1);
  EXPECT_EQ(plan.replayed_messages, 1u);
  EXPECT_EQ(plan.hosts[0].replayed_messages, 1u);
  EXPECT_EQ(plan.hosts[1].replayed_messages, 0u);
}

TEST(PlanRecovery, EmptyPlanIsAllZero) {
  const auto rb = make_rollback({}, {}, {});
  MessageLog messages;
  const auto plan = plan_recovery(rb, messages, {}, {}, 0);
  EXPECT_EQ(plan.hosts_down, 0u);
  EXPECT_EQ(plan.undone_events, 0u);
  EXPECT_DOUBLE_EQ(plan.completion, 0.0);
  EXPECT_DOUBLE_EQ(plan.estimate.total(), 0.0);
}

TEST(PlanRecovery, Validation) {
  const auto rb = make_rollback({nullptr}, {5}, {9});
  MessageLog messages;
  EXPECT_THROW(plan_recovery(rb, messages, {true, false}, {0}, 1), std::invalid_argument);
  EXPECT_THROW(plan_recovery(rb, messages, {true}, {0, 0}, 1), std::invalid_argument);
  auto bad = make_rollback({nullptr}, {9}, {5});  // line above the cut
  EXPECT_THROW(plan_recovery(bad, messages, {true}, {0}, 1), std::logic_error);
}

}  // namespace
}  // namespace mobichk::core
