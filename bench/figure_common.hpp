// Shared harness for the paper-figure benches (Figures 1-6 of the paper).
//
// Each figN binary reproduces one figure: N_tot as a function of T_switch
// for TP, BCS and QBC under one (P_switch, H) combination, replicated
// adaptively until each point's 95% CI is tight enough, printed as a
// table plus the headline gains. Flags:
//   --length=<tu>     simulation horizon per run            (default 1000000)
//   --precision=<rel> target relative CI half-width         (default 0.04)
//   --min-seeds=<n>   replications always run per point     (default 3)
//   --max-seeds=<n>   replication cap per point             (default 16)
//   --batch=<n>       replications per adaptive round       (default auto)
//   --seeds=<n>       fixed replication count (min = max = n)
//   --seed-base=<n>   replication seed root                 (default 42)
//   --threads=<n>     worker threads                        (default hardware)
//   --csv             additionally emit CSV rows
#pragma once

#include <cstdio>
#include <iostream>

#include "sim/cli.hpp"
#include "sim/sweep.hpp"

namespace mobichk::bench {

struct FigureParams {
  const char* title;
  f64 p_switch;
  f64 heterogeneity;
};

inline int run_paper_figure(const FigureParams& params, int argc, char** argv) {
  const sim::ArgParser args(argc, argv);

  sim::FigureSpec spec;
  spec.title = params.title;
  spec.base.sim_length = args.get_f64("length", 1'000'000.0);
  spec.base.p_switch = params.p_switch;
  spec.base.heterogeneity = params.heterogeneity;
  sim::apply_cli_flags(spec, args);

  const sim::FigureResult result =
      sim::run_figure(spec, sim::ExperimentOptions{}, args.get_u32("threads", 0));

  result.print(std::cout);
  std::printf("\nheadline gains (percent of the larger protocol's N_tot):\n");
  std::printf("%10s %12s %12s\n", "Tswitch", "TP->BCS", "BCS->QBC");
  f64 max_tp_gain = 0.0, max_qbc_gain = 0.0;
  for (usize p = 0; p < result.t_switch_values.size(); ++p) {
    const f64 g1 = result.gain_percent(p, 0, 1);
    const f64 g2 = result.gain_percent(p, 1, 2);
    max_tp_gain = std::max(max_tp_gain, g1);
    max_qbc_gain = std::max(max_qbc_gain, g2);
    std::printf("%10.0f %11.1f%% %11.1f%%\n", result.t_switch_values[p], g1, g2);
  }
  std::printf("max gain TP->BCS: %.1f%%   max gain BCS->QBC: %.1f%%\n", max_tp_gain,
              max_qbc_gain);
  std::printf("replication spread: max half-spread %.1f%% of the mean (paper: within 4%%)\n",
              100.0 * result.max_relative_spread());
  if (args.get_flag("csv")) {
    std::printf("\n");
    result.write_csv(std::cout);
  }
  return 0;
}

}  // namespace mobichk::bench
