#include "des/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "des/distributions.hpp"
#include "des/rng.hpp"

namespace mobichk::des {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(5);
  EXPECT_EQ(c.value(), 6u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Tally, KnownValues) {
  Tally t;
  for (const f64 x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) t.add(x);
  EXPECT_EQ(t.count(), 8u);
  EXPECT_DOUBLE_EQ(t.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(t.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(t.min(), 2.0);
  EXPECT_DOUBLE_EQ(t.max(), 9.0);
  EXPECT_DOUBLE_EQ(t.sum(), 40.0);
}

TEST(Tally, EmptyIsSafe) {
  Tally t;
  EXPECT_EQ(t.count(), 0u);
  EXPECT_DOUBLE_EQ(t.mean(), 0.0);
  EXPECT_DOUBLE_EQ(t.variance(), 0.0);
  EXPECT_DOUBLE_EQ(t.stddev(), 0.0);
}

TEST(Tally, SingleObservationHasZeroVariance) {
  Tally t;
  t.add(42.0);
  EXPECT_DOUBLE_EQ(t.mean(), 42.0);
  EXPECT_DOUBLE_EQ(t.variance(), 0.0);
}

TEST(Tally, NumericallyStableForLargeOffsets) {
  // Welford must not lose the tiny variance under a huge common offset.
  Tally t;
  const f64 offset = 1e9;
  for (const f64 x : {offset + 1.0, offset + 2.0, offset + 3.0}) t.add(x);
  EXPECT_NEAR(t.variance(), 1.0, 1e-6);
}

TEST(TimeWeighted, PiecewiseConstantAverage) {
  TimeWeighted tw(0.0);
  tw.update(0.0, 2.0);   // value 2 on [0, 4)
  tw.update(4.0, 6.0);   // value 6 on [4, 8)
  EXPECT_DOUBLE_EQ(tw.average(8.0), 4.0);
  EXPECT_DOUBLE_EQ(tw.current(), 6.0);
}

TEST(TimeWeighted, AccountsOpenInterval) {
  TimeWeighted tw(0.0);
  tw.update(0.0, 10.0);
  EXPECT_DOUBLE_EQ(tw.average(5.0), 10.0);
}

TEST(TimeWeighted, NonZeroStart) {
  TimeWeighted tw(100.0);
  tw.update(100.0, 1.0);
  tw.update(110.0, 3.0);
  EXPECT_DOUBLE_EQ(tw.average(120.0), 2.0);
}

TEST(Histogram, BinsCountsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  h.add(25.0);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 18.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 20.0);
}

TEST(Histogram, NanGoesToDedicatedBucketNotUB) {
  // NaN fails both range checks; the seed code then cast it to usize (UB).
  Histogram h(0.0, 10.0, 10);
  h.add(std::nan(""));
  h.add(-std::numeric_limits<f64>::quiet_NaN());
  h.add(5.0);
  h.add(std::numeric_limits<f64>::infinity());
  h.add(-std::numeric_limits<f64>::infinity());
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.nan_count(), 2u);
  EXPECT_EQ(h.overflow(), 1u);   // +inf
  EXPECT_EQ(h.underflow(), 1u);  // -inf
  EXPECT_EQ(h.bin_count(5), 1u);
  u64 binned = 0;
  for (usize i = 0; i < h.bins(); ++i) binned += h.bin_count(i);
  EXPECT_EQ(binned, 1u);  // NaN never lands in a bin
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  RngStream rng(3, "hist");
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform01());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(BatchMeans, FormsBatches) {
  BatchMeans bm(10);
  for (int i = 0; i < 95; ++i) bm.add(1.0);
  EXPECT_EQ(bm.completed_batches(), 9u);
  EXPECT_DOUBLE_EQ(bm.mean(), 1.0);
}

TEST(BatchMeans, BatchAveragesAreCorrect) {
  BatchMeans bm(2);
  bm.add(1.0);
  bm.add(3.0);  // batch mean 2
  bm.add(5.0);
  bm.add(7.0);  // batch mean 6
  EXPECT_EQ(bm.completed_batches(), 2u);
  EXPECT_DOUBLE_EQ(bm.mean(), 4.0);
}

TEST(StudentT, TableValues) {
  EXPECT_NEAR(student_t_critical(0.95, 1), 12.706, 1e-3);
  EXPECT_NEAR(student_t_critical(0.95, 4), 2.776, 1e-3);
  EXPECT_NEAR(student_t_critical(0.99, 10), 3.169, 1e-3);
  EXPECT_NEAR(student_t_critical(0.90, 30), 1.697, 1e-3);
  // Large dof approaches the normal quantiles.
  EXPECT_NEAR(student_t_critical(0.95, 100000), 1.96, 0.01);
}

TEST(StudentT, BetweenRowsMapsConservativelyDown) {
  // A dof between tabulated rows must use the smaller-dof row (larger
  // critical value). The seed snapped dof in (120, 1000) to the 1000 row,
  // shrinking confidence intervals below their nominal coverage.
  EXPECT_DOUBLE_EQ(student_t_critical(0.95, 121), student_t_critical(0.95, 120));
  EXPECT_DOUBLE_EQ(student_t_critical(0.95, 500), student_t_critical(0.95, 120));
  EXPECT_DOUBLE_EQ(student_t_critical(0.95, 999), student_t_critical(0.95, 120));
  EXPECT_NEAR(student_t_critical(0.95, 999), 1.980, 1e-3);
  EXPECT_NEAR(student_t_critical(0.95, 1000), 1.962, 1e-3);
  // Same rule on the other sparse gaps, all three confidence levels.
  EXPECT_NEAR(student_t_critical(0.95, 35), 2.042, 1e-3);   // 30-row, not 40
  EXPECT_NEAR(student_t_critical(0.90, 45), 1.684, 1e-3);   // 40-row, not 60
  EXPECT_NEAR(student_t_critical(0.99, 100), 2.660, 1e-3);  // 60-row, not 120
  // Exact rows still hit exactly; critical values never increase with dof.
  EXPECT_NEAR(student_t_critical(0.95, 60), 2.000, 1e-3);
  f64 prev = student_t_critical(0.95, 1);
  for (u64 dof = 2; dof <= 2000; ++dof) {
    const f64 t = student_t_critical(0.95, dof);
    EXPECT_LE(t, prev) << "dof=" << dof;
    prev = t;
  }
}

TEST(ConfidenceHalfWidth, MatchesManualComputation) {
  Tally t;
  for (const f64 x : {10.0, 12.0, 14.0, 16.0, 18.0}) t.add(x);
  // mean 14, sd = sqrt(10), n = 5, t(0.95, 4) = 2.776.
  const f64 expect = 2.776 * std::sqrt(10.0) / std::sqrt(5.0);
  EXPECT_NEAR(confidence_half_width(t, 0.95), expect, 1e-3);
}

TEST(ConfidenceHalfWidth, ZeroForTinySamples) {
  Tally t;
  EXPECT_DOUBLE_EQ(confidence_half_width(t, 0.95), 0.0);
  t.add(1.0);
  EXPECT_DOUBLE_EQ(confidence_half_width(t, 0.95), 0.0);
}

TEST(ConfidenceInterval, CoversTrueMeanOfExponential) {
  // 95% CI over replicated exponential means should cover 1.0 most of
  // the time; with 40 replications of 1000 draws this is overwhelmingly
  // likely for a correct implementation.
  RngStream rng(17, "ci");
  Exponential dist(1.0);
  Tally means;
  for (int rep = 0; rep < 40; ++rep) {
    Tally inner;
    for (int i = 0; i < 1000; ++i) inner.add(dist.sample(rng));
    means.add(inner.mean());
  }
  const f64 hw = confidence_half_width(means, 0.99);
  EXPECT_LT(std::abs(means.mean() - 1.0), hw + 0.02);
}

TEST(FormatCi, ProducesPlusMinus) {
  Tally t;
  t.add(1.0);
  t.add(3.0);
  const std::string s = format_ci(t, 0.95);
  EXPECT_NE(s.find("2"), std::string::npos);
  EXPECT_NE(s.find("±"), std::string::npos);
}

}  // namespace
}  // namespace mobichk::des
