// Reproduces Fig. 2 — N_tot vs T_switch, homogeneous (H=0%), P_s=0.4, P_switch=0.8
#include "figure_common.hpp"

int main(int argc, char** argv) {
  return mobichk::bench::run_paper_figure(
      {"Fig. 2 — N_tot vs T_switch, homogeneous (H=0%), P_s=0.4, P_switch=0.8", 0.8, 0.0}, argc, argv);
}
