// mobichk_cli: the command-line face of the library.
//
//   mobichk_cli run     [flags]   one simulation, table or --json output
//   mobichk_cli figure  [flags]   a T_switch sweep (any figure's config)
//   mobichk_cli recover [flags]   failure injection + recovery-time report
//   mobichk_cli trace   [flags]   dump the run's event trace (--out file)
//   mobichk_cli audit   [flags]   differential determinism audit: the same
//                                 config under every event-queue kind must
//                                 give identical trace hashes and N_tot
//                                 (exit 1 on divergence)
//
// Common flags: --length --seed --tswitch --pswitch --psend --h
//               --hosts --mss --comm-mean --protocols=TP,BCS,QBC
// figure:       --precision=<rel ci, default 0.04> --min-seeds --max-seeds
//               --batch --seed-base --seeds=<n> (fixed replication)
//               --threads --csv --json --gnuplot
// recover:      --failed=<host id>
// trace:        --out=<path>
// run:          --audit-determinism (shorthand for the audit command)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/gc.hpp"
#include "core/recovery.hpp"
#include "core/recovery_time.hpp"
#include "des/trace_io.hpp"
#include "sim/audit.hpp"
#include "sim/cli.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace mobichk;

sim::SimConfig config_from(const sim::ArgParser& args) {
  sim::SimConfig cfg;
  cfg.network.n_hosts = args.get_u32("hosts", cfg.network.n_hosts);
  cfg.network.n_mss = args.get_u32("mss", cfg.network.n_mss);
  cfg.sim_length = args.get_f64("length", cfg.sim_length);
  cfg.seed = args.get_u64("seed", cfg.seed);
  cfg.t_switch = args.get_f64("tswitch", cfg.t_switch);
  cfg.p_switch = args.get_f64("pswitch", cfg.p_switch);
  cfg.p_send = args.get_f64("psend", cfg.p_send);
  cfg.comm_mean = args.get_f64("comm-mean", cfg.comm_mean);
  cfg.heterogeneity = args.get_f64("h", cfg.heterogeneity);
  cfg.disconnect_mean = args.get_f64("outage", cfg.disconnect_mean);
  const std::string model = args.get_string("mobility", "paper");
  if (model == "ring") cfg.mobility_model = sim::MobilityModelKind::kRingNeighbor;
  if (model == "pareto") cfg.mobility_model = sim::MobilityModelKind::kParetoResidence;
  const std::string topo = args.get_string("topology", "mesh");
  if (topo == "ring") cfg.network.mss_topology = net::MssTopologyKind::kRing;
  if (topo == "line") cfg.network.mss_topology = net::MssTopologyKind::kLine;
  if (topo == "star") cfg.network.mss_topology = net::MssTopologyKind::kStar;
  cfg.network.wireless_bandwidth = args.get_f64("bandwidth", 0.0);
  return cfg;
}

std::vector<core::ProtocolKind> protocols_from(const sim::ArgParser& args) {
  const std::string list = args.get_string("protocols", "TP,BCS,QBC");
  std::vector<core::ProtocolKind> kinds;
  std::istringstream ss(list);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) kinds.push_back(core::protocol_kind_from_name(token));
  }
  return kinds;
}

int cmd_audit(const sim::ArgParser& args) {
  sim::ExperimentOptions opts;
  opts.protocols = protocols_from(args);
  const sim::AuditReport report = sim::audit_determinism(config_from(args), opts);
  report.print(std::cout);
  return report.deterministic() ? 0 : 1;
}

int cmd_run(const sim::ArgParser& args) {
  if (args.get_flag("audit-determinism")) return cmd_audit(args);
  sim::ExperimentOptions opts;
  opts.protocols = protocols_from(args);
  opts.with_storage = true;
  opts.verify_consistency = args.get_flag("verify");
  const sim::RunResult r = sim::run_experiment(config_from(args), opts);
  if (args.get_flag("json")) {
    sim::write_json(std::cout, r);
    return 0;
  }
  std::printf("%-10s %10s %10s %10s %10s %14s\n", "proto", "N_tot", "basic", "forced", "max_idx",
              "piggyback(B)");
  for (const auto& p : r.protocols) {
    std::printf("%-10s %10llu %10llu %10llu %10llu %14llu\n", p.name.c_str(),
                static_cast<unsigned long long>(p.n_tot),
                static_cast<unsigned long long>(p.basic),
                static_cast<unsigned long long>(p.forced),
                static_cast<unsigned long long>(p.max_index),
                static_cast<unsigned long long>(p.piggyback_bytes));
  }
  return 0;
}

int cmd_figure(const sim::ArgParser& args) {
  sim::FigureSpec spec;
  spec.title = "N_tot vs T_switch";
  spec.base = config_from(args);
  spec.protocols = protocols_from(args);
  sim::apply_cli_flags(spec, args);
  const sim::FigureResult result =
      sim::run_figure(spec, sim::ExperimentOptions{}, args.get_u32("threads", 0));
  if (args.get_flag("json")) {
    sim::write_json(std::cout, result);
  } else if (args.get_flag("csv")) {
    result.write_csv(std::cout);
  } else if (args.get_flag("gnuplot")) {
    result.write_gnuplot(std::cout);
  } else {
    result.print(std::cout);
  }
  return 0;
}

int cmd_recover(const sim::ArgParser& args) {
  sim::ExperimentOptions opts;
  opts.protocols = protocols_from(args);
  sim::Experiment exp(config_from(args), opts);
  exp.run();
  const auto failed = static_cast<net::HostId>(args.get_u64("failed", 0));
  const auto fail_pos = exp.harness().current_positions();
  std::vector<net::MssId> host_mss(exp.network().n_hosts());
  for (net::HostId h = 0; h < exp.network().n_hosts(); ++h) {
    host_mss[h] = exp.network().host(h).mss();
  }
  std::printf("failure of MH %u at t=%.0f\n\n", failed, exp.simulator().now());
  std::printf("%-10s %14s %14s %12s %12s %12s %12s\n", "proto", "undone-ev", "ckpts-lost",
              "coord(tu)", "xfer(tu)", "replay(tu)", "total(tu)");
  for (usize slot = 0; slot < opts.protocols.size(); ++slot) {
    const auto rb = core::rollback_to_consistent(exp.log(slot), exp.harness().message_log(),
                                                 fail_pos, failed);
    const auto est = core::estimate_recovery_time(rb, host_mss, exp.network().n_mss());
    std::printf("%-10s %14llu %14llu %12.2f %12.2f %12.2f %12.2f\n",
                core::protocol_kind_name(opts.protocols[slot]),
                static_cast<unsigned long long>(rb.undone_events()),
                static_cast<unsigned long long>(rb.total_discarded()), est.coordination,
                est.state_transfer, est.replay, est.total());
  }
  return 0;
}

int cmd_trace(const sim::ArgParser& args) {
  sim::SimConfig cfg = config_from(args);
  // Collect the full trace with a vector sink wired through the stack.
  des::Simulator simulator;
  des::VectorSink sink;
  net::Network network(simulator, cfg.network, cfg.seed, &sink);
  core::ProtocolHarness harness(network, &sink);
  for (const auto kind : protocols_from(args)) {
    harness.add_protocol(core::make_protocol(kind));
  }
  sim::WorkloadDriver workload(simulator, network, cfg);
  sim::MobilityDriver mobility(simulator, network, cfg, &workload);
  network.start();
  workload.start();
  mobility.start();
  simulator.run_until(cfg.sim_length);

  const std::string out = args.get_string("out", "");
  if (!out.empty()) {
    std::ofstream file(out);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", out.c_str());
      return 1;
    }
    des::write_trace(file, sink.records());
    std::printf("wrote %zu records to %s\n", sink.records().size(), out.c_str());
  }
  const des::TraceSummary summary = des::summarize(sink.records());
  std::printf("trace summary (%llu records, t in [%.2f, %.2f]):\n",
              static_cast<unsigned long long>(summary.total), summary.first_time,
              summary.last_time);
  for (u32 k = 0; k <= static_cast<u32>(des::TraceKind::kUser); ++k) {
    const auto kind = static_cast<des::TraceKind>(k);
    if (summary.of(kind) > 0) {
      std::printf("  %-18s %llu\n", des::trace_kind_name(kind),
                  static_cast<unsigned long long>(summary.of(kind)));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: mobichk_cli <run|figure|recover|trace|audit> [--flags]\n"
                 "see the header of examples/mobichk_cli.cpp for the flag list\n");
    return 2;
  }
  const sim::ArgParser args(argc - 1, argv + 1);
  const std::string cmd = argv[1];
  try {
    if (cmd == "run") return cmd_run(args);
    if (cmd == "figure") return cmd_figure(args);
    if (cmd == "recover") return cmd_recover(args);
    if (cmd == "trace") return cmd_trace(args);
    if (cmd == "audit") return cmd_audit(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}
