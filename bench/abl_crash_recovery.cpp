// XRCV: executed crash recovery — measured, not estimated.
//
// abl_recovery injects a *hypothetical* failure at the end of a run and
// evaluates the rollback builders analytically. This ablation goes the
// rest of the way: the CrashDriver kills hosts mid-run, the run actually
// rolls back, replays its logged messages and resumes, and we report the
// *measured* outage alongside the plan_recovery and
// estimate_recovery_time models it is reconciled against. Each protocol
// runs alone (slot 0's line is the one physically executed), across the
// three failure modes.
#include <cstdio>

#include "sim/cli.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace mobichk;
  const sim::ArgParser args(argc, argv);
  const u64 seeds = args.get_u64("seeds", 5);
  const f64 length = args.get_f64("length", 20'000.0);

  std::printf("XRCV — executed mid-run crash + rollback + replay (%.0f tu runs,\n"
              "T_switch=1000, P_switch=0.8, first crash at length/2; averages over %llu seeds)\n",
              length, static_cast<unsigned long long>(seeds));

  const sim::CrashMode modes[] = {sim::CrashMode::kMhCrash, sim::CrashMode::kCorrelated,
                                  sim::CrashMode::kCellOutage};
  const std::vector<core::ProtocolKind> kinds = core::all_protocol_kinds();

  for (const auto mode : modes) {
    std::printf("\n--- failure mode: %s ---\n", sim::crash_mode_name(mode));
    std::printf("%-8s %10s %12s %12s %14s %12s %12s %12s\n", "proto", "crashes", "rolled-back",
                "undone-ev", "replayed-msg", "actual(tu)", "planned(tu)", "model(tu)");
    for (const auto kind : kinds) {
      f64 crashes = 0.0, rolled = 0.0, undone = 0.0, replayed = 0.0;
      f64 actual = 0.0, planned = 0.0, modeled = 0.0;
      for (u64 s = 1; s <= seeds; ++s) {
        sim::SimConfig cfg;
        cfg.sim_length = length;
        cfg.t_switch = 1'000.0;
        cfg.p_switch = 0.8;
        cfg.seed = s;
        cfg.faults.mode = mode;
        cfg.faults.first_crash_at = length / 2.0;
        sim::ExperimentOptions opts;
        opts.protocols = {kind};
        const sim::RunResult r = sim::run_experiment(cfg, opts);
        crashes += static_cast<f64>(r.recovery.crashes_executed);
        rolled += static_cast<f64>(r.recovery.hosts_rolled_back);
        undone += static_cast<f64>(r.recovery.undone_events);
        replayed += static_cast<f64>(r.recovery.replayed_messages);
        actual += r.recovery.total_recovery_time;
        planned += r.recovery.total_planned;
        modeled += r.recovery.total_estimated;
      }
      const f64 n = static_cast<f64>(seeds);
      std::printf("%-8s %10.1f %12.1f %12.1f %14.1f %12.2f %12.2f %12.2f\n",
                  core::protocol_kind_name(kind), crashes / n, rolled / n, undone / n,
                  replayed / n, actual / n, planned / n, modeled / n);
    }
  }

  std::printf("\nexpected: the measured outage sits between the pipelined plan (per-cell\n"
              "FIFO state transfers overlap replay) and the phase-barrier model estimate.\n"
              "BASIC/UNCOORD roll back far more hosts and events (domino cascades) than\n"
              "the communication-induced protocols; cell outages cost the most because a\n"
              "whole cell's transfers serialize on one MSS. Replayed messages grow with\n"
              "rollback distance — the roll-forward work message logging buys back.\n");
  return 0;
}
