// mobichk_cli: the command-line face of the library.
//
//   mobichk_cli run     [flags]   one simulation, table or --json output;
//                                 --metrics / --chrome-trace attach the
//                                 observability layer and export it
//   mobichk_cli figure  [flags]   a T_switch sweep (any figure's config)
//   mobichk_cli recover [flags]   failure injection + recovery-time report
//   mobichk_cli trace   [flags]   dump the run's event trace (--out file)
//   mobichk_cli explain [flags]   re-run observed and explain causality:
//                                 --ckpt <proto>:<host>:<idx> prints the
//                                 send/forced-checkpoint chain behind a
//                                 checkpoint, --msg <id> a message's story,
//                                 --dot <path|-> the checkpoint-interval
//                                 graph with the recovery line highlighted
//   mobichk_cli audit   [flags]   differential determinism audit: the same
//                                 config under every event-queue kind must
//                                 give identical trace hashes and N_tot
//                                 (exit 1 on divergence)
//   mobichk_cli report  [flags]   self-contained HTML report from saved
//                                 JSON documents: --run=<result.json>
//                                 [--figure=<figure.json>] --out=<path>
//
// Every simulation command also accepts --profile (host-time phase
// breakdown after the run; prof.* metrics in --json output) and
// --profile-trace=<path> (host-time Chrome trace). Profiling changes no
// simulated outcome: traces stay bit-identical.
//
// Every command supports --help; flags are schema-checked (unknown flags
// fail with a did-you-mean suggestion, malformed numbers fail naming the
// flag).
//
// Configuration layering: every command accepts --config <file.json> (a
// nested sim::ExperimentConfig document) as the base, and every flag
// present on the command line overrides the corresponding file value.
// --dump-config prints the effective merged config as JSON and exits —
// the output reloads through --config to a bit-identical run.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "mobichk.hpp"

namespace {

using namespace mobichk;

std::string fmt_num(f64 v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// The simulation-shape flags every command understands.
void add_config_flags(sim::FlagSet& fs) {
  const sim::SimConfig d;
  const storage::DataPlaneConfig dp;
  fs.add("config", sim::FlagType::kString, "",
         "load a JSON experiment config as the base; flags override its values")
      .add("dump-config", sim::FlagType::kBool, "",
           "print the effective config as JSON and exit (reloads via --config)")
      .add("hosts", sim::FlagType::kUInt, std::to_string(d.network.n_hosts),
           "number of mobile hosts")
      .add("mss", sim::FlagType::kUInt, std::to_string(d.network.n_mss),
           "number of mobile support stations")
      .add("length", sim::FlagType::kNumber, fmt_num(d.sim_length),
           "simulated time units to run")
      .add("seed", sim::FlagType::kUInt, std::to_string(d.seed), "root RNG seed")
      .add("tswitch", sim::FlagType::kNumber, fmt_num(d.t_switch),
           "mean time between cell-switch attempts (the paper's T_switch)")
      .add("pswitch", sim::FlagType::kNumber, fmt_num(d.p_switch),
           "probability a switch attempt changes cell (the paper's p_switch)")
      .add("psend", sim::FlagType::kNumber, fmt_num(d.p_send),
           "probability a workload operation sends a message")
      .add("comm-mean", sim::FlagType::kNumber, fmt_num(d.comm_mean),
           "mean time between workload operations")
      .add("h", sim::FlagType::kNumber, fmt_num(d.heterogeneity),
           "checkpoint-rate heterogeneity in [0,1]")
      .add("outage", sim::FlagType::kNumber, fmt_num(d.disconnect_mean),
           "mean disconnection length (0 = no disconnections)")
      .add("mobility", sim::FlagType::kString, "paper", "mobility model: paper|ring|pareto")
      .add("topology", sim::FlagType::kString, "mesh",
           "MSS wired topology: mesh|ring|line|star")
      .add("bandwidth", sim::FlagType::kNumber, "0",
           "wireless bandwidth in bytes/tu (0 = unlimited)")
      .add("protocols", sim::FlagType::kString, "TP,BCS,QBC",
           "comma-separated protocol set (TP,BCS,QBC,BASIC,UNCOORD,COORD,LAZY-BCS)")
      .add("crash-mode", sim::FlagType::kString, "none",
           "failure injection: none|host|correlated|cell")
      .add("crash-time", sim::FlagType::kNumber, "0",
           "time of the first injected failure (0 = length/2)")
      .add("crash-interval", sim::FlagType::kNumber, "0",
           "mean gap between subsequent failures (0 = a single failure)")
      .add("crash-count", sim::FlagType::kUInt, "1", "maximum failures to inject")
      .add("crash-target", sim::FlagType::kUInt, "",
           "fixed victim host (or cell for --crash-mode=cell); default random")
      .add("crash-hosts", sim::FlagType::kUInt, "2",
           "hosts killed together under --crash-mode=correlated")
      .add("shards", sim::FlagType::kUInt, "1",
           "spatial shards for the parallel engine (clamped to --mss; "
           "bit-identical to 1)")
      .add("data-plane", sim::FlagType::kBool, "",
           "enable the checkpoint data plane (sizes, storage queues, migration)")
      .add("state-bytes", sim::FlagType::kUInt, std::to_string(dp.full_state_bytes),
           "full process-image size S in bytes")
      .add("dirty-rate", sim::FlagType::kNumber, fmt_num(dp.dirty_rate),
           "state-dirtying rate omega (incremental checkpoint sizing)")
      .add("storage-model", sim::FlagType::kString, "contention",
           "stable-storage service model: infinite|contention")
      .add("storage-bandwidth", sim::FlagType::kNumber, fmt_num(dp.storage_bandwidth),
           "per-MSS stable-storage bandwidth in bytes/tu")
      .add("migration", sim::FlagType::kString, "precopy",
           "checkpoint migration on handoff: none|precopy|postcopy")
      .add("precopy-rounds", sim::FlagType::kUInt, std::to_string(dp.precopy_rounds),
           "max iterative pre-copy rounds before the stop-and-copy")
      .add("profile", sim::FlagType::kBool, "",
           "attach the host-time profiler and print the phase breakdown after the run")
      .add("profile-trace", sim::FlagType::kString, "",
           "write the host-time Chrome trace to <path> (implies --profile)");
}

bool profile_requested(const sim::ArgParser& args) {
  return args.get_flag("profile") || !args.get_string("profile-trace", "").empty();
}

/// Prints the prof.* snapshot as a phase table: ".seconds"/".count" pairs
/// collapse to one row, scalar gauges print as-is.
void print_prof_summary(const obs::Profiler& prof) {
  const std::vector<obs::MetricSample> samples = prof.snapshot();
  auto ends_with = [](const std::string& s, const char* suffix) {
    const usize n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
  };
  std::printf("\nhost-time profile:\n");
  std::printf("  %-42s %14s %12s\n", "phase", "seconds", "count");
  for (usize i = 0; i < samples.size(); ++i) {
    const obs::MetricSample& m = samples[i];
    if (ends_with(m.name, ".seconds") && i + 1 < samples.size() &&
        ends_with(samples[i + 1].name, ".count")) {
      std::printf("  %-42s %14.6f %12.0f\n",
                  m.name.substr(0, m.name.size() - std::strlen(".seconds")).c_str(), m.value,
                  samples[i + 1].value);
      ++i;
    } else {
      std::printf("  %-42s %14.6g\n", m.name.c_str(), m.value);
    }
  }
}

sim::FlagSet make_flags(const std::string& cmd) {
  if (cmd == "run") {
    sim::FlagSet fs("mobichk_cli run [flags]");
    add_config_flags(fs);
    fs.add("verify", sim::FlagType::kBool, "", "run the orphan-consistency oracle after the run")
        .add("json", sim::FlagType::kBool, "", "emit the run result as JSON on stdout")
        .add("audit-determinism", sim::FlagType::kBool, "", "shorthand for the audit command")
        .add("metrics", sim::FlagType::kString, "",
             "observe the run and write a JSONL metrics/timeline dump to <path>")
        .add("chrome-trace", sim::FlagType::kString, "",
             "observe the run and write a Perfetto-loadable trace-event JSON to <path>");
    return fs;
  }
  if (cmd == "figure") {
    sim::FlagSet fs("mobichk_cli figure [flags]");
    add_config_flags(fs);
    fs.add("seeds", sim::FlagType::kUInt, "", "fixed replication count (min = max = n)")
        .add("precision", sim::FlagType::kNumber, "0.04",
             "target relative 95% CI half-width per cell")
        .add("min-seeds", sim::FlagType::kUInt, "", "replications always run per point")
        .add("max-seeds", sim::FlagType::kUInt, "", "replication cap per point")
        .add("batch", sim::FlagType::kUInt, "", "replications dispatched per adaptive round")
        .add("seed-base", sim::FlagType::kUInt, "", "root of the replication seed derivation")
        .add("threads", sim::FlagType::kUInt, "0", "worker threads (0 = hardware concurrency)")
        .add("json", sim::FlagType::kBool, "", "emit the figure as JSON")
        .add("csv", sim::FlagType::kBool, "", "emit the figure as CSV")
        .add("gnuplot", sim::FlagType::kBool, "", "emit a self-contained gnuplot script");
    return fs;
  }
  if (cmd == "recover") {
    sim::FlagSet fs("mobichk_cli recover [flags]");
    add_config_flags(fs);
    fs.add("failed", sim::FlagType::kUInt, "0", "id of the mobile host that fails");
    return fs;
  }
  if (cmd == "trace") {
    sim::FlagSet fs("mobichk_cli trace [flags]");
    add_config_flags(fs);
    fs.add("out", sim::FlagType::kString, "", "write the full trace to <path>");
    return fs;
  }
  if (cmd == "explain") {
    sim::FlagSet fs("mobichk_cli explain [flags]");
    add_config_flags(fs);
    fs.add("ckpt", sim::FlagType::kString, "",
           "checkpoint to explain, as <proto>:<host>:<ordinal> (e.g. BCS:0:3)")
        .add("msg", sim::FlagType::kUInt, "0", "message id whose causal story to print")
        .add("depth", sim::FlagType::kUInt, "16", "maximum causal-chain links to follow")
        .add("dot", sim::FlagType::kString, "",
             "write the checkpoint-interval graph as Graphviz DOT to <path> (- = stdout)")
        .add("recovery", sim::FlagType::kBool, "",
             "narrate the run's executed crash recoveries (needs --crash-mode)");
    return fs;
  }
  if (cmd == "report") {
    // Post-hoc tool: consumes serialized documents, no simulation flags.
    sim::FlagSet fs("mobichk_cli report --run=<result.json> [--figure=<figure.json>] --out=<path>");
    fs.add("run", sim::FlagType::kString, "",
           "RunResult JSON document (mobichk_cli run --json > result.json)")
        .add("figure", sim::FlagType::kString, "",
             "optional FigureResult JSON document (mobichk_cli figure --json)")
        .add("out", sim::FlagType::kString, "report.html",
             "output path for the self-contained HTML report");
    return fs;
  }
  // audit
  sim::FlagSet fs("mobichk_cli audit [flags]");
  add_config_flags(fs);
  return fs;
}

std::string slurp_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int cmd_report(const sim::ArgParser& args) {
  const std::string run_path = args.get_string("run", "");
  if (run_path.empty()) {
    std::fprintf(stderr, "report: --run=<result.json> is required\n");
    return 2;
  }
  const sim::RunResult run = sim::run_result_from_json(sim::json_parse(slurp_file(run_path)));
  std::unique_ptr<sim::SweepView> sweep;
  const std::string fig_path = args.get_string("figure", "");
  if (!fig_path.empty()) {
    sweep = std::make_unique<sim::SweepView>(
        sim::SweepView::from_json(sim::json_parse(slurp_file(fig_path))));
  }
  const std::string out = args.get_string("out", "report.html");
  sim::write_html_report(out, run, sweep.get());
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

/// The effective run configuration: the --config file (or defaults) as
/// the base, every flag present on the command line laid over it.
sim::ExperimentConfig effective_config(const sim::ArgParser& args) {
  sim::ExperimentConfig cfg;
  const std::string path = args.get_string("config", "");
  if (!path.empty()) cfg = sim::load_experiment_config(path);

  cfg.network.n_hosts = args.get_u32("hosts", cfg.network.n_hosts);
  cfg.network.n_mss = args.get_u32("mss", cfg.network.n_mss);
  if (args.has("topology")) {
    const std::string topo = args.get_string("topology", "mesh");
    if (topo == "mesh") {
      cfg.network.topology = net::MssTopologyKind::kFullMesh;
    } else if (topo == "ring") {
      cfg.network.topology = net::MssTopologyKind::kRing;
    } else if (topo == "line") {
      cfg.network.topology = net::MssTopologyKind::kLine;
    } else if (topo == "star") {
      cfg.network.topology = net::MssTopologyKind::kStar;
    } else {
      throw std::invalid_argument("unknown --topology: " + topo);
    }
  }
  cfg.network.wireless_bandwidth = args.get_f64("bandwidth", cfg.network.wireless_bandwidth);

  cfg.run.sim_length = args.get_f64("length", cfg.run.sim_length);
  cfg.run.seed = args.get_u64("seed", cfg.run.seed);
  cfg.run.shards = args.get_u32("shards", cfg.run.shards);

  cfg.workload.comm_mean = args.get_f64("comm-mean", cfg.workload.comm_mean);
  cfg.workload.p_send = args.get_f64("psend", cfg.workload.p_send);

  if (args.has("mobility")) {
    const std::string model = args.get_string("mobility", "paper");
    if (model == "paper") {
      cfg.mobility.model = sim::MobilityModelKind::kPaperUniform;
    } else if (model == "ring") {
      cfg.mobility.model = sim::MobilityModelKind::kRingNeighbor;
    } else if (model == "pareto") {
      cfg.mobility.model = sim::MobilityModelKind::kParetoResidence;
    } else {
      throw std::invalid_argument("unknown --mobility: " + model);
    }
  }
  cfg.mobility.t_switch = args.get_f64("tswitch", cfg.mobility.t_switch);
  cfg.mobility.p_switch = args.get_f64("pswitch", cfg.mobility.p_switch);
  cfg.mobility.disconnect_mean = args.get_f64("outage", cfg.mobility.disconnect_mean);
  cfg.mobility.heterogeneity = args.get_f64("h", cfg.mobility.heterogeneity);

  if (args.has("crash-mode")) {
    const std::string crash = args.get_string("crash-mode", "none");
    if (crash == "none") {
      cfg.faults.mode = sim::CrashMode::kNone;
    } else if (crash == "host") {
      cfg.faults.mode = sim::CrashMode::kMhCrash;
    } else if (crash == "correlated") {
      cfg.faults.mode = sim::CrashMode::kCorrelated;
    } else if (crash == "cell") {
      cfg.faults.mode = sim::CrashMode::kCellOutage;
    } else {
      throw std::invalid_argument("unknown --crash-mode: " + crash);
    }
  }
  cfg.faults.first_crash_at = args.get_f64("crash-time", cfg.faults.first_crash_at);
  cfg.faults.crash_interval = args.get_f64("crash-interval", cfg.faults.crash_interval);
  cfg.faults.max_crashes = args.get_u32("crash-count", cfg.faults.max_crashes);
  cfg.faults.target = args.get_u32("crash-target", cfg.faults.target);
  cfg.faults.correlated = args.get_u32("crash-hosts", cfg.faults.correlated);

  if (args.get_flag("data-plane")) cfg.data_plane.enabled = true;
  cfg.data_plane.full_state_bytes = args.get_u64("state-bytes", cfg.data_plane.full_state_bytes);
  cfg.data_plane.dirty_rate = args.get_f64("dirty-rate", cfg.data_plane.dirty_rate);
  if (args.has("storage-model")) {
    const std::string model = args.get_string("storage-model", "contention");
    if (!storage::parse_stable_storage_kind(model, cfg.data_plane.model)) {
      throw std::invalid_argument("unknown --storage-model: " + model);
    }
  }
  cfg.data_plane.storage_bandwidth =
      args.get_f64("storage-bandwidth", cfg.data_plane.storage_bandwidth);
  if (args.has("migration")) {
    const std::string strategy = args.get_string("migration", "precopy");
    if (!storage::parse_migration_strategy(strategy, cfg.data_plane.migration)) {
      throw std::invalid_argument("unknown --migration: " + strategy);
    }
  }
  cfg.data_plane.precopy_rounds = args.get_u32("precopy-rounds", cfg.data_plane.precopy_rounds);

  if (args.has("protocols")) {
    const std::string list = args.get_string("protocols", "TP,BCS,QBC");
    cfg.protocols.clear();
    std::istringstream ss(list);
    std::string token;
    while (std::getline(ss, token, ',')) {
      if (!token.empty()) cfg.protocols.push_back(core::protocol_kind_from_name(token));
    }
  }
  return cfg;
}

int cmd_audit(const sim::ArgParser& args) {
  const sim::ExperimentConfig ec = effective_config(args);
  sim::ExperimentOptions opts = ec.to_options();
  obs::Profiler profiler;
  const bool profile = profile_requested(args);
  // One profiler across all queue-kind runs: the audit is sequential, so
  // the phases accumulate into a combined "cost of the audit" table.
  if (profile) opts.profiler = &profiler;
  const sim::AuditReport report = sim::audit_determinism(ec.to_sim_config(), opts);
  report.print(std::cout);
  if (profile) print_prof_summary(profiler);
  const std::string prof_trace = args.get_string("profile-trace", "");
  if (!prof_trace.empty()) obs::write_host_trace(prof_trace, profiler);
  return report.deterministic() ? 0 : 1;
}

int cmd_run(const sim::ArgParser& args) {
  if (args.get_flag("audit-determinism")) return cmd_audit(args);
  const sim::ExperimentConfig ec = effective_config(args);
  sim::ExperimentOptions opts = ec.to_options();
  opts.with_storage = true;
  opts.verify_consistency = args.get_flag("verify");
  const std::string metrics_path = args.get_string("metrics", "");
  const std::string trace_path = args.get_string("chrome-trace", "");
  const std::string prof_trace = args.get_string("profile-trace", "");
  const bool profile = profile_requested(args);
  obs::RunObserver observer;
  obs::Profiler profiler;
  if (!metrics_path.empty() || !trace_path.empty()) opts.observer = &observer;
  if (profile) opts.profiler = &profiler;
  const sim::RunResult r = sim::run_experiment(ec.to_sim_config(), opts);
  // The exporters throw (naming path + errno) on any open/write failure;
  // main()'s catch turns that into an error message and exit 1.
  if (!metrics_path.empty()) obs::write_metrics_jsonl(metrics_path, observer);
  if (!trace_path.empty()) obs::write_chrome_trace(trace_path, observer, profile ? &profiler : nullptr);
  if (!prof_trace.empty()) obs::write_host_trace(prof_trace, profiler);
  if (args.get_flag("json")) {
    // The prof.* catalog rides in the document's "metrics" object.
    sim::write_json(std::cout, r);
    return 0;
  }
  std::printf("%-10s %10s %10s %10s %10s %14s\n", "proto", "N_tot", "basic", "forced", "max_idx",
              "piggyback(B)");
  for (const auto& p : r.protocols) {
    std::printf("%-10s %10llu %10llu %10llu %10llu %14llu\n", p.name.c_str(),
                static_cast<unsigned long long>(p.n_tot),
                static_cast<unsigned long long>(p.basic),
                static_cast<unsigned long long>(p.forced),
                static_cast<unsigned long long>(p.max_index),
                static_cast<unsigned long long>(p.piggyback_bytes));
  }
  if (r.recovery.crashes_executed > 0) {
    const sim::CrashRunStats& rec = r.recovery;
    std::printf("\nrecovery: %llu crash(es) executed (%llu skipped), %llu host(s) failed, "
                "%llu rolled back\n",
                static_cast<unsigned long long>(rec.crashes_executed),
                static_cast<unsigned long long>(rec.crashes_skipped),
                static_cast<unsigned long long>(rec.hosts_crashed),
                static_cast<unsigned long long>(rec.hosts_rolled_back));
    std::printf("  %llu events undone, %llu messages replayed, %llu checkpoints discarded\n",
                static_cast<unsigned long long>(rec.undone_events),
                static_cast<unsigned long long>(rec.replayed_messages),
                static_cast<unsigned long long>(rec.checkpoints_discarded));
    std::printf("  recovery time: measured max %.2f tu, planned %.2f tu, model estimate %.2f tu\n",
                rec.max_recovery_time, rec.total_planned, rec.total_estimated);
  }
  if (r.data_plane_enabled) {
    const storage::DataPlaneStats& d = r.data_plane;
    std::printf("\ndata plane: %llu checkpoint(s), %llu B uploaded (%llu B dense), "
                "queue delay %.2f tu\n",
                static_cast<unsigned long long>(d.checkpoints),
                static_cast<unsigned long long>(d.upload_bytes),
                static_cast<unsigned long long>(d.full_bytes), d.queue_delay);
    std::printf("  %llu migration(s) moved %llu B (stall %.3f tu), mean locality %.3f hop(s), "
                "%llu recovery fetch(es) cost %.3f tu\n",
                static_cast<unsigned long long>(d.migrations),
                static_cast<unsigned long long>(d.migration_bytes), d.migration_stall,
                d.mean_locality(), static_cast<unsigned long long>(d.fetches), d.fetch_time);
  }
  if (profile) print_prof_summary(profiler);
  return 0;
}

int cmd_figure(const sim::ArgParser& args) {
  const sim::ExperimentConfig ec = effective_config(args);
  sim::FigureSpec spec;
  spec.title = "N_tot vs T_switch";
  spec.base = ec.to_sim_config();
  spec.protocols = ec.protocols;
  sim::apply_cli_flags(spec, args);
  sim::ExperimentOptions opts = ec.to_options();
  const sim::FigureResult result = sim::run_figure(spec, opts, args.get_u32("threads", 0));
  if (args.get_flag("json")) {
    sim::write_json(std::cout, result);
  } else if (args.get_flag("csv")) {
    result.write_csv(std::cout);
  } else if (args.get_flag("gnuplot")) {
    result.write_gnuplot(std::cout);
  } else {
    result.print(std::cout);
  }
  if (profile_requested(args)) {
    // Replications run concurrently, so a shared profiler cannot attach;
    // the sweep's cost story is the ledger's per-point wall attribution.
    const sim::SweepLedger& led = result.ledger;
    std::printf("\nper-point cost (wall seconds, overshoot included):\n");
    for (usize p = 0; p < led.point_wall_seconds.size(); ++p) {
      std::printf("  T_switch %8s %10.3f s\n", fmt_num(spec.t_switch_values[p]).c_str(),
                  led.point_wall_seconds[p]);
    }
    std::printf("  total %.3f s, barrier stall %.3f s\n", led.wall_seconds,
                led.barrier_stall_seconds);
  }
  return 0;
}

int cmd_recover(const sim::ArgParser& args) {
  const sim::ExperimentConfig ec = effective_config(args);
  sim::ExperimentOptions opts = ec.to_options();
  obs::Profiler profiler;
  const bool profile = profile_requested(args);
  if (profile) opts.profiler = &profiler;
  sim::Experiment exp(ec.to_sim_config(), opts);
  exp.run();
  const auto failed = static_cast<net::HostId>(args.get_u64("failed", 0));
  const auto fail_pos = exp.harness().current_positions();
  std::vector<net::MssId> host_mss(exp.network().n_hosts());
  for (net::HostId h = 0; h < exp.network().n_hosts(); ++h) {
    host_mss[h] = exp.network().host(h).mss();
  }
  std::printf("failure of MH %u at t=%.0f\n\n", failed, exp.simulator().now());
  std::printf("%-10s %14s %14s %12s %12s %12s %12s\n", "proto", "undone-ev", "ckpts-lost",
              "coord(tu)", "xfer(tu)", "replay(tu)", "total(tu)");
  for (usize slot = 0; slot < opts.protocols.size(); ++slot) {
    const auto rb = core::rollback_to_consistent(exp.log(slot), exp.harness().message_log(),
                                                 fail_pos, failed);
    const auto est = core::estimate_recovery_time(rb, host_mss, exp.network().n_mss());
    std::printf("%-10s %14llu %14llu %12.2f %12.2f %12.2f %12.2f\n",
                core::protocol_kind_name(opts.protocols[slot]),
                static_cast<unsigned long long>(rb.undone_events()),
                static_cast<unsigned long long>(rb.total_discarded()), est.coordination,
                est.state_transfer, est.replay, est.total());
  }
  if (profile) print_prof_summary(profiler);
  const std::string prof_trace = args.get_string("profile-trace", "");
  if (!prof_trace.empty()) obs::write_host_trace(prof_trace, profiler);
  return 0;
}

int cmd_explain(const sim::ArgParser& args) {
  const std::string ckpt_spec = args.get_string("ckpt", "");
  const u64 msg_id = args.get_u64("msg", 0);
  const std::string dot_path = args.get_string("dot", "");
  const bool recovery = args.get_flag("recovery");
  if (ckpt_spec.empty() && msg_id == 0 && dot_path.empty() && !recovery) {
    std::fprintf(stderr,
                 "explain: nothing to explain — pass --ckpt, --msg, --recovery, and/or --dot\n");
    return 2;
  }
  const sim::ExperimentConfig ec = effective_config(args);
  sim::ExperimentOptions opts;
  opts.protocols = ec.protocols;
  obs::RunObserver observer;
  opts.observer = &observer;
  obs::Profiler profiler;
  const bool profile = profile_requested(args);
  if (profile) opts.profiler = &profiler;
  sim::Experiment exp(ec.to_sim_config(), opts);
  exp.run();
  const std::vector<std::string>& names = observer.protocol_names();
  if (profile) print_prof_summary(profiler);
  if (const std::string prof_trace = args.get_string("profile-trace", ""); !prof_trace.empty()) {
    obs::write_host_trace(prof_trace, profiler);
  }

  if (msg_id != 0) {
    sim::print_message_story(std::cout, observer.timeline(), names, msg_id);
  }
  if (recovery) {
    if (exp.faults() == nullptr) {
      std::fprintf(stderr, "explain: --recovery needs a crash scenario (--crash-mode)\n");
      return 2;
    }
    sim::print_recovery_story(std::cout, *exp.faults(), names);
  }
  bool have_target = false;
  sim::CkptTarget target;
  if (!ckpt_spec.empty()) {
    target = sim::parse_ckpt_target(ckpt_spec, names);
    have_target = true;
    sim::print_checkpoint_chain(std::cout, observer.timeline(), names,
                                static_cast<i32>(target.slot), static_cast<i32>(target.host),
                                target.ordinal, args.get_u64("depth", 16));
  }
  if (const u32 shards = ec.run.shards; shards > 1 && (msg_id != 0 || have_target)) {
    // Observed runs are sequential-only, so the shard/window annotation
    // comes from a second, unobserved sharded replay of the same config
    // with the barrier-window log enabled. The replay is bit-identical to
    // the observed run, so its windows map 1:1 onto the timeline's times.
    sim::ExperimentOptions sopts;
    sopts.protocols = opts.protocols;
    sopts.shards = shards;
    sim::Experiment sexp(ec.to_sim_config(), sopts);
    sexp.sharded()->enable_window_log(true);
    sexp.run();
    std::vector<u32> owners(sexp.network().n_hosts());
    for (net::HostId h = 0; h < sexp.network().n_hosts(); ++h) {
      owners[h] = sexp.network().owner_shard(h);
    }
    sim::print_shard_annotation(std::cout, observer.timeline(), owners,
                                sexp.sharded()->window_log(), msg_id,
                                have_target ? static_cast<i32>(target.host) : -1);
  }
  if (!dot_path.empty()) {
    const usize slot = have_target ? target.slot : 0;
    const core::CheckpointLog& log = exp.log(slot);
    const std::vector<u64> current = exp.harness().current_positions();
    const core::ProtocolKind kind = exp.kind(slot);
    core::GlobalCheckpoint line;
    bool have_line = false;
    std::string line_desc;
    if (kind == core::ProtocolKind::kTp) {
      // Anchor: the named checkpoint, else the newest checkpoint of the run.
      const core::CheckpointRecord* anchor = nullptr;
      if (have_target) {
        anchor = log.by_ordinal(target.host, target.ordinal);
      } else {
        for (net::HostId h = 0; h < log.n_hosts(); ++h) {
          const auto& records = log.of(h);
          if (!records.empty() && (anchor == nullptr || records.back().time > anchor->time)) {
            anchor = &records.back();
          }
        }
      }
      if (anchor != nullptr) {
        line = core::tp_recovery_line(log, *anchor, current);
        have_line = true;
        line_desc = "TP line anchored at C" + std::to_string(anchor->host) + "," +
                    std::to_string(anchor->ordinal);
      }
    } else if (kind != core::ProtocolKind::kBasicOnly &&
               kind != core::ProtocolKind::kUncoordinated) {
      u64 index = log.max_sn();
      if (have_target) {
        const core::CheckpointRecord* rec = log.by_ordinal(target.host, target.ordinal);
        if (rec != nullptr) index = rec->sn;
      }
      line = core::index_recovery_line(log, index, core::recovery_rule_for(kind), current);
      have_line = true;
      line_desc = "recovery line M=" + std::to_string(index);
    }
    std::string title = names.at(slot) + " checkpoint-interval graph";
    if (have_line) title += " — " + line_desc;
    if (dot_path == "-") {
      sim::write_interval_dot(std::cout, log, exp.harness().message_log(),
                              have_line ? &line : nullptr, title);
    } else {
      std::ofstream os(dot_path);
      if (!os.is_open()) {
        std::fprintf(stderr, "explain: cannot open %s for writing\n", dot_path.c_str());
        return 1;
      }
      sim::write_interval_dot(os, log, exp.harness().message_log(), have_line ? &line : nullptr,
                              title);
      std::printf("wrote %s\n", dot_path.c_str());
    }
  }
  return 0;
}

/// cmd_trace's ShardHooks: network first (it builds the id map), then the
/// harness journals — the same order Experiment::WindowMerger uses.
struct TraceMerger final : des::ShardHooks {
  net::Network& net;
  core::ProtocolHarness& harness;
  TraceMerger(net::Network& n, core::ProtocolHarness& h) : net(n), harness(h) {}
  void on_window_merge(des::Time) override { harness.merge_window(net.merge_window()); }
};

int cmd_trace(const sim::ArgParser& args) {
  const sim::ExperimentConfig ec = effective_config(args);
  sim::SimConfig cfg = ec.to_sim_config();
  // Collect the full trace with a vector sink wired through the stack.
  // With --shards the stack is composed by hand exactly as Experiment
  // does it: a ShardTraceMux in front of the sink, dst-owner routing in
  // the network, journaled MessageLog merges at every barrier.
  des::Simulator simulator;
  des::VectorSink sink;
  const u32 shards = std::min(ec.run.shards, cfg.network.n_mss);
  std::unique_ptr<des::ShardedSimulator> sharded;
  std::unique_ptr<des::ShardTraceMux> mux;
  des::TraceSink* front = &sink;
  if (shards > 1) {
    const f64 lookahead = std::min(cfg.network.wireless_latency, cfg.network.wired_latency);
    sharded = std::make_unique<des::ShardedSimulator>(simulator, shards,
                                                      des::QueueKind::kBinaryHeap, lookahead);
    simulator.set_sharded(sharded.get());
    mux = std::make_unique<des::ShardTraceMux>(shards, &sink);
    front = mux.get();
  }
  net::Network network(simulator, cfg.network, cfg.seed, front);
  core::ProtocolHarness harness(network, front);
  for (const auto kind : ec.protocols) {
    harness.add_protocol(core::make_protocol(kind));
  }
  std::unique_ptr<TraceMerger> merger;
  if (shards > 1) {
    network.enable_sharding(sharded.get(), mux.get());
    harness.enable_sharding(shards);
    merger = std::make_unique<TraceMerger>(network, harness);
    sharded->set_hooks(merger.get());
  }
  obs::Profiler profiler;
  const bool profile = profile_requested(args);
  if (profile) {
    // Hand-composed stack, so the profiler is wired by hand too — the
    // same hookups Experiment's constructor does.
    if (shards > 1) {
      sharded->set_profiler(&profiler);
    } else {
      profiler.ensure_lanes(1);
      simulator.set_prof(&profiler.lane_ref(0));
    }
    network.set_profiler(&profiler);
    harness.set_profiler(&profiler);
  }
  sim::WorkloadDriver workload(simulator, network, cfg);
  if (shards > 1) workload.enable_sharding(shards);
  sim::MobilityDriver mobility(simulator, network, cfg, &workload);
  network.start();
  workload.start();
  mobility.start();
  if (shards > 1) {
    sharded->run_until(cfg.sim_length);
    network.finalize_sharding();
    harness.finalize_sharding();
  } else {
    simulator.run_until(cfg.sim_length);
  }

  const std::string out = args.get_string("out", "");
  if (!out.empty()) {
    std::ofstream file(out);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", out.c_str());
      return 1;
    }
    des::write_trace(file, sink.records());
    std::printf("wrote %zu records to %s\n", sink.records().size(), out.c_str());
  }
  const des::TraceSummary summary = des::summarize(sink.records());
  std::printf("trace summary (%llu records, t in [%.2f, %.2f]):\n",
              static_cast<unsigned long long>(summary.total), summary.first_time,
              summary.last_time);
  for (u32 k = 0; k <= static_cast<u32>(des::TraceKind::kUser); ++k) {
    const auto kind = static_cast<des::TraceKind>(k);
    if (summary.of(kind) > 0) {
      std::printf("  %-18s %llu\n", des::trace_kind_name(kind),
                  static_cast<unsigned long long>(summary.of(kind)));
    }
  }
  if (profile) print_prof_summary(profiler);
  const std::string prof_trace = args.get_string("profile-trace", "");
  if (!prof_trace.empty()) obs::write_host_trace(prof_trace, profiler);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  static const char* kUsage =
      "usage: mobichk_cli <run|figure|recover|trace|explain|audit|report> [--flags]\n"
      "       mobichk_cli <command> --help    for the command's flag list\n";
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fputs(kUsage, argc < 2 ? stderr : stdout);
    return argc < 2 ? 2 : 0;
  }
  const std::string cmd = argv[1];
  if (cmd != "run" && cmd != "figure" && cmd != "recover" && cmd != "trace" && cmd != "explain" &&
      cmd != "audit" && cmd != "report") {
    std::fprintf(stderr, "unknown command: %s\n%s", cmd.c_str(), kUsage);
    return 2;
  }
  try {
    const sim::FlagSet flags = make_flags(cmd);
    const sim::ArgParser args = flags.parse(argc - 1, argv + 1);
    if (args.get_flag("help")) {
      flags.print_help(std::cout);
      return 0;
    }
    if (args.get_flag("dump-config")) {
      // Every command shares the config layer, so the dump lives here:
      // the merged file+flags config, reloadable through --config.
      sim::write_json(std::cout, effective_config(args));
      return 0;
    }
    if (cmd == "report") return cmd_report(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "figure") return cmd_figure(args);
    if (cmd == "recover") return cmd_recover(args);
    if (cmd == "trace") return cmd_trace(args);
    if (cmd == "explain") return cmd_explain(args);
    return cmd_audit(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
