// Scenario: a mobile host dies mid-run — walk through the recovery.
//
// Runs the paper's environment, then "fails" one host and uses the
// recovery machinery to (i) build the consistent global checkpoint each
// protocol associates on the fly with the failed host's last checkpoint,
// (ii) verify it is orphan-free, (iii) report where every member
// checkpoint physically lives (which MSS's stable storage), and (iv)
// quantify the undone computation — the paper's §6 future work, live.
#include <cstdio>

#include "mobichk.hpp"

int main(int argc, char** argv) {
  using namespace mobichk;
  const sim::ArgParser args(argc, argv);

  sim::SimConfig cfg;
  cfg.sim_length = args.get_f64("length", 50'000.0);
  cfg.t_switch = 1'000.0;
  cfg.p_switch = 0.8;
  cfg.seed = args.get_u64("seed", 99);

  sim::ExperimentOptions opts;  // TP, BCS, QBC paired
  sim::Experiment exp(cfg, opts);
  exp.run();

  const auto failed = static_cast<net::HostId>(args.get_u64("failed", 4));
  const auto fail_pos = exp.harness().current_positions();
  const auto& messages = exp.harness().message_log();

  std::printf("Failure of MH %u at t=%.0f after %llu events on that host.\n\n", failed,
              cfg.sim_length, static_cast<unsigned long long>(fail_pos[failed]));

  for (usize slot = 0; slot < exp.harness().protocol_count(); ++slot) {
    const auto& log = exp.log(slot);
    const auto kind = exp.kind(slot);
    std::printf("--- %s ---\n", core::protocol_kind_name(kind));

    core::GlobalCheckpoint line;
    if (kind == core::ProtocolKind::kTp) {
      // TP: the recovery line is anchored at the failed host's last
      // checkpoint via its recorded dependency vectors (CKPT[] / LOC[]).
      const auto& anchor = log.of(failed).back();
      line = core::tp_recovery_line(log, anchor, fail_pos);
      std::printf("anchor: checkpoint #%llu of MH %u (taken t=%.1f at MSS %u)\n",
                  static_cast<unsigned long long>(anchor.ordinal), failed, anchor.time,
                  anchor.location);
    } else {
      const u64 index = log.max_sn(failed);
      line = core::index_recovery_line(log, index, core::recovery_rule_for(kind), fail_pos);
      std::printf("recovery line index: %llu (the failed host's highest sequence number)\n",
                  static_cast<unsigned long long>(index));
    }

    const auto orphans = core::find_orphans(messages, line);
    std::printf("members:\n");
    for (net::HostId h = 0; h < log.n_hosts(); ++h) {
      if (line.members[h] != nullptr) {
        const auto* m = line.members[h];
        std::printf("  MH %-2u -> ckpt #%-4llu sn=%-5llu at MSS %u (t=%.1f, %s)\n", h,
                    static_cast<unsigned long long>(m->ordinal),
                    static_cast<unsigned long long>(m->sn), m->location, m->time,
                    checkpoint_kind_name(m->kind));
      } else {
        std::printf("  MH %-2u -> current state (no stored checkpoint needed)\n", h);
      }
    }
    u64 undone = 0;
    for (net::HostId h = 0; h < log.n_hosts(); ++h) undone += fail_pos[h] - line.pos[h];
    std::printf("orphan messages across the line: %zu (must be 0)\n", orphans.size());
    std::printf("computation undone: %llu events across all hosts\n\n",
                static_cast<unsigned long long>(undone));
  }
  return 0;
}
