// Structure-of-arrays storage for all mobile-host state.
//
// At city scale (10^4..10^6 MHs) a vector of fat host objects is the
// wrong shape: every MobileHost used to own a deque (one heap chunk each
// at construction) and scattered scalars, so touching one field of many
// hosts walked strided memory full of pointers. The arena keeps each
// field in its own dense array indexed by host id — constructing 10^5
// hosts costs a handful of allocations, and hot paths (event-position
// bumps, connectivity checks, location lookups) scan contiguous memory.
// MobileHost (net/mobile_host.hpp) is a thin view over this arena, which
// keeps the protocol-facing API unchanged.
#pragma once

#include <deque>
#include <unordered_set>
#include <vector>

#include "des/types.hpp"
#include "net/ids.hpp"
#include "net/message.hpp"

namespace mobichk::net {

/// FIFO mailbox over a recycled vector: pops advance a head index and the
/// buffer rewinds (keeping its capacity) whenever it empties, so steady
/// state deliver/consume cycles never allocate.
class Mailbox {
 public:
  usize size() const noexcept { return q_.size() - head_; }
  bool empty() const noexcept { return head_ == q_.size(); }

  void push(AppMessage msg) { q_.push_back(std::move(msg)); }

  /// Pre: !empty().
  AppMessage pop() {
    AppMessage msg = std::move(q_[head_]);
    ++head_;
    if (head_ == q_.size()) {
      q_.clear();
      head_ = 0;
    }
    return msg;
  }

  /// Calls `f(AppMessage&&)` for every queued message, then empties.
  template <typename F>
  void drain(F&& f) {
    for (usize i = head_; i < q_.size(); ++i) f(std::move(q_[i]));
    q_.clear();
    head_ = 0;
  }

 private:
  std::vector<AppMessage> q_;
  usize head_ = 0;
};

/// Messages an MSS holds for one (disconnected) host. A host rarely has
/// buffers at more than one MSS at a time, so a flat vector of per-cell
/// queues beats a map.
struct BufferedAt {
  MssId at = 0;
  std::deque<AppMessage> q;
};

/// All per-host network state, one array per field (index = dense HostId).
///
/// The MSS message buffers live here (indexed by the *host* they are held
/// for, tagged with the MSS holding them) rather than inside Mss: shard-
/// parallel windows have each host's owner shard touching only that
/// host's buffers, which would race on a shared per-MSS map.
struct HostArena {
  std::vector<MssId> mss;        ///< Current cell while connected; last cell otherwise.
  std::vector<u8> connected;     ///< 1 = attached to its cell.
  std::vector<u64> event_pos;    ///< Consistency-oracle event position.
  std::vector<Mailbox> mailbox;  ///< Delivered-but-unconsumed messages.
  std::vector<std::vector<BufferedAt>> buffered;  ///< MSS-held messages, per host.
  /// Transport dedup (only fed when duplication is on; an untouched
  /// unordered_set performs no heap allocation).
  std::vector<std::unordered_set<u64>> seen_ids;

  void init(u32 n_hosts) {
    mss.assign(n_hosts, 0);
    connected.assign(n_hosts, 1);
    event_pos.assign(n_hosts, 0);
    mailbox.assign(n_hosts, {});
    buffered.assign(n_hosts, {});
    seen_ids.assign(n_hosts, {});
  }

  /// Queues a message held at `cell` for `host` (FIFO per cell).
  void buffer_at(MssId cell, HostId host, AppMessage msg) {
    for (auto& b : buffered[host]) {
      if (b.at == cell) {
        b.q.push_back(std::move(msg));
        return;
      }
    }
    buffered[host].push_back(BufferedAt{cell, {}});
    buffered[host].back().q.push_back(std::move(msg));
  }

  /// Removes and returns everything `cell` holds for `host` (FIFO order).
  std::vector<AppMessage> drain_buffered(MssId cell, HostId host) {
    auto& entries = buffered[host];
    for (usize i = 0; i < entries.size(); ++i) {
      if (entries[i].at != cell) continue;
      std::vector<AppMessage> out(std::make_move_iterator(entries[i].q.begin()),
                                  std::make_move_iterator(entries[i].q.end()));
      entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
      return out;
    }
    return {};
  }

  usize buffered_count(MssId cell, HostId host) const {
    for (const auto& b : buffered[host]) {
      if (b.at == cell) return b.q.size();
    }
    return 0;
  }
};

}  // namespace mobichk::net
