// Application-message representation, including the protocol piggyback.
#pragma once

#include <algorithm>
#include <vector>

#include "des/types.hpp"
#include "net/ids.hpp"

namespace mobichk::net {

/// Bytes a LEB128 varint needs for `v`. The sparse piggyback encoding is
/// modelled (not serialized): wire-byte accounting charges what the value
/// would cost on the wire, and varints are what a real encoder would use
/// for the small gaps and counters that dominate delta entries.
constexpr usize varint_bytes(u64 v) noexcept {
  usize n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// One sparse piggyback entry: host `idx`'s checkpoint-interval requirement
/// and last-known location, shipped only when they changed since the last
/// message on this (src, dst) pair.
struct PbDelta {
  u32 idx = 0;   ///< Dense host id the entry describes.
  u32 ckpt = 0;  ///< CKPT[idx]: required checkpoint interval.
  u32 loc = 0;   ///< LOC[idx]: last-known MSS of idx.
};

/// Protocol control information piggybacked on an application message.
///
/// This is a generic container covering the needs of every protocol in the
/// suite: index-based protocols use `sn` only; the two-phase protocol (TP)
/// uses either the two dense transitive-dependency vectors or, in sparse
/// mode, a delta list carrying only the entries that changed since the
/// previous message to the same destination; coordinated protocols may use
/// `tag` for markers. `wire_bytes()` reports how much control data the
/// message actually carries, which feeds the channel-overhead accounting
/// the paper's section 2.2 motivates.
struct Piggyback {
  u64 sn = 0;               ///< Index-based protocols: sender's sequence number.
  std::vector<u32> vec_a;   ///< TP dense: CKPT[] dependency on checkpoint intervals.
  std::vector<u32> vec_b;   ///< TP dense: LOC[] dependency on MH locations.
  std::vector<PbDelta> deltas;  ///< TP sparse: entries changed since last msg to dst.
  u32 delta_seq = 0;        ///< TP sparse: per-(src,dst) sequence for gap detection.
  u32 dense_rank = 0;       ///< TP sparse: 2 * n_hosts, the dense-equivalent entry count.
  u32 tag = 0;              ///< Protocol-specific marker / flag.
  bool has_sn = false;      ///< Whether `sn` is meaningful (affects wire size).
  bool has_tag = false;     ///< Whether `tag` is carried (affects wire size).
  bool has_delta = false;   ///< Whether the sparse delta encoding is in use.

  /// Encoded cost of the delta list alone: seq + count + gap-coded indices
  /// + varint values. A real encoder keeps a one-bit escape to fall back
  /// to the dense layout when deltas would be larger (first contact, or
  /// pathological value growth), so the sparse cost is capped at the
  /// dense-equivalent size — `encoded <= dense` holds unconditionally.
  usize delta_encoded_bytes() const noexcept {
    usize bytes = varint_bytes(delta_seq) + varint_bytes(deltas.size());
    u32 prev = 0;
    for (const PbDelta& d : deltas) {
      bytes += varint_bytes(d.idx - prev) + varint_bytes(d.ckpt) + varint_bytes(d.loc);
      prev = d.idx;
    }
    return std::min(bytes, static_cast<usize>(dense_rank) * sizeof(u32));
  }

  /// Bytes of control information this piggyback adds on the wire.
  usize wire_bytes() const noexcept {
    usize bytes = 0;
    if (has_sn) bytes += sizeof(u64);
    bytes += (vec_a.size() + vec_b.size()) * sizeof(u32);
    if (has_delta) bytes += delta_encoded_bytes();
    // A carried tag costs wire bytes even when its value happens to be 0;
    // gating on the value silently undercounted those messages.
    if (has_tag) bytes += sizeof(u32);
    return bytes;
  }

  /// Bytes the same control information would cost with the dense layout
  /// (full CKPT[]/LOC[] vectors). Equals wire_bytes() for non-sparse
  /// piggybacks; for sparse ones it is the overhead the paper's original
  /// TP would have paid, kept for apples-to-apples figure comparisons.
  usize dense_bytes() const noexcept {
    usize bytes = 0;
    if (has_sn) bytes += sizeof(u64);
    bytes += (vec_a.size() + vec_b.size()) * sizeof(u32);
    if (has_delta) bytes += static_cast<usize>(dense_rank) * sizeof(u32);
    if (has_tag) bytes += sizeof(u32);
    return bytes;
  }
};

/// An application message in flight or in a mailbox.
struct AppMessage {
  u64 id = 0;               ///< Globally unique message id.
  HostId src = 0;
  HostId dst = 0;
  u32 payload_bytes = 0;    ///< Application payload size (excl. piggyback).
  des::Time sent_at = 0.0;
  u64 send_pos = 0;         ///< Sender's event position at send (consistency oracle).
  Piggyback pb;
  /// Sharded runs only: every protocol slot's piggyback travels by value
  /// with the message (sender and receiver may live on different shards,
  /// so the harness cannot park them in a shared pool). Sequential runs
  /// leave this empty and use the pooled parking path. Slot 0's piggyback
  /// is still mirrored into `pb` — that is the one on the wire.
  std::vector<Piggyback> pbs;

  usize wire_bytes() const noexcept { return payload_bytes + pb.wire_bytes(); }
};

}  // namespace mobichk::net
