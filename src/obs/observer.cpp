#include "obs/observer.hpp"

#include <stdexcept>

namespace mobichk::obs {

RunObserver::RunObserver() {
  kernel_.resolve(registry_);
  net_.resolve(registry_);
  sweep_.resolve(registry_);
  timeline_.set_dropped_counter(&registry_.counter("obs.timeline.dropped_events"));
}

CausalMonitor& RunObserver::enable_causal(const std::vector<TrackerMode>& modes) {
  if (n_hosts_ <= 0) {
    throw std::logic_error("RunObserver::enable_causal: set_n_hosts first");
  }
  monitor_ = std::make_unique<CausalMonitor>(static_cast<u32>(n_hosts_), modes, protocol_names_,
                                             registry_);
  timeline_.set_listener(monitor_.get());
  return *monitor_;
}

void RunObserver::finalize_causal() {
  if (monitor_ != nullptr) monitor_->finalize();
}

}  // namespace mobichk::obs
