#include "sim/mobility.hpp"

#include <cmath>

namespace mobichk::sim {

namespace {
/// Shape of the heavy-tailed residence alternate; alpha in (1, 2] keeps
/// the mean finite while the variance diverges (bursty dwell times).
constexpr f64 kParetoAlpha = 1.5;

f64 pareto_with_mean(des::RngStream& rng, f64 mean) {
  // Pareto(x_m, alpha) has mean x_m * alpha / (alpha - 1).
  const f64 x_m = mean * (kParetoAlpha - 1.0) / kParetoAlpha;
  const f64 u = 1.0 - rng.uniform01();  // (0, 1]
  return x_m * std::pow(u, -1.0 / kParetoAlpha);
}
}  // namespace

MobilityDriver::MobilityDriver(des::Simulator& sim, net::Network& net, const SimConfig& cfg,
                               WorkloadDriver* workload)
    : sim_(sim), net_(net), cfg_(cfg), workload_(workload) {
  rng_.reserve(net.n_hosts());
  for (net::HostId h = 0; h < net.n_hosts(); ++h) {
    rng_.emplace_back(cfg.seed, "mobility", h);
  }
  epoch_.assign(net.n_hosts(), 0);
}

void MobilityDriver::start() {
  for (net::HostId h = 0; h < net_.n_hosts(); ++h) enter_cell(h);
}

f64 MobilityDriver::sample_residence(net::HostId host, f64 mean) {
  if (cfg_.mobility_model == MobilityModelKind::kParetoResidence) {
    return pareto_with_mean(rng_.at(host), mean);
  }
  return des::Exponential(mean).sample(rng_.at(host));
}

net::MssId MobilityDriver::pick_switch_target(net::HostId host) {
  const net::MssId current = net_.host(host).mss();
  const u32 n = net_.n_mss();
  if (cfg_.mobility_model == MobilityModelKind::kRingNeighbor && n > 2) {
    const bool clockwise = des::bernoulli(rng_.at(host), 0.5);
    return clockwise ? static_cast<net::MssId>((current + 1) % n)
                     : static_cast<net::MssId>((current + n - 1) % n);
  }
  return static_cast<net::MssId>(des::uniform_index_excluding(rng_.at(host), n, current));
}

void MobilityDriver::on_event(const des::EventPayload& p) {
  const auto host = static_cast<net::HostId>(p.a);
  // Timers scheduled before a crash are void: the dead host's handoff /
  // disconnect / reconnect must not fire mid-outage.
  if (p.b != epoch_.at(host)) return;
  if (p.kind == des::EventKind::kHandoff) {
    do_switch(host);
  } else {
    p.sub == kSubDisconnect ? do_disconnect(host) : do_reconnect(host);
  }
}

void MobilityDriver::enter_cell(net::HostId host) {
  des::RngStream& rng = rng_.at(host);
  const f64 mean = cfg_.residence_mean_for(host);
  des::EventPayload p;
  p.target = this;
  p.a = host;
  p.b = epoch_.at(host);
  if (des::bernoulli(rng, cfg_.p_switch)) {
    const f64 residence = sample_residence(host, mean);
    p.kind = des::EventKind::kHandoff;
    des::route_schedule_after(sim_, residence, p);
  } else {
    const f64 residence = sample_residence(host, mean / cfg_.disconnect_residence_divisor);
    p.kind = des::EventKind::kConnectivity;
    p.sub = kSubDisconnect;
    des::route_schedule_after(sim_, residence, p);
  }
}

void MobilityDriver::do_switch(net::HostId host) {
  net_.switch_cell(host, pick_switch_target(host));
  enter_cell(host);
}

void MobilityDriver::do_disconnect(net::HostId host) {
  net_.disconnect(host);
  if (workload_ != nullptr) workload_->pause(host);
  const f64 away = des::Exponential(cfg_.disconnect_mean).sample(rng_.at(host));
  des::EventPayload p;
  p.target = this;
  p.kind = des::EventKind::kConnectivity;
  p.sub = kSubReconnect;
  p.a = host;
  p.b = epoch_.at(host);
  des::route_schedule_after(sim_, away, p);
}

void MobilityDriver::do_reconnect(net::HostId host) {
  const auto target =
      static_cast<net::MssId>(des::uniform_index(rng_.at(host), net_.n_mss()));
  net_.reconnect(host, target);
  if (workload_ != nullptr) workload_->resume(host);
  enter_cell(host);
}

}  // namespace mobichk::sim
