// Checkpoint / mobility timeline: timestamped probe events recorded when
// observability is on, consumed by the JSONL and Chrome-trace exporters.
//
// The DES kernel and the protocols are deliberately ignorant of export
// formats — they append POD ProbeEvents here; src/obs/export.* turns the
// vector into files after the run.
#pragma once

#include <vector>

#include "des/types.hpp"
#include "obs/metrics.hpp"

namespace mobichk::obs {

/// What happened. Values are stable (they appear in JSONL output).
enum class ProbeKind : u8 {
  kCheckpoint = 0,   ///< a protocol took a checkpoint on some host
  kHandoff = 1,      ///< host crossed a cell boundary (MSS switch)
  kDisconnect = 2,   ///< host voluntarily disconnected
  kReconnect = 3,    ///< host reconnected after a disconnection
  kReplication = 4,  ///< sweep engine finished one replication
  kConvergence = 5,  ///< sweep engine evaluated the CI stopping rule
  kSend = 6,         ///< application message left its source host
  kDeliver = 7,      ///< application message was consumed at its destination
  kSnPromote = 8,    ///< a checkpoint was relabelled with a larger index (COORD)
  kCrash = 9,        ///< fault injection killed the host
  kRecover = 10,     ///< host finished rollback + replay and rejoined
  kStorageTransfer = 11,  ///< data plane: a checkpoint upload / migration / fetch completed
};

/// Mirror of core::CheckpointKind — kept value-identical so recording is
/// a static_cast, but defined here so obs never includes core headers.
enum class CkptKind : u8 {
  kInitial = 0,
  kBasic = 1,
  kForced = 2,
};

/// Why a forced checkpoint fired (the paper's triggering conditions).
enum class ForcedRule : u8 {
  kNone = 0,              ///< not forced (basic / initial), or rule unknown
  kSnGreater = 1,         ///< CIC index rule: piggybacked m.sn > sn_i (BCS/QBC)
  kReceiveAfterSend = 2,  ///< TP: first receive after a send (phase_send set)
  kMarker = 3,            ///< coordinated protocol: coordinator marker
};

/// Human-readable rule text used by the exporters (and tests).
const char* forced_rule_name(ForcedRule rule) noexcept;
const char* probe_kind_name(ProbeKind kind) noexcept;

/// One timestamped occurrence. Fields beyond (t, kind, actor) are
/// kind-specific; unused ones stay zero.
struct ProbeEvent {
  f64 t = 0.0;         ///< simulation time (tu); replication index for sweep kinds
  ProbeKind kind = ProbeKind::kCheckpoint;
  CkptKind ckpt_kind = CkptKind::kInitial;  ///< kCheckpoint only
  ForcedRule rule = ForcedRule::kNone;      ///< kCheckpoint only
  bool replaced = false;  ///< QBC equivalence rule reused an existing checkpoint
  i32 actor = -1;         ///< host id (kCheckpoint/mobility/kSend src/kDeliver dst), point index (sweep)
  i32 track = -1;         ///< protocol slot (kCheckpoint/kSnPromote), MSS id (kHandoff), peer host (kSend/kDeliver)
  u64 a = 0;              ///< checkpoint/promoted sn; message id (kSend/kDeliver); replications used
  u64 b = 0;              ///< triggering message id (kCheckpoint); wire piggyback sn (kSend/kDeliver)
  f64 value = 0.0;        ///< wall seconds (kReplication), CI half-width (kConvergence)
};

/// Streaming consumer of probe events. A listener sees *every* event at
/// record time, before (and regardless of) the capacity cap, so online
/// analyses stay exact even when the stored timeline is bounded.
class ProbeEventListener {
 public:
  virtual ~ProbeEventListener() = default;
  virtual void on_probe_event(const ProbeEvent& e) = 0;
};

/// Append-only recorder. Reserves up front so steady-state recording does
/// not allocate on most runs; an occasional vector growth is acceptable
/// because the timeline only exists when observability is on.
class Timeline {
 public:
  explicit Timeline(usize reserve_hint = 4096) { events_.reserve(reserve_hint); }

  void record(const ProbeEvent& e) {
    if (listener_ != nullptr) listener_->on_probe_event(e);
    if (capacity_ != 0 && events_.size() >= capacity_) {
      ++dropped_;
      if (dropped_counter_ != nullptr) dropped_counter_->add();
      return;
    }
    events_.push_back(e);
  }
  const std::vector<ProbeEvent>& events() const noexcept { return events_; }
  usize size() const noexcept { return events_.size(); }
  void clear() noexcept { events_.clear(); }

  /// Caps the number of *stored* events (0 = unbounded, the default);
  /// excess events are counted, not stored, so week-long observed sweeps
  /// cannot exhaust memory silently. Listeners still see every event.
  void set_capacity(usize cap) noexcept { capacity_ = cap; }
  usize capacity() const noexcept { return capacity_; }
  /// Events discarded by the capacity cap so far.
  u64 dropped() const noexcept { return dropped_; }
  /// Mirrors the dropped count into a registry counter (may be nullptr).
  void set_dropped_counter(Counter* counter) noexcept { dropped_counter_ = counter; }

  /// Streams every recorded event into `listener` (nullptr = off).
  void set_listener(ProbeEventListener* listener) noexcept { listener_ = listener; }

 private:
  std::vector<ProbeEvent> events_;
  ProbeEventListener* listener_ = nullptr;
  Counter* dropped_counter_ = nullptr;
  usize capacity_ = 0;
  u64 dropped_ = 0;
};

}  // namespace mobichk::obs
