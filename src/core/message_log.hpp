// Record of every application message's send/receive positions.
//
// This is instrumentation, not part of any protocol: it is the oracle the
// consistency checker and the rollback machinery use to decide whether a
// message is orphan with respect to a global checkpoint.
#pragma once

#include <unordered_map>
#include <vector>

#include "des/types.hpp"
#include "net/ids.hpp"

namespace mobichk::core {

class MessageLog {
 public:
  /// One *delivery* of a message to the application. At-least-once
  /// transport means a message id may appear in several deliveries.
  struct Delivery {
    u64 msg_id = 0;
    net::HostId src = 0;
    net::HostId dst = 0;
    u64 send_pos = 0;  ///< Sender event position of the send event.
    u64 recv_pos = 0;  ///< Receiver event position of this receive event.
    u64 sn = 0;        ///< Piggybacked index (diagnostics).
  };

  void note_send(u64 msg_id, net::HostId src, net::HostId dst, u64 send_pos) {
    sends_.emplace(msg_id, Send{src, dst, send_pos});
  }

  /// Records a delivery; the send must have been noted first.
  void note_receive(u64 msg_id, u64 recv_pos, u64 sn) {
    const auto it = sends_.find(msg_id);
    if (it == sends_.end()) return;  // foreign message (not tracked)
    deliveries_.push_back(
        Delivery{msg_id, it->second.src, it->second.dst, it->second.send_pos, recv_pos, sn});
  }

  const std::vector<Delivery>& deliveries() const noexcept { return deliveries_; }

  u64 sends_recorded() const noexcept { return sends_.size(); }

  /// Messages sent but never delivered to the application (in flight or
  /// buffered when the run ended).
  u64 undelivered() const noexcept { return sends_.size() - delivered_ids(); }

 private:
  struct Send {
    net::HostId src;
    net::HostId dst;
    u64 send_pos;
  };

  u64 delivered_ids() const noexcept {
    // Deliveries may contain duplicates of one id; count distinct lazily.
    // (Cheap here: duplicates only exist in dedup-off test runs.)
    u64 distinct = 0;
    std::unordered_map<u64, bool> seen;
    for (const auto& d : deliveries_) {
      if (seen.emplace(d.msg_id, true).second) ++distinct;
    }
    return distinct;
  }

  std::unordered_map<u64, Send> sends_;
  std::vector<Delivery> deliveries_;
};

}  // namespace mobichk::core
