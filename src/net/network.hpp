// The mobile network substrate: MHs, MSSs, cells, channels, routing.
//
// Model (paper §3 and §5.1):
//  * Every MH is attached to exactly one MSS (its cell) while connected.
//  * Application messages travel MH -> current MSS (wireless, 0.01 tu),
//    are located and forwarded over the wired network (0.01 tu per MSS-MSS
//    hop), and descend MSS -> MH (wireless, 0.01 tu).
//  * The transport guarantees at-least-once delivery: the wireless leg may
//    duplicate (configurable probability); the host transport layer
//    deduplicates unless configured to expose duplicates.
//  * Handoff costs two control messages (old MSS, new MSS); a voluntary
//    disconnection costs one. Messages addressed to a disconnected MH are
//    buffered at its last MSS and forwarded when it reconnects.
#pragma once

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "des/distributions.hpp"
#include "des/event.hpp"
#include "des/stats.hpp"
#include "des/rng.hpp"
#include "des/sharded.hpp"
#include "des/simulator.hpp"
#include "des/trace.hpp"
#include "des/types.hpp"
#include "net/channel.hpp"
#include "net/handler.hpp"
#include "net/host_arena.hpp"
#include "net/ids.hpp"
#include "net/location_directory.hpp"
#include "net/message.hpp"
#include "net/mobile_host.hpp"
#include "net/mss.hpp"
#include "net/topology.hpp"
#include "obs/probes.hpp"
#include "obs/prof.hpp"
#include "obs/timeline.hpp"

namespace mobichk::net {

/// Static parameters of the network substrate.
struct NetworkConfig {
  u32 n_hosts = 10;             ///< Paper: 10 MHs.
  u32 n_mss = 5;                ///< Paper: 5 MSSs.
  f64 wireless_latency = 0.01;  ///< MH <-> MSS hop (paper: 0.01 tu).
  f64 wired_latency = 0.01;     ///< MSS <-> MSS transfer (paper: 0.01 tu).
  u32 location_search_hops = 0; ///< Extra wired hops to locate a recipient.
  f64 duplicate_prob = 0.0;     ///< Per-delivery duplication probability.
  bool transport_dedup = true;  ///< Suppress duplicates before the app sees them.
  /// Wireless cell bandwidth in bytes per time unit; 0 = ideal channel
  /// (constant latency, the paper's model). When positive, every
  /// transmission in a cell serializes through a shared FIFO channel and
  /// occupies it for wireless_latency + bytes / bandwidth.
  f64 wireless_bandwidth = 0.0;
  u32 control_message_bytes = 64;  ///< Size of handoff/disconnect messages.
  /// Shape of the wired network between MSSs; non-adjacent MSSs pay
  /// wired_latency per hop (paper: "transfer between adjacent MSSs").
  MssTopologyKind mss_topology = MssTopologyKind::kFullMesh;

  void validate() const;
};

/// Aggregate substrate statistics for one run.
struct NetworkStats {
  u64 app_sent = 0;
  u64 app_delivered = 0;       ///< Placed into a mailbox.
  u64 app_received = 0;        ///< Consumed by the application.
  u64 control_messages = 0;    ///< Handoff + disconnect + reconnect messages.
  u64 wireless_messages = 0;   ///< Every wireless hop, app + control.
  u64 wired_hops = 0;          ///< Every MSS-MSS transfer.
  u64 handoffs = 0;
  u64 disconnects = 0;
  u64 reconnects = 0;
  u64 crashes = 0;             ///< Injected host failures.
  u64 restores = 0;            ///< Post-recovery rejoins.
  u64 chase_forwards = 0;      ///< Re-forwards caused by in-flight mobility.
  u64 buffered_deliveries = 0; ///< Deliveries that waited out a disconnection.
  u64 duplicates_generated = 0;
  u64 duplicates_suppressed = 0;
  u64 payload_bytes = 0;
  u64 bulk_transfers = 0;      ///< Data-plane bulk wired transfers (migrations, fetches).
  u64 bulk_wired_bytes = 0;    ///< Bytes those transfers moved between MSSs.
  u64 piggyback_bytes = 0;     ///< Control information carried on app messages
                               ///< (encoded size: sparse piggybacks count deltas).
  u64 piggyback_dense_bytes = 0;  ///< Dense-equivalent control bytes (the cost the
                                  ///< paper-literal full vectors would have paid).
  des::Tally delivery_latency; ///< Send-to-mailbox latency of app messages.
};

/// The network substrate. Owns hosts, MSSs, the location directory, and
/// the channel model; mechanisms only (policy lives in src/sim/).
///
/// Message legs (uplink, wired routing, downlink, duplicate redelivery)
/// are scheduled as typed kMessageHop events dispatched back into this
/// object: the in-flight AppMessage is parked in a pooled slot and the
/// event payload carries only the pool index, the MSS the leg ends at,
/// and a flag bit — no per-event allocation.
class Network final : public des::EventTarget {
 public:
  /// `seed` feeds the channel randomness (duplication). `sink` may be
  /// nullptr to discard traces.
  Network(des::Simulator& sim, NetworkConfig cfg, u64 seed, des::TraceSink* sink = nullptr);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Installs the checkpointing-layer upcall handler. Must be called
  /// before start().
  void set_handler(HostEventHandler* handler) noexcept { handler_ = handler; }

  /// Attaches observability (both may be nullptr = off). The probe's
  /// metric pointers and the timeline must outlive the network.
  void set_observer(const obs::NetProbe* probe, obs::Timeline* timeline) noexcept {
    probe_ = probe;
    timeline_ = timeline;
  }

  /// Attaches the host-time profiler (nullptr = off). The executing lane
  /// is resolved per call, so this is safe in sharded runs.
  void set_profiler(obs::Profiler* prof) noexcept { prof_ = prof; }

  // -- spatial sharding -------------------------------------------------

  /// Switches the substrate into shard-parallel mode: hosts are owned by
  /// shards in contiguous cell blocks of their *current* placement
  /// (call after any custom start() placement is decided — the default
  /// round-robin placement from the constructor matches start()), the
  /// owner map is installed into `sharded`, and per-shard slices (stats,
  /// in-flight pools, egress channels, journals) are allocated. `mux`
  /// must be the TraceSink this network was constructed with (kSend
  /// records are patched in its buffers when message ids are finalized).
  /// Requires an ideal channel (no bandwidth cap, no duplication, no
  /// observer) and strictly positive latencies — the wired/wireless
  /// minimum is the conservative lookahead.
  void enable_sharding(des::ShardedSimulator* sharded, des::ShardTraceMux* mux);

  /// Barrier-time merge, run on the coordinator with all shards parked:
  /// assigns final message ids to this window's sends in global
  /// (time, shard) order, patches parked/egress messages and buffered
  /// kSend trace records, applies journaled directory moves, drains
  /// cross-shard egress legs into their owner queues, and flushes the
  /// trace mux. Returns the provisional -> final id map for this window
  /// (the harness merges its journals through it).
  const std::unordered_map<u64, u64>& merge_window();

  /// End-of-run fold: sums per-shard counter slices into stats() and
  /// replays the delivery-latency journals into the Tally in global
  /// time order (bit-identical to the sequential insertion order).
  void finalize_sharding();

  /// Owner shard of `host` (valid after enable_sharding).
  u32 owner_shard(HostId host) const { return owner_shard_[host]; }

  /// Places hosts round-robin over MSSs and fires on_host_init upcalls.
  void start();

  /// Places hosts per `placement` (size n_hosts) and fires on_host_init.
  void start(const std::vector<MssId>& placement);

  // -- topology access -------------------------------------------------
  u32 n_hosts() const noexcept { return cfg_.n_hosts; }
  u32 n_mss() const noexcept { return cfg_.n_mss; }
  MobileHost& host(HostId id) { return hosts_.at(id); }
  const MobileHost& host(HostId id) const { return hosts_.at(id); }
  Mss& mss(MssId id) { return mss_.at(id); }
  const Mss& mss(MssId id) const { return mss_.at(id); }
  /// Hierarchical location directory: host -> cell plus O(population)
  /// per-cell membership enumeration (kept in sync with every handoff,
  /// reconnection, and restore).
  const LocationDirectory& directory() const noexcept { return directory_; }
  /// Contention statistics of a cell's wireless channel (meaningful when
  /// wireless_bandwidth > 0; otherwise all-zero).
  const CellChannel& channel(MssId id) const { return channels_.at(id); }
  const MssTopology& topology() const noexcept { return topology_; }
  des::Simulator& sim() noexcept { return sim_; }
  const NetworkConfig& config() const noexcept { return cfg_; }
  const NetworkStats& stats() const noexcept { return stats_; }

  // -- application operations (driven by the workload model) -----------

  /// Executes an internal event at `host` (advances its event position).
  void internal_event(HostId host);

  /// Executes `count` consecutive internal events at `host` in one step
  /// (used by the workload to fill inter-communication gaps cheaply).
  void internal_events(HostId host, u64 count);

  /// Sends an application message; the handler fills the piggyback.
  /// Pre: the source host is connected.
  void send_app_message(HostId src, HostId dst, u32 payload_bytes);

  /// Consumes the oldest delivered message at `host`, invoking the
  /// handler's on_receive first. Returns false if the mailbox is empty.
  bool consume_one(HostId host);

  // -- mobility operations (driven by the mobility model) --------------

  /// Hands `host` off to `new_mss` (two control messages; basic
  /// checkpoint upcall). Pre: connected, new_mss != current.
  void switch_cell(HostId host, MssId new_mss);

  /// Voluntarily disconnects `host` (one control message; basic
  /// checkpoint upcall). Pre: connected.
  void disconnect(HostId host);

  /// Reconnects `host` at `new_mss`; buffered messages are forwarded.
  /// Pre: disconnected.
  void reconnect(HostId host, MssId new_mss);

  // -- failure operations (driven by the crash engine) ------------------

  /// Kills `host` without warning: unlike disconnect() there is no
  /// control message and no protocol upcall (the host had no chance to
  /// checkpoint). Volatile state — the mailbox and dedup set — is lost;
  /// undelivered mailbox messages are re-buffered at the host's MSS,
  /// whose stable message log retains them for replay. Pre: connected.
  void crash(HostId host);

  /// Accounts one bulk wired transfer (a checkpoint migration or a
  /// recovery-image fetch) of `bytes` across `hops` MSS-MSS legs. The
  /// checkpoint data plane calls this from the coordinator (window
  /// barriers and crash events), never inside a shard window, so it
  /// writes the global stats directly.
  void account_bulk_wired(u32 hops, u64 bytes) noexcept {
    stats_.wired_hops += hops;
    stats_.bulk_wired_bytes += bytes;
    ++stats_.bulk_transfers;
  }

  /// Rejoins `host` at `at_mss` after rollback + replay completed. Pays
  /// the reconnect control cost, fires on_reconnect (protocols checkpoint
  /// the restored state), and forwards messages buffered during the
  /// outage. Pre: crashed/disconnected.
  void restore(HostId host, MssId at_mss);

  /// Typed-event dispatch for in-flight message legs (des::EventTarget).
  void on_event(const des::EventPayload& payload) override;

 private:
  /// kMessageHop sub-kinds (EventPayload::sub).
  enum : u8 {
    kSubUplink = 0,   ///< MH -> MSS wireless leg arrived (a = source MSS).
    kSubRouted = 1,   ///< Wired transfer / search done (a = MSS, flags bit0 = targeted).
    kSubDeliver = 2,  ///< MSS -> MH wireless leg arrived (flags bit0 = is_duplicate).
  };

  /// Recycled storage for in-flight messages: one global pool in the
  /// sequential engine, one per shard in sharded mode (a leg is parked
  /// and unparked by the same shard — the owner of its destination).
  struct Pool {
    std::vector<AppMessage> parked;
    std::vector<u32> free;
  };

  /// A send registered during a shard window, awaiting its final message
  /// id at the barrier.
  struct SendReg {
    des::Time t = 0.0;       ///< Send time (merge key).
    u64 provisional = 0;     ///< Shard-local id stamped at send.
    usize trace_idx = 0;     ///< Buffered kSend record to patch.
  };

  /// A message leg crossing shards (only the send uplink can): handed to
  /// the destination's owner at the barrier.
  struct EgressLeg {
    des::Time t = 0.0;       ///< Absolute arrival time of the leg.
    MssId at = 0;
    u8 sub = 0;
    bool flag = false;
    AppMessage msg;
  };

  /// Everything one shard touches during a window, padded to keep the
  /// hot counters off other shards' cache lines.
  struct alignas(64) ShardSlice {
    NetworkStats stats;                   ///< Counter slice (Tally unused — see latency).
    Pool pool;                            ///< In-flight legs owned by this shard.
    std::vector<u32> provisional_parked;  ///< Pool slots holding provisional ids.
    std::vector<SendReg> sends;           ///< This window's sends, in time order.
    std::vector<std::pair<des::Time, f64>> latency;         ///< Delivery-latency journal.
    std::vector<std::pair<HostId, MssId>> dir_moves;        ///< Directory moves this window.
    std::vector<std::vector<EgressLeg>> egress;             ///< Per destination shard.
    u64 next_provisional = 0;
  };

  /// High bit marks a provisional (not yet merged) message id.
  static constexpr u64 kProvisionalBit = u64{1} << 63;

  /// The pool serving the calling context (TLS shard slice or global).
  Pool& cur_pool();
  /// Parks an in-flight message in `pool`; returns its slot index.
  u32 park(Pool& pool, AppMessage msg);
  /// Reclaims a parked message, freeing its slot for reuse.
  AppMessage unpark(u32 idx);
  /// Builds the kMessageHop payload for one message leg.
  des::EventPayload hop_payload(u8 sub, MssId at, u32 park_idx, bool flag) noexcept;

  /// The clock of the calling context: the TLS shard's simulator inside a
  /// window, the main simulator otherwise.
  des::Time cur_now() const {
    if (des::ShardContext* c = des::current_shard()) return c->sim->now();
    return sim_.now();
  }

  /// The stats the calling context accumulates into: the TLS shard's
  /// slice inside a window, the global aggregate otherwise.
  NetworkStats& st() {
    if (des::ShardContext* c = des::current_shard()) return slices_[c->shard].stats;
    return stats_;
  }

  /// Schedules a (non-send) message leg `delay` from the current clock.
  /// All such legs are destination-local: they execute on the owner shard
  /// of msg.dst, which in a window is the calling shard. Coordinator-side
  /// calls (restore-time redelivery) inject into the owner's queue
  /// directly — the shards are parked.
  void schedule_hop(f64 delay, u8 sub, MssId at, bool flag, AppMessage msg);

  /// Moves `host` to `new_mss` in the arena immediately (owner-local) and
  /// in the directory either immediately (sequential / coordinator) or at
  /// the next barrier (inside a window — the directory is shared).
  void set_mss(HostId host, MssId new_mss) {
    arena_.mss[host] = new_mss;
    if (des::ShardContext* c = des::current_shard()) {
      slices_[c->shard].dir_moves.emplace_back(host, new_mss);
    } else {
      directory_.move(host, new_mss);
    }
  }

  /// `targeted` is true when `at` was chosen because the destination was
  /// believed to be there (so finding it gone is a chase, not routing).
  void msg_at_mss(MssId at, AppMessage msg, bool targeted = false);
  /// Delay of a wireless transmission of `bytes` in `cell`, reserving the
  /// shared channel when a bandwidth is configured.
  f64 wireless_delay(MssId cell, usize bytes);
  /// Accounts a control message's channel occupancy (no delivery delay).
  void occupy_control(MssId cell);
  /// Schedules the wired transfer of `msg` from `from` to `to`, paying
  /// one wired_latency per hop, then re-runs msg_at_mss at the target.
  void wired_forward(MssId from, MssId to, AppMessage msg);
  void deliver_to_host(MssId from_mss, AppMessage msg, bool is_duplicate);
  void trace(des::TraceKind kind, u32 actor, u64 a = 0, u64 b = 0);

  /// Records a message-flow marker (kSend/kDeliver) on the timeline.
  /// `actor` is the host where the event happens, `peer` the other end;
  /// the piggybacked sn is the wire value (slot 0's protocol).
  void observe_message(obs::ProbeKind kind, const AppMessage& msg, HostId actor, HostId peer) {
    if (timeline_ == nullptr) return;
    obs::ProbeEvent e;
    e.t = sim_.now();
    e.kind = kind;
    e.actor = static_cast<i32>(actor);
    e.track = static_cast<i32>(peer);
    e.a = msg.id;
    e.b = msg.pb.has_sn ? msg.pb.sn : 0;
    timeline_->record(e);
  }

  /// Records a mobility marker on the timeline (handoff / (dis)connect).
  void observe_mobility(obs::ProbeKind kind, HostId host, i32 track) {
    if (timeline_ == nullptr) return;
    obs::ProbeEvent e;
    e.t = sim_.now();
    e.kind = kind;
    e.actor = static_cast<i32>(host);
    e.track = track;
    timeline_->record(e);
  }

  des::Simulator& sim_;
  NetworkConfig cfg_;
  HostEventHandler* handler_ = nullptr;
  const obs::NetProbe* probe_ = nullptr;
  obs::Profiler* prof_ = nullptr;
  obs::Timeline* timeline_ = nullptr;
  des::NullSink null_sink_;
  des::TraceSink* sink_;
  des::RngStream channel_rng_;
  MssTopology topology_;
  HostArena arena_;              ///< SoA storage for all per-host state.
  LocationDirectory directory_;  ///< host -> cell + per-cell membership.
  std::vector<MobileHost> hosts_;  ///< Thin views over arena_, index = id.
  std::vector<Mss> mss_;
  std::vector<CellChannel> channels_;
  NetworkStats stats_;
  Pool pool_;                      ///< In-flight message pool (sequential engine).
  u64 next_msg_id_ = 1;
  bool started_ = false;

  // -- sharded mode (null / empty in sequential runs) -------------------
  des::ShardedSimulator* sharded_ = nullptr;
  des::ShardTraceMux* mux_ = nullptr;
  std::vector<u32> owner_shard_;           ///< host -> owner shard.
  std::vector<ShardSlice> slices_;
  std::unordered_map<u64, u64> window_idmap_;  ///< provisional -> final, per window.
};

}  // namespace mobichk::net
