#include "sim/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace mobichk::sim {

void JsonWriter::newline() {
  if (!pretty_) return;
  os_ << '\n';
  for (usize i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::separator() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key on the same line
  }
  if (!stack_.empty()) {
    if (stack_.back().has_items) os_ << ',';
    stack_.back().has_items = true;
    newline();
  }
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  os_ << '{';
  stack_.push_back(Level{false, false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separator();
  os_ << '[';
  stack_.push_back(Level{true, false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  separator();
  os_ << '"';
  escape(k);
  os_ << "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separator();
  os_ << '"';
  escape(v);
  os_ << '"';
  return *this;
}

JsonWriter& JsonWriter::value(f64 v) {
  separator();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(u64 v) {
  separator();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(i64 v) {
  separator();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separator();
  os_ << (v ? "true" : "false");
  return *this;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  if (const JsonValue* v = find(key)) return *v;
  throw std::out_of_range("JsonValue: no member \"" + std::string(key) + "\"");
}

f64 JsonValue::as_f64() const {
  if (kind != Kind::kNumber) throw std::invalid_argument("JsonValue: not a number");
  return number;
}

u64 JsonValue::as_u64() const {
  if (kind != Kind::kNumber) throw std::invalid_argument("JsonValue: not a number");
  // Exact path: a plain digit token survives even above 2^53 (trace
  // hashes), where the f64 representation has already lost bits.
  if (!number_text.empty() &&
      number_text.find_first_not_of("0123456789") == std::string::npos) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(number_text.c_str(), &end, 10);
    if (errno == 0 && end == number_text.c_str() + number_text.size()) return v;
    throw std::invalid_argument("JsonValue: integer out of u64 range");
  }
  const f64 v = as_f64();
  if (v < 0.0 || v != std::floor(v)) {
    throw std::invalid_argument("JsonValue: not a non-negative integer");
  }
  return static_cast<u64>(v);
}

bool JsonValue::as_bool() const {
  if (kind != Kind::kBool) throw std::invalid_argument("JsonValue: not a boolean");
  return boolean;
}

const std::string& JsonValue::as_string() const {
  if (kind != Kind::kString) throw std::invalid_argument("JsonValue: not a string");
  return string;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind != Kind::kArray) throw std::invalid_argument("JsonValue: not an array");
  return array;
}

namespace {

// Recursive-descent parser over the document text. Depth is bounded to
// keep hostile input from exhausting the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after the document");
    return value;
  }

 private:
  static constexpr usize kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json_parse: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(usize depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    const char c = peek();
    JsonValue value;
    switch (c) {
      case '{': parse_object(value, depth); break;
      case '[': parse_array(value, depth); break;
      case '"':
        value.kind = JsonValue::Kind::kString;
        value.string = parse_string();
        break;
      case 't':
      case 'f':
        value.kind = JsonValue::Kind::kBool;
        if (consume_literal("true")) value.boolean = true;
        else if (consume_literal("false")) value.boolean = false;
        else fail("bad literal");
        break;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        break;
      default: {
        value.kind = JsonValue::Kind::kNumber;
        value.number = parse_number(value.number_text);
      }
    }
    return value;
  }

  void parse_object(JsonValue& value, usize depth) {
    value.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      value.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      const char next = peek();
      ++pos_;
      if (next == '}') return;
      if (next != ',') fail("expected ',' or '}'");
    }
  }

  void parse_array(JsonValue& value, usize depth) {
    value.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    for (;;) {
      value.array.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char next = peek();
      ++pos_;
      if (next == ']') return;
      if (next != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_codepoint(out, parse_hex4()); break;
        default: fail("bad escape");
      }
    }
  }

  u32 parse_hex4() {
    u32 code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<u32>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<u32>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<u32>(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    return code;
  }

  void append_codepoint(std::string& out, u32 code) {
    // BMP only; surrogate pairs never appear in this writer's output.
    if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate escapes are not supported");
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  f64 parse_number(std::string& token_out) {
    // Copy the token before strtod: the view need not be NUL-terminated.
    const usize start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const f64 value = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size()) fail("expected a value");
    token_out = token;
    return value;
  }

  std::string_view text_;
  usize pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) { return JsonParser(text).parse_document(); }

void JsonWriter::escape(std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\r': os_ << "\\r"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
}

}  // namespace mobichk::sim
