#include "core/protocols/lazy_bcs.hpp"

#include <gtest/gtest.h>

#include "core/harness.hpp"
#include "core/protocols/bcs.hpp"
#include "core/recovery.hpp"
#include "core/zgraph.hpp"
#include "des/simulator.hpp"
#include "net/network.hpp"
#include "sim/experiment.hpp"

namespace mobichk::core {
namespace {

class LazyBcsTest : public ::testing::Test {
 protected:
  LazyBcsTest() : net_(sim_, config(), 1), harness_(net_) {}

  static net::NetworkConfig config() {
    net::NetworkConfig cfg;
    cfg.n_hosts = 3;
    cfg.n_mss = 3;
    return cfg;
  }

  des::Simulator sim_;
  net::Network net_;
  ProtocolHarness harness_;
};

TEST_F(LazyBcsTest, LazinessOneIsExactlyBcs) {
  const usize bcs = harness_.add_protocol(std::make_unique<BcsProtocol>());
  const usize lazy = harness_.add_protocol(std::make_unique<LazyBcsProtocol>(1));
  net_.start({0, 1, 2});
  for (int i = 0; i < 6; ++i) {
    net_.switch_cell(0, (net_.host(0).mss() + 1) % 3);
    net_.send_app_message(0, 1, 8);
    sim_.run();
    net_.consume_one(1);
  }
  EXPECT_EQ(harness_.log(bcs).n_tot(), harness_.log(lazy).n_tot());
  EXPECT_EQ(harness_.log(bcs).max_sn(), harness_.log(lazy).max_sn());
}

TEST_F(LazyBcsTest, IndexAdvancesEveryKthBasic) {
  harness_.add_protocol(std::make_unique<LazyBcsProtocol>(3));
  net_.start({0, 1, 2});
  auto& lazy = static_cast<LazyBcsProtocol&>(harness_.protocol(0));
  for (int i = 1; i <= 7; ++i) {
    net_.switch_cell(0, (net_.host(0).mss() + 1) % 3);
    EXPECT_EQ(lazy.sequence_number(0), static_cast<u64>(i / 3)) << "after basic " << i;
  }
}

TEST_F(LazyBcsTest, ForcedCheckpointResetsTheLazyCounter) {
  harness_.add_protocol(std::make_unique<LazyBcsProtocol>(3));
  net_.start({0, 1, 2});
  auto& lazy = static_cast<LazyBcsProtocol&>(harness_.protocol(0));
  // Push host 0's index up so its message forces host 1.
  for (int i = 0; i < 3; ++i) net_.switch_cell(0, (net_.host(0).mss() + 1) % 3);
  ASSERT_EQ(lazy.sequence_number(0), 1u);
  net_.send_app_message(0, 1, 8);
  sim_.run();
  net_.consume_one(1);  // forced at host 1, sn jumps to 1
  EXPECT_EQ(lazy.sequence_number(1), 1u);
  // The next 2 basics at host 1 must not advance yet (counter was reset).
  net_.switch_cell(1, (net_.host(1).mss() + 1) % 3);
  net_.switch_cell(1, (net_.host(1).mss() + 1) % 3);
  EXPECT_EQ(lazy.sequence_number(1), 1u);
  net_.switch_cell(1, (net_.host(1).mss() + 1) % 3);
  EXPECT_EQ(lazy.sequence_number(1), 2u);
}

TEST(LazyBcsIntegration, FewerForcedCheckpointsButUselessOnes) {
  // The design-space point of the ablation: naive laziness trades forced
  // checkpoints for useless ones; QBC gets the savings without the waste.
  sim::SimConfig cfg;
  cfg.sim_length = 20'000.0;
  cfg.t_switch = 500.0;
  cfg.p_switch = 0.8;
  cfg.seed = 3;
  sim::ExperimentOptions opts;
  opts.protocols = {ProtocolKind::kBcs, ProtocolKind::kQbc, ProtocolKind::kLazyBcs};
  opts.params.lazy_bcs_laziness = 4;
  sim::Experiment exp(cfg, opts);
  exp.run();

  const auto& bcs = exp.log(0);
  const auto& qbc = exp.log(1);
  const auto& lazy = exp.log(2);
  EXPECT_LT(lazy.forced(), bcs.forced());

  const auto& messages = exp.harness().message_log();
  EXPECT_EQ(IntervalGraph(bcs, messages).useless_count(), 0u);
  EXPECT_EQ(IntervalGraph(qbc, messages).useless_count(), 0u);
  EXPECT_GT(IntervalGraph(lazy, messages).useless_count(), 0u);

  // Safety is intact despite the laziness: same-index lines stay
  // orphan-free.
  const auto current = exp.harness().current_positions();
  for (u64 m = 0; m <= lazy.max_sn(); ++m) {
    const auto cut = index_recovery_line(lazy, m, IndexLineRule::kFirstAtLeast, current);
    EXPECT_TRUE(find_orphans(messages, cut).empty()) << "index " << m;
  }
}

}  // namespace
}  // namespace mobichk::core
