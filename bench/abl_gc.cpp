// GC: stable-storage occupancy with checkpoint garbage collection.
//
// MSS stable storage is the resource §2.1(a) puts the checkpoints on.
// Once every host has reached index M, everything older than the
// M-line's members is dead. This bench reports, per protocol, how much
// of the log a continuous GC retains over time — and shows the flip side
// of lazy indexing: LazyBCS's slow index growth also slows GC down.
#include <cstdio>

#include "core/gc.hpp"
#include "sim/cli.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace mobichk;
  const sim::ArgParser args(argc, argv);

  sim::SimConfig cfg;
  cfg.sim_length = args.get_f64("length", 100'000.0);
  cfg.t_switch = 1'000.0;
  cfg.p_switch = 0.8;
  cfg.seed = 6;
  sim::ExperimentOptions opts;
  opts.protocols = {core::ProtocolKind::kBcs, core::ProtocolKind::kQbc,
                    core::ProtocolKind::kLazyBcs};
  opts.params.lazy_bcs_laziness = 8;
  opts.with_storage = true;
  opts.storage.track_history = true;  // enables byte-level GC accounting
  sim::Experiment exp(cfg, opts);
  exp.run();

  std::printf("GC — checkpoints retained by continuous garbage collection (horizon %.0f tu)\n\n",
              cfg.sim_length);
  std::printf("%-10s %12s %14s %14s %12s %14s %14s\n", "proto", "taken", "retained@end",
              "collectible", "stable idx", "peak retained", "reclaim(MB)");
  for (usize slot = 0; slot < opts.protocols.size(); ++slot) {
    const auto& log = exp.log(slot);
    const auto rule = core::recovery_rule_for(opts.protocols[slot]);
    const auto gc = core::analyze_gc(log, rule, exp.network().n_mss());
    const auto timeline = core::gc_occupancy_timeline(log, rule, cfg.sim_length, 50);
    u64 peak = 0;
    for (const auto& s : timeline) peak = std::max(peak, s.live_with_gc);
    const u64 reclaim = core::gc_reclaimable_bytes(gc, *exp.harness().storage(slot));
    std::printf("%-10s %12llu %14llu %14llu %12llu %14llu %14.1f\n",
                core::protocol_kind_name(opts.protocols[slot]),
                static_cast<unsigned long long>(log.total()),
                static_cast<unsigned long long>(gc.total_retained(log)),
                static_cast<unsigned long long>(gc.total_collectible()),
                static_cast<unsigned long long>(gc.stable_index),
                static_cast<unsigned long long>(peak), static_cast<f64>(reclaim) / 1e6);
  }
  std::printf("\nexpected: with GC the live set stays near one checkpoint per host for\n"
              "BCS/QBC (indices advance briskly and lines stabilize), while LazyBCS's\n"
              "reluctant index lets garbage pile up between increments.\n");
  return 0;
}
