// A minimal JSON emitter for structured experiment output.
//
// Write-only and allocation-light: enough to serialize run results and
// figure tables for downstream tooling, with correct string escaping and
// non-finite-number handling. Not a parser; not a DOM.
#pragma once

#include <ostream>
#include <string_view>
#include <vector>

#include "des/types.hpp"

namespace mobichk::sim {

/// Streaming JSON writer with explicit begin/end nesting.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, bool pretty = true) : os_(os), pretty_(pretty) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by a value or a begin_*.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(f64 v);
  JsonWriter& value(u64 v);
  JsonWriter& value(i64 v);
  JsonWriter& value(u32 v) { return value(static_cast<u64>(v)); }
  JsonWriter& value(int v) { return value(static_cast<i64>(v)); }
  JsonWriter& value(bool v);

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  void separator();
  void newline();
  void escape(std::string_view s);

  struct Level {
    bool is_array = false;
    bool has_items = false;
  };

  std::ostream& os_;
  bool pretty_;
  bool pending_key_ = false;
  std::vector<Level> stack_;
};

}  // namespace mobichk::sim
