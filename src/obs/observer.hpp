// RunObserver: the one object a caller creates to observe a run.
//
// Owns the MetricRegistry, the Timeline and the resolved probe structs;
// the Experiment wires non-owning probe pointers into the simulator, the
// network and the protocol harness. When no RunObserver is attached every
// probe pointer is null and the run is bit-identical to an unobserved one.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/probes.hpp"
#include "obs/timeline.hpp"

namespace mobichk::obs {

class RunObserver {
 public:
  RunObserver();
  RunObserver(const RunObserver&) = delete;
  RunObserver& operator=(const RunObserver&) = delete;

  MetricRegistry& registry() noexcept { return registry_; }
  const MetricRegistry& registry() const noexcept { return registry_; }
  Timeline& timeline() noexcept { return timeline_; }
  const Timeline& timeline() const noexcept { return timeline_; }

  const KernelProbe* kernel_probe() const noexcept { return &kernel_; }
  const NetProbe* net_probe() const noexcept { return &net_; }
  const SweepProbe* sweep_probe() const noexcept { return &sweep_; }

  /// Display names for protocol slots, in slot order; used by the
  /// Chrome-trace exporter to label per-protocol processes.
  void set_protocol_names(std::vector<std::string> names) { protocol_names_ = std::move(names); }
  const std::vector<std::string>& protocol_names() const noexcept { return protocol_names_; }

  /// Number of mobile hosts in the observed run (track labelling).
  void set_n_hosts(i32 n) noexcept { n_hosts_ = n; }
  i32 n_hosts() const noexcept { return n_hosts_; }

 private:
  MetricRegistry registry_;
  Timeline timeline_;
  KernelProbe kernel_;
  NetProbe net_;
  SweepProbe sweep_;
  std::vector<std::string> protocol_names_;
  i32 n_hosts_ = 0;
};

}  // namespace mobichk::obs
