// Pending-event set abstractions for the simulation kernel.
//
// Three interchangeable implementations are provided:
//  * BinaryHeapQueue  -- O(log n) push/pop, the robust default;
//  * CalendarQueue    -- Brown's calendar queue, amortized O(1) under
//                        stationary event-time distributions;
//  * SortedListQueue  -- an eager, obviously-correct sorted list used as
//                        the reference oracle by the determinism audit.
//
// All order events by (time, sequence number), so a simulation produces an
// identical trace whichever queue it runs on (verified by tests and by the
// determinism audit, sim/audit.hpp).
#pragma once

#include <functional>
#include <memory>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "des/types.hpp"

namespace mobichk::des {

/// Callback executed when an event fires.
using EventFn = std::function<void()>;

/// A scheduled event as stored in / returned by a queue.
struct EventEntry {
  Time time = 0.0;
  u64 seq = 0;  ///< Global scheduling order; breaks time ties deterministically.
  EventFn fn;

  friend bool operator<(const EventEntry& a, const EventEntry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
};

/// Abstract pending-event set ordered by (time, seq).
class EventQueue {
 public:
  virtual ~EventQueue() = default;

  /// Inserts an event. `seq` values must be unique across the queue's life.
  virtual void push(EventEntry entry) = 0;

  /// Removes and returns the minimum event. Pre: !empty().
  virtual EventEntry pop() = 0;

  /// Cancels the event with the given sequence number. Returns true when a
  /// live pending event was removed; cancelling a seq that already fired,
  /// was already cancelled, or was never scheduled is a no-op returning
  /// false and must not disturb the live count.
  virtual bool cancel(u64 seq) = 0;

  /// True when no live (non-cancelled) events remain.
  virtual bool empty() = 0;

  /// Number of live events.
  virtual usize size() const = 0;

  /// Human-readable implementation name (for benches and logs).
  virtual const char* name() const noexcept = 0;
};

/// Which queue implementation a Simulator should use.
enum class QueueKind : u8 {
  kBinaryHeap,
  kCalendar,
  kSortedList,
};

/// All queue kinds, in a stable order (used by the determinism audit).
inline constexpr QueueKind kAllQueueKinds[] = {QueueKind::kBinaryHeap, QueueKind::kCalendar,
                                               QueueKind::kSortedList};

/// Stable display name for a queue kind (matches EventQueue::name()).
const char* queue_kind_name(QueueKind kind) noexcept;

/// Inverse of queue_kind_name; throws std::invalid_argument on an
/// unknown name (used when deserializing experiment options).
QueueKind queue_kind_from_name(std::string_view name);

/// Binary min-heap over (time, seq) with lazy cancellation.
class BinaryHeapQueue final : public EventQueue {
 public:
  void push(EventEntry entry) override;
  EventEntry pop() override;
  bool cancel(u64 seq) override;
  bool empty() override;
  usize size() const override { return live_; }
  const char* name() const noexcept override { return "binary-heap"; }

 private:
  void sift_up(usize i);
  void sift_down(usize i);
  void drop_cancelled_top();

  std::vector<EventEntry> heap_;
  std::unordered_set<u64> pending_;    ///< Seqs physically in the heap and not cancelled.
  std::unordered_set<u64> cancelled_;  ///< Tombstones; always a subset of the heap's seqs.
  usize live_ = 0;
};

/// Brown's calendar queue: an array of day-buckets covering a rotating
/// "year"; each bucket holds a sorted list of events. Resizes itself to
/// keep ~1 event per bucket.
class CalendarQueue final : public EventQueue {
 public:
  CalendarQueue();

  void push(EventEntry entry) override;
  EventEntry pop() override;
  bool cancel(u64 seq) override;
  bool empty() override;
  usize size() const override { return live_; }
  const char* name() const noexcept override { return "calendar"; }

 private:
  usize bucket_of(Time t) const noexcept;
  void resize(usize new_bucket_count);
  void insert_sorted(std::vector<EventEntry>& bucket, EventEntry entry);
  /// Moves the search cursor (bucket + year) to cover time `t`.
  void reposition(Time t) noexcept;

  std::vector<std::vector<EventEntry>> buckets_;
  std::unordered_set<u64> pending_;    ///< Seqs in some bucket and not cancelled.
  std::unordered_set<u64> cancelled_;  ///< Tombstones; always a subset of bucketed seqs.
  f64 bucket_width_ = 1.0;
  usize current_bucket_ = 0;  ///< Bucket the search cursor is on.
  Time current_year_start_ = 0.0;
  Time cursor_time_ = 0.0;    ///< Virtual time the cursor has reached.
  Time last_popped_ = 0.0;
  usize live_ = 0;
};

/// Factory for the queue implementations.
std::unique_ptr<EventQueue> make_event_queue(QueueKind kind);

}  // namespace mobichk::des
