// Randomized-configuration stress: draw whole configurations at random
// (sizes, rates, models, substrate features) and check the cheap global
// invariants on each. Complements the hand-picked property matrix with
// breadth.
#include <gtest/gtest.h>

#include "core/recovery.hpp"
#include "des/distributions.hpp"
#include "des/rng.hpp"
#include "sim/experiment.hpp"

namespace mobichk::sim {
namespace {

SimConfig random_config(des::RngStream& rng) {
  SimConfig cfg;
  cfg.network.n_hosts = 2 + static_cast<u32>(des::uniform_index(rng, 14));  // 2..15
  cfg.network.n_mss = 2 + static_cast<u32>(des::uniform_index(rng, 6));    // 2..7
  cfg.sim_length = 1'000.0 + rng.uniform01() * 3'000.0;
  cfg.comm_mean = 4.0 + rng.uniform01() * 40.0;
  cfg.p_send = 0.1 + rng.uniform01() * 0.8;
  cfg.t_switch = 50.0 + rng.uniform01() * 2'000.0;
  cfg.p_switch = rng.uniform01();
  cfg.disconnect_mean = 50.0 + rng.uniform01() * 500.0;
  cfg.heterogeneity = rng.uniform01();
  cfg.seed = rng.next_u64();
  if (des::bernoulli(rng, 0.3)) {
    cfg.network.duplicate_prob = rng.uniform01() * 0.4;
    cfg.network.transport_dedup = des::bernoulli(rng, 0.5);
  }
  if (des::bernoulli(rng, 0.3)) cfg.network.wireless_bandwidth = 2'000.0 + rng.uniform01() * 1e5;
  cfg.network.mss_topology =
      static_cast<net::MssTopologyKind>(des::uniform_index(rng, 4));
  cfg.mobility_model = static_cast<MobilityModelKind>(des::uniform_index(rng, 3));
  return cfg;
}

TEST(RandomConfigs, InvariantsHoldAcrossTheConfigurationSpace) {
  des::RngStream rng(20260704, "random-configs");
  for (int round = 0; round < 30; ++round) {
    const SimConfig cfg = random_config(rng);
    SCOPED_TRACE("round " + std::to_string(round) + ": hosts=" +
                 std::to_string(cfg.network.n_hosts) + " seed=" + std::to_string(cfg.seed));
    ExperimentOptions opts;
    opts.protocols = {core::ProtocolKind::kTp, core::ProtocolKind::kBcs,
                      core::ProtocolKind::kQbc};
    opts.verify_consistency = true;  // sampled orphan check built in
    Experiment exp(cfg, opts);
    ASSERT_NO_THROW(exp.run());
    const auto& r = exp.result();

    const u64 mobility = r.net.handoffs + r.net.disconnects;
    for (const auto& p : r.protocols) {
      EXPECT_EQ(p.basic, mobility) << p.name;
      EXPECT_EQ(p.n_tot, p.basic + p.forced) << p.name;
      EXPECT_EQ(p.orphans_found, 0u) << p.name;
      EXPECT_EQ(p.initial, cfg.network.n_hosts) << p.name;
    }
    // QBC index dominance (the actual theorem: QBC sequence numbers
    // never exceed BCS's on the same trace). Checkpoint-count dominance
    // is an expectation-level result only — this very test found per-run
    // counterexamples (QBC a couple of checkpoints above BCS), because
    // slower index growth can re-time forced checkpoints. Allow slack.
    EXPECT_LE(r.protocols[2].max_index, r.protocols[1].max_index);
    EXPECT_EQ(r.protocols[2].basic, r.protocols[1].basic);
    EXPECT_LE(static_cast<f64>(r.protocols[2].n_tot),
              static_cast<f64>(r.protocols[1].n_tot) * 1.05 + 5.0);
    // Conservation: every delivery was sent; every receive was delivered.
    EXPECT_LE(r.net.app_received, r.net.app_delivered);
    EXPECT_LE(r.net.app_delivered,
              r.net.app_sent + r.net.duplicates_generated);
    // Rollback reaches consistency whatever the configuration.
    const auto rb = core::rollback_to_consistent(exp.log(1), exp.harness().message_log(),
                                                 exp.harness().current_positions());
    EXPECT_TRUE(core::find_orphans(exp.harness().message_log(), rb.line).empty());
  }
}

}  // namespace
}  // namespace mobichk::sim
