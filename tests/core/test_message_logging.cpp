#include "core/message_logging.hpp"

#include <gtest/gtest.h>

#include "core/gc.hpp"
#include "sim/experiment.hpp"

namespace mobichk::core {
namespace {

CheckpointRecord make(net::HostId host, u64 sn, u64 pos) {
  CheckpointRecord rec;
  rec.host = host;
  rec.sn = sn;
  rec.event_pos = pos;
  rec.kind = pos == 0 ? CheckpointKind::kInitial : CheckpointKind::kBasic;
  return rec;
}

TEST(LoggingRollback, OnlyFailedHostRollsBack) {
  CheckpointLog log(3);
  for (net::HostId h = 0; h < 3; ++h) log.append(make(h, 0, 0));
  log.append(make(1, 1, 10));
  MessageLog messages;
  const auto result = logging_rollback(log, messages, {20, 25, 30}, 1);
  EXPECT_EQ(result.rollback.line.pos[0], 20u);  // survivor untouched
  EXPECT_EQ(result.rollback.line.pos[1], 10u);  // failed host at its checkpoint
  EXPECT_EQ(result.rollback.line.pos[2], 30u);
  EXPECT_EQ(result.rollback.undone_events(), 15u);
  EXPECT_EQ(result.rollback.line.members[0], nullptr);
  EXPECT_NE(result.rollback.line.members[1], nullptr);
}

TEST(LoggingRollback, CountsReplayedDeliveries) {
  CheckpointLog log(2);
  log.append(make(0, 0, 0));
  log.append(make(1, 0, 0));
  log.append(make(1, 1, 10));
  MessageLog messages;
  messages.note_send(1, 0, 1, 2);
  messages.note_receive(1, 5, 0);  // before the checkpoint: not replayed
  messages.note_send(2, 0, 1, 4);
  messages.note_receive(2, 12, 0);  // between checkpoint and failure: replayed
  messages.note_send(3, 0, 1, 6);
  messages.note_receive(3, 30, 0);  // after the failure position: not replayed
  const auto result = logging_rollback(log, messages, {40, 20}, 1);
  EXPECT_EQ(result.replayed_deliveries, 1u);
}

TEST(LoggingRollback, Validation) {
  CheckpointLog log(2);
  log.append(make(0, 0, 0));
  log.append(make(1, 0, 0));
  MessageLog messages;
  EXPECT_THROW(logging_rollback(log, messages, {1}, 0), std::invalid_argument);
  EXPECT_THROW(logging_rollback(log, messages, {1, 1}, 7), std::invalid_argument);
}

TEST(LogStorage, CollectsMessagesInsideTheStableLine) {
  MessageLog messages;
  messages.note_send(1, 0, 1, 2);
  messages.note_receive(1, 3, 0);  // fully inside
  messages.note_send(2, 0, 1, 8);
  messages.note_receive(2, 4, 0);  // send outside (8 > 5)
  messages.note_send(3, 1, 0, 2);
  messages.note_receive(3, 9, 0);  // receive outside (9 > 5)
  GlobalCheckpoint stable;
  stable.pos = {5, 5};
  stable.members = {nullptr, nullptr};
  const auto stats = log_storage_stats(messages, stable, 100);
  EXPECT_EQ(stats.messages_logged, 3u);
  EXPECT_EQ(stats.bytes_logged, 300u);
  EXPECT_EQ(stats.messages_collectible, 1u);
  EXPECT_EQ(stats.bytes_collectible, 100u);
}

TEST(LoggingIntegration, LoggingBeatsPlainRollbackForSingleFailures) {
  sim::SimConfig cfg;
  cfg.sim_length = 20'000.0;
  cfg.t_switch = 1'000.0;
  cfg.p_switch = 0.8;
  cfg.seed = 17;
  sim::ExperimentOptions opts;
  opts.protocols = {ProtocolKind::kQbc};
  sim::Experiment exp(cfg, opts);
  exp.run();
  const auto fail_pos = exp.harness().current_positions();
  const auto& messages = exp.harness().message_log();
  for (net::HostId failed = 0; failed < exp.network().n_hosts(); ++failed) {
    const auto with_logs = logging_rollback(exp.log(0), messages, fail_pos, failed);
    const auto plain = rollback_to_consistent(exp.log(0), messages, fail_pos, failed);
    // Logging confines the rollback to the failed host, so it can never
    // undo more than the consistent-cut rollback.
    EXPECT_LE(with_logs.rollback.undone_events(), plain.undone_events()) << "host " << failed;
    // And its log GC keeps up: most messages are collectible by the end.
    const auto gc = analyze_gc(exp.log(0), IndexLineRule::kLastEqual, exp.network().n_mss());
    const auto logs = log_storage_stats(messages, gc.stable_line, 256);
    EXPECT_GT(logs.messages_collectible * 10, logs.messages_logged * 5);  // > 50%
  }
}

}  // namespace
}  // namespace mobichk::core
