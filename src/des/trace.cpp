#include "des/trace.hpp"

#include <bit>
#include <cstring>

namespace mobichk::des {

const char* trace_kind_name(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::kInternalEvent: return "internal";
    case TraceKind::kSend: return "send";
    case TraceKind::kDeliver: return "deliver";
    case TraceKind::kReceive: return "receive";
    case TraceKind::kHandoff: return "handoff";
    case TraceKind::kDisconnect: return "disconnect";
    case TraceKind::kReconnect: return "reconnect";
    case TraceKind::kBasicCheckpoint: return "basic-ckpt";
    case TraceKind::kForcedCheckpoint: return "forced-ckpt";
    case TraceKind::kControlMessage: return "control";
    case TraceKind::kStorageWrite: return "storage-write";
    case TraceKind::kStorageTransfer: return "storage-transfer";
    case TraceKind::kCrash: return "crash";
    case TraceKind::kRecover: return "recover";
    case TraceKind::kUser: return "user";
  }
  return "?";
}

void HashSink::mix(u64 v) noexcept {
  for (int i = 0; i < 8; ++i) {
    hash_ ^= (v >> (8 * i)) & 0xFFu;
    hash_ *= 0x100000001B3ULL;
  }
}

void HashSink::record(const TraceRecord& rec) {
  mix(std::bit_cast<u64>(rec.time));
  mix(rec.actor);
  mix(static_cast<u64>(rec.kind));
  mix(rec.a);
  mix(rec.b);
}

}  // namespace mobichk::des
