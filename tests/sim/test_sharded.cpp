// Cross-shard determinism suite for the conservative parallel engine:
// the merged sharded run must be bit-identical to the sequential loop —
// same trace hash, same counters, same recovery stories — for every
// shard count, every queue kind, and every config family the figures
// exercise (mobility, disconnections, heterogeneity, crashes).
#include <gtest/gtest.h>

#include "des/rng.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

namespace mobichk::sim {
namespace {

/// The Figure 1 golden determinism anchor (same config as the CLI's
/// audit default and kernel_smoke's fig1 point).
constexpr u64 kGoldenFig1Hash = 0xd165928ffbf08bb4ull;

SimConfig golden_config() {
  SimConfig cfg;
  cfg.sim_length = 50'000.0;
  cfg.t_switch = 1'000.0;
  cfg.p_switch = 1.0;
  cfg.heterogeneity = 0.0;
  cfg.seed = 42;
  return cfg;
}

RunResult run_with(const SimConfig& cfg, u32 shards,
                   des::QueueKind queue = des::QueueKind::kBinaryHeap) {
  ExperimentOptions opts;
  opts.collect_trace_hash = true;
  opts.queue_kind = queue;
  opts.shards = shards;
  return run_experiment(cfg, opts);
}

/// Everything deterministic in a RunResult must agree between the
/// sequential and the merged sharded run (wall clock and barrier stall
/// are explicitly excluded — they are host-time measurements).
void expect_identical(const RunResult& seq, const RunResult& par, const std::string& label) {
  EXPECT_EQ(seq.trace_hash, par.trace_hash) << label;
  EXPECT_EQ(seq.events_executed, par.events_executed) << label;
  EXPECT_EQ(seq.workload_ops, par.workload_ops) << label;
  EXPECT_EQ(seq.net.app_sent, par.net.app_sent) << label;
  EXPECT_EQ(seq.net.handoffs, par.net.handoffs) << label;
  EXPECT_EQ(seq.net.disconnects, par.net.disconnects) << label;
  ASSERT_EQ(seq.protocols.size(), par.protocols.size()) << label;
  for (usize i = 0; i < seq.protocols.size(); ++i) {
    const ProtocolRunStats& a = seq.protocols[i];
    const ProtocolRunStats& b = par.protocols[i];
    EXPECT_EQ(a.n_tot, b.n_tot) << label << " " << a.name;
    EXPECT_EQ(a.basic, b.basic) << label << " " << a.name;
    EXPECT_EQ(a.forced, b.forced) << label << " " << a.name;
    EXPECT_EQ(a.max_index, b.max_index) << label << " " << a.name;
    EXPECT_EQ(a.piggyback_bytes, b.piggyback_bytes) << label << " " << a.name;
    EXPECT_EQ(a.piggyback_dense_bytes, b.piggyback_dense_bytes) << label << " " << a.name;
    EXPECT_EQ(a.control_messages, b.control_messages) << label << " " << a.name;
    EXPECT_EQ(a.storage_wireless_bytes, b.storage_wireless_bytes) << label << " " << a.name;
  }
  // Recovery stories: same crashes, same rollback, same replay.
  EXPECT_EQ(seq.recovery.crashes_executed, par.recovery.crashes_executed) << label;
  EXPECT_EQ(seq.recovery.hosts_rolled_back, par.recovery.hosts_rolled_back) << label;
  EXPECT_EQ(seq.recovery.undone_events, par.recovery.undone_events) << label;
  EXPECT_EQ(seq.recovery.replayed_messages, par.recovery.replayed_messages) << label;
  EXPECT_EQ(seq.recovery.checkpoints_discarded, par.recovery.checkpoints_discarded) << label;
  EXPECT_DOUBLE_EQ(seq.recovery.total_recovery_time, par.recovery.total_recovery_time) << label;
}

TEST(Sharded, GoldenFig1HashEveryShardCount) {
  for (const u32 shards : {1u, 2u, 4u, 8u}) {
    const RunResult r = run_with(golden_config(), shards);
    EXPECT_EQ(r.trace_hash, kGoldenFig1Hash) << "shards=" << shards;
    EXPECT_EQ(r.by_name("TP").n_tot, 5'365u) << "shards=" << shards;
    EXPECT_EQ(r.by_name("BCS").n_tot, 1'788u) << "shards=" << shards;
    EXPECT_EQ(r.by_name("QBC").n_tot, 1'598u) << "shards=" << shards;
    EXPECT_EQ(r.shards, std::min(shards, 5u));  // clamped to n_mss = 5
    EXPECT_TRUE(r.invariants_ok) << "shards=" << shards;
    if (shards > 1) {
      EXPECT_GT(r.sync_rounds, 0u) << "shards=" << shards;
    }
  }
}

TEST(Sharded, GoldenFig1HashEveryQueueKind) {
  for (const des::QueueKind queue : des::kAllQueueKinds) {
    const RunResult r = run_with(golden_config(), 4, queue);
    EXPECT_EQ(r.trace_hash, kGoldenFig1Hash) << des::queue_kind_name(queue);
  }
}

TEST(Sharded, DataPlaneOnIdenticalAcrossShardsAndQueues) {
  // With the checkpoint data plane pricing every checkpoint and migrating
  // images on handoff, the journaled merge must still reproduce the
  // sequential run exactly: same trace hash (the kCheckpointTransfer
  // completions land at identical times) and the same byte/stall/locality
  // accounting, for every (queue kind x shard count) pair.
  SimConfig cfg = golden_config();
  cfg.sim_length = 5'000.0;
  const auto run_plane = [&](u32 shards, des::QueueKind queue) {
    ExperimentOptions opts;
    opts.collect_trace_hash = true;
    opts.queue_kind = queue;
    opts.shards = shards;
    opts.data_plane.enabled = true;
    return run_experiment(cfg, opts);
  };
  const RunResult seq = run_plane(1, des::QueueKind::kBinaryHeap);
  ASSERT_TRUE(seq.data_plane_enabled);
  ASSERT_GT(seq.data_plane.checkpoints, 0u);
  ASSERT_GT(seq.data_plane.migrations, 0u);
  for (const des::QueueKind queue : des::kAllQueueKinds) {
    for (const u32 shards : {1u, 2u, 4u, 5u}) {
      const std::string label = std::string("plane-on ") + des::queue_kind_name(queue) +
                                " shards=" + std::to_string(shards);
      const RunResult par = run_plane(shards, queue);
      expect_identical(seq, par, label);
      const storage::DataPlaneStats& a = seq.data_plane;
      const storage::DataPlaneStats& b = par.data_plane;
      EXPECT_EQ(a.checkpoints, b.checkpoints) << label;
      EXPECT_EQ(a.upload_bytes, b.upload_bytes) << label;
      EXPECT_EQ(a.full_bytes, b.full_bytes) << label;
      EXPECT_EQ(a.transfers_completed, b.transfers_completed) << label;
      EXPECT_DOUBLE_EQ(a.transfer_time, b.transfer_time) << label;
      EXPECT_DOUBLE_EQ(a.queue_delay, b.queue_delay) << label;
      EXPECT_EQ(a.migrations, b.migrations) << label;
      EXPECT_EQ(a.migration_bytes, b.migration_bytes) << label;
      EXPECT_DOUBLE_EQ(a.migration_copy_time, b.migration_copy_time) << label;
      EXPECT_DOUBLE_EQ(a.migration_stall, b.migration_stall) << label;
      EXPECT_EQ(a.locality_samples, b.locality_samples) << label;
      EXPECT_EQ(a.locality_hops, b.locality_hops) << label;
    }
  }
}

TEST(Sharded, FigureConfigFamiliesMatchSequential) {
  // One config per figure axis the paper sweeps: high mobility (Fig.1
  // left edge), disconnections (Fig.3/4), heterogeneity (Fig.5/6), plus
  // the ring and Pareto mobility extensions. Short horizon, full
  // RunResult equality at a non-power-of-two shard count.
  struct Variant {
    const char* label;
    void (*tweak)(SimConfig&);
  };
  const Variant variants[] = {
      {"high-mobility", [](SimConfig& c) { c.t_switch = 100.0; }},
      {"disconnections", [](SimConfig& c) { c.p_switch = 0.6; }},
      {"heterogeneity", [](SimConfig& c) { c.heterogeneity = 0.4; }},
      {"ring-mobility", [](SimConfig& c) { c.mobility_model = MobilityModelKind::kRingNeighbor; }},
      {"pareto-residence",
       [](SimConfig& c) { c.mobility_model = MobilityModelKind::kParetoResidence; }},
  };
  for (const Variant& v : variants) {
    SimConfig cfg = golden_config();
    cfg.sim_length = 5'000.0;
    cfg.seed = 7;
    v.tweak(cfg);
    const RunResult seq = run_with(cfg, 1);
    const RunResult par = run_with(cfg, 3);
    expect_identical(seq, par, v.label);
  }
}

TEST(Sharded, HandoffDuringFlightWithCrashes) {
  // Fast switching (T_switch = 200) keeps messages in flight across
  // handoffs constantly; independent MH crashes then force rollback and
  // replay through the sharded merge path. The recovery story must come
  // out identical to the sequential engine.
  SimConfig cfg = golden_config();
  cfg.sim_length = 6'000.0;
  cfg.t_switch = 200.0;
  cfg.seed = 11;
  cfg.faults.mode = CrashMode::kMhCrash;
  cfg.faults.first_crash_at = 1'500.0;
  cfg.faults.crash_interval = 1'200.0;
  cfg.faults.max_crashes = 3;
  const RunResult seq = run_with(cfg, 1);
  ASSERT_GT(seq.recovery.crashes_executed, 0u);
  ASSERT_GT(seq.recovery.undone_events, 0u);
  for (const u32 shards : {2u, 5u}) {
    const RunResult par = run_with(cfg, shards);
    expect_identical(seq, par, "mh-crash shards=" + std::to_string(shards));
  }
}

TEST(Sharded, CellOutageCrashInterleaving) {
  // A cell outage kills every host attached to one MSS at once — the
  // crash, the rollbacks, and the replays all land inside a single
  // shard's cell while neighbours keep sending into it.
  SimConfig cfg = golden_config();
  cfg.sim_length = 6'000.0;
  cfg.t_switch = 500.0;
  cfg.seed = 13;
  cfg.faults.mode = CrashMode::kCellOutage;
  cfg.faults.first_crash_at = 1'000.0;
  cfg.faults.crash_interval = 900.0;
  cfg.faults.max_crashes = 4;  // random cells; an empty cell is a skip, not a miss
  const RunResult seq = run_with(cfg, 1);
  ASSERT_GT(seq.recovery.crashes_executed, 0u);
  const RunResult par = run_with(cfg, 4);
  expect_identical(seq, par, "cell-outage");
}

TEST(Sharded, FuzzShardCountPerReplication) {
  // Each replication draws its own shard count; the merged result must
  // match the sequential run of the same seed exactly, so a figure built
  // from mixed shard counts is identical to one built sequentially.
  des::RngStream rng(99, "shard-fuzz");
  for (u64 seed = 1; seed <= 8; ++seed) {
    SimConfig cfg = golden_config();
    cfg.sim_length = 4'000.0;
    cfg.t_switch = 400.0;
    cfg.p_switch = 0.9;
    cfg.seed = seed;
    const u32 shards = 2 + static_cast<u32>(rng.uniform01() * 7.0);  // 2..8
    const RunResult seq = run_with(cfg, 1);
    const RunResult par = run_with(cfg, shards);
    expect_identical(seq, par,
                     "seed=" + std::to_string(seed) + " shards=" + std::to_string(shards));
  }
}

TEST(Sharded, FigureResultIdenticalToSequential) {
  // The satellite's end-to-end claim: an adaptive figure sweep run
  // entirely under the sharded engine reports the same cells as the
  // sequential engine (same means, same replication counts).
  FigureSpec spec;
  spec.title = "sharded-figure";
  spec.base = golden_config();
  spec.base.sim_length = 3'000.0;
  spec.t_switch_values = {300.0, 1'500.0};
  spec.min_seeds = 3;
  spec.max_seeds = 3;
  ExperimentOptions seq_opts, par_opts;
  par_opts.shards = 4;
  const FigureResult seq = run_figure(spec, seq_opts, 2);
  const FigureResult par = run_figure(spec, par_opts, 2);
  ASSERT_EQ(seq.cells.size(), par.cells.size());
  for (usize p = 0; p < seq.cells.size(); ++p) {
    ASSERT_EQ(seq.cells[p].size(), par.cells[p].size());
    for (usize k = 0; k < seq.cells[p].size(); ++k) {
      EXPECT_EQ(seq.cells[p][k].count(), par.cells[p][k].count()) << p << "/" << k;
      EXPECT_DOUBLE_EQ(seq.cells[p][k].mean(), par.cells[p][k].mean()) << p << "/" << k;
    }
  }
}

TEST(Sharded, ShardCountClampedToCells) {
  SimConfig cfg = golden_config();
  cfg.sim_length = 2'000.0;
  const RunResult r = run_with(cfg, 64);  // default network has 5 MSSs
  EXPECT_EQ(r.shards, 5u);
  EXPECT_EQ(r.trace_hash, run_with(cfg, 1).trace_hash);
}

TEST(Sharded, ObserverRejectedUnderSharding) {
  obs::RunObserver observer;
  ExperimentOptions opts;
  opts.shards = 2;
  opts.observer = &observer;
  SimConfig cfg = golden_config();
  cfg.sim_length = 1'000.0;
  EXPECT_THROW(Experiment(cfg, opts), std::invalid_argument);
}

}  // namespace
}  // namespace mobichk::sim
