// MICRO-A: cost of the post-run analysis machinery (google-benchmark).
//
// The oracles and recovery tools run over finished traces; this bench
// documents what they cost so users can size verification runs: orphan
// scan, vector-clock replay, zigzag analysis, rollback and GC analysis.
#include <benchmark/benchmark.h>

#include "core/gc.hpp"
#include "core/recovery.hpp"
#include "core/vc_oracle.hpp"
#include "core/zgraph.hpp"
#include "sim/experiment.hpp"

namespace {

using namespace mobichk;

/// One shared medium-sized run for every analysis benchmark.
sim::Experiment& shared_run() {
  static sim::Experiment* exp = [] {
    sim::SimConfig cfg;
    cfg.sim_length = 20'000.0;
    cfg.t_switch = 500.0;
    cfg.p_switch = 0.8;
    cfg.seed = 1;
    sim::ExperimentOptions opts;
    opts.protocols = {core::ProtocolKind::kQbc};
    auto* e = new sim::Experiment(cfg, opts);
    e->run();
    return e;
  }();
  return *exp;
}

void BM_OrphanScan(benchmark::State& state) {
  auto& exp = shared_run();
  const auto& log = exp.harness().log(0);
  const auto current = exp.harness().current_positions();
  const auto cut = core::index_recovery_line(log, log.max_sn() / 2,
                                             core::IndexLineRule::kLastEqual, current);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::find_orphans(exp.harness().message_log(), cut).size());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(exp.harness().message_log().deliveries().size()));
}
BENCHMARK(BM_OrphanScan);

void BM_VcOracleConstruction(benchmark::State& state) {
  auto& exp = shared_run();
  for (auto _ : state) {
    const core::VcOracle oracle(exp.network().n_hosts(), exp.harness().message_log());
    benchmark::DoNotOptimize(oracle.n_hosts());
  }
}
BENCHMARK(BM_VcOracleConstruction)->Unit(benchmark::kMillisecond);

void BM_ZigzagUselessScan(benchmark::State& state) {
  auto& exp = shared_run();
  const core::IntervalGraph graph(exp.harness().log(0), exp.harness().message_log());
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.useless_count());
  }
}
BENCHMARK(BM_ZigzagUselessScan)->Unit(benchmark::kMillisecond);

void BM_RollbackToConsistent(benchmark::State& state) {
  auto& exp = shared_run();
  auto& harness = exp.harness();
  const auto fail_pos = harness.current_positions();
  for (auto _ : state) {
    const auto result =
        core::rollback_to_consistent(harness.log(0), harness.message_log(), fail_pos, 0);
    benchmark::DoNotOptimize(result.undone_events());
  }
}
BENCHMARK(BM_RollbackToConsistent);

void BM_GcAnalysis(benchmark::State& state) {
  auto& exp = shared_run();
  for (auto _ : state) {
    const auto gc = core::analyze_gc(exp.harness().log(0), core::IndexLineRule::kLastEqual,
                                     exp.network().n_mss());
    benchmark::DoNotOptimize(gc.total_collectible());
  }
}
BENCHMARK(BM_GcAnalysis);

void BM_IndexRecoveryLine(benchmark::State& state) {
  auto& exp = shared_run();
  const auto& log = exp.harness().log(0);
  const auto current = exp.harness().current_positions();
  u64 m = 0;
  for (auto _ : state) {
    const auto cut =
        core::index_recovery_line(log, m++ % (log.max_sn() + 1),
                                  core::IndexLineRule::kLastEqual, current);
    benchmark::DoNotOptimize(cut.pos[0]);
  }
}
BENCHMARK(BM_IndexRecoveryLine);

}  // namespace

BENCHMARK_MAIN();
