#include "des/warmup.hpp"

#include <cmath>
#include <limits>

namespace mobichk::des {

MserResult mser(const std::vector<f64>& series, usize batch_size) {
  MserResult out;
  if (batch_size == 0) batch_size = 1;
  const usize n_batches = series.size() / batch_size;
  if (n_batches < 2) {
    for (const f64 x : series) out.truncated_mean += x;
    if (!series.empty()) out.truncated_mean /= static_cast<f64>(series.size());
    return out;
  }

  std::vector<f64> batches(n_batches);
  for (usize b = 0; b < n_batches; ++b) {
    f64 sum = 0.0;
    for (usize i = 0; i < batch_size; ++i) sum += series[b * batch_size + i];
    batches[b] = sum / static_cast<f64>(batch_size);
  }

  // Suffix sums let every candidate truncation be scored in O(1).
  std::vector<f64> suffix_sum(n_batches + 1, 0.0);
  std::vector<f64> suffix_sq(n_batches + 1, 0.0);
  for (usize b = n_batches; b-- > 0;) {
    suffix_sum[b] = suffix_sum[b + 1] + batches[b];
    suffix_sq[b] = suffix_sq[b + 1] + batches[b] * batches[b];
  }

  f64 best = std::numeric_limits<f64>::infinity();
  usize best_d = 0;
  for (usize d = 0; d <= n_batches / 2; ++d) {
    const f64 m = static_cast<f64>(n_batches - d);
    const f64 mean = suffix_sum[d] / m;
    const f64 var = suffix_sq[d] / m - mean * mean;
    const f64 statistic = std::sqrt(std::max(var, 0.0)) / std::sqrt(m);
    if (statistic < best) {
      best = statistic;
      best_d = d;
    }
  }

  out.truncation_batches = best_d;
  out.truncation_index = best_d * batch_size;
  out.mser_statistic = best;
  out.truncated_mean =
      suffix_sum[best_d] / static_cast<f64>(n_batches - best_d);
  return out;
}

}  // namespace mobichk::des
