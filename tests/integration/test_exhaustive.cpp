// Exhaustive small-model checks: on tiny runs, enumerate *every* global
// checkpoint made of stored checkpoints and verify
//   (1) the orphan oracle and the vector-clock oracle agree on each one,
//   (2) rollback_to_consistent returns the componentwise maximum of all
//       consistent cuts below the failure — the lattice-supremum claim,
//       checked against brute force.
#include <gtest/gtest.h>

#include "core/recovery.hpp"
#include "core/vc_oracle.hpp"
#include "sim/experiment.hpp"

namespace mobichk::sim {
namespace {

SimConfig tiny_config(u64 seed) {
  SimConfig cfg;
  cfg.network.n_hosts = 3;
  cfg.network.n_mss = 2;
  cfg.sim_length = 600.0;
  cfg.t_switch = 60.0;  // brisk mobility so checkpoints accumulate
  cfg.p_switch = 0.8;
  cfg.disconnect_mean = 50.0;
  cfg.comm_mean = 8.0;
  cfg.seed = seed;
  return cfg;
}

class ExhaustiveCuts : public ::testing::TestWithParam<u64> {};

TEST_P(ExhaustiveCuts, OraclesAgreeOnEveryCheckpointCombination) {
  ExperimentOptions opts;
  opts.protocols = {core::ProtocolKind::kBcs};
  Experiment exp(tiny_config(GetParam()), opts);
  exp.run();
  const auto& log = exp.log(0);
  const auto& messages = exp.harness().message_log();
  const core::VcOracle vc(3, messages);

  // Cap the enumeration so a busy seed cannot explode the test.
  const u64 c0 = std::min<u64>(log.count(0), 8);
  const u64 c1 = std::min<u64>(log.count(1), 8);
  const u64 c2 = std::min<u64>(log.count(2), 8);
  ASSERT_GE(c0 * c1 * c2, 8u) << "trivial run; adjust the config";

  u64 consistent_cuts = 0;
  for (u64 a = 0; a < c0; ++a) {
    for (u64 b = 0; b < c1; ++b) {
      for (u64 c = 0; c < c2; ++c) {
        core::GlobalCheckpoint cut;
        cut.members = {log.by_ordinal(0, a), log.by_ordinal(1, b), log.by_ordinal(2, c)};
        cut.pos = {cut.members[0]->event_pos, cut.members[1]->event_pos,
                   cut.members[2]->event_pos};
        const bool by_orphans = core::find_orphans(messages, cut).empty();
        ASSERT_EQ(by_orphans, vc.consistent(cut))
            << "cut (" << a << "," << b << "," << c << ")";
        consistent_cuts += by_orphans;
      }
    }
  }
  // The all-initial cut is always consistent.
  EXPECT_GE(consistent_cuts, 1u);
}

TEST_P(ExhaustiveCuts, RollbackIsTheLatticeSupremum) {
  ExperimentOptions opts;
  opts.protocols = {core::ProtocolKind::kBcs};
  Experiment exp(tiny_config(GetParam()), opts);
  exp.run();
  const auto& log = exp.log(0);
  const auto& messages = exp.harness().message_log();
  const auto fail_pos = exp.harness().current_positions();

  const auto result = core::rollback_to_consistent(log, messages, fail_pos);

  // Brute force: the componentwise maximum consistent checkpoint cut.
  std::vector<u64> best(3, 0);
  bool found = false;
  for (u64 a = 0; a < log.count(0); ++a) {
    for (u64 b = 0; b < log.count(1); ++b) {
      for (u64 c = 0; c < log.count(2); ++c) {
        core::GlobalCheckpoint cut;
        cut.members = {log.by_ordinal(0, a), log.by_ordinal(1, b), log.by_ordinal(2, c)};
        cut.pos = {cut.members[0]->event_pos, cut.members[1]->event_pos,
                   cut.members[2]->event_pos};
        if (cut.pos[0] > fail_pos[0] || cut.pos[1] > fail_pos[1] || cut.pos[2] > fail_pos[2]) {
          continue;
        }
        if (!core::find_orphans(messages, cut).empty()) continue;
        found = true;
        // Consistent cuts form a lattice: the supremum is reached
        // componentwise.
        for (usize h = 0; h < 3; ++h) best[h] = std::max(best[h], cut.pos[h]);
      }
    }
  }
  ASSERT_TRUE(found);
  for (usize h = 0; h < 3; ++h) {
    EXPECT_EQ(result.line.pos[h], best[h]) << "host " << h;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExhaustiveCuts, ::testing::Values(11, 22, 33, 44, 55),
                         [](const ::testing::TestParamInfo<u64>& pi) {
                           return "seed" + std::to_string(pi.param);
                         });

}  // namespace
}  // namespace mobichk::sim
