#include "core/protocols/tp.hpp"

#include <algorithm>

namespace mobichk::core {

void TpProtocol::do_bind() {
  per_host_.assign(ctx_.n_hosts, HostState{});
  for (auto& hs : per_host_) {
    hs.ckpt_req.assign(ctx_.n_hosts, 0);
    hs.loc.assign(ctx_.n_hosts, 0);
  }
}

void TpProtocol::host_init(const net::MobileHost& host) {
  HostState& hs = per_host_.at(host.id());
  hs.loc[host.id()] = host.mss();
  checkpoint(host, CheckpointKind::kInitial);
}

void TpProtocol::checkpoint(const net::MobileHost& host, CheckpointKind kind, net::MsgId trigger) {
  HostState& hs = per_host_.at(host.id());
  std::vector<u32> dep = hs.ckpt_req;
  dep[host.id()] = static_cast<u32>(hs.ckpt_count);  // anchor ordinal
  hs.loc[host.id()] = host.mss();
  const obs::ForcedRule rule = kind == CheckpointKind::kForced
                                   ? obs::ForcedRule::kReceiveAfterSend
                                   : obs::ForcedRule::kNone;
  take_checkpoint(host, kind, hs.ckpt_count, std::move(dep), hs.loc, /*replaced=*/false, rule,
                  trigger);
  ++hs.ckpt_count;
  // A fresh interval has no sends yet; phase returns to RECV (Russell's
  // discipline: forced checkpoints are needed only for receives that
  // follow a send *within the same interval*).
  hs.phase_send = false;
}

net::Piggyback TpProtocol::make_piggyback(const net::MobileHost& host) {
  HostState& hs = per_host_.at(host.id());
  net::Piggyback pb;
  pb.vec_a = hs.ckpt_req;
  // A receiver of this message depends on the sender's *current* interval,
  // so it will require the checkpoint that closes it (ordinal ckpt_count).
  pb.vec_a[host.id()] = static_cast<u32>(hs.ckpt_count);
  pb.vec_b = hs.loc;
  pb.vec_b[host.id()] = host.mss();
  hs.phase_send = true;
  return pb;
}

void TpProtocol::handle_receive(const net::MobileHost& host, const net::AppMessage& msg,
                                const net::Piggyback& pb) {
  HostState& hs = per_host_.at(host.id());
  if (hs.phase_send) {
    checkpoint(host, CheckpointKind::kForced, msg.id);
  }
  // Merge transitive dependencies after checkpointing, so the forced
  // checkpoint excludes this message.
  for (u32 j = 0; j < ctx_.n_hosts; ++j) {
    if (j == host.id()) continue;
    if (pb.vec_a[j] > hs.ckpt_req[j]) {
      hs.ckpt_req[j] = pb.vec_a[j];
      hs.loc[j] = pb.vec_b[j];
    }
  }
}

void TpProtocol::basic_checkpoint(const net::MobileHost& host) {
  checkpoint(host, CheckpointKind::kBasic);
}

void TpProtocol::handle_cell_switch(const net::MobileHost& host, net::MssId, net::MssId) {
  basic_checkpoint(host);
}

void TpProtocol::handle_disconnect(const net::MobileHost& host) { basic_checkpoint(host); }

}  // namespace mobichk::core
