// BCS: the index-based protocol of Briatico, Ciuffoletti & Simoncini.
// Paper §4.2.
//
// Every checkpoint carries a sequence number sn; sn rides on every
// outgoing message (one integer — this is why BCS scales in the number of
// hosts). A receive of m with m.sn > sn_i forces a checkpoint with
// sn_i := m.sn; basic checkpoints (cell switch, disconnection) increment
// sn_i. Checkpoints with equal sequence numbers form a consistent global
// checkpoint (with the first-greater rule on jumps).
#pragma once

#include <vector>

#include "core/protocol.hpp"

namespace mobichk::core {

class BcsProtocol final : public CheckpointProtocol {
 public:
  const char* name() const noexcept override { return "BCS"; }

  net::Piggyback make_piggyback(const net::MobileHost& host, net::HostId dst) override;
  void handle_receive(const net::MobileHost& host, const net::AppMessage& msg,
                      const net::Piggyback& pb) override;
  void handle_cell_switch(const net::MobileHost& host, net::MssId from, net::MssId to) override;
  void handle_disconnect(const net::MobileHost& host) override;

  /// Test access: current sequence number of `host`.
  u64 sequence_number(net::HostId host) const { return sn_.at(host); }

 protected:
  void do_bind() override { sn_.assign(ctx_.n_hosts, 0); }

 private:
  void basic_checkpoint(const net::MobileHost& host);

  std::vector<u64> sn_;
};

}  // namespace mobichk::core
