#include "core/recovery_time.hpp"

#include <algorithm>
#include <stdexcept>

namespace mobichk::core {

void RecoveryTimeConfig::validate() const {
  if (wireless_bandwidth <= 0.0 || wired_bandwidth <= 0.0) {
    throw std::invalid_argument("RecoveryTimeConfig: bandwidth must be positive");
  }
  if (wireless_latency < 0.0 || wired_latency < 0.0 || event_replay_time < 0.0 ||
      restart_overhead < 0.0) {
    throw std::invalid_argument("RecoveryTimeConfig: negative cost");
  }
}

RecoveryTimeEstimate estimate_recovery_time(const RollbackResult& rollback,
                                            const std::vector<net::MssId>& host_mss,
                                            u32 n_mss, const RecoveryTimeConfig& cfg) {
  cfg.validate();
  const usize n = rollback.line.pos.size();
  if (host_mss.size() != n) {
    throw std::invalid_argument("estimate_recovery_time: host_mss size mismatch");
  }

  RecoveryTimeEstimate out;
  if (n == 0) return out;  // no hosts: nothing to notify, zero estimate
  // Phase 1: one round of notifications, in parallel — a wired hop to
  // each host's MSS plus the wireless leg into the cell.
  out.coordination = cfg.wired_latency + cfg.wireless_latency;

  // Phase 2: per-cell serialized downloads.
  std::vector<f64> cell_busy(n_mss, 0.0);
  const f64 wireless_xfer =
      cfg.wireless_latency + static_cast<f64>(cfg.state_bytes) / cfg.wireless_bandwidth;
  const f64 wired_xfer =
      cfg.wired_latency + static_cast<f64>(cfg.state_bytes) / cfg.wired_bandwidth;
  f64 max_replay = 0.0;
  for (usize h = 0; h < n; ++h) {
    const CheckpointRecord* member = rollback.line.members[h];
    if (member == nullptr) continue;  // survivor keeps its state
    ++out.hosts_rolled_back;
    const net::MssId cell = host_mss.at(h);
    if (cell >= n_mss) {
      throw std::invalid_argument("estimate_recovery_time: host_mss entry out of range");
    }
    f64 transfer = wireless_xfer;
    out.wireless_bytes += cfg.state_bytes;
    if (member->location != cell) {
      // The image must first travel over the wired network.
      transfer += wired_xfer;
      out.wired_bytes += cfg.state_bytes;
    }
    cell_busy.at(cell) += transfer;
    const u64 undone = rollback.fail_pos.at(h) - rollback.line.pos.at(h);
    max_replay = std::max(max_replay, cfg.restart_overhead +
                                          static_cast<f64>(undone) * cfg.event_replay_time);
  }
  // With n_mss == 0 (or no host rolling back) the busiest-cell range is
  // empty or all-zero; dereferencing max_element of an empty vector was UB.
  out.state_transfer =
      cell_busy.empty() ? 0.0 : *std::max_element(cell_busy.begin(), cell_busy.end());
  out.replay = max_replay;
  return out;
}

}  // namespace mobichk::core
