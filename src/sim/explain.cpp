#include "sim/explain.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <ostream>
#include <stdexcept>

#include "core/zgraph.hpp"
#include "obs/causal.hpp"

namespace mobichk::sim {
namespace {

bool iequals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (usize i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

u64 parse_u64(const std::string& s, const char* what) {
  if (s.empty() || !std::all_of(s.begin(), s.end(), [](char c) {
        return std::isdigit(static_cast<unsigned char>(c));
      })) {
    throw std::invalid_argument(std::string("explain: ") + what + " must be a number, got '" +
                                s + "'");
  }
  return std::stoull(s);
}

std::string slot_label(const std::vector<std::string>& names, i32 slot) {
  if (slot >= 0 && static_cast<usize>(slot) < names.size()) return names[static_cast<usize>(slot)];
  return "slot " + std::to_string(slot);
}

const char* kind_label(obs::CkptKind kind) {
  switch (kind) {
    case obs::CkptKind::kInitial: return "initial";
    case obs::CkptKind::kBasic: return "basic";
    case obs::CkptKind::kForced: return "forced";
  }
  return "?";
}

}  // namespace

CkptTarget parse_ckpt_target(const std::string& spec,
                             const std::vector<std::string>& protocol_names) {
  const usize c1 = spec.find(':');
  const usize c2 = c1 == std::string::npos ? std::string::npos : spec.find(':', c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos) {
    throw std::invalid_argument("explain: --ckpt expects <proto>:<host>:<ordinal>, got '" + spec +
                                "'");
  }
  const std::string proto = spec.substr(0, c1);
  CkptTarget target;
  bool found = false;
  for (usize slot = 0; slot < protocol_names.size(); ++slot) {
    if (iequals(proto, protocol_names[slot])) {
      target.slot = slot;
      found = true;
      break;
    }
  }
  if (!found) {
    std::string known;
    for (const auto& n : protocol_names) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("explain: unknown protocol '" + proto + "' (run has: " + known +
                                ")");
  }
  target.host = static_cast<u32>(parse_u64(spec.substr(c1 + 1, c2 - c1 - 1), "host"));
  target.ordinal = parse_u64(spec.substr(c2 + 1), "ordinal");
  return target;
}

void print_checkpoint_chain(std::ostream& os, const obs::Timeline& timeline,
                            const std::vector<std::string>& protocol_names, i32 slot, i32 host,
                            u64 ordinal, usize max_depth) {
  const auto chain = obs::explain_checkpoint_chain(timeline, slot, host, ordinal, max_depth);
  os << "causal chain for " << slot_label(protocol_names, slot) << " checkpoint host " << host
     << " #" << ordinal << ":\n";
  if (chain.empty()) {
    os << "  (not on the timeline: host/ordinal out of range, or the run was not observed)\n";
    return;
  }
  for (usize i = 0; i < chain.size(); ++i) {
    const obs::ChainStep& s = chain[i];
    os << "  [" << i << "] t=" << s.t << "  host " << s.host << " ckpt #" << s.ordinal
       << " sn=" << s.sn << " " << kind_label(s.ckpt_kind);
    if (s.ckpt_kind == obs::CkptKind::kForced) os << " (" << obs::forced_rule_name(s.rule) << ")";
    if (s.replaced) os << " [equivalence reuse]";
    if (s.trigger_msg != 0) {
      os << "\n        <- triggered by msg " << s.trigger_msg;
      if (s.msg_found) {
        os << " from host " << s.msg_src << " (sent t=" << s.msg_sent_t << ", wire sn="
           << s.msg_wire_sn << ")";
      } else {
        os << " (send event not on the timeline)";
      }
    }
    os << "\n";
  }
  const obs::ChainStep& last = chain.back();
  if (last.trigger_msg == 0) {
    os << "  chain ends: " << kind_label(last.ckpt_kind)
       << " checkpoint with no triggering message\n";
  } else if (!last.msg_found) {
    os << "  chain ends: triggering send not recorded\n";
  } else {
    os << "  chain truncated at depth " << max_depth << "\n";
  }
}

void print_message_story(std::ostream& os, const obs::Timeline& timeline,
                         const std::vector<std::string>& protocol_names, u64 msg_id) {
  os << "message " << msg_id << ":\n";
  bool any = false;
  for (const obs::ProbeEvent& e : timeline.events()) {
    if (e.kind == obs::ProbeKind::kSend && e.a == msg_id) {
      any = true;
      os << "  t=" << e.t << "  sent by host " << e.actor << " -> host " << e.track
         << " (wire sn=" << e.b << ")\n";
    } else if (e.kind == obs::ProbeKind::kCheckpoint && e.b == msg_id) {
      any = true;
      os << "  t=" << e.t << "  forced checkpoint in " << slot_label(protocol_names, e.track)
         << " at host " << e.actor << " (sn=" << e.a << ", "
         << obs::forced_rule_name(e.rule) << ")\n";
    } else if (e.kind == obs::ProbeKind::kDeliver && e.a == msg_id) {
      any = true;
      os << "  t=" << e.t << "  delivered at host " << e.actor << "\n";
    }
  }
  if (!any) os << "  (no events on the timeline for this id)\n";
}

void write_interval_dot(std::ostream& os, const core::CheckpointLog& log,
                        const core::MessageLog& messages, const core::GlobalCheckpoint* line,
                        const std::string& title) {
  const core::IntervalGraph graph(log, messages);
  os << "digraph intervals {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=box, fontsize=10];\n"
     << "  label=\"";
  for (const char c : title) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << "\";\n";

  for (u32 h = 0; h < log.n_hosts(); ++h) {
    const bool line_virtual =
        line != nullptr && h < line->members.size() && line->members[h] == nullptr;
    os << "  subgraph cluster_h" << h << " {\n"
       << "    label=\"host " << h << "\";\n";
    const auto& records = log.of(h);
    for (const core::CheckpointRecord& rec : records) {
      const bool on_line = line != nullptr && h < line->members.size() &&
                           line->members[h] != nullptr && line->members[h]->ordinal == rec.ordinal;
      os << "    h" << h << "_c" << rec.ordinal << " [label=\"C" << h << "," << rec.ordinal
         << "\\nsn=" << rec.sn << "\\n" << checkpoint_kind_name(rec.kind) << "\"";
      if (on_line) {
        os << ", style=filled, fillcolor=palegreen";
      } else if (rec.kind == core::CheckpointKind::kForced) {
        os << ", style=filled, fillcolor=lightyellow";
      }
      os << "];\n";
    }
    if (line_virtual) {
      os << "    h" << h << "_cur [label=\"current\\nstate\", style=\"dashed,filled\","
         << " fillcolor=palegreen];\n";
    }
    for (usize i = 0; i + 1 < records.size(); ++i) {
      os << "    h" << h << "_c" << i << " -> h" << h << "_c" << (i + 1) << " [style=dotted];\n";
    }
    if (line_virtual && !records.empty()) {
      os << "    h" << h << "_c" << (records.size() - 1) << " -> h" << h
         << "_cur [style=dotted];\n";
    }
    os << "  }\n";
  }

  // Message edges between intervals, aggregated with a multiplicity label.
  std::map<std::tuple<u32, u64, u32, u64>, u64> edges;
  for (const auto& d : messages.deliveries()) {
    const u64 si = graph.interval_of(d.src, d.send_pos);
    const u64 di = graph.interval_of(d.dst, d.recv_pos);
    ++edges[{d.src, si, d.dst, di}];
  }
  for (const auto& [key, n] : edges) {
    const auto& [src, si, dst, di] = key;
    os << "  h" << src << "_c" << si << " -> h" << dst << "_c" << di;
    if (n > 1) os << " [label=\"" << n << " msgs\"]";
    os << ";\n";
  }
  os << "}\n";
}

void print_recovery_story(std::ostream& os, const CrashDriver& driver,
                          const std::vector<std::string>& protocol_names) {
  const std::vector<CrashRecord>& records = driver.records();
  if (records.empty()) {
    os << "no crash was executed — enable one with --crash-mode\n";
    return;
  }
  for (usize i = 0; i < records.size(); ++i) {
    const CrashRecord& r = records[i];
    os << "crash #" << i + 1 << " at t=" << r.t << " (" << crash_mode_name(r.mode)
       << "): " << (r.mode == CrashMode::kCellOutage ? "cell outage kills" : "failure kills")
       << " host";
    if (r.victims.size() > 1) os << 's';
    for (const auto v : r.victims) os << ' ' << v;
    os << '\n';
    for (usize slot = 0; slot < r.slot_undone.size(); ++slot) {
      os << "  " << slot_label(protocol_names, static_cast<i32>(slot)) << ": rolls back "
         << r.slot_undone[slot] << " events";
      if (r.slot_line_index[slot] > 0) os << " to line index " << r.slot_line_index[slot];
      if (r.tracker_line_index[slot] != ~0ULL) {
        os << (r.tracker_line_index[slot] == r.slot_line_index[slot]
                   ? " (online tracker agrees)"
                   : " (online tracker had committed index " +
                         std::to_string(r.tracker_line_index[slot]) + ")");
      }
      os << '\n';
    }
    os << "  executed (" << (protocol_names.empty() ? "slot 0" : protocol_names.front())
       << "'s line): " << r.hosts_taken_down << " host(s) down, " << r.hosts_rolled_back
       << " restored from stored checkpoints, " << r.checkpoints_discarded
       << " checkpoints discarded after " << r.orphan_iterations << " orphan pass(es)\n";
    os << "  replay: " << r.replayed_messages << " logged messages re-consumed\n";
    os << "  recovery time: ";
    if (r.actual_recovery > 0.0) {
      os << "measured " << r.actual_recovery << " tu, ";
    } else if (r.pending_restores > 0) {
      os << "still recovering at end of run, ";
    }
    os << "planned " << r.planned_recovery << " tu (pipelined), model estimate "
       << r.estimated_recovery << " tu (phase barriers)\n";
  }
  const CrashRunStats& s = driver.stats();
  os << "totals: " << s.crashes_executed << " crash(es) executed, " << s.crashes_skipped
     << " skipped, " << s.undone_events << " events undone, " << s.replayed_messages
     << " messages replayed, max recovery " << s.max_recovery_time << " tu\n";
}

void print_shard_annotation(std::ostream& os, const obs::Timeline& timeline,
                            const std::vector<u32>& owner_shard,
                            const std::vector<des::Time>& windows, u64 msg_id, i32 host) {
  // windows[w] is the exclusive horizon of barrier window w, ascending:
  // an event at time t ran in the first window whose horizon exceeds t.
  // Events past the last horizon (the tail the coordinator finishes
  // solo) report the horizon count.
  const auto window_of = [&](f64 t) -> usize {
    return static_cast<usize>(std::upper_bound(windows.begin(), windows.end(), t) -
                              windows.begin());
  };
  const auto shard_of = [&](i32 h) -> std::string {
    if (h < 0 || static_cast<usize>(h) >= owner_shard.size()) return "?";
    return std::to_string(owner_shard[static_cast<usize>(h)]);
  };
  os << "shard view (" << windows.size() << " barrier windows):\n";
  bool any = false;
  for (const obs::ProbeEvent& e : timeline.events()) {
    const bool msg_hit =
        msg_id != 0 && ((e.kind == obs::ProbeKind::kSend && e.a == msg_id) ||
                        (e.kind == obs::ProbeKind::kDeliver && e.a == msg_id) ||
                        (e.kind == obs::ProbeKind::kCheckpoint && e.b == msg_id));
    const bool host_hit = host >= 0 && e.kind == obs::ProbeKind::kCheckpoint && e.actor == host;
    if (!msg_hit && !host_hit) continue;
    any = true;
    os << "  t=" << e.t << "  ";
    switch (e.kind) {
      case obs::ProbeKind::kSend:
        os << "send msg " << e.a << " by host " << e.actor << " on shard " << shard_of(e.actor)
           << " (network legs run on shard " << shard_of(e.track) << ", the destination's owner)";
        break;
      case obs::ProbeKind::kDeliver:
        os << "deliver msg " << e.a << " at host " << e.actor << " on shard "
           << shard_of(e.actor);
        break;
      default:
        os << "checkpoint at host " << e.actor << " on shard " << shard_of(e.actor);
        break;
    }
    os << ", window " << window_of(e.t) << "\n";
  }
  if (!any) os << "  (no matching events on the timeline)\n";
}

}  // namespace mobichk::sim
