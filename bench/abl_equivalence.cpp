// ABL4: the value of QBC's equivalence rule across heterogeneity.
//
// Switching the rule off makes QBC literally BCS, so BCS serves as the
// ablated variant; this bench isolates the rule's contribution (forced
// checkpoints avoided and index growth slowed) as heterogeneity varies —
// the mechanism behind the paper's "the gain gets larger in heterogeneous
// environments" conclusion.
#include <cstdio>

#include "sim/cli.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace mobichk;
  const sim::ArgParser args(argc, argv);
  const u64 seeds = args.get_u64("seeds", 5);

  std::printf("ABL4 — QBC equivalence rule on/off (off = BCS), T_switch=1000, P_switch=0.8\n");
  std::printf("%6s %12s %12s %12s %14s %14s %12s\n", "H", "BCS N_tot", "QBC N_tot", "gain",
              "BCS max idx", "QBC max idx", "replaced");

  for (const f64 h : {0.0, 0.1, 0.3, 0.5, 0.7}) {
    f64 bcs_tot = 0.0, qbc_tot = 0.0, bcs_idx = 0.0, qbc_idx = 0.0, replaced = 0.0;
    for (u64 s = 1; s <= seeds; ++s) {
      sim::SimConfig cfg;
      cfg.sim_length = args.get_f64("length", 100'000.0);
      cfg.t_switch = 1'000.0;
      cfg.p_switch = 0.8;
      cfg.heterogeneity = h;
      cfg.seed = s;
      sim::ExperimentOptions opts;
      opts.protocols = {core::ProtocolKind::kBcs, core::ProtocolKind::kQbc};
      sim::Experiment exp(cfg, opts);
      exp.run();
      const auto& r = exp.result();
      bcs_tot += static_cast<f64>(r.protocols[0].n_tot);
      qbc_tot += static_cast<f64>(r.protocols[1].n_tot);
      bcs_idx += static_cast<f64>(r.protocols[0].max_index);
      qbc_idx += static_cast<f64>(r.protocols[1].max_index);
      // Count equivalence-rule firings from the QBC log.
      const auto& log = exp.log(1);
      for (net::HostId host = 0; host < log.n_hosts(); ++host) {
        for (const auto& rec : log.of(host)) replaced += rec.replaced_predecessor ? 1.0 : 0.0;
      }
    }
    const f64 n = static_cast<f64>(seeds);
    std::printf("%5.0f%% %12.1f %12.1f %11.1f%% %14.1f %14.1f %12.1f\n", h * 100, bcs_tot / n,
                qbc_tot / n, 100.0 * (bcs_tot - qbc_tot) / bcs_tot, bcs_idx / n, qbc_idx / n,
                replaced / n);
  }
  std::printf("\nexpected: the rule fires more and more often as heterogeneity grows (fast\n"
              "hosts take basic checkpoints without fresh receives) and QBC's index stays\n"
              "far below BCS's; the N_tot gain peaks at moderate heterogeneity — matching\n"
              "the paper, whose largest QBC gain is at H=30%%, not H=50%%.\n");
  return 0;
}
