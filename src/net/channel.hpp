// Wireless cell-channel model (paper §2.1 point b: low bandwidth, high
// channel contention).
//
// When a bandwidth is configured, every wireless transmission in a cell —
// uplinks, downlinks and control messages alike — serializes through one
// shared FIFO channel: a transmission of B bytes occupies the channel for
// propagation + B / bandwidth, and starts only when the channel is free.
// The model is a non-preemptive single server implemented as busy-until
// bookkeeping, which is exact for FIFO service and needs no queue
// objects. With bandwidth = 0 the channel is ideal (constant latency),
// which reproduces the paper's fixed 0.01 tu figure.
#pragma once

#include "des/types.hpp"

namespace mobichk::net {

class CellChannel {
 public:
  /// Reserves the channel for a transmission of `service` time units
  /// starting no earlier than `now`; returns the completion time.
  des::Time reserve(des::Time now, f64 service) noexcept {
    const des::Time start = busy_until_ > now ? busy_until_ : now;
    busy_until_ = start + service;
    busy_time_ += service;
    queued_time_ += start - now;
    ++transmissions_;
    return busy_until_;
  }

  /// Total time the channel has carried transmissions.
  f64 busy_time() const noexcept { return busy_time_; }

  /// Total time transmissions spent waiting for the channel.
  f64 queued_time() const noexcept { return queued_time_; }

  u64 transmissions() const noexcept { return transmissions_; }

  /// Fraction of [0, now] the channel was busy.
  f64 utilization(des::Time now) const noexcept {
    return now > 0.0 ? busy_time_ / now : 0.0;
  }

 private:
  des::Time busy_until_ = 0.0;
  f64 busy_time_ = 0.0;
  f64 queued_time_ = 0.0;
  u64 transmissions_ = 0;
};

}  // namespace mobichk::net
