#include "des/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "des/sorted_list_queue.hpp"

namespace mobichk::des {

namespace {
/// Cancelled entries tolerated in a structure beyond the live count before
/// a compaction pass reclaims them. Keeps stored entries <= 2*live + slack
/// so cancel-heavy runs cannot grow the queues without bound, while small
/// queues never thrash on compaction.
constexpr usize kDeadSlack = 64;
}  // namespace

// ---------------------------------------------------------------------------
// BinaryHeapQueue
// ---------------------------------------------------------------------------

EventHandle BinaryHeapQueue::push(EventEntry entry) {
  const EventHandle handle = slots_.acquire();
  entry.slot = handle.slot;
  heap_.push_back(std::move(entry));
  sift_up(heap_.size() - 1);
  ++live_;
  assert(heap_.size() == live_ + dead_);
  return handle;
}

void BinaryHeapQueue::drop_cancelled_top() {
  while (!heap_.empty() && slots_.is_cancelled(heap_.front().slot)) {
    slots_.release(heap_.front().slot);
    --dead_;
    std::swap(heap_.front(), heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

EventEntry BinaryHeapQueue::pop() {
  drop_cancelled_top();
  assert(!heap_.empty() && "pop() on empty queue");
  EventEntry out = std::move(heap_.front());
  std::swap(heap_.front(), heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  slots_.release(out.slot);
  --live_;
  assert(heap_.size() == live_ + dead_);
  return out;
}

Time BinaryHeapQueue::peek_time() {
  drop_cancelled_top();
  assert(!heap_.empty() && "peek_time() on empty queue");
  return heap_.front().time;
}

Time BinaryHeapQueue::peek_time_below(Time bound) {
  if (live_ == 0) return kNoEventBelow;
  // Dropping cancelled tops is a pure reclaim: it releases only tombstoned
  // slots, so live handles and the eventual pop order are untouched.
  drop_cancelled_top();
  const Time t = heap_.front().time;
  return t < bound ? t : kNoEventBelow;
}

bool BinaryHeapQueue::cancel(EventHandle handle) {
  // Lazy: mark the slot and skip the entry when it surfaces. Only a
  // still-pending generation may be cancelled; a fired, unknown or
  // double-cancelled handle must neither disturb live_ nor leak a
  // tombstone.
  if (!slots_.cancel(handle)) return false;
  --live_;
  ++dead_;
  if (dead_ > live_ + kDeadSlack) compact();
  return true;
}

void BinaryHeapQueue::compact() {
  // Reclaim every cancelled entry in one pass and rebuild the heap. Pop
  // order is unaffected: the heap property plus the (time, seq) comparator
  // determine it regardless of internal layout.
  ++compactions_;
  usize kept = 0;
  for (usize i = 0; i < heap_.size(); ++i) {
    if (slots_.is_cancelled(heap_[i].slot)) {
      slots_.release(heap_[i].slot);
      continue;
    }
    if (kept != i) heap_[kept] = std::move(heap_[i]);
    ++kept;
  }
  heap_.resize(kept);
  dead_ = 0;
  for (usize i = heap_.size() / 2; i-- > 0;) sift_down(i);
  assert(heap_.size() == live_);
}

void BinaryHeapQueue::sift_up(usize i) {
  while (i > 0) {
    const usize parent = (i - 1) / 2;
    if (!(heap_[i] < heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void BinaryHeapQueue::sift_down(usize i) {
  const usize n = heap_.size();
  for (;;) {
    const usize l = 2 * i + 1;
    const usize r = 2 * i + 2;
    usize smallest = i;
    if (l < n && heap_[l] < heap_[smallest]) smallest = l;
    if (r < n && heap_[r] < heap_[smallest]) smallest = r;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

// ---------------------------------------------------------------------------
// CalendarQueue
// ---------------------------------------------------------------------------

namespace {
constexpr usize kMinBuckets = 2;
constexpr usize kInitialBuckets = 8;
/// Width estimation: up to this many adjacent-gap samples, spread evenly
/// over the sorted pending set. Brown's classic rule samples only the
/// first ~25 events, which mis-tunes when the near future is dense and
/// the tail sparse (or vice versa); an even sample sees the whole
/// distribution at O(1) extra cost per resize.
constexpr usize kWidthSamples = 64;
/// Scan-cost monitor: every kTuneWindow pops, compare buckets scanned to
/// pops; above kScanPerPopLimit the geometry is stale (width far off the
/// current event spacing) and a re-tune is forced.
constexpr u64 kTuneWindow = 1024;
constexpr f64 kScanPerPopLimit = 4.0;
}  // namespace

CalendarQueue::CalendarQueue() { buckets_.resize(kInitialBuckets); }

usize CalendarQueue::bucket_of(Time t) const noexcept {
  const f64 virtual_bucket = std::floor(t / bucket_width_);
  return static_cast<usize>(std::fmod(virtual_bucket, static_cast<f64>(buckets_.size())));
}

void CalendarQueue::insert_sorted(std::vector<EventEntry>& bucket, EventEntry entry) {
  // Buckets are kept sorted in *descending* (time, seq) order so the next
  // event to fire is at the back (O(1) removal).
  const auto pos = std::upper_bound(
      bucket.begin(), bucket.end(), entry,
      [](const EventEntry& a, const EventEntry& b) { return b < a; });
  bucket.insert(pos, std::move(entry));
}

void CalendarQueue::reposition(Time t) noexcept {
  cursor_time_ = t;
  const f64 year_len = bucket_width_ * static_cast<f64>(buckets_.size());
  current_year_start_ = std::floor(t / year_len) * year_len;
  current_bucket_ = bucket_of(t);
}

EventHandle CalendarQueue::push(EventEntry entry) {
  assert(entry.time >= last_popped_ && "calendar queue does not support scheduling in the past");
  // The cursor may sit past this event's year (e.g. after a jump to a far
  // minimum that was then superseded): pull it back so the scan cannot
  // skip the new event.
  if (entry.time < cursor_time_) reposition(entry.time);
  const EventHandle handle = slots_.acquire();
  entry.slot = handle.slot;
  insert_sorted(buckets_[bucket_of(entry.time)], std::move(entry));
  ++live_;
  if (live_ > 2 * buckets_.size()) resize(buckets_.size() * 2);
  return handle;
}

bool CalendarQueue::cancel(EventHandle handle) {
  // Only a still-pending generation may be cancelled: decrementing live_
  // for a fired or unknown handle made empty() report true while real
  // events were still bucketed, silently truncating the simulation.
  if (!slots_.cancel(handle)) return false;
  --live_;
  ++dead_;
  if (dead_ > live_ + kDeadSlack) compact();
  return true;
}

void CalendarQueue::purge_tail(std::vector<EventEntry>& bucket) {
  while (!bucket.empty() && slots_.is_cancelled(bucket.back().slot)) {
    slots_.release(bucket.back().slot);
    --dead_;
    bucket.pop_back();
  }
}

void CalendarQueue::compact() {
  // Erase every cancelled entry in place; buckets stay sorted, so pop
  // order is unaffected.
  ++compactions_;
  for (auto& bucket : buckets_) {
    std::erase_if(bucket, [this](const EventEntry& e) {
      if (!slots_.is_cancelled(e.slot)) return false;
      slots_.release(e.slot);
      return true;
    });
  }
  dead_ = 0;
}

usize CalendarQueue::seek_min() {
  assert(live_ > 0 && "seek_min() on empty queue");
  const usize nb = buckets_.size();
  for (;;) {
    const Time year_len = bucket_width_ * static_cast<f64>(nb);
    // Scan up to one full year starting at the cursor.
    for (usize k = 0; k < nb; ++k) {
      ++scan_steps_;
      const usize raw = current_bucket_ + k;
      const bool wrapped = raw >= nb;
      const usize b = raw % nb;
      auto& bucket = buckets_[b];
      // Purge cancelled entries at the tail (the earliest events).
      purge_tail(bucket);
      const Time year_start = current_year_start_ + (wrapped ? year_len : 0.0);
      const Time bucket_top = year_start + bucket_width_ * static_cast<f64>(b + 1);
      if (!bucket.empty() && bucket.back().time < bucket_top) {
        if (wrapped) current_year_start_ += year_len;
        current_bucket_ = b;
        // Commit the cursor time too: a later push of an earlier event
        // must see a cursor it has to pull back, even when the found
        // minimum was only peeked and not removed.
        cursor_time_ = bucket.back().time;
        return b;
      }
    }
    // Nothing due within a year: jump directly to the global minimum.
    scan_steps_ += nb;
    const EventEntry* min_entry = nullptr;
    for (auto& bucket : buckets_) {
      purge_tail(bucket);
      if (!bucket.empty() && (min_entry == nullptr || bucket.back() < *min_entry)) {
        min_entry = &bucket.back();
      }
    }
    assert(min_entry != nullptr);
    reposition(min_entry->time);
    // Loop re-runs the scan; it will now find the minimum immediately.
  }
}

EventEntry CalendarQueue::pop() {
  assert(live_ > 0 && "pop() on empty queue");
  auto& bucket = buckets_[seek_min()];
  EventEntry out = std::move(bucket.back());
  bucket.pop_back();
  cursor_time_ = out.time;
  last_popped_ = out.time;
  slots_.release(out.slot);
  --live_;
  ++pops_;
  if (live_ < buckets_.size() / 2 && buckets_.size() > kMinBuckets) {
    resize(buckets_.size() / 2);
  } else if (pops_ - pops_at_tune_ >= kTuneWindow) {
    // Scan-cost monitor: when seek_min walked too many buckets per pop
    // over the last window, the width no longer matches the live event
    // spacing — rebuild at the same bucket count with a fresh estimate.
    const u64 window_scans = scan_steps_ - scan_at_tune_;
    if (static_cast<f64>(window_scans) >
        kScanPerPopLimit * static_cast<f64>(pops_ - pops_at_tune_)) {
      ++retunes_;
      resize(buckets_.size());
    }
    pops_at_tune_ = pops_;
    scan_at_tune_ = scan_steps_;
  }
  return out;
}

Time CalendarQueue::peek_time() {
  assert(live_ > 0 && "peek_time() on empty queue");
  // seek_min commits the cursor to the minimum's bucket, which the
  // following pop re-uses; it never removes the entry, so a push of an
  // earlier event in between still pulls the cursor back.
  return buckets_[seek_min()].back().time;
}

Time CalendarQueue::peek_time_below(Time bound) {
  if (live_ == 0) return kNoEventBelow;
  // seek_min only moves the cursor and purges tombstones; the minimum
  // entry stays in place, so this probe cannot perturb pop order or
  // invalidate live handles (push pulls the cursor back when an earlier
  // event arrives later).
  const Time t = buckets_[seek_min()].back().time;
  return t < bound ? t : kNoEventBelow;
}

void CalendarQueue::resize(usize new_bucket_count) {
  // Estimate a bucket width from the spacing of the earliest events.
  std::vector<EventEntry> all;
  all.reserve(live_);
  for (auto& bucket : buckets_) {
    for (auto& e : bucket) {
      if (slots_.is_cancelled(e.slot)) {
        slots_.release(e.slot);
        --dead_;
        continue;
      }
      all.push_back(std::move(e));
    }
    bucket.clear();
  }
  assert(dead_ == 0);
  std::sort(all.begin(), all.end());
  if (all.size() >= 2) {
    // Estimate the typical event spacing from adjacent gaps sampled
    // evenly across the whole pending set, and take their median: robust
    // both to a cluster of simultaneous events (zero gaps) and to a lone
    // far-future outlier (one huge gap), either of which would wreck a
    // mean-of-first-k estimate.
    const usize samples = std::min<usize>(all.size() - 1, kWidthSamples);
    const usize stride = (all.size() - 1) / samples;
    f64 gaps[kWidthSamples];
    for (usize s = 0; s < samples; ++s) {
      const usize i = s * stride;
      gaps[s] = all[i + 1].time - all[i].time;
    }
    std::sort(gaps, gaps + samples);
    f64 gap = gaps[samples / 2];
    if (gap <= 0.0) {
      // Median gap is zero (mostly-simultaneous events): fall back to the
      // mean over the sampled span, then to the last known width.
      const f64 span = all[(samples - 1) * stride + 1].time - all[0].time;
      gap = span > 0.0 ? span / static_cast<f64>(samples) : bucket_width_ / 3.0;
    }
    bucket_width_ = 3.0 * gap;
  }
  buckets_.assign(new_bucket_count, {});
  live_ = 0;
  // Reset the cursor to the earliest pending event (or keep current epoch).
  reposition(all.empty() ? last_popped_ : all.front().time);
  for (auto& e : all) {
    insert_sorted(buckets_[bucket_of(e.time)], std::move(e));
    ++live_;
  }
}

std::unique_ptr<EventQueue> make_event_queue(QueueKind kind) {
  switch (kind) {
    case QueueKind::kBinaryHeap:
      return std::make_unique<BinaryHeapQueue>();
    case QueueKind::kCalendar:
      return std::make_unique<CalendarQueue>();
    case QueueKind::kSortedList:
      return std::make_unique<SortedListQueue>();
  }
  return std::make_unique<BinaryHeapQueue>();
}

const char* queue_kind_name(QueueKind kind) noexcept {
  switch (kind) {
    case QueueKind::kBinaryHeap:
      return "binary-heap";
    case QueueKind::kCalendar:
      return "calendar";
    case QueueKind::kSortedList:
      return "sorted-list";
  }
  return "unknown";
}

QueueKind queue_kind_from_name(std::string_view name) {
  for (const QueueKind kind : kAllQueueKinds) {
    if (name == queue_kind_name(kind)) return kind;
  }
  throw std::invalid_argument("unknown queue kind: " + std::string(name));
}

}  // namespace mobichk::des
