#include "sim/json.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "sim/report.hpp"
#include "sim/sweep.hpp"

namespace mobichk::sim {
namespace {

std::string compact(std::function<void(JsonWriter&)> build) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  build(w);
  return os.str();
}

TEST(JsonWriter, EmptyObjectAndArray) {
  EXPECT_EQ(compact([](JsonWriter& w) { w.begin_object().end_object(); }), "{}");
  EXPECT_EQ(compact([](JsonWriter& w) { w.begin_array().end_array(); }), "[]");
}

TEST(JsonWriter, SimpleFields) {
  const std::string s = compact([](JsonWriter& w) {
    w.begin_object();
    w.field("a", u64{1}).field("b", 2.5).field("c", "x").field("d", true);
    w.end_object();
  });
  EXPECT_EQ(s, R"({"a": 1,"b": 2.5,"c": "x","d": true})");
}

TEST(JsonWriter, NestedStructures) {
  const std::string s = compact([](JsonWriter& w) {
    w.begin_object();
    w.key("list").begin_array();
    w.value(u64{1});
    w.value(u64{2});
    w.begin_object();
    w.field("k", "v");
    w.end_object();
    w.end_array();
    w.end_object();
  });
  EXPECT_EQ(s, R"({"list": [1,2,{"k": "v"}]})");
}

TEST(JsonWriter, EscapesStrings) {
  const std::string s = compact([](JsonWriter& w) {
    w.begin_object();
    w.field("quote\"back\\slash", "line\nbreak\ttab");
    w.end_object();
  });
  EXPECT_EQ(s, R"({"quote\"back\\slash": "line\nbreak\ttab"})");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  const std::string s = compact([](JsonWriter& w) {
    w.begin_array();
    w.value(std::numeric_limits<f64>::infinity());
    w.value(std::numeric_limits<f64>::quiet_NaN());
    w.end_array();
  });
  EXPECT_EQ(s, "[null,null]");
}

TEST(JsonWriter, NegativeIntegers) {
  const std::string s = compact([](JsonWriter& w) {
    w.begin_array();
    w.value(i64{-42});
    w.value(-1);
    w.end_array();
  });
  EXPECT_EQ(s, "[-42,-1]");
}

TEST(JsonReport, RunResultContainsAllSections) {
  SimConfig cfg;
  cfg.sim_length = 3'000.0;
  cfg.seed = 8;
  const RunResult r = run_experiment(cfg);
  std::ostringstream os;
  write_json(os, r);
  const std::string s = os.str();
  for (const char* needle :
       {"\"config\"", "\"network\"", "\"protocols\"", "\"TP\"", "\"BCS\"", "\"QBC\"",
        "\"n_tot\"", "\"handoffs\"", "\"trace_hash\""}) {
    EXPECT_NE(s.find(needle), std::string::npos) << needle;
  }
  // Balanced braces (cheap well-formedness check).
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'), std::count(s.begin(), s.end(), '}'));
  EXPECT_EQ(std::count(s.begin(), s.end(), '['), std::count(s.begin(), s.end(), ']'));
}

TEST(GnuplotReport, FigureScriptIsWellFormed) {
  FigureSpec spec;
  spec.title = "gp-test";
  spec.base.sim_length = 2'000.0;
  spec.t_switch_values = {500.0, 1'000.0};
  spec.seeds = 2;
  const FigureResult result = run_figure(spec);
  std::ostringstream os;
  result.write_gnuplot(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("set logscale xy"), std::string::npos);
  EXPECT_NE(s.find("\"gp-test\""), std::string::npos);
  // One inline data block terminator per protocol series.
  usize blocks = 0;
  for (usize pos = 0; (pos = s.find("\ne\n", pos)) != std::string::npos; ++pos) ++blocks;
  EXPECT_EQ(blocks, result.protocol_names.size());
  // Every series has one data row per sweep point.
  EXPECT_NE(s.find("500 "), std::string::npos);
  EXPECT_NE(s.find("1000 "), std::string::npos);
}

TEST(JsonReport, FigureResultSerializes) {
  FigureSpec spec;
  spec.title = "json-test";
  spec.base.sim_length = 2'000.0;
  spec.t_switch_values = {500.0, 1'000.0};
  spec.seeds = 2;
  const FigureResult result = run_figure(spec);
  std::ostringstream os;
  write_json(os, result);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"json-test\""), std::string::npos);
  EXPECT_NE(s.find("\"points\""), std::string::npos);
  EXPECT_NE(s.find("\"ci95\""), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'), std::count(s.begin(), s.end(), '}'));
}

}  // namespace
}  // namespace mobichk::sim
