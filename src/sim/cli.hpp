// Command-line argument parsing for the examples and benches.
//
// Two layers:
//  * ArgParser — the permissive tokenizer: "--key=value", "--key value"
//    and boolean "--flag", no schema. Numbers are validated strictly
//    (trailing garbage and negative unsigned values fail loudly, naming
//    the flag).
//  * FlagSet — a registered-flag schema on top: every flag declares a
//    name, type, default and help text; parse() rejects unknown flags
//    with a did-you-mean suggestion, eagerly validates numeric values,
//    and print_help() renders the --help page. All binaries with
//    user-facing flags should build a FlagSet.
#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "des/types.hpp"

namespace mobichk::sim {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  bool has(const std::string& key) const { return values_.contains(key); }

  std::string get_string(const std::string& key, const std::string& fallback) const;
  f64 get_f64(const std::string& key, f64 fallback) const;
  u64 get_u64(const std::string& key, u64 fallback) const;
  u32 get_u32(const std::string& key, u32 fallback) const;
  bool get_flag(const std::string& key) const;

  /// Positional (non --key) arguments, in order.
  const std::vector<std::string>& positional() const noexcept { return positional_; }

  /// Every parsed "--key", in no particular order (schema validation).
  std::vector<std::string> keys() const;

 private:
  std::unordered_map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Value shape a registered flag expects (drives eager validation and the
/// help page's <type> column).
enum class FlagType : u8 {
  kString,
  kUInt,    ///< Non-negative integer.
  kNumber,  ///< Floating point.
  kBool,    ///< Presence flag; "--flag" alone means true.
};

/// One registered flag.
struct FlagSpec {
  std::string name;
  FlagType type = FlagType::kString;
  std::string default_text;  ///< Rendered in --help ("" = no default shown).
  std::string help;
};

/// Registered-flag schema for one command. Every FlagSet knows --help.
class FlagSet {
 public:
  /// `usage` is the --help headline, e.g. "mobichk_cli run [flags]".
  explicit FlagSet(std::string usage);

  /// Registers a flag; returns *this for chaining. Re-registering a name
  /// throws std::logic_error (catches copy-paste catalog bugs).
  FlagSet& add(std::string name, FlagType type, std::string default_text, std::string help);

  bool known(const std::string& name) const noexcept;
  const std::vector<FlagSpec>& flags() const noexcept { return flags_; }

  /// Closest registered flag within edit distance 2 (or a unique prefix
  /// match); "" when nothing is close enough.
  std::string suggest(const std::string& name) const;

  /// Renders the --help page: usage line, then one row per flag.
  void print_help(std::ostream& os) const;

  /// Tokenizes argv and validates it against the schema: unknown flags
  /// throw std::invalid_argument ("unknown flag --foo (did you mean
  /// --food?)"); numeric flags are parsed eagerly so a bad value fails at
  /// startup naming the flag, not deep inside the run.
  ArgParser parse(int argc, const char* const* argv) const;

 private:
  std::string usage_;
  std::vector<FlagSpec> flags_;
};

}  // namespace mobichk::sim
