#include "obs/causal.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace mobichk::obs {

const char* tracker_mode_name(TrackerMode mode) noexcept {
  switch (mode) {
    case TrackerMode::kNone: return "none";
    case TrackerMode::kIndexFirstAtLeast: return "index-first-at-least";
    case TrackerMode::kIndexLastEqual: return "index-last-equal";
    case TrackerMode::kTpDependency: return "tp-dependency";
  }
  return "none";
}

RecoveryLineTracker::RecoveryLineTracker(TrackerMode mode, u32 n_hosts)
    : mode_(mode), n_(n_hosts), hosts_(n_hosts) {
  if (n_hosts == 0) throw std::invalid_argument("RecoveryLineTracker: n_hosts is zero");
  if (mode == TrackerMode::kTpDependency) {
    for (auto& h : hosts_) h.req.assign(n_, 0);
  }
}

void RecoveryLineTracker::resolve_metrics(MetricRegistry& registry, const std::string& prefix) {
  line_index_g_ = &registry.gauge(prefix + ".line_index");
  lag_max_g_ = &registry.gauge(prefix + ".lag_max");
  lag_h_ = &registry.histogram(prefix + ".lag", 0.0, 64.0, 64);
  chain_h_ = &registry.histogram(prefix + ".forced_chain", 0.0, 32.0, 32);
  useless_c_ = &registry.counter(prefix + ".useless_checkpoints");
  advances_c_ = &registry.counter(prefix + ".line_advances");
}

void RecoveryLineTracker::on_checkpoint(u32 host, u64 sn, CkptKind kind, u64 trigger_msg) {
  HostState& h = hosts_.at(host);
  if (mode_ == TrackerMode::kTpDependency) {
    // The dependency vector stored with the checkpoint: the running
    // requirement with the self entry anchored at this ordinal.
    std::vector<u32> dep = h.req;
    dep[host] = static_cast<u32>(h.sns.size());
    h.deps.push_back(std::move(dep));
    h.phase_send = false;  // a fresh interval has no sends yet
  }
  u32 chain = 0;
  if (kind == CkptKind::kForced) {
    chain = 1;  // marker-forced: the chain starts here
    if (trigger_msg != 0) {
      const auto it = in_flight_.find(trigger_msg);
      if (it != in_flight_.end()) chain = it->second.chain_at_send + 1;
    }
    if (chain_h_ != nullptr) chain_h_->add(static_cast<f64>(chain));
    max_chain_ = std::max<u64>(max_chain_, chain);
  }
  h.chain = chain;
  h.chain_depth.push_back(chain);
  h.sns.push_back(sn);
  advance_committed();
}

void RecoveryLineTracker::on_sn_promote(u32 host, u64 sn) {
  HostState& h = hosts_.at(host);
  if (h.sns.empty()) return;
  if (sn > h.sns.back()) h.sns.back() = sn;
  advance_committed();
}

void RecoveryLineTracker::on_send(u32 host, u64 msg_id) {
  HostState& h = hosts_.at(host);
  MsgInfo info;
  info.src = host;
  info.send_interval = h.sns.empty() ? 0 : static_cast<u32>(h.sns.size() - 1);
  info.chain_at_send = h.chain;
  if (mode_ == TrackerMode::kTpDependency) {
    info.dep = h.req;
    info.dep[host] = static_cast<u32>(h.sns.size());
    h.phase_send = true;
  }
  in_flight_[msg_id] = std::move(info);
}

void RecoveryLineTracker::on_deliver(u32 host, u64 msg_id) {
  const auto it = in_flight_.find(msg_id);
  if (it == in_flight_.end()) return;  // foreign message (manual scripts)
  const MsgInfo& info = it->second;
  HostState& h = hosts_.at(host);
  const u32 di = h.sns.empty() ? 0 : static_cast<u32>(h.sns.size() - 1);
  edges_.push_back(Edge{info.src, info.send_interval, host, di});
  if (mode_ == TrackerMode::kTpDependency) {
    // The forced checkpoint's probe event precedes the deliver event, so
    // a SEND phase here means the protocol broke Russell's discipline.
    if (h.phase_send) ++phase_violations_;
    for (u32 j = 0; j < n_; ++j) {
      if (j == host) continue;
      if (info.dep[j] > h.req[j]) h.req[j] = info.dep[j];
    }
  }
}

void RecoveryLineTracker::advance_committed() {
  u64 m = ~u64{0};
  for (const HostState& h : hosts_) {
    if (h.sns.empty()) return;  // not every host initialized yet
    const u64 reached =
        mode_ == TrackerMode::kTpDependency ? h.sns.size() - 1 : h.sns.back();
    m = std::min(m, reached);
  }
  if (m <= committed_ && !(m == 0 && committed_ == 0)) return;
  if (advances_c_ != nullptr && m > committed_) advances_c_->add(m - committed_);
  committed_ = m;
  if (line_index_g_ != nullptr) line_index_g_->set(static_cast<f64>(committed_));
  if (lag_h_ != nullptr || lag_max_g_ != nullptr) {
    u64 worst = 0;
    for (u32 h = 0; h < n_; ++h) {
      const u64 l = lag(h);
      worst = std::max(worst, l);
      if (lag_h_ != nullptr) lag_h_->add(static_cast<f64>(l));
    }
    if (lag_max_g_ != nullptr) lag_max_g_->set(static_cast<f64>(worst));
  }
}

u64 RecoveryLineTracker::lag(u32 host) const {
  const HostState& h = hosts_.at(host);
  if (h.sns.empty()) return 0;
  if (mode_ == TrackerMode::kTpDependency) {
    const u64 deepest = h.sns.size() - 1;
    return deepest > committed_ ? deepest - committed_ : 0;
  }
  // Checkpoints strictly beyond the committed index.
  const auto it = std::upper_bound(h.sns.begin(), h.sns.end(), committed_);
  return static_cast<u64>(h.sns.end() - it);
}

std::vector<LineMember> RecoveryLineTracker::index_line(u64 index) const {
  std::vector<LineMember> line(n_);
  for (u32 h = 0; h < n_; ++h) {
    const auto& sns = hosts_[h].sns;
    line[h].host = h;
    auto it = sns.end();
    if (mode_ == TrackerMode::kIndexLastEqual) {
      const auto ub = std::upper_bound(sns.begin(), sns.end(), index);
      if (ub != sns.begin() && *(ub - 1) == index) it = ub - 1;
    }
    if (it == sns.end()) it = std::lower_bound(sns.begin(), sns.end(), index);
    if (it != sns.end()) {
      line[h].ordinal = static_cast<u64>(it - sns.begin());
    } else {
      line[h].is_virtual = true;
    }
  }
  return line;
}

std::vector<LineMember> RecoveryLineTracker::tp_line(u32 host, u64 ordinal) const {
  if (mode_ != TrackerMode::kTpDependency) {
    throw std::logic_error("RecoveryLineTracker::tp_line: not a TP tracker");
  }
  const std::vector<u32>& dep = hosts_.at(host).deps.at(ordinal);
  std::vector<LineMember> line(n_);
  for (u32 j = 0; j < n_; ++j) {
    line[j].host = j;
    const u64 want = j == host ? ordinal : dep[j];
    if (want < hosts_[j].sns.size()) {
      line[j].ordinal = want;
    } else {
      // Not yet taken: the host's current state stands in (sound under
      // the phase discipline — it has received nothing since its send).
      line[j].is_virtual = true;
    }
  }
  return line;
}

usize RecoveryLineTracker::node_id(u32 host, u64 interval) const {
  return node_base_[host] + static_cast<usize>(interval);
}

std::vector<bool> RecoveryLineTracker::message_reach(u32 host, u64 interval) const {
  std::vector<bool> visited(node_total_, false);
  std::vector<bool> msg_entry(node_total_, false);
  std::deque<usize> queue;
  const usize start = node_id(host, interval);
  visited[start] = true;
  queue.push_back(start);
  while (!queue.empty()) {
    const usize u = queue.front();
    queue.pop_front();
    for (const u32 v : message_adj_[u]) {
      msg_entry[v] = true;
      if (!visited[v]) {
        visited[v] = true;
        queue.push_back(v);
      }
    }
    const usize next = u + 1;
    if (next < node_total_) {
      const auto it = std::upper_bound(node_base_.begin(), node_base_.end(), u);
      const usize host_of_u = static_cast<usize>(it - node_base_.begin()) - 1;
      const usize host_end =
          host_of_u + 1 < node_base_.size() ? node_base_[host_of_u + 1] : node_total_;
      if (next < host_end && !visited[next]) {
        visited[next] = true;
        queue.push_back(next);
      }
    }
  }
  return msg_entry;
}

void RecoveryLineTracker::finalize() {
  if (finalized_) return;
  finalized_ = true;
  // Lay out the interval-graph nodes exactly like core::IntervalGraph:
  // one node per (host, checkpoint ordinal); interval x is opened by
  // checkpoint x.
  node_base_.assign(n_, 0);
  node_total_ = 0;
  for (u32 h = 0; h < n_; ++h) {
    node_base_[h] = node_total_;
    node_total_ += hosts_[h].sns.size();
  }
  message_adj_.assign(node_total_, {});
  for (const Edge& e : edges_) {
    if (e.si >= hosts_[e.src].sns.size() || e.di >= hosts_[e.dst].sns.size()) continue;
    message_adj_[node_id(e.src, e.si)].push_back(static_cast<u32>(node_id(e.dst, e.di)));
  }
  z_cycle_.assign(node_total_, 0);
  useless_ = 0;
  for (u32 h = 0; h < n_; ++h) {
    for (u64 x = 1; x < hosts_[h].sns.size(); ++x) {
      const std::vector<bool> entry = message_reach(h, x);
      for (u64 y = 0; y < x; ++y) {
        if (entry[node_id(h, y)]) {
          z_cycle_[node_id(h, x)] = 1;
          ++useless_;
          break;
        }
      }
    }
  }
  if (useless_c_ != nullptr) useless_c_->add(useless_);
  advance_committed();
}

bool RecoveryLineTracker::on_z_cycle(u32 host, u64 ordinal) const {
  if (!finalized_) throw std::logic_error("RecoveryLineTracker::on_z_cycle before finalize()");
  if (ordinal == 0 || ordinal >= hosts_.at(host).sns.size()) return false;
  return z_cycle_[node_id(host, ordinal)] != 0;
}

CausalMonitor::CausalMonitor(u32 n_hosts, const std::vector<TrackerMode>& modes,
                             const std::vector<std::string>& names, MetricRegistry& registry) {
  trackers_.reserve(modes.size());
  for (usize slot = 0; slot < modes.size(); ++slot) {
    if (modes[slot] == TrackerMode::kNone) {
      trackers_.push_back(nullptr);
      continue;
    }
    auto tracker = std::make_unique<RecoveryLineTracker>(modes[slot], n_hosts);
    const std::string label =
        slot < names.size() ? names[slot] : "slot" + std::to_string(slot);
    tracker->resolve_metrics(registry, "rl." + std::to_string(slot) + "." + label);
    trackers_.push_back(std::move(tracker));
  }
}

void CausalMonitor::on_probe_event(const ProbeEvent& e) {
  switch (e.kind) {
    case ProbeKind::kCheckpoint:
    case ProbeKind::kSnPromote: {
      if (e.track < 0 || static_cast<usize>(e.track) >= trackers_.size()) return;
      RecoveryLineTracker* t = trackers_[static_cast<usize>(e.track)].get();
      if (t == nullptr) return;
      if (e.kind == ProbeKind::kCheckpoint) {
        t->on_checkpoint(static_cast<u32>(e.actor), e.a, e.ckpt_kind, e.b);
      } else {
        t->on_sn_promote(static_cast<u32>(e.actor), e.a);
      }
      break;
    }
    case ProbeKind::kSend:
      for (auto& t : trackers_) {
        if (t != nullptr) t->on_send(static_cast<u32>(e.actor), e.a);
      }
      break;
    case ProbeKind::kDeliver:
      for (auto& t : trackers_) {
        if (t != nullptr) t->on_deliver(static_cast<u32>(e.actor), e.a);
      }
      break;
    default:
      break;  // mobility / sweep events carry no causal information
  }
}

void CausalMonitor::finalize() {
  for (auto& t : trackers_) {
    if (t != nullptr) t->finalize();
  }
}

std::vector<ChainStep> explain_checkpoint_chain(const Timeline& timeline, i32 slot, i32 host,
                                                u64 ordinal, usize max_depth) {
  const std::vector<ProbeEvent>& ev = timeline.events();
  // Index the timeline once: checkpoint event positions per host (for
  // this slot) and the send event of every message id.
  std::unordered_map<i32, std::vector<usize>> ckpts_of;
  std::unordered_map<u64, usize> send_of;
  for (usize i = 0; i < ev.size(); ++i) {
    if (ev[i].kind == ProbeKind::kCheckpoint && ev[i].track == slot) {
      ckpts_of[ev[i].actor].push_back(i);
    } else if (ev[i].kind == ProbeKind::kSend) {
      send_of.emplace(ev[i].a, i);
    }
  }

  std::vector<ChainStep> chain;
  const auto host_it = ckpts_of.find(host);
  if (host_it == ckpts_of.end() || ordinal >= host_it->second.size()) return chain;
  usize idx = host_it->second[ordinal];
  u64 current_ordinal = ordinal;
  while (chain.size() < max_depth) {
    const ProbeEvent& c = ev[idx];
    ChainStep step;
    step.t = c.t;
    step.host = c.actor;
    step.ordinal = current_ordinal;
    step.sn = c.a;
    step.ckpt_kind = c.ckpt_kind;
    step.rule = c.rule;
    step.replaced = c.replaced;
    step.trigger_msg = c.b;
    if (c.b == 0) {
      chain.push_back(step);
      break;  // basic / initial / marker-forced: the chain ends here
    }
    const auto send_it = send_of.find(c.b);
    if (send_it == send_of.end()) {
      chain.push_back(step);
      break;  // send not on the timeline (capped / partial recording)
    }
    const ProbeEvent& s = ev[send_it->second];
    step.msg_src = s.actor;
    step.msg_sent_t = s.t;
    step.msg_wire_sn = s.b;
    step.msg_found = true;
    chain.push_back(step);
    // The sender's latest checkpoint before the send.
    const auto sender_it = ckpts_of.find(s.actor);
    if (sender_it == ckpts_of.end()) break;
    const std::vector<usize>& sc = sender_it->second;
    const auto ub = std::upper_bound(sc.begin(), sc.end(), send_it->second);
    if (ub == sc.begin()) break;  // no checkpoint before the send
    idx = *(ub - 1);
    current_ordinal = static_cast<u64>((ub - 1) - sc.begin());
  }
  return chain;
}

}  // namespace mobichk::obs
