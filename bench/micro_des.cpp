// MICRO: simulation-kernel micro-benchmarks (google-benchmark).
//
// Covers the ablatable kernel choices: binary heap vs calendar queue
// (classic hold model), the RNG engines, the variate generators, and the
// end-to-end simulation throughput.
#include <benchmark/benchmark.h>

#include "des/distributions.hpp"
#include "des/event_queue.hpp"
#include "des/rng.hpp"
#include "des/simulator.hpp"
#include "sim/experiment.hpp"

namespace {

using namespace mobichk;

des::EventEntry bare_entry(des::Time t, u64 seq) {
  des::EventEntry e;
  e.time = t;
  e.seq = seq;
  return e;
}

void BM_QueueHoldModel(benchmark::State& state, des::QueueKind kind) {
  const auto population = static_cast<usize>(state.range(0));
  auto queue = des::make_event_queue(kind);
  des::RngStream rng(1, "bench.hold");
  u64 seq = 1;
  for (usize i = 0; i < population; ++i) {
    queue->push(bare_entry(rng.uniform01() * 100.0, seq++));
  }
  for (auto _ : state) {
    des::EventEntry e = queue->pop();
    queue->push(bare_entry(e.time + rng.uniform01() * 100.0, seq++));
    benchmark::DoNotOptimize(e.time);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_QueueHoldModel, BinaryHeap, des::QueueKind::kBinaryHeap)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(16384);
BENCHMARK_CAPTURE(BM_QueueHoldModel, Calendar, des::QueueKind::kCalendar)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(16384);

void BM_Xoshiro(benchmark::State& state) {
  des::Xoshiro256ss rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_Xoshiro);

void BM_Pcg32(benchmark::State& state) {
  des::Pcg32 rng(1, 2);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u32());
}
BENCHMARK(BM_Pcg32);

void BM_SplitMix(benchmark::State& state) {
  des::SplitMix64 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_SplitMix);

void BM_ExponentialSample(benchmark::State& state) {
  des::RngStream rng(1, "bench.exp");
  des::Exponential dist(20.0);
  for (auto _ : state) benchmark::DoNotOptimize(dist.sample(rng));
}
BENCHMARK(BM_ExponentialSample);

void BM_UniformIndexExcluding(benchmark::State& state) {
  des::RngStream rng(1, "bench.uix");
  for (auto _ : state) benchmark::DoNotOptimize(des::uniform_index_excluding(rng, 10, 3));
}
BENCHMARK(BM_UniformIndexExcluding);

void BM_SimulatorEventChurn(benchmark::State& state, des::QueueKind kind) {
  for (auto _ : state) {
    des::Simulator sim(kind);
    des::RngStream rng(1, "bench.churn");
    u64 fired = 0;
    std::function<void()> tick = [&] {
      ++fired;
      if (fired < 50'000) sim.schedule_after(rng.uniform01(), tick);
    };
    for (int i = 0; i < 16; ++i) sim.schedule_after(rng.uniform01(), tick);
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 50'000);
}
BENCHMARK_CAPTURE(BM_SimulatorEventChurn, BinaryHeap, des::QueueKind::kBinaryHeap)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimulatorEventChurn, Calendar, des::QueueKind::kCalendar)
    ->Unit(benchmark::kMillisecond);

/// Self-rescheduling EventTarget: the typed-payload equivalent of the
/// closure churn above, exercising the allocation-free hot path.
struct ChurnTarget final : des::EventTarget {
  des::Simulator* sim = nullptr;
  des::RngStream* rng = nullptr;
  u64 fired = 0;

  void on_event(const des::EventPayload& p) override {
    ++fired;
    if (fired < 50'000) sim->schedule_after(rng->uniform01(), p);
  }
};

void BM_SimulatorTypedChurn(benchmark::State& state, des::QueueKind kind) {
  for (auto _ : state) {
    des::Simulator sim(kind);
    des::RngStream rng(1, "bench.churn");
    ChurnTarget target;
    target.sim = &sim;
    target.rng = &rng;
    des::EventPayload tick;
    tick.target = &target;
    tick.kind = des::EventKind::kWorkloadOp;
    for (int i = 0; i < 16; ++i) sim.schedule_after(rng.uniform01(), tick);
    sim.run();
    benchmark::DoNotOptimize(target.fired);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 50'000);
}
BENCHMARK_CAPTURE(BM_SimulatorTypedChurn, BinaryHeap, des::QueueKind::kBinaryHeap)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimulatorTypedChurn, Calendar, des::QueueKind::kCalendar)
    ->Unit(benchmark::kMillisecond);

void BM_FullSimulation(benchmark::State& state, des::QueueKind kind) {
  for (auto _ : state) {
    sim::SimConfig cfg;
    cfg.sim_length = 10'000.0;
    cfg.t_switch = 500.0;
    cfg.p_switch = 0.8;
    cfg.seed = 1;
    sim::ExperimentOptions opts;
    opts.queue_kind = kind;
    const sim::RunResult r = sim::run_experiment(cfg, opts);
    benchmark::DoNotOptimize(r.protocols[0].n_tot);
  }
  state.SetLabel("10k tu, 10 MHs, TP+BCS+QBC paired");
}
BENCHMARK_CAPTURE(BM_FullSimulation, BinaryHeap, des::QueueKind::kBinaryHeap)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FullSimulation, Calendar, des::QueueKind::kCalendar)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
