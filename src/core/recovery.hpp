// Recovery lines, consistency verification, and rollback.
//
// This module implements the paper's "future work" (§6): evaluating the
// recovery side of the protocols. It provides
//  * recovery-line builders: the index rule shared by BCS/QBC/COORD (same
//    sequence number, first-greater on jumps; QBC additionally uses its
//    equivalence-rule replacements), and TP's dependency-vector rule;
//  * an orphan-message checker — the oracle that property tests run
//    against every protocol;
//  * generic rollback: given a failure, find the most recent consistent
//    global checkpoint by iterating over the rollback-dependency
//    relation. For uncoordinated checkpointing this exhibits the domino
//    effect; for the communication-induced protocols it quantifies how
//    little is undone.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint_log.hpp"
#include "core/message_log.hpp"
#include "des/types.hpp"
#include "net/ids.hpp"

namespace mobichk::core {

/// A global checkpoint: one cut position per host, with the checkpoint
/// record backing it (nullptr = virtual member, i.e. the host's current
/// state stands in because no stored checkpoint is needed).
struct GlobalCheckpoint {
  std::vector<u64> pos;                          ///< Events <= pos[h] are inside the cut.
  std::vector<const CheckpointRecord*> members;  ///< Parallel to pos; may contain nullptr.
  u64 index = 0;                                 ///< The index M for index-based lines.

  usize virtual_members() const noexcept {
    usize n = 0;
    for (const auto* m : members) n += (m == nullptr);
    return n;
  }
};

/// How an index-based protocol resolves the member for index M.
enum class IndexLineRule : u8 {
  /// First checkpoint with sn >= M (BCS jump rule; also TP-ordinal, COORD).
  kFirstAtLeast,
  /// Last checkpoint with sn == M — QBC: later same-sn checkpoints are
  /// equivalence-rule replacements — falling back to first with sn > M.
  kLastEqual,
};

/// Builds the recovery line for index M. Hosts with no checkpoint of
/// sn >= M contribute a virtual member at their current position.
GlobalCheckpoint index_recovery_line(const CheckpointLog& log, u64 index, IndexLineRule rule,
                                     const std::vector<u64>& current_pos);

/// Builds the recovery line TP associates on the fly with `anchor`, using
/// the dependency vector recorded in the checkpoint: host j's member is
/// the checkpoint with ordinal dep_ckpt[j] (virtual if not yet taken —
/// sound under TP's phase discipline, see src/core/protocols/tp.hpp).
GlobalCheckpoint tp_recovery_line(const CheckpointLog& log, const CheckpointRecord& anchor,
                                  const std::vector<u64>& current_pos);

/// All deliveries that are orphan with respect to `cut`: received inside
/// the cut but sent outside it.
std::vector<const MessageLog::Delivery*> find_orphans(const MessageLog& messages,
                                                      const GlobalCheckpoint& cut);

/// Human-readable description of an orphan (for test diagnostics).
std::string describe_orphan(const MessageLog::Delivery& d, const GlobalCheckpoint& cut);

/// Result of rolling a computation back after a failure.
struct RollbackResult {
  GlobalCheckpoint line;
  u64 iterations = 0;                    ///< Fixpoint passes over the message log.
  std::vector<u64> checkpoints_discarded;  ///< Per host, relative to its latest checkpoint.
  std::vector<u64> fail_pos;             ///< The failure cut the rollback started from.

  u64 total_discarded() const noexcept;
  /// Events of computation undone by the rollback (sum over hosts of
  /// fail position minus cut position). Throws std::logic_error when the
  /// fail_pos >= line.pos invariant is violated — a line above the
  /// failure cut means the rollback was built from inconsistent inputs,
  /// and that must surface in release builds too, not only under assert.
  u64 undone_events() const;
};

/// No specific failed host: every host restarts from a stored checkpoint.
inline constexpr net::HostId kAllHostsFailed = static_cast<net::HostId>(-1);

/// Generic rollback: repeatedly rolls receivers of orphan messages back
/// until no orphan remains; finds the *maximum* consistent cut below the
/// failure (the standard lattice argument: every rollback step is
/// forced). Terminates at worst at the initial checkpoints (the domino
/// effect made visible).
///
/// With `failed_host == kAllHostsFailed` every host starts from its
/// latest stored checkpoint at or before its failure position (total
/// failure). Otherwise only `failed_host` is forced onto a stored
/// checkpoint; survivors start at their failure state (virtual member)
/// and roll back to stored checkpoints only when orphans force them.
RollbackResult rollback_to_consistent(const CheckpointLog& log, const MessageLog& messages,
                                      const std::vector<u64>& fail_pos,
                                      net::HostId failed_host = kAllHostsFailed);

/// Multi-victim generic rollback: `failed[h]` marks every host that
/// crashed (correlated failures, cell-wide outages). Failed hosts are
/// forced onto stored checkpoints; survivors stay at their failure state
/// until orphans drag them back.
RollbackResult rollback_to_consistent(const CheckpointLog& log, const MessageLog& messages,
                                      const std::vector<u64>& fail_pos,
                                      const std::vector<bool>& failed);

/// Index-based rollback after a failure of `failed_host`: uses the line
/// of index M = the failed host's highest checkpoint index. With
/// `failed_host == kAllHostsFailed` every host restarts, and M is the
/// highest index *all* hosts reached (min over per-host max sn). Virtual
/// members represent surviving hosts that checkpoint their current state.
RollbackResult index_rollback(const CheckpointLog& log, IndexLineRule rule,
                              const std::vector<u64>& fail_pos, net::HostId failed_host);

/// Multi-victim index rollback: M is the highest index every crashed host
/// reached (min over `failed` hosts of max sn). Throws when no host is
/// marked failed on a non-empty log — the line index would be undefined.
RollbackResult index_rollback(const CheckpointLog& log, IndexLineRule rule,
                              const std::vector<u64>& fail_pos,
                              const std::vector<bool>& failed);

}  // namespace mobichk::core
