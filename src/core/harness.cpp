#include "core/harness.hpp"

#include <stdexcept>

#include "storage/data_plane.hpp"

namespace mobichk::core {

namespace {

/// Per-slot handler accumulator on `lane` (null lane == no-op scope);
/// slots past the lane's capacity fold into the last bucket.
obs::PhaseAccum* slot_acc(obs::ProfLane* lane, usize k) {
  if (lane == nullptr) return nullptr;
  return &lane->proto[k < obs::ProfLane::kMaxProtoSlots ? k : obs::ProfLane::kMaxProtoSlots - 1];
}

}  // namespace

ProtocolHarness::ProtocolHarness(net::Network& net, des::TraceSink* sink)
    : net_(net), sink_(sink) {
  net_.set_handler(this);
}

usize ProtocolHarness::add_protocol(std::unique_ptr<CheckpointProtocol> protocol,
                                    const StorageConfig* storage) {
  if (protocol == nullptr) throw std::invalid_argument("add_protocol: null protocol");
  auto slot = std::make_unique<Slot>(
      Slot{std::move(protocol), CheckpointLog(net_.n_hosts()), nullptr, 0});
  if (storage != nullptr) {
    slot->storage = std::make_unique<StorageModel>(net_.n_hosts(), net_.n_mss(), *storage);
  }
  slots_.push_back(std::move(slot));
  Slot& stored = *slots_.back();
  ProtocolContext ctx;
  ctx.n_hosts = net_.n_hosts();
  ctx.sim = &net_.sim();
  ctx.net = &net_;
  ctx.log = &stored.log;
  ctx.storage = stored.storage.get();
  // Only the physical run (slot 0) drives the data plane; paired
  // observer slots would double-count bytes that never hit a wire.
  ctx.data_plane = slots_.size() == 1 ? data_plane_ : nullptr;
  ctx.sink = sink_;
  ctx.timeline = timeline_;
  ctx.slot = static_cast<i32>(slots_.size()) - 1;
  stored.protocol->bind(ctx);
  return slots_.size() - 1;
}

std::vector<u64> ProtocolHarness::current_positions() const {
  std::vector<u64> pos(net_.n_hosts());
  for (net::HostId h = 0; h < net_.n_hosts(); ++h) pos[h] = net_.host(h).event_pos();
  return pos;
}

void ProtocolHarness::on_host_init(net::MobileHost& host) {
  for (auto& slot : slots_) slot->protocol->host_init(host);
}

void ProtocolHarness::enable_sharding(u32 n_shards) {
  if (retain_piggybacks_) {
    throw std::logic_error("ProtocolHarness: duplicate-exposing runs are sequential-only");
  }
  slices_.clear();
  slices_.resize(n_shards);
  for (auto& sl : slices_) {
    sl.pb_bytes.assign(slots_.size(), 0);
    sl.pb_dense_bytes.assign(slots_.size(), 0);
  }
}

void ProtocolHarness::merge_window(const std::unordered_map<u64, u64>& idmap) {
  // Sends first (the map is order-independent), translated to final ids.
  for (auto& sl : slices_) {
    for (const SendRec& s : sl.sends) {
      const auto it = idmap.find(s.id);
      msg_log_.note_send(it != idmap.end() ? it->second : s.id, s.src, s.dst, s.pos);
    }
    sl.sends.clear();
  }
  // Deliveries in merged (time, shard) order — the sequential append
  // order the rollback machinery scans. Ids seen at receive time are
  // already final: the send merged at least one barrier earlier.
  const u32 n = static_cast<u32>(slices_.size());
  std::vector<usize> head(n, 0);
  for (;;) {
    u32 best = n;
    for (u32 s = 0; s < n; ++s) {
      if (head[s] >= slices_[s].recvs.size()) continue;
      if (best == n || slices_[s].recvs[head[s]].t < slices_[best].recvs[head[best]].t) best = s;
    }
    if (best == n) break;
    const RecvRec& r = slices_[best].recvs[head[best]++];
    msg_log_.note_receive(r.id, r.pos, r.sn);
  }
  for (auto& sl : slices_) sl.recvs.clear();
}

void ProtocolHarness::finalize_sharding() {
  for (auto& sl : slices_) {
    for (usize k = 0; k < slots_.size(); ++k) {
      slots_[k]->pb_bytes += sl.pb_bytes[k];
      slots_[k]->pb_dense_bytes += sl.pb_dense_bytes[k];
      sl.pb_bytes[k] = 0;
      sl.pb_dense_bytes[k] = 0;
    }
  }
}

void ProtocolHarness::on_send(net::MobileHost& host, net::AppMessage& msg) {
  obs::ProfLane* plane = prof_ != nullptr ? &prof_->lane() : nullptr;
  obs::ProfScope prof_enc(plane != nullptr ? &plane->pb_encode : nullptr);
  if (!slices_.empty()) {
    // Sharded run: the piggybacks travel by value with the message (the
    // sender's and receiver's shards share no parking pool), and the
    // MessageLog update is journaled for the barrier.
    msg.pbs.resize(slots_.size());
    des::ShardContext* c = des::current_shard();
    for (usize k = 0; k < slots_.size(); ++k) {
      obs::ProfScope prof_slot(slot_acc(plane, k));
      msg.pbs[k] = slots_[k]->protocol->make_piggyback(host, msg.dst);
      if (c != nullptr) {
        slices_[c->shard].pb_bytes[k] += msg.pbs[k].wire_bytes();
        slices_[c->shard].pb_dense_bytes[k] += msg.pbs[k].dense_bytes();
      } else {
        slots_[k]->pb_bytes += msg.pbs[k].wire_bytes();
        slots_[k]->pb_dense_bytes += msg.pbs[k].dense_bytes();
      }
    }
    if (!msg.pbs.empty()) msg.pb = msg.pbs.front();  // slot 0 rides the wire
    if (c != nullptr) {
      slices_[c->shard].sends.push_back(SendRec{msg.id, msg.src, msg.dst, host.event_pos() + 1});
    } else {
      msg_log_.note_send(msg.id, msg.src, msg.dst, host.event_pos() + 1);
    }
    return;
  }
  u32 idx;
  if (!park_free_.empty()) {
    idx = park_free_.back();
    park_free_.pop_back();
  } else {
    idx = static_cast<u32>(park_.size());
    park_.emplace_back();
  }
  Parked& parked = park_[idx];
  parked.pbs.resize(slots_.size());
  for (usize k = 0; k < slots_.size(); ++k) {
    obs::ProfScope prof_slot(slot_acc(plane, k));
    parked.pbs[k] = slots_[k]->protocol->make_piggyback(host, msg.dst);
    slots_[k]->pb_bytes += parked.pbs[k].wire_bytes();
    slots_[k]->pb_dense_bytes += parked.pbs[k].dense_bytes();
  }
  if (!parked.pbs.empty()) msg.pb = parked.pbs.front();  // slot 0 rides the wire
  // The send event will occupy the next position (see Network::send_app_message).
  msg_log_.note_send(msg.id, msg.src, msg.dst, host.event_pos() + 1);
  in_flight_.emplace(msg.id, idx);
}

void ProtocolHarness::on_receive(net::MobileHost& host, const net::AppMessage& msg) {
  obs::ProfLane* plane = prof_ != nullptr ? &prof_->lane() : nullptr;
  obs::ProfScope prof_merge(plane != nullptr ? &plane->pb_merge : nullptr);
  if (!slices_.empty()) {
    for (usize k = 0; k < slots_.size(); ++k) {
      obs::ProfScope prof_slot(slot_acc(plane, k));
      slots_[k]->protocol->handle_receive(host, msg, msg.pbs[k]);
    }
    if (des::ShardContext* c = des::current_shard()) {
      slices_[c->shard].recvs.push_back(
          RecvRec{c->sim->now(), msg.id, host.event_pos() + 1, msg.pb.sn});
    } else {
      msg_log_.note_receive(msg.id, host.event_pos() + 1, msg.pb.sn);
    }
    return;
  }
  const auto it = in_flight_.find(msg.id);
  if (it == in_flight_.end()) {
    throw std::logic_error(
        "ProtocolHarness: piggybacks for a delivered message are gone; "
        "call retain_piggybacks(true) when the network exposes duplicates");
  }
  const std::vector<net::Piggyback>& pbs = park_[it->second].pbs;
  for (usize k = 0; k < slots_.size(); ++k) {
    obs::ProfScope prof_slot(slot_acc(plane, k));
    slots_[k]->protocol->handle_receive(host, msg, pbs[k]);
  }
  // The receive event will occupy the next position (see Network::consume_one).
  msg_log_.note_receive(msg.id, host.event_pos() + 1, msg.pb.sn);
  if (!retain_piggybacks_) {
    park_free_.push_back(it->second);
    in_flight_.erase(it);
  }
}

void ProtocolHarness::on_cell_switch(net::MobileHost& host, net::MssId from, net::MssId to) {
  if (data_plane_ != nullptr) {
    // Before the protocols' basic checkpoints, so a migration at the same
    // timestamp is processed first and the new checkpoint samples
    // locality against the post-migration placement.
    des::ShardContext* c = des::current_shard();
    data_plane_->on_handoff(host.id(), from, to, c != nullptr ? c->sim->now() : net_.sim().now());
  }
  for (auto& slot : slots_) slot->protocol->handle_cell_switch(host, from, to);
}

void ProtocolHarness::on_disconnect(net::MobileHost& host) {
  for (auto& slot : slots_) slot->protocol->handle_disconnect(host);
}

void ProtocolHarness::on_reconnect(net::MobileHost& host, net::MssId mss) {
  for (auto& slot : slots_) slot->protocol->handle_reconnect(host, mss);
}

}  // namespace mobichk::core
