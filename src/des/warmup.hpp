// Warm-up (initial-transient) detection for steady-state output analysis.
//
// Implements MSER-5 (White 1997): batch the observation series into
// groups of five, then pick the truncation point that minimizes the
// standard error of the remaining batch means. Simulation folklore's
// default answer to "how much of the run do I throw away before
// averaging?" — used by the sweep engine's steady-state mode and
// available standalone.
#pragma once

#include <vector>

#include "des/types.hpp"

namespace mobichk::des {

struct MserResult {
  usize truncation_batches = 0;  ///< Batches to discard from the front.
  usize truncation_index = 0;    ///< Raw observations to discard.
  f64 mser_statistic = 0.0;      ///< Standard error at the chosen point.
  f64 truncated_mean = 0.0;      ///< Mean of what remains.
};

/// Runs MSER on `series` with the given batch size (5 = the classic
/// MSER-5). Following standard practice the truncation point is
/// constrained to the first half of the series; returns all-zero
/// truncation for series shorter than 2 batches.
MserResult mser(const std::vector<f64>& series, usize batch_size = 5);

}  // namespace mobichk::des
