#include "sim/cli.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <stdexcept>

namespace mobichk::sim {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::string ArgParser::get_string(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

namespace {

// std::stod/stoull accept trailing garbage ("5x" parses as 5) and report
// bare "stod"/"stoull" on failure; flag values should fail loudly and
// name the flag instead.
template <typename Parse>
auto parse_number(const std::string& key, const std::string& text, Parse parse) {
  usize consumed = 0;
  try {
    const auto value = parse(text, &consumed);
    if (consumed == text.size()) return value;
  } catch (const std::exception&) {
    // fall through to the uniform error below
  }
  throw std::invalid_argument("flag --" + key + ": expected a number, got '" + text + "'");
}

}  // namespace

f64 ArgParser::get_f64(const std::string& key, f64 fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return parse_number(key, it->second,
                      [](const std::string& s, usize* pos) { return std::stod(s, pos); });
}

u64 ArgParser::get_u64(const std::string& key, u64 fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (!it->second.empty() && it->second.front() == '-') {
    // stoull would silently wrap "-5" to 2^64-5.
    throw std::invalid_argument("flag --" + key + ": expected a non-negative integer, got '" +
                                it->second + "'");
  }
  return parse_number(key, it->second,
                      [](const std::string& s, usize* pos) { return std::stoull(s, pos); });
}

u32 ArgParser::get_u32(const std::string& key, u32 fallback) const {
  return static_cast<u32>(get_u64(key, fallback));
}

bool ArgParser::get_flag(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return false;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> ArgParser::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

namespace {

const char* flag_type_name(FlagType type) {
  switch (type) {
    case FlagType::kString: return "string";
    case FlagType::kUInt: return "uint";
    case FlagType::kNumber: return "number";
    case FlagType::kBool: return "";
  }
  return "";
}

/// Classic two-row Levenshtein; early-outs are pointless at flag-name
/// lengths.
usize edit_distance(const std::string& a, const std::string& b) {
  std::vector<usize> prev(b.size() + 1), cur(b.size() + 1);
  for (usize j = 0; j <= b.size(); ++j) prev[j] = j;
  for (usize i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (usize j = 1; j <= b.size(); ++j) {
      const usize sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

FlagSet::FlagSet(std::string usage) : usage_(std::move(usage)) {
  add("help", FlagType::kBool, "", "show this help and exit");
}

FlagSet& FlagSet::add(std::string name, FlagType type, std::string default_text,
                      std::string help) {
  if (known(name)) throw std::logic_error("FlagSet: flag --" + name + " registered twice");
  flags_.push_back(FlagSpec{std::move(name), type, std::move(default_text), std::move(help)});
  return *this;
}

bool FlagSet::known(const std::string& name) const noexcept {
  return std::any_of(flags_.begin(), flags_.end(),
                     [&](const FlagSpec& f) { return f.name == name; });
}

std::string FlagSet::suggest(const std::string& name) const {
  std::string best;
  usize best_dist = 3;  // accept distance <= 2
  for (const FlagSpec& f : flags_) {
    // A unique registered extension of what was typed ("--prec" for
    // "--precision") beats edit distance.
    if (name.size() >= 3 && f.name.rfind(name, 0) == 0) return f.name;
    const usize d = edit_distance(name, f.name);
    if (d < best_dist) {
      best_dist = d;
      best = f.name;
    }
  }
  return best;
}

void FlagSet::print_help(std::ostream& os) const {
  os << "usage: " << usage_ << "\n\nflags:\n";
  for (const FlagSpec& f : flags_) {
    std::string left = "  --" + f.name;
    const char* type = flag_type_name(f.type);
    if (type[0] != '\0') left += "=<" + std::string(type) + ">";
    os << std::left << std::setw(28) << left << f.help;
    if (!f.default_text.empty()) os << " (default: " << f.default_text << ")";
    os << "\n";
  }
  os.flush();
}

ArgParser FlagSet::parse(int argc, const char* const* argv) const {
  ArgParser args(argc, argv);
  for (const std::string& key : args.keys()) {
    if (!known(key)) {
      std::string msg = "unknown flag --" + key;
      const std::string near = suggest(key);
      if (!near.empty()) msg += " (did you mean --" + near + "?)";
      msg += "; see --help";
      throw std::invalid_argument(msg);
    }
    // Eager validation: a malformed value fails here, naming the flag
    // (this keeps the trailing-garbage rejection on the schema path too).
    const auto spec = std::find_if(flags_.begin(), flags_.end(),
                                   [&](const FlagSpec& f) { return f.name == key; });
    if (spec->type == FlagType::kUInt) {
      (void)args.get_u64(key, 0);
    } else if (spec->type == FlagType::kNumber) {
      (void)args.get_f64(key, 0.0);
    }
  }
  return args;
}

}  // namespace mobichk::sim
