// Observability layer tests: metric registry semantics, the
// branch-on-null zero-cost contract (no allocations, bit-identical trace
// hashes across every queue kind), checkpoint-timeline content against
// the per-protocol counters, and both exporters — including a golden
// Chrome-trace file for a tiny deterministic run.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <new>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "des/event.hpp"
#include "des/rng.hpp"
#include "mobichk.hpp"

namespace {

std::atomic<unsigned long long> g_allocs{0};

}  // namespace

// Count every heap allocation in the process; the zero-cost tests
// difference this counter around their measured regions. GCC flags the
// malloc-backed replacement pair as mismatched; the pairing is intended.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace mobichk {
namespace {

unsigned long long allocs_now() { return g_allocs.load(std::memory_order_relaxed); }

// ---------------------------------------------------------------------------
// MetricRegistry semantics
// ---------------------------------------------------------------------------

TEST(Metrics, CounterGaugeBasics) {
  obs::MetricRegistry reg;
  obs::Counter& c = reg.counter("a.count");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  obs::Gauge& g = reg.gauge("a.gauge");
  g.set(2.5);
  g.max_of(1.0);  // smaller: ignored
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.max_of(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(Metrics, RegistrationIsIdempotentByName) {
  obs::MetricRegistry reg;
  obs::Counter& c1 = reg.counter("x");
  obs::Counter& c2 = reg.counter("x");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(reg.size(), 1u);
  obs::FixedHistogram& h1 = reg.histogram("h", 0.0, 10.0, 5);
  obs::FixedHistogram& h2 = reg.histogram("h", 0.0, 10.0, 5);
  EXPECT_EQ(&h1, &h2);
}

TEST(Metrics, KindAndShapeMismatchesThrow) {
  obs::MetricRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x", 0.0, 1.0, 2), std::invalid_argument);
  reg.histogram("h", 0.0, 10.0, 5);
  EXPECT_THROW(reg.histogram("h", 0.0, 10.0, 6), std::invalid_argument);
  EXPECT_THROW(reg.histogram("h", 0.0, 20.0, 5), std::invalid_argument);
}

TEST(Metrics, FindDoesNotRegister) {
  obs::MetricRegistry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  reg.counter("c");
  EXPECT_NE(reg.find_counter("c"), nullptr);
  EXPECT_EQ(reg.find_gauge("c"), nullptr);  // wrong kind
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, HistogramBucketsAndQuantiles) {
  obs::FixedHistogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<f64>(i) + 0.5);
  h.add(-1.0);  // underflow
  h.add(99.0);  // overflow
  EXPECT_EQ(h.count(), 12u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), -1.0);
  EXPECT_DOUBLE_EQ(h.max(), 99.0);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 4.0);
  // Median of a uniform fill sits near the middle of the range.
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
  EXPECT_LE(h.quantile(0.0), h.quantile(1.0));
}

TEST(Metrics, SnapshotKeepsRegistrationOrderAndExpandsHistograms) {
  obs::MetricRegistry reg;
  reg.counter("first").add(3);
  reg.gauge("second").set(1.5);
  reg.histogram("third", 0.0, 1.0, 4).add(0.25);
  const std::vector<obs::MetricSample> snap = reg.snapshot();
  ASSERT_GE(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "first");
  EXPECT_DOUBLE_EQ(snap[0].value, 3.0);
  EXPECT_EQ(snap[1].name, "second");
  // The histogram flattens into several named scalars.
  bool saw_count = false, saw_mean = false;
  for (const obs::MetricSample& s : snap) {
    if (s.name == "third.count") {
      saw_count = true;
      EXPECT_DOUBLE_EQ(s.value, 1.0);
    }
    if (s.name == "third.mean") {
      saw_mean = true;
      EXPECT_DOUBLE_EQ(s.value, 0.25);
    }
  }
  EXPECT_TRUE(saw_count);
  EXPECT_TRUE(saw_mean);
}

TEST(Metrics, ScopedTimerNullIsNoOpAndRealTimerRecords) {
  obs::ScopedTimer noop(nullptr);
  EXPECT_DOUBLE_EQ(noop.stop(), 0.0);
  obs::FixedHistogram h(0.0, 1.0, 10);
  {
    obs::ScopedTimer t(&h);
    const f64 elapsed = t.stop();
    EXPECT_GE(elapsed, 0.0);
    t.stop();  // idempotent: second stop records nothing
  }
  EXPECT_EQ(h.count(), 1u);
}

// ---------------------------------------------------------------------------
// The zero-cost contract
// ---------------------------------------------------------------------------

TEST(ObsZeroCost, MetricUpdatesAndReservedTimelineNeverAllocate) {
  obs::MetricRegistry reg;
  obs::Counter& c = reg.counter("hot.counter");
  obs::Gauge& g = reg.gauge("hot.gauge");
  obs::FixedHistogram& h = reg.histogram("hot.hist", 0.0, 1.0, 64);
  obs::Timeline timeline(/*reserve_hint=*/2048);
  obs::ProbeEvent e;
  e.kind = obs::ProbeKind::kCheckpoint;

  const unsigned long long before = allocs_now();
  for (int i = 0; i < 100'000; ++i) {
    c.add();
    g.max_of(static_cast<f64>(i));
    h.add(static_cast<f64>(i % 97) / 97.0);
  }
  for (int i = 0; i < 2'000; ++i) {
    e.t = static_cast<f64>(i);
    timeline.record(e);
  }
  EXPECT_EQ(allocs_now() - before, 0u);
  EXPECT_EQ(c.value(), 100'000u);
  EXPECT_EQ(timeline.size(), 2'000u);
}

namespace {

struct CountingListener final : obs::ProbeEventListener {
  u64 seen = 0;
  void on_probe_event(const obs::ProbeEvent&) override { ++seen; }
};

}  // namespace

TEST(Timeline, CapacityCapCountsDropsButListenerSeesEveryEvent) {
  obs::MetricRegistry reg;
  obs::Counter& dropped = reg.counter("obs.timeline.dropped_events");
  CountingListener listener;
  obs::Timeline timeline(/*reserve_hint=*/8);
  timeline.set_capacity(8);
  timeline.set_dropped_counter(&dropped);
  timeline.set_listener(&listener);

  obs::ProbeEvent e;
  e.kind = obs::ProbeKind::kCheckpoint;
  for (int i = 0; i < 20; ++i) {
    e.t = static_cast<f64>(i);
    timeline.record(e);
  }
  // The stored window is capped, the overflow is counted, and the
  // online listener still observed every event.
  EXPECT_EQ(timeline.size(), 8u);
  EXPECT_EQ(timeline.dropped(), 12u);
  EXPECT_EQ(dropped.value(), 12u);
  EXPECT_EQ(listener.seen, 20u);
}

namespace {

struct ChurnTarget final : des::EventTarget {
  des::Simulator* sim = nullptr;
  des::RngStream* rng = nullptr;
  u64 fired = 0;
  u64 budget = 0;

  void on_event(const des::EventPayload& p) override {
    ++fired;
    if (fired < budget) sim->schedule_after(rng->uniform01(), p);
  }
};

/// Self-rescheduling typed churn; returns allocations inside run().
unsigned long long churn_allocs(des::Simulator& sim, u64 events) {
  des::RngStream rng(7, "obs-churn");
  ChurnTarget target;
  target.sim = &sim;
  target.rng = &rng;
  target.budget = events;
  des::EventPayload tick;
  tick.target = &target;
  tick.kind = des::EventKind::kWorkloadOp;
  for (int i = 0; i < 8; ++i) sim.schedule_after(rng.uniform01(), tick);
  const unsigned long long before = allocs_now();
  sim.run();
  return allocs_now() - before;
}

}  // namespace

TEST(ObsZeroCost, KernelProbeAddsNoAllocationsToTheHotPath) {
  // Warm both simulators (queue capacity, slot table), then compare a
  // probe-attached run against a bare one: the probe may not add a
  // single allocation.
  des::Simulator bare(des::QueueKind::kBinaryHeap);
  churn_allocs(bare, 10'000);
  const unsigned long long off = churn_allocs(bare, 50'000);

  obs::RunObserver observer;
  des::Simulator observed(des::QueueKind::kBinaryHeap);
  observed.set_probe(observer.kernel_probe());
  churn_allocs(observed, 10'000);
  const unsigned long long on = churn_allocs(observed, 50'000);

  EXPECT_EQ(off, 0u);
  EXPECT_EQ(on, 0u);
  // Each churn pops budget + 7 events (8 seeds, budget-1 reschedules).
  EXPECT_EQ(observer.registry().find_counter("des.queue.pops")->value(), 60'014u);
}

TEST(ObsZeroCost, TraceHashIdenticalWithObserverOnEveryQueueKind) {
  sim::SimConfig cfg;
  cfg.sim_length = 2'000.0;
  cfg.seed = 7;
  for (const des::QueueKind kind : des::kAllQueueKinds) {
    sim::ExperimentOptions opts;
    opts.queue_kind = kind;
    opts.collect_trace_hash = true;
    const sim::RunResult off = sim::run_experiment(cfg, opts);
    EXPECT_TRUE(off.metrics.empty());

    obs::RunObserver observer;
    opts.observer = &observer;
    const sim::RunResult on = sim::run_experiment(cfg, opts);
    EXPECT_EQ(on.trace_hash, off.trace_hash) << des::queue_kind_name(kind);
    EXPECT_EQ(on.events_executed, off.events_executed) << des::queue_kind_name(kind);
    EXPECT_FALSE(on.metrics.empty());
    EXPECT_GT(observer.timeline().size(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Probe/timeline content against the run's own statistics
// ---------------------------------------------------------------------------

class ObservedRun : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cfg_ = new sim::SimConfig();
    cfg_->sim_length = 5'000.0;
    cfg_->seed = 11;
    observer_ = new obs::RunObserver();
    sim::ExperimentOptions opts;
    opts.observer = observer_;
    result_ = new sim::RunResult(sim::run_experiment(*cfg_, opts));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete observer_;
    delete cfg_;
    result_ = nullptr;
    observer_ = nullptr;
    cfg_ = nullptr;
  }

  static sim::SimConfig* cfg_;
  static obs::RunObserver* observer_;
  static sim::RunResult* result_;
};

sim::SimConfig* ObservedRun::cfg_ = nullptr;
obs::RunObserver* ObservedRun::observer_ = nullptr;
sim::RunResult* ObservedRun::result_ = nullptr;

TEST_F(ObservedRun, KernelCountersReconcileWithTheRun) {
  const obs::MetricRegistry& reg = observer_->registry();
  EXPECT_EQ(reg.find_counter("des.queue.pops")->value(), result_->events_executed);
  EXPECT_EQ(reg.find_counter("des.queue.pushes")->value(), result_->invariants.scheduled);
  EXPECT_EQ(reg.find_counter("des.queue.cancels")->value(),
            result_->invariants.cancels_effective);
  EXPECT_DOUBLE_EQ(reg.find_gauge("des.queue.max_pending")->value(),
                   static_cast<f64>(result_->invariants.max_pending));
  // Per-kind dispatch counters partition the pop count.
  u64 dispatched = 0;
  for (const auto& entry : reg.entries()) {
    if (entry.name.rfind("des.dispatch.", 0) == 0 && entry.counter != nullptr) {
      dispatched += entry.counter->value();
    }
  }
  EXPECT_EQ(dispatched, result_->events_executed);
}

TEST_F(ObservedRun, NetCountersReconcileWithNetworkStats) {
  const obs::MetricRegistry& reg = observer_->registry();
  EXPECT_EQ(reg.find_counter("net.mobility.handoffs")->value(), result_->net.handoffs);
  EXPECT_EQ(reg.find_counter("net.mobility.disconnects")->value(), result_->net.disconnects);
  EXPECT_EQ(reg.find_counter("net.mobility.reconnects")->value(), result_->net.reconnects);
  EXPECT_EQ(reg.find_counter("net.leg.uplink")->value(), result_->net.app_sent);
  EXPECT_EQ(reg.find_counter("net.bytes.piggyback")->value(), result_->net.piggyback_bytes);
  const obs::FixedHistogram* lat = reg.find_histogram("net.delivery_latency_tu");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), result_->net.app_delivered);
  EXPECT_NEAR(lat->mean(), result_->net.delivery_latency.mean(), 1e-9);
}

TEST_F(ObservedRun, CheckpointTimelineMatchesProtocolCounts) {
  // Count timeline checkpoints per (slot, kind) and compare with the
  // authoritative per-protocol statistics.
  const usize slots = result_->protocols.size();
  std::vector<u64> basic(slots, 0), forced(slots, 0), initial(slots, 0);
  for (const obs::ProbeEvent& e : observer_->timeline().events()) {
    if (e.kind != obs::ProbeKind::kCheckpoint) continue;
    ASSERT_GE(e.track, 0);
    ASSERT_LT(static_cast<usize>(e.track), slots);
    ASSERT_GE(e.actor, 0);
    ASSERT_LT(e.actor, static_cast<i32>(cfg_->network.n_hosts));
    switch (e.ckpt_kind) {
      case obs::CkptKind::kBasic: ++basic[static_cast<usize>(e.track)]; break;
      case obs::CkptKind::kForced: ++forced[static_cast<usize>(e.track)]; break;
      case obs::CkptKind::kInitial: ++initial[static_cast<usize>(e.track)]; break;
    }
  }
  for (usize s = 0; s < slots; ++s) {
    EXPECT_EQ(basic[s], result_->protocols[s].basic) << result_->protocols[s].name;
    EXPECT_EQ(forced[s], result_->protocols[s].forced) << result_->protocols[s].name;
    EXPECT_EQ(initial[s], result_->protocols[s].initial) << result_->protocols[s].name;
  }
}

TEST_F(ObservedRun, ForcedCheckpointsCarryTheTriggeringRule) {
  // Slot order is TP, BCS, QBC (the default protocol set).
  ASSERT_EQ(result_->protocols[0].name, "TP");
  ASSERT_EQ(result_->protocols[1].name, "BCS");
  u64 tp_forced = 0, bcs_forced = 0;
  for (const obs::ProbeEvent& e : observer_->timeline().events()) {
    if (e.kind != obs::ProbeKind::kCheckpoint || e.ckpt_kind != obs::CkptKind::kForced) continue;
    if (e.track == 0) {
      ++tp_forced;
      EXPECT_EQ(e.rule, obs::ForcedRule::kReceiveAfterSend);
    } else if (e.track == 1) {
      ++bcs_forced;
      EXPECT_EQ(e.rule, obs::ForcedRule::kSnGreater);
    }
    EXPECT_GT(e.t, 0.0);  // forced checkpoints are triggered by traffic
  }
  EXPECT_EQ(tp_forced, result_->protocols[0].forced);
  EXPECT_EQ(bcs_forced, result_->protocols[1].forced);
  EXPECT_GT(tp_forced, 0u);
  EXPECT_GT(bcs_forced, 0u);
  EXPECT_STREQ(obs::forced_rule_name(obs::ForcedRule::kSnGreater), "m.sn > sn_i");
  EXPECT_STREQ(obs::forced_rule_name(obs::ForcedRule::kReceiveAfterSend),
               "first receive after send");
}

TEST_F(ObservedRun, HandoffTimelineMatchesNetworkStats) {
  u64 handoffs = 0, disconnects = 0, reconnects = 0;
  for (const obs::ProbeEvent& e : observer_->timeline().events()) {
    if (e.kind == obs::ProbeKind::kHandoff) {
      ++handoffs;
      EXPECT_GE(e.track, 0);  // destination MSS
      EXPECT_LT(e.track, static_cast<i32>(cfg_->network.n_mss));
    }
    if (e.kind == obs::ProbeKind::kDisconnect) ++disconnects;
    if (e.kind == obs::ProbeKind::kReconnect) ++reconnects;
  }
  EXPECT_EQ(handoffs, result_->net.handoffs);
  EXPECT_EQ(disconnects, result_->net.disconnects);
  EXPECT_EQ(reconnects, result_->net.reconnects);
}

TEST_F(ObservedRun, RunResultMetricsAreTheRegistrySnapshot) {
  const std::vector<obs::MetricSample> snap = observer_->registry().snapshot();
  ASSERT_EQ(result_->metrics.size(), snap.size());
  for (usize i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(result_->metrics[i].name, snap[i].name);
    EXPECT_DOUBLE_EQ(result_->metrics[i].value, snap[i].value);
  }
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST_F(ObservedRun, JsonlExportParsesLineByLine) {
  std::ostringstream os;
  obs::write_metrics_jsonl(os, *observer_);
  std::istringstream lines(os.str());
  std::string line;
  usize events = 0, metrics = 0;
  bool saw_metric = false, saw_rule = false;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    const sim::JsonValue doc = sim::json_parse(line);
    const std::string& type = doc.at("type").as_string();
    if (type == "event") {
      EXPECT_FALSE(saw_metric) << "event line after the metric block";
      ++events;
      if (doc.at("kind").as_string() == "checkpoint" &&
          doc.at("ckpt").as_string() == "forced" && doc.at("protocol").as_string() == "BCS") {
        EXPECT_EQ(doc.at("rule").as_string(), "m.sn > sn_i");
        saw_rule = true;
      }
    } else {
      ASSERT_EQ(type, "metric");
      saw_metric = true;
      ++metrics;
      EXPECT_FALSE(doc.at("name").as_string().empty());
    }
  }
  EXPECT_EQ(events, observer_->timeline().size());
  EXPECT_EQ(metrics, observer_->registry().snapshot().size());
  EXPECT_TRUE(saw_rule);
}

TEST_F(ObservedRun, ChromeTraceIsValidJsonWithCheckpointsAndFlowArrows) {
  std::ostringstream os;
  obs::write_chrome_trace(os, *observer_);
  const sim::JsonValue doc = sim::json_parse(os.str());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());

  usize metadata = 0, forced = 0, basic = 0, sends = 0, delivers = 0;
  usize flow_starts = 0, flow_finishes = 0;
  std::set<std::pair<std::string, u64>> open_flows;
  for (const sim::JsonValue& e : events) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M") {
      ++metadata;
      continue;
    }
    if (ph == "s" || ph == "f") {
      // Flow arrows: identified by (cat, id); every finish must follow
      // its start in file order, and each flow terminates exactly once.
      const std::string& cat = e.at("cat").as_string();
      EXPECT_TRUE(cat == "msg" || cat == "force") << cat;
      const u64 id = e.at("id").as_u64();
      if (ph == "s") {
        ++flow_starts;
        open_flows.emplace(cat, id);
      } else {
        ++flow_finishes;
        EXPECT_EQ(e.at("bp").as_string(), "e");
        EXPECT_EQ(open_flows.erase({cat, id}), 1u) << cat << ":" << id;
      }
      continue;
    }
    const std::string& name = e.at("name").as_string();
    if (ph == "X") {
      // Slices: sends, deliveries, and forced checkpoints with a trigger.
      (void)e.at("dur").as_u64();
      if (name.rfind("send #", 0) == 0) {
        ++sends;
        EXPECT_EQ(e.at("pid").as_u64(), 0u);
        (void)e.at("args").at("msg").as_u64();
        (void)e.at("args").at("dst").as_u64();
      } else if (name.rfind("deliver #", 0) == 0) {
        ++delivers;
        EXPECT_EQ(e.at("pid").as_u64(), 0u);
        (void)e.at("args").at("src").as_u64();
      } else {
        ASSERT_EQ(name, "forced checkpoint");
        ++forced;
        EXPECT_GE(e.at("pid").as_u64(), 1u);
        EXPECT_NE(e.at("args").at("rule").as_string(), "none");
        (void)e.at("args").at("msg").as_u64();  // the triggering message
      }
      continue;
    }
    ASSERT_EQ(ph, "i");
    EXPECT_EQ(e.at("s").as_string(), "t");
    if (name == "forced checkpoint") {
      // Forced without a recorded trigger (e.g. a coordinator marker).
      ++forced;
      EXPECT_GE(e.at("pid").as_u64(), 1u);
      EXPECT_LT(e.at("tid").as_u64(), u64{cfg_->network.n_hosts});
      EXPECT_NE(e.at("args").at("rule").as_string(), "none");
      (void)e.at("args").at("sn").as_u64();
    } else if (name == "basic checkpoint") {
      ++basic;
      EXPECT_EQ(e.at("args").at("rule").as_string(), "none");
    }
  }
  // process/thread metadata: pid 0 (network) + one per protocol, each
  // with one thread row per host.
  const usize expected_meta =
      (1 + result_->protocols.size()) * (1 + cfg_->network.n_hosts);
  EXPECT_EQ(metadata, expected_meta);
  EXPECT_GT(forced, 0u);
  EXPECT_GT(basic, 0u);
  EXPECT_GT(sends, 0u);
  EXPECT_GT(delivers, 0u);
  EXPECT_GT(flow_starts, 0u);
  // Every emitted flow start is terminated by exactly one finish.
  EXPECT_EQ(flow_finishes, flow_starts);
  EXPECT_TRUE(open_flows.empty());
  // The trailing metrics block mirrors the registry.
  EXPECT_EQ(doc.at("metrics").object.size(), observer_->registry().snapshot().size());
}

TEST_F(ObservedRun, TimelineCarriesSendAndDeliverEventsMatchingNetStats) {
  u64 sends = 0, delivers = 0;
  for (const obs::ProbeEvent& e : observer_->timeline().events()) {
    if (e.kind == obs::ProbeKind::kSend) {
      ++sends;
      EXPECT_GT(e.a, 0u);  // message ids are 1-based
    } else if (e.kind == obs::ProbeKind::kDeliver) {
      ++delivers;
      EXPECT_GT(e.a, 0u);
    }
  }
  EXPECT_EQ(sends, result_->net.app_sent);
  EXPECT_EQ(delivers, result_->net.app_received);
}

#ifndef MOBICHK_TEST_DATA_DIR
#error "MOBICHK_TEST_DATA_DIR must point at tests/obs"
#endif

TEST(ObsGolden, ChromeTraceOfTinyRunMatchesCommittedFile) {
  // A deliberately tiny deterministic run: any change to the exporter
  // format, the probe wiring or the simulation itself moves this golden.
  sim::SimConfig cfg;
  cfg.network.n_hosts = 4;
  cfg.network.n_mss = 2;
  cfg.sim_length = 300.0;
  cfg.t_switch = 50.0;
  cfg.p_switch = 0.8;
  cfg.seed = 3;
  obs::RunObserver observer;
  sim::ExperimentOptions opts;
  opts.observer = &observer;
  (void)sim::run_experiment(cfg, opts);
  std::ostringstream got;
  obs::write_chrome_trace(got, observer);

  const std::string path = std::string(MOBICHK_TEST_DATA_DIR) + "/golden_chrome_trace.json";
  std::ifstream file(path);
  if (!file) {
    std::ofstream regen(path);
    regen << got.str();
    FAIL() << "golden file was missing; regenerated " << path << " — inspect and commit it";
  }
  std::ostringstream want;
  want << file.rdbuf();
  EXPECT_EQ(got.str(), want.str())
      << "chrome-trace output changed; delete " << path << " and re-run to regenerate";
}

TEST(ObsGolden, TransferSlicesOfTinyDataPlaneRunMatchCommittedFile) {
  // The same tiny run with the checkpoint data plane on: the chrome
  // trace now carries storage-transfer slices (uploads and migrations).
  // Pins the exporter format for kStorageTransfer probes and the plane's
  // deterministic completion times; tools/lint_trace.py checks the
  // committed file structurally in CI.
  sim::SimConfig cfg;
  cfg.network.n_hosts = 4;
  cfg.network.n_mss = 2;
  cfg.sim_length = 300.0;
  cfg.t_switch = 50.0;
  cfg.p_switch = 0.8;
  cfg.seed = 3;
  obs::RunObserver observer;
  sim::ExperimentOptions opts;
  opts.observer = &observer;
  opts.data_plane.enabled = true;
  const sim::RunResult result = sim::run_experiment(cfg, opts);
  ASSERT_TRUE(result.data_plane_enabled);
  ASSERT_GT(result.data_plane.transfers_completed, 0u);
  u64 transfer_probes = 0;
  for (const obs::ProbeEvent& e : observer.timeline().events()) {
    if (e.kind == obs::ProbeKind::kStorageTransfer) ++transfer_probes;
  }
  EXPECT_EQ(transfer_probes, result.data_plane.transfers_completed);
  std::ostringstream got;
  obs::write_chrome_trace(got, observer);

  const std::string path = std::string(MOBICHK_TEST_DATA_DIR) + "/golden_transfer_slices.json";
  std::ifstream file(path);
  if (!file) {
    std::ofstream regen(path);
    regen << got.str();
    FAIL() << "golden file was missing; regenerated " << path << " — inspect and commit it";
  }
  std::ostringstream want;
  want << file.rdbuf();
  EXPECT_EQ(got.str(), want.str())
      << "transfer-slice trace changed; delete " << path << " and re-run to regenerate";
}

TEST(ObsGolden, FlowEventsJsonlOfTinyRunMatchesCommittedFile) {
  // Same tiny run, JSONL exporter: pins the send/deliver/sn_promote
  // event lines and the rl.* recovery-line metric families.
  sim::SimConfig cfg;
  cfg.network.n_hosts = 4;
  cfg.network.n_mss = 2;
  cfg.sim_length = 300.0;
  cfg.t_switch = 50.0;
  cfg.p_switch = 0.8;
  cfg.seed = 3;
  obs::RunObserver observer;
  sim::ExperimentOptions opts;
  opts.observer = &observer;
  (void)sim::run_experiment(cfg, opts);
  std::ostringstream got;
  obs::write_metrics_jsonl(got, observer);

  const std::string path = std::string(MOBICHK_TEST_DATA_DIR) + "/golden_flow_events.jsonl";
  std::ifstream file(path);
  if (!file) {
    std::ofstream regen(path);
    regen << got.str();
    FAIL() << "golden file was missing; regenerated " << path << " — inspect and commit it";
  }
  std::ostringstream want;
  want << file.rdbuf();
  EXPECT_EQ(got.str(), want.str())
      << "jsonl output changed; delete " << path << " and re-run to regenerate";
}

}  // namespace
}  // namespace mobichk
