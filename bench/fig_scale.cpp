// FIG-SCALE: city-scale population sweep — the open-system scalability
// answer, measured instead of argued.
//
// Sweeps the host count over decades (default 10 .. 100'000) at a fixed
// total event budget (the horizon shrinks as n grows) and reports, per
// point and per protocol:
//  * N_tot (the paper's checkpoint count),
//  * encoded piggyback bytes actually shipped (sparse deltas for TP),
//  * the dense-equivalent bytes the paper-literal full vectors would have
//    cost, and
//  * end-to-end kernel throughput (events/s).
//
// The dense TP encoding is O(n) state per message and O(n^2) memory in
// the population, so a 10^5-host run only completes at all because the
// sparse encoding pays for dependencies that actually formed; the
// encoded/dense ratio printed here is the measured win.
//
// Flags:
//   --point=N     run a single population instead of the sweep (CI smoke)
//   --events=B    approximate event budget per point (default 2'000'000)
//   --queue=NAME  binary-heap | calendar | sorted-list (default calendar)
//   --out=PATH    also write the rows as a JSON array
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "mobichk.hpp"

namespace {

using namespace mobichk;

struct ScaleRow {
  u32 hosts = 0;
  u32 mss = 0;
  f64 sim_length = 0.0;
  u64 events = 0;
  f64 wall_seconds = 0.0;
  u64 app_sent = 0;
  u64 tp_n_tot = 0;
  u64 tp_encoded_bytes = 0;
  u64 tp_dense_bytes = 0;
};

/// Keeps every point at roughly the same total event count so the sweep
/// finishes in minutes: horizon = budget / n, clamped to stay meaningful.
f64 horizon_for(u32 hosts, f64 event_budget) {
  return std::clamp(event_budget / static_cast<f64>(hosts) / 4.0, 50.0, 50'000.0);
}

/// Cells scale with the population (paper ratio: 2 MHs per MSS) but are
/// capped: the wired topology precomputes all-pairs hops (n_mss^2).
u32 mss_for(u32 hosts) { return std::clamp(hosts / 20u, 5u, 512u); }

ScaleRow run_point(u32 hosts, f64 event_budget, des::QueueKind queue) {
  sim::SimConfig cfg;
  cfg.network.n_hosts = hosts;
  cfg.network.n_mss = mss_for(hosts);
  cfg.sim_length = horizon_for(hosts, event_budget);
  cfg.t_switch = 1'000.0;
  cfg.p_switch = 1.0;
  cfg.heterogeneity = 0.0;
  cfg.seed = 42;

  sim::ExperimentOptions opts;
  opts.queue_kind = queue;

  const auto t0 = std::chrono::steady_clock::now();
  const sim::RunResult r = sim::run_experiment(cfg, opts);
  const f64 wall =
      std::chrono::duration<f64>(std::chrono::steady_clock::now() - t0).count();

  ScaleRow row;
  row.hosts = hosts;
  row.mss = cfg.network.n_mss;
  row.sim_length = cfg.sim_length;
  row.events = r.events_executed;
  row.wall_seconds = wall;
  row.app_sent = r.net.app_sent;
  const auto& tp = r.by_name("TP");
  row.tp_n_tot = tp.n_tot;
  row.tp_encoded_bytes = tp.piggyback_bytes;
  row.tp_dense_bytes = tp.piggyback_dense_bytes;
  return row;
}

void print_row(const ScaleRow& row) {
  const f64 eps = static_cast<f64>(row.events) / row.wall_seconds;
  const f64 ratio = row.tp_dense_bytes > 0
                        ? static_cast<f64>(row.tp_encoded_bytes) /
                              static_cast<f64>(row.tp_dense_bytes)
                        : 0.0;
  std::printf("%8u %6u %9.0f %10llu %9.3f %10.3g %10llu %14llu %14llu %8.4f\n", row.hosts,
              row.mss, row.sim_length, static_cast<unsigned long long>(row.events),
              row.wall_seconds, eps, static_cast<unsigned long long>(row.tp_n_tot),
              static_cast<unsigned long long>(row.tp_encoded_bytes),
              static_cast<unsigned long long>(row.tp_dense_bytes), ratio);
}

void write_json(const std::string& path, const std::vector<ScaleRow>& rows,
                des::QueueKind queue) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"fig_scale\",\n  \"queue\": \"%s\",\n  \"rows\": [\n",
               des::queue_kind_name(queue));
  for (usize i = 0; i < rows.size(); ++i) {
    const ScaleRow& r = rows[i];
    std::fprintf(out,
                 "    {\"hosts\": %u, \"mss\": %u, \"sim_length\": %.1f, \"events\": %llu, "
                 "\"wall_seconds\": %.4f, \"events_per_second\": %.1f, \"app_sent\": %llu, "
                 "\"tp_n_tot\": %llu, \"tp_encoded_bytes\": %llu, \"tp_dense_bytes\": %llu}%s\n",
                 r.hosts, r.mss, r.sim_length, static_cast<unsigned long long>(r.events),
                 r.wall_seconds, static_cast<f64>(r.events) / r.wall_seconds,
                 static_cast<unsigned long long>(r.app_sent),
                 static_cast<unsigned long long>(r.tp_n_tot),
                 static_cast<unsigned long long>(r.tp_encoded_bytes),
                 static_cast<unsigned long long>(r.tp_dense_bytes),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

int run(int argc, char** argv) {
  sim::FlagSet flags("fig_scale [flags]");
  flags.add("point", sim::FlagType::kUInt, "0", "run only this host count (0 = full sweep)")
      .add("events", sim::FlagType::kUInt, "2000000", "approximate event budget per point")
      .add("queue", sim::FlagType::kString, "calendar", "event queue implementation")
      .add("out", sim::FlagType::kString, "", "also write rows to this JSON path");
  const sim::ArgParser args = flags.parse(argc, argv);
  if (args.get_flag("help")) {
    flags.print_help(std::cout);
    return 0;
  }
  const u64 point = args.get_u64("point", 0);
  const f64 budget = static_cast<f64>(args.get_u64("events", 2'000'000));
  const des::QueueKind queue = des::queue_kind_from_name(args.get_string("queue", "calendar"));

  std::vector<u32> populations;
  if (point > 0) {
    populations.push_back(static_cast<u32>(point));
  } else {
    populations = {10u, 100u, 1'000u, 10'000u, 100'000u};
  }

  std::printf("FIG-SCALE — population sweep on the %s queue (sparse TP piggybacks)\n",
              des::queue_kind_name(queue));
  std::printf("%8s %6s %9s %10s %9s %10s %10s %14s %14s %8s\n", "hosts", "mss", "length",
              "events", "wall(s)", "events/s", "TP N_tot", "TP enc(B)", "TP dense(B)",
              "enc/dense");

  std::vector<ScaleRow> rows;
  for (const u32 n : populations) {
    rows.push_back(run_point(n, budget, queue));
    print_row(rows.back());
  }

  const std::string out_path = args.get_string("out", "");
  if (!out_path.empty()) write_json(out_path, rows, queue);

  // Sanity gates (keep this binary usable as a CI smoke): the sparse
  // encoding must never exceed the dense-equivalent cost, and every
  // requested point must actually have executed events.
  for (const ScaleRow& r : rows) {
    if (r.tp_encoded_bytes > r.tp_dense_bytes) {
      std::fprintf(stderr, "FAIL: n=%u encoded %llu > dense %llu\n", r.hosts,
                   static_cast<unsigned long long>(r.tp_encoded_bytes),
                   static_cast<unsigned long long>(r.tp_dense_bytes));
      return 1;
    }
    if (r.events == 0) {
      std::fprintf(stderr, "FAIL: n=%u executed no events\n", r.hosts);
      return 1;
    }
  }
  std::printf("PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
