// Calendar-queue self-tuning: the scan-cost monitor, the even-sample
// width estimator, and large-population differential fuzz against the
// sorted-list oracle.
#include <gtest/gtest.h>

#include <vector>

#include "des/event_queue.hpp"
#include "des/rng.hpp"
#include "des/sorted_list_queue.hpp"

namespace mobichk::des {
namespace {

EventEntry entry(Time t, u64 seq) {
  EventEntry e;
  e.time = t;
  e.seq = seq;
  return e;
}

TEST(CalendarTuning, ScanMonitorRetunesAMistunedWidth) {
  // Hold-and-pop with a small, constant population: no grow/shrink
  // resize ever fires, so the width stays at its initial 1.0 while the
  // events are spaced ~1e6 apart — every pop has to scan a whole year
  // and fall through to the jump-to-minimum path. The scan-cost monitor
  // must notice and force a re-tune, after which the width matches the
  // actual spacing and the scan rate collapses.
  CalendarQueue cal;
  SortedListQueue oracle;
  u64 seq = 0;
  Time t = 0.0;
  for (int i = 0; i < 8; ++i) {
    t += 1'000'000.0;
    cal.push(entry(t, seq));
    oracle.push(entry(t, seq));
    ++seq;
  }
  EXPECT_DOUBLE_EQ(cal.bucket_width(), 1.0);  // mistuned on purpose

  const int kOps = 3000;
  for (int i = 0; i < kOps; ++i) {
    const EventEntry got = cal.pop();
    const EventEntry want = oracle.pop();
    ASSERT_DOUBLE_EQ(got.time, want.time);
    ASSERT_EQ(got.seq, want.seq);
    t += 1'000'000.0;
    cal.push(entry(t, seq));
    oracle.push(entry(t, seq));
    ++seq;
  }
  EXPECT_GE(cal.retunes(), 1u);
  EXPECT_GT(cal.bucket_width(), 1.0);  // re-estimated from the real gaps
  // Post-tune steady state: near-constant scan cost. Measure a fresh
  // window and demand it stays close to one bucket per pop.
  const u64 scans_before = cal.scan_steps();
  for (int i = 0; i < 500; ++i) {
    cal.pop();
    t += 1'000'000.0;
    cal.push(entry(t, seq++));
  }
  const f64 per_pop = static_cast<f64>(cal.scan_steps() - scans_before) / 500.0;
  EXPECT_LT(per_pop, 4.0);
}

TEST(CalendarTuning, WidthEstimateIgnoresOutlierGap) {
  // A far-future straggler plus 99 events spaced 0.01 apart: the growth
  // resizes re-estimate the width with the 1e9 gap in the sample, and
  // the median-gap estimator must tune to the cluster spacing, not to
  // the mean (which the lone huge gap would dominate).
  CalendarQueue cal;
  u64 seq = 0;
  cal.push(entry(1e9, seq++));
  for (int i = 0; i < 99; ++i) cal.push(entry(static_cast<f64>(i) * 0.01, seq++));
  EXPECT_LT(cal.bucket_width(), 1.0);
  EXPECT_GT(cal.bucket_width(), 0.0);
  // Pop order is still exact.
  Time prev = -1.0;
  while (!cal.empty()) {
    const Time now = cal.pop().time;
    ASSERT_GE(now, prev);
    prev = now;
  }
}

TEST(CalendarTuning, SimultaneousEventsDoNotZeroTheWidth) {
  // All events at the same instant: every sampled gap is zero. The
  // estimator must fall back rather than set width = 0 (which would put
  // everything in one bucket forever / divide by zero).
  CalendarQueue cal;
  for (u64 s = 0; s < 200; ++s) cal.push(entry(5.0, s));
  EXPECT_GT(cal.bucket_width(), 0.0);
  for (u64 s = 0; s < 200; ++s) ASSERT_EQ(cal.pop().seq, s);  // seq breaks ties
}

TEST(CalendarTuning, LargePopulationFuzzMatchesSortedOracle) {
  // n ~ 1000 live events, mixed time scales (three decades of spacing),
  // random push/pop/cancel churn: the calendar must reproduce the
  // oracle's (time, seq) sequence exactly through every resize and
  // re-tune.
  CalendarQueue cal;
  SortedListQueue oracle;
  RngStream rng(99, "cal-fuzz");
  u64 seq = 0;
  Time now = 0.0;
  std::vector<std::pair<EventHandle, EventHandle>> live;

  auto push_one = [&] {
    // Bimodal horizon: mostly near-future, sometimes far.
    const f64 scale = rng.uniform01() < 0.8 ? 1.0 : 1000.0;
    const Time t = now + rng.uniform01() * scale;
    const EventHandle hc = cal.push(entry(t, seq));
    const EventHandle ho = oracle.push(entry(t, seq));
    live.push_back({hc, ho});
    ++seq;
  };

  for (int i = 0; i < 1000; ++i) push_one();
  for (int step = 0; step < 20'000; ++step) {
    const f64 r = rng.uniform01();
    if (r < 0.45 || cal.empty()) {
      push_one();
    } else if (r < 0.9) {
      const EventEntry got = cal.pop();
      const EventEntry want = oracle.pop();
      ASSERT_DOUBLE_EQ(got.time, want.time) << "step " << step;
      ASSERT_EQ(got.seq, want.seq) << "step " << step;
      now = got.time;
    } else if (!live.empty()) {
      const usize j = static_cast<usize>(rng.uniform01() * static_cast<f64>(live.size())) %
                      live.size();
      const bool a = cal.cancel(live[j].first);
      const bool b = oracle.cancel(live[j].second);
      ASSERT_EQ(a, b) << "step " << step;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(j));
    }
    ASSERT_EQ(cal.size(), oracle.size());
  }
  // Drain completely; sequences must agree to the last event.
  while (!cal.empty()) {
    const EventEntry got = cal.pop();
    const EventEntry want = oracle.pop();
    ASSERT_DOUBLE_EQ(got.time, want.time);
    ASSERT_EQ(got.seq, want.seq);
  }
  EXPECT_TRUE(oracle.empty());
}

TEST(CalendarTuning, TinyPopulationsStayCorrect) {
  // n in {1, 2}: the estimator's small-sample edges (0 or 1 gaps).
  for (const int n : {1, 2}) {
    CalendarQueue cal;
    for (int i = 0; i < n; ++i) cal.push(entry(static_cast<f64>(i) * 7.5, static_cast<u64>(i)));
    for (int i = 0; i < n; ++i) EXPECT_EQ(cal.pop().seq, static_cast<u64>(i));
    EXPECT_TRUE(cal.empty());
    EXPECT_GT(cal.bucket_width(), 0.0);
  }
}

}  // namespace
}  // namespace mobichk::des
