#include "sim/json.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "sim/report.hpp"
#include "sim/sweep.hpp"

namespace mobichk::sim {
namespace {

std::string compact(std::function<void(JsonWriter&)> build) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  build(w);
  return os.str();
}

TEST(JsonWriter, EmptyObjectAndArray) {
  EXPECT_EQ(compact([](JsonWriter& w) { w.begin_object().end_object(); }), "{}");
  EXPECT_EQ(compact([](JsonWriter& w) { w.begin_array().end_array(); }), "[]");
}

TEST(JsonWriter, SimpleFields) {
  const std::string s = compact([](JsonWriter& w) {
    w.begin_object();
    w.field("a", u64{1}).field("b", 2.5).field("c", "x").field("d", true);
    w.end_object();
  });
  EXPECT_EQ(s, R"({"a": 1,"b": 2.5,"c": "x","d": true})");
}

TEST(JsonWriter, NestedStructures) {
  const std::string s = compact([](JsonWriter& w) {
    w.begin_object();
    w.key("list").begin_array();
    w.value(u64{1});
    w.value(u64{2});
    w.begin_object();
    w.field("k", "v");
    w.end_object();
    w.end_array();
    w.end_object();
  });
  EXPECT_EQ(s, R"({"list": [1,2,{"k": "v"}]})");
}

TEST(JsonWriter, EscapesStrings) {
  const std::string s = compact([](JsonWriter& w) {
    w.begin_object();
    w.field("quote\"back\\slash", "line\nbreak\ttab");
    w.end_object();
  });
  EXPECT_EQ(s, R"({"quote\"back\\slash": "line\nbreak\ttab"})");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  const std::string s = compact([](JsonWriter& w) {
    w.begin_array();
    w.value(std::numeric_limits<f64>::infinity());
    w.value(std::numeric_limits<f64>::quiet_NaN());
    w.end_array();
  });
  EXPECT_EQ(s, "[null,null]");
}

TEST(JsonWriter, NegativeIntegers) {
  const std::string s = compact([](JsonWriter& w) {
    w.begin_array();
    w.value(i64{-42});
    w.value(-1);
    w.end_array();
  });
  EXPECT_EQ(s, "[-42,-1]");
}

TEST(JsonReport, RunResultContainsAllSections) {
  SimConfig cfg;
  cfg.sim_length = 3'000.0;
  cfg.seed = 8;
  const RunResult r = run_experiment(cfg);
  std::ostringstream os;
  write_json(os, r);
  const std::string s = os.str();
  for (const char* needle :
       {"\"config\"", "\"network\"", "\"protocols\"", "\"TP\"", "\"BCS\"", "\"QBC\"",
        "\"n_tot\"", "\"handoffs\"", "\"trace_hash\""}) {
    EXPECT_NE(s.find(needle), std::string::npos) << needle;
  }
  // Balanced braces (cheap well-formedness check).
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'), std::count(s.begin(), s.end(), '}'));
  EXPECT_EQ(std::count(s.begin(), s.end(), '['), std::count(s.begin(), s.end(), ']'));
}

TEST(GnuplotReport, FigureScriptIsWellFormed) {
  FigureSpec spec;
  spec.title = "gp-test";
  spec.base.sim_length = 2'000.0;
  spec.t_switch_values = {500.0, 1'000.0};
  spec.min_seeds = 2;
  spec.max_seeds = 2;
  const FigureResult result = run_figure(spec);
  std::ostringstream os;
  result.write_gnuplot(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("set logscale xy"), std::string::npos);
  EXPECT_NE(s.find("\"gp-test\""), std::string::npos);
  // One inline data block terminator per protocol series.
  usize blocks = 0;
  for (usize pos = 0; (pos = s.find("\ne\n", pos)) != std::string::npos; ++pos) ++blocks;
  EXPECT_EQ(blocks, result.protocol_names.size());
  // Every series has one data row per sweep point.
  EXPECT_NE(s.find("500 "), std::string::npos);
  EXPECT_NE(s.find("1000 "), std::string::npos);
}

TEST(JsonReport, FigureResultSerializes) {
  FigureSpec spec;
  spec.title = "json-test";
  spec.base.sim_length = 2'000.0;
  spec.t_switch_values = {500.0, 1'000.0};
  spec.min_seeds = 2;
  spec.max_seeds = 2;
  const FigureResult result = run_figure(spec);
  std::ostringstream os;
  write_json(os, result);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"json-test\""), std::string::npos);
  EXPECT_NE(s.find("\"points\""), std::string::npos);
  EXPECT_NE(s.find("\"ci95\""), std::string::npos);
  // Adaptive-precision additions: echo of the target, per-point
  // replication spend, and the sweep ledger.
  for (const char* needle : {"\"precision\"", "\"target_relative_ci\"", "\"replications\"",
                             "\"target_met\"", "\"relative_ci95\"", "\"ledger\"",
                             "\"events_per_second\"", "\"wall_seconds\""}) {
    EXPECT_NE(s.find(needle), std::string::npos) << needle;
  }
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'), std::count(s.begin(), s.end(), '}'));
  // The report must be parseable by our own reader.
  const JsonValue doc = json_parse(s);
  EXPECT_EQ(doc.at("title").as_string(), "json-test");
  EXPECT_EQ(doc.at("points").as_array().size(), 2u);
  EXPECT_EQ(doc.at("ledger").at("replications_used").as_u64(),
            result.ledger.replications_used);
}

// ---------------------------------------------------------------------------
// json_parse
// ---------------------------------------------------------------------------

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(json_parse("null").is_null());
  EXPECT_TRUE(json_parse("true").as_bool());
  EXPECT_FALSE(json_parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json_parse("-2.5e2").as_f64(), -250.0);
  EXPECT_EQ(json_parse("42").as_u64(), 42u);
  EXPECT_EQ(json_parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, NestedContainersAndOrder) {
  const JsonValue doc = json_parse(R"({"b": [1, {"k": true}], "a": null})");
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
  ASSERT_EQ(doc.object.size(), 2u);
  EXPECT_EQ(doc.object[0].first, "b");  // insertion order preserved
  EXPECT_EQ(doc.object[1].first, "a");
  const auto& arr = doc.at("b").as_array();
  ASSERT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr[0].as_u64(), 1u);
  EXPECT_TRUE(arr[1].at("k").as_bool());
  EXPECT_TRUE(doc.at("a").is_null());
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), std::out_of_range);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(json_parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(json_parse(R"("Aé")").as_string(), "A\xc3\xa9");  // A, é (UTF-8)
}

TEST(JsonParse, RejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,", "tru", "1 2", "{\"a\" 1}", "{\"a\": 1,}",
                          "\"unterminated", "\"\\ud834\\udd1e\"", "nan", "01x"}) {
    EXPECT_THROW(json_parse(bad), std::invalid_argument) << bad;
  }
}

TEST(JsonParse, TypedAccessorsRejectWrongKinds) {
  EXPECT_THROW(json_parse("true").as_f64(), std::invalid_argument);
  EXPECT_THROW(json_parse("\"x\"").as_bool(), std::invalid_argument);
  EXPECT_THROW(json_parse("1").as_array(), std::invalid_argument);
  EXPECT_THROW(json_parse("-1").as_u64(), std::invalid_argument);
}

TEST(JsonParse, RejectsOverDeepNesting) {
  std::string deep;
  for (int i = 0; i < 80; ++i) deep += '[';
  for (int i = 0; i < 80; ++i) deep += ']';
  EXPECT_THROW(json_parse(deep), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Spec / options round-trips through the writer + reader pair
// ---------------------------------------------------------------------------

TEST(JsonRoundTrip, FigureSpecAllFields) {
  FigureSpec spec;
  spec.title = "round \"trip\" \\ test";
  spec.t_switch_values = {123.5, 4'567.0};
  spec.protocols = {core::ProtocolKind::kQbc, core::ProtocolKind::kTp};
  spec.target_relative_ci = 0.025;
  spec.min_seeds = 4;
  spec.max_seeds = 21;
  spec.batch_size = 3;
  spec.seed_base = 987'654'321;
  spec.base.network.n_hosts = 14;
  spec.base.network.n_mss = 5;
  spec.base.sim_length = 77'000.0;
  spec.base.comm_mean = 12.5;
  spec.base.p_send = 0.75;
  spec.base.p_switch = 0.9;
  spec.base.disconnect_mean = 333.0;
  spec.base.heterogeneity = 0.4;
  spec.base.mobility_model = MobilityModelKind::kRingNeighbor;

  std::ostringstream os;
  write_json(os, spec);
  const FigureSpec back = figure_spec_from_json(json_parse(os.str()));

  EXPECT_EQ(back.title, spec.title);
  EXPECT_EQ(back.t_switch_values, spec.t_switch_values);
  EXPECT_EQ(back.protocols, spec.protocols);
  EXPECT_DOUBLE_EQ(back.target_relative_ci, spec.target_relative_ci);
  EXPECT_EQ(back.min_seeds, spec.min_seeds);
  EXPECT_EQ(back.max_seeds, spec.max_seeds);
  EXPECT_EQ(back.batch_size, spec.batch_size);
  EXPECT_EQ(back.seed_base, spec.seed_base);
  EXPECT_EQ(back.base.network.n_hosts, spec.base.network.n_hosts);
  EXPECT_EQ(back.base.network.n_mss, spec.base.network.n_mss);
  EXPECT_DOUBLE_EQ(back.base.sim_length, spec.base.sim_length);
  EXPECT_DOUBLE_EQ(back.base.comm_mean, spec.base.comm_mean);
  EXPECT_DOUBLE_EQ(back.base.p_send, spec.base.p_send);
  EXPECT_DOUBLE_EQ(back.base.p_switch, spec.base.p_switch);
  EXPECT_DOUBLE_EQ(back.base.disconnect_mean, spec.base.disconnect_mean);
  EXPECT_DOUBLE_EQ(back.base.heterogeneity, spec.base.heterogeneity);
  EXPECT_EQ(back.base.mobility_model, spec.base.mobility_model);
  // The recovered spec drives the same replication seeds — the property
  // the round-trip exists to preserve.
  EXPECT_EQ(back.replication_seed(1, 3), spec.replication_seed(1, 3));
}

TEST(JsonRoundTrip, FigureSpecDefaultsSurviveEmptyObject) {
  const FigureSpec defaults;
  const FigureSpec back = figure_spec_from_json(json_parse("{}"));
  EXPECT_EQ(back.t_switch_values, defaults.t_switch_values);
  EXPECT_EQ(back.protocols, defaults.protocols);
  EXPECT_DOUBLE_EQ(back.target_relative_ci, defaults.target_relative_ci);
  EXPECT_EQ(back.min_seeds, defaults.min_seeds);
  EXPECT_EQ(back.max_seeds, defaults.max_seeds);
  EXPECT_EQ(back.seed_base, defaults.seed_base);
}

TEST(JsonRoundTrip, ExperimentOptionsAllFields) {
  ExperimentOptions opts;
  opts.protocols = {core::ProtocolKind::kBcs};
  opts.with_storage = true;
  opts.verify_consistency = true;
  opts.verify_max_lines = 123;
  opts.queue_kind = des::QueueKind::kCalendar;
  opts.collect_trace_hash = true;

  std::ostringstream os;
  write_json(os, opts);
  const ExperimentOptions back = experiment_options_from_json(json_parse(os.str()));

  EXPECT_EQ(back.protocols, opts.protocols);
  EXPECT_EQ(back.with_storage, opts.with_storage);
  EXPECT_EQ(back.verify_consistency, opts.verify_consistency);
  EXPECT_EQ(back.verify_max_lines, opts.verify_max_lines);
  EXPECT_EQ(back.queue_kind, opts.queue_kind);
  EXPECT_EQ(back.collect_trace_hash, opts.collect_trace_hash);
}

TEST(JsonParse, ExactU64AboveDoublePrecision) {
  // Trace hashes are full-width u64s; 0xd165928ffbf08bb4 > 2^53, so a
  // parse that squeezes numbers through a double corrupts the low bits.
  const u64 hash = 0xd165928ffbf08bb4ull;
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object().field("trace_hash", hash).end_object();
  const JsonValue doc = json_parse(os.str());
  EXPECT_EQ(doc.at("trace_hash").as_u64(), hash);
  EXPECT_EQ(json_parse("18446744073709551615").as_u64(), ~u64{0});  // u64 max
  EXPECT_THROW(json_parse("18446744073709551616").as_u64(), std::invalid_argument);
  // Scientific / fractional integers still work through the f64 path.
  EXPECT_EQ(json_parse("1e3").as_u64(), 1000u);
}

TEST(JsonRoundTrip, RunResultThroughParserIsByteIdentical) {
  SimConfig cfg;
  cfg.sim_length = 2'000.0;
  cfg.seed = 13;
  ExperimentOptions opts;
  opts.collect_trace_hash = true;
  obs::RunObserver observer;
  opts.observer = &observer;
  const RunResult r = run_experiment(cfg, opts);
  ASSERT_FALSE(r.metrics.empty());

  std::ostringstream first;
  write_json(first, r);
  const RunResult back = run_result_from_json(json_parse(first.str()));
  std::ostringstream second;
  write_json(second, back);
  EXPECT_EQ(first.str(), second.str());

  // Spot-check the recovered struct, not just the re-serialization.
  EXPECT_EQ(back.trace_hash, r.trace_hash);
  EXPECT_EQ(back.events_executed, r.events_executed);
  EXPECT_EQ(back.cfg.seed, r.cfg.seed);
  EXPECT_EQ(back.net.handoffs, r.net.handoffs);
  ASSERT_EQ(back.protocols.size(), r.protocols.size());
  EXPECT_EQ(back.protocols[0].name, r.protocols[0].name);
  EXPECT_EQ(back.protocols[0].kind, r.protocols[0].kind);
  EXPECT_EQ(back.protocols[0].n_tot, r.protocols[0].n_tot);
  EXPECT_EQ(back.invariants.cancels_effective, r.invariants.cancels_effective);
  EXPECT_EQ(back.invariants.cancels_noop(), r.invariants.cancels_noop());
  ASSERT_EQ(back.metrics.size(), r.metrics.size());
  EXPECT_EQ(back.metrics[0].name, r.metrics[0].name);
  EXPECT_DOUBLE_EQ(back.metrics[0].value, r.metrics[0].value);
}

TEST(JsonRoundTrip, RunResultWithoutObserverHasNoMetricsSection) {
  SimConfig cfg;
  cfg.sim_length = 1'000.0;
  const RunResult r = run_experiment(cfg);
  std::ostringstream os;
  write_json(os, r);
  EXPECT_EQ(os.str().find("\"metrics\""), std::string::npos);
  const RunResult back = run_result_from_json(json_parse(os.str()));
  EXPECT_TRUE(back.metrics.empty());
  std::ostringstream again;
  write_json(again, back);
  EXPECT_EQ(os.str(), again.str());
}

TEST(JsonRoundTrip, SweepLedgerAllFields) {
  SweepLedger ledger;
  ledger.wall_seconds = 1.5;
  ledger.events_executed = 123'456;
  ledger.replications_run = 42;
  ledger.replications_used = 40;
  ledger.replication_cap = 112;
  ledger.barrier_stall_seconds = 0.25;
  ledger.point_wall_seconds = {0.75, 0.5, 0.25};

  std::ostringstream os;
  write_json(os, ledger);
  // barrier_stall_seconds is always emitted, even for this sequential
  // (shards == 1) ledger, so run-to-run cost diffs never lose the field.
  EXPECT_NE(os.str().find("\"barrier_stall_seconds\""), std::string::npos);
  const SweepLedger back = sweep_ledger_from_json(json_parse(os.str()));
  EXPECT_DOUBLE_EQ(back.wall_seconds, ledger.wall_seconds);
  EXPECT_EQ(back.events_executed, ledger.events_executed);
  EXPECT_EQ(back.replications_run, ledger.replications_run);
  EXPECT_EQ(back.replications_used, ledger.replications_used);
  EXPECT_EQ(back.replication_cap, ledger.replication_cap);
  EXPECT_DOUBLE_EQ(back.barrier_stall_seconds, ledger.barrier_stall_seconds);
  ASSERT_EQ(back.point_wall_seconds.size(), ledger.point_wall_seconds.size());
  for (usize p = 0; p < ledger.point_wall_seconds.size(); ++p) {
    EXPECT_DOUBLE_EQ(back.point_wall_seconds[p], ledger.point_wall_seconds[p]);
  }
  EXPECT_DOUBLE_EQ(back.events_per_second(), ledger.events_per_second());
  std::ostringstream again;
  write_json(again, back);
  EXPECT_EQ(os.str(), again.str());
}

TEST(JsonRoundTrip, SweepLedgerFromFigureResultDocument) {
  FigureSpec spec;
  spec.title = "ledger-rt";
  spec.base.sim_length = 2'000.0;
  spec.t_switch_values = {500.0};
  spec.min_seeds = 2;
  spec.max_seeds = 2;
  const FigureResult result = run_figure(spec);
  std::ostringstream os;
  write_json(os, result);
  const SweepLedger back = sweep_ledger_from_json(json_parse(os.str()).at("ledger"));
  EXPECT_EQ(back.replications_run, result.ledger.replications_run);
  EXPECT_EQ(back.replications_used, result.ledger.replications_used);
  EXPECT_EQ(back.replication_cap, result.ledger.replication_cap);
  EXPECT_EQ(back.events_executed, result.ledger.events_executed);
  ASSERT_EQ(back.point_wall_seconds.size(), result.ledger.point_wall_seconds.size());
}

TEST(JsonRoundTrip, RejectsUnknownEnumNames) {
  EXPECT_THROW(figure_spec_from_json(json_parse(R"({"base": {"mobility_model": "warp"}})")),
               std::invalid_argument);
  EXPECT_THROW(experiment_options_from_json(json_parse(R"({"queue_kind": "skiplist"})")),
               std::invalid_argument);
  EXPECT_THROW(figure_spec_from_json(json_parse(R"({"protocols": ["NOPE"]})")),
               std::invalid_argument);
}

}  // namespace
}  // namespace mobichk::sim
