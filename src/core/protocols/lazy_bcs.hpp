// LazyBCS: BCS with naive lazy indexing — a deliberately flawed design
// point that shows *why* QBC's equivalence rule is the right way to slow
// index growth.
//
// LazyBCS(k) increments the sequence number only on every k-th basic
// checkpoint (k = 1 is exactly BCS). Safety is unaffected: same-index
// lines stay orphan-free for any non-decreasing sn assignment, and fewer
// index increments mean fewer forced checkpoints. The catch is
// usefulness: a basic checkpoint that keeps its predecessor's sequence
// number without QBC's rn < sn guard may belong to *no* consistent
// global checkpoint (it can land on a zigzag cycle), so the saved forced
// checkpoints are paid for with wasted stable-storage writes and worse
// recovery. The abl_lazy_indexing bench plots that trade-off.
#pragma once

#include <vector>

#include "core/protocol.hpp"

namespace mobichk::core {

class LazyBcsProtocol final : public CheckpointProtocol {
 public:
  /// `laziness` = k: only every k-th basic checkpoint advances the index.
  explicit LazyBcsProtocol(u32 laziness) : laziness_(laziness == 0 ? 1 : laziness) {}

  const char* name() const noexcept override { return "LAZY-BCS"; }

  net::Piggyback make_piggyback(const net::MobileHost& host, net::HostId dst) override;
  void handle_receive(const net::MobileHost& host, const net::AppMessage& msg,
                      const net::Piggyback& pb) override;
  void handle_cell_switch(const net::MobileHost& host, net::MssId, net::MssId) override;
  void handle_disconnect(const net::MobileHost& host) override;

  u64 sequence_number(net::HostId host) const { return per_host_.at(host).sn; }
  u32 laziness() const noexcept { return laziness_; }

 protected:
  void do_bind() override { per_host_.assign(ctx_.n_hosts, HostState{}); }

 private:
  struct HostState {
    u64 sn = 0;
    u32 basics_since_increment = 0;
  };

  void basic_checkpoint(const net::MobileHost& host);

  u32 laziness_;
  std::vector<HostState> per_host_;
};

}  // namespace mobichk::core
