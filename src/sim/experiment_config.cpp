#include "sim/experiment_config.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "sim/report.hpp"

namespace mobichk::sim {

namespace {

MobilityModelKind mobility_model_parse(const std::string& name) {
  for (const auto kind :
       {MobilityModelKind::kPaperUniform, MobilityModelKind::kRingNeighbor,
        MobilityModelKind::kParetoResidence}) {
    if (name == mobility_model_name(kind)) return kind;
  }
  throw std::invalid_argument("unknown mobility model: " + name);
}

CrashMode crash_mode_parse(const std::string& name) {
  for (const auto mode : {CrashMode::kNone, CrashMode::kMhCrash, CrashMode::kCorrelated,
                          CrashMode::kCellOutage}) {
    if (name == crash_mode_name(mode)) return mode;
  }
  throw std::invalid_argument("unknown crash mode: " + name);
}

net::MssTopologyKind topology_parse(const std::string& name) {
  for (const auto kind : {net::MssTopologyKind::kFullMesh, net::MssTopologyKind::kRing,
                          net::MssTopologyKind::kLine, net::MssTopologyKind::kStar}) {
    if (name == net::mss_topology_name(kind)) return kind;
  }
  throw std::invalid_argument("unknown MSS topology: " + name);
}

}  // namespace

SimConfig ExperimentConfig::to_sim_config() const {
  SimConfig cfg;
  cfg.network.n_hosts = network.n_hosts;
  cfg.network.n_mss = network.n_mss;
  cfg.network.mss_topology = network.topology;
  cfg.network.wireless_bandwidth = network.wireless_bandwidth;
  cfg.sim_length = run.sim_length;
  cfg.seed = run.seed;
  cfg.comm_mean = workload.comm_mean;
  cfg.p_send = workload.p_send;
  cfg.internal_mean = workload.internal_mean;
  cfg.payload_bytes = workload.payload_bytes;
  cfg.mobility_model = mobility.model;
  cfg.t_switch = mobility.t_switch;
  cfg.p_switch = mobility.p_switch;
  cfg.disconnect_mean = mobility.disconnect_mean;
  cfg.heterogeneity = mobility.heterogeneity;
  cfg.faults.mode = faults.mode;
  if (faults.enabled()) {
    // The CLI convention: an unset failure time means mid-run.
    cfg.faults.first_crash_at =
        faults.first_crash_at > 0.0 ? faults.first_crash_at : run.sim_length / 2.0;
    cfg.faults.crash_interval = faults.crash_interval;
    cfg.faults.max_crashes = faults.max_crashes;
    cfg.faults.target = faults.target;
    cfg.faults.correlated = faults.correlated;
  }
  return cfg;
}

ExperimentOptions ExperimentConfig::to_options() const {
  ExperimentOptions opts;
  opts.protocols = protocols;
  opts.queue_kind = run.queue_kind;
  opts.shards = run.shards;
  opts.data_plane = data_plane;
  return opts;
}

void write_json(std::ostream& os, const ExperimentConfig& cfg) {
  JsonWriter w(os);
  w.begin_object();
  w.key("network").begin_object();
  w.field("n_hosts", cfg.network.n_hosts)
      .field("n_mss", cfg.network.n_mss)
      .field("topology", net::mss_topology_name(cfg.network.topology))
      .field("wireless_bandwidth", cfg.network.wireless_bandwidth);
  w.end_object();
  w.key("run").begin_object();
  w.field("sim_length", cfg.run.sim_length)
      .field("seed", cfg.run.seed)
      .field("queue_kind", des::queue_kind_name(cfg.run.queue_kind))
      .field("shards", static_cast<u64>(cfg.run.shards));
  w.end_object();
  w.key("workload").begin_object();
  w.field("comm_mean", cfg.workload.comm_mean)
      .field("p_send", cfg.workload.p_send)
      .field("internal_mean", cfg.workload.internal_mean)
      .field("payload_bytes", cfg.workload.payload_bytes);
  w.end_object();
  w.key("mobility").begin_object();
  w.field("model", mobility_model_name(cfg.mobility.model))
      .field("t_switch", cfg.mobility.t_switch)
      .field("p_switch", cfg.mobility.p_switch)
      .field("disconnect_mean", cfg.mobility.disconnect_mean)
      .field("heterogeneity", cfg.mobility.heterogeneity);
  w.end_object();
  // Crash-free configs carry no faults object (and plane-off configs no
  // data_plane object): presence is the enable switch, and documents for
  // the common case stay small.
  if (cfg.faults.enabled()) {
    w.key("faults").begin_object();
    w.field("mode", crash_mode_name(cfg.faults.mode))
        .field("first_crash_at", cfg.faults.first_crash_at)
        .field("crash_interval", cfg.faults.crash_interval)
        .field("max_crashes", cfg.faults.max_crashes)
        .field("target", cfg.faults.target)
        .field("correlated", cfg.faults.correlated);
    w.end_object();
  }
  if (cfg.data_plane.enabled) {
    w.key("data_plane");
    write_data_plane_fields(w, cfg.data_plane);
  }
  w.key("protocols").begin_array();
  for (const auto kind : cfg.protocols) w.value(core::protocol_kind_name(kind));
  w.end_array();
  w.end_object();
  os << '\n';
}

ExperimentConfig experiment_config_from_json(const JsonValue& json) {
  ExperimentConfig cfg;
  if (const JsonValue* net = json.find("network")) {
    if (const JsonValue* v = net->find("n_hosts")) cfg.network.n_hosts = static_cast<u32>(v->as_u64());
    if (const JsonValue* v = net->find("n_mss")) cfg.network.n_mss = static_cast<u32>(v->as_u64());
    if (const JsonValue* v = net->find("topology")) cfg.network.topology = topology_parse(v->as_string());
    if (const JsonValue* v = net->find("wireless_bandwidth")) {
      cfg.network.wireless_bandwidth = v->as_f64();
    }
  }
  if (const JsonValue* run = json.find("run")) {
    if (const JsonValue* v = run->find("sim_length")) cfg.run.sim_length = v->as_f64();
    if (const JsonValue* v = run->find("seed")) cfg.run.seed = v->as_u64();
    if (const JsonValue* v = run->find("queue_kind")) {
      cfg.run.queue_kind = des::queue_kind_from_name(v->as_string());
    }
    if (const JsonValue* v = run->find("shards")) cfg.run.shards = static_cast<u32>(v->as_u64());
  }
  if (const JsonValue* wl = json.find("workload")) {
    if (const JsonValue* v = wl->find("comm_mean")) cfg.workload.comm_mean = v->as_f64();
    if (const JsonValue* v = wl->find("p_send")) cfg.workload.p_send = v->as_f64();
    if (const JsonValue* v = wl->find("internal_mean")) cfg.workload.internal_mean = v->as_f64();
    if (const JsonValue* v = wl->find("payload_bytes")) {
      cfg.workload.payload_bytes = static_cast<u32>(v->as_u64());
    }
  }
  if (const JsonValue* mob = json.find("mobility")) {
    if (const JsonValue* v = mob->find("model")) cfg.mobility.model = mobility_model_parse(v->as_string());
    if (const JsonValue* v = mob->find("t_switch")) cfg.mobility.t_switch = v->as_f64();
    if (const JsonValue* v = mob->find("p_switch")) cfg.mobility.p_switch = v->as_f64();
    if (const JsonValue* v = mob->find("disconnect_mean")) cfg.mobility.disconnect_mean = v->as_f64();
    if (const JsonValue* v = mob->find("heterogeneity")) cfg.mobility.heterogeneity = v->as_f64();
  }
  if (const JsonValue* flt = json.find("faults")) {
    if (const JsonValue* v = flt->find("mode")) cfg.faults.mode = crash_mode_parse(v->as_string());
    if (const JsonValue* v = flt->find("first_crash_at")) cfg.faults.first_crash_at = v->as_f64();
    if (const JsonValue* v = flt->find("crash_interval")) cfg.faults.crash_interval = v->as_f64();
    if (const JsonValue* v = flt->find("max_crashes")) {
      cfg.faults.max_crashes = static_cast<u32>(v->as_u64());
    }
    if (const JsonValue* v = flt->find("target")) cfg.faults.target = static_cast<u32>(v->as_u64());
    if (const JsonValue* v = flt->find("correlated")) {
      cfg.faults.correlated = static_cast<u32>(v->as_u64());
    }
  }
  if (const JsonValue* dp = json.find("data_plane")) {
    cfg.data_plane = data_plane_config_from_json(*dp);
  }
  if (const JsonValue* protos = json.find("protocols")) {
    cfg.protocols.clear();
    for (const JsonValue& name : protos->as_array()) {
      cfg.protocols.push_back(core::protocol_kind_from_name(name.as_string()));
    }
  }
  return cfg;
}

ExperimentConfig load_experiment_config(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) throw std::runtime_error("cannot open config file: " + path);
  std::ostringstream text;
  text << file.rdbuf();
  if (file.bad()) throw std::runtime_error("cannot read config file: " + path);
  return experiment_config_from_json(json_parse(text.str()));
}

}  // namespace mobichk::sim
