#include "des/distributions.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace mobichk::des {
namespace {

TEST(Exponential, MeanMatches) {
  RngStream rng(1, "exp");
  for (const f64 mean : {0.5, 1.0, 20.0, 1000.0}) {
    Exponential dist(mean);
    f64 sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += dist.sample(rng);
    EXPECT_NEAR(sum / n / mean, 1.0, 0.03) << "mean " << mean;
  }
}

TEST(Exponential, VarianceMatchesMeanSquared) {
  RngStream rng(2, "expvar");
  Exponential dist(10.0);
  f64 sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const f64 x = dist.sample(rng);
    sum += x;
    sum2 += x * x;
  }
  const f64 mean = sum / n;
  const f64 var = sum2 / n - mean * mean;
  EXPECT_NEAR(var / 100.0, 1.0, 0.05);
}

TEST(Exponential, AlwaysNonNegative) {
  RngStream rng(3, "expnn");
  Exponential dist(1.0);
  for (int i = 0; i < 100000; ++i) EXPECT_GE(dist.sample(rng), 0.0);
}

TEST(Uniform, BoundsAndMean) {
  RngStream rng(4, "uni");
  Uniform dist(5.0, 15.0);
  f64 sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const f64 x = dist.sample(rng);
    EXPECT_GE(x, 5.0);
    EXPECT_LT(x, 15.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(UniformIndex, CoversRangeUniformly) {
  RngStream rng(5, "ui");
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts.at(uniform_index(rng, 7));
  for (const int c : counts) EXPECT_NEAR(static_cast<f64>(c), n / 7.0, n / 7.0 * 0.1);
}

TEST(UniformIndex, SingleElement) {
  RngStream rng(6, "ui1");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(uniform_index(rng, 1), 0u);
}

TEST(UniformIndexExcluding, NeverReturnsExcluded) {
  RngStream rng(7, "uix");
  for (u64 excluded = 0; excluded < 5; ++excluded) {
    std::array<int, 5> counts{};
    for (int i = 0; i < 20000; ++i) {
      const u64 x = uniform_index_excluding(rng, 5, excluded);
      ASSERT_NE(x, excluded);
      ASSERT_LT(x, 5u);
      ++counts.at(x);
    }
    for (u64 v = 0; v < 5; ++v) {
      if (v == excluded) continue;
      EXPECT_NEAR(static_cast<f64>(counts.at(v)), 5000.0, 600.0);
    }
  }
}

TEST(UniformIndexExcluding, TwoElements) {
  RngStream rng(8, "uix2");
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(uniform_index_excluding(rng, 2, 0), 1u);
    EXPECT_EQ(uniform_index_excluding(rng, 2, 1), 0u);
  }
}

TEST(Bernoulli, MatchesProbability) {
  RngStream rng(9, "bern");
  for (const f64 p : {0.0, 0.2, 0.4, 0.8, 1.0}) {
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) hits += bernoulli(rng, p);
    EXPECT_NEAR(static_cast<f64>(hits) / n, p, 0.01) << "p " << p;
  }
}

TEST(Geometric, MeanMatches) {
  RngStream rng(10, "geo");
  const f64 p = 0.25;
  f64 sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<f64>(geometric(rng, p));
  EXPECT_NEAR(sum / n, (1.0 - p) / p, 0.05);
}

TEST(Geometric, PEqualOneIsZero) {
  RngStream rng(11, "geo1");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(geometric(rng, 1.0), 0u);
}

TEST(Discrete, RespectsWeights) {
  RngStream rng(12, "disc");
  Discrete dist({1.0, 2.0, 7.0});
  std::array<int, 3> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts.at(dist.sample(rng));
  EXPECT_NEAR(counts[0] / static_cast<f64>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<f64>(n), 0.2, 0.012);
  EXPECT_NEAR(counts[2] / static_cast<f64>(n), 0.7, 0.015);
}

TEST(Discrete, ZeroWeightNeverSampled) {
  RngStream rng(13, "disc0");
  Discrete dist({1.0, 0.0, 1.0});
  for (int i = 0; i < 20000; ++i) EXPECT_NE(dist.sample(rng), 1u);
}

TEST(Discrete, SingleBucket) {
  RngStream rng(14, "disc1");
  Discrete dist({3.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.sample(rng), 0u);
}

}  // namespace
}  // namespace mobichk::des
