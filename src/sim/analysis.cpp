#include "sim/analysis.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>

#include "des/stats.hpp"
#include "des/warmup.hpp"

namespace mobichk::sim {

void SteadyStateSpec::validate() const {
  cfg.validate();
  if (window <= 0.0) throw std::invalid_argument("SteadyStateSpec: window must be positive");
  if (window * 4.0 > cfg.sim_length) {
    throw std::invalid_argument("SteadyStateSpec: need at least 4 windows in the horizon");
  }
  if (protocols.empty()) throw std::invalid_argument("SteadyStateSpec: no protocols");
}

std::vector<SteadyStateEstimate> estimate_steady_state(const SteadyStateSpec& spec) {
  spec.validate();
  ExperimentOptions opts;
  opts.protocols = spec.protocols;
  opts.params = spec.params;
  Experiment exp(spec.cfg, opts);

  const usize slots = spec.protocols.size();
  std::vector<std::vector<f64>> series(slots);
  std::vector<u64> last_count(slots, 0);

  // Sampling chain: one event per window, reading each protocol's log.
  std::function<void()> tick = [&] {
    for (usize s = 0; s < slots; ++s) {
      const u64 now_count = exp.log(s).n_tot();
      series[s].push_back(static_cast<f64>(now_count - last_count[s]));
      last_count[s] = now_count;
    }
    if (exp.simulator().now() + spec.window <= spec.cfg.sim_length) {
      exp.simulator().schedule_after(spec.window, tick);
    }
  };
  exp.simulator().schedule_at(spec.window, tick);
  exp.run();

  std::vector<SteadyStateEstimate> out;
  out.reserve(slots);
  for (usize s = 0; s < slots; ++s) {
    const des::MserResult warmup = des::mser(series[s], spec.mser_batch);
    SteadyStateEstimate est;
    est.protocol = core::protocol_kind_name(spec.protocols[s]);
    est.windows = series[s].size();
    est.warmup_windows = warmup.truncation_index;
    est.rate = warmup.truncated_mean / spec.window;
    // Batch means over the post-warm-up windows for the CI.
    des::BatchMeans batches(spec.batch_windows);
    for (usize i = warmup.truncation_index; i < series[s].size(); ++i) {
      batches.add(series[s][i]);
    }
    est.ci95 = des::confidence_half_width(batches.batch_tally(), 0.95) / spec.window;
    out.push_back(std::move(est));
  }
  return out;
}

PrecisionResult run_until_precision(const PrecisionSpec& spec) {
  if (spec.min_seeds == 0 || spec.max_seeds < spec.min_seeds) {
    throw std::invalid_argument("PrecisionSpec: bad seed bounds");
  }
  ExperimentOptions opts;
  opts.protocols = spec.protocols;

  std::vector<des::Tally> tallies(spec.protocols.size());
  PrecisionResult out;
  for (u32 r = 0; r < spec.max_seeds; ++r) {
    SimConfig cfg = spec.base;
    cfg.seed = spec.seed_base + r;
    const RunResult run = run_experiment(cfg, opts);
    for (usize s = 0; s < spec.protocols.size(); ++s) {
      tallies[s].add(static_cast<f64>(run.protocols[s].n_tot));
    }
    out.seeds_used = r + 1;
    if (out.seeds_used < spec.min_seeds) continue;
    bool all_met = true;
    for (const auto& tally : tallies) {
      const f64 hw = des::confidence_half_width(tally, 0.95);
      if (tally.mean() <= 0.0 || hw / tally.mean() > spec.target_relative_ci) {
        all_met = false;
        break;
      }
    }
    if (all_met) {
      out.target_met = true;
      break;
    }
  }
  for (usize s = 0; s < spec.protocols.size(); ++s) {
    PrecisionEstimate est;
    est.protocol = core::protocol_kind_name(spec.protocols[s]);
    est.n_tot_mean = tallies[s].mean();
    est.ci95 = des::confidence_half_width(tallies[s], 0.95);
    out.protocols.push_back(std::move(est));
  }
  return out;
}

}  // namespace mobichk::sim
