#include "core/gc.hpp"

#include <gtest/gtest.h>

namespace mobichk::core {
namespace {

CheckpointRecord make(net::HostId host, u64 sn, u64 pos, net::MssId loc = 0,
                      des::Time time = 0.0) {
  CheckpointRecord rec;
  rec.host = host;
  rec.sn = sn;
  rec.event_pos = pos;
  rec.location = loc;
  rec.time = time;
  rec.kind = pos == 0 ? CheckpointKind::kInitial : CheckpointKind::kBasic;
  return rec;
}

TEST(GcAnalysis, ZeroHostLogHasNoStableLine) {
  // stable_index_of over an empty max-sn vector is the min-identity
  // ~0ULL; analyze_gc must pass that through without building members.
  CheckpointLog log(0);
  const GcAnalysis gc = analyze_gc(log, IndexLineRule::kFirstAtLeast, 2);
  EXPECT_EQ(gc.stable_index, ~0ULL);
  EXPECT_TRUE(gc.stable_line.members.empty());
  EXPECT_EQ(gc.total_collectible(), 0u);
}

TEST(GcAnalysis, StableIndexIsTheMinimumOfMaxima) {
  CheckpointLog log(3);
  for (net::HostId h = 0; h < 3; ++h) log.append(make(h, 0, 0));
  log.append(make(0, 3, 10));
  log.append(make(1, 1, 10));
  log.append(make(2, 5, 10));
  const GcAnalysis gc = analyze_gc(log, IndexLineRule::kFirstAtLeast, 2);
  EXPECT_EQ(gc.stable_index, 1u);  // host 1 only reached 1
}

TEST(GcAnalysis, CollectsEverythingOlderThanTheStableMember) {
  CheckpointLog log(2);
  log.append(make(0, 0, 0, 0, 0.0));
  log.append(make(1, 0, 0, 1, 0.0));
  log.append(make(0, 1, 5, 0, 10.0));
  log.append(make(0, 2, 9, 1, 20.0));
  log.append(make(1, 2, 7, 1, 25.0));
  // Stable index = min(2, 2) = 2. Host 0's member for index 2 is its
  // ordinal-2 checkpoint, so ordinals 0 and 1 are dead; host 1's member
  // is ordinal 1, so ordinal 0 is dead.
  const GcAnalysis gc = analyze_gc(log, IndexLineRule::kFirstAtLeast, 2);
  EXPECT_EQ(gc.stable_index, 2u);
  EXPECT_EQ(gc.collectible_per_host[0], 2u);
  EXPECT_EQ(gc.collectible_per_host[1], 1u);
  EXPECT_EQ(gc.total_collectible(), 3u);
  EXPECT_EQ(gc.total_retained(log), 2u);
  // Per-MSS split: host 0's dead ordinals 0,1 live at MSS 0; host 1's
  // dead ordinal 0 lives at MSS 1.
  EXPECT_EQ(gc.collectible_per_mss[0], 2u);
  EXPECT_EQ(gc.collectible_per_mss[1], 1u);
  EXPECT_EQ(gc.stable_line.virtual_members(), 0u);
}

TEST(GcAnalysis, QbcRuleRetainsOnlyTheLastReplacement) {
  CheckpointLog log(1);
  log.append(make(0, 0, 0));
  log.append(make(0, 0, 4));   // replacement
  log.append(make(0, 0, 8));   // replacement
  const GcAnalysis first = analyze_gc(log, IndexLineRule::kFirstAtLeast, 1);
  const GcAnalysis last = analyze_gc(log, IndexLineRule::kLastEqual, 1);
  EXPECT_EQ(first.collectible_per_host[0], 0u);  // member = ordinal 0
  EXPECT_EQ(last.collectible_per_host[0], 2u);   // member = ordinal 2
}

TEST(GcAnalysis, NothingCollectibleAtStart) {
  CheckpointLog log(2);
  log.append(make(0, 0, 0));
  log.append(make(1, 0, 0));
  const GcAnalysis gc = analyze_gc(log, IndexLineRule::kFirstAtLeast, 1);
  EXPECT_EQ(gc.stable_index, 0u);
  EXPECT_EQ(gc.total_collectible(), 0u);
}

TEST(GcOccupancy, TimelineTracksRetention) {
  CheckpointLog log(2);
  log.append(make(0, 0, 0, 0, 0.0));
  log.append(make(1, 0, 0, 0, 0.0));
  log.append(make(0, 1, 5, 0, 100.0));
  log.append(make(1, 1, 5, 0, 150.0));
  log.append(make(0, 2, 9, 0, 300.0));
  log.append(make(1, 2, 9, 0, 350.0));
  const auto timeline = gc_occupancy_timeline(log, IndexLineRule::kFirstAtLeast, 400.0, 4);
  ASSERT_EQ(timeline.size(), 4u);
  // t=100: 3 checkpoints taken, stable index 0 -> everything retained.
  EXPECT_EQ(timeline[0].live_without_gc, 3u);
  EXPECT_EQ(timeline[0].live_with_gc, 3u);
  // t=200: 4 taken; stable index 1: each host keeps 1 (member ordinal 1).
  EXPECT_EQ(timeline[1].live_without_gc, 4u);
  EXPECT_EQ(timeline[1].live_with_gc, 2u);
  // t=400: 6 taken; stable index 2: each host keeps only ordinal 2.
  EXPECT_EQ(timeline[3].live_without_gc, 6u);
  EXPECT_EQ(timeline[3].live_with_gc, 2u);
}

TEST(GcOccupancy, WithGcNeverExceedsWithout) {
  CheckpointLog log(2);
  log.append(make(0, 0, 0, 0, 0.0));
  log.append(make(1, 0, 0, 0, 0.0));
  for (u64 i = 1; i <= 20; ++i) {
    log.append(make(0, i, i * 3, 0, static_cast<des::Time>(i) * 10.0));
    if (i % 2 == 0) log.append(make(1, i, i * 2, 0, static_cast<des::Time>(i) * 10.0 + 1.0));
  }
  for (const auto& s : gc_occupancy_timeline(log, IndexLineRule::kFirstAtLeast, 220.0, 11)) {
    EXPECT_LE(s.live_with_gc, s.live_without_gc);
    EXPECT_GE(s.live_with_gc, 2u);  // at least one checkpoint per host survives
  }
}

TEST(GcBytes, ReclaimableBytesSumTheDeadUploads) {
  StorageConfig scfg;
  scfg.full_state_bytes = 1000;
  scfg.dirty_rate = 1e9;  // every delta is effectively a full upload
  scfg.track_history = true;
  StorageModel storage(2, 1, scfg);
  CheckpointLog log(2);
  log.append(make(0, 0, 0, 0, 0.0));
  storage.record_checkpoint(0, 0, 0.0);
  log.append(make(1, 0, 0, 0, 0.0));
  storage.record_checkpoint(1, 0, 0.0);
  log.append(make(0, 1, 5, 0, 10.0));
  storage.record_checkpoint(0, 0, 10.0);
  log.append(make(1, 1, 5, 0, 12.0));
  storage.record_checkpoint(1, 0, 12.0);
  const GcAnalysis gc = analyze_gc(log, IndexLineRule::kFirstAtLeast, 1);
  // Stable index 1: each host's ordinal-0 checkpoint (1000 B) is dead.
  EXPECT_EQ(gc_reclaimable_bytes(gc, storage), 2000u);
}

TEST(GcBytes, HistoryRequiresTracking) {
  StorageModel storage(1, 1, StorageConfig{});
  EXPECT_THROW(storage.upload_history(0), std::logic_error);
}

TEST(GcBytes, HistoryRecordsPerCheckpointSizes) {
  StorageConfig scfg;
  scfg.full_state_bytes = 1000;
  scfg.dirty_rate = 0.01;
  scfg.track_history = true;
  StorageModel storage(1, 2, scfg);
  storage.record_checkpoint(0, 0, 0.0);
  storage.record_checkpoint(0, 0, 10.0);
  const auto& history = storage.upload_history(0);
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0], 1000u);
  EXPECT_LT(history[1], 1000u);  // incremental delta
  EXPECT_EQ(history[0] + history[1], storage.wireless_bytes());
}

}  // namespace
}  // namespace mobichk::core
