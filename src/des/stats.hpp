// Output-analysis statistics for simulation experiments.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "des/types.hpp"

namespace mobichk::des {

/// Monotonic event counter.
class Counter {
 public:
  void add(u64 n = 1) noexcept { value_ += n; }
  u64 value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  u64 value_ = 0;
};

/// Streaming mean / variance accumulator (Welford's algorithm).
class Tally {
 public:
  void add(f64 x) noexcept {
    ++n_;
    const f64 delta = x - mean_;
    mean_ += delta / static_cast<f64>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  u64 count() const noexcept { return n_; }
  f64 mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance.
  f64 variance() const noexcept { return n_ > 1 ? m2_ / static_cast<f64>(n_ - 1) : 0.0; }
  f64 stddev() const noexcept { return std::sqrt(variance()); }
  f64 min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  f64 max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  f64 sum() const noexcept { return mean_ * static_cast<f64>(n_); }

  void reset() noexcept { *this = Tally{}; }

 private:
  u64 n_ = 0;
  f64 mean_ = 0.0;
  f64 m2_ = 0.0;
  f64 min_ = 1e300;
  f64 max_ = -1e300;
};

/// Time-weighted average of a piecewise-constant signal (e.g. queue length).
class TimeWeighted {
 public:
  explicit TimeWeighted(Time start = 0.0) noexcept : last_change_(start), start_(start) {}

  /// Records that the signal takes value `value` from time `now` on.
  void update(Time now, f64 value) noexcept {
    area_ += current_ * (now - last_change_);
    current_ = value;
    last_change_ = now;
  }

  /// Time average over [start, now].
  f64 average(Time now) const noexcept {
    const Time span = now - start_;
    if (span <= 0.0) return current_;
    return (area_ + current_ * (now - last_change_)) / span;
  }

  f64 current() const noexcept { return current_; }

 private:
  f64 current_ = 0.0;
  f64 area_ = 0.0;
  Time last_change_ = 0.0;
  Time start_ = 0.0;
};

/// Fixed-range histogram with uniform bins plus under/overflow.
class Histogram {
 public:
  Histogram(f64 lo, f64 hi, usize bins);

  void add(f64 x) noexcept;
  u64 count() const noexcept { return total_; }
  u64 bin_count(usize i) const { return counts_.at(i); }
  u64 underflow() const noexcept { return underflow_; }
  u64 overflow() const noexcept { return overflow_; }
  /// NaN inputs land here (counted in count(), never binned).
  u64 nan_count() const noexcept { return nan_; }
  usize bins() const noexcept { return counts_.size(); }
  f64 bin_lo(usize i) const noexcept { return lo_ + width_ * static_cast<f64>(i); }
  f64 bin_hi(usize i) const noexcept { return lo_ + width_ * static_cast<f64>(i + 1); }
  /// Approximate quantile (linear interpolation inside the bin).
  f64 quantile(f64 q) const noexcept;

 private:
  f64 lo_;
  f64 hi_;
  f64 width_;
  std::vector<u64> counts_;
  u64 underflow_ = 0;
  u64 overflow_ = 0;
  u64 nan_ = 0;
  u64 total_ = 0;
};

/// Batch-means estimator for steady-state simulation output.
///
/// Feeds observations into fixed-size batches; batch averages are
/// approximately independent, enabling confidence intervals on correlated
/// streams.
class BatchMeans {
 public:
  explicit BatchMeans(u64 batch_size) : batch_size_(batch_size == 0 ? 1 : batch_size) {}

  void add(f64 x) noexcept {
    batch_sum_ += x;
    if (++in_batch_ == batch_size_) {
      batches_.add(batch_sum_ / static_cast<f64>(batch_size_));
      batch_sum_ = 0.0;
      in_batch_ = 0;
    }
  }

  u64 completed_batches() const noexcept { return batches_.count(); }
  f64 mean() const noexcept { return batches_.mean(); }
  f64 stddev() const noexcept { return batches_.stddev(); }
  const Tally& batch_tally() const noexcept { return batches_; }

 private:
  u64 batch_size_;
  u64 in_batch_ = 0;
  f64 batch_sum_ = 0.0;
  Tally batches_;
};

/// Two-sided Student-t critical value for the given confidence level
/// (supported: 0.90, 0.95, 0.99) and degrees of freedom.
f64 student_t_critical(f64 confidence, u64 dof);

/// Symmetric confidence half-width for a Tally of (approximately)
/// independent observations.
f64 confidence_half_width(const Tally& tally, f64 confidence);

/// Relative precision of a Tally: confidence half-width divided by
/// |mean|. Degenerate inputs resolve conservatively so a stopping rule
/// built on this value can never declare precision it does not have:
///  * fewer than 2 observations -> +infinity (no variance estimate yet);
///  * mean == 0 with zero half-width -> 0 (every observation identical);
///  * mean == 0 with nonzero half-width -> +infinity.
f64 relative_half_width(const Tally& tally, f64 confidence);

/// Formats mean +/- half-width, e.g. "123.4 ± 5.6".
std::string format_ci(const Tally& tally, f64 confidence);

}  // namespace mobichk::des
