#include "sim/cli.hpp"

#include <stdexcept>

namespace mobichk::sim {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::string ArgParser::get_string(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

namespace {

// std::stod/stoull accept trailing garbage ("5x" parses as 5) and report
// bare "stod"/"stoull" on failure; flag values should fail loudly and
// name the flag instead.
template <typename Parse>
auto parse_number(const std::string& key, const std::string& text, Parse parse) {
  usize consumed = 0;
  try {
    const auto value = parse(text, &consumed);
    if (consumed == text.size()) return value;
  } catch (const std::exception&) {
    // fall through to the uniform error below
  }
  throw std::invalid_argument("flag --" + key + ": expected a number, got '" + text + "'");
}

}  // namespace

f64 ArgParser::get_f64(const std::string& key, f64 fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return parse_number(key, it->second,
                      [](const std::string& s, usize* pos) { return std::stod(s, pos); });
}

u64 ArgParser::get_u64(const std::string& key, u64 fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (!it->second.empty() && it->second.front() == '-') {
    // stoull would silently wrap "-5" to 2^64-5.
    throw std::invalid_argument("flag --" + key + ": expected a non-negative integer, got '" +
                                it->second + "'");
  }
  return parse_number(key, it->second,
                      [](const std::string& s, usize* pos) { return std::stoull(s, pos); });
}

u32 ArgParser::get_u32(const std::string& key, u32 fallback) const {
  return static_cast<u32>(get_u64(key, fallback));
}

bool ArgParser::get_flag(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return false;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace mobichk::sim
