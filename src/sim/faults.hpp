// The crash-scenario engine: injects failures mid-run and executes
// rollback-recovery end to end (the paper's §6 future work, grounded in
// the log-based roll-forward literature — see docs/model.md "Executed
// recovery").
//
// A failure event kills its victims without warning (no checkpoint, no
// control message). The engine then
//  1. snapshots the failure cut (every host's event position),
//  2. builds the recovery line for *every* protocol slot — index_rollback
//     for the index-based protocols, the generic orphan fixpoint for the
//     rest — so each protocol's rollback distance is measured against the
//     same shared trace,
//  3. physically executes slot 0's line: every host the line forces onto
//     a stored checkpoint is taken down, restores its image (per-cell
//     serialized transfers), replays its logged messages, and rejoins at
//     its planned ready time (core::plan_recovery),
//  4. records measured recovery time, rollback distance, orphan cascades
//     and replayed messages, reconciled against estimate_recovery_time
//     and the online RecoveryLineTracker.
//
// Like ckpt_latency, executed failures perturb the trace, so crash runs
// are meaningful as single-protocol studies; multi-protocol runs still
// yield valid per-slot rollback measurements at each failure cut.
#pragma once

#include <vector>

#include "core/factory.hpp"
#include "core/harness.hpp"
#include "core/replay.hpp"
#include "des/event.hpp"
#include "des/rng.hpp"
#include "des/simulator.hpp"
#include "net/network.hpp"
#include "obs/observer.hpp"
#include "sim/config.hpp"
#include "sim/mobility.hpp"
#include "sim/workload.hpp"
#include "storage/data_plane.hpp"

namespace mobichk::sim {

/// Everything measured about one executed crash + recovery. Per-slot
/// vectors are parallel to the experiment's protocol list.
struct CrashRecord {
  f64 t = 0.0;  ///< Failure instant.
  CrashMode mode = CrashMode::kNone;
  std::vector<net::HostId> victims;    ///< Hosts the failure killed.
  u64 line_index = 0;                  ///< Slot 0 line index (index protocols).
  u64 hosts_rolled_back = 0;           ///< Slot 0: stored members restored.
  u64 hosts_taken_down = 0;            ///< Victims + rolled-back survivors.
  u64 undone_events = 0;               ///< Slot 0 rollback distance.
  u64 replayed_messages = 0;           ///< Logged deliveries re-consumed.
  u64 checkpoints_discarded = 0;       ///< Slot 0, summed over hosts.
  u64 orphan_iterations = 0;           ///< Fixpoint passes (domino visibility).
  f64 planned_recovery = 0.0;          ///< plan_recovery completion (pipelined).
  f64 estimated_recovery = 0.0;        ///< estimate_recovery_time total (barriers).
  f64 actual_recovery = 0.0;           ///< Simulated outage of the slowest host
                                       ///< (0 until the last restore fires).
  std::vector<u64> undone_per_host;    ///< Slot 0, per host.
  std::vector<u64> slot_undone;        ///< Rollback distance per protocol slot.
  std::vector<u64> slot_line_index;    ///< Line index per slot (0 for generic).
  /// Online tracker committed index per slot at crash time (~0 = slot has
  /// no tracker or causal monitoring is off).
  std::vector<u64> tracker_line_index;
  u32 pending_restores = 0;            ///< Hosts still down (bookkeeping).
};

/// Run-level recovery totals (exported via RunResult / report JSON).
struct CrashRunStats {
  u64 crashes_executed = 0;
  u64 crashes_skipped = 0;  ///< Fired with no live victim available.
  u64 hosts_crashed = 0;
  u64 hosts_rolled_back = 0;
  u64 undone_events = 0;
  u64 replayed_messages = 0;
  u64 checkpoints_discarded = 0;
  f64 total_recovery_time = 0.0;  ///< Sum of completed actual_recovery.
  f64 max_recovery_time = 0.0;
  f64 total_planned = 0.0;
  f64 total_estimated = 0.0;
};

/// Schedules kCrash events through the DES kernel, executes the recovery
/// they trigger, and schedules the matching kRecover events.
class CrashDriver final : public des::EventTarget {
 public:
  /// `workload` / `mobility` / `observer` may be null (tests). `kinds`
  /// must be parallel to the harness's protocol slots.
  /// `data_plane` (may be null) makes each restore *fetch* its recovery
  /// image: the byte transfer from the placement MSS extends the host's
  /// ready time with storage-read queueing plus wired transfer time.
  CrashDriver(des::Simulator& sim, net::Network& net, core::ProtocolHarness& harness,
              const SimConfig& cfg, std::vector<core::ProtocolKind> kinds,
              WorkloadDriver* workload, MobilityDriver* mobility, obs::RunObserver* observer,
              storage::DataPlane* data_plane = nullptr);

  /// Schedules the first failure. Call after net.start().
  void start();

  /// Typed-event dispatch: kCrash fires a failure (no operands); kRecover
  /// brings one host back (a = host, b = crash-record index).
  void on_event(const des::EventPayload& payload) override;

  const CrashRunStats& stats() const noexcept { return stats_; }
  const std::vector<CrashRecord>& records() const noexcept { return records_; }

 private:
  std::vector<net::HostId> pick_victims();
  void execute_crash();
  void finish_recovery(net::HostId host, u64 record_idx);
  void schedule_next_crash();

  des::Simulator& sim_;
  net::Network& net_;
  core::ProtocolHarness& harness_;
  const SimConfig& cfg_;
  std::vector<core::ProtocolKind> kinds_;
  WorkloadDriver* workload_;
  MobilityDriver* mobility_;
  obs::RunObserver* observer_;
  storage::DataPlane* data_plane_;
  des::RngStream rng_;
  CrashRunStats stats_;
  std::vector<CrashRecord> records_;
  std::vector<bool> down_;  ///< Hosts currently in an injected outage.
  u64 scheduled_ = 0;       ///< Crash events scheduled so far.
};

}  // namespace mobichk::sim
