#include "des/trace.hpp"

#include <gtest/gtest.h>

namespace mobichk::des {
namespace {

TEST(VectorSink, StoresRecordsInOrder) {
  VectorSink sink;
  sink.record({1.0, 2, TraceKind::kSend, 3, 4});
  sink.record({2.0, 5, TraceKind::kReceive, 6, 7});
  ASSERT_EQ(sink.records().size(), 2u);
  EXPECT_EQ(sink.records()[0].actor, 2u);
  EXPECT_EQ(sink.records()[1].kind, TraceKind::kReceive);
}

TEST(HashSink, DeterministicForSameStream) {
  HashSink a, b;
  for (int i = 0; i < 100; ++i) {
    const TraceRecord rec{static_cast<Time>(i), static_cast<u32>(i % 7), TraceKind::kSend,
                          static_cast<u64>(i), 0};
    a.record(rec);
    b.record(rec);
  }
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(HashSink, SensitiveToContent) {
  HashSink a, b;
  a.record({1.0, 1, TraceKind::kSend, 1, 0});
  b.record({1.0, 1, TraceKind::kSend, 2, 0});
  EXPECT_NE(a.hash(), b.hash());
}

TEST(HashSink, SensitiveToOrder) {
  HashSink a, b;
  const TraceRecord r1{1.0, 1, TraceKind::kSend, 1, 0};
  const TraceRecord r2{2.0, 2, TraceKind::kReceive, 2, 0};
  a.record(r1);
  a.record(r2);
  b.record(r2);
  b.record(r1);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(TeeSink, FansOut) {
  VectorSink v;
  HashSink h;
  TeeSink tee;
  tee.attach(&v);
  tee.attach(&h);
  tee.record({1.0, 1, TraceKind::kHandoff, 0, 1});
  EXPECT_EQ(v.records().size(), 1u);
  HashSink expect;
  expect.record({1.0, 1, TraceKind::kHandoff, 0, 1});
  EXPECT_EQ(h.hash(), expect.hash());
}

TEST(TraceKindNames, AllDistinct) {
  EXPECT_STREQ(trace_kind_name(TraceKind::kSend), "send");
  EXPECT_STREQ(trace_kind_name(TraceKind::kBasicCheckpoint), "basic-ckpt");
  EXPECT_STREQ(trace_kind_name(TraceKind::kForcedCheckpoint), "forced-ckpt");
  EXPECT_STRNE(trace_kind_name(TraceKind::kDeliver), trace_kind_name(TraceKind::kReceive));
}

}  // namespace
}  // namespace mobichk::des
