// QBC: the index-based protocol of Quaglia, Baldoni & Ciciani. Paper §4.2.
//
// QBC is BCS plus a checkpoint-equivalence rule that slows the growth of
// sequence numbers. Each host also tracks rn_i, the maximum sequence
// number ever received. At a *basic* checkpoint:
//   * if rn_i = sn_i, the checkpoint cannot replace its predecessor in
//     the recovery line (something depends on it), so sn_i increments as
//     in BCS;
//   * if rn_i < sn_i, the new checkpoint does not depend on any
//     checkpoint with index sn_i, so it keeps the same sequence number
//     and *replaces* its predecessor in the recovery line.
// Fewer index increments propagate fewer forced checkpoints — QBC's win,
// obtained without any additional control information.
#pragma once

#include <vector>

#include "core/protocol.hpp"

namespace mobichk::core {

class QbcProtocol final : public CheckpointProtocol {
 public:
  const char* name() const noexcept override { return "QBC"; }

  net::Piggyback make_piggyback(const net::MobileHost& host, net::HostId dst) override;
  void handle_receive(const net::MobileHost& host, const net::AppMessage& msg,
                      const net::Piggyback& pb) override;
  void handle_cell_switch(const net::MobileHost& host, net::MssId from, net::MssId to) override;
  void handle_disconnect(const net::MobileHost& host) override;

  /// Test access.
  u64 sequence_number(net::HostId host) const { return per_host_.at(host).sn; }
  i64 receive_number(net::HostId host) const { return per_host_.at(host).rn; }

 protected:
  void do_bind() override { per_host_.assign(ctx_.n_hosts, HostState{}); }

 private:
  struct HostState {
    u64 sn = 0;
    i64 rn = -1;  ///< Paper: rn_i := -1 at init.
  };

  void basic_checkpoint(const net::MobileHost& host);

  std::vector<HostState> per_host_;
};

}  // namespace mobichk::core
