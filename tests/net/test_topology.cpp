#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "des/simulator.hpp"
#include "net/network.hpp"

namespace mobichk::net {
namespace {

TEST(MssTopology, FullMeshIsOneHopEverywhere) {
  MssTopology t(MssTopologyKind::kFullMesh, 5);
  for (MssId a = 0; a < 5; ++a) {
    for (MssId b = 0; b < 5; ++b) {
      EXPECT_EQ(t.hops(a, b), a == b ? 0u : 1u);
    }
  }
  EXPECT_EQ(t.diameter(), 1u);
}

TEST(MssTopology, RingDistances) {
  MssTopology t(MssTopologyKind::kRing, 6);
  EXPECT_EQ(t.hops(0, 1), 1u);
  EXPECT_EQ(t.hops(0, 2), 2u);
  EXPECT_EQ(t.hops(0, 3), 3u);
  EXPECT_EQ(t.hops(0, 4), 2u);  // shorter the other way around
  EXPECT_EQ(t.hops(0, 5), 1u);
  EXPECT_EQ(t.diameter(), 3u);
}

TEST(MssTopology, LineDistances) {
  MssTopology t(MssTopologyKind::kLine, 5);
  EXPECT_EQ(t.hops(0, 4), 4u);
  EXPECT_EQ(t.hops(1, 3), 2u);
  EXPECT_EQ(t.diameter(), 4u);
}

TEST(MssTopology, StarDistances) {
  MssTopology t(MssTopologyKind::kStar, 5);
  EXPECT_EQ(t.hops(0, 3), 1u);  // hub to leaf
  EXPECT_EQ(t.hops(2, 4), 2u);  // leaf to leaf via the hub
  EXPECT_EQ(t.diameter(), 2u);
}

TEST(MssTopology, SymmetricDistances) {
  for (const auto kind : {MssTopologyKind::kRing, MssTopologyKind::kLine,
                          MssTopologyKind::kStar, MssTopologyKind::kFullMesh}) {
    MssTopology t(kind, 7);
    for (MssId a = 0; a < 7; ++a) {
      for (MssId b = 0; b < 7; ++b) {
        EXPECT_EQ(t.hops(a, b), t.hops(b, a)) << mss_topology_name(kind);
      }
    }
  }
}

TEST(MssTopology, SingleMss) {
  MssTopology t(MssTopologyKind::kRing, 1);
  EXPECT_EQ(t.hops(0, 0), 0u);
  EXPECT_EQ(t.diameter(), 0u);
}

TEST(MssTopology, TwoMssRingAndLineCoincide) {
  MssTopology ring(MssTopologyKind::kRing, 2);
  MssTopology line(MssTopologyKind::kLine, 2);
  EXPECT_EQ(ring.hops(0, 1), 1u);
  EXPECT_EQ(line.hops(0, 1), 1u);
}

TEST(TopologyNetwork, LineTopologyMultipliesWiredLatency) {
  des::Simulator sim;
  NetworkConfig cfg;
  cfg.n_hosts = 2;
  cfg.n_mss = 5;
  cfg.mss_topology = MssTopologyKind::kLine;
  Network net(sim, cfg, 1);
  NullHostEventHandler handler;
  net.set_handler(&handler);
  net.start({0, 4});  // hosts at the two ends of the chain
  net.send_app_message(0, 1, 10);
  sim.run();
  // wireless 0.01 + 4 wired hops x 0.01 + wireless 0.01.
  EXPECT_NEAR(sim.now(), 0.06, 1e-9);
  EXPECT_EQ(net.stats().wired_hops, 4u);
}

TEST(TopologyNetwork, StarRoutesThroughHub) {
  des::Simulator sim;
  NetworkConfig cfg;
  cfg.n_hosts = 2;
  cfg.n_mss = 4;
  cfg.mss_topology = MssTopologyKind::kStar;
  Network net(sim, cfg, 1);
  NullHostEventHandler handler;
  net.set_handler(&handler);
  net.start({1, 3});  // two leaves
  net.send_app_message(0, 1, 10);
  sim.run();
  EXPECT_NEAR(sim.now(), 0.04, 1e-9);  // 2 wireless + 2 wired
  EXPECT_EQ(net.stats().wired_hops, 2u);
}

}  // namespace
}  // namespace mobichk::net
