// Mobile support station (MSS): the fixed, wired-side agent of a cell.
//
// In this substrate the MSS's visible responsibilities are (i) buffering
// application messages addressed to disconnected hosts until they
// reconnect, and (ii) serving as the stable-storage site for checkpoints
// (the storage model itself lives in core/storage.hpp and is keyed by
// MssId). Routing decisions are made by Network using the location
// directory.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "des/types.hpp"
#include "net/ids.hpp"
#include "net/message.hpp"

namespace mobichk::net {

class Mss {
 public:
  explicit Mss(MssId id) noexcept : id_(id) {}

  MssId id() const noexcept { return id_; }

  /// Queues a message for a disconnected host.
  void buffer_message(HostId host, AppMessage msg) {
    buffers_[host].push_back(std::move(msg));
    ++messages_buffered_;
  }

  /// Removes and returns all messages buffered for `host` (FIFO order).
  std::vector<AppMessage> drain_buffer(HostId host) {
    auto it = buffers_.find(host);
    if (it == buffers_.end()) return {};
    std::vector<AppMessage> out(std::make_move_iterator(it->second.begin()),
                                std::make_move_iterator(it->second.end()));
    buffers_.erase(it);
    return out;
  }

  usize buffered_count(HostId host) const {
    const auto it = buffers_.find(host);
    return it == buffers_.end() ? 0 : it->second.size();
  }

  /// Lifetime count of messages ever buffered at this MSS.
  u64 messages_buffered() const noexcept { return messages_buffered_; }

  /// Lifetime count of messages this MSS routed onward (updated by Network).
  u64 messages_routed() const noexcept { return messages_routed_; }
  void note_routed() noexcept { ++messages_routed_; }

 private:
  MssId id_;
  std::unordered_map<HostId, std::deque<AppMessage>> buffers_;
  u64 messages_buffered_ = 0;
  u64 messages_routed_ = 0;
};

}  // namespace mobichk::net
