#include "sim/json.hpp"

#include <cmath>
#include <cstdio>

namespace mobichk::sim {

void JsonWriter::newline() {
  if (!pretty_) return;
  os_ << '\n';
  for (usize i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::separator() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key on the same line
  }
  if (!stack_.empty()) {
    if (stack_.back().has_items) os_ << ',';
    stack_.back().has_items = true;
    newline();
  }
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  os_ << '{';
  stack_.push_back(Level{false, false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separator();
  os_ << '[';
  stack_.push_back(Level{true, false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  separator();
  os_ << '"';
  escape(k);
  os_ << "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separator();
  os_ << '"';
  escape(v);
  os_ << '"';
  return *this;
}

JsonWriter& JsonWriter::value(f64 v) {
  separator();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(u64 v) {
  separator();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(i64 v) {
  separator();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separator();
  os_ << (v ? "true" : "false");
  return *this;
}

void JsonWriter::escape(std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\r': os_ << "\\r"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
}

}  // namespace mobichk::sim
