// ABL2: control-information volume and scalability in the number of hosts
// (paper §2.2 and §4.1).
//
// TP piggybacks two vectors of n integers on every application message;
// BCS/QBC piggyback a single integer. This bench sweeps the host count
// and reports the control bytes each protocol ships over the wireless
// links — the scalability argument (§4.1: "the TP protocol does not
// scale while changing the number of hosts") made quantitative.
#include <cstdio>

#include "sim/cli.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace mobichk;
  const sim::ArgParser args(argc, argv);

  std::printf("ABL2 — piggybacked control bytes vs number of hosts "
              "(T_switch=1000, P_switch=0.8)\n");
  std::printf("%8s %12s %14s %14s %14s %18s\n", "hosts", "messages", "TP(B)", "BCS(B)", "QBC(B)",
              "TP bytes/msg");

  for (const u32 hosts : {5u, 10u, 20u, 40u, 80u}) {
    sim::SimConfig cfg;
    cfg.network.n_hosts = hosts;
    cfg.sim_length = args.get_f64("length", 20'000.0);
    cfg.t_switch = 1'000.0;
    cfg.p_switch = 0.8;
    cfg.seed = 7;
    const sim::RunResult r = sim::run_experiment(cfg);
    const f64 per_msg = static_cast<f64>(r.by_name("TP").piggyback_bytes) /
                        static_cast<f64>(r.net.app_sent);
    std::printf("%8u %12llu %14llu %14llu %14llu %18.1f\n", hosts,
                static_cast<unsigned long long>(r.net.app_sent),
                static_cast<unsigned long long>(r.by_name("TP").piggyback_bytes),
                static_cast<unsigned long long>(r.by_name("BCS").piggyback_bytes),
                static_cast<unsigned long long>(r.by_name("QBC").piggyback_bytes), per_msg);
  }
  std::printf("\nexpected: TP bytes/msg grows linearly with the host count (2n x 4B);\n"
              "BCS/QBC stay at 8 bytes regardless — the open-system scalability answer.\n");
  return 0;
}
