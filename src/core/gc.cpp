#include "core/gc.hpp"

#include <algorithm>
#include <stdexcept>

namespace mobichk::core {

u64 GcAnalysis::total_collectible() const noexcept {
  u64 total = 0;
  for (const u64 c : collectible_per_host) total += c;
  return total;
}

u64 GcAnalysis::total_retained(const CheckpointLog& log) const {
  return log.total() - total_collectible();
}

namespace {

/// The stable index over a prefix: the largest M every host has reached.
u64 stable_index_of(const std::vector<u64>& max_sn_per_host) {
  u64 stable = ~0ULL;
  for (const u64 m : max_sn_per_host) stable = std::min(stable, m);
  return stable;
}

/// Ordinal of the line member for `host` at `index` within the prefix of
/// its first `prefix` checkpoints.
u64 member_ordinal(const CheckpointLog& log, net::HostId host, u64 prefix, u64 index,
                   IndexLineRule rule) {
  const auto& records = log.of(host);
  const auto begin = records.begin();
  const auto end = begin + static_cast<std::ptrdiff_t>(prefix);
  if (rule == IndexLineRule::kLastEqual) {
    const auto it = std::upper_bound(begin, end, index,
                                     [](u64 s, const CheckpointRecord& r) { return s < r.sn; });
    if (it != begin && (it - 1)->sn == index) return (it - 1)->ordinal;
  }
  const auto it = std::lower_bound(begin, end, index,
                                   [](const CheckpointRecord& r, u64 s) { return r.sn < s; });
  if (it == end) {
    throw std::logic_error("gc: stable index has no member in prefix");
  }
  return it->ordinal;
}

}  // namespace

GcAnalysis analyze_gc(const CheckpointLog& log, IndexLineRule rule, u32 n_mss) {
  const u32 n = log.n_hosts();
  GcAnalysis out;
  out.collectible_per_host.assign(n, 0);
  out.collectible_per_mss.assign(n_mss, 0);

  std::vector<u64> max_sn(n);
  for (net::HostId h = 0; h < n; ++h) {
    if (log.count(h) == 0) throw std::invalid_argument("analyze_gc: host without checkpoints");
    max_sn[h] = log.max_sn(h);
  }
  out.stable_index = stable_index_of(max_sn);

  out.stable_line.index = out.stable_index;
  out.stable_line.pos.resize(n);
  out.stable_line.members.resize(n, nullptr);
  for (net::HostId h = 0; h < n; ++h) {
    const u64 ordinal = member_ordinal(log, h, log.count(h), out.stable_index, rule);
    const CheckpointRecord* member = log.by_ordinal(h, ordinal);
    out.stable_line.members[h] = member;
    out.stable_line.pos[h] = member->event_pos;
    out.collectible_per_host[h] = ordinal;  // everything strictly older
    for (u64 x = 0; x < ordinal; ++x) {
      out.collectible_per_mss.at(log.by_ordinal(h, x)->location) += 1;
    }
  }
  return out;
}

u64 gc_reclaimable_bytes(const GcAnalysis& gc, const StorageModel& storage) {
  u64 bytes = 0;
  for (net::HostId h = 0; h < gc.collectible_per_host.size(); ++h) {
    const auto& history = storage.upload_history(h);
    for (u64 x = 0; x < gc.collectible_per_host[h]; ++x) bytes += history.at(x);
  }
  return bytes;
}

std::vector<OccupancySample> gc_occupancy_timeline(const CheckpointLog& log, IndexLineRule rule,
                                                   des::Time horizon, usize samples) {
  if (samples == 0) return {};
  const u32 n = log.n_hosts();
  std::vector<OccupancySample> out;
  out.reserve(samples);
  for (usize s = 1; s <= samples; ++s) {
    const des::Time t = horizon * static_cast<f64>(s) / static_cast<f64>(samples);
    OccupancySample sample;
    sample.time = t;
    // Prefix sizes per host at time t (records are time-ordered).
    std::vector<u64> prefix(n);
    std::vector<u64> max_sn(n, 0);
    bool all_have_checkpoints = true;
    for (net::HostId h = 0; h < n; ++h) {
      const auto& records = log.of(h);
      const auto it = std::upper_bound(records.begin(), records.end(), t,
                                       [](des::Time tt, const CheckpointRecord& r) {
                                         return tt < r.time;
                                       });
      prefix[h] = static_cast<u64>(it - records.begin());
      sample.live_without_gc += prefix[h];
      if (prefix[h] == 0) {
        all_have_checkpoints = false;
      } else {
        max_sn[h] = records[prefix[h] - 1].sn;
      }
    }
    if (!all_have_checkpoints) {
      sample.live_with_gc = sample.live_without_gc;
    } else {
      const u64 stable = stable_index_of(max_sn);
      for (net::HostId h = 0; h < n; ++h) {
        const u64 member = member_ordinal(log, h, prefix[h], stable, rule);
        sample.live_with_gc += prefix[h] - member;  // member and newer survive
      }
    }
    out.push_back(sample);
  }
  return out;
}

}  // namespace mobichk::core
