#include "sim/faults.hpp"

#include <algorithm>

#include "core/recovery.hpp"
#include "obs/causal.hpp"

namespace mobichk::sim {

namespace {

/// Protocols whose recovery line is the index line of the victims'
/// highest reached index; the rest use the generic orphan fixpoint.
bool uses_index_rollback(core::ProtocolKind kind) noexcept {
  switch (kind) {
    case core::ProtocolKind::kBcs:
    case core::ProtocolKind::kQbc:
    case core::ProtocolKind::kCoordinated:
    case core::ProtocolKind::kLazyBcs: return true;
    default: return false;
  }
}

}  // namespace

CrashDriver::CrashDriver(des::Simulator& sim, net::Network& net, core::ProtocolHarness& harness,
                         const SimConfig& cfg, std::vector<core::ProtocolKind> kinds,
                         WorkloadDriver* workload, MobilityDriver* mobility,
                         obs::RunObserver* observer, storage::DataPlane* data_plane)
    : sim_(sim),
      net_(net),
      harness_(harness),
      cfg_(cfg),
      kinds_(std::move(kinds)),
      workload_(workload),
      mobility_(mobility),
      observer_(observer),
      data_plane_(data_plane),
      rng_(cfg.seed, "faults") {
  down_.assign(net.n_hosts(), false);
}

void CrashDriver::start() {
  if (!cfg_.faults.enabled()) return;
  des::EventPayload p;
  p.target = this;
  p.kind = des::EventKind::kCrash;
  sim_.schedule_at(cfg_.faults.first_crash_at, p);
  ++scheduled_;
}

void CrashDriver::on_event(const des::EventPayload& p) {
  if (p.kind == des::EventKind::kCrash) {
    execute_crash();
    schedule_next_crash();
  } else {
    finish_recovery(static_cast<net::HostId>(p.a), p.b);
  }
}

void CrashDriver::schedule_next_crash() {
  if (scheduled_ >= cfg_.faults.max_crashes || cfg_.faults.crash_interval <= 0.0) return;
  const f64 gap = des::Exponential(cfg_.faults.crash_interval).sample(rng_);
  des::EventPayload p;
  p.target = this;
  p.kind = des::EventKind::kCrash;
  sim_.schedule_after(gap, p);
  ++scheduled_;
}

std::vector<net::HostId> CrashDriver::pick_victims() {
  std::vector<net::HostId> eligible;
  for (net::HostId h = 0; h < net_.n_hosts(); ++h) {
    if (net_.host(h).connected() && !down_[h]) eligible.push_back(h);
  }
  std::vector<net::HostId> victims;
  const FaultConfig& f = cfg_.faults;
  switch (f.mode) {
    case CrashMode::kMhCrash:
      if (f.target != FaultConfig::kRandomTarget) {
        for (const auto h : eligible) {
          if (h == f.target) victims.push_back(h);
        }
      } else if (!eligible.empty()) {
        victims.push_back(eligible[des::uniform_index(rng_, eligible.size())]);
      }
      break;
    case CrashMode::kCorrelated: {
      const usize want = std::min<usize>(f.correlated, eligible.size());
      for (usize i = 0; i < want; ++i) {
        const auto j = static_cast<usize>(des::uniform_index(rng_, eligible.size()));
        victims.push_back(eligible[j]);
        eligible.erase(eligible.begin() + static_cast<std::ptrdiff_t>(j));
      }
      break;
    }
    case CrashMode::kCellOutage: {
      const auto cell = f.target != FaultConfig::kRandomTarget
                            ? static_cast<net::MssId>(f.target)
                            : static_cast<net::MssId>(des::uniform_index(rng_, net_.n_mss()));
      // Enumerate the cell via the location directory — O(population),
      // not O(n_hosts) — in the same ascending-id order the old full
      // scan produced, so victim traces are unchanged.
      for (const auto h : net_.directory().hosts_in_cell(cell)) {
        if (net_.host(h).connected() && !down_[h]) victims.push_back(h);
      }
      break;
    }
    case CrashMode::kNone: break;
  }
  return victims;
}

void CrashDriver::execute_crash() {
  const std::vector<net::HostId> victims = pick_victims();
  if (victims.empty()) {
    // Every candidate is already down or disconnected; a failure with no
    // live victim is a no-op.
    ++stats_.crashes_skipped;
    return;
  }

  const u32 n = net_.n_hosts();
  const std::vector<u64> fail_pos = harness_.current_positions();
  std::vector<bool> crashed(n, false);
  for (const auto v : victims) crashed[v] = true;

  CrashRecord rec;
  rec.t = sim_.now();
  rec.mode = cfg_.faults.mode;
  rec.victims = victims;
  const core::MessageLog& messages = harness_.message_log();

  // Measure every protocol's rollback against the shared trace; slot 0's
  // line is the one the run physically restores.
  core::RollbackResult rb0;
  const obs::CausalMonitor* monitor = observer_ != nullptr ? observer_->causal() : nullptr;
  for (usize slot = 0; slot < kinds_.size(); ++slot) {
    core::RollbackResult rb =
        uses_index_rollback(kinds_[slot])
            ? core::index_rollback(harness_.log(slot), core::recovery_rule_for(kinds_[slot]),
                                   fail_pos, crashed)
            : core::rollback_to_consistent(harness_.log(slot), messages, fail_pos, crashed);
    rec.slot_undone.push_back(rb.undone_events());
    rec.slot_line_index.push_back(rb.line.index);
    const obs::RecoveryLineTracker* tracker =
        monitor != nullptr ? monitor->tracker(slot) : nullptr;
    rec.tracker_line_index.push_back(tracker != nullptr ? tracker->line_index() : ~0ULL);
    if (slot == 0) rb0 = std::move(rb);
  }

  std::vector<net::MssId> host_mss(n);
  for (net::HostId h = 0; h < n; ++h) host_mss[h] = net_.host(h).mss();
  const core::RecoveryPlan plan =
      core::plan_recovery(rb0, messages, crashed, host_mss, net_.n_mss(), cfg_.faults.recovery);

  rec.line_index = rb0.line.index;
  rec.hosts_rolled_back = plan.estimate.hosts_rolled_back;
  rec.undone_events = rb0.undone_events();
  rec.replayed_messages = plan.replayed_messages;
  rec.checkpoints_discarded = rb0.total_discarded();
  rec.orphan_iterations = rb0.iterations;
  rec.planned_recovery = plan.completion;
  rec.estimated_recovery = plan.estimate.total();
  rec.undone_per_host.resize(n);
  for (net::HostId h = 0; h < n; ++h) rec.undone_per_host[h] = fail_pos[h] - rb0.line.pos[h];

  // Execute slot 0's line: victims and every connected survivor the line
  // forces onto a stored checkpoint go down together and rejoin at their
  // planned ready times. Disconnected rolled-back hosts are measured but
  // not physically cycled (they are already paused; their restore folds
  // into their eventual reconnect).
  const u64 record_idx = records_.size();
  for (net::HostId h = 0; h < n; ++h) {
    const bool forced = rb0.line.members[h] != nullptr;
    if (!crashed[h] && !forced) continue;
    if (!net_.host(h).connected()) continue;
    ++rec.hosts_taken_down;
    net_.crash(h);
    if (workload_ != nullptr) workload_->pause(h);
    if (mobility_ != nullptr) mobility_->pause(h);
    down_[h] = true;
    f64 ready = plan.hosts[h].ready_at;
    if (data_plane_ != nullptr) {
      // The restore is not free: the host's recovery image lives at its
      // placement MSS and the bytes must be read off stable storage
      // (queueing behind concurrent writers) and shipped over the wired
      // backbone to the cell the host rejoins. Distant placements and
      // contended disks stretch the measured outage.
      ready += data_plane_->recovery_fetch(h, host_mss[h], sim_.now());
    }
    des::EventPayload p;
    p.target = this;
    p.kind = des::EventKind::kRecover;
    p.a = h;
    p.b = record_idx;
    sim_.schedule_after(ready, p);
    ++rec.pending_restores;
  }

  ++stats_.crashes_executed;
  stats_.hosts_crashed += victims.size();
  stats_.hosts_rolled_back += rec.hosts_rolled_back;
  stats_.undone_events += rec.undone_events;
  stats_.replayed_messages += rec.replayed_messages;
  stats_.checkpoints_discarded += rec.checkpoints_discarded;
  stats_.total_planned += rec.planned_recovery;
  stats_.total_estimated += rec.estimated_recovery;
  records_.push_back(std::move(rec));
}

void CrashDriver::finish_recovery(net::HostId host, u64 record_idx) {
  // The host restored its checkpoint image and replayed its logged
  // messages; it rejoins the cell it was in when it went down.
  net_.restore(host, net_.host(host).mss());
  down_[host] = false;
  if (workload_ != nullptr) workload_->resume(host);
  if (mobility_ != nullptr) mobility_->resume(host);
  CrashRecord& rec = records_.at(record_idx);
  if (rec.pending_restores > 0 && --rec.pending_restores == 0) {
    rec.actual_recovery = sim_.now() - rec.t;
    stats_.total_recovery_time += rec.actual_recovery;
    stats_.max_recovery_time = std::max(stats_.max_recovery_time, rec.actual_recovery);
  }
}

}  // namespace mobichk::sim
