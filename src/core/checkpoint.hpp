// Checkpoint records: what a protocol writes to stable storage.
#pragma once

#include <vector>

#include "des/types.hpp"
#include "net/ids.hpp"

namespace mobichk::core {

/// Why a checkpoint was taken.
enum class CheckpointKind : u8 {
  kInitial,  ///< The mandatory checkpoint at computation start.
  kBasic,    ///< Mandated by mobility: cell switch or voluntary disconnection.
  kForced,   ///< Induced by the protocol (communication pattern or marker).
};

/// Returns a stable display name for a kind.
constexpr const char* checkpoint_kind_name(CheckpointKind kind) noexcept {
  switch (kind) {
    case CheckpointKind::kInitial: return "initial";
    case CheckpointKind::kBasic: return "basic";
    case CheckpointKind::kForced: return "forced";
  }
  return "?";
}

/// One local checkpoint C_{i,x}.
struct CheckpointRecord {
  net::HostId host = 0;
  u64 ordinal = 0;       ///< Per-host creation order (0-based, includes initial).
  u64 sn = 0;            ///< Protocol index: sequence number (BCS/QBC), checkpoint
                         ///< count (TP), snapshot round (coordinated), = ordinal otherwise.
  CheckpointKind kind = CheckpointKind::kInitial;
  des::Time time = 0.0;
  net::MssId location = 0;  ///< MSS whose stable storage holds it.
  u64 event_pos = 0;        ///< Host events with position <= event_pos precede it.
  bool replaced_predecessor = false;  ///< QBC equivalence rule fired (same sn as predecessor).

  /// TP only: transitive dependency vectors recorded with the checkpoint.
  std::vector<u32> dep_ckpt;
  std::vector<u32> dep_loc;
};

}  // namespace mobichk::core
