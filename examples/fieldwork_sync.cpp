// Scenario: a field-service fleet.
//
// A dispatch application runs across 12 mobile terminals: 4 courier vans
// that cross cells every few minutes (fast movers) and 8 field-engineer
// tablets that mostly stay put but regularly power down between jobs
// (voluntary disconnections). The terminals exchange work orders and
// status updates; the operator wants fault tolerance without draining
// batteries on checkpoint uploads.
//
// This example models that fleet with the library's heterogeneous
// mobility support and reports, per protocol, the checkpoint count, the
// radio bytes spent on checkpoint uploads, and the control-information
// overhead — the numbers an integrator would use to pick a protocol.
#include <cstdio>

#include "mobichk.hpp"

int main(int argc, char** argv) {
  using namespace mobichk;
  const sim::ArgParser args(argc, argv);

  sim::SimConfig cfg;
  cfg.network.n_hosts = 12;
  cfg.network.n_mss = 6;
  cfg.sim_length = args.get_f64("length", 200'000.0);
  cfg.seed = args.get_u64("seed", 2026);
  // 4 of 12 terminals are fast movers: heterogeneity 1/3, factor 10.
  cfg.heterogeneity = 4.0 / 12.0;
  cfg.fast_factor = 10.0;
  cfg.t_switch = 3'000.0;      // tablets cross a cell every ~3000 tu
  cfg.p_switch = 0.75;         // a quarter of mobility events are power-downs
  cfg.disconnect_mean = 800.0; // off between jobs
  cfg.comm_mean = 25.0;        // work orders flow steadily
  cfg.p_send = 0.4;

  sim::ExperimentOptions opts;
  opts.with_storage = true;
  opts.storage.full_state_bytes = 4u << 20;  // 4 MiB terminal state
  opts.storage.dirty_rate = 0.002;           // slowly mutating order book
  opts.verify_consistency = true;

  const sim::RunResult r = sim::run_experiment(cfg, opts);

  std::printf("Field-service fleet: %u terminals (%u fast vans), %u base stations, %.0f tu\n",
              cfg.network.n_hosts, cfg.fast_host_count(), cfg.network.n_mss, cfg.sim_length);
  std::printf("traffic: %llu work orders sent, %llu handoffs, %llu power-downs\n\n",
              static_cast<unsigned long long>(r.net.app_sent),
              static_cast<unsigned long long>(r.net.handoffs),
              static_cast<unsigned long long>(r.net.disconnects));

  std::printf("%-8s %10s %12s %16s %16s %12s\n", "proto", "N_tot", "ckpt/hour*",
              "radio upload(MB)", "control(KB)", "consistent");
  for (const auto& p : r.protocols) {
    std::printf("%-8s %10llu %12.2f %16.1f %16.1f %12s\n", p.name.c_str(),
                static_cast<unsigned long long>(p.n_tot),
                static_cast<f64>(p.n_tot) / (cfg.sim_length / 3600.0),
                static_cast<f64>(p.storage_wireless_bytes) / 1e6,
                static_cast<f64>(p.piggyback_bytes) / 1e3,
                p.orphans_found == 0 ? "yes" : "NO");
  }
  std::printf("(* one 'hour' = 3600 tu)\n\n");

  const auto& tp = r.by_name("TP");
  const auto& bcs = r.by_name("BCS");
  const auto& qbc = r.by_name("QBC");
  std::printf("QBC saves %.1f%% of TP's checkpoint uploads and %.1f%% of BCS's;\n",
              100.0 * (1.0 - static_cast<f64>(qbc.storage_wireless_bytes) /
                                 static_cast<f64>(tp.storage_wireless_bytes)),
              100.0 * (1.0 - static_cast<f64>(qbc.storage_wireless_bytes) /
                                 static_cast<f64>(bcs.storage_wireless_bytes)));
  std::printf("its control overhead is %.0fx smaller than TP's per message.\n",
              static_cast<f64>(tp.piggyback_bytes) / static_cast<f64>(qbc.piggyback_bytes));
  return 0;
}
