#include "des/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "des/sorted_list_queue.hpp"

namespace mobichk::des {

// ---------------------------------------------------------------------------
// BinaryHeapQueue
// ---------------------------------------------------------------------------

void BinaryHeapQueue::push(EventEntry entry) {
  pending_.insert(entry.seq);
  heap_.push_back(std::move(entry));
  sift_up(heap_.size() - 1);
  ++live_;
}

void BinaryHeapQueue::drop_cancelled_top() {
  while (!heap_.empty() && cancelled_.contains(heap_.front().seq)) {
    cancelled_.erase(heap_.front().seq);
    std::swap(heap_.front(), heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

EventEntry BinaryHeapQueue::pop() {
  drop_cancelled_top();
  assert(!heap_.empty() && "pop() on empty queue");
  EventEntry out = std::move(heap_.front());
  std::swap(heap_.front(), heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  pending_.erase(out.seq);
  --live_;
  assert(live_ == pending_.size());
  return out;
}

bool BinaryHeapQueue::cancel(u64 seq) {
  // Lazy: mark and skip at pop time. Only a seq that is still pending may
  // be cancelled; a fired, unknown or double-cancelled seq must neither
  // disturb live_ nor leave an immortal tombstone behind.
  if (pending_.erase(seq) == 0) return false;
  cancelled_.insert(seq);
  --live_;
  return true;
}

bool BinaryHeapQueue::empty() {
  drop_cancelled_top();
  return heap_.empty();
}

void BinaryHeapQueue::sift_up(usize i) {
  while (i > 0) {
    const usize parent = (i - 1) / 2;
    if (!(heap_[i] < heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void BinaryHeapQueue::sift_down(usize i) {
  const usize n = heap_.size();
  for (;;) {
    const usize l = 2 * i + 1;
    const usize r = 2 * i + 2;
    usize smallest = i;
    if (l < n && heap_[l] < heap_[smallest]) smallest = l;
    if (r < n && heap_[r] < heap_[smallest]) smallest = r;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

// ---------------------------------------------------------------------------
// CalendarQueue
// ---------------------------------------------------------------------------

namespace {
constexpr usize kMinBuckets = 2;
constexpr usize kInitialBuckets = 8;
}  // namespace

CalendarQueue::CalendarQueue() { buckets_.resize(kInitialBuckets); }

usize CalendarQueue::bucket_of(Time t) const noexcept {
  const f64 virtual_bucket = std::floor(t / bucket_width_);
  return static_cast<usize>(std::fmod(virtual_bucket, static_cast<f64>(buckets_.size())));
}

void CalendarQueue::insert_sorted(std::vector<EventEntry>& bucket, EventEntry entry) {
  // Buckets are kept sorted in *descending* (time, seq) order so the next
  // event to fire is at the back (O(1) removal).
  const auto pos = std::upper_bound(
      bucket.begin(), bucket.end(), entry,
      [](const EventEntry& a, const EventEntry& b) { return b < a; });
  bucket.insert(pos, std::move(entry));
}

void CalendarQueue::reposition(Time t) noexcept {
  cursor_time_ = t;
  const f64 year_len = bucket_width_ * static_cast<f64>(buckets_.size());
  current_year_start_ = std::floor(t / year_len) * year_len;
  current_bucket_ = bucket_of(t);
}

void CalendarQueue::push(EventEntry entry) {
  assert(entry.time >= last_popped_ && "calendar queue does not support scheduling in the past");
  // The cursor may sit past this event's year (e.g. after a jump to a far
  // minimum that was then superseded): pull it back so the scan cannot
  // skip the new event.
  if (entry.time < cursor_time_) reposition(entry.time);
  pending_.insert(entry.seq);
  insert_sorted(buckets_[bucket_of(entry.time)], std::move(entry));
  ++live_;
  if (live_ > 2 * buckets_.size()) resize(buckets_.size() * 2);
}

bool CalendarQueue::cancel(u64 seq) {
  // Only a still-pending seq may be cancelled: decrementing live_ for a
  // fired or unknown seq made empty() report true while real events were
  // still bucketed, silently truncating the simulation.
  if (pending_.erase(seq) == 0) return false;
  cancelled_.insert(seq);
  --live_;
  return true;
}

bool CalendarQueue::empty() {
  assert(live_ == pending_.size());
  // Tombstoned entries may remain in the buckets; they are purged lazily
  // by pop()/resize(), so the queue is logically empty at live_ == 0.
  return live_ == 0;
}

EventEntry CalendarQueue::pop() {
  assert(live_ > 0 && "pop() on empty queue");
  const usize nb = buckets_.size();
  for (;;) {
    const Time year_len = bucket_width_ * static_cast<f64>(nb);
    // Scan up to one full year starting at the cursor.
    for (usize k = 0; k < nb; ++k) {
      const usize raw = current_bucket_ + k;
      const bool wrapped = raw >= nb;
      const usize b = raw % nb;
      auto& bucket = buckets_[b];
      // Purge cancelled entries at the tail (the earliest events).
      while (!bucket.empty() && cancelled_.contains(bucket.back().seq)) {
        cancelled_.erase(bucket.back().seq);
        bucket.pop_back();
      }
      const Time year_start = current_year_start_ + (wrapped ? year_len : 0.0);
      const Time bucket_top = year_start + bucket_width_ * static_cast<f64>(b + 1);
      if (!bucket.empty() && bucket.back().time < bucket_top) {
        EventEntry out = std::move(bucket.back());
        bucket.pop_back();
        if (wrapped) current_year_start_ += year_len;
        current_bucket_ = b;
        cursor_time_ = out.time;
        last_popped_ = out.time;
        pending_.erase(out.seq);
        --live_;
        if (live_ < buckets_.size() / 2 && buckets_.size() > kMinBuckets) {
          resize(buckets_.size() / 2);
        }
        return out;
      }
    }
    // Nothing due within a year: jump directly to the global minimum.
    const EventEntry* min_entry = nullptr;
    for (auto& bucket : buckets_) {
      while (!bucket.empty() && cancelled_.contains(bucket.back().seq)) {
        cancelled_.erase(bucket.back().seq);
        bucket.pop_back();
      }
      if (!bucket.empty() && (min_entry == nullptr || bucket.back() < *min_entry)) {
        min_entry = &bucket.back();
      }
    }
    assert(min_entry != nullptr);
    reposition(min_entry->time);
    // Loop re-runs the scan; it will now find the minimum immediately.
  }
}

void CalendarQueue::resize(usize new_bucket_count) {
  // Estimate a bucket width from the spacing of the earliest events.
  std::vector<EventEntry> all;
  all.reserve(live_);
  for (auto& bucket : buckets_) {
    for (auto& e : bucket) {
      if (cancelled_.contains(e.seq)) {
        cancelled_.erase(e.seq);
        continue;
      }
      all.push_back(std::move(e));
    }
    bucket.clear();
  }
  std::sort(all.begin(), all.end());
  if (all.size() >= 2) {
    const usize sample = std::min<usize>(all.size(), 25);
    f64 span = all[sample - 1].time - all[0].time;
    f64 avg_gap = span / static_cast<f64>(sample - 1);
    if (avg_gap <= 0.0) avg_gap = 1.0;
    bucket_width_ = 3.0 * avg_gap;
  }
  buckets_.assign(new_bucket_count, {});
  live_ = 0;
  // Reset the cursor to the earliest pending event (or keep current epoch).
  reposition(all.empty() ? last_popped_ : all.front().time);
  for (auto& e : all) {
    insert_sorted(buckets_[bucket_of(e.time)], std::move(e));
    ++live_;
  }
}

std::unique_ptr<EventQueue> make_event_queue(QueueKind kind) {
  switch (kind) {
    case QueueKind::kBinaryHeap:
      return std::make_unique<BinaryHeapQueue>();
    case QueueKind::kCalendar:
      return std::make_unique<CalendarQueue>();
    case QueueKind::kSortedList:
      return std::make_unique<SortedListQueue>();
  }
  return std::make_unique<BinaryHeapQueue>();
}

const char* queue_kind_name(QueueKind kind) noexcept {
  switch (kind) {
    case QueueKind::kBinaryHeap:
      return "binary-heap";
    case QueueKind::kCalendar:
      return "calendar";
    case QueueKind::kSortedList:
      return "sorted-list";
  }
  return "unknown";
}

QueueKind queue_kind_from_name(std::string_view name) {
  for (const QueueKind kind : kAllQueueKinds) {
    if (name == queue_kind_name(kind)) return kind;
  }
  throw std::invalid_argument("unknown queue kind: " + std::string(name));
}

}  // namespace mobichk::des
