#include "des/sorted_list_queue.hpp"

#include <algorithm>
#include <cassert>

namespace mobichk::des {

void SortedListQueue::push(EventEntry entry) {
  const auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), entry,
      [](const EventEntry& a, const EventEntry& b) { return b < a; });
  entries_.insert(pos, std::move(entry));
}

EventEntry SortedListQueue::pop() {
  assert(!entries_.empty() && "pop() on empty queue");
  EventEntry out = std::move(entries_.back());
  entries_.pop_back();
  return out;
}

bool SortedListQueue::cancel(u64 seq) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [seq](const EventEntry& e) { return e.seq == seq; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

}  // namespace mobichk::des
