// ABL1: non-negligible checkpoint time (paper §5.1 remark).
//
// The paper notes: "we simulated situations in which the time for taking
// a checkpoint is non negligible and we did not find a remarkable impact
// on the number of taken checkpoints." This ablation reproduces that:
// each protocol is run alone (a non-zero checkpoint latency perturbs the
// trace, so paired observation would be unsound) with increasing stall
// per checkpoint.
#include <cstdio>

#include "sim/cli.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace mobichk;
  const sim::ArgParser args(argc, argv);
  const f64 length = args.get_f64("length", 100'000.0);

  const f64 latencies[] = {0.0, 0.01, 0.1, 1.0};
  const core::ProtocolKind kinds[] = {core::ProtocolKind::kTp, core::ProtocolKind::kBcs,
                                      core::ProtocolKind::kQbc};

  std::printf("ABL1 — N_tot vs per-checkpoint stall (T_switch=1000, P_switch=0.8, seed-avg)\n");
  std::printf("%-8s", "proto");
  for (const f64 lat : latencies) std::printf("   stall=%-6.2f", lat);
  std::printf("  max deviation\n");

  for (const auto kind : kinds) {
    std::printf("%-8s", core::protocol_kind_name(kind));
    f64 baseline = 0.0, worst = 0.0;
    for (const f64 lat : latencies) {
      f64 total = 0.0;
      const u64 seeds = args.get_u64("seeds", 3);
      for (u64 s = 1; s <= seeds; ++s) {
        sim::SimConfig cfg;
        cfg.sim_length = length;
        cfg.t_switch = 1'000.0;
        cfg.p_switch = 0.8;
        cfg.ckpt_latency = lat;
        cfg.seed = s;
        sim::ExperimentOptions opts;
        opts.protocols = {kind};
        total += static_cast<f64>(sim::run_experiment(cfg, opts).protocols[0].n_tot);
      }
      const f64 mean = total / static_cast<f64>(args.get_u64("seeds", 3));
      if (lat == 0.0) baseline = mean;
      worst = std::max(worst, std::abs(mean - baseline) / baseline * 100.0);
      std::printf("   %12.1f", mean);
    }
    std::printf("  %12.1f%%\n", worst);
  }
  std::printf("\nexpected: deviations stay small (a stall of 1 tu per checkpoint barely\n"
              "shifts the communication/mobility pattern) — matching the paper's remark.\n");
  return 0;
}
