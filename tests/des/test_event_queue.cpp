#include "des/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "des/distributions.hpp"
#include "des/rng.hpp"

namespace mobichk::des {
namespace {

/// Bare (time, seq) entry; the queue fills in the slot.
EventEntry ev(Time t, u64 seq) {
  EventEntry e;
  e.time = t;
  e.seq = seq;
  return e;
}

class EventQueueTest : public ::testing::TestWithParam<QueueKind> {
 protected:
  std::unique_ptr<EventQueue> make() { return make_event_queue(GetParam()); }
};

TEST_P(EventQueueTest, EmptyInitially) {
  auto q = make();
  EXPECT_TRUE(q->empty());
  EXPECT_EQ(q->size(), 0u);
}

TEST_P(EventQueueTest, PopsInTimeOrder) {
  auto q = make();
  q->push(ev(3.0, 1));
  q->push(ev(1.0, 2));
  q->push(ev(2.0, 3));
  EXPECT_EQ(q->pop().time, 1.0);
  EXPECT_EQ(q->pop().time, 2.0);
  EXPECT_EQ(q->pop().time, 3.0);
  EXPECT_TRUE(q->empty());
}

TEST_P(EventQueueTest, BreaksTimeTiesBySequence) {
  auto q = make();
  q->push(ev(5.0, 30));
  q->push(ev(5.0, 10));
  q->push(ev(5.0, 20));
  EXPECT_EQ(q->pop().seq, 10u);
  EXPECT_EQ(q->pop().seq, 20u);
  EXPECT_EQ(q->pop().seq, 30u);
}

TEST_P(EventQueueTest, PeekTimeDoesNotRemove) {
  auto q = make();
  q->push(ev(2.0, 1));
  q->push(ev(1.0, 2));
  EXPECT_DOUBLE_EQ(q->peek_time(), 1.0);
  EXPECT_EQ(q->size(), 2u);
  EXPECT_DOUBLE_EQ(q->peek_time(), 1.0);  // idempotent
  EXPECT_EQ(q->pop().seq, 2u);
  EXPECT_DOUBLE_EQ(q->peek_time(), 2.0);
}

TEST_P(EventQueueTest, PeekThenEarlierPushStaysOrdered) {
  // A peek advances internal cursors (calendar queue); a subsequent push
  // of an *earlier* event must still pop first.
  auto q = make();
  q->push(ev(10.0, 1));
  EXPECT_DOUBLE_EQ(q->peek_time(), 10.0);
  q->push(ev(2.0, 2));
  EXPECT_DOUBLE_EQ(q->peek_time(), 2.0);
  EXPECT_EQ(q->pop().seq, 2u);
  EXPECT_EQ(q->pop().seq, 1u);
}

TEST_P(EventQueueTest, PeekSkipsCancelledMinimum) {
  auto q = make();
  const EventHandle h = q->push(ev(1.0, 1));
  q->push(ev(2.0, 2));
  EXPECT_TRUE(q->cancel(h));
  EXPECT_DOUBLE_EQ(q->peek_time(), 2.0);
  EXPECT_EQ(q->pop().seq, 2u);
}

TEST_P(EventQueueTest, CancelRemovesEvent) {
  auto q = make();
  q->push(ev(1.0, 1));
  const EventHandle h2 = q->push(ev(2.0, 2));
  q->push(ev(3.0, 3));
  EXPECT_TRUE(q->cancel(h2));
  EXPECT_EQ(q->size(), 2u);
  EXPECT_EQ(q->pop().seq, 1u);
  EXPECT_EQ(q->pop().seq, 3u);
  EXPECT_TRUE(q->empty());
}

TEST_P(EventQueueTest, CancelAllLeavesEmpty) {
  auto q = make();
  const EventHandle h1 = q->push(ev(1.0, 1));
  const EventHandle h2 = q->push(ev(2.0, 2));
  EXPECT_TRUE(q->cancel(h1));
  EXPECT_TRUE(q->cancel(h2));
  EXPECT_TRUE(q->empty());
  EXPECT_EQ(q->size(), 0u);
}

TEST_P(EventQueueTest, DoubleCancelIsNoop) {
  auto q = make();
  const EventHandle h1 = q->push(ev(1.0, 1));
  q->push(ev(2.0, 2));
  EXPECT_TRUE(q->cancel(h1));
  EXPECT_FALSE(q->cancel(h1));  // double-cancel must not corrupt the live count
  EXPECT_EQ(q->size(), 1u);
  EXPECT_EQ(q->pop().seq, 2u);
}

TEST_P(EventQueueTest, CancelAfterPopIsNoop) {
  // Seed bug (kept as a regression): cancelling an event that already
  // fired decremented the live count, so empty() reported true while a
  // real event remained and the simulation silently truncated. With
  // generation stamps the fired handle is stale and the cancel a no-op.
  auto q = make();
  const EventHandle h1 = q->push(ev(1.0, 1));
  q->push(ev(2.0, 2));
  EXPECT_EQ(q->pop().seq, 1u);
  EXPECT_FALSE(q->cancel(h1));  // already fired: must be a no-op
  EXPECT_EQ(q->size(), 1u);
  ASSERT_FALSE(q->empty());
  EXPECT_EQ(q->pop().seq, 2u);
  EXPECT_TRUE(q->empty());
}

TEST_P(EventQueueTest, CancelInvalidHandleIsNoop) {
  auto q = make();
  q->push(ev(1.0, 1));
  q->push(ev(2.0, 2));
  EXPECT_FALSE(q->cancel(EventHandle{}));          // default: never scheduled
  EXPECT_FALSE(q->cancel(EventHandle{999, 1}));    // slot never allocated
  EXPECT_EQ(q->size(), 2u);
  EXPECT_EQ(q->pop().seq, 1u);
  EXPECT_EQ(q->pop().seq, 2u);
  EXPECT_TRUE(q->empty());
}

TEST_P(EventQueueTest, StaleHandleCannotCancelReusedSlot) {
  // The heart of the generation scheme: when a slot is recycled for a new
  // event, every handle minted for its previous occupant must be dead —
  // a stale cancel must not kill the new tenant.
  auto q = make();
  const EventHandle h1 = q->push(ev(1.0, 1));
  EXPECT_EQ(q->pop().seq, 1u);  // slot of h1 is now free
  const EventHandle h2 = q->push(ev(2.0, 2));
  // Same physical slot, new generation (implementation detail, but pin it
  // so the test demonstrably exercises reuse).
  ASSERT_EQ(h1.slot, h2.slot);
  ASSERT_NE(h1.gen, h2.gen);
  EXPECT_FALSE(q->cancel(h1));  // stale: must not touch the new event
  EXPECT_EQ(q->size(), 1u);
  EXPECT_EQ(q->pop().seq, 2u);

  // Same via cancellation instead of firing.
  const EventHandle h3 = q->push(ev(3.0, 3));
  EXPECT_TRUE(q->cancel(h3));
  ASSERT_TRUE(q->empty());
  const EventHandle h4 = q->push(ev(4.0, 4));
  EXPECT_FALSE(q->cancel(h3));  // handle died with the cancel
  EXPECT_EQ(q->size(), 1u);
  EXPECT_TRUE(q->cancel(h4));
  EXPECT_TRUE(q->empty());
}

TEST_P(EventQueueTest, InterleavedPushPop) {
  auto q = make();
  u64 seq = 1;
  q->push(ev(10.0, seq++));
  q->push(ev(20.0, seq++));
  EXPECT_EQ(q->pop().time, 10.0);
  q->push(ev(15.0, seq++));
  q->push(ev(12.0, seq++));
  EXPECT_EQ(q->pop().time, 12.0);
  EXPECT_EQ(q->pop().time, 15.0);
  q->push(ev(25.0, seq++));
  EXPECT_EQ(q->pop().time, 20.0);
  EXPECT_EQ(q->pop().time, 25.0);
  EXPECT_TRUE(q->empty());
}

TEST_P(EventQueueTest, HandlesManyEventsAcrossScales) {
  // Time scales spanning several orders of magnitude exercise the
  // calendar queue's resizing and year-jumping logic.
  auto q = make();
  RngStream rng(42, "queue-test");
  std::vector<f64> times;
  f64 t = 0.0;
  for (u64 i = 0; i < 5000; ++i) {
    t += rng.uniform01() * ((i % 100 == 0) ? 1000.0 : 1.0);
    times.push_back(t);
  }
  // Insert in shuffled order.
  std::vector<usize> order(times.size());
  for (usize i = 0; i < order.size(); ++i) order[i] = i;
  for (usize i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[uniform_index(rng, i)]);
  }
  // Monotone-nondecreasing insertion constraint of the calendar queue is
  // satisfied because nothing has been popped yet (last_popped = 0).
  u64 seq = 1;
  for (const usize i : order) q->push(ev(times[i], seq++));
  std::sort(times.begin(), times.end());
  for (const f64 expect : times) {
    ASSERT_FALSE(q->empty());
    EXPECT_DOUBLE_EQ(q->pop().time, expect);
  }
  EXPECT_TRUE(q->empty());
}

TEST_P(EventQueueTest, SteadyStateHoldAndPop) {
  // Classic hold-model workload: pop one, push one slightly later.
  auto q = make();
  RngStream rng(7, "hold");
  u64 seq = 1;
  for (int i = 0; i < 64; ++i) q->push(ev(rng.uniform01() * 10.0, seq++));
  f64 last = 0.0;
  for (int i = 0; i < 20000; ++i) {
    EventEntry e = q->pop();
    EXPECT_GE(e.time, last);
    last = e.time;
    q->push(ev(last + rng.uniform01() * 10.0, seq++));
  }
  EXPECT_EQ(q->size(), 64u);
}

TEST_P(EventQueueTest, CancelHeavyChurnBoundsTombstones) {
  // Satellite: tombstone memory must stay bounded. Cancel ~90% of a
  // steady-state churn of kLive events; the physically stored entry
  // count must hold the documented bound stored <= 2*live + 64 at all
  // times, not grow with the total number of cancellations (50k here).
  auto q = make();
  RngStream rng(3, "churn");
  u64 seq = 1;
  f64 now = 0.0;
  constexpr usize kLive = 128;
  std::vector<EventHandle> handles;
  for (usize i = 0; i < kLive; ++i) {
    handles.push_back(q->push(ev(now + rng.uniform01(), seq++)));
  }
  for (int round = 0; round < 50000; ++round) {
    if (rng.uniform01() < 0.9) {
      const usize victim = uniform_index(rng, handles.size());
      ASSERT_TRUE(q->cancel(handles[victim]));
      handles[victim] = q->push(ev(now + rng.uniform01(), seq++));
    } else {
      const EventEntry e = q->pop();
      EXPECT_GE(e.time, now);
      now = e.time;
      // The popped entry's slot identifies which of our live handles
      // fired (live entries always occupy distinct slots).
      const auto it = std::find_if(handles.begin(), handles.end(),
                                   [&](const EventHandle& h) { return h.slot == e.slot; });
      ASSERT_NE(it, handles.end());
      *it = q->push(ev(now + rng.uniform01(), seq++));
    }
    ASSERT_EQ(q->size(), kLive);
    ASSERT_LE(q->stored(), 2 * kLive + 64) << q->name();
  }
  // Drain and verify the queue is still coherent.
  f64 last = 0.0;
  usize drained = 0;
  while (!q->empty()) {
    const EventEntry e = q->pop();
    EXPECT_GE(e.time, last);
    last = e.time;
    ++drained;
  }
  EXPECT_EQ(drained, kLive);
}

TEST_P(EventQueueTest, PeekTimeBelowEmptyQueueAndStrictBound) {
  auto q = make();
  // Unlike peek_time(), the probe is defined on an empty queue.
  EXPECT_EQ(q->peek_time_below(100.0), kNoEventBelow);
  q->push(ev(5.0, 1));
  EXPECT_DOUBLE_EQ(q->peek_time_below(10.0), 5.0);
  EXPECT_EQ(q->peek_time_below(5.0), kNoEventBelow);  // bound is strict
  EXPECT_EQ(q->peek_time_below(1.0), kNoEventBelow);
  EXPECT_EQ(q->size(), 1u);  // non-destructive
  EXPECT_EQ(q->pop().seq, 1u);
}

TEST_P(EventQueueTest, PeekTimeBelowSkipsCancelledMinimum) {
  auto q = make();
  const EventHandle a = q->push(ev(1.0, 1));
  q->push(ev(3.0, 2));
  ASSERT_TRUE(q->cancel(a));
  EXPECT_DOUBLE_EQ(q->peek_time_below(10.0), 3.0);
  EXPECT_EQ(q->peek_time_below(3.0), kNoEventBelow);
  EXPECT_EQ(q->pop().seq, 2u);
}

TEST_P(EventQueueTest, PeekTimeBelowKeepsOutstandingHandlesValid) {
  // Regression guard for the shard horizon probe: an implementation that
  // pops-and-reinserts to find the minimum would bump slot generations
  // and strand every outstanding handle. After any number of probes, the
  // original handles must still cancel their events.
  auto q = make();
  const EventHandle a = q->push(ev(2.0, 1));
  const EventHandle b = q->push(ev(4.0, 2));
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(q->peek_time_below(100.0), 2.0);
    EXPECT_EQ(q->peek_time_below(1.0), kNoEventBelow);
  }
  EXPECT_TRUE(q->cancel(a));
  EXPECT_TRUE(q->cancel(b));
  EXPECT_TRUE(q->empty());
  EXPECT_FALSE(q->cancel(a));  // second cancel through the same handle: stale
}

TEST_P(EventQueueTest, PeekTimeBelowThenEarlierPushStaysOrdered) {
  // The probe may advance internal cursors (calendar queue); an earlier
  // push afterwards must still surface first, in probe and pop order.
  auto q = make();
  q->push(ev(10.0, 1));
  EXPECT_EQ(q->peek_time_below(5.0), kNoEventBelow);
  q->push(ev(2.0, 2));
  EXPECT_DOUBLE_EQ(q->peek_time_below(5.0), 2.0);
  EXPECT_EQ(q->pop().seq, 2u);
  EXPECT_EQ(q->pop().seq, 1u);
}

TEST_P(EventQueueTest, PeekTimeBelowRandomizedAgainstLiveMinimum) {
  // Fuzz the probe against the ground truth: after every mutation, the
  // probe at a random bound must agree with the true live minimum, and
  // pending handles must remain cancellable.
  auto q = make();
  RngStream rng(7, "peek-below");
  std::vector<std::pair<f64, EventHandle>> live;  // (time, handle)
  u64 seq = 1;
  f64 now = 0.0;
  for (int round = 0; round < 4000; ++round) {
    const f64 dice = rng.uniform01();
    if (dice < 0.5 || live.empty()) {
      const f64 t = now + rng.uniform01() * 30.0;
      live.emplace_back(t, q->push(ev(t, seq++)));
    } else if (dice < 0.75) {
      const EventEntry e = q->pop();
      now = e.time;
      const auto it = std::find_if(live.begin(), live.end(),
                                   [&](const auto& p) { return p.first == e.time; });
      ASSERT_NE(it, live.end());
      live.erase(it);
    } else {
      const usize victim = uniform_index(rng, live.size());
      ASSERT_TRUE(q->cancel(live[victim].second)) << q->name();
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    f64 truth = kNoEventBelow;
    for (const auto& [t, h] : live) truth = std::min(truth, t);
    const f64 bound = now + rng.uniform01() * 40.0;
    const f64 expect = truth < bound ? truth : kNoEventBelow;
    ASSERT_EQ(q->peek_time_below(bound), expect) << q->name() << " round " << round;
    ASSERT_EQ(q->size(), live.size()) << q->name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueues, EventQueueTest,
                         ::testing::ValuesIn(kAllQueueKinds),
                         [](const ::testing::TestParamInfo<QueueKind>& pi) {
                           switch (pi.param) {
                             case QueueKind::kBinaryHeap: return "BinaryHeap";
                             case QueueKind::kCalendar: return "Calendar";
                             case QueueKind::kSortedList: return "SortedList";
                           }
                           return "Unknown";
                         });

TEST(SlotTable, GenerationLifecycle) {
  SlotTable table;
  const EventHandle a = table.acquire();
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(EventHandle{}.valid());
  // pending -> cancelled exactly once.
  EXPECT_TRUE(table.cancel(a));
  EXPECT_FALSE(table.cancel(a));
  EXPECT_TRUE(table.is_cancelled(a.slot));
  table.release(a.slot);
  // Slot recycles with a bumped generation; the old handle stays dead.
  const EventHandle b = table.acquire();
  EXPECT_EQ(b.slot, a.slot);
  EXPECT_EQ(b.gen, a.gen + 1);
  EXPECT_FALSE(table.cancel(a));
  EXPECT_TRUE(table.cancel(b));
  table.release(b.slot);
  EXPECT_EQ(table.capacity(), 1u);  // one physical slot served everything
}

TEST(QueueEquivalence, IdenticalPopSequences) {
  auto heap = make_event_queue(QueueKind::kBinaryHeap);
  auto cal = make_event_queue(QueueKind::kCalendar);
  RngStream rng(11, "equiv");
  u64 seq = 1;
  f64 now = 0.0;
  for (int round = 0; round < 5000; ++round) {
    if (rng.uniform01() < 0.6 || heap->empty()) {
      const f64 t = now + rng.uniform01() * 50.0;
      heap->push(ev(t, seq));
      cal->push(ev(t, seq));
      ++seq;
    } else {
      const EventEntry a = heap->pop();
      const EventEntry b = cal->pop();
      EXPECT_DOUBLE_EQ(a.time, b.time);
      EXPECT_EQ(a.seq, b.seq);
      now = a.time;
    }
  }
  while (!heap->empty()) {
    ASSERT_FALSE(cal->empty());
    const EventEntry a = heap->pop();
    const EventEntry b = cal->pop();
    EXPECT_DOUBLE_EQ(a.time, b.time);
    EXPECT_EQ(a.seq, b.seq);
  }
  EXPECT_TRUE(cal->empty());
}

TEST(QueueEquivalence, FuzzedScheduleCancelRescheduleAcrossAllKinds) {
  // Differential fuzz against the sorted-list oracle: every queue kind
  // sees the same schedule / pop / cancel-pending / cancel-stale stream
  // (stale = fired, double-cancelled, or recycled-slot handles) and must
  // agree on size, emptiness, cancel outcome and exact pop order.
  std::vector<std::unique_ptr<EventQueue>> queues;
  for (const QueueKind kind : kAllQueueKinds) queues.push_back(make_event_queue(kind));
  RngStream rng(23, "fuzz");
  // Per-seq handles, one per queue; pending tracks live seqs.
  std::unordered_map<u64, std::vector<EventHandle>> handles;
  std::vector<u64> pending;
  std::vector<u64> dead;  // fired or cancelled seqs; handles kept (stale)
  u64 seq = 1;
  f64 now = 0.0;
  for (int round = 0; round < 20000; ++round) {
    const f64 dice = rng.uniform01();
    if (dice < 0.55 || pending.empty()) {
      const f64 t = now + rng.uniform01() * 40.0;
      auto& hs = handles[seq];
      for (auto& q : queues) hs.push_back(q->push(ev(t, seq)));
      pending.push_back(seq);
      ++seq;
    } else if (dice < 0.80) {
      const EventEntry a = queues[0]->pop();
      for (usize k = 1; k < queues.size(); ++k) {
        const EventEntry b = queues[k]->pop();
        ASSERT_DOUBLE_EQ(a.time, b.time) << queues[k]->name();
        ASSERT_EQ(a.seq, b.seq) << queues[k]->name();
      }
      now = a.time;
      pending.erase(std::find(pending.begin(), pending.end(), a.seq));
      dead.push_back(a.seq);  // its handles are now stale
    } else if (dice < 0.92) {
      // Cancel a random pending seq: must succeed everywhere.
      const u64 victim = pending[uniform_index(rng, pending.size())];
      auto& hs = handles[victim];
      for (usize k = 0; k < queues.size(); ++k) {
        ASSERT_TRUE(queues[k]->cancel(hs[k])) << queues[k]->name();
      }
      pending.erase(std::find(pending.begin(), pending.end(), victim));
      dead.push_back(victim);
    } else if (!dead.empty()) {
      // Cancel through a stale handle — the event fired or was already
      // cancelled, and its slot may since have been recycled for a live
      // event. Must be a no-op everywhere (the recycled tenant survives).
      const u64 bogus = dead[uniform_index(rng, dead.size())];
      auto& hs = handles[bogus];
      for (usize k = 0; k < queues.size(); ++k) {
        ASSERT_FALSE(queues[k]->cancel(hs[k])) << queues[k]->name();
      }
    }
    for (auto& q : queues) {
      ASSERT_EQ(q->size(), pending.size()) << q->name();
      ASSERT_EQ(q->empty(), pending.empty()) << q->name();
    }
  }
  // Drain: every queue must agree to the last event.
  while (!queues[0]->empty()) {
    const EventEntry a = queues[0]->pop();
    for (usize k = 1; k < queues.size(); ++k) {
      ASSERT_FALSE(queues[k]->empty()) << queues[k]->name();
      const EventEntry b = queues[k]->pop();
      ASSERT_EQ(a.seq, b.seq) << queues[k]->name();
    }
    pending.erase(std::find(pending.begin(), pending.end(), a.seq));
  }
  EXPECT_TRUE(pending.empty());
  for (auto& q : queues) EXPECT_TRUE(q->empty()) << q->name();
}

TEST(QueueFactory, NamesAreDistinctAndMatchKindNames) {
  for (const QueueKind kind : kAllQueueKinds) {
    EXPECT_STREQ(make_event_queue(kind)->name(), queue_kind_name(kind));
  }
  EXPECT_STREQ(make_event_queue(QueueKind::kBinaryHeap)->name(), "binary-heap");
  EXPECT_STREQ(make_event_queue(QueueKind::kCalendar)->name(), "calendar");
  EXPECT_STREQ(make_event_queue(QueueKind::kSortedList)->name(), "sorted-list");
}

}  // namespace
}  // namespace mobichk::des
