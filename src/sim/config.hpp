// Simulation configuration: the paper's model parameters (§5.1) plus the
// extensions this library adds (alternate mobility models, checkpoint
// latency, storage accounting).
#pragma once

#include "core/recovery_time.hpp"
#include "des/types.hpp"
#include "net/network.hpp"

namespace mobichk::sim {

/// Which mobility model drives cell residence and switching. The paper
/// uses exponential residence with uniform target cells; the alternates
/// let experiments vary the mobility assumptions (§1: "several models
/// have been considered for the hosts mobility").
enum class MobilityModelKind : u8 {
  /// Exponential residence; switch target uniform over the other MSSs.
  kPaperUniform,
  /// Exponential residence; cells form a ring, switches go to a ring
  /// neighbour (models geographic adjacency).
  kRingNeighbor,
  /// Pareto (heavy-tailed) residence with the same mean; uniform targets.
  /// Models the empirical observation that cell dwell times are bursty.
  kParetoResidence,
};

const char* mobility_model_name(MobilityModelKind kind) noexcept;

/// Which failure pattern the crash engine injects (ROADMAP: executed
/// recovery — the paper's §6 future work).
enum class CrashMode : u8 {
  kNone = 0,     ///< No failures (the default; runs stay trace-identical).
  kMhCrash,      ///< Independent single-MH crashes.
  kCorrelated,   ///< `correlated` hosts fail at the same instant.
  kCellOutage,   ///< Every host attached to one MSS fails at once.
};

const char* crash_mode_name(CrashMode mode) noexcept;

/// Crash-scenario parameters. Failures perturb the trace, so (like
/// ckpt_latency) executed recovery is meaningful in single-protocol runs;
/// multi-protocol runs still record per-slot rollback measurements
/// against the shared trace, but only slot 0's line is physically
/// restored.
struct FaultConfig {
  CrashMode mode = CrashMode::kNone;
  f64 first_crash_at = 0.0;  ///< Time of the first failure; > 0 when enabled.
  f64 crash_interval = 0.0;  ///< Mean gap to the next failure (0 = one-shot).
  u32 max_crashes = 1;       ///< Stop injecting after this many failures.
  /// Victim chosen uniformly at random among live hosts (or cells).
  static constexpr u32 kRandomTarget = 0xFFFFFFFFu;
  u32 target = kRandomTarget;  ///< Fixed victim host (kMhCrash) or cell (kCellOutage).
  u32 correlated = 2;          ///< Victim count under kCorrelated.
  core::RecoveryTimeConfig recovery;  ///< Cost model driving executed recovery.

  bool enabled() const noexcept { return mode != CrashMode::kNone; }
  void validate(u32 n_hosts, u32 n_mss) const;
};

/// All parameters of one simulation run.
struct SimConfig {
  net::NetworkConfig network;  ///< 10 MHs, 5 MSSs, 0.01 tu hops by default.

  f64 sim_length = 100'000.0;  ///< Run horizon in time units.
  u64 seed = 1;                ///< Root seed; fully determines the run.

  // -- workload (paper §5.1) --------------------------------------------
  f64 internal_mean = 1.0;  ///< Mean execution time of one internal event.
  /// Mean time between two communication operations of a host; the gap is
  /// filled with internal events (gap / internal_mean of them on average).
  /// The paper does not state its communication rate explicitly; this
  /// default is calibrated so the relative shapes of Figures 1-6 (who
  /// wins, by what factor, where the QBC gain peaks) match the paper —
  /// see DESIGN.md ("Substitutions") and EXPERIMENTS.md.
  f64 comm_mean = 20.0;
  f64 p_send = 0.4;         ///< P_s: a communication is a send w.p. P_s, else a receive.
  u32 payload_bytes = 256;  ///< Application payload per message.

  // -- mobility (paper §5.1) --------------------------------------------
  MobilityModelKind mobility_model = MobilityModelKind::kPaperUniform;
  f64 t_switch = 1'000.0;     ///< Mean cell-residence time of slow MHs.
  f64 p_switch = 1.0;         ///< Prob. the next mobility event is a switch (else disconnect).
  f64 disconnect_residence_divisor = 3.0;  ///< Residence before disconnecting = T_switch / this.
  f64 disconnect_mean = 1'000.0;           ///< Mean disconnection duration.
  f64 heterogeneity = 0.0;    ///< H: fraction of fast MHs.
  f64 fast_factor = 10.0;     ///< Fast MHs use T_switch / fast_factor.

  // -- extensions ---------------------------------------------------------
  /// Time the host is stalled per checkpoint (paper §5.1 remark: results
  /// are insensitive to it; ablation ABL1 reproduces that). Meaningful
  /// only in single-protocol runs (a non-zero value perturbs the trace).
  f64 ckpt_latency = 0.0;

  /// Crash-scenario engine parameters (disabled by default).
  FaultConfig faults;

  /// Number of fast MHs implied by `heterogeneity` (paper convention:
  /// hosts 0..k-1 are the fast ones).
  u32 fast_host_count() const noexcept;

  /// Mean residence time for a given host under the heterogeneity split.
  f64 residence_mean_for(net::HostId host) const noexcept;

  void validate() const;
};

}  // namespace mobichk::sim
