#include "des/warmup.hpp"

#include <gtest/gtest.h>

#include "des/distributions.hpp"
#include "des/rng.hpp"

namespace mobichk::des {
namespace {

TEST(Mser, EmptySeriesIsSafe) {
  const MserResult r = mser({});
  EXPECT_EQ(r.truncation_index, 0u);
  EXPECT_DOUBLE_EQ(r.truncated_mean, 0.0);
}

TEST(Mser, TinySeriesReturnsPlainMean) {
  const MserResult r = mser({2.0, 4.0, 6.0});
  EXPECT_EQ(r.truncation_index, 0u);
  EXPECT_DOUBLE_EQ(r.truncated_mean, 4.0);
}

TEST(Mser, StationarySeriesKeepsEverything) {
  std::vector<f64> series;
  RngStream rng(1, "mser-flat");
  for (int i = 0; i < 500; ++i) series.push_back(10.0 + rng.uniform01());
  const MserResult r = mser(series);
  // No transient: truncation should be at (or very near) zero.
  EXPECT_LE(r.truncation_batches, 5u);
  EXPECT_NEAR(r.truncated_mean, 10.5, 0.1);
}

TEST(Mser, DetectsInitialTransient) {
  // A decaying start-up bias on top of a stationary level.
  std::vector<f64> series;
  RngStream rng(2, "mser-trans");
  for (int i = 0; i < 1000; ++i) {
    const f64 bias = 50.0 * std::exp(-static_cast<f64>(i) / 40.0);
    series.push_back(10.0 + bias + rng.uniform01());
  }
  const MserResult r = mser(series);
  EXPECT_GT(r.truncation_index, 50u);   // the bias region is discarded
  EXPECT_LT(r.truncation_index, 500u);  // but not half the run
  EXPECT_NEAR(r.truncated_mean, 10.5, 0.5);
}

TEST(Mser, TruncatedMeanMatchesManualAverage) {
  std::vector<f64> series{100.0, 100.0, 100.0, 100.0, 100.0,  // one hot batch
                          1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0,
                          1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  const MserResult r = mser(series, 5);
  EXPECT_EQ(r.truncation_batches, 1u);
  EXPECT_EQ(r.truncation_index, 5u);
  EXPECT_DOUBLE_EQ(r.truncated_mean, 1.0);
}

TEST(Mser, TruncationCappedAtHalf) {
  // A series that keeps trending never settles; MSER must still not
  // discard more than half.
  std::vector<f64> series;
  for (int i = 0; i < 200; ++i) series.push_back(static_cast<f64>(i));
  const MserResult r = mser(series);
  EXPECT_LE(r.truncation_batches, 20u);  // 40 batches total -> at most 20
}

TEST(Mser, BatchSizeZeroTreatedAsOne) {
  const MserResult r = mser({5.0, 5.0, 5.0, 5.0}, 0);
  EXPECT_DOUBLE_EQ(r.truncated_mean, 5.0);
}

}  // namespace
}  // namespace mobichk::des
