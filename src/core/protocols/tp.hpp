// TP: the two-phase-based protocol of Acharya & Badrinath (an adaptation
// of Russell's protocol to mobile systems). Paper §4.1.
//
// Rule: each host owns a boolean phase; sending sets phase := SEND; a
// receive while phase == SEND forces a checkpoint (and resets the phase).
// Every checkpoint interval therefore contains all its receives before
// all its sends, which is what makes the dependency-vector recovery line
// consistent (Russell 1980).
//
// Control information: two vectors of n integers ride on every message —
// CKPT[] (transitive dependency on checkpoint intervals) and LOC[]
// (transitive dependency on MH locations, for efficient retrieval over
// the wired network). This is why TP does not scale in the number of
// hosts, the paper's point (3).
#pragma once

#include <vector>

#include "core/protocol.hpp"

namespace mobichk::core {

class TpProtocol final : public CheckpointProtocol {
 public:
  const char* name() const noexcept override { return "TP"; }

  void host_init(const net::MobileHost& host) override;
  net::Piggyback make_piggyback(const net::MobileHost& host) override;
  void handle_receive(const net::MobileHost& host, const net::AppMessage& msg,
                      const net::Piggyback& pb) override;
  void handle_cell_switch(const net::MobileHost& host, net::MssId from, net::MssId to) override;
  void handle_disconnect(const net::MobileHost& host) override;

  /// Test access: true when the host's phase is SEND.
  bool phase_is_send(net::HostId host) const { return per_host_.at(host).phase_send; }
  /// Test access: current requirement vector (see ckpt_req below).
  const std::vector<u32>& requirement_vector(net::HostId host) const {
    return per_host_.at(host).ckpt_req;
  }

 protected:
  void do_bind() override;

 private:
  struct HostState {
    bool phase_send = false;  ///< init: RECV.
    u64 ckpt_count = 0;       ///< Checkpoints taken so far (= next ordinal).
    /// ckpt_req[j]: minimal checkpoint ordinal of host j that a recovery
    /// line anchored at this host's *next* checkpoint requires (0 = only
    /// j's initial checkpoint, i.e. no dependency).
    std::vector<u32> ckpt_req;
    /// loc[j]: last known MSS of host j (retrieval metadata).
    std::vector<u32> loc;
  };

  void basic_checkpoint(const net::MobileHost& host);
  void checkpoint(const net::MobileHost& host, CheckpointKind kind, net::MsgId trigger = 0);

  std::vector<HostState> per_host_;
};

}  // namespace mobichk::core
