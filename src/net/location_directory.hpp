// Hierarchical location directory: per-MSS cell membership under a
// top-level host -> cell map.
//
// The substrate needs two directions of lookup: "which cell is host h
// in" (every routing decision) and "which hosts are in cell m" (cell
// outages, cell-population accounting). The first is a dense array read;
// the second used to be an O(n_hosts) scan, which at city scale turns a
// single cell-outage pick into a 10^5-element sweep. The directory keeps
// each cell's members in an intrusive doubly-linked list threaded through
// two dense arrays, so membership moves on handoff/reconnect are O(1) and
// cell enumeration is O(cell population).
//
// Iteration order within a cell is unspecified (most-recently-moved
// first); callers that need a canonical order must sort.
#pragma once

#include <vector>

#include "des/types.hpp"
#include "net/ids.hpp"

namespace mobichk::net {

class LocationDirectory {
 public:
  /// Builds the directory with every host unplaced; call place() for each.
  void init(u32 n_hosts, u32 n_mss) {
    head_.assign(n_mss, -1);
    population_.assign(n_mss, 0);
    next_.assign(n_hosts, -1);
    prev_.assign(n_hosts, -1);
    cell_.assign(n_hosts, kUnplaced);
  }

  /// Current cell of `host` (its last cell while disconnected).
  MssId cell_of(HostId host) const { return static_cast<MssId>(cell_[host]); }

  /// Number of hosts whose current/last cell is `mss`.
  u32 population(MssId mss) const { return population_[mss]; }

  /// Moves `host` into `mss`'s cell list (O(1)); no-op if already there.
  void move(HostId host, MssId mss) {
    if (cell_[host] == static_cast<i64>(mss)) return;
    if (cell_[host] != kUnplaced) unlink(host);
    link(host, mss);
  }

  /// Calls `f(HostId)` for every member of `mss`'s cell.
  template <typename F>
  void for_each_in_cell(MssId mss, F&& f) const {
    for (i64 h = head_[mss]; h != -1; h = next_[static_cast<usize>(h)]) {
      f(static_cast<HostId>(h));
    }
  }

  /// Materialised membership of `mss`'s cell, sorted by host id (the
  /// canonical order for deterministic victim picks).
  std::vector<HostId> hosts_in_cell(MssId mss) const {
    std::vector<HostId> out;
    out.reserve(population_[mss]);
    for_each_in_cell(mss, [&out](HostId h) { out.push_back(h); });
    // Insertion sort into ascending order: cell lists are small relative
    // to n and enumeration is off the hot path.
    for (usize i = 1; i < out.size(); ++i) {
      HostId v = out[i];
      usize j = i;
      for (; j > 0 && out[j - 1] > v; --j) out[j] = out[j - 1];
      out[j] = v;
    }
    return out;
  }

 private:
  static constexpr i64 kUnplaced = -2;

  void link(HostId host, MssId mss) {
    cell_[host] = static_cast<i64>(mss);
    prev_[host] = -1;
    next_[host] = head_[mss];
    if (head_[mss] != -1) prev_[static_cast<usize>(head_[mss])] = static_cast<i64>(host);
    head_[mss] = static_cast<i64>(host);
    ++population_[mss];
  }

  void unlink(HostId host) {
    const MssId mss = static_cast<MssId>(cell_[host]);
    if (prev_[host] != -1) {
      next_[static_cast<usize>(prev_[host])] = next_[host];
    } else {
      head_[mss] = next_[host];
    }
    if (next_[host] != -1) prev_[static_cast<usize>(next_[host])] = prev_[host];
    --population_[mss];
  }

  std::vector<i64> head_;       ///< Per cell: first member host (-1 = empty).
  std::vector<u32> population_; ///< Per cell: member count.
  std::vector<i64> next_;       ///< Per host: next member in its cell (-1 = end).
  std::vector<i64> prev_;       ///< Per host: previous member (-1 = head).
  std::vector<i64> cell_;       ///< Per host: current cell (kUnplaced before place).
};

}  // namespace mobichk::net
