// Application-message representation, including the protocol piggyback.
#pragma once

#include <vector>

#include "des/types.hpp"
#include "net/ids.hpp"

namespace mobichk::net {

/// Protocol control information piggybacked on an application message.
///
/// This is a generic container covering the needs of every protocol in the
/// suite: index-based protocols use `sn` only; the two-phase protocol (TP)
/// uses the two transitive-dependency vectors; coordinated protocols may
/// use `tag` for markers. `wire_bytes()` reports how much control data the
/// message actually carries, which feeds the channel-overhead accounting
/// the paper's section 2.2 motivates.
struct Piggyback {
  u64 sn = 0;               ///< Index-based protocols: sender's sequence number.
  std::vector<u32> vec_a;   ///< TP: CKPT[] transitive dependency on checkpoint intervals.
  std::vector<u32> vec_b;   ///< TP: LOC[] transitive dependency on MH locations.
  u32 tag = 0;              ///< Protocol-specific marker / flag.
  bool has_sn = false;      ///< Whether `sn` is meaningful (affects wire size).
  bool has_tag = false;     ///< Whether `tag` is carried (affects wire size).

  /// Bytes of control information this piggyback adds on the wire.
  usize wire_bytes() const noexcept {
    usize bytes = 0;
    if (has_sn) bytes += sizeof(u64);
    bytes += (vec_a.size() + vec_b.size()) * sizeof(u32);
    // A carried tag costs wire bytes even when its value happens to be 0;
    // gating on the value silently undercounted those messages.
    if (has_tag) bytes += sizeof(u32);
    return bytes;
  }
};

/// An application message in flight or in a mailbox.
struct AppMessage {
  u64 id = 0;               ///< Globally unique message id.
  HostId src = 0;
  HostId dst = 0;
  u32 payload_bytes = 0;    ///< Application payload size (excl. piggyback).
  des::Time sent_at = 0.0;
  u64 send_pos = 0;         ///< Sender's event position at send (consistency oracle).
  Piggyback pb;

  usize wire_bytes() const noexcept { return payload_bytes + pb.wire_bytes(); }
};

}  // namespace mobichk::net
