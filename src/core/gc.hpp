// Checkpoint garbage collection for MSS stable storage.
//
// MSS storage is finite; once a recovery line is *stable* — every host
// has taken a checkpoint with sequence number >= M — no conceivable
// rollback needs anything older than the line's members: the maximum
// consistent cut below any future failure dominates the stable line
// componentwise, so everything strictly older than a member is dead.
//
// This module analyses a run's checkpoint log: what is the current
// stable index, which checkpoints are collectible, and how storage
// occupancy would have evolved with GC running continuously — the
// operational complement to the paper's storage discussion (§2.1 a).
#pragma once

#include <vector>

#include "core/checkpoint_log.hpp"
#include "core/recovery.hpp"
#include "core/storage.hpp"
#include "des/types.hpp"

namespace mobichk::core {

/// Snapshot of what GC can reclaim at the end of a run.
struct GcAnalysis {
  /// Largest index every host has reached (the stable line's index).
  u64 stable_index = 0;
  /// The stable recovery line itself (never has virtual members).
  GlobalCheckpoint stable_line;
  /// Per host: checkpoints strictly older than its line member.
  std::vector<u64> collectible_per_host;
  /// Per MSS: collectible checkpoints stored there.
  std::vector<u64> collectible_per_mss;

  u64 total_collectible() const noexcept;
  u64 total_retained(const CheckpointLog& log) const;
};

/// Analyses GC for a finished run. `rule` is the protocol's line rule
/// (QBC: kLastEqual). `n_mss` sizes the per-MSS breakdown.
GcAnalysis analyze_gc(const CheckpointLog& log, IndexLineRule rule, u32 n_mss);

/// One point of the storage-occupancy timeline.
struct OccupancySample {
  des::Time time = 0.0;
  u64 live_without_gc = 0;  ///< Checkpoints ever taken up to `time`.
  u64 live_with_gc = 0;     ///< Checkpoints a continuous GC would retain.
};

/// Bytes a GC pass reclaims, per the stable-line analysis. Requires a
/// StorageModel built with track_history.
u64 gc_reclaimable_bytes(const GcAnalysis& gc, const StorageModel& storage);

/// Replays the run at `samples` evenly spaced instants and reports how
/// many checkpoints stable storage holds with and without continuous GC.
std::vector<OccupancySample> gc_occupancy_timeline(const CheckpointLog& log, IndexLineRule rule,
                                                   des::Time horizon, usize samples);

}  // namespace mobichk::core
