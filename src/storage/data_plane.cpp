#include "storage/data_plane.hpp"

#include <cmath>
#include <stdexcept>

#include "des/sharded.hpp"
#include "net/network.hpp"
#include "obs/timeline.hpp"

namespace mobichk::storage {

const char* migration_strategy_name(MigrationStrategy strategy) noexcept {
  switch (strategy) {
    case MigrationStrategy::kNone:
      return "none";
    case MigrationStrategy::kPreCopy:
      return "precopy";
    case MigrationStrategy::kPostCopy:
      return "postcopy";
  }
  return "?";
}

bool parse_migration_strategy(std::string_view name, MigrationStrategy& out) noexcept {
  if (name == "none") {
    out = MigrationStrategy::kNone;
    return true;
  }
  if (name == "precopy") {
    out = MigrationStrategy::kPreCopy;
    return true;
  }
  if (name == "postcopy") {
    out = MigrationStrategy::kPostCopy;
    return true;
  }
  return false;
}

void DataPlaneConfig::validate() const {
  if (full_state_bytes == 0) throw std::invalid_argument("DataPlaneConfig: zero state size");
  if (dirty_rate < 0.0) throw std::invalid_argument("DataPlaneConfig: negative dirty rate");
  if (!(storage_bandwidth > 0.0) || !(wireless_bandwidth > 0.0) || !(wired_bandwidth > 0.0)) {
    throw std::invalid_argument("DataPlaneConfig: bandwidths must be > 0");
  }
  if (precopy_rounds == 0) throw std::invalid_argument("DataPlaneConfig: zero pre-copy rounds");
  if (precopy_stop_fraction < 0.0 || precopy_stop_fraction > 1.0) {
    throw std::invalid_argument("DataPlaneConfig: stop fraction outside [0, 1]");
  }
}

DataPlane::DataPlane(des::Simulator& main, const net::MssTopology& topology, DataPlaneConfig cfg,
                     u32 n_hosts, f64 wireless_latency, f64 wired_latency)
    : main_(main),
      topology_(topology),
      cfg_(cfg),
      wireless_latency_(wireless_latency),
      wired_latency_(wired_latency),
      hosts_(n_hosts) {
  cfg_.validate();
  storage_ = make_stable_storage(cfg_.model, topology.n_mss(), cfg_.storage_bandwidth);
}

u64 DataPlane::price_checkpoint(net::HostId host, des::Time now) {
  HostState& hs = hosts_.at(host);
  u64 upload = cfg_.full_state_bytes;
  if (cfg_.incremental && hs.has_checkpoint) {
    // Same dirtying model as core::StorageModel, so the two byte
    // accounts agree when both are enabled.
    const f64 dt = now - hs.last_time;
    const f64 dirty_fraction = 1.0 - std::exp(-cfg_.dirty_rate * dt);
    upload = static_cast<u64>(
        std::ceil(static_cast<f64>(cfg_.full_state_bytes) * dirty_fraction));
  }
  hs.has_checkpoint = true;
  hs.last_time = now;
  return upload;
}

u64 DataPlane::on_checkpoint(net::HostId host, net::MssId mss, des::Time now, u8 ckpt_kind) {
  obs::ProfScope prof_scope(prof_ != nullptr ? &prof_->lane().storage : nullptr);
  const u64 upload = price_checkpoint(host, now);
  PendingOp op;
  op.t = now;
  op.host = host;
  op.from = mss;
  op.to = mss;
  op.bytes = upload;
  op.kind = 0;
  op.ckpt_kind = ckpt_kind;
  enqueue_or_process(op);
  return upload;
}

void DataPlane::on_handoff(net::HostId host, net::MssId from, net::MssId to, des::Time now) {
  obs::ProfScope prof_scope(prof_ != nullptr ? &prof_->lane().storage : nullptr);
  PendingOp op;
  op.t = now;
  op.host = host;
  op.from = from;
  op.to = to;
  op.kind = 1;
  enqueue_or_process(op);
}

void DataPlane::enqueue_or_process(const PendingOp& op) {
  if (des::ShardContext* ctx = des::current_shard()) {
    slices_.at(ctx->shard).ops.push_back(op);
  } else {
    process(op);
  }
}

void DataPlane::enable_sharding(u32 n_shards) { slices_.resize(n_shards); }

void DataPlane::merge_window() {
  obs::ProfScope prof_scope(prof_ != nullptr ? &prof_->lane().storage : nullptr);
  usize remaining = 0;
  for (const Slice& s : slices_) remaining += s.ops.size();
  if (remaining == 0) return;
  // K-way merge on (time, shard, index): each slice is time-ordered by
  // construction, so the merged order equals the sequential processing
  // order and the FIFO admissions / placement moves reproduce exactly.
  std::vector<usize> cur(slices_.size(), 0);
  while (remaining > 0) {
    usize best = slices_.size();
    for (usize s = 0; s < slices_.size(); ++s) {
      if (cur[s] >= slices_[s].ops.size()) continue;
      if (best == slices_.size() || slices_[s].ops[cur[s]].t < slices_[best].ops[cur[best]].t) {
        best = s;
      }
    }
    process(slices_[best].ops[cur[best]]);
    ++cur[best];
    --remaining;
  }
  for (Slice& s : slices_) s.ops.clear();
}

void DataPlane::process(const PendingOp& op) {
  if (op.kind == 0) {
    process_checkpoint(op);
  } else {
    process_handoff(op);
  }
}

void DataPlane::process_checkpoint(const PendingOp& op) {
  HostState& hs = hosts_.at(op.host);
  ++stats_.checkpoints;
  stats_.upload_bytes += op.bytes;
  stats_.full_bytes += cfg_.full_state_bytes;
  if (hs.placement == net::kNoMss) hs.placement = op.from;  // first image lands here
  const des::Time arrive =
      op.t + wireless_latency_ + static_cast<f64>(op.bytes) / cfg_.wireless_bandwidth;
  const ServiceResult r = storage_->write(op.from, op.bytes, arrive);
  stats_.queue_delay += r.queue_delay;
  stats_.transfer_time += r.done - op.t;
  schedule_completion(kSubUpload, op.host, op.from, op.bytes, op.t, r.done);
  sample_locality(hs, op.from);
}

void DataPlane::process_handoff(const PendingOp& op) {
  HostState& hs = hosts_.at(op.host);
  if (cfg_.migration != MigrationStrategy::kNone && hs.placement != net::kNoMss &&
      hs.placement != op.to) {
    migrate(hs, op.host, op.to, op.t);
  }
  sample_locality(hs, op.to);
}

void DataPlane::migrate(HostState& hs, net::HostId host, net::MssId to, des::Time now) {
  const u32 hops = topology_.hops(hs.placement, to);
  const f64 lat = static_cast<f64>(hops) * wired_latency_;
  const f64 state = static_cast<f64>(cfg_.full_state_bytes);
  f64 copy_time = 0.0;
  f64 stall = 0.0;
  u64 total = 0;
  if (cfg_.migration == MigrationStrategy::kPostCopy) {
    // Placement flips immediately; the host stalls only for the control
    // round-trip while the image back-fills in the background.
    stall = lat;
    copy_time = lat + state / cfg_.wired_bandwidth;
    total = cfg_.full_state_bytes;
  } else {
    // Pre-copy: each round copies the bytes dirtied during the previous
    // round while the host keeps executing; the final stop-and-copy of
    // the residual dirty set is the only host-visible stall.
    u64 round = cfg_.full_state_bytes;
    u64 residual = cfg_.full_state_bytes;
    u32 rounds = 0;
    for (;;) {
      const f64 t_r = lat + static_cast<f64>(round) / cfg_.wired_bandwidth;
      copy_time += t_r;
      total += round;
      ++rounds;
      residual = static_cast<u64>(
          std::ceil(state * (1.0 - std::exp(-cfg_.dirty_rate * t_r))));
      if (residual > cfg_.full_state_bytes) residual = cfg_.full_state_bytes;
      if (rounds >= cfg_.precopy_rounds ||
          static_cast<f64>(residual) <= cfg_.precopy_stop_fraction * state) {
        break;
      }
      round = residual;
    }
    stall = lat + static_cast<f64>(residual) / cfg_.wired_bandwidth;
    total += residual;
  }
  // The image leaves the source device and lands on the destination's;
  // both admissions contend with concurrent checkpoint uploads there.
  const ServiceResult src = storage_->read(hs.placement, total, now);
  const ServiceResult dst = storage_->write(to, total, now + copy_time + stall);
  stats_.queue_delay += src.queue_delay + dst.queue_delay;
  ++stats_.migrations;
  stats_.migration_bytes += total;
  stats_.migration_copy_time += copy_time;
  stats_.migration_stall += stall;
  if (network_ != nullptr) network_->account_bulk_wired(hops, total);
  hs.placement = to;
  schedule_completion(kSubMigration, host, to, total, now, dst.done);
}

void DataPlane::sample_locality(const HostState& hs, net::MssId host_at) {
  if (hs.placement == net::kNoMss) return;
  ++stats_.locality_samples;
  stats_.locality_hops += topology_.hops(host_at, hs.placement);
}

des::Time DataPlane::recovery_fetch(net::HostId host, net::MssId at_mss, des::Time now) {
  obs::ProfScope prof_scope(prof_ != nullptr ? &prof_->lane().storage : nullptr);
  HostState& hs = hosts_.at(host);
  if (hs.placement == net::kNoMss) return 0.0;
  const u64 bytes = cfg_.full_state_bytes;
  const u32 hops = topology_.hops(at_mss, hs.placement);
  const ServiceResult r = storage_->read(hs.placement, bytes, now);
  f64 extra = r.done - now;
  if (hops > 0) {
    // The image is remote: pay the wired legs on top of the device read.
    extra += static_cast<f64>(hops) * wired_latency_ +
             static_cast<f64>(bytes) / cfg_.wired_bandwidth;
    if (network_ != nullptr) network_->account_bulk_wired(hops, bytes);
  }
  ++stats_.fetches;
  stats_.fetch_bytes += bytes;
  stats_.fetch_hops += hops;
  stats_.fetch_time += extra;
  stats_.queue_delay += r.queue_delay;
  schedule_completion(kSubFetch, host, hs.placement, bytes, now, now + extra);
  return extra;
}

void DataPlane::schedule_completion(u8 sub, net::HostId host, net::MssId mss, u64 bytes,
                                    des::Time start, des::Time done) {
  u32 idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
    pending_[idx] = Transfer{host, mss, bytes, start, sub};
  } else {
    idx = static_cast<u32>(pending_.size());
    pending_.push_back(Transfer{host, mss, bytes, start, sub});
  }
  des::EventPayload p;
  p.target = this;
  p.kind = des::EventKind::kCheckpointTransfer;
  p.sub = sub;
  p.a = idx;
  main_.schedule_at(done, p);
}

void DataPlane::on_event(const des::EventPayload& payload) {
  obs::ProfScope prof_scope(prof_ != nullptr ? &prof_->lane().storage : nullptr);
  const Transfer t = pending_.at(payload.a);
  free_.push_back(payload.a);
  ++stats_.transfers_completed;
  const des::Time now = main_.now();
  if (sink_ != nullptr) {
    des::TraceRecord rec;
    rec.time = now;
    rec.actor = t.host;
    rec.kind = t.sub == kSubUpload ? des::TraceKind::kStorageWrite
                                   : des::TraceKind::kStorageTransfer;
    rec.a = t.bytes;
    rec.b = (static_cast<u64>(t.sub) << 32) | t.mss;
    sink_->record(rec);
  }
  if (timeline_ != nullptr) {
    obs::ProbeEvent e;
    e.t = t.start;
    e.kind = obs::ProbeKind::kStorageTransfer;
    e.actor = static_cast<i32>(t.host);
    e.track = static_cast<i32>(t.mss);
    e.a = t.bytes;
    e.b = t.sub;
    e.value = now - t.start;
    timeline_->record(e);
  }
}

}  // namespace mobichk::storage
