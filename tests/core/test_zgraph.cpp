#include "core/zgraph.hpp"

#include <gtest/gtest.h>

namespace mobichk::core {
namespace {

CheckpointRecord make(net::HostId host, u64 sn, u64 pos,
                      CheckpointKind kind = CheckpointKind::kBasic) {
  CheckpointRecord rec;
  rec.host = host;
  rec.sn = sn;
  rec.event_pos = pos;
  rec.kind = kind;
  return rec;
}

/// Two hosts, two checkpoints each (initial at 0 plus one at pos 10).
struct TwoHostFixture {
  TwoHostFixture() : log(2) {
    log.append(make(0, 0, 0, CheckpointKind::kInitial));
    log.append(make(1, 0, 0, CheckpointKind::kInitial));
    log.append(make(0, 1, 10));
    log.append(make(1, 1, 10));
  }
  CheckpointLog log;
  MessageLog messages;
};

TEST(IntervalGraph, IntervalOfRespectsCheckpointCuts) {
  TwoHostFixture f;
  IntervalGraph g(f.log, f.messages);
  EXPECT_EQ(g.interval_of(0, 1), 0u);
  EXPECT_EQ(g.interval_of(0, 10), 0u);   // position 10 is inside the first cut
  EXPECT_EQ(g.interval_of(0, 11), 1u);   // first event after the pos-10 checkpoint
  EXPECT_EQ(g.intervals(0), 2u);
}

TEST(IntervalGraph, NoMessagesNoZPaths) {
  TwoHostFixture f;
  IntervalGraph g(f.log, f.messages);
  EXPECT_FALSE(g.on_z_cycle(0, 1));
  EXPECT_FALSE(g.z_path_exists(0, 0, 1, 1));
  EXPECT_FALSE(g.z_path_exists(0, 0, 0, 1));  // forward-only reach is not a Z-path
  EXPECT_TRUE(g.useless_checkpoints().empty());
}

TEST(IntervalGraph, CausalPathIsZPath) {
  TwoHostFixture f;
  // m: sent by 0 in interval 0 (pos 3), received by 1 in interval 0 (pos 4).
  f.messages.note_send(1, 0, 1, 3);
  f.messages.note_receive(1, 4, 0);
  IntervalGraph g(f.log, f.messages);
  // Z-path from C_{0,0} to C_{1,1}: sent after 0's initial, received
  // before 1's pos-10 checkpoint.
  EXPECT_TRUE(g.z_path_exists(0, 0, 1, 1));
  // But not to C_{1,0}: nothing is received before position 0.
  EXPECT_FALSE(g.z_path_exists(0, 0, 1, 0));
  EXPECT_FALSE(g.on_z_cycle(0, 1));
  EXPECT_FALSE(g.on_z_cycle(1, 1));
}

TEST(IntervalGraph, ClassicZCycle) {
  // The textbook uselessness pattern: m1 from 0's interval 1 is received
  // by 1 in interval 1; m2 was sent by 1 in interval 1 *before* receiving
  // m1 and is received by 0 in interval 0 (before C_{0,1}). The zigzag
  // m1, m2 cycles through C_{0,1}, so C_{0,1} is useless.
  TwoHostFixture f;
  f.messages.note_send(1, 0, 1, 12);  // m1: sent in interval 1 of host 0
  f.messages.note_receive(1, 13, 0);  //     received in interval 1 of host 1
  f.messages.note_send(2, 1, 0, 11);  // m2: sent in interval 1 of host 1
  f.messages.note_receive(2, 8, 0);   //     received in interval 0 of host 0
  IntervalGraph g(f.log, f.messages);
  EXPECT_TRUE(g.on_z_cycle(0, 1));
  // Host 1's checkpoint is fine: no chain ends before its pos-10 ckpt.
  EXPECT_FALSE(g.on_z_cycle(1, 1));
  const auto useless = g.useless_checkpoints();
  ASSERT_EQ(useless.size(), 1u);
  EXPECT_EQ(useless[0]->host, 0u);
  EXPECT_EQ(useless[0]->ordinal, 1u);
}

TEST(IntervalGraph, ZigzagAllowsSendBeforeReceiveInSameInterval) {
  // Distinguishes Z-paths from causal paths: m2 is sent before m1 is
  // received (same interval), so there is NO causal path, yet the
  // zigzag still forms.
  TwoHostFixture f;
  f.messages.note_send(1, 0, 1, 12);
  f.messages.note_receive(1, 19, 0);  // received late in interval 1 of host 1
  f.messages.note_send(2, 1, 0, 11);  // sent earlier in that same interval
  f.messages.note_receive(2, 8, 0);
  IntervalGraph g(f.log, f.messages);
  EXPECT_TRUE(g.on_z_cycle(0, 1));
}

TEST(IntervalGraph, ThreeHostTransitiveZPath) {
  CheckpointLog log(3);
  MessageLog messages;
  for (net::HostId h = 0; h < 3; ++h) log.append(make(h, 0, 0, CheckpointKind::kInitial));
  log.append(make(0, 1, 10));
  log.append(make(1, 1, 10));
  log.append(make(2, 1, 10));
  // 0 -> 1 (recv interval 1), then 1 -> 2 from interval 1, recv before
  // C_{2,1}: Z-path from C_{0,1} to C_{2,1} via host 1.
  messages.note_send(1, 0, 1, 11);
  messages.note_receive(1, 12, 0);
  messages.note_send(2, 1, 2, 13);
  messages.note_receive(2, 7, 0);
  IntervalGraph g(log, messages);
  EXPECT_TRUE(g.z_path_exists(0, 1, 2, 1));
  EXPECT_FALSE(g.z_path_exists(2, 1, 0, 1));
  EXPECT_FALSE(g.on_z_cycle(0, 1));
}

TEST(IntervalGraph, LaterIntervalContinuation) {
  // m1 received in interval 0 of host 1; m2 sent from interval *1* of
  // host 1 (a later interval): still a valid continuation.
  TwoHostFixture f;
  f.messages.note_send(1, 0, 1, 11);  // interval 1 of host 0
  f.messages.note_receive(1, 5, 0);   // interval 0 of host 1
  f.messages.note_send(2, 1, 0, 15);  // interval 1 of host 1
  f.messages.note_receive(2, 9, 0);   // interval 0 of host 0: closes the cycle
  IntervalGraph g(f.log, f.messages);
  EXPECT_TRUE(g.on_z_cycle(0, 1));
}

TEST(IntervalGraph, InitialCheckpointsNeverUseless) {
  TwoHostFixture f;
  f.messages.note_send(1, 0, 1, 2);
  f.messages.note_receive(1, 3, 0);
  IntervalGraph g(f.log, f.messages);
  EXPECT_FALSE(g.on_z_cycle(0, 0));
  EXPECT_FALSE(g.on_z_cycle(1, 0));
}

TEST(IntervalGraph, RejectsEmptyHosts) {
  CheckpointLog log(2);
  log.append(make(0, 0, 0));
  MessageLog messages;
  EXPECT_THROW(IntervalGraph(log, messages), std::invalid_argument);
}

}  // namespace
}  // namespace mobichk::core
