#include "sim/html_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "des/stats.hpp"
#include "sim/json.hpp"
#include "sim/report.hpp"

namespace mobichk::sim {

SweepView SweepView::from(const FigureResult& fig) {
  SweepView view;
  view.title = fig.title;
  view.t_switch_values = fig.t_switch_values;
  view.protocol_names = fig.protocol_names;
  view.seeds_used = fig.seeds_used;
  view.target_met = fig.target_met;
  view.ledger = fig.ledger;
  for (const auto& row : fig.cells) {
    std::vector<SweepCellView> out_row;
    out_row.reserve(row.size());
    for (const des::Tally& tally : row) {
      SweepCellView cell;
      cell.mean = tally.mean();
      cell.ci95 = des::confidence_half_width(tally, 0.95);
      cell.min = tally.min();
      cell.max = tally.max();
      cell.replications = tally.count();
      out_row.push_back(cell);
    }
    view.cells.push_back(std::move(out_row));
  }
  return view;
}

SweepView SweepView::from_json(const JsonValue& json) {
  SweepView view;
  if (const JsonValue* v = json.find("title")) view.title = v->as_string();
  if (const JsonValue* v = json.find("protocols")) {
    for (const JsonValue& name : v->as_array()) view.protocol_names.push_back(name.as_string());
  }
  if (const JsonValue* v = json.find("points")) {
    for (const JsonValue& point : v->as_array()) {
      view.t_switch_values.push_back(point.at("t_switch").as_f64());
      view.seeds_used.push_back(static_cast<u32>(point.at("replications").as_u64()));
      view.target_met.push_back(point.at("target_met").as_bool());
      std::vector<SweepCellView> row;
      if (const JsonValue* cells = point.find("n_tot")) {
        for (const JsonValue& c : cells->as_array()) {
          SweepCellView cell;
          if (const JsonValue* f = c.find("mean")) cell.mean = f->as_f64();
          if (const JsonValue* f = c.find("ci95")) cell.ci95 = f->as_f64();
          if (const JsonValue* f = c.find("min")) cell.min = f->as_f64();
          if (const JsonValue* f = c.find("max")) cell.max = f->as_f64();
          if (const JsonValue* f = c.find("replications")) cell.replications = f->as_u64();
          row.push_back(cell);
        }
      }
      view.cells.push_back(std::move(row));
    }
  }
  if (const JsonValue* v = json.find("ledger")) view.ledger = sweep_ledger_from_json(*v);
  return view;
}

namespace {

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// Compact general-purpose number: integers print bare, the rest with up
/// to 6 significant digits (report text, not a round-trip format).
std::string fmt_num(f64 v) {
  std::ostringstream os;
  if (v == static_cast<f64>(static_cast<i64>(v)) && std::abs(v) < 1e15) {
    os << static_cast<i64>(v);
  } else {
    os << std::setprecision(6) << v;
  }
  return os.str();
}

std::string fmt_seconds(f64 v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(6) << v;
  return os.str();
}

std::string fmt_hash(u64 h) {
  std::ostringstream os;
  os << std::hex << std::setfill('0') << std::setw(16) << h;
  return os.str();
}

const obs::MetricSample* find_metric(const RunResult& run, const std::string& name) {
  for (const obs::MetricSample& m : run.metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const char* suffix) {
  const usize n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// A horizontal bar cell: width proportional to value / max, label inside.
void emit_bar(std::ostream& os, f64 value, f64 max, const char* css_class) {
  const f64 pct = max > 0.0 ? 100.0 * value / max : 0.0;
  os << "<td class=\"barcell\"><div class=\"bar " << css_class << "\" style=\"width:"
     << std::fixed << std::setprecision(2) << std::max(pct, 0.0) << "%\"></div></td>";
  os.unsetf(std::ios::fixed);
}

void emit_config_section(std::ostream& os, const RunResult& run) {
  const SimConfig& cfg = run.cfg;
  os << "<h2>Configuration</h2>\n<table>\n";
  auto row = [&os](const char* key, const std::string& value) {
    os << "<tr><th>" << key << "</th><td>" << value << "</td></tr>\n";
  };
  row("hosts", fmt_num(static_cast<f64>(cfg.network.n_hosts)));
  row("MSS cells", fmt_num(static_cast<f64>(cfg.network.n_mss)));
  row("sim length", fmt_num(cfg.sim_length));
  row("seed", fmt_num(static_cast<f64>(cfg.seed)));
  row("T_switch", fmt_num(cfg.t_switch));
  row("p_switch", fmt_num(cfg.p_switch));
  row("heterogeneity", fmt_num(cfg.heterogeneity));
  row("comm mean", fmt_num(cfg.comm_mean));
  row("shards", fmt_num(static_cast<f64>(run.shards)));
  os << "</table>\n";
}

void emit_summary_section(std::ostream& os, const RunResult& run) {
  os << "<h2>Run summary</h2>\n<table>\n";
  auto row = [&os](const char* key, const std::string& value) {
    os << "<tr><th>" << key << "</th><td>" << value << "</td></tr>\n";
  };
  row("events executed", fmt_num(static_cast<f64>(run.events_executed)));
  row("workload ops", fmt_num(static_cast<f64>(run.workload_ops)));
  row("wall seconds", fmt_seconds(run.wall_seconds));
  if (run.trace_hash != 0) row("trace hash", fmt_hash(run.trace_hash));
  row("invariants", run.invariants_ok ? "ok" : "<span class=\"bad\">VIOLATED</span>");
  if (run.shards > 1) {
    row("sync rounds", fmt_num(static_cast<f64>(run.sync_rounds)));
    row("barrier stall seconds", fmt_seconds(run.barrier_stall_seconds));
  }
  os << "</table>\n";
}

void emit_protocol_section(std::ostream& os, const RunResult& run) {
  if (run.protocols.empty()) return;
  os << "<h2>Protocols</h2>\n<table>\n"
     << "<tr><th>protocol</th><th>N_tot</th><th>basic</th><th>forced</th>"
     << "<th>piggyback bytes</th><th>control msgs</th><th>orphans</th></tr>\n";
  for (const ProtocolRunStats& p : run.protocols) {
    os << "<tr><td>" << html_escape(p.name) << "</td><td>" << p.n_tot << "</td><td>" << p.basic
       << "</td><td>" << p.forced << "</td><td>" << p.piggyback_bytes << "</td><td>"
       << p.control_messages << "</td><td>"
       << (p.orphans_found == 0
               ? "0"
               : "<span class=\"bad\">" + std::to_string(p.orphans_found) + "</span>")
       << "</td></tr>\n";
  }
  os << "</table>\n";
}

/// Host-time phase breakdown table: every prof.<phase>.seconds sample
/// (excluding the per-shard gauges, shown separately) with its count and
/// a bar proportional to the largest phase.
void emit_phase_section(std::ostream& os, const RunResult& run) {
  struct Phase {
    std::string name;
    f64 seconds = 0.0;
    f64 count = 0.0;
  };
  std::vector<Phase> phases;
  for (const obs::MetricSample& m : run.metrics) {
    if (!starts_with(m.name, "prof.") || !ends_with(m.name, ".seconds")) continue;
    if (starts_with(m.name, "prof.shard.") || starts_with(m.name, "prof.coordinator.")) continue;
    Phase ph;
    ph.name = m.name.substr(5, m.name.size() - 5 - 8);  // strip "prof." and ".seconds"
    ph.seconds = m.value;
    const obs::MetricSample* cnt = find_metric(run, m.name.substr(0, m.name.size() - 8) + ".count");
    ph.count = cnt != nullptr ? cnt->value : 0.0;
    phases.push_back(std::move(ph));
  }
  if (phases.empty()) return;
  f64 max_s = 0.0;
  for (const Phase& ph : phases) max_s = std::max(max_s, ph.seconds);
  os << "<h2>Host-time phase breakdown</h2>\n"
     << "<p>Wall-clock attribution from the <code>prof.*</code> catalog. Phases are\n"
     << "hierarchical (network legs run inside <code>dispatch.message_hop</code>, protocol\n"
     << "slots inside the piggyback phases), so columns do not sum to the run's wall\n"
     << "time.</p>\n<table>\n"
     << "<tr><th>phase</th><th>seconds</th><th>count</th><th class=\"barhead\"></th></tr>\n";
  for (const Phase& ph : phases) {
    os << "<tr><td><code>" << html_escape(ph.name) << "</code></td><td>"
       << fmt_seconds(ph.seconds) << "</td><td>" << fmt_num(ph.count) << "</td>";
    emit_bar(os, ph.seconds, max_s, "busy");
    os << "</tr>\n";
  }
  os << "</table>\n";
}

/// Shard balance: per-shard busy/barrier bars plus the imbalance gauge.
void emit_shard_section(std::ostream& os, const RunResult& run) {
  struct Shard {
    usize index = 0;
    f64 busy = 0.0;
    f64 barrier = 0.0;
    f64 events = 0.0;
  };
  std::vector<Shard> shards;
  for (usize i = 0;; ++i) {
    const std::string base = "prof.shard." + std::to_string(i);
    const obs::MetricSample* busy = find_metric(run, base + ".busy_seconds");
    if (busy == nullptr) break;
    Shard s;
    s.index = i;
    s.busy = busy->value;
    if (const obs::MetricSample* m = find_metric(run, base + ".barrier_seconds")) {
      s.barrier = m->value;
    }
    if (const obs::MetricSample* m = find_metric(run, base + ".events")) s.events = m->value;
    shards.push_back(s);
  }
  if (shards.empty()) return;
  f64 max_total = 0.0;
  for (const Shard& s : shards) max_total = std::max(max_total, s.busy + s.barrier);
  os << "<h2>Shard balance</h2>\n<table>\n"
     << "<tr><th>shard</th><th>busy s</th><th>barrier s</th><th>events</th>"
     << "<th>busy</th><th>barrier</th></tr>\n";
  for (const Shard& s : shards) {
    os << "<tr><td>" << s.index << "</td><td>" << fmt_seconds(s.busy) << "</td><td>"
       << fmt_seconds(s.barrier) << "</td><td>" << fmt_num(s.events) << "</td>";
    emit_bar(os, s.busy, max_total, "busy");
    emit_bar(os, s.barrier, max_total, "stall");
    os << "</tr>\n";
  }
  os << "</table>\n";
  if (const obs::MetricSample* m = find_metric(run, "prof.imbalance_ratio")) {
    os << "<p>Load imbalance (max busy / mean busy): <b>" << fmt_num(m->value) << "</b></p>\n";
  }
  if (const obs::MetricSample* m = find_metric(run, "prof.coordinator.barrier_seconds")) {
    os << "<p>Coordinator barrier wait: " << fmt_seconds(m->value) << " s</p>\n";
  }
}

/// Every metric the run recorded, grouped by its first dotted component.
void emit_catalog_section(std::ostream& os, const RunResult& run) {
  if (run.metrics.empty()) return;
  os << "<h2>Metric catalog</h2>\n";
  std::string group;
  bool open = false;
  for (const obs::MetricSample& m : run.metrics) {
    const usize dot = m.name.find('.');
    const std::string g = dot == std::string::npos ? m.name : m.name.substr(0, dot);
    if (g != group || !open) {
      if (open) os << "</table>\n";
      os << "<h3><code>" << html_escape(g) << ".*</code></h3>\n<table>\n"
         << "<tr><th>metric</th><th>value</th></tr>\n";
      group = g;
      open = true;
    }
    os << "<tr><td><code>" << html_escape(m.name) << "</code></td><td>" << fmt_num(m.value)
       << "</td></tr>\n";
  }
  if (open) os << "</table>\n";
}

void emit_recovery_section(std::ostream& os, const RunResult& run) {
  const CrashRunStats& r = run.recovery;
  if (r.crashes_executed == 0) return;
  os << "<h2>Recovery story</h2>\n"
     << "<p>" << r.crashes_executed << " crash" << (r.crashes_executed == 1 ? "" : "es")
     << " executed (" << r.crashes_skipped << " skipped with no live victim); "
     << r.hosts_crashed << " host(s) crashed and " << r.hosts_rolled_back
     << " rolled back, undoing " << r.undone_events << " events and replaying "
     << r.replayed_messages << " messages.</p>\n<table>\n";
  auto row = [&os](const char* key, const std::string& value) {
    os << "<tr><th>" << key << "</th><td>" << value << "</td></tr>\n";
  };
  row("checkpoints discarded", fmt_num(static_cast<f64>(r.checkpoints_discarded)));
  row("total recovery time", fmt_num(r.total_recovery_time));
  row("max recovery time", fmt_num(r.max_recovery_time));
  row("planned downtime", fmt_num(r.total_planned));
  row("estimated downtime", fmt_num(r.total_estimated));
  os << "</table>\n";
}

void emit_data_plane_section(std::ostream& os, const RunResult& run) {
  if (!run.data_plane_enabled) return;
  const storage::DataPlaneStats& d = run.data_plane;
  os << "<h2>Checkpoint data plane</h2>\n<table>\n";
  auto row = [&os](const char* key, const std::string& value) {
    os << "<tr><th>" << key << "</th><td>" << value << "</td></tr>\n";
  };
  row("checkpoints priced", fmt_num(static_cast<f64>(d.checkpoints)));
  row("upload bytes", fmt_num(static_cast<f64>(d.upload_bytes)));
  row("dense-equivalent bytes", fmt_num(static_cast<f64>(d.full_bytes)));
  row("transfer time", fmt_num(d.transfer_time));
  row("queue delay", fmt_num(d.queue_delay));
  row("migrations", fmt_num(static_cast<f64>(d.migrations)));
  row("migration bytes", fmt_num(static_cast<f64>(d.migration_bytes)));
  row("mean locality (hops)", fmt_num(d.mean_locality()));
  row("recovery fetches", fmt_num(static_cast<f64>(d.fetches)));
  row("fetch bytes", fmt_num(static_cast<f64>(d.fetch_bytes)));
  row("fetch time", fmt_num(d.fetch_time));
  os << "</table>\n";
}

void emit_sweep_section(std::ostream& os, const SweepView& fig) {
  os << "<h2>Sweep: " << html_escape(fig.title) << "</h2>\n<table>\n<tr><th>T_switch</th>";
  for (const std::string& name : fig.protocol_names) {
    os << "<th>" << html_escape(name) << "</th><th>&plusmn;</th>";
  }
  const bool have_wall = fig.ledger.point_wall_seconds.size() == fig.t_switch_values.size();
  os << "<th>reps</th><th>met</th>";
  if (have_wall) os << "<th>wall s</th><th class=\"barhead\"></th>";
  os << "</tr>\n";
  f64 max_wall = 0.0;
  for (const f64 w : fig.ledger.point_wall_seconds) max_wall = std::max(max_wall, w);
  for (usize p = 0; p < fig.t_switch_values.size(); ++p) {
    os << "<tr><td>" << fmt_num(fig.t_switch_values[p]) << "</td>";
    for (usize k = 0; k < fig.protocol_names.size() && k < fig.cells[p].size(); ++k) {
      const SweepCellView& cell = fig.cells[p][k];
      os << "<td>" << fmt_num(cell.mean) << "</td><td>" << fmt_num(cell.ci95) << "</td>";
    }
    os << "<td>" << fig.seeds_used[p] << "</td><td>"
       << (fig.target_met[p] ? "&#10003;" : "<span class=\"bad\">cap</span>") << "</td>";
    if (have_wall) {
      os << "<td>" << fmt_seconds(fig.ledger.point_wall_seconds[p]) << "</td>";
      emit_bar(os, fig.ledger.point_wall_seconds[p], max_wall, "busy");
    }
    os << "</tr>\n";
  }
  os << "</table>\n";
  const SweepLedger& led = fig.ledger;
  os << "<p>Ledger: " << led.replications_used << " replications used / " << led.replications_run
     << " run (cap " << led.replication_cap << "), " << led.events_executed << " events in "
     << fmt_seconds(led.wall_seconds) << " s (" << fmt_num(led.events_per_second())
     << " events/s), barrier stall " << fmt_seconds(led.barrier_stall_seconds) << " s";
  if (led.shards > 1) {
    os << " across " << led.shards << " shards, " << led.sync_rounds << " sync rounds";
  }
  os << ".</p>\n";
}

}  // namespace

void write_html_report(std::ostream& os, const RunResult& run, const SweepView* sweep) {
  os << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
     << "<title>mobichk run report</title>\n"
     << "<style>\n"
     << "body{font-family:system-ui,sans-serif;margin:2em auto;max-width:60em;color:#222}\n"
     << "h1{border-bottom:2px solid #446;padding-bottom:.2em}\n"
     << "h2{margin-top:1.6em;color:#446}\n"
     << "table{border-collapse:collapse;margin:.5em 0}\n"
     << "th,td{border:1px solid #ccd;padding:.25em .6em;text-align:left;font-size:.95em}\n"
     << "th{background:#eef}\n"
     << "code{background:#f4f4f8;padding:0 .2em}\n"
     << ".bad{color:#b00;font-weight:bold}\n"
     << ".barcell{min-width:14em;background:#f8f8fc}\n"
     << ".barhead{min-width:14em}\n"
     << ".bar{height:1em}\n"
     << ".bar.busy{background:#58a}\n"
     << ".bar.stall{background:#c86}\n"
     << "</style>\n</head>\n<body>\n"
     << "<h1>mobichk run report</h1>\n";
  emit_config_section(os, run);
  emit_summary_section(os, run);
  emit_protocol_section(os, run);
  emit_phase_section(os, run);
  emit_shard_section(os, run);
  emit_recovery_section(os, run);
  emit_data_plane_section(os, run);
  if (sweep != nullptr) emit_sweep_section(os, *sweep);
  emit_catalog_section(os, run);
  os << "</body>\n</html>\n";
  os.flush();
}

void write_html_report(const std::string& path, const RunResult& run, const SweepView* sweep) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_html_report: cannot open " + path);
  write_html_report(out, run, sweep);
  if (!out) throw std::runtime_error("write_html_report: write failed for " + path);
}

}  // namespace mobichk::sim
