// RunObserver: the one object a caller creates to observe a run.
//
// Owns the MetricRegistry, the Timeline and the resolved probe structs;
// the Experiment wires non-owning probe pointers into the simulator, the
// network and the protocol harness. When no RunObserver is attached every
// probe pointer is null and the run is bit-identical to an unobserved one.
//
// Optionally (enable_causal) owns a CausalMonitor: per-protocol online
// recovery-line trackers fed as the Timeline's listener, so they see every
// probe event even when the stored timeline is capped.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "obs/probes.hpp"
#include "obs/timeline.hpp"

namespace mobichk::obs {

class RunObserver {
 public:
  RunObserver();
  RunObserver(const RunObserver&) = delete;
  RunObserver& operator=(const RunObserver&) = delete;

  MetricRegistry& registry() noexcept { return registry_; }
  const MetricRegistry& registry() const noexcept { return registry_; }
  Timeline& timeline() noexcept { return timeline_; }
  const Timeline& timeline() const noexcept { return timeline_; }

  const KernelProbe* kernel_probe() const noexcept { return &kernel_; }
  const NetProbe* net_probe() const noexcept { return &net_; }
  const SweepProbe* sweep_probe() const noexcept { return &sweep_; }

  /// Display names for protocol slots, in slot order; used by the
  /// Chrome-trace exporter to label per-protocol processes.
  void set_protocol_names(std::vector<std::string> names) { protocol_names_ = std::move(names); }
  const std::vector<std::string>& protocol_names() const noexcept { return protocol_names_; }

  /// Number of mobile hosts in the observed run (track labelling).
  void set_n_hosts(i32 n) noexcept { n_hosts_ = n; }
  i32 n_hosts() const noexcept { return n_hosts_; }

  /// Caps the stored timeline at `cap` events (0 = unbounded). Excess
  /// events increment the `obs.timeline.dropped_events` counter instead
  /// of growing the vector; the causal monitor still sees every event.
  void set_timeline_capacity(usize cap) noexcept { timeline_.set_capacity(cap); }

  /// Creates the per-slot recovery-line trackers (one per entry of
  /// `modes`, kNone = none for that slot) and installs the monitor as the
  /// timeline listener. Requires set_n_hosts/set_protocol_names first;
  /// replaces a previous monitor. Returns the monitor for queries.
  CausalMonitor& enable_causal(const std::vector<TrackerMode>& modes);

  /// The causal monitor, or nullptr when enable_causal was never called.
  CausalMonitor* causal() noexcept { return monitor_.get(); }
  const CausalMonitor* causal() const noexcept { return monitor_.get(); }

  /// Finalizes every tracker (Z-cycle pass, final gauges). Safe to call
  /// without a monitor; idempotent.
  void finalize_causal();

 private:
  MetricRegistry registry_;
  Timeline timeline_;
  KernelProbe kernel_;
  NetProbe net_;
  SweepProbe sweep_;
  std::unique_ptr<CausalMonitor> monitor_;
  std::vector<std::string> protocol_names_;
  i32 n_hosts_ = 0;
};

}  // namespace mobichk::obs
