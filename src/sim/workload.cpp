#include "sim/workload.hpp"

#include <cmath>

namespace mobichk::sim {

WorkloadDriver::WorkloadDriver(des::Simulator& sim, net::Network& net, const SimConfig& cfg)
    : sim_(sim), net_(net), cfg_(cfg), comm_gap_(cfg.comm_mean) {
  per_host_.reserve(net.n_hosts());
  for (net::HostId h = 0; h < net.n_hosts(); ++h) {
    per_host_.push_back(HostState{des::RngStream(cfg.seed, "workload", h), 0, {}});
  }
}

void WorkloadDriver::set_latency_probes(std::vector<const core::CheckpointLog*> logs) {
  latency_probes_ = std::move(logs);
  for (auto& hs : per_host_) hs.seen_ckpts.assign(latency_probes_.size(), 0);
}

void WorkloadDriver::start() {
  for (net::HostId h = 0; h < net_.n_hosts(); ++h) schedule_next(h, 0.0);
}

void WorkloadDriver::resume(net::HostId host) {
  ++per_host_.at(host).epoch;
  schedule_next(host, 0.0);
}

void WorkloadDriver::schedule_next(net::HostId host, f64 extra_delay) {
  HostState& hs = per_host_.at(host);
  const f64 gap = comm_gap_.sample(hs.rng);
  // The gap is filled with internal events of mean execution time
  // internal_mean each.
  const u64 internal_count = static_cast<u64>(std::llround(gap / cfg_.internal_mean));
  des::EventPayload p;
  p.target = this;
  p.kind = des::EventKind::kWorkloadOp;
  p.a = host;
  p.b = hs.epoch;
  p.c = internal_count;
  des::route_schedule_after(sim_, gap + extra_delay, p);
}

void WorkloadDriver::on_event(const des::EventPayload& p) {
  const auto host = static_cast<net::HostId>(p.a);
  HostState& state = per_host_.at(host);
  // Stale events from before a disconnect/reconnect cycle are dropped;
  // resume() restarted the loop under a fresh epoch.
  if (state.epoch != p.b || !net_.host(host).connected()) return;
  execute_op(host, p.c);
}

void WorkloadDriver::execute_op(net::HostId host, u64 internal_count) {
  HostState& hs = per_host_.at(host);
  net_.internal_events(host, internal_count);
  CounterSlice& c = cnt();
  c.internal_events += internal_count;
  ++c.ops;
  if (des::bernoulli(hs.rng, cfg_.p_send)) {
    const auto dst = static_cast<net::HostId>(
        des::uniform_index_excluding(hs.rng, net_.n_hosts(), host));
    net_.send_app_message(host, dst, cfg_.payload_bytes);
    ++c.sends;
  } else {
    if (net_.consume_one(host)) {
      ++c.receives;
    } else {
      ++c.empty_receives;
    }
  }
  // Checkpoint-latency extension: stall for checkpoints this op induced,
  // summed over every probed protocol slot.
  f64 extra = 0.0;
  if (!latency_probes_.empty() && cfg_.ckpt_latency > 0.0) {
    for (usize p = 0; p < latency_probes_.size(); ++p) {
      const u64 now_count = latency_probes_[p]->count(host);
      extra += cfg_.ckpt_latency * static_cast<f64>(now_count - hs.seen_ckpts[p]);
      hs.seen_ckpts[p] = now_count;
    }
  }
  schedule_next(host, extra);
}

}  // namespace mobichk::sim
