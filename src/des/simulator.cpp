#include "des/simulator.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace mobichk::des {

Simulator::Simulator(QueueKind queue_kind) : queue_(make_event_queue(queue_kind)) {}

EventHandle Simulator::enqueue(Time t, EventEntry entry) {
  if (t < now_) throw std::invalid_argument("Simulator::schedule_at: time is in the past");
  entry.time = t;
  entry.seq = next_seq_++;
  const EventHandle handle = queue_->push(std::move(entry));
  ++invariants_.scheduled;
  if (queue_->size() > invariants_.max_pending) invariants_.max_pending = queue_->size();
  if (probe_ != nullptr) probe_->pushes->add();
  return handle;
}

EventHandle Simulator::schedule_at(Time t, const EventPayload& payload) {
  assert(payload.kind != EventKind::kClosure && "typed payload must not be kClosure");
  assert(payload.target != nullptr && "typed payload needs a target");
  EventEntry entry;
  entry.payload = payload;
  return enqueue(t, std::move(entry));
}

EventHandle Simulator::schedule_at(Time t, EventFn fn) {
  EventEntry entry;
  entry.fn = std::move(fn);
  return enqueue(t, std::move(entry));
}

void Simulator::cancel(EventHandle handle) {
  if (!handle.valid()) return;
  ++invariants_.cancels_requested;
  if (queue_->cancel(handle)) {
    ++invariants_.cancels_effective;
    if (probe_ != nullptr) probe_->cancels->add();
  }
}

void Simulator::advance_to(const EventEntry& e) noexcept {
  if (e.time < now_) {
    ++invariants_.time_regressions;
    assert(false && "event queue returned an event in the past");
  }
#ifndef NDEBUG
  assert(fired_seqs_.insert(e.seq).second && "event seq popped twice");
#endif
  now_ = e.time;
}

u64 Simulator::run_until(Time t_end) {
  assert(t_end >= now_);
  u64 count = 0;
  stop_requested_ = false;
  while (!queue_->empty()) {
    // peek_time (not pop/push-back): re-pushing would file the entry under
    // a fresh slot and silently invalidate every outstanding handle to it.
    if (queue_->peek_time() > t_end) break;
    EventEntry e = queue_->pop();
    advance_to(e);
    if (probe_ != nullptr) observe_pop(e);
    fire(e);
    ++executed_;
    ++invariants_.executed;
    ++count;
    if (stop_requested_) return count;
  }
  now_ = t_end;
  return count;
}

u64 Simulator::run_window(Time h_excl, Time cap) {
  u64 count = 0;
  for (;;) {
    const Time t = queue_->peek_time_below(h_excl);
    if (t == kNoEventBelow || t > cap) break;
    EventEntry e = queue_->pop();
    advance_to(e);
    if (probe_ != nullptr) observe_pop(e);
    fire(e);
    ++executed_;
    ++invariants_.executed;
    ++count;
  }
  return count;
}

void Simulator::step_one() {
  assert(!queue_->empty() && "step_one() on empty queue");
  EventEntry e = queue_->pop();
  advance_to(e);
  if (probe_ != nullptr) observe_pop(e);
  fire(e);
  ++executed_;
  ++invariants_.executed;
}

u64 Simulator::run() {
  u64 count = 0;
  stop_requested_ = false;
  while (!queue_->empty()) {
    EventEntry e = queue_->pop();
    advance_to(e);
    if (probe_ != nullptr) observe_pop(e);
    fire(e);
    ++executed_;
    ++invariants_.executed;
    ++count;
    if (stop_requested_) break;
  }
  return count;
}

}  // namespace mobichk::des
