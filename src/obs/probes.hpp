// Probe structs: pre-resolved metric pointers for the instrumented layers.
//
// Each observed component holds `const XxxProbe* probe_` (null when
// observability is off) and guards every update with one null check:
//
//   if (probe_ != nullptr) probe_->pushes->add();
//
// resolve() registers the layer's metrics by their catalog names (see
// docs/observability.md) and caches the addresses, so the hot path never
// touches the registry or a string.
#pragma once

#include "obs/metrics.hpp"

namespace mobichk::obs {

/// DES kernel: per-kind dispatch counts plus queue traffic. The
/// dispatched array is indexed by des::EventKind's underlying value;
/// all 8 slots are in use since kCrash/kRecover landed.
struct KernelProbe {
  static constexpr usize kMaxEventKinds = 8;

  Counter* dispatched[kMaxEventKinds] = {};
  Counter* pushes = nullptr;
  Counter* pops = nullptr;
  Counter* cancels = nullptr;
  Counter* compactions = nullptr;  ///< Filled post-run (pull model).
  Gauge* max_pending = nullptr;    ///< Filled post-run from SimInvariants.

  void resolve(MetricRegistry& reg);
};

/// net::Network: wire traffic and mobility.
struct NetProbe {
  Counter* uplink_legs = nullptr;       ///< MH -> local MSS wireless sends
  Counter* wired_hops = nullptr;        ///< MSS -> MSS wired forwards
  Counter* downlink_legs = nullptr;     ///< MSS -> MH wireless deliveries
  Counter* payload_bytes = nullptr;     ///< application payload on the wire
  Counter* piggyback_bytes = nullptr;   ///< protocol piggyback on the wire (encoded)
  Counter* piggyback_dense_bytes = nullptr;  ///< dense-equivalent piggyback cost
  Counter* handoffs = nullptr;
  Counter* disconnects = nullptr;
  Counter* reconnects = nullptr;
  Counter* crashes = nullptr;   ///< injected host failures
  Counter* restores = nullptr;  ///< post-recovery rejoins
  FixedHistogram* delivery_latency = nullptr;  ///< tu, app messages only

  void resolve(MetricRegistry& reg);
};

/// Sweep engine: per-replication cost and convergence trajectory.
struct SweepProbe {
  Counter* replications = nullptr;
  FixedHistogram* replication_wall = nullptr;  ///< seconds per replication batch
  Gauge* last_half_width = nullptr;            ///< latest relative CI half-width

  void resolve(MetricRegistry& reg);
};

}  // namespace mobichk::obs
