// Differential suite: sparse delta-encoded TP piggybacks against the
// dense-oracle encoding, run side by side as paired observers over the
// same event stream.
//
// The dense TP instance is the paper-literal specification (full CKPT[]
// and LOC[] vectors on every message); the sparse instance is the
// city-scale implementation under test. Since the piggyback content
// never feeds back into the trace (the phase rule reads only has_sn /
// phase bits), both instances see identical upcalls, so at every point
// of every scenario the sparse instance's decoded view must equal the
// dense one's — and the encoded wire bytes must never exceed the dense
// cost. Scenarios cover direct exchanges, fan-in/fan-out, and the
// mobility interleavings (handoff mid-flight, disconnect buffering,
// crash/restore) where per-pair FIFO is most at risk; a final full-run
// differential pins trace hashes and checkpoint counts across all three
// event-queue implementations.
#include <gtest/gtest.h>

#include "core/harness.hpp"
#include "core/protocols/tp.hpp"
#include "des/simulator.hpp"
#include "net/network.hpp"
#include "sim/experiment.hpp"

namespace mobichk::core {
namespace {

/// Five hosts over three MSSs; slot 0 = dense oracle, slot 1 = sparse.
class SparseDiffFixture : public ::testing::Test {
 protected:
  static constexpr u32 kHosts = 5;

  SparseDiffFixture() : net_(sim_, config(), 1), harness_(net_) {
    dense_slot_ = harness_.add_protocol(std::make_unique<TpProtocol>(TpEncoding::kDense));
    sparse_slot_ = harness_.add_protocol(std::make_unique<TpProtocol>(TpEncoding::kSparse));
    net_.start({0, 1, 2, 0, 1});
  }

  static net::NetworkConfig config() {
    net::NetworkConfig cfg;
    cfg.n_hosts = kHosts;
    cfg.n_mss = 3;
    return cfg;
  }

  TpProtocol& dense() { return static_cast<TpProtocol&>(harness_.protocol(dense_slot_)); }
  TpProtocol& sparse() { return static_cast<TpProtocol&>(harness_.protocol(sparse_slot_)); }

  /// The differential invariant: for every host, the sparse instance's
  /// decoded CKPT[] and LOC[] views equal the dense oracle's.
  void expect_views_equal(const char* where) {
    for (net::HostId h = 0; h < kHosts; ++h) {
      EXPECT_EQ(sparse().requirement_vector(h), dense().requirement_vector(h))
          << where << ": CKPT[] diverged at host " << h;
      EXPECT_EQ(sparse().location_vector(h), dense().location_vector(h))
          << where << ": LOC[] diverged at host " << h;
    }
    // Same upcalls => same checkpoint decisions, interval by interval.
    EXPECT_EQ(harness_.log(sparse_slot_).total(), harness_.log(dense_slot_).total()) << where;
    EXPECT_EQ(harness_.log(sparse_slot_).forced(), harness_.log(dense_slot_).forced()) << where;
  }

  /// Encoded-size invariant: what the sparse protocol would put on the
  /// wire right now never exceeds the dense encoding, on any (src, dst).
  void expect_encoded_bounded() {
    for (net::HostId src = 0; src < kHosts; ++src) {
      if (!net_.host(src).connected()) continue;
      for (net::HostId dst = 0; dst < kHosts; ++dst) {
        if (dst == src) continue;
        net::Piggyback dense_pb = dense().make_piggyback(net_.host(src), dst);
        net::Piggyback sparse_pb = sparse().make_piggyback(net_.host(src), dst);
        EXPECT_LE(sparse_pb.wire_bytes(), dense_pb.wire_bytes())
            << "pair " << src << "->" << dst;
        EXPECT_EQ(sparse_pb.dense_bytes(), dense_pb.dense_bytes());
      }
    }
  }

  /// Sends src -> dst, runs the network to quiescence, consumes at dst,
  /// and checks the differential invariant.
  void transfer(net::HostId src, net::HostId dst) {
    net_.send_app_message(src, dst, 64);
    sim_.run();
    ASSERT_TRUE(net_.consume_one(dst));
    expect_views_equal("after transfer");
  }

  des::Simulator sim_;
  net::Network net_;
  ProtocolHarness harness_;
  usize dense_slot_ = 0;
  usize sparse_slot_ = 0;
};

TEST_F(SparseDiffFixture, FreshProtocolsAgree) {
  expect_views_equal("initial");
  expect_encoded_bounded();
}

TEST_F(SparseDiffFixture, ChainedTransfersPropagateIdentically) {
  // 0 -> 1 -> 2 -> 3 -> 4: transitive dependency growth, checked at
  // every delivery.
  transfer(0, 1);
  transfer(1, 2);
  transfer(2, 3);
  transfer(3, 4);
  expect_encoded_bounded();
  EXPECT_EQ(sparse().delta_reorders(), 0u);
}

TEST_F(SparseDiffFixture, FanInFanOutAgree) {
  // Everyone sends to 0 (fan-in), then 0 sends to everyone (fan-out):
  // the hub's vectors touch every host.
  for (net::HostId h = 1; h < kHosts; ++h) transfer(h, 0);
  for (net::HostId h = 1; h < kHosts; ++h) transfer(0, h);
  expect_encoded_bounded();
  EXPECT_EQ(sparse().delta_reorders(), 0u);
}

TEST_F(SparseDiffFixture, RepeatedPairReusesDeltas) {
  // Same pair over and over: after the first exchange the sparse deltas
  // carry only the sender's own movement, and the views keep agreeing.
  for (int i = 0; i < 6; ++i) transfer(0, 1);
  net::Piggyback pb = sparse().make_piggyback(net_.host(0), 1);
  EXPECT_EQ(pb.deltas.size(), 1u);  // own entry only: nothing else changed
  expect_encoded_bounded();
}

TEST_F(SparseDiffFixture, HandoffInterleavingAgrees) {
  // LOC[] changes ride the deltas: move hosts between transfers and mid
  // conversation; the views must track the moves identically.
  transfer(0, 1);
  net_.switch_cell(0, 2);  // basic checkpoint + LOC change at the oracle
  expect_views_equal("after handoff");
  transfer(0, 2);
  net_.switch_cell(2, 1);
  transfer(2, 0);
  expect_encoded_bounded();
  EXPECT_EQ(sparse().delta_reorders(), 0u);
}

TEST_F(SparseDiffFixture, HandoffMidFlightChasesAndAgrees) {
  // The destination moves while the message is on the wire: the chase
  // forward re-routes it, delivery happens in the new cell, and both
  // encodings decode the same views from it.
  net_.send_app_message(0, 1, 64);
  sim_.run_until(sim_.now() + 0.015);  // uplink done, wired leg pending
  net_.switch_cell(1, 2);
  sim_.run();
  ASSERT_TRUE(net_.consume_one(1));
  EXPECT_GT(net_.stats().chase_forwards, 0u);
  expect_views_equal("after chased delivery");
  expect_encoded_bounded();
}

TEST_F(SparseDiffFixture, DisconnectBufferingAgrees) {
  // Message sent to a disconnected host waits at its last MSS; the
  // piggyback decoded after reconnection must still match the oracle.
  net_.send_app_message(1, 0, 64);  // 1 enters SEND phase; in flight to 0
  net_.disconnect(0);               // basic checkpoints at both instances
  sim_.run();                       // message buffered at 0's last MSS
  EXPECT_EQ(net_.host(0).mailbox_size(), 0u);
  expect_views_equal("while buffered");
  net_.reconnect(0, 2);
  sim_.run();
  ASSERT_TRUE(net_.consume_one(0));
  expect_views_equal("after buffered delivery");
  expect_encoded_bounded();
  EXPECT_EQ(sparse().delta_reorders(), 0u);
}

TEST_F(SparseDiffFixture, CrashRestoreInterleavingAgrees) {
  // A crash re-buffers the victim's mailbox at its MSS; restore drains
  // it. The piggybacks decoded across the outage must agree.
  transfer(0, 1);
  net_.send_app_message(0, 1, 64);
  sim_.run();  // delivered into 1's mailbox but not consumed
  net_.crash(1);
  expect_views_equal("after crash");
  net_.restore(1, 1);
  sim_.run();
  ASSERT_TRUE(net_.consume_one(1));
  expect_views_equal("after restored delivery");
  expect_encoded_bounded();
}

TEST_F(SparseDiffFixture, CheckpointRecordsCarryEqualDependencies) {
  // The sparse instance stores deps as a sorted sparse vector, the dense
  // one as full arrays; the accessor views must be indistinguishable.
  transfer(0, 1);
  transfer(1, 2);
  net_.switch_cell(2, 0);  // basic checkpoint snapshots the deps
  const CheckpointRecord& dense_rec = harness_.log(dense_slot_).of(2).back();
  const CheckpointRecord& sparse_rec = harness_.log(sparse_slot_).of(2).back();
  ASSERT_TRUE(dense_rec.has_deps());
  ASSERT_TRUE(sparse_rec.has_deps());
  ASSERT_EQ(sparse_rec.deps_rank(), dense_rec.deps_rank());
  for (u32 j = 0; j < dense_rec.deps_rank(); ++j) {
    EXPECT_EQ(sparse_rec.dep_ckpt_at(j), dense_rec.dep_ckpt_at(j)) << "dep " << j;
    EXPECT_EQ(sparse_rec.dep_loc_at(j), dense_rec.dep_loc_at(j)) << "loc " << j;
  }
}

TEST_F(SparseDiffFixture, SeededScriptedExchangeAgreesEverywhere) {
  // A deterministic pseudo-random script of transfers, handoffs,
  // disconnects and reconnects; the differential invariant is checked
  // after every delivery (inside transfer()).
  u64 x = 0x9e3779b97f4a7c15ULL;  // splitmix-style scramble, fixed seed
  auto next = [&x](u64 mod) {
    x += 0x9e3779b97f4a7c15ULL;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return (z ^ (z >> 31)) % mod;
  };
  std::vector<bool> down(kHosts, false);
  for (int step = 0; step < 120; ++step) {
    const auto op = next(8);
    const auto a = static_cast<net::HostId>(next(kHosts));
    if (op < 5) {
      auto b = static_cast<net::HostId>(next(kHosts));
      if (b == a) b = (b + 1) % kHosts;
      if (!down[a] && !down[b]) transfer(a, b);
    } else if (op == 5) {
      if (!down[a]) {
        const auto target = static_cast<net::MssId>(next(3));
        if (target != net_.host(a).mss()) net_.switch_cell(a, target);
      }
    } else if (op == 6) {
      if (!down[a]) {
        net_.disconnect(a);
        down[a] = true;
      }
    } else {
      if (down[a]) {
        net_.reconnect(a, static_cast<net::MssId>(next(3)));
        sim_.run();  // drain buffered deliveries
        while (net_.consume_one(a)) {
        }
        down[a] = false;
      }
    }
  }
  expect_views_equal("after script");
  expect_encoded_bounded();
  // Every scenario here preserves per-pair FIFO, so the deltas were
  // exact: no reorder was ever observed and equality (not just the
  // monotone sparse <= dense bound) held throughout.
  EXPECT_EQ(sparse().delta_reorders(), 0u);
}

// ---------------------------------------------------------------------------
// Full-run differential: dense vs sparse at paper scale, all three queues
// ---------------------------------------------------------------------------

TEST(SparseFullRun, TraceAndCountsMatchDenseOnEveryQueue) {
  // The encoding is metadata-only, so a full experiment must produce the
  // exact same trace hash and checkpoint counts whichever encoding runs —
  // on every event-queue implementation.
  sim::SimConfig cfg;
  cfg.sim_length = 20'000.0;
  cfg.t_switch = 1'000.0;
  cfg.p_switch = 0.8;
  cfg.seed = 7;
  for (const des::QueueKind queue : des::kAllQueueKinds) {
    sim::ExperimentOptions dense_opts;
    dense_opts.collect_trace_hash = true;
    dense_opts.queue_kind = queue;
    dense_opts.params.tp_encoding = TpEncoding::kDense;
    sim::ExperimentOptions sparse_opts = dense_opts;
    sparse_opts.params.tp_encoding = TpEncoding::kSparse;
    const sim::RunResult dense_run = sim::run_experiment(cfg, dense_opts);
    const sim::RunResult sparse_run = sim::run_experiment(cfg, sparse_opts);
    const char* queue_name = des::queue_kind_name(queue);
    EXPECT_EQ(sparse_run.trace_hash, dense_run.trace_hash) << queue_name;
    EXPECT_EQ(sparse_run.events_executed, dense_run.events_executed) << queue_name;
    const auto& dense_tp = dense_run.by_name("TP");
    const auto& sparse_tp = sparse_run.by_name("TP");
    EXPECT_EQ(sparse_tp.n_tot, dense_tp.n_tot) << queue_name;
    EXPECT_EQ(sparse_tp.forced, dense_tp.forced) << queue_name;
    EXPECT_EQ(sparse_tp.max_index, dense_tp.max_index) << queue_name;
    // Identical dense-equivalent accounting, strictly cheaper encoding.
    EXPECT_EQ(sparse_tp.piggyback_dense_bytes, dense_tp.piggyback_dense_bytes) << queue_name;
    EXPECT_LT(sparse_tp.piggyback_bytes, dense_tp.piggyback_bytes) << queue_name;
  }
}

}  // namespace
}  // namespace mobichk::core
