// Deterministic pseudo-random number generation for reproducible simulation.
//
// Everything here is implemented from scratch (no <random> engines) so that
// a (seed, stream-key) pair produces bit-identical sequences on every
// platform and standard library. Three engines are provided:
//
//  * SplitMix64  -- used for seeding and stream derivation,
//  * Pcg32      -- small-state engine, handy for tests and micro-benches,
//  * Xoshiro256ss -- the default engine used by RngStream.
//
// RngStream derives independent named substreams from a root seed, so each
// simulation entity (host workload, mobility, channel, ...) owns its own
// stream and the run is reproducible regardless of event interleaving.
#pragma once

#include <array>
#include <string_view>

#include "des/types.hpp"

namespace mobichk::des {

/// SplitMix64: tiny splittable generator (Steele, Lea, Flood 2014).
/// Primarily used to expand seeds for the larger engines.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(u64 seed) noexcept : state_(seed) {}

  constexpr u64 next_u64() noexcept {
    u64 z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// PCG32 (XSH-RR variant): 64-bit state, 32-bit output (O'Neill 2014).
class Pcg32 {
 public:
  constexpr Pcg32() noexcept : Pcg32(0x853C49E6748FEA9BULL, 0xDA3E39CB94B95BDBULL) {}
  constexpr Pcg32(u64 seed, u64 stream) noexcept : state_(0), inc_((stream << 1u) | 1u) {
    next_u32();
    state_ += seed;
    next_u32();
  }

  constexpr u32 next_u32() noexcept {
    const u64 old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const u32 xorshifted = static_cast<u32>(((old >> 18u) ^ old) >> 27u);
    const u32 rot = static_cast<u32>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  constexpr u64 next_u64() noexcept {
    const u64 hi = next_u32();
    const u64 lo = next_u32();
    return (hi << 32) | lo;
  }

 private:
  u64 state_;
  u64 inc_;
};

/// xoshiro256** 1.0 (Blackman & Vigna 2018): the default workhorse engine.
class Xoshiro256ss {
 public:
  /// Seeds the 256-bit state by running SplitMix64 on `seed`.
  explicit constexpr Xoshiro256ss(u64 seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next_u64();
  }

  constexpr u64 next_u64() noexcept {
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

 private:
  static constexpr u64 rotl(u64 x, int k) noexcept { return (x << k) | (x >> (64 - k)); }
  std::array<u64, 4> s_;
};

/// Stable 64-bit hash of a string key (FNV-1a); used to derive stream ids.
constexpr u64 hash_key(std::string_view key) noexcept {
  u64 h = 0xCBF29CE484222325ULL;
  for (const char c : key) {
    h ^= static_cast<u8>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// A named, independently seeded random stream.
///
/// Streams are derived as Xoshiro256**(mix(root_seed, key, index)), so two
/// streams with different (key, index) are statistically independent and a
/// run is fully determined by the root seed.
class RngStream {
 public:
  /// Derives a stream from a root seed, a textual key and a numeric index
  /// (e.g. the host id the stream belongs to).
  RngStream(u64 root_seed, std::string_view key, u64 index = 0) noexcept
      : engine_(derive_seed(root_seed, key, index)) {}

  /// Raw 64 uniform random bits.
  u64 next_u64() noexcept { return engine_.next_u64(); }

  /// Uniform double in [0, 1) with 53 random bits.
  f64 uniform01() noexcept { return static_cast<f64>(next_u64() >> 11) * 0x1.0p-53; }

  static constexpr u64 derive_seed(u64 root_seed, std::string_view key, u64 index) noexcept {
    SplitMix64 sm(root_seed ^ hash_key(key) ^ (index * 0x9E3779B97F4A7C15ULL + 0x165667B19E3779F9ULL));
    // Burn a few outputs so nearby indices decorrelate fully.
    sm.next_u64();
    return sm.next_u64();
  }

 private:
  Xoshiro256ss engine_;
};

}  // namespace mobichk::des
