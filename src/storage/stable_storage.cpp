#include "storage/stable_storage.hpp"

#include <stdexcept>

namespace mobichk::storage {

const char* stable_storage_kind_name(StableStorageKind kind) noexcept {
  switch (kind) {
    case StableStorageKind::kInfinite:
      return "infinite";
    case StableStorageKind::kContention:
      return "contention";
  }
  return "?";
}

bool parse_stable_storage_kind(std::string_view name, StableStorageKind& out) noexcept {
  if (name == "infinite") {
    out = StableStorageKind::kInfinite;
    return true;
  }
  if (name == "contention") {
    out = StableStorageKind::kContention;
    return true;
  }
  return false;
}

ServiceResult InfiniteStableStorage::write(net::MssId, u64 bytes, des::Time now) {
  ++stats_.writes;
  stats_.bytes_written += bytes;
  return {now, 0.0};
}

ServiceResult InfiniteStableStorage::read(net::MssId, u64 bytes, des::Time now) {
  ++stats_.reads;
  stats_.bytes_read += bytes;
  return {now, 0.0};
}

ContentionStableStorage::ContentionStableStorage(u32 n_mss, f64 bandwidth)
    : bandwidth_(bandwidth), busy_until_(n_mss, 0.0) {
  if (!(bandwidth > 0.0)) throw std::invalid_argument("storage bandwidth must be > 0");
}

ServiceResult ContentionStableStorage::admit(net::MssId mss, u64 bytes, des::Time now) {
  des::Time& busy = busy_until_.at(mss);
  const des::Time start = busy > now ? busy : now;
  const f64 service = static_cast<f64>(bytes) / bandwidth_;
  busy = start + service;
  const f64 wait = start - now;
  stats_.service_time += service;
  stats_.queue_delay += wait;
  return {busy, wait};
}

ServiceResult ContentionStableStorage::write(net::MssId mss, u64 bytes, des::Time now) {
  ++stats_.writes;
  stats_.bytes_written += bytes;
  return admit(mss, bytes, now);
}

ServiceResult ContentionStableStorage::read(net::MssId mss, u64 bytes, des::Time now) {
  ++stats_.reads;
  stats_.bytes_read += bytes;
  return admit(mss, bytes, now);
}

std::unique_ptr<StableStorage> make_stable_storage(StableStorageKind kind, u32 n_mss,
                                                   f64 bandwidth) {
  switch (kind) {
    case StableStorageKind::kInfinite:
      return std::make_unique<InfiniteStableStorage>();
    case StableStorageKind::kContention:
      return std::make_unique<ContentionStableStorage>(n_mss, bandwidth);
  }
  throw std::invalid_argument("unknown stable-storage kind");
}

}  // namespace mobichk::storage
