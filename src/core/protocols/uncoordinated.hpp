// Uncoordinated checkpointing: hosts checkpoint independently on a local
// timer (plus the mandatory basic checkpoints). Paper §2 rules this class
// out for mobile settings because building a consistent global checkpoint
// after a failure requires a potentially unbounded rollback (domino
// effect); we implement it so the recovery benches can *measure* that
// rollback against the communication-induced protocols.
#pragma once

#include <vector>

#include "core/protocol.hpp"
#include "des/distributions.hpp"
#include "des/event.hpp"
#include "des/rng.hpp"

namespace mobichk::core {

class UncoordinatedProtocol final : public CheckpointProtocol, public des::EventTarget {
 public:
  /// `mean_period`: mean of the exponentially distributed local
  /// checkpoint interval. `seed` feeds the timer randomness.
  UncoordinatedProtocol(f64 mean_period, u64 seed)
      : period_(mean_period), rng_(seed, "proto.uncoordinated") {}

  const char* name() const noexcept override { return "UNCOORD"; }

  net::Piggyback make_piggyback(const net::MobileHost&, net::HostId) override { return {}; }
  void handle_receive(const net::MobileHost&, const net::AppMessage&,
                      const net::Piggyback&) override {}
  void handle_cell_switch(const net::MobileHost& host, net::MssId, net::MssId) override {
    checkpoint(host, CheckpointKind::kBasic);
  }
  void handle_disconnect(const net::MobileHost& host) override {
    checkpoint(host, CheckpointKind::kBasic);
  }

  void host_init(const net::MobileHost& host) override;

  /// Typed-event dispatch: one kCheckpointTransfer per local timer tick
  /// (a = host).
  void on_event(const des::EventPayload& payload) override;

 protected:
  void do_bind() override { count_.assign(ctx_.n_hosts, 0); }

 private:
  void checkpoint(const net::MobileHost& host, CheckpointKind kind) {
    take_checkpoint(host, kind, ++count_.at(host.id()));
  }
  void schedule_timer(net::HostId host);

  des::Exponential period_;
  des::RngStream rng_;
  std::vector<u64> count_;
};

}  // namespace mobichk::core
