// GAIN: the paper's headline claims (§5.2) in one table.
//
// Runs all six figure configurations and reports, for each, the maximum
// gain of the index-based protocols over TP and of QBC over BCS, next to
// the paper's quoted numbers:
//   * index-based gain over TP "up to 90% when T_switch = 10000";
//   * QBC gain over BCS "up to 15%" with disconnections (P_switch = 0.8);
//   * QBC gain over BCS "up to 23%" in heterogeneous environments.
#include <cstdio>

#include "mobichk.hpp"

int main(int argc, char** argv) {
  using namespace mobichk;
  const sim::ArgParser args(argc, argv);

  struct Row {
    const char* name;
    f64 p_switch;
    f64 h;
  };
  const Row rows[] = {
      {"Fig1 H=0%  Psw=1.0", 1.0, 0.0}, {"Fig2 H=0%  Psw=0.8", 0.8, 0.0},
      {"Fig3 H=50% Psw=1.0", 1.0, 0.5}, {"Fig4 H=50% Psw=0.8", 0.8, 0.5},
      {"Fig5 H=30% Psw=1.0", 1.0, 0.3}, {"Fig6 H=30% Psw=0.8", 0.8, 0.3},
  };

  std::printf("Headline gain table (max over the T_switch sweep, %% of larger N_tot)\n");
  std::printf("%-22s %14s %22s %14s %22s\n", "configuration", "max TP->BCS", "(at T_switch)",
              "max BCS->QBC", "(at T_switch)");

  f64 global_tp_gain = 0.0, global_qbc_gain = 0.0;
  for (const Row& row : rows) {
    sim::FigureSpec spec;
    spec.title = row.name;
    spec.base.sim_length = args.get_f64("length", 300'000.0);
    spec.base.p_switch = row.p_switch;
    spec.base.heterogeneity = row.h;
    sim::apply_cli_flags(spec, args);
    const sim::FigureResult result =
        sim::run_figure(spec, sim::ExperimentOptions{}, args.get_u32("threads", 0));

    f64 tp_gain = 0.0, qbc_gain = 0.0, tp_at = 0.0, qbc_at = 0.0;
    for (usize p = 0; p < result.t_switch_values.size(); ++p) {
      if (result.gain_percent(p, 0, 1) > tp_gain) {
        tp_gain = result.gain_percent(p, 0, 1);
        tp_at = result.t_switch_values[p];
      }
      if (result.gain_percent(p, 1, 2) > qbc_gain) {
        qbc_gain = result.gain_percent(p, 1, 2);
        qbc_at = result.t_switch_values[p];
      }
    }
    global_tp_gain = std::max(global_tp_gain, tp_gain);
    global_qbc_gain = std::max(global_qbc_gain, qbc_gain);
    std::printf("%-22s %13.1f%% %22.0f %13.1f%% %22.0f\n", row.name, tp_gain, tp_at, qbc_gain,
                qbc_at);
  }
  std::printf("\npaper claims : TP->BCS up to ~90%% (at T_switch=10000); "
              "BCS->QBC up to ~15%% (P_switch=0.8), up to ~23%% (heterogeneous)\n");
  std::printf("measured     : TP->BCS up to %.1f%%; BCS->QBC up to %.1f%%\n", global_tp_gain,
              global_qbc_gain);
  return 0;
}
