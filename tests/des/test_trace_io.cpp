#include "des/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mobichk::des {
namespace {

std::vector<TraceRecord> sample_records() {
  return {
      {0.0, 1, TraceKind::kInternalEvent, 5, 0},
      {1.25, 2, TraceKind::kSend, 10, 3},
      {1.26, 3, TraceKind::kDeliver, 10, 2},
      {2.5, 3, TraceKind::kReceive, 10, 2},
      {7.125, 1, TraceKind::kHandoff, 0, 4},
      {9.0, 1, TraceKind::kBasicCheckpoint, 3, 1},
  };
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const auto records = sample_records();
  std::stringstream ss;
  write_trace(ss, records);
  const auto back = read_trace(ss);
  ASSERT_EQ(back.size(), records.size());
  for (usize i = 0; i < records.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i].time, records[i].time);
    EXPECT_EQ(back[i].actor, records[i].actor);
    EXPECT_EQ(back[i].kind, records[i].kind);
    EXPECT_EQ(back[i].a, records[i].a);
    EXPECT_EQ(back[i].b, records[i].b);
  }
}

TEST(TraceIo, RoundTripPreservesHash) {
  const auto records = sample_records();
  HashSink before;
  for (const auto& r : records) before.record(r);
  std::stringstream ss;
  write_trace(ss, records);
  HashSink after;
  for (const auto& r : read_trace(ss)) after.record(r);
  EXPECT_EQ(before.hash(), after.hash());
}

TEST(TraceIo, ExactDoubleTimesSurvive) {
  // Full 17-digit precision: an awkward time value must round-trip bit
  // for bit.
  std::vector<TraceRecord> records{{0.1 + 0.2, 0, TraceKind::kUser, 0, 0}};
  std::stringstream ss;
  write_trace(ss, records);
  const auto back = read_trace(ss);
  EXPECT_EQ(back[0].time, 0.1 + 0.2);
}

TEST(TraceIo, RejectsBadHeader) {
  std::stringstream ss("not-a-trace\n1 2 3 4 5\n");
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsMalformedRecord) {
  std::stringstream ss("mobichk-trace v1\n1.0\tnot-a-number\n");
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsUnknownKind) {
  std::stringstream ss("mobichk-trace v1\n1.0\t0\t250\t0\t0\n");
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, EmptyTraceIsValid) {
  std::stringstream ss;
  write_trace(ss, {});
  EXPECT_TRUE(read_trace(ss).empty());
}

TEST(TraceIo, StreamSinkMatchesBatchWriter) {
  const auto records = sample_records();
  std::stringstream batch, stream;
  write_trace(batch, records);
  {
    StreamSink sink(stream);
    for (const auto& r : records) sink.record(r);
  }
  EXPECT_EQ(batch.str(), stream.str());
}

TEST(TraceSummary, CountsPerKind) {
  const auto s = summarize(sample_records());
  EXPECT_EQ(s.total, 6u);
  EXPECT_EQ(s.of(TraceKind::kSend), 1u);
  EXPECT_EQ(s.of(TraceKind::kInternalEvent), 1u);
  EXPECT_EQ(s.of(TraceKind::kForcedCheckpoint), 0u);
  EXPECT_DOUBLE_EQ(s.first_time, 0.0);
  EXPECT_DOUBLE_EQ(s.last_time, 9.0);
}

}  // namespace
}  // namespace mobichk::des
