// Differential determinism audit for the DES core.
//
// A run is specified to be a pure function of (SimConfig, seed) and
// independent of the event-queue implementation: the queues order events
// by (time, seq), so binary-heap, calendar and the reference sorted-list
// queue must produce bit-identical traces. This module makes that
// contract machine-checkable: it executes the same config under every
// queue kind and cross-checks trace hashes, event counts, workload ops
// and per-protocol N_tot, plus each run's engine invariant ledger.
//
// Every perf PR that touches src/des/ gets a one-command regression
// oracle: `mobichk_cli audit` (or `run --audit-determinism`).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace mobichk::sim {

/// One queue implementation's outcome for the audited config.
struct AuditRun {
  std::string queue_name;
  u64 trace_hash = 0;
  u64 events_executed = 0;
  u64 workload_ops = 0;
  bool invariants_ok = true;
  /// (protocol name, N_tot) in slot order.
  std::vector<std::pair<std::string, u64>> n_tot;
};

/// Outcome of a differential audit across queue implementations.
struct AuditReport {
  std::vector<AuditRun> runs;
  /// Human-readable divergences; empty iff the engine is deterministic
  /// across queue kinds and every run's invariants reconciled.
  std::vector<std::string> mismatches;

  bool deterministic() const noexcept { return mismatches.empty(); }

  /// Prints a per-queue table plus PASS/FAIL verdict.
  void print(std::ostream& os) const;
};

/// Runs `cfg` once per queue kind (binary-heap, calendar, sorted-list
/// reference) with trace hashing forced on, and cross-checks the results
/// against the first run. `opts.queue_kind` is ignored.
AuditReport audit_determinism(const SimConfig& cfg, ExperimentOptions opts = {});

}  // namespace mobichk::sim
