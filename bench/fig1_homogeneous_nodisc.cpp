// Reproduces Fig. 1 — N_tot vs T_switch, homogeneous (H=0%), P_s=0.4, P_switch=1.0 (no disconnections)
#include "figure_common.hpp"

int main(int argc, char** argv) {
  return mobichk::bench::run_paper_figure(
      {"Fig. 1 — N_tot vs T_switch, homogeneous (H=0%), P_s=0.4, P_switch=1.0 (no disconnections)", 1.0, 0.0}, argc, argv);
}
