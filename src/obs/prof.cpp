#include "obs/prof.hpp"

#include <algorithm>

namespace mobichk::obs {

namespace {

thread_local ProfLane* tls_prof_lane = nullptr;

// Phase names must track des::EventKind's enumerators, mirroring the
// des.dispatch.* counters in probes.cpp so the two catalogs line up.
constexpr const char* kKindNames[ProfLane::kMaxEventKinds] = {
    "closure",  "message_hop", "handoff", "connectivity",
    "workload_op", "checkpoint_transfer", "crash", "recover",
};

void push_phase(std::vector<MetricSample>& out, const std::string& name, const PhaseAccum& acc) {
  out.push_back(MetricSample{name + ".seconds", acc.seconds()});
  out.push_back(MetricSample{name + ".count", static_cast<f64>(acc.count)});
}

}  // namespace

void set_prof_tls_lane(ProfLane* lane) noexcept { tls_prof_lane = lane; }
ProfLane* prof_tls_lane() noexcept { return tls_prof_lane; }

const char* prof_kind_name(usize kind) noexcept { return kKindNames[kind]; }

Profiler::Profiler() : t0_ns_(prof_now_ns()) { ensure_lanes(1); }

void Profiler::ensure_lanes(usize n) {
  while (lanes_.size() < n) lanes_.push_back(std::make_unique<ProfLane>());
}

ProfLane& Profiler::lane() noexcept {
  ProfLane* l = tls_prof_lane;
  return l != nullptr ? *l : *lanes_[0];
}

u64 Profiler::dispatch_count(usize kind) const {
  u64 total = 0;
  for (const auto& l : lanes_) total += l->dispatch[kind].count;
  return total;
}

f64 Profiler::dispatch_seconds(usize kind) const {
  u64 ns = 0;
  for (const auto& l : lanes_) ns += l->dispatch[kind].ns;
  return static_cast<f64>(ns) * 1e-9;
}

u64 Profiler::events_total() const {
  u64 total = 0;
  for (const auto& l : lanes_) total += l->events;
  return total;
}

f64 Profiler::imbalance_ratio() const {
  // Shard lanes are 1..n-1; lane 0 is the coordinator. With fewer than
  // two shard lanes (sequential run) imbalance is 1 by definition.
  if (lanes_.size() < 3) return 1.0;
  f64 max_busy = 0.0;
  f64 sum_busy = 0.0;
  for (usize i = 1; i < lanes_.size(); ++i) {
    const f64 busy = lanes_[i]->window.seconds();
    max_busy = std::max(max_busy, busy);
    sum_busy += busy;
  }
  const f64 mean = sum_busy / static_cast<f64>(lanes_.size() - 1);
  return mean > 0.0 ? max_busy / mean : 1.0;
}

std::vector<MetricSample> Profiler::snapshot() const {
  std::vector<MetricSample> out;

  // Lane-summed phase totals first (the "where did the time go" table).
  ProfLane sum;
  for (const auto& l : lanes_) {
    for (usize k = 0; k < ProfLane::kMaxEventKinds; ++k) {
      sum.dispatch[k].ns += l->dispatch[k].ns;
      sum.dispatch[k].count += l->dispatch[k].count;
    }
    auto merge = [](PhaseAccum& into, const PhaseAccum& from) {
      into.ns += from.ns;
      into.count += from.count;
    };
    merge(sum.queue_push, l->queue_push);
    merge(sum.queue_pop, l->queue_pop);
    merge(sum.queue_cancel, l->queue_cancel);
    merge(sum.net_leg, l->net_leg);
    merge(sum.pb_encode, l->pb_encode);
    merge(sum.pb_merge, l->pb_merge);
    for (usize k = 0; k < ProfLane::kMaxProtoSlots; ++k) {
      merge(sum.proto[k], l->proto[k]);
    }
    merge(sum.storage, l->storage);
    merge(sum.window, l->window);
    merge(sum.barrier, l->barrier);
    sum.events += l->events;
    sum.slices_dropped += l->slices_dropped;
  }

  for (usize k = 0; k < ProfLane::kMaxEventKinds; ++k) {
    push_phase(out, std::string("prof.dispatch.") + kKindNames[k], sum.dispatch[k]);
  }
  push_phase(out, "prof.queue.push", sum.queue_push);
  push_phase(out, "prof.queue.pop", sum.queue_pop);
  push_phase(out, "prof.queue.cancel", sum.queue_cancel);
  push_phase(out, "prof.net.leg", sum.net_leg);
  push_phase(out, "prof.net.pb_encode", sum.pb_encode);
  push_phase(out, "prof.net.pb_merge", sum.pb_merge);
  for (usize k = 0; k < ProfLane::kMaxProtoSlots; ++k) {
    if (sum.proto[k].count == 0) continue;  // unused slots stay out of the catalog
    const std::string label = k < slot_names_.size() && !slot_names_[k].empty()
                                  ? slot_names_[k]
                                  : "slot" + std::to_string(k);
    push_phase(out, "prof.proto." + label, sum.proto[k]);
  }
  push_phase(out, "prof.storage", sum.storage);
  out.push_back(MetricSample{"prof.events", static_cast<f64>(sum.events)});
  if (sum.slices_dropped > 0) {
    out.push_back(MetricSample{"prof.slices_dropped", static_cast<f64>(sum.slices_dropped)});
  }

  // Per-shard balance gauges (shard lanes only exist in sharded runs).
  if (lanes_.size() > 1) {
    for (usize i = 1; i < lanes_.size(); ++i) {
      const ProfLane& l = *lanes_[i];
      const std::string base = "prof.shard." + std::to_string(i - 1);
      out.push_back(MetricSample{base + ".busy_seconds", l.window.seconds()});
      out.push_back(MetricSample{base + ".barrier_seconds", l.barrier.seconds()});
      out.push_back(MetricSample{base + ".events", static_cast<f64>(l.events)});
    }
    out.push_back(MetricSample{"prof.coordinator.barrier_seconds", lanes_[0]->barrier.seconds()});
    out.push_back(MetricSample{"prof.imbalance_ratio", imbalance_ratio()});
  }
  return out;
}

}  // namespace mobichk::obs
