#include "core/recovery_time.hpp"

#include <gtest/gtest.h>

namespace mobichk::core {
namespace {

CheckpointRecord member_at(net::MssId loc) {
  CheckpointRecord rec;
  rec.location = loc;
  return rec;
}

RollbackResult make_rollback(std::vector<const CheckpointRecord*> members,
                             std::vector<u64> line_pos, std::vector<u64> fail_pos) {
  RollbackResult rb;
  rb.line.members = std::move(members);
  rb.line.pos = std::move(line_pos);
  rb.fail_pos = std::move(fail_pos);
  rb.checkpoints_discarded.assign(rb.line.pos.size(), 0);
  return rb;
}

TEST(RecoveryTime, VirtualMembersCostNothing) {
  const auto rb = make_rollback({nullptr, nullptr}, {10, 20}, {10, 20});
  const auto est = estimate_recovery_time(rb, {0, 1}, 2);
  EXPECT_EQ(est.hosts_rolled_back, 0u);
  EXPECT_DOUBLE_EQ(est.state_transfer, 0.0);
  EXPECT_DOUBLE_EQ(est.replay, 0.0);
  EXPECT_GT(est.coordination, 0.0);  // the notification round still happens
}

TEST(RecoveryTime, LocalCheckpointNeedsOnlyWirelessLeg) {
  const CheckpointRecord member = member_at(0);
  RecoveryTimeConfig cfg;
  cfg.state_bytes = 1000;
  cfg.wireless_bandwidth = 100.0;  // 10 tu transmission
  const auto rb = make_rollback({&member, nullptr}, {5, 20}, {9, 20});
  const auto est = estimate_recovery_time(rb, {0, 1}, 2, cfg);
  EXPECT_EQ(est.hosts_rolled_back, 1u);
  EXPECT_NEAR(est.state_transfer, cfg.wireless_latency + 10.0, 1e-9);
  EXPECT_EQ(est.wired_bytes, 0u);
  EXPECT_EQ(est.wireless_bytes, 1000u);
}

TEST(RecoveryTime, RemoteCheckpointAddsWiredFetch) {
  const CheckpointRecord member = member_at(3);  // stored elsewhere
  RecoveryTimeConfig cfg;
  cfg.state_bytes = 1000;
  cfg.wireless_bandwidth = 100.0;
  cfg.wired_bandwidth = 1000.0;  // 1 tu wired transmission
  const auto rb = make_rollback({&member, nullptr}, {5, 20}, {9, 20});
  const auto est = estimate_recovery_time(rb, {0, 1}, 4, cfg);
  EXPECT_NEAR(est.state_transfer,
              (cfg.wireless_latency + 10.0) + (cfg.wired_latency + 1.0), 1e-9);
  EXPECT_EQ(est.wired_bytes, 1000u);
}

TEST(RecoveryTime, SameCellTransfersSerialize) {
  const CheckpointRecord m0 = member_at(0);
  const CheckpointRecord m1 = member_at(1);
  RecoveryTimeConfig cfg;
  cfg.state_bytes = 1000;
  cfg.wireless_bandwidth = 100.0;
  // Both hosts recover in cell 0; host 1's image additionally needs a
  // wired fetch from MSS 1. The cell serializes the two downloads.
  const auto rb = make_rollback({&m0, &m1}, {5, 5}, {5, 5});
  const auto est = estimate_recovery_time(rb, {0, 0}, 2, cfg);
  const f64 wired = cfg.wired_latency + 1000.0 / cfg.wired_bandwidth;
  EXPECT_NEAR(est.state_transfer, 2.0 * (cfg.wireless_latency + 10.0) + wired, 1e-9);
  // In their own cells (each next to its image) they proceed in parallel.
  const auto est2 = estimate_recovery_time(rb, {0, 1}, 2, cfg);
  EXPECT_NEAR(est2.state_transfer, cfg.wireless_latency + 10.0, 1e-9);
}

TEST(RecoveryTime, ReplayIsTheSlowestHost) {
  const CheckpointRecord m0 = member_at(0);
  const CheckpointRecord m1 = member_at(1);
  RecoveryTimeConfig cfg;
  cfg.event_replay_time = 2.0;
  cfg.restart_overhead = 1.0;
  const auto rb = make_rollback({&m0, &m1}, {10, 40}, {30, 50});  // undone: 20, 10
  const auto est = estimate_recovery_time(rb, {0, 1}, 2, cfg);
  EXPECT_DOUBLE_EQ(est.replay, 1.0 + 20.0 * 2.0);
  EXPECT_DOUBLE_EQ(est.total(), est.coordination + est.state_transfer + est.replay);
}

TEST(RecoveryTime, Validation) {
  RecoveryTimeConfig cfg;
  cfg.wireless_bandwidth = 0.0;
  const auto rb = make_rollback({nullptr}, {0}, {0});
  EXPECT_THROW(estimate_recovery_time(rb, {0}, 1, cfg), std::invalid_argument);
  EXPECT_THROW(estimate_recovery_time(rb, {0, 1}, 2), std::invalid_argument);
}

TEST(RecoveryTime, ZeroHostRollbackIsFree) {
  // Regression: an empty rollback (zero-host log, n_mss == 0) used to
  // dereference *std::max_element on an empty cell vector. It must price
  // to exactly zero instead.
  const auto rb = make_rollback({}, {}, {});
  const auto est = estimate_recovery_time(rb, {}, 0);
  EXPECT_EQ(est.hosts_rolled_back, 0u);
  EXPECT_DOUBLE_EQ(est.coordination, 0.0);
  EXPECT_DOUBLE_EQ(est.state_transfer, 0.0);
  EXPECT_DOUBLE_EQ(est.replay, 0.0);
  EXPECT_DOUBLE_EQ(est.total(), 0.0);
}

TEST(RecoveryTime, HostMssEntryOutOfRangeThrows) {
  // A rolled-back host attached to a cell >= n_mss is a wiring bug — it
  // must surface as invalid_argument, not as an out-of-bounds write into
  // the per-cell busy vector.
  const CheckpointRecord member = member_at(0);
  const auto rb = make_rollback({&member}, {5}, {9});
  EXPECT_THROW(estimate_recovery_time(rb, {2}, 2), std::invalid_argument);
  EXPECT_NO_THROW(estimate_recovery_time(rb, {1}, 2));
}

}  // namespace
}  // namespace mobichk::core
