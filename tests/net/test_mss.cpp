#include "net/mss.hpp"

#include <gtest/gtest.h>

namespace mobichk::net {
namespace {

AppMessage msg(u64 id) {
  AppMessage m;
  m.id = id;
  return m;
}

/// Mss buffers now live in the HostArena (owner-shard locality); tests
/// provide one sized for the host ids they use.
HostArena arena(u32 n_hosts) {
  HostArena a;
  a.init(n_hosts);
  return a;
}

TEST(Mss, BuffersPerHostFifo) {
  HostArena a = arena(8);
  Mss mss(0, &a);
  mss.buffer_message(1, msg(10));
  mss.buffer_message(1, msg(11));
  mss.buffer_message(2, msg(20));
  EXPECT_EQ(mss.buffered_count(1), 2u);
  EXPECT_EQ(mss.buffered_count(2), 1u);
  const auto drained = mss.drain_buffer(1);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].id, 10u);  // FIFO order preserved
  EXPECT_EQ(drained[1].id, 11u);
  EXPECT_EQ(mss.buffered_count(1), 0u);
  EXPECT_EQ(mss.buffered_count(2), 1u);  // other hosts untouched
}

TEST(Mss, DrainEmptyIsEmpty) {
  HostArena a = arena(8);
  Mss mss(3, &a);
  EXPECT_TRUE(mss.drain_buffer(7).empty());
  EXPECT_EQ(mss.buffered_count(7), 0u);
}

TEST(Mss, LifetimeCountersAccumulate) {
  HostArena a = arena(8);
  Mss mss(1, &a);
  EXPECT_EQ(mss.id(), 1u);
  mss.buffer_message(0, msg(1));
  mss.drain_buffer(0);
  mss.buffer_message(0, msg(2));
  EXPECT_EQ(mss.messages_buffered(), 2u);  // lifetime, not current
  mss.note_routed();
  mss.note_routed();
  EXPECT_EQ(mss.messages_routed(), 2u);
}

TEST(Mss, RebufferingAfterDrainWorks) {
  HostArena a = arena(8);
  Mss mss(0, &a);
  mss.buffer_message(5, msg(1));
  mss.drain_buffer(5);
  mss.buffer_message(5, msg(2));
  const auto drained = mss.drain_buffer(5);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].id, 2u);
}

}  // namespace
}  // namespace mobichk::net
