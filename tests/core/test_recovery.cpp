#include "core/recovery.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mobichk::core {
namespace {

CheckpointRecord make(net::HostId host, u64 sn, u64 pos,
                      CheckpointKind kind = CheckpointKind::kBasic) {
  CheckpointRecord rec;
  rec.host = host;
  rec.sn = sn;
  rec.event_pos = pos;
  rec.kind = kind;
  return rec;
}

TEST(IndexRecoveryLine, SameIndexMembers) {
  CheckpointLog log(2);
  log.append(make(0, 0, 0, CheckpointKind::kInitial));
  log.append(make(1, 0, 0, CheckpointKind::kInitial));
  log.append(make(0, 1, 10));
  log.append(make(1, 1, 12));
  const auto cut = index_recovery_line(log, 1, IndexLineRule::kFirstAtLeast, {50, 50});
  EXPECT_EQ(cut.pos[0], 10u);
  EXPECT_EQ(cut.pos[1], 12u);
  EXPECT_EQ(cut.virtual_members(), 0u);
}

TEST(IndexRecoveryLine, JumpTakesFirstGreater) {
  CheckpointLog log(2);
  log.append(make(0, 0, 0));
  log.append(make(1, 0, 0));
  log.append(make(0, 3, 10));  // host 0 jumped 1 and 2
  log.append(make(1, 1, 8));
  const auto cut = index_recovery_line(log, 1, IndexLineRule::kFirstAtLeast, {50, 50});
  EXPECT_EQ(cut.members[0]->sn, 3u);  // first with sn >= 1
  EXPECT_EQ(cut.members[1]->sn, 1u);
}

TEST(IndexRecoveryLine, MissingIndexYieldsVirtualMember) {
  CheckpointLog log(2);
  log.append(make(0, 0, 0));
  log.append(make(1, 0, 0));
  log.append(make(0, 5, 20));
  const auto cut = index_recovery_line(log, 5, IndexLineRule::kFirstAtLeast, {99, 42});
  EXPECT_EQ(cut.members[0]->sn, 5u);
  EXPECT_EQ(cut.members[1], nullptr);
  EXPECT_EQ(cut.pos[1], 42u);  // the host's current state
  EXPECT_EQ(cut.virtual_members(), 1u);
}

TEST(IndexRecoveryLine, QbcRuleUsesLastReplacement) {
  CheckpointLog log(1);
  log.append(make(0, 0, 0, CheckpointKind::kInitial));
  log.append(make(0, 0, 7));   // equivalence replacement
  log.append(make(0, 0, 15));  // another replacement
  log.append(make(0, 1, 20));
  const auto first = index_recovery_line(log, 0, IndexLineRule::kFirstAtLeast, {30});
  const auto last = index_recovery_line(log, 0, IndexLineRule::kLastEqual, {30});
  EXPECT_EQ(first.pos[0], 0u);
  EXPECT_EQ(last.pos[0], 15u);  // the freshest equivalent checkpoint
}

TEST(IndexRecoveryLine, QbcRuleFallsBackToFirstGreater) {
  CheckpointLog log(1);
  log.append(make(0, 0, 0));
  log.append(make(0, 4, 9));
  const auto cut = index_recovery_line(log, 2, IndexLineRule::kLastEqual, {30});
  EXPECT_EQ(cut.members[0]->sn, 4u);
}

TEST(IndexRecoveryLine, RejectsSizeMismatch) {
  CheckpointLog log(2);
  EXPECT_THROW(index_recovery_line(log, 0, IndexLineRule::kFirstAtLeast, {1}),
               std::invalid_argument);
}

TEST(TpRecoveryLine, FollowsDependencyVectors) {
  CheckpointLog log(3);
  log.append(make(0, 0, 0, CheckpointKind::kInitial));
  log.append(make(1, 0, 0, CheckpointKind::kInitial));
  log.append(make(2, 0, 0, CheckpointKind::kInitial));
  log.append(make(1, 1, 14));
  CheckpointRecord anchor = make(0, 1, 10);
  anchor.dep_ckpt = {1, 1, 0};  // needs own #1, host1's #1, host2's #0
  const CheckpointRecord& stored = log.append(std::move(anchor));
  const auto cut = tp_recovery_line(log, stored, {20, 20, 20});
  EXPECT_EQ(cut.pos[0], 10u);
  EXPECT_EQ(cut.pos[1], 14u);
  EXPECT_EQ(cut.pos[2], 0u);
}

TEST(TpRecoveryLine, MissingRequiredCheckpointIsVirtual) {
  CheckpointLog log(2);
  log.append(make(0, 0, 0, CheckpointKind::kInitial));
  log.append(make(1, 0, 0, CheckpointKind::kInitial));
  CheckpointRecord anchor = make(0, 1, 10);
  anchor.dep_ckpt = {1, 1};  // host1's #1 does not exist yet
  const CheckpointRecord& stored = log.append(std::move(anchor));
  const auto cut = tp_recovery_line(log, stored, {10, 33});
  EXPECT_EQ(cut.members[1], nullptr);
  EXPECT_EQ(cut.pos[1], 33u);
}

TEST(TpRecoveryLine, RequiresDependencyVectors) {
  CheckpointLog log(2);
  const CheckpointRecord& anchor = log.append(make(0, 0, 0));
  EXPECT_THROW(tp_recovery_line(log, anchor, {0, 0}), std::invalid_argument);
}

TEST(FindOrphans, DetectsExactlyTheCrossingMessages) {
  MessageLog messages;
  messages.note_send(1, 0, 1, 5);
  messages.note_receive(1, 6, 0);  // inside-inside
  messages.note_send(2, 0, 1, 15);
  messages.note_receive(2, 8, 0);  // sent after cut[0]=10, received before cut[1]=10: orphan
  messages.note_send(3, 1, 0, 12);
  messages.note_receive(3, 20, 0);  // sent after, received after: in transit, fine
  GlobalCheckpoint cut;
  cut.pos = {10, 10};
  cut.members = {nullptr, nullptr};
  const auto orphans = find_orphans(messages, cut);
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0]->msg_id, 2u);
  EXPECT_FALSE(describe_orphan(*orphans[0], cut).empty());
}

TEST(FindOrphans, BoundaryPositionsCountAsInside) {
  MessageLog messages;
  // Received exactly at the cut position: inside. Sent exactly at the cut
  // position: inside (not orphan).
  messages.note_send(1, 0, 1, 10);
  messages.note_receive(1, 10, 0);
  GlobalCheckpoint cut;
  cut.pos = {10, 10};
  cut.members = {nullptr, nullptr};
  EXPECT_TRUE(find_orphans(messages, cut).empty());
  // Sent one past the cut: orphan.
  messages.note_send(2, 0, 1, 11);
  messages.note_receive(2, 10, 0);
  EXPECT_EQ(find_orphans(messages, cut).size(), 1u);
}

TEST(Rollback, NoOrphansMeansLatestCheckpoints) {
  CheckpointLog log(2);
  log.append(make(0, 0, 0, CheckpointKind::kInitial));
  log.append(make(1, 0, 0, CheckpointKind::kInitial));
  log.append(make(0, 1, 10));
  log.append(make(1, 1, 12));
  MessageLog messages;
  messages.note_send(1, 0, 1, 4);
  messages.note_receive(1, 5, 0);
  const auto result = rollback_to_consistent(log, messages, {20, 20});
  EXPECT_EQ(result.line.pos[0], 10u);
  EXPECT_EQ(result.line.pos[1], 12u);
  EXPECT_EQ(result.total_discarded(), 0u);
  EXPECT_EQ(result.undone_events(), 10u + 8u);
}

TEST(Rollback, SingleOrphanRollsReceiverOnce) {
  CheckpointLog log(2);
  log.append(make(0, 0, 0, CheckpointKind::kInitial));
  log.append(make(1, 0, 0, CheckpointKind::kInitial));
  log.append(make(0, 1, 10));
  log.append(make(1, 1, 10));
  MessageLog messages;
  // Sent by 0 after its last checkpoint, received by 1 before its last
  // checkpoint: 1 must roll back to its initial checkpoint.
  messages.note_send(1, 0, 1, 12);
  messages.note_receive(1, 8, 0);
  const auto result = rollback_to_consistent(log, messages, {15, 15});
  EXPECT_EQ(result.line.pos[0], 10u);
  EXPECT_EQ(result.line.pos[1], 0u);
  EXPECT_EQ(result.checkpoints_discarded[1], 1u);
  EXPECT_TRUE(find_orphans(messages, result.line).empty());
}

TEST(Rollback, DominoEffectCascadesToInitialCheckpoints) {
  CheckpointLog log(2);
  log.append(make(0, 0, 0, CheckpointKind::kInitial));
  log.append(make(1, 0, 0, CheckpointKind::kInitial));
  log.append(make(0, 1, 10));
  log.append(make(1, 1, 10));
  log.append(make(0, 2, 20));
  log.append(make(1, 2, 20));
  MessageLog messages;
  // A chain of crossings that unravels everything (the domino effect).
  messages.note_send(1, 0, 1, 21);
  messages.note_receive(1, 19, 0);  // rolls 1 to pos 10
  messages.note_send(2, 1, 0, 12);
  messages.note_receive(2, 15, 0);  // rolls 0 to pos 10
  messages.note_send(3, 0, 1, 11);
  messages.note_receive(3, 9, 0);  // rolls 1 to pos 0
  messages.note_send(4, 1, 0, 1);
  messages.note_receive(4, 5, 0);  // rolls 0 to pos 0
  const auto result = rollback_to_consistent(log, messages, {25, 25});
  EXPECT_EQ(result.line.pos[0], 0u);
  EXPECT_EQ(result.line.pos[1], 0u);
  EXPECT_EQ(result.checkpoints_discarded[0], 2u);
  EXPECT_EQ(result.checkpoints_discarded[1], 2u);
  EXPECT_EQ(result.undone_events(), 50u);
  EXPECT_TRUE(find_orphans(messages, result.line).empty());
  EXPECT_GE(result.iterations, 2u);
}

TEST(Rollback, StartsFromFailurePositionsNotEnd) {
  CheckpointLog log(2);
  log.append(make(0, 0, 0, CheckpointKind::kInitial));
  log.append(make(1, 0, 0, CheckpointKind::kInitial));
  log.append(make(0, 1, 10));
  log.append(make(0, 2, 20));
  MessageLog messages;
  // Failure of host 0 at pos 15: its pos-20 checkpoint is in the future
  // and must not be used.
  const auto result = rollback_to_consistent(log, messages, {15, 5});
  EXPECT_EQ(result.line.pos[0], 10u);
  EXPECT_EQ(result.line.pos[1], 0u);
}

TEST(Rollback, ReceiveAtPositionZeroCannotUnderflow) {
  // Regression: an orphan received at recv_pos == 0 used to compute
  // recv_pos - 1 on u64, wrapping to ~0 — last_at_or_before_pos then
  // returned the host's *newest* checkpoint instead of one below the
  // receive. The fixed code treats "no event strictly before the
  // receive" as "cannot roll further": the fixpoint terminates and the
  // receiver's cut position is left alone.
  CheckpointLog log(2);
  log.append(make(0, 0, 0, CheckpointKind::kInitial));
  log.append(make(1, 0, 0, CheckpointKind::kInitial));
  log.append(make(0, 1, 10));
  MessageLog messages;
  messages.note_send(1, 0, 1, 11);  // sent beyond host 0's recovery line...
  messages.note_receive(1, 0, 0);   // ...received at host 1's position 0
  const auto result = rollback_to_consistent(log, messages, {11, 5}, net::HostId{0});
  EXPECT_EQ(result.line.pos[0], 10u);
  EXPECT_EQ(result.line.pos[1], 5u);  // cannot roll under a pos-0 receive
  EXPECT_EQ(result.undone_events(), 1u);
  EXPECT_LE(result.iterations, 2u);  // terminates instead of looping
}

TEST(Rollback, SurvivorOnlyLineRollsNobodyBack) {
  // A failure whose victim restores right at its last checkpoint, with no
  // orphan: every survivor keeps its current state (virtual member).
  CheckpointLog log(3);
  for (net::HostId h = 0; h < 3; ++h) log.append(make(h, 0, 0, CheckpointKind::kInitial));
  log.append(make(0, 1, 10));
  MessageLog messages;
  const auto result = rollback_to_consistent(log, messages, {10, 7, 3}, net::HostId{0});
  EXPECT_EQ(result.line.pos[0], 10u);
  EXPECT_EQ(result.line.pos[1], 7u);
  EXPECT_EQ(result.line.pos[2], 3u);
  EXPECT_EQ(result.line.virtual_members(), 2u);
  EXPECT_EQ(result.undone_events(), 0u);
  EXPECT_EQ(result.total_discarded(), 0u);
}

TEST(Rollback, MultiVictimMaskForcesEveryVictimOntoStoredCheckpoints) {
  CheckpointLog log(3);
  for (net::HostId h = 0; h < 3; ++h) log.append(make(h, 0, 0, CheckpointKind::kInitial));
  log.append(make(0, 1, 10));
  log.append(make(1, 1, 8));
  MessageLog messages;
  const auto result =
      rollback_to_consistent(log, messages, {14, 9, 6}, std::vector<bool>{true, true, false});
  EXPECT_EQ(result.line.pos[0], 10u);  // victim: last stored <= 14
  EXPECT_EQ(result.line.pos[1], 8u);   // victim: last stored <= 9
  EXPECT_EQ(result.line.pos[2], 6u);   // survivor: current state
  EXPECT_EQ(result.line.virtual_members(), 1u);
}

TEST(Rollback, MaskSizeMismatchThrows) {
  CheckpointLog log(2);
  log.append(make(0, 0, 0, CheckpointKind::kInitial));
  log.append(make(1, 0, 0, CheckpointKind::kInitial));
  MessageLog messages;
  EXPECT_THROW(rollback_to_consistent(log, messages, {5, 5}, std::vector<bool>{true}),
               std::invalid_argument);
  EXPECT_THROW(rollback_to_consistent(log, messages, {5, 5}, net::HostId{7}),
               std::invalid_argument);
}

TEST(Rollback, ZeroHostLogYieldsEmptyResult) {
  CheckpointLog log(0);
  MessageLog messages;
  const auto generic = rollback_to_consistent(log, messages, {});
  EXPECT_EQ(generic.undone_events(), 0u);
  EXPECT_EQ(generic.total_discarded(), 0u);
  const auto indexed = index_rollback(log, IndexLineRule::kFirstAtLeast, {}, kAllHostsFailed);
  EXPECT_EQ(indexed.undone_events(), 0u);
  EXPECT_EQ(indexed.iterations, 1u);
}

TEST(Rollback, SingleHostLogRollsToItsLatestCheckpoint) {
  CheckpointLog log(1);
  log.append(make(0, 0, 0, CheckpointKind::kInitial));
  log.append(make(0, 1, 6));
  MessageLog messages;
  const auto result = rollback_to_consistent(log, messages, {9}, net::HostId{0});
  EXPECT_EQ(result.line.pos[0], 6u);
  EXPECT_EQ(result.undone_events(), 3u);
  EXPECT_EQ(result.checkpoints_discarded[0], 0u);
}

TEST(Rollback, UndoneEventsThrowsWhenLineIsAboveTheFailureCut) {
  // The fail_pos >= line.pos invariant must surface in release builds
  // too: a hand-built result violating it throws instead of wrapping.
  RollbackResult bad;
  bad.line.pos = {5};
  bad.line.members = {nullptr};
  bad.fail_pos = {3};  // cut below the line: inconsistent inputs
  bad.checkpoints_discarded = {0};
  EXPECT_THROW(bad.undone_events(), std::logic_error);
  RollbackResult mismatched;
  mismatched.line.pos = {5, 5};
  mismatched.fail_pos = {5};
  EXPECT_THROW(mismatched.undone_events(), std::logic_error);
}

TEST(IndexRollback, UsesFailedHostsMaxIndex) {
  CheckpointLog log(3);
  for (net::HostId h = 0; h < 3; ++h) log.append(make(h, 0, 0, CheckpointKind::kInitial));
  log.append(make(0, 1, 10));
  log.append(make(1, 1, 11));
  log.append(make(1, 2, 22));
  // Host 0 fails: its max index is 1.
  const auto result = index_rollback(log, IndexLineRule::kFirstAtLeast, {18, 30, 7}, 0);
  EXPECT_EQ(result.line.index, 1u);
  EXPECT_EQ(result.line.pos[0], 10u);
  EXPECT_EQ(result.line.pos[1], 11u);
  // Host 2 never reached index 1: survives at its current state.
  EXPECT_EQ(result.line.pos[2], 7u);
  EXPECT_EQ(result.undone_events(), 8u + 19u + 0u);
}

TEST(IndexRollback, AllHostsFailedTakesTheMinimumMaxIndex) {
  // Regression: the kAllHostsFailed sentinel used to be passed straight
  // into log.max_sn(failed_host), indexing out of range. A total failure
  // must use M = the highest index *every* host reached.
  CheckpointLog log(3);
  for (net::HostId h = 0; h < 3; ++h) log.append(make(h, 0, 0, CheckpointKind::kInitial));
  log.append(make(0, 1, 10));
  log.append(make(1, 1, 11));
  log.append(make(1, 2, 22));
  log.append(make(2, 1, 9));
  const auto result =
      index_rollback(log, IndexLineRule::kFirstAtLeast, {18, 30, 12}, kAllHostsFailed);
  EXPECT_EQ(result.line.index, 1u);  // min(1, 2, 1)
  EXPECT_EQ(result.line.pos[0], 10u);
  EXPECT_EQ(result.line.pos[1], 11u);
  EXPECT_EQ(result.line.pos[2], 9u);
  EXPECT_EQ(result.line.virtual_members(), 0u);  // total failure: all stored
  EXPECT_EQ(result.checkpoints_discarded[1], 1u);  // host 1 loses sn 2
}

TEST(IndexRollback, MultiVictimMaskUsesTheVictimsSharedIndex) {
  CheckpointLog log(3);
  for (net::HostId h = 0; h < 3; ++h) log.append(make(h, 0, 0, CheckpointKind::kInitial));
  log.append(make(0, 2, 10));
  log.append(make(1, 1, 11));
  log.append(make(2, 5, 9));
  // Hosts 0 and 1 fail: M = min(2, 1) = 1; host 2's max index is ignored.
  const auto result = index_rollback(log, IndexLineRule::kFirstAtLeast, {18, 30, 12},
                                     std::vector<bool>{true, true, false});
  EXPECT_EQ(result.line.index, 1u);
  EXPECT_EQ(result.line.pos[0], 10u);  // first sn >= 1 is the jump to 2
  EXPECT_EQ(result.line.pos[1], 11u);
  EXPECT_EQ(result.line.pos[2], 9u);
}

TEST(IndexRollback, NoFailedHostOnNonEmptyLogThrows) {
  CheckpointLog log(2);
  log.append(make(0, 0, 0, CheckpointKind::kInitial));
  log.append(make(1, 0, 0, CheckpointKind::kInitial));
  EXPECT_THROW(
      index_rollback(log, IndexLineRule::kFirstAtLeast, {5, 5}, std::vector<bool>{false, false}),
      std::invalid_argument);
}

TEST(IndexRollback, MemberBeyondTheFailureCutIsClampedBack) {
  CheckpointLog log(2);
  log.append(make(0, 0, 0, CheckpointKind::kInitial));
  log.append(make(1, 0, 0, CheckpointKind::kInitial));
  log.append(make(0, 1, 10));
  log.append(make(1, 1, 20));
  // Host 0 fails at 12; host 1's index-1 member sits at pos 20, beyond
  // its own failure position 15 — the defensive clamp must pull it back
  // to its last stored checkpoint at or before 15 (the initial one).
  const auto result =
      index_rollback(log, IndexLineRule::kFirstAtLeast, {12, 15}, net::HostId{0});
  EXPECT_EQ(result.line.pos[0], 10u);
  EXPECT_EQ(result.line.pos[1], 0u);
  ASSERT_NE(result.line.members[1], nullptr);
  EXPECT_EQ(result.line.members[1]->sn, 0u);
  EXPECT_NO_THROW(result.undone_events());
}

TEST(IndexRollback, DiscardedCheckpointsCountOrdinalsAboveTheLine) {
  CheckpointLog log(1);
  log.append(make(0, 0, 0, CheckpointKind::kInitial));
  log.append(make(0, 1, 5));
  log.append(make(0, 2, 9));
  log.append(make(0, 3, 14));
  // Failure at pos 15 with every checkpoint stored: rolling to index 3
  // discards nothing; the count is relative to the latest usable one.
  const auto all = index_rollback(log, IndexLineRule::kFirstAtLeast, {15}, net::HostId{0});
  EXPECT_EQ(all.total_discarded(), 0u);
  // Failure at pos 10: the pos-14 checkpoint is unusable (in the future),
  // the line lands on sn 2 at pos 9 and nothing below it is discarded.
  const auto mid = index_rollback(log, IndexLineRule::kFirstAtLeast, {10}, net::HostId{0});
  EXPECT_EQ(mid.line.pos[0], 9u);
  EXPECT_EQ(mid.total_discarded(), 0u);
}

}  // namespace
}  // namespace mobichk::core
