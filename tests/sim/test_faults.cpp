// End-to-end tests of the crash-scenario engine: injected failures must
// execute rollback + replay for every protocol and failure mode, the
// measured numbers must reconcile with the analytical models, and crash
// runs must stay deterministic across event-queue kinds.
#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/audit.hpp"
#include "sim/experiment.hpp"

namespace mobichk::sim {
namespace {

SimConfig crash_config(CrashMode mode, u64 seed = 42) {
  SimConfig cfg;
  cfg.sim_length = 6'000.0;
  cfg.t_switch = 500.0;
  cfg.p_switch = 0.8;
  cfg.seed = seed;
  cfg.faults.mode = mode;
  cfg.faults.first_crash_at = 3'000.0;
  return cfg;
}

TEST(FaultConfig, Validation) {
  SimConfig cfg = crash_config(CrashMode::kMhCrash);
  EXPECT_NO_THROW(cfg.validate());
  cfg.faults.first_crash_at = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.faults.first_crash_at = 10.0;
  cfg.faults.target = cfg.network.n_hosts;  // out of range
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.faults.target = FaultConfig::kRandomTarget;
  cfg.faults.max_crashes = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.faults.max_crashes = 1;
  cfg.faults.mode = CrashMode::kCorrelated;
  cfg.faults.correlated = cfg.network.n_hosts + 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  // Disabled faults skip every check.
  cfg.faults.mode = CrashMode::kNone;
  cfg.faults.first_crash_at = -5.0;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(CrashEngine, EveryProtocolSurvivesEveryFailureMode) {
  for (const auto kind : core::all_protocol_kinds()) {
    for (const auto mode :
         {CrashMode::kMhCrash, CrashMode::kCorrelated, CrashMode::kCellOutage}) {
      SimConfig cfg = crash_config(mode);
      ExperimentOptions opts;
      opts.protocols = {kind};
      Experiment exp(cfg, opts);
      exp.run();
      const RunResult& r = exp.result();
      ASSERT_NE(exp.faults(), nullptr);
      EXPECT_EQ(r.recovery.crashes_executed, 1u)
          << core::protocol_kind_name(kind) << " / " << crash_mode_name(mode);
      EXPECT_GE(r.recovery.hosts_crashed, 1u);
      EXPECT_GE(r.net.crashes, r.recovery.hosts_crashed);  // victims + forced survivors
      // Every record reconciles: the executed rollback is slot 0's.
      for (const CrashRecord& rec : exp.faults()->records()) {
        ASSERT_EQ(rec.slot_undone.size(), 1u);
        EXPECT_EQ(rec.undone_events, rec.slot_undone[0]);
        EXPECT_GE(rec.hosts_taken_down, rec.victims.size());
        EXPECT_LE(rec.planned_recovery, rec.estimated_recovery + 1e-9)
            << "pipelined plan must not exceed the phase-barrier estimate";
        // The run either finished the recovery (measured == planned, the
        // restores fired exactly on schedule) or ended while still down.
        if (rec.pending_restores == 0) {
          EXPECT_NEAR(rec.actual_recovery, rec.planned_recovery, 1e-6);
        } else {
          EXPECT_DOUBLE_EQ(rec.actual_recovery, 0.0);
        }
      }
    }
  }
}

TEST(CrashEngine, RestoredHostsRejoinAndKeepWorking) {
  SimConfig cfg = crash_config(CrashMode::kMhCrash);
  ExperimentOptions opts;
  opts.protocols = {core::ProtocolKind::kBcs};
  Experiment exp(cfg, opts);
  exp.run();
  const RunResult& r = exp.result();
  ASSERT_EQ(r.recovery.crashes_executed, 1u);
  // BCS recovery is short relative to the 3000 tu left: everyone rejoined.
  EXPECT_EQ(r.net.restores, r.net.crashes);
  EXPECT_GT(r.recovery.total_recovery_time, 0.0);
  EXPECT_DOUBLE_EQ(r.recovery.max_recovery_time, r.recovery.total_recovery_time);
  // The rejoin runs through on_reconnect: protocols checkpoint on rejoin,
  // so the run keeps making progress after the outage.
  EXPECT_GT(r.protocols[0].n_tot, 0u);
}

TEST(CrashEngine, RepeatedCrashesHonourTheCap) {
  SimConfig cfg = crash_config(CrashMode::kMhCrash);
  cfg.sim_length = 10'000.0;
  cfg.faults.first_crash_at = 1'000.0;
  cfg.faults.crash_interval = 1'500.0;
  cfg.faults.max_crashes = 3;
  ExperimentOptions opts;
  opts.protocols = {core::ProtocolKind::kQbc};
  Experiment exp(cfg, opts);
  exp.run();
  const RunResult& r = exp.result();
  EXPECT_LE(r.recovery.crashes_executed + r.recovery.crashes_skipped, 3u);
  EXPECT_GE(r.recovery.crashes_executed, 1u);
}

TEST(CrashEngine, FixedTargetIsTheVictim) {
  SimConfig cfg = crash_config(CrashMode::kMhCrash);
  cfg.faults.target = 2;
  ExperimentOptions opts;
  opts.protocols = {core::ProtocolKind::kTp};
  Experiment exp(cfg, opts);
  exp.run();
  ASSERT_EQ(exp.faults()->records().size(), 1u);
  const CrashRecord& rec = exp.faults()->records().front();
  ASSERT_EQ(rec.victims.size(), 1u);
  EXPECT_EQ(rec.victims[0], 2u);
}

TEST(CrashEngine, CorrelatedModeKillsTheRequestedNumber) {
  SimConfig cfg = crash_config(CrashMode::kCorrelated);
  cfg.faults.correlated = 3;
  ExperimentOptions opts;
  opts.protocols = {core::ProtocolKind::kBcs};
  Experiment exp(cfg, opts);
  exp.run();
  ASSERT_EQ(exp.faults()->records().size(), 1u);
  EXPECT_EQ(exp.faults()->records().front().victims.size(), 3u);
}

TEST(CrashEngine, OnlineTrackerNeverOvershootsTheExecutedLine) {
  // The RecoveryLineTracker commits indices it has proven recoverable;
  // at crash time the executed index line (the victims' highest reached
  // index) can only be at or above the committed one.
  SimConfig cfg = crash_config(CrashMode::kMhCrash);
  obs::RunObserver observer;
  ExperimentOptions opts;
  opts.protocols = {core::ProtocolKind::kBcs, core::ProtocolKind::kQbc};
  opts.observer = &observer;
  Experiment exp(cfg, opts);
  exp.run();
  for (const CrashRecord& rec : exp.faults()->records()) {
    for (usize slot = 0; slot < rec.slot_line_index.size(); ++slot) {
      if (rec.tracker_line_index[slot] == ~0ULL) continue;  // no tracker
      EXPECT_LE(rec.tracker_line_index[slot], rec.slot_line_index[slot])
          << "slot " << slot;
    }
  }
  // Recovery metrics surfaced through the registry snapshot.
  bool found = false;
  for (const auto& m : exp.result().metrics) {
    if (m.name == "recovery.crashes") {
      found = true;
      EXPECT_DOUBLE_EQ(m.value, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(CrashEngine, MultiProtocolRunsMeasureEverySlot) {
  SimConfig cfg = crash_config(CrashMode::kCellOutage);
  ExperimentOptions opts;
  opts.protocols = {core::ProtocolKind::kTp, core::ProtocolKind::kBcs,
                    core::ProtocolKind::kUncoordinated};
  Experiment exp(cfg, opts);
  exp.run();
  ASSERT_EQ(exp.faults()->records().size(), 1u);
  const CrashRecord& rec = exp.faults()->records().front();
  ASSERT_EQ(rec.slot_undone.size(), 3u);
  ASSERT_EQ(rec.slot_line_index.size(), 3u);
  // The executed rollback is slot 0's; the others are measured on their
  // own checkpoint logs against the same crash.
  EXPECT_EQ(rec.undone_events, rec.slot_undone[0]);
  // No cross-protocol ordering of undone work holds here: BCS's index
  // line is built without a global search and routinely undoes more
  // than the optimal consistent cut the generic rollback finds.
  EXPECT_GT(rec.slot_undone[1], 0u);
}

TEST(CrashEngine, CrashRunsAreDeterministicAcrossQueueKinds) {
  SimConfig cfg = crash_config(CrashMode::kCorrelated, 7);
  ExperimentOptions opts;
  opts.protocols = {core::ProtocolKind::kBcs};
  const AuditReport report = audit_determinism(cfg, opts);
  EXPECT_TRUE(report.deterministic()) << "crash-and-recover run diverged across queue kinds";
}

TEST(CrashEngine, SameSeedSameCrashStory) {
  SimConfig cfg = crash_config(CrashMode::kMhCrash, 9);
  cfg.faults.crash_interval = 800.0;
  cfg.faults.max_crashes = 2;
  ExperimentOptions opts;
  opts.protocols = {core::ProtocolKind::kQbc};
  Experiment a(cfg, opts);
  a.run();
  Experiment b(cfg, opts);
  b.run();
  ASSERT_EQ(a.faults()->records().size(), b.faults()->records().size());
  for (usize i = 0; i < a.faults()->records().size(); ++i) {
    const CrashRecord& ra = a.faults()->records()[i];
    const CrashRecord& rb = b.faults()->records()[i];
    EXPECT_DOUBLE_EQ(ra.t, rb.t);
    EXPECT_EQ(ra.victims, rb.victims);
    EXPECT_EQ(ra.undone_events, rb.undone_events);
    EXPECT_EQ(ra.replayed_messages, rb.replayed_messages);
    EXPECT_DOUBLE_EQ(ra.actual_recovery, rb.actual_recovery);
  }
}

TEST(CrashEngine, DisabledFaultsLeaveTheRunUntouched) {
  SimConfig plain;
  plain.sim_length = 2'000.0;
  plain.seed = 11;
  ExperimentOptions opts;
  opts.collect_trace_hash = true;
  const RunResult base = run_experiment(plain, opts);
  SimConfig with_cfg = plain;
  with_cfg.faults.recovery.state_bytes = 123;  // config present but mode off
  const RunResult same = run_experiment(with_cfg, opts);
  EXPECT_EQ(base.trace_hash, same.trace_hash);
  EXPECT_EQ(base.recovery.crashes_executed, 0u);
  EXPECT_EQ(same.recovery.crashes_executed, 0u);
}

}  // namespace
}  // namespace mobichk::sim
