// Parallel experiment sweeps: run many independent simulations across a
// thread pool and aggregate per-point, per-protocol statistics.
//
// Every simulation is fully determined by its SimConfig (including the
// seed), so runs are embarrassingly parallel; the pool simply hands out
// job indices. On top of that, run_figure() is an *adaptive-precision*
// engine: replications are dispatched in deterministic batches and each
// sweep point stops as soon as the 95% CI relative half-width of every
// protocol cell reaches the target precision (the paper reports
// replications "within 4% of each other"), bounded by min_seeds/max_seeds.
// The stopping decision is evaluated sequentially in replication order,
// so the reported cells are bit-identical for any thread count and any
// batch size.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "des/stats.hpp"
#include "sim/experiment.hpp"

namespace mobichk::sim {

class ArgParser;

/// Runs every (cfg, opts) job, possibly concurrently, and returns results
/// in job order. `threads` = 0 picks the hardware concurrency.
std::vector<RunResult> run_parallel(const std::vector<SimConfig>& configs,
                                    const ExperimentOptions& opts, u32 threads = 0);

/// Specification of one paper figure: N_tot vs T_switch for a protocol set.
struct FigureSpec {
  std::string title;
  SimConfig base;                       ///< p_switch / heterogeneity / length set here.
  std::vector<f64> t_switch_values{100, 200, 500, 1'000, 2'000, 5'000, 10'000};
  std::vector<core::ProtocolKind> protocols{core::ProtocolKind::kTp, core::ProtocolKind::kBcs,
                                            core::ProtocolKind::kQbc};

  /// Stop a point once every protocol cell's relative 95% CI half-width
  /// is at or below this (0.04 = the paper's 4% spread).
  f64 target_relative_ci = 0.04;
  u32 min_seeds = 3;   ///< Replications always run per point (>= 1).
  u32 max_seeds = 16;  ///< Hard cap per point (>= min_seeds). min == max turns adaptivity off.
  /// Replications dispatched per adaptive round after the initial
  /// min_seeds round; 0 picks a small default. Affects only scheduling
  /// overshoot, never the reported cells.
  u32 batch_size = 0;
  u64 seed_base = 42;  ///< Root of the replication seed derivation.

  /// What each protocol cell measures: metric(run, protocol_slot).
  /// Unset (the default) means the paper's N_tot. The adaptive stopping
  /// rule targets whatever this returns, so custom metrics get the same
  /// precision control as checkpoint counts. NOT serialized:
  /// write_json(FigureSpec) round-trips only the declarative fields, and
  /// benches with custom metrics (fig_dataplane) carry them in code.
  std::function<f64(const RunResult&, usize)> metric;

  /// `metric` if set, else N_tot of the slot.
  f64 metric_value(const RunResult& run, usize protocol) const;

  /// Root seed of replication `replication` of sweep point `point`:
  /// an RngStream substream keyed on (figure title + seed_base, point,
  /// replication). Unlike the old `seed_base + p * seeds + r` scheme it
  /// cannot collide across points when the replication count changes,
  /// and two figures with different titles never share seeds.
  u64 replication_seed(usize point, u32 replication) const noexcept;

  void validate() const;  ///< Throws std::invalid_argument on bad bounds.
};

/// Outcome of the sequential stopping rule for one sweep point.
struct StopDecision {
  u32 seeds_used = 0;      ///< Replications the reported cells include.
  bool target_met = false; ///< True iff the precision target was reached.
};

/// The adaptive stopping rule, factored out for testability: scans
/// n = min_seeds .. min(N, max_seeds) over the ordered replication values
/// (samples[protocol][replication], each series of equal length N) and
/// returns the first n at which every protocol's relative CI half-width
/// is <= target. If no n qualifies, seeds_used = min(N, max_seeds) and
/// target_met = false (callers dispatch more replications while
/// N < max_seeds). Evaluating per-replication rather than per-batch is
/// what makes run_figure's output independent of the batch size.
StopDecision evaluate_stopping_rule(const std::vector<std::vector<f64>>& samples,
                                    u32 min_seeds, u32 max_seeds, f64 target_relative_ci,
                                    f64 confidence = 0.95);

/// Per-run cost accounting of one sweep, aggregated over every simulation
/// the engine executed (including replications dispatched past a point's
/// stopping index; those are discarded from the cells but still paid for).
/// Informational only: wall_seconds and events_per_second vary run to run,
/// so determinism tests must not compare ledgers.
struct SweepLedger {
  f64 wall_seconds = 0.0;
  u64 events_executed = 0;
  u64 replications_run = 0;   ///< Simulations executed (includes overshoot).
  u64 replications_used = 0;  ///< Sum of seeds_used over the points.
  u64 replication_cap = 0;    ///< points x max_seeds.
  u32 shards = 1;             ///< Spatial shards each replication ran with.
  u64 sync_rounds = 0;        ///< Barrier windows, summed over replications.
  /// Coordinator barrier wait, summed (wall time; informational only,
  /// like wall_seconds). Always recorded: 0.0 for sequential sweeps, so
  /// cost reports diff cleanly across shard counts.
  f64 barrier_stall_seconds = 0.0;
  /// Per-point replication wall seconds (index = sweep point), summed
  /// over every replication dispatched for the point — overshoot past
  /// the stopping index included, because its cost was paid. The
  /// attribution knob for "which point is eating the budget".
  std::vector<f64> point_wall_seconds;

  f64 events_per_second() const noexcept {
    return wall_seconds > 0.0 ? static_cast<f64>(events_executed) / wall_seconds : 0.0;
  }
};

/// Aggregated sweep outcome: cells[point][protocol] tallies N_tot across
/// the replications the stopping rule accepted.
struct FigureResult {
  std::string title;
  std::vector<f64> t_switch_values;
  std::vector<std::string> protocol_names;
  std::vector<std::vector<des::Tally>> cells;  ///< [point][protocol].

  f64 target_relative_ci = 0.0;   ///< Echo of the spec's precision target.
  std::vector<u32> seeds_used;    ///< Replications accepted per point.
  std::vector<bool> target_met;   ///< Per point: precision target reached?
  SweepLedger ledger;

  /// Mean N_tot of `protocol` at `point`.
  f64 mean(usize point, usize protocol) const { return cells.at(point).at(protocol).mean(); }

  /// Relative gain of protocol `b` over `a` at `point`:
  /// (N_a - N_b) / N_a, in percent.
  f64 gain_percent(usize point, usize a, usize b) const;

  /// Largest relative half-spread across replications (the paper reports
  /// "within 4% of each other").
  f64 max_relative_spread() const;

  /// True iff every point reached the precision target.
  bool all_targets_met() const;

  /// Paper-style table: one row per T_switch, one column per protocol,
  /// followed by the precision/ledger footer.
  void print(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

  /// Self-contained gnuplot script (inline data, log-log axes like the
  /// paper's figures). Pipe into gnuplot to render.
  void write_gnuplot(std::ostream& os) const;
};

/// Runs the adaptive sweep on `threads` workers. Per point, replications
/// run in deterministic batches until the stopping rule fires or
/// max_seeds is reached; the reported cells depend only on the spec.
FigureResult run_figure(const FigureSpec& spec, const ExperimentOptions& opts = {},
                        u32 threads = 0);

/// Applies the shared sweep CLI flags to a spec: --seeds=<n> (fixed
/// replication: min = max = n), --precision=<rel>, --min-seeds, --max-seeds,
/// --batch, --seed-base. Used by mobichk_cli and every figure/ABL bench.
void apply_cli_flags(FigureSpec& spec, const ArgParser& args);

}  // namespace mobichk::sim
