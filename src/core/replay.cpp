#include "core/replay.hpp"

#include <algorithm>
#include <stdexcept>

namespace mobichk::core {

RecoveryPlan plan_recovery(const RollbackResult& rollback, const MessageLog& messages,
                           const std::vector<bool>& crashed,
                           const std::vector<net::MssId>& host_mss, u32 n_mss,
                           const RecoveryTimeConfig& cfg) {
  const usize n = rollback.line.pos.size();
  if (crashed.size() != n || host_mss.size() != n) {
    throw std::invalid_argument("plan_recovery: crashed/host_mss size mismatch");
  }
  RecoveryPlan plan;
  // Validates cfg and the host_mss entries of every rolled-back host.
  plan.estimate = estimate_recovery_time(rollback, host_mss, n_mss, cfg);
  plan.hosts.resize(n);
  if (n == 0) return plan;

  const f64 coordination = plan.estimate.coordination;
  const f64 wireless_xfer =
      cfg.wireless_latency + static_cast<f64>(cfg.state_bytes) / cfg.wireless_bandwidth;
  const f64 wired_xfer =
      cfg.wired_latency + static_cast<f64>(cfg.state_bytes) / cfg.wired_bandwidth;
  // Each cell's downlink serves its recovering hosts FIFO, starting once
  // the coordination round told everyone which checkpoint to load.
  std::vector<f64> cell_cursor(n_mss, coordination);
  for (usize h = 0; h < n; ++h) {
    HostRecoveryStep& step = plan.hosts[h];
    step.crashed = crashed[h];
    if (step.crashed) ++plan.hosts_down;
    const CheckpointRecord* member = rollback.line.members[h];
    step.participates = step.crashed || member != nullptr;
    if (!step.participates) continue;
    if (rollback.fail_pos.at(h) < rollback.line.pos.at(h)) {
      throw std::logic_error("plan_recovery: line above the failure cut");
    }
    step.undone_events = rollback.fail_pos[h] - rollback.line.pos[h];
    step.restore_done = coordination;
    if (member != nullptr) {
      f64 transfer = wireless_xfer;
      if (member->location != host_mss[h]) transfer += wired_xfer;
      f64& cursor = cell_cursor.at(host_mss[h]);
      cursor += transfer;
      step.restore_done = cursor;
    }
    step.ready_at = step.restore_done + cfg.restart_overhead +
                    static_cast<f64>(step.undone_events) * cfg.event_replay_time;
    plan.undone_events += step.undone_events;
    plan.completion = std::max(plan.completion, step.ready_at);
  }
  // Replay re-consumes every logged delivery the rollback undid: received
  // after the line but at or before the failure cut.
  for (const auto& d : messages.deliveries()) {
    if (d.dst >= n || !plan.hosts[d.dst].participates) continue;
    if (d.recv_pos > rollback.line.pos[d.dst] && d.recv_pos <= rollback.fail_pos[d.dst]) {
      ++plan.hosts[d.dst].replayed_messages;
      ++plan.replayed_messages;
    }
  }
  return plan;
}

}  // namespace mobichk::core
