// Mobile host (MH) view: attachment, connectivity, mailbox, and the
// per-host event-position counter used by the consistency oracle.
//
// MobileHost is mechanism-only and, since the SoA refactor, state-free:
// it is a 16-byte handle over the HostArena that actually stores every
// per-host field (net/host_arena.hpp). Protocol and policy code keeps
// the same read API it always had; mutation stays private to Network.
#pragma once

#include "des/types.hpp"
#include "net/host_arena.hpp"
#include "net/ids.hpp"

namespace mobichk::net {

class Network;

class MobileHost {
 public:
  MobileHost(HostArena* arena, HostId id) noexcept : arena_(arena), id_(id) {}

  HostId id() const noexcept { return id_; }

  /// Current MSS while connected; last MSS while disconnected.
  MssId mss() const noexcept { return arena_->mss[id_]; }

  bool connected() const noexcept { return arena_->connected[id_] != 0; }

  /// Number of messages delivered but not yet consumed by the application.
  usize mailbox_size() const noexcept { return arena_->mailbox[id_].size(); }

  /// Monotonic per-host event position; advanced once per application
  /// event (internal, send, receive). Checkpoints record the position at
  /// which they were taken, which lets the oracle decide whether a message
  /// crosses a cut.
  u64 event_pos() const noexcept { return arena_->event_pos[id_]; }

 private:
  friend class Network;

  u64 advance_pos() noexcept { return ++arena_->event_pos[id_]; }
  Mailbox& mailbox() noexcept { return arena_->mailbox[id_]; }

  HostArena* arena_;
  HostId id_;
};

}  // namespace mobichk::net
