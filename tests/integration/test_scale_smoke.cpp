// City-scale smoke: a 10^4-host run must complete fast, reconcile the
// kernel's event ledger, keep the sparse piggybacks under the dense
// cost, and keep the hot path essentially allocation-free with
// observability off.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/experiment.hpp"

namespace {
std::atomic<unsigned long long> g_allocs{0};
}  // namespace

// Global allocation counter: the steady-state gate below differences it
// around Experiment::run(). (gtest's own bookkeeping happens outside the
// measured region.)
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace mobichk::sim {
namespace {

SimConfig scale_config() {
  SimConfig cfg;
  cfg.network.n_hosts = 10'000;
  cfg.network.n_mss = 500;
  cfg.sim_length = 50.0;  // short horizon: ~50k events, still city-scale state
  cfg.t_switch = 1'000.0;
  cfg.p_switch = 1.0;
  cfg.heterogeneity = 0.0;
  cfg.seed = 42;
  return cfg;
}

TEST(ScaleSmoke, TenThousandHostsCompleteWithinBudget) {
  ExperimentOptions opts;
  opts.queue_kind = des::QueueKind::kCalendar;
  const RunResult r = run_experiment(scale_config(), opts);
  EXPECT_TRUE(r.invariants_ok);
  EXPECT_GT(r.events_executed, 10'000u);
  EXPECT_GT(r.net.app_sent, 0u);
  // Wall-clock budget: the run takes well under a second on any dev
  // machine; 30 s catches an accidental O(n^2) hot path even on the
  // slowest CI runner or under sanitizers.
  EXPECT_LT(r.wall_seconds, 30.0);
  // The city-scale acceptance: sparse TP ships a vanishing fraction of
  // the paper-literal dense cost at n = 10^4 (2n u32s per message).
  const auto& tp = r.by_name("TP");
  EXPECT_GT(tp.piggyback_bytes, 0u);
  EXPECT_LT(tp.piggyback_bytes, tp.piggyback_dense_bytes / 100);
}

TEST(ScaleSmoke, SteadyStateAllocationRateStaysBounded) {
  // Basic-only protocol with probes off: pooled messages, SoA host state,
  // recycled mailboxes and typed event payloads keep the event loop off
  // the heap. What remains per app message is the consistency oracle's
  // bookkeeping (one in-flight node in the harness, one send record in
  // the message log), ~0.9 allocations per event at this config. Gate the
  // *marginal* rate between two horizons — the 10^4-host startup cost
  // (initial checkpoints, arenas) cancels out — so a regression to dense
  // piggybacks (two n-entry vectors per send, >= 2 allocs/event) or any
  // O(n)-per-event allocation fails loudly.
  unsigned long long allocs[2];
  u64 events[2];
  const f64 lengths[2] = {5.0, 50.0};
  for (int i = 0; i < 2; ++i) {
    SimConfig cfg = scale_config();
    cfg.sim_length = lengths[i];
    ExperimentOptions opts;
    opts.queue_kind = des::QueueKind::kCalendar;
    opts.protocols = {core::ProtocolKind::kBasicOnly};
    Experiment exp(cfg, opts);
    const unsigned long long before = g_allocs.load(std::memory_order_relaxed);
    exp.run();
    allocs[i] = g_allocs.load(std::memory_order_relaxed) - before;
    events[i] = exp.result().events_executed;
    ASSERT_TRUE(exp.result().invariants_ok);
  }
  ASSERT_GT(events[1], events[0] + 10'000u);
  const f64 marginal = static_cast<f64>(allocs[1] - allocs[0]) /
                       static_cast<f64>(events[1] - events[0]);
  EXPECT_LT(marginal, 1.5) << allocs[1] - allocs[0] << " allocations over "
                           << events[1] - events[0] << " steady-state events";
}

TEST(ScaleSmoke, DirectoryPopulationsSumToHostCount) {
  // After a run with mobility, the location directory still partitions
  // the population exactly.
  SimConfig cfg = scale_config();
  cfg.network.n_hosts = 2'000;
  cfg.network.n_mss = 100;
  cfg.sim_length = 2'000.0;  // long enough for real handoffs
  ExperimentOptions opts;
  opts.protocols = {core::ProtocolKind::kBcs};
  Experiment exp(cfg, opts);
  exp.run();
  EXPECT_GT(exp.result().net.handoffs, 0u);
  u64 total = 0;
  for (net::MssId m = 0; m < cfg.network.n_mss; ++m) {
    total += exp.network().directory().population(m);
  }
  EXPECT_EQ(total, cfg.network.n_hosts);
}

}  // namespace
}  // namespace mobichk::sim
