#include "core/protocols/tp.hpp"

#include <algorithm>

namespace mobichk::core {

namespace {

/// Find-or-insert keyed lookup in a small sorted vector (flat map).
template <typename T, typename Key>
T& flat_map_get(std::vector<T>& v, Key T::* key, Key k) {
  const auto it = std::lower_bound(v.begin(), v.end(), k,
                                   [key](const T& e, Key x) { return e.*key < x; });
  if (it != v.end() && (*it).*key == k) return *it;
  T fresh{};
  fresh.*key = k;
  return *v.insert(it, fresh);
}

}  // namespace

void TpProtocol::do_bind() {
  phase_send_.assign(ctx_.n_hosts, 0);
  ckpt_count_.assign(ctx_.n_hosts, 0);
  if (encoding_ == TpEncoding::kDense) {
    // Flat n*n arenas: two allocations total, not 2n heap vectors.
    req_.assign(static_cast<usize>(ctx_.n_hosts) * ctx_.n_hosts, 0);
    loc_.assign(static_cast<usize>(ctx_.n_hosts) * ctx_.n_hosts, 0);
  } else {
    self_loc_.assign(ctx_.n_hosts, 0);
    entries_.assign(ctx_.n_hosts, {});
    version_.assign(ctx_.n_hosts, 0);
    send_cur_.assign(ctx_.n_hosts, {});
    recv_cur_.assign(ctx_.n_hosts, {});
  }
}

TpProtocol::SendCursor& TpProtocol::send_cursor(net::HostId src, net::HostId dst) {
  return flat_map_get(send_cur_[src], &SendCursor::dst, static_cast<u32>(dst));
}

TpProtocol::RecvCursor& TpProtocol::recv_cursor(net::HostId dst, net::HostId src) {
  return flat_map_get(recv_cur_[dst], &RecvCursor::src, static_cast<u32>(src));
}

void TpProtocol::host_init(const net::MobileHost& host) {
  if (encoding_ == TpEncoding::kDense) {
    loc_[static_cast<usize>(host.id()) * ctx_.n_hosts + host.id()] = host.mss();
  } else {
    self_loc_[host.id()] = host.mss();
  }
  checkpoint(host, CheckpointKind::kInitial);
}

void TpProtocol::checkpoint(const net::MobileHost& host, CheckpointKind kind, net::MsgId trigger) {
  const net::HostId me = host.id();
  const obs::ForcedRule rule = kind == CheckpointKind::kForced
                                   ? obs::ForcedRule::kReceiveAfterSend
                                   : obs::ForcedRule::kNone;
  if (encoding_ == TpEncoding::kDense) {
    const usize row = static_cast<usize>(me) * ctx_.n_hosts;
    std::vector<u32> dep(req_.begin() + static_cast<std::ptrdiff_t>(row),
                         req_.begin() + static_cast<std::ptrdiff_t>(row + ctx_.n_hosts));
    dep[me] = static_cast<u32>(ckpt_count_[me]);  // anchor ordinal
    loc_[row + me] = host.mss();
    std::vector<u32> dep_loc(loc_.begin() + static_cast<std::ptrdiff_t>(row),
                             loc_.begin() + static_cast<std::ptrdiff_t>(row + ctx_.n_hosts));
    take_checkpoint(host, kind, ckpt_count_[me], std::move(dep), std::move(dep_loc),
                    /*replaced=*/false, rule, trigger);
  } else {
    // Mirror the dense row refresh: the own location observable through
    // location_vector() reflects the MSS at the latest checkpoint.
    self_loc_[me] = host.mss();
    // Snapshot the touched entries plus the own anchor, sorted by host.
    const std::vector<Entry>& es = entries_[me];
    std::vector<DepEntry> deps;
    deps.reserve(es.size() + 1);
    bool own_emitted = false;
    for (const Entry& e : es) {
      if (!own_emitted && e.idx > me) {
        deps.push_back({me, static_cast<u32>(ckpt_count_[me]), host.mss()});
        own_emitted = true;
      }
      deps.push_back({e.idx, e.ckpt, e.loc});
    }
    if (!own_emitted) deps.push_back({me, static_cast<u32>(ckpt_count_[me]), host.mss()});
    take_checkpoint(host, kind, ckpt_count_[me], std::move(deps), ctx_.n_hosts, rule, trigger);
  }
  ++ckpt_count_[me];
  // A fresh interval has no sends yet; phase returns to RECV (Russell's
  // discipline: forced checkpoints are needed only for receives that
  // follow a send *within the same interval*).
  phase_send_[me] = 0;
}

net::Piggyback TpProtocol::make_piggyback(const net::MobileHost& host, net::HostId dst) {
  const net::HostId me = host.id();
  net::Piggyback pb;
  if (encoding_ == TpEncoding::kDense) {
    const usize row = static_cast<usize>(me) * ctx_.n_hosts;
    pb.vec_a.assign(req_.begin() + static_cast<std::ptrdiff_t>(row),
                    req_.begin() + static_cast<std::ptrdiff_t>(row + ctx_.n_hosts));
    // A receiver of this message depends on the sender's *current*
    // interval, so it will require the checkpoint that closes it
    // (ordinal ckpt_count).
    pb.vec_a[me] = static_cast<u32>(ckpt_count_[me]);
    pb.vec_b.assign(loc_.begin() + static_cast<std::ptrdiff_t>(row),
                    loc_.begin() + static_cast<std::ptrdiff_t>(row + ctx_.n_hosts));
    pb.vec_b[me] = host.mss();
  } else {
    SendCursor& sc = send_cursor(me, dst);
    pb.has_delta = true;
    pb.delta_seq = sc.next_seq++;
    pb.dense_rank = 2 * ctx_.n_hosts;
    // Entries changed since the last message to this destination, plus
    // the sender's own entry (always fresh: the receiver needs the
    // sender's current interval and location), in host order.
    const std::vector<Entry>& es = entries_[me];
    bool own_emitted = false;
    for (const Entry& e : es) {
      if (!own_emitted && e.idx > me) {
        pb.deltas.push_back({me, static_cast<u32>(ckpt_count_[me]), host.mss()});
        own_emitted = true;
      }
      if (e.ver > sc.last_ver) pb.deltas.push_back({e.idx, e.ckpt, e.loc});
    }
    if (!own_emitted) pb.deltas.push_back({me, static_cast<u32>(ckpt_count_[me]), host.mss()});
    sc.last_ver = version_[me];
  }
  phase_send_[me] = 1;
  return pb;
}

void TpProtocol::handle_receive(const net::MobileHost& host, const net::AppMessage& msg,
                                const net::Piggyback& pb) {
  const net::HostId me = host.id();
  if (encoding_ == TpEncoding::kSparse) {
    // Per-pair gap detection must run even for messages that force a
    // checkpoint, so it happens before anything else.
    RecvCursor& rc = recv_cursor(me, msg.src);
    if (pb.delta_seq != rc.expect) ++delta_reorders_;
    rc.expect = pb.delta_seq + 1;
  }
  if (phase_send_[me] != 0) {
    checkpoint(host, CheckpointKind::kForced, msg.id);
  }
  // Merge transitive dependencies after checkpointing, so the forced
  // checkpoint excludes this message.
  if (encoding_ == TpEncoding::kDense) {
    const usize row = static_cast<usize>(me) * ctx_.n_hosts;
    for (u32 j = 0; j < ctx_.n_hosts; ++j) {
      if (j == me) continue;
      if (pb.vec_a[j] > req_[row + j]) {
        req_[row + j] = pb.vec_a[j];
        loc_[row + j] = pb.vec_b[j];
      }
    }
  } else {
    std::vector<Entry>& es = entries_[me];
    for (const net::PbDelta& d : pb.deltas) {
      if (d.idx == me) continue;
      Entry& e = flat_map_get(es, &Entry::idx, d.idx);
      if (d.ckpt > e.ckpt) {
        e.ckpt = d.ckpt;
        e.loc = d.loc;
        e.ver = ++version_[me];
      }
    }
  }
}

std::vector<u32> TpProtocol::requirement_vector(net::HostId host) const {
  std::vector<u32> out(ctx_.n_hosts, 0);
  if (encoding_ == TpEncoding::kDense) {
    const usize row = static_cast<usize>(host) * ctx_.n_hosts;
    std::copy(req_.begin() + static_cast<std::ptrdiff_t>(row),
              req_.begin() + static_cast<std::ptrdiff_t>(row + ctx_.n_hosts), out.begin());
  } else {
    for (const Entry& e : entries_.at(host)) out[e.idx] = e.ckpt;
  }
  return out;
}

std::vector<u32> TpProtocol::location_vector(net::HostId host) const {
  std::vector<u32> out(ctx_.n_hosts, 0);
  if (encoding_ == TpEncoding::kDense) {
    const usize row = static_cast<usize>(host) * ctx_.n_hosts;
    std::copy(loc_.begin() + static_cast<std::ptrdiff_t>(row),
              loc_.begin() + static_cast<std::ptrdiff_t>(row + ctx_.n_hosts), out.begin());
  } else {
    for (const Entry& e : entries_.at(host)) out[e.idx] = e.loc;
    out[host] = self_loc_[host];
  }
  return out;
}

void TpProtocol::basic_checkpoint(const net::MobileHost& host) {
  checkpoint(host, CheckpointKind::kBasic);
}

void TpProtocol::handle_cell_switch(const net::MobileHost& host, net::MssId, net::MssId) {
  basic_checkpoint(host);
}

void TpProtocol::handle_disconnect(const net::MobileHost& host) { basic_checkpoint(host); }

}  // namespace mobichk::core
