// BasicOnly: the lower-bound reference — takes only the checkpoints the
// mobile setting mandates (initial, cell switch, disconnection) and no
// forced checkpoints at all. It carries no control information.
//
// It gives no consistency guarantee by itself (recovery must fall back to
// rollback-dependency-graph search, where it exhibits the domino effect);
// its value is as the floor for N_tot in the benches: the gap between a
// protocol and BasicOnly is exactly that protocol's forced-checkpoint
// overhead.
#pragma once

#include <vector>

#include "core/protocol.hpp"

namespace mobichk::core {

class BasicOnlyProtocol final : public CheckpointProtocol {
 public:
  const char* name() const noexcept override { return "BASIC"; }

  net::Piggyback make_piggyback(const net::MobileHost&, net::HostId) override { return {}; }
  void handle_receive(const net::MobileHost&, const net::AppMessage&,
                      const net::Piggyback&) override {}
  void handle_cell_switch(const net::MobileHost& host, net::MssId, net::MssId) override {
    basic_checkpoint(host);
  }
  void handle_disconnect(const net::MobileHost& host) override { basic_checkpoint(host); }

 protected:
  void do_bind() override { count_.assign(ctx_.n_hosts, 0); }

 private:
  void basic_checkpoint(const net::MobileHost& host) {
    take_checkpoint(host, CheckpointKind::kBasic, ++count_.at(host.id()));
  }

  std::vector<u64> count_;
};

}  // namespace mobichk::core
