#include "des/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace mobichk::des {
namespace {

TEST(SplitMix64, ProducesKnownSequence) {
  // Reference values for seed 1234567 from the published SplitMix64
  // algorithm (Steele/Lea/Flood).
  SplitMix64 sm(1234567);
  const u64 a = sm.next_u64();
  const u64 b = sm.next_u64();
  SplitMix64 sm2(1234567);
  EXPECT_EQ(a, sm2.next_u64());
  EXPECT_EQ(b, sm2.next_u64());
  EXPECT_NE(a, b);
}

TEST(SplitMix64, DistinctSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Pcg32, DeterministicAndFullPeriodish) {
  Pcg32 a(42, 54);
  Pcg32 b(42, 54);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, StreamsAreIndependent) {
  Pcg32 a(42, 1), b(42, 2);
  int equal = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.next_u32() == b.next_u32()) ++equal;
  }
  EXPECT_LE(equal, 2);
}

TEST(Xoshiro256ss, DeterministicFromSeed) {
  Xoshiro256ss a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Xoshiro256ss, NoShortCycles) {
  Xoshiro256ss rng(7);
  std::set<u64> seen;
  for (int i = 0; i < 10000; ++i) EXPECT_TRUE(seen.insert(rng.next_u64()).second);
}

TEST(HashKey, StableAndSensitive) {
  EXPECT_EQ(hash_key("workload"), hash_key("workload"));
  EXPECT_NE(hash_key("workload"), hash_key("workloae"));
  EXPECT_NE(hash_key(""), hash_key("a"));
}

TEST(RngStream, Uniform01InRange) {
  RngStream rng(1, "test");
  for (int i = 0; i < 100000; ++i) {
    const f64 u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngStream, Uniform01MeanIsHalf) {
  RngStream rng(123, "mean");
  f64 sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngStream, KeyedStreamsAreIndependent) {
  RngStream a(1, "alpha"), b(1, "beta");
  int equal = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngStream, IndexedStreamsAreIndependent) {
  RngStream a(1, "host", 0), b(1, "host", 1), c(1, "host", 2);
  int equal = 0;
  for (int i = 0; i < 256; ++i) {
    const u64 x = a.next_u64();
    if (x == b.next_u64()) ++equal;
    if (x == c.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngStream, SameSeedKeyIndexReproduces) {
  RngStream a(77, "host", 3), b(77, "host", 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngStream, DifferentRootSeedsDiverge) {
  RngStream a(1, "host", 0), b(2, "host", 0);
  int equal = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace mobichk::des
