#include "sim/cli.hpp"

#include <stdexcept>

namespace mobichk::sim {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::string ArgParser::get_string(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

f64 ArgParser::get_f64(const std::string& key, f64 fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stod(it->second);
}

u64 ArgParser::get_u64(const std::string& key, u64 fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoull(it->second);
}

u32 ArgParser::get_u32(const std::string& key, u32 fallback) const {
  return static_cast<u32>(get_u64(key, fallback));
}

bool ArgParser::get_flag(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return false;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace mobichk::sim
