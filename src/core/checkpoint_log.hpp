// Per-protocol record of every checkpoint taken during a run, with the
// queries the recovery-line builders need.
#pragma once

#include <vector>

#include "core/checkpoint.hpp"
#include "des/relaxed_counter.hpp"
#include "des/types.hpp"
#include "net/ids.hpp"

namespace mobichk::core {

class CheckpointLog {
 public:
  explicit CheckpointLog(u32 n_hosts) : per_host_(n_hosts) {}

  /// Appends a record, assigning its per-host ordinal. `rec.sn` must be
  /// non-decreasing per host (all protocols in this suite guarantee it).
  const CheckpointRecord& append(CheckpointRecord rec);

  u32 n_hosts() const noexcept { return static_cast<u32>(per_host_.size()); }

  const std::vector<CheckpointRecord>& of(net::HostId host) const { return per_host_.at(host); }

  u64 count(net::HostId host) const { return per_host_.at(host).size(); }

  // -- aggregate counts -------------------------------------------------
  u64 total() const noexcept { return total_; }
  u64 initial() const noexcept { return initial_; }
  u64 basic() const noexcept { return basic_; }
  u64 forced() const noexcept { return forced_; }
  /// N_tot in the paper: every checkpoint recorded on stable storage
  /// during the run, excluding the initial ones.
  u64 n_tot() const noexcept { return total_ - initial_; }

  // -- recovery-line queries ---------------------------------------------

  const CheckpointRecord* by_ordinal(net::HostId host, u64 ordinal) const;

  /// First checkpoint of `host` with sn >= `sn` (nullptr if none).
  const CheckpointRecord* first_with_sn_at_least(net::HostId host, u64 sn) const;

  /// Last checkpoint of `host` with sn == `sn` (nullptr if none). For QBC
  /// this is the equivalence-rule replacement that belongs to the line.
  const CheckpointRecord* last_with_sn(net::HostId host, u64 sn) const;

  /// Latest checkpoint of `host` with event_pos <= `pos` (nullptr if none;
  /// never null once the initial checkpoint exists, since its pos is 0).
  const CheckpointRecord* last_at_or_before_pos(net::HostId host, u64 pos) const;

  /// Relabels the *last* checkpoint of `host` with a larger sn. Used by
  /// the coordinated protocol: a checkpoint taken upon disconnection
  /// stands in for every snapshot round initiated while the host is
  /// unreachable, which is sound because the host executes no events
  /// while disconnected. `new_sn` must be >= the current sn.
  void promote_sn(net::HostId host, u64 new_sn);

  /// Maximum sn over all checkpoints of `host` (0 if none).
  u64 max_sn(net::HostId host) const;

  /// Maximum sn over all hosts.
  u64 max_sn() const;

 private:
  std::vector<std::vector<CheckpointRecord>> per_host_;
  // Relaxed atomics: shard-parallel windows append checkpoints for
  // different hosts concurrently (the per-host vectors are owner-local;
  // these aggregates are order-independent sums).
  des::RelaxedCounter total_;
  des::RelaxedCounter initial_;
  des::RelaxedCounter basic_;
  des::RelaxedCounter forced_;
};

}  // namespace mobichk::core
