#include "sim/audit.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mobichk::sim {
namespace {

SimConfig small_config(u64 seed = 1) {
  SimConfig cfg;
  cfg.sim_length = 5'000.0;
  cfg.t_switch = 500.0;
  cfg.p_switch = 0.8;
  cfg.seed = seed;
  return cfg;
}

TEST(AuditDeterminism, AllQueueKindsAgreeOnFig1Point) {
  // Figure-smoke: one Fig. 1 point (homogeneous hosts, no disconnections)
  // must hash identically under binary-heap, calendar and the reference
  // sorted-list queue.
  SimConfig cfg = small_config(42);
  cfg.p_switch = 1.0;      // Fig. 1: P_switch = 1 (handoffs only)
  cfg.heterogeneity = 0.0; // homogeneous hosts
  cfg.t_switch = 1'000.0;
  const AuditReport report = audit_determinism(cfg);
  EXPECT_TRUE(report.deterministic()) << [&] {
    std::ostringstream os;
    report.print(os);
    return os.str();
  }();
  ASSERT_EQ(report.runs.size(), 3u);
  EXPECT_EQ(report.runs[0].queue_name, "binary-heap");
  EXPECT_EQ(report.runs[1].queue_name, "calendar");
  EXPECT_EQ(report.runs[2].queue_name, "sorted-list");
  EXPECT_NE(report.runs[0].trace_hash, 0u);
  for (const AuditRun& run : report.runs) {
    EXPECT_EQ(run.trace_hash, report.runs[0].trace_hash) << run.queue_name;
    EXPECT_EQ(run.events_executed, report.runs[0].events_executed) << run.queue_name;
    EXPECT_TRUE(run.invariants_ok) << run.queue_name;
    ASSERT_EQ(run.n_tot.size(), 3u) << run.queue_name;
    EXPECT_GT(run.n_tot[0].second, 0u);
  }
}

TEST(AuditDeterminism, CoversDisconnectionsAndStorage) {
  // A harder config: disconnections, heterogeneity and storage traffic.
  SimConfig cfg = small_config(7);
  cfg.heterogeneity = 0.5;
  ExperimentOptions opts;
  opts.with_storage = true;
  opts.storage.full_state_bytes = 1000;
  const AuditReport report = audit_determinism(cfg, opts);
  EXPECT_TRUE(report.deterministic());
}

TEST(AuditDeterminism, PrintReportsPassVerdict) {
  const AuditReport report = audit_determinism(small_config(3));
  std::ostringstream os;
  report.print(os);
  EXPECT_NE(os.str().find("PASS"), std::string::npos);
  EXPECT_NE(os.str().find("sorted-list"), std::string::npos);
}

TEST(AuditDeterminism, MismatchesAreReported) {
  // Divergence detection itself must work: doctor a report by hand.
  AuditReport report = audit_determinism(small_config(5));
  ASSERT_TRUE(report.deterministic());
  report.mismatches.push_back("calendar vs binary-heap: trace hash 1 != 2");
  EXPECT_FALSE(report.deterministic());
  std::ostringstream os;
  report.print(os);
  EXPECT_NE(os.str().find("FAIL"), std::string::npos);
  EXPECT_NE(os.str().find("trace hash"), std::string::npos);
}

TEST(AuditDeterminism, GoldenFig1TraceHashIsStable) {
  // Bit-identity anchor for kernel refactors: this hash was captured on
  // the pre-typed-event (std::function) kernel for the Figure 1
  // configuration below. Any change to event representation, queue
  // internals or scheduling-call order that alters the (time, seq)
  // execution sequence shows up here as a hash break — if this test
  // fails, the kernel is no longer trace-compatible and the golden value
  // must only be re-captured after an explicit determinism review.
  SimConfig cfg;
  cfg.sim_length = 50'000.0;
  cfg.t_switch = 1'000.0;
  cfg.p_switch = 1.0;       // Fig. 1: handoffs only, no disconnections
  cfg.heterogeneity = 0.0;  // homogeneous hosts
  cfg.seed = 42;
  constexpr u64 kGoldenHash = 0xd165928ffbf08bb4ULL;
  constexpr u64 kGoldenEvents = 53'541;
  constexpr u64 kGoldenOps = 25'058;
  for (const des::QueueKind kind : des::kAllQueueKinds) {
    ExperimentOptions opts;
    opts.queue_kind = kind;
    opts.collect_trace_hash = true;
    const RunResult r = run_experiment(cfg, opts);
    EXPECT_EQ(r.trace_hash, kGoldenHash) << des::queue_kind_name(kind);
    EXPECT_EQ(r.events_executed, kGoldenEvents) << des::queue_kind_name(kind);
    EXPECT_EQ(r.workload_ops, kGoldenOps) << des::queue_kind_name(kind);
    EXPECT_EQ(r.by_name("TP").n_tot, 5'365u) << des::queue_kind_name(kind);
    EXPECT_EQ(r.by_name("BCS").n_tot, 1'788u) << des::queue_kind_name(kind);
    EXPECT_EQ(r.by_name("QBC").n_tot, 1'598u) << des::queue_kind_name(kind);
    EXPECT_TRUE(r.invariants_ok) << des::queue_kind_name(kind);
  }
}

TEST(Experiment, RunResultExposesReconciledInvariants) {
  const RunResult r = run_experiment(small_config(2));
  EXPECT_TRUE(r.invariants_ok);
  EXPECT_EQ(r.invariants.time_regressions, 0u);
  EXPECT_EQ(r.invariants.executed, r.events_executed);
  EXPECT_GT(r.invariants.max_pending, 0u);
  EXPECT_GE(r.invariants.scheduled, r.invariants.executed + r.invariants.cancels_effective);
}

TEST(LatencyProbe, MultiProtocolStallIsSlotOrderIndependent) {
  // Regression: the probe attached only to slot 0, so with ckpt_latency
  // > 0 the stall pattern (and hence every count) depended on which
  // protocol happened to occupy slot 0. Probing every slot makes the
  // total stall a sum over slots — invariant under reordering.
  SimConfig cfg = small_config(9);
  cfg.ckpt_latency = 0.05;
  ExperimentOptions ab, ba;
  ab.protocols = {core::ProtocolKind::kBcs, core::ProtocolKind::kQbc};
  ba.protocols = {core::ProtocolKind::kQbc, core::ProtocolKind::kBcs};
  const RunResult r_ab = run_experiment(cfg, ab);
  const RunResult r_ba = run_experiment(cfg, ba);
  EXPECT_EQ(r_ab.events_executed, r_ba.events_executed);
  EXPECT_EQ(r_ab.workload_ops, r_ba.workload_ops);
  EXPECT_EQ(r_ab.by_name("BCS").n_tot, r_ba.by_name("BCS").n_tot);
  EXPECT_EQ(r_ab.by_name("QBC").n_tot, r_ba.by_name("QBC").n_tot);
}

TEST(LatencyProbe, SingleProtocolBehaviourUnchanged) {
  // The single-protocol ABL1 path must still stall: a positive latency
  // perturbs the run relative to zero latency.
  SimConfig with = small_config(4), without = small_config(4);
  with.ckpt_latency = 1.0;
  ExperimentOptions opts;
  opts.protocols = {core::ProtocolKind::kTp};
  const RunResult a = run_experiment(with, opts);
  const RunResult b = run_experiment(without, opts);
  EXPECT_NE(a.workload_ops, b.workload_ops);
}

}  // namespace
}  // namespace mobichk::sim
