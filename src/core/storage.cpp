#include "core/storage.hpp"

#include <cmath>
#include <stdexcept>

namespace mobichk::core {

void StorageConfig::validate() const {
  if (full_state_bytes == 0) throw std::invalid_argument("StorageConfig: zero state size");
  if (dirty_rate < 0.0) throw std::invalid_argument("StorageConfig: negative dirty rate");
}

StorageModel::StorageModel(u32 n_hosts, u32 n_mss, StorageConfig cfg)
    : cfg_(cfg), hosts_(n_hosts), per_mss_bytes_(n_mss) {
  cfg_.validate();
  if (cfg_.track_history) history_.resize(n_hosts);
}

const std::vector<u64>& StorageModel::upload_history(net::HostId host) const {
  if (!cfg_.track_history) {
    throw std::logic_error("StorageModel: history tracking is disabled");
  }
  return history_.at(host);
}

u64 StorageModel::record_checkpoint(net::HostId host, net::MssId location, des::Time now) {
  HostState& hs = hosts_.at(host);
  u64 upload = cfg_.full_state_bytes;
  if (cfg_.incremental && hs.has_checkpoint) {
    const f64 dt = now - hs.last_time;
    const f64 dirty_fraction = 1.0 - std::exp(-cfg_.dirty_rate * dt);
    upload = static_cast<u64>(std::ceil(static_cast<f64>(cfg_.full_state_bytes) * dirty_fraction));
    if (hs.last_location != location) {
      // The current MSS lacks the base checkpoint: fetch it (paper §2.2).
      wired_bytes_ += cfg_.full_state_bytes;
      ++transfers_;
    }
  }
  ++writes_;
  wireless_bytes_ += upload;
  if (cfg_.track_history) history_.at(host).push_back(upload);
  per_mss_bytes_.at(location) += upload;
  hs.has_checkpoint = true;
  hs.last_time = now;
  hs.last_location = location;
  return upload;
}

}  // namespace mobichk::core
