#include "core/protocols/uncoordinated.hpp"

#include "net/network.hpp"

namespace mobichk::core {

void UncoordinatedProtocol::host_init(const net::MobileHost& host) {
  CheckpointProtocol::host_init(host);
  if (ctx_.net != nullptr) schedule_timer(host.id());
}

void UncoordinatedProtocol::schedule_timer(net::HostId host_id) {
  des::EventPayload p;
  p.target = this;
  p.kind = des::EventKind::kCheckpointTransfer;
  p.a = host_id;
  ctx_.sim->schedule_after(period_.sample(rng_), p);
}

void UncoordinatedProtocol::on_event(const des::EventPayload& p) {
  const auto host_id = static_cast<net::HostId>(p.a);
  const net::MobileHost& host = ctx_.net->host(host_id);
  // A disconnected host cannot transfer its state to an MSS; it skips
  // the tick (its disconnect checkpoint already covers the gap).
  if (host.connected()) {
    checkpoint(host, CheckpointKind::kForced);
  }
  schedule_timer(host_id);
}

}  // namespace mobichk::core
