// Lightweight structured tracing for simulations.
//
// Trace records are cheap POD tuples; sinks decide what to do with them.
// The HashSink folds every record into a running FNV-1a hash, which the
// integration tests use to prove bit-identical replay across seeds and
// event-queue implementations.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "des/types.hpp"

namespace mobichk::des {

/// Categories of traced happenings (network + checkpoint domain baked in so
/// traces stay POD; unrelated subsystems may use kUser).
enum class TraceKind : u8 {
  kInternalEvent,
  kSend,
  kDeliver,
  kReceive,
  kHandoff,
  kDisconnect,
  kReconnect,
  kBasicCheckpoint,
  kForcedCheckpoint,
  kControlMessage,
  kStorageWrite,
  kStorageTransfer,
  kCrash,
  kRecover,
  kUser,
};

/// Returns a stable display name for a kind.
const char* trace_kind_name(TraceKind kind) noexcept;

/// One trace record. `a` and `b` are kind-specific payloads (message ids,
/// checkpoint indices, MSS ids, ...).
struct TraceRecord {
  Time time = 0.0;
  u32 actor = 0;  ///< Host or MSS id.
  TraceKind kind = TraceKind::kUser;
  u64 a = 0;
  u64 b = 0;
};

/// Consumer of trace records.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceRecord& rec) = 0;
};

/// Discards everything (the default).
class NullSink final : public TraceSink {
 public:
  void record(const TraceRecord&) override {}
};

/// Stores all records in memory (tests, small runs).
class VectorSink final : public TraceSink {
 public:
  void record(const TraceRecord& rec) override { records_.push_back(rec); }
  const std::vector<TraceRecord>& records() const noexcept { return records_; }

 private:
  std::vector<TraceRecord> records_;
};

/// Folds records into an order-sensitive FNV-1a hash.
class HashSink final : public TraceSink {
 public:
  void record(const TraceRecord& rec) override;
  u64 hash() const noexcept { return hash_; }

 private:
  void mix(u64 v) noexcept;
  u64 hash_ = 0xCBF29CE484222325ULL;
};

/// Dispatches one record to several sinks.
class TeeSink final : public TraceSink {
 public:
  void attach(TraceSink* sink) { sinks_.push_back(sink); }
  void record(const TraceRecord& rec) override {
    for (auto* s : sinks_) s->record(rec);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace mobichk::des
