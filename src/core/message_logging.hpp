// Message logging at the MSSs — the complementary recovery technique
// from the rollback-recovery literature the paper builds on (its ref
// [9], the Elnozahy–Johnson–Wang survey).
//
// Idea: MSSs already see every application message; if they retain them
// (pessimistic, station-based logging) then after a single-host failure
// only the *failed* host rolls back — to its own latest checkpoint — and
// re-executes deterministically, replaying its logged in-bound messages
// in receive order. Survivors keep running: no orphan can materialize
// because every message the failed host "un-receives" is replayed
// identically. The price is MSS log storage, which can be garbage
// collected up to the stable recovery line exactly like checkpoints.
//
// This module prices both sides:
//  * logging_rollback(): the rollback result under logging (failed host
//    only), directly comparable with rollback_to_consistent() /
//    index_rollback();
//  * LogStorageModel: bytes the MSS logs hold, with and without GC.
#pragma once

#include <vector>

#include "core/checkpoint_log.hpp"
#include "core/message_log.hpp"
#include "core/recovery.hpp"
#include "des/types.hpp"
#include "net/ids.hpp"

namespace mobichk::core {

/// Rollback under station-based message logging: only `failed_host`
/// rolls back, to its latest checkpoint at or before its failure
/// position; every other host keeps its failure state (virtual member).
/// The deliveries the failed host replays are counted in
/// `replayed_deliveries`.
struct LoggingRollbackResult {
  RollbackResult rollback;
  u64 replayed_deliveries = 0;  ///< In-bound messages replayed from MSS logs.
};

LoggingRollbackResult logging_rollback(const CheckpointLog& log, const MessageLog& messages,
                                       const std::vector<u64>& fail_pos, net::HostId failed_host);

/// MSS log-storage accounting for one run.
struct LogStorageStats {
  u64 messages_logged = 0;
  u64 bytes_logged = 0;       ///< Payload + piggyback of every logged message.
  u64 messages_collectible = 0;  ///< Logged messages older than the stable line.
  u64 bytes_collectible = 0;
};

/// Prices the MSS logs of a finished run. A delivery is collectible once
/// both its send and its receive are inside the stable line
/// (`stable_line` from analyze_gc): no conceivable recovery replays it.
/// `bytes_per_message` should match the run's payload + piggyback size.
LogStorageStats log_storage_stats(const MessageLog& messages, const GlobalCheckpoint& stable_line,
                                  u64 bytes_per_message);

}  // namespace mobichk::core
