// Self-contained HTML run report: one file, inline CSS, no scripts and
// no external assets — it can be archived as a CI artifact and opened
// years later without a renderer toolchain.
//
// The report is assembled from a RunResult (and optionally a SweepView
// for sweep runs): configuration echo, run summary, per-protocol table,
// the host-time phase breakdown and shard-balance bars when the run
// carried a profiler (prof.* metrics present), the full metric catalog
// grouped by prefix, the recovery story when crashes executed, the
// data-plane totals when the subsystem was on, and the sweep ledger
// with per-point wall-cost bars.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

namespace mobichk::sim {

struct JsonValue;

/// Display-ready view of one sweep: the serialized summary statistics
/// rather than the live Tally accumulators, so it can be built either
/// from an in-process FigureResult or from its JSON document (a Tally
/// cannot be reconstructed from its published moments).
struct SweepCellView {
  f64 mean = 0.0;
  f64 ci95 = 0.0;
  f64 min = 0.0;
  f64 max = 0.0;
  u64 replications = 0;
};

struct SweepView {
  std::string title;
  std::vector<f64> t_switch_values;
  std::vector<std::string> protocol_names;
  std::vector<std::vector<SweepCellView>> cells;  ///< [point][protocol]
  std::vector<u32> seeds_used;
  std::vector<bool> target_met;
  SweepLedger ledger;

  static SweepView from(const FigureResult& fig);
  /// Parses a write_json(FigureResult) document. Absent members stay
  /// default; malformed members throw std::invalid_argument.
  static SweepView from_json(const JsonValue& json);
};

/// Writes the report document. `sweep` may be nullptr (single-run
/// report); when set, the sweep sections are appended.
void write_html_report(std::ostream& os, const RunResult& run, const SweepView* sweep);

/// Convenience wrapper: write to `path`; throws std::runtime_error
/// naming the path when the file cannot be opened or the stream fails.
void write_html_report(const std::string& path, const RunResult& run, const SweepView* sweep);

}  // namespace mobichk::sim
