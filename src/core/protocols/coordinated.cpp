#include "core/protocols/coordinated.hpp"

#include "net/network.hpp"

namespace mobichk::core {

void CoordinatedProtocol::on_event(const des::EventPayload& p) {
  if (p.sub == kSubInitiate) {
    initiate_round();
  } else {
    marker_arrive(static_cast<net::HostId>(p.a), p.b);
  }
}

void CoordinatedProtocol::host_init(const net::MobileHost& host) {
  CheckpointProtocol::host_init(host);
  if (!scheduler_armed_ && ctx_.net != nullptr) {
    scheduler_armed_ = true;
    des::EventPayload p;
    p.target = this;
    p.kind = des::EventKind::kCheckpointTransfer;
    p.sub = kSubInitiate;
    ctx_.sim->schedule_after(interval_, p);
  }
}

void CoordinatedProtocol::initiate_round() {
  const u64 round = next_round_++;
  des::EventPayload marker;
  marker.target = this;
  marker.kind = des::EventKind::kCheckpointTransfer;
  marker.sub = kSubMarker;
  marker.b = round;
  for (net::HostId h = 0; h < ctx_.n_hosts; ++h) {
    // One marker per host: locate it and deliver through its MSS.
    ++control_messages_;
    marker.a = h;
    ctx_.sim->schedule_after(marker_latency_, marker);
  }
  des::EventPayload next;
  next.target = this;
  next.kind = des::EventKind::kCheckpointTransfer;
  next.sub = kSubInitiate;
  ctx_.sim->schedule_after(interval_, next);
}

void CoordinatedProtocol::marker_arrive(net::HostId host_id, u64 round) {
  const net::MobileHost& host = ctx_.net->host(host_id);
  if (!host.connected()) {
    // Unreachable: the disconnect checkpoint stands in for this round
    // (sound: the host executes no events while disconnected). Relabel it
    // so the recovery-line builder finds it under the round index.
    if (round > round_.at(host_id)) {
      round_.at(host_id) = round;
      ctx_.log->promote_sn(host_id, round);
      if (ctx_.timeline != nullptr) {
        obs::ProbeEvent e;
        e.t = ctx_.now();
        e.kind = obs::ProbeKind::kSnPromote;
        e.actor = static_cast<i32>(host_id);
        e.track = ctx_.slot;
        e.a = round;
        ctx_.timeline->record(e);
      }
    }
    return;
  }
  join_round(host, round);
}

void CoordinatedProtocol::join_round(const net::MobileHost& host, u64 round, net::MsgId trigger) {
  u64& r = round_.at(host.id());
  if (round <= r) return;
  r = round;
  take_checkpoint(host, CheckpointKind::kForced, r, obs::ForcedRule::kMarker, trigger);
}

net::Piggyback CoordinatedProtocol::make_piggyback(const net::MobileHost& host, net::HostId) {
  net::Piggyback pb;
  pb.sn = round_.at(host.id());
  pb.has_sn = true;
  return pb;
}

void CoordinatedProtocol::handle_receive(const net::MobileHost& host, const net::AppMessage& msg,
                                         const net::Piggyback& pb) {
  // Round numbers on application messages keep rounds consistent without
  // FIFO channels: checkpoint before processing a message from a newer
  // round.
  join_round(host, pb.sn, msg.id);
}

void CoordinatedProtocol::handle_cell_switch(const net::MobileHost& host, net::MssId, net::MssId) {
  take_checkpoint(host, CheckpointKind::kBasic, round_.at(host.id()));
}

void CoordinatedProtocol::handle_disconnect(const net::MobileHost& host) {
  take_checkpoint(host, CheckpointKind::kBasic, round_.at(host.id()));
}

}  // namespace mobichk::core
