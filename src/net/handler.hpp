// The upcall interface between the network substrate and the checkpointing
// layer. `net` knows only this interface; `core` implements it.
#pragma once

#include "net/ids.hpp"
#include "net/message.hpp"

namespace mobichk::net {

class MobileHost;

/// Receives host-level events from the network substrate.
///
/// A checkpointing protocol (or a bundle of protocols run as paired
/// observers) implements this to piggyback control information on sends,
/// react to receives, and take basic checkpoints on mobility events.
class HostEventHandler {
 public:
  virtual ~HostEventHandler() = default;

  /// Host enters the computation (initial placement). Take the initial
  /// checkpoint here if the protocol requires one.
  virtual void on_host_init(MobileHost& host) = 0;

  /// Called at send time; must fill `msg.pb` with the protocol's control
  /// information and update protocol state (e.g. TP's phase flag).
  virtual void on_send(MobileHost& host, AppMessage& msg) = 0;

  /// Called when the application consumes a delivered message. The
  /// protocol may take a forced checkpoint *before* the message is
  /// processed.
  virtual void on_receive(MobileHost& host, const AppMessage& msg) = 0;

  /// Called after the host has switched to MSS `to`; the paper mandates a
  /// basic checkpoint here.
  virtual void on_cell_switch(MobileHost& host, MssId from, MssId to) = 0;

  /// Called when the host voluntarily disconnects; the paper mandates a
  /// basic checkpoint here.
  virtual void on_disconnect(MobileHost& host) = 0;

  /// Called when the host reconnects to MSS `mss`.
  virtual void on_reconnect(MobileHost& host, MssId mss) = 0;
};

/// Convenience no-op implementation (tests, plain-network examples).
class NullHostEventHandler : public HostEventHandler {
 public:
  void on_host_init(MobileHost&) override {}
  void on_send(MobileHost&, AppMessage&) override {}
  void on_receive(MobileHost&, const AppMessage&) override {}
  void on_cell_switch(MobileHost&, MssId, MssId) override {}
  void on_disconnect(MobileHost&) override {}
  void on_reconnect(MobileHost&, MssId) override {}
};

}  // namespace mobichk::net
