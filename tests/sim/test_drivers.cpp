// Workload and mobility driver tests: do the stochastic drivers produce
// the rates and state transitions the paper's model specifies?
#include <gtest/gtest.h>

#include "core/harness.hpp"
#include "core/protocols/basic_only.hpp"
#include "des/simulator.hpp"
#include "net/network.hpp"
#include "sim/mobility.hpp"
#include "sim/workload.hpp"

namespace mobichk::sim {
namespace {

struct Rig {
  explicit Rig(const SimConfig& cfg)
      : config(cfg), net(sim, cfg.network, cfg.seed), harness(net) {
    harness.add_protocol(std::make_unique<core::BasicOnlyProtocol>());
    net.start();
  }

  SimConfig config;
  des::Simulator sim;
  net::Network net;
  core::ProtocolHarness harness;
};

TEST(WorkloadDriver, CommunicationRateMatchesCommMean) {
  SimConfig cfg;
  cfg.sim_length = 20'000.0;
  cfg.comm_mean = 20.0;
  cfg.p_switch = 1.0;
  cfg.t_switch = 1e9;  // effectively no mobility
  Rig rig(cfg);
  WorkloadDriver workload(rig.sim, rig.net, cfg);
  workload.start();
  rig.sim.run_until(cfg.sim_length);
  const f64 expected_ops = 10.0 * cfg.sim_length / cfg.comm_mean;  // 10 hosts
  EXPECT_NEAR(static_cast<f64>(workload.ops_executed()), expected_ops, expected_ops * 0.05);
}

TEST(WorkloadDriver, SendFractionMatchesPs) {
  SimConfig cfg;
  cfg.sim_length = 50'000.0;
  cfg.p_send = 0.4;
  Rig rig(cfg);
  WorkloadDriver workload(rig.sim, rig.net, cfg);
  workload.start();
  rig.sim.run_until(cfg.sim_length);
  const f64 frac = static_cast<f64>(workload.sends()) /
                   static_cast<f64>(workload.ops_executed());
  EXPECT_NEAR(frac, 0.4, 0.02);
  EXPECT_EQ(workload.sends() + workload.receives() + workload.empty_receives(),
            workload.ops_executed());
}

TEST(WorkloadDriver, InternalEventsFillGaps) {
  SimConfig cfg;
  cfg.sim_length = 10'000.0;
  cfg.comm_mean = 20.0;
  cfg.internal_mean = 1.0;
  Rig rig(cfg);
  WorkloadDriver workload(rig.sim, rig.net, cfg);
  workload.start();
  rig.sim.run_until(cfg.sim_length);
  // ~comm_mean internal events per communication.
  const f64 ratio = static_cast<f64>(workload.internal_events()) /
                    static_cast<f64>(workload.ops_executed());
  EXPECT_NEAR(ratio, cfg.comm_mean, cfg.comm_mean * 0.1);
}

TEST(WorkloadDriver, PausedHostDoesNothing) {
  SimConfig cfg;
  Rig rig(cfg);
  WorkloadDriver workload(rig.sim, rig.net, cfg);
  workload.start();
  for (net::HostId h = 0; h < rig.net.n_hosts(); ++h) {
    rig.net.disconnect(h);
    workload.pause(h);
  }
  rig.sim.run_until(5'000.0);
  EXPECT_EQ(workload.ops_executed(), 0u);
}

TEST(WorkloadDriver, ResumeRestartsTheLoop) {
  SimConfig cfg;
  Rig rig(cfg);
  WorkloadDriver workload(rig.sim, rig.net, cfg);
  workload.start();
  rig.net.disconnect(0);
  workload.pause(0);
  rig.sim.run_until(1'000.0);
  rig.net.reconnect(0, 0);
  workload.resume(0);
  const u64 before = workload.ops_executed();
  rig.sim.run_until(3'000.0);
  EXPECT_GT(workload.ops_executed(), before + 10);
}

TEST(MobilityDriver, HandoffRateMatchesResidence) {
  SimConfig cfg;
  cfg.sim_length = 100'000.0;
  cfg.t_switch = 1'000.0;
  cfg.p_switch = 1.0;  // never disconnect
  Rig rig(cfg);
  MobilityDriver mobility(rig.sim, rig.net, cfg, nullptr);
  mobility.start();
  rig.sim.run_until(cfg.sim_length);
  // Expected handoffs = n_hosts * length / t_switch = 1000.
  EXPECT_NEAR(static_cast<f64>(rig.net.stats().handoffs), 1000.0, 150.0);
  EXPECT_EQ(rig.net.stats().disconnects, 0u);
}

TEST(MobilityDriver, DisconnectShareMatchesPSwitch) {
  SimConfig cfg;
  cfg.sim_length = 200'000.0;
  cfg.t_switch = 1'000.0;
  cfg.p_switch = 0.8;
  Rig rig(cfg);
  MobilityDriver mobility(rig.sim, rig.net, cfg, nullptr);
  mobility.start();
  rig.sim.run_until(cfg.sim_length);
  const f64 handoffs = static_cast<f64>(rig.net.stats().handoffs);
  const f64 disconnects = static_cast<f64>(rig.net.stats().disconnects);
  // 20% of cell entries end in a disconnection.
  EXPECT_NEAR(disconnects / (handoffs + disconnects), 0.2, 0.05);
  EXPECT_NEAR(static_cast<f64>(rig.net.stats().reconnects), disconnects, 2.0);
}

TEST(MobilityDriver, HeterogeneousHostsMoveFaster) {
  SimConfig cfg;
  cfg.sim_length = 50'000.0;
  cfg.t_switch = 2'000.0;
  cfg.p_switch = 1.0;
  cfg.heterogeneity = 0.5;  // hosts 0-4 move 10x faster
  Rig rig(cfg);
  MobilityDriver mobility(rig.sim, rig.net, cfg, nullptr);
  mobility.start();
  rig.sim.run_until(cfg.sim_length);
  // Count basic checkpoints per host as a proxy for handoffs per host.
  const auto& log = rig.harness.log(0);
  u64 fast = 0, slow = 0;
  for (net::HostId h = 0; h < 5; ++h) fast += log.count(h);
  for (net::HostId h = 5; h < 10; ++h) slow += log.count(h);
  EXPECT_GT(fast, slow * 5);
}

TEST(MobilityDriver, RingModelOnlyVisitsNeighbors) {
  SimConfig cfg;
  cfg.sim_length = 20'000.0;
  cfg.t_switch = 100.0;
  cfg.p_switch = 1.0;
  cfg.mobility_model = MobilityModelKind::kRingNeighbor;
  des::Simulator sim;
  des::VectorSink sink;
  net::Network net(sim, cfg.network, cfg.seed, &sink);
  core::ProtocolHarness harness(net, &sink);
  harness.add_protocol(std::make_unique<core::BasicOnlyProtocol>());
  net.start();
  MobilityDriver mobility(sim, net, cfg, nullptr);
  mobility.start();
  sim.run_until(cfg.sim_length);
  u64 handoffs = 0;
  for (const auto& rec : sink.records()) {
    if (rec.kind != des::TraceKind::kHandoff) continue;
    ++handoffs;
    const auto from = static_cast<u32>(rec.a);
    const auto to = static_cast<u32>(rec.b);
    const u32 n = cfg.network.n_mss;
    const bool neighbor = to == (from + 1) % n || to == (from + n - 1) % n;
    EXPECT_TRUE(neighbor) << "handoff " << from << " -> " << to;
  }
  EXPECT_GT(handoffs, 100u);
}

TEST(MobilityDriver, ParetoResidenceKeepsTheMean) {
  SimConfig cfg;
  cfg.sim_length = 200'000.0;
  cfg.t_switch = 1'000.0;
  cfg.p_switch = 1.0;
  cfg.mobility_model = MobilityModelKind::kParetoResidence;
  Rig rig(cfg);
  MobilityDriver mobility(rig.sim, rig.net, cfg, nullptr);
  mobility.start();
  rig.sim.run_until(cfg.sim_length);
  // Same mean residence => comparable handoff count (heavy tail, so the
  // tolerance is wider than the exponential case).
  EXPECT_NEAR(static_cast<f64>(rig.net.stats().handoffs), 2000.0, 600.0);
}

TEST(MobilityDriver, DisconnectionDurationRoughlyExponential1000) {
  SimConfig cfg;
  cfg.sim_length = 400'000.0;
  cfg.t_switch = 1'000.0;
  cfg.p_switch = 0.0;  // every mobility event is a disconnect
  des::Simulator sim;
  des::VectorSink sink;
  net::Network net(sim, cfg.network, cfg.seed, &sink);
  core::ProtocolHarness harness(net, &sink);
  harness.add_protocol(std::make_unique<core::BasicOnlyProtocol>());
  net.start();
  MobilityDriver mobility(sim, net, cfg, nullptr);
  mobility.start();
  sim.run_until(cfg.sim_length);
  // Match disconnects to subsequent reconnects per host and average.
  std::vector<f64> last_disconnect(10, -1.0);
  f64 total = 0.0;
  u64 count = 0;
  for (const auto& rec : sink.records()) {
    if (rec.kind == des::TraceKind::kDisconnect) {
      last_disconnect.at(rec.actor) = rec.time;
    } else if (rec.kind == des::TraceKind::kReconnect && last_disconnect.at(rec.actor) >= 0.0) {
      total += rec.time - last_disconnect.at(rec.actor);
      ++count;
      last_disconnect.at(rec.actor) = -1.0;
    }
  }
  ASSERT_GT(count, 100u);
  EXPECT_NEAR(total / static_cast<f64>(count), 1000.0, 150.0);
}

}  // namespace
}  // namespace mobichk::sim
