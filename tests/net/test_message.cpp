#include "net/message.hpp"

#include <gtest/gtest.h>

namespace mobichk::net {
namespace {

TEST(Piggyback, EmptyHasZeroWireBytes) {
  const Piggyback pb;
  EXPECT_EQ(pb.wire_bytes(), 0u);
}

TEST(Piggyback, SequenceNumberCostsEightBytes) {
  Piggyback pb;
  pb.sn = 42;
  pb.has_sn = true;
  EXPECT_EQ(pb.wire_bytes(), sizeof(u64));
}

TEST(Piggyback, SnWithoutFlagIsFree) {
  // An sn value left over in the struct does not ride the wire unless
  // the protocol claims it.
  Piggyback pb;
  pb.sn = 42;
  EXPECT_EQ(pb.wire_bytes(), 0u);
}

TEST(Piggyback, VectorsCostFourBytesPerEntry) {
  Piggyback pb;
  pb.vec_a.assign(10, 0);
  pb.vec_b.assign(10, 0);
  EXPECT_EQ(pb.wire_bytes(), 20 * sizeof(u32));
}

TEST(Piggyback, TagCostsFourBytesWhenCarried) {
  Piggyback pb;
  pb.tag = 7;
  pb.has_tag = true;
  EXPECT_EQ(pb.wire_bytes(), sizeof(u32));
  // Regression: a carried tag whose value happens to be 0 still rides
  // the wire; the old value-gated accounting silently dropped it.
  pb.tag = 0;
  EXPECT_EQ(pb.wire_bytes(), sizeof(u32));
}

TEST(Piggyback, TagWithoutFlagIsFree) {
  // Mirrors the sn rule: a leftover tag value is not wire data unless
  // the protocol claims it.
  Piggyback pb;
  pb.tag = 7;
  EXPECT_EQ(pb.wire_bytes(), 0u);
}

TEST(AppMessage, WireBytesIsPayloadPlusPiggyback) {
  AppMessage msg;
  msg.payload_bytes = 256;
  msg.pb.has_sn = true;
  EXPECT_EQ(msg.wire_bytes(), 256 + sizeof(u64));
}

TEST(AppMessage, DefaultsAreEmpty) {
  const AppMessage msg;
  EXPECT_EQ(msg.id, 0u);
  EXPECT_EQ(msg.send_pos, 0u);
  EXPECT_EQ(msg.wire_bytes(), 0u);
}

}  // namespace
}  // namespace mobichk::net
