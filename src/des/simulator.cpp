#include "des/simulator.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace mobichk::des {

Simulator::Simulator(QueueKind queue_kind) : queue_(make_event_queue(queue_kind)) {}

EventHandle Simulator::enqueue(Time t, EventEntry entry) {
  if (t < now_) throw std::invalid_argument("Simulator::schedule_at: time is in the past");
  entry.time = t;
  entry.seq = next_seq_++;
  EventHandle handle;
  if (prof_ != nullptr) {
    const u64 t0 = obs::prof_now_ns();
    handle = queue_->push(std::move(entry));
    prof_->queue_push.add(obs::prof_now_ns() - t0);
  } else {
    handle = queue_->push(std::move(entry));
  }
  ++invariants_.scheduled;
  if (queue_->size() > invariants_.max_pending) invariants_.max_pending = queue_->size();
  if (probe_ != nullptr) probe_->pushes->add();
  return handle;
}

EventHandle Simulator::schedule_at(Time t, const EventPayload& payload) {
  assert(payload.kind != EventKind::kClosure && "typed payload must not be kClosure");
  assert(payload.target != nullptr && "typed payload needs a target");
  EventEntry entry;
  entry.payload = payload;
  return enqueue(t, std::move(entry));
}

EventHandle Simulator::schedule_at(Time t, EventFn fn) {
  EventEntry entry;
  entry.fn = std::move(fn);
  return enqueue(t, std::move(entry));
}

void Simulator::cancel(EventHandle handle) {
  if (!handle.valid()) return;
  ++invariants_.cancels_requested;
  bool effective;
  if (prof_ != nullptr) {
    const u64 t0 = obs::prof_now_ns();
    effective = queue_->cancel(handle);
    prof_->queue_cancel.add(obs::prof_now_ns() - t0);
  } else {
    effective = queue_->cancel(handle);
  }
  if (effective) {
    ++invariants_.cancels_effective;
    if (probe_ != nullptr) probe_->cancels->add();
  }
}

void Simulator::advance_to(const EventEntry& e) noexcept {
  if (e.time < now_) {
    ++invariants_.time_regressions;
    assert(false && "event queue returned an event in the past");
  }
#ifndef NDEBUG
  assert(fired_seqs_.insert(e.seq).second && "event seq popped twice");
#endif
  now_ = e.time;
}

void Simulator::pop_and_fire_timed() {
  const u64 t0 = obs::prof_now_ns();
  EventEntry e = queue_->pop();
  const u64 t1 = obs::prof_now_ns();
  prof_->queue_pop.add(t1 - t0);
  advance_to(e);
  if (probe_ != nullptr) observe_pop(e);
  const usize k = static_cast<usize>(e.payload.kind);
  fire(e);
  // Dispatch time covers the handler body (and the negligible clock
  // advance); queue maintenance is accounted separately above.
  prof_->dispatch[k < obs::ProfLane::kMaxEventKinds ? k : 0].add(obs::prof_now_ns() - t1);
  ++prof_->events;
  ++executed_;
  ++invariants_.executed;
}

u64 Simulator::run_until(Time t_end) {
  assert(t_end >= now_);
  u64 count = 0;
  stop_requested_ = false;
  while (!queue_->empty()) {
    // peek_time (not pop/push-back): re-pushing would file the entry under
    // a fresh slot and silently invalidate every outstanding handle to it.
    if (queue_->peek_time() > t_end) break;
    pop_and_fire();
    ++count;
    if (stop_requested_) return count;
  }
  now_ = t_end;
  return count;
}

u64 Simulator::run_window(Time h_excl, Time cap) {
  u64 count = 0;
  for (;;) {
    const Time t = queue_->peek_time_below(h_excl);
    if (t == kNoEventBelow || t > cap) break;
    pop_and_fire();
    ++count;
  }
  return count;
}

void Simulator::step_one() {
  assert(!queue_->empty() && "step_one() on empty queue");
  pop_and_fire();
}

u64 Simulator::run() {
  u64 count = 0;
  stop_requested_ = false;
  while (!queue_->empty()) {
    pop_and_fire();
    ++count;
    if (stop_requested_) break;
  }
  return count;
}

}  // namespace mobichk::des
