// Umbrella header: the public surface of the mobichk library.
//
// Examples, benches and downstream tools should include this header and
// nothing else; everything re-exported here is API the project commits
// to. Headers NOT listed here (src/README.md marks them) are internal —
// event-queue implementations, protocol internals, pooled slot tables —
// and may change shape between commits without notice.
//
// What this gives you, layer by layer:
//   des::Simulator, des::QueueKind          the event kernel
//   des::VectorSink / write_trace           trace capture + portable dump
//   net::Network, net::NetworkStats         hosts, MSSs, channels, mobility
//   core::make_protocol, ProtocolHarness    the checkpointing protocols
//   core::rollback_to_consistent, gc        recovery lines + garbage collection
//   obs::MetricRegistry, RunObserver        counters/gauges/histograms + the
//   obs::write_metrics_jsonl/chrome_trace   checkpoint timeline exporters
//   obs::RecoveryLineTracker, CausalMonitor online recovery-line tracking
//   sim::print_checkpoint_chain, --dot      run explainer (causal chains)
//   sim::SimConfig, Experiment, RunResult   one end-to-end run
//   sim::FigureSpec, run_figure             adaptive-precision sweeps
//   sim::audit_determinism                  cross-queue determinism audit
//   sim::ArgParser, FlagSet                 CLI flag schema + --help
//   sim::write_json / *_from_json           result (de)serialization
//   sim::ExperimentConfig                   nested run config (JSON files)
//   storage::StableStorage, DataPlane       checkpoint bytes + service queues
#pragma once

#include "core/factory.hpp"
#include "core/gc.hpp"
#include "core/harness.hpp"
#include "core/recovery.hpp"
#include "core/recovery_time.hpp"
#include "core/replay.hpp"
#include "des/simulator.hpp"
#include "des/trace_io.hpp"
#include "net/network.hpp"
#include "obs/causal.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/timeline.hpp"
#include "sim/audit.hpp"
#include "sim/cli.hpp"
#include "sim/config.hpp"
#include "sim/experiment.hpp"
#include "sim/experiment_config.hpp"
#include "sim/explain.hpp"
#include "sim/faults.hpp"
#include "sim/html_report.hpp"
#include "sim/mobility.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "sim/workload.hpp"
#include "storage/data_plane.hpp"
#include "storage/stable_storage.hpp"
