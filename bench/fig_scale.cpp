// FIG-SCALE: city-scale population sweep — the open-system scalability
// answer, measured instead of argued.
//
// Sweeps the host count over decades (default 10 .. 100'000) at a fixed
// total event budget (the horizon shrinks as n grows) and reports, per
// point and per protocol:
//  * N_tot (the paper's checkpoint count),
//  * encoded piggyback bytes actually shipped (sparse deltas for TP),
//  * the dense-equivalent bytes the paper-literal full vectors would have
//    cost, and
//  * end-to-end kernel throughput (events/s).
//
// The dense TP encoding is O(n) state per message and O(n^2) memory in
// the population, so a 10^5-host run only completes at all because the
// sparse encoding pays for dependencies that actually formed; the
// encoded/dense ratio printed here is the measured win.
//
// Flags:
//   --point=N     run a single population instead of the sweep (CI smoke)
//   --events=B    approximate event budget per point (default 2'000'000)
//   --queue=NAME  binary-heap | calendar | sorted-list (default calendar)
//   --out=PATH    also write the rows as a JSON array
//   --shards=LIST shard-sweep mode: run the n=10^4 and n=10^5 points under
//                 every shard count in the comma list (e.g. 1,2,4,8),
//                 verify bit-identity against shards=1, and write
//                 events/s-vs-shards rows (BENCH_shard.json by default)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mobichk.hpp"

namespace {

using namespace mobichk;

struct ScaleRow {
  u32 hosts = 0;
  u32 mss = 0;
  f64 sim_length = 0.0;
  u64 events = 0;
  f64 wall_seconds = 0.0;
  u64 app_sent = 0;
  u64 tp_n_tot = 0;
  u64 tp_encoded_bytes = 0;
  u64 tp_dense_bytes = 0;
};

/// Keeps every point at roughly the same total event count so the sweep
/// finishes in minutes: horizon = budget / n, clamped to stay meaningful.
f64 horizon_for(u32 hosts, f64 event_budget) {
  return std::clamp(event_budget / static_cast<f64>(hosts) / 4.0, 50.0, 50'000.0);
}

/// Cells scale with the population (paper ratio: 2 MHs per MSS) but are
/// capped: the wired topology precomputes all-pairs hops (n_mss^2).
u32 mss_for(u32 hosts) { return std::clamp(hosts / 20u, 5u, 512u); }

ScaleRow run_point(u32 hosts, f64 event_budget, des::QueueKind queue) {
  sim::SimConfig cfg;
  cfg.network.n_hosts = hosts;
  cfg.network.n_mss = mss_for(hosts);
  cfg.sim_length = horizon_for(hosts, event_budget);
  cfg.t_switch = 1'000.0;
  cfg.p_switch = 1.0;
  cfg.heterogeneity = 0.0;
  cfg.seed = 42;

  sim::ExperimentOptions opts;
  opts.queue_kind = queue;

  const auto t0 = std::chrono::steady_clock::now();
  const sim::RunResult r = sim::run_experiment(cfg, opts);
  const f64 wall =
      std::chrono::duration<f64>(std::chrono::steady_clock::now() - t0).count();

  ScaleRow row;
  row.hosts = hosts;
  row.mss = cfg.network.n_mss;
  row.sim_length = cfg.sim_length;
  row.events = r.events_executed;
  row.wall_seconds = wall;
  row.app_sent = r.net.app_sent;
  const auto& tp = r.by_name("TP");
  row.tp_n_tot = tp.n_tot;
  row.tp_encoded_bytes = tp.piggyback_bytes;
  row.tp_dense_bytes = tp.piggyback_dense_bytes;
  return row;
}

void print_row(const ScaleRow& row) {
  const f64 eps = static_cast<f64>(row.events) / row.wall_seconds;
  const f64 ratio = row.tp_dense_bytes > 0
                        ? static_cast<f64>(row.tp_encoded_bytes) /
                              static_cast<f64>(row.tp_dense_bytes)
                        : 0.0;
  std::printf("%8u %6u %9.0f %10llu %9.3f %10.3g %10llu %14llu %14llu %8.4f\n", row.hosts,
              row.mss, row.sim_length, static_cast<unsigned long long>(row.events),
              row.wall_seconds, eps, static_cast<unsigned long long>(row.tp_n_tot),
              static_cast<unsigned long long>(row.tp_encoded_bytes),
              static_cast<unsigned long long>(row.tp_dense_bytes), ratio);
}

void write_json(const std::string& path, const std::vector<ScaleRow>& rows,
                des::QueueKind queue) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"fig_scale\",\n  \"queue\": \"%s\",\n  \"rows\": [\n",
               des::queue_kind_name(queue));
  for (usize i = 0; i < rows.size(); ++i) {
    const ScaleRow& r = rows[i];
    std::fprintf(out,
                 "    {\"hosts\": %u, \"mss\": %u, \"sim_length\": %.1f, \"events\": %llu, "
                 "\"wall_seconds\": %.4f, \"events_per_second\": %.1f, \"app_sent\": %llu, "
                 "\"tp_n_tot\": %llu, \"tp_encoded_bytes\": %llu, \"tp_dense_bytes\": %llu}%s\n",
                 r.hosts, r.mss, r.sim_length, static_cast<unsigned long long>(r.events),
                 r.wall_seconds, static_cast<f64>(r.events) / r.wall_seconds,
                 static_cast<unsigned long long>(r.app_sent),
                 static_cast<unsigned long long>(r.tp_n_tot),
                 static_cast<unsigned long long>(r.tp_encoded_bytes),
                 static_cast<unsigned long long>(r.tp_dense_bytes),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

struct ShardRow {
  u32 hosts = 0;
  u32 shards = 0;
  u64 events = 0;
  f64 wall_seconds = 0.0;
  f64 speedup = 1.0;        ///< events/s relative to shards=1 at this n.
  u64 trace_hash = 0;
  u64 sync_rounds = 0;
  f64 barrier_stall_seconds = 0.0;
};

/// Shard-sweep mode: events/s vs shard count at fixed populations, with a
/// bit-identity cross-check against the sequential engine (the sweep is a
/// perf artifact AND a determinism gate).
int run_shard_sweep(const std::string& shard_list, u64 point, f64 budget, des::QueueKind queue,
                    const std::string& out_path) {
  std::vector<u32> counts;
  std::istringstream ss(shard_list);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) counts.push_back(static_cast<u32>(std::stoul(token)));
  }
  if (counts.empty() || counts.front() != 1) counts.insert(counts.begin(), 1);

  std::vector<u32> populations{10'000u, 100'000u};
  if (point > 0) populations = {static_cast<u32>(point)};

  std::printf("FIG-SCALE --shards — events/s vs shard count (%s queue, %u hardware threads)\n",
              des::queue_kind_name(queue), std::thread::hardware_concurrency());
  std::printf("%8s %7s %10s %9s %10s %8s %12s %10s\n", "hosts", "shards", "events", "wall(s)",
              "events/s", "speedup", "sync-rounds", "stall(s)");

  std::vector<ShardRow> rows;
  bool identical = true;
  for (const u32 n : populations) {
    sim::SimConfig cfg;
    cfg.network.n_hosts = n;
    cfg.network.n_mss = mss_for(n);
    cfg.sim_length = horizon_for(n, budget);
    cfg.t_switch = 1'000.0;
    cfg.p_switch = 1.0;
    cfg.heterogeneity = 0.0;
    cfg.seed = 42;
    u64 base_hash = 0;
    f64 base_eps = 0.0;
    for (const u32 shards : counts) {
      sim::ExperimentOptions opts;
      opts.queue_kind = queue;
      opts.collect_trace_hash = true;
      opts.shards = shards;
      const auto t0 = std::chrono::steady_clock::now();
      const sim::RunResult r = sim::run_experiment(cfg, opts);
      const f64 wall =
          std::chrono::duration<f64>(std::chrono::steady_clock::now() - t0).count();
      const f64 eps = static_cast<f64>(r.events_executed) / wall;
      ShardRow row;
      row.hosts = n;
      row.shards = shards;
      row.events = r.events_executed;
      row.wall_seconds = wall;
      row.trace_hash = r.trace_hash;
      row.sync_rounds = r.sync_rounds;
      row.barrier_stall_seconds = r.barrier_stall_seconds;
      if (shards == 1) {
        base_hash = r.trace_hash;
        base_eps = eps;
      }
      row.speedup = base_eps > 0.0 ? eps / base_eps : 1.0;
      if (r.trace_hash != base_hash) identical = false;
      rows.push_back(row);
      std::printf("%8u %7u %10llu %9.3f %10.3g %7.2fx %12llu %10.3f%s\n", n, shards,
                  static_cast<unsigned long long>(row.events), wall, eps, row.speedup,
                  static_cast<unsigned long long>(row.sync_rounds), row.barrier_stall_seconds,
                  row.trace_hash == base_hash ? "" : "  HASH MISMATCH");
    }
  }

  if (!out_path.empty()) {
    std::FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"benchmark\": \"fig_scale_shards\",\n  \"queue\": \"%s\",\n"
                 "  \"hardware_threads\": %u,\n  \"rows\": [\n",
                 des::queue_kind_name(queue), std::thread::hardware_concurrency());
    for (usize i = 0; i < rows.size(); ++i) {
      const ShardRow& r = rows[i];
      std::fprintf(out,
                   "    {\"hosts\": %u, \"shards\": %u, \"events\": %llu, "
                   "\"wall_seconds\": %.4f, \"events_per_second\": %.1f, \"speedup\": %.3f, "
                   "\"trace_hash\": \"%016llx\", \"sync_rounds\": %llu, "
                   "\"barrier_stall_seconds\": %.4f}%s\n",
                   r.hosts, r.shards, static_cast<unsigned long long>(r.events), r.wall_seconds,
                   static_cast<f64>(r.events) / r.wall_seconds, r.speedup,
                   static_cast<unsigned long long>(r.trace_hash),
                   static_cast<unsigned long long>(r.sync_rounds), r.barrier_stall_seconds,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
  }

  // The hard gate here is bit-identity: every shard count must reproduce
  // the sequential trace exactly. Throughput is recorded as a trajectory;
  // the >= 1.8x speedup bar lives in kernel_smoke, guarded on hardware
  // parallelism actually being available.
  if (!identical) {
    std::fprintf(stderr, "FAIL: sharded trace diverged from the sequential engine\n");
    return 1;
  }
  std::printf("PASS (all shard counts bit-identical to the sequential engine)\n");
  return 0;
}

int run(int argc, char** argv) {
  sim::FlagSet flags("fig_scale [flags]");
  flags.add("point", sim::FlagType::kUInt, "0", "run only this host count (0 = full sweep)")
      .add("events", sim::FlagType::kUInt, "2000000", "approximate event budget per point")
      .add("queue", sim::FlagType::kString, "calendar", "event queue implementation")
      .add("out", sim::FlagType::kString, "", "also write rows to this JSON path")
      .add("shards", sim::FlagType::kString, "",
           "shard-sweep mode: comma list of shard counts (e.g. 1,2,4,8)");
  const sim::ArgParser args = flags.parse(argc, argv);
  if (args.get_flag("help")) {
    flags.print_help(std::cout);
    return 0;
  }
  const u64 point = args.get_u64("point", 0);
  const f64 budget = static_cast<f64>(args.get_u64("events", 2'000'000));
  const des::QueueKind queue = des::queue_kind_from_name(args.get_string("queue", "calendar"));

  const std::string shard_list = args.get_string("shards", "");
  if (!shard_list.empty()) {
    return run_shard_sweep(shard_list, point, budget, queue,
                           args.get_string("out", "BENCH_shard.json"));
  }

  std::vector<u32> populations;
  if (point > 0) {
    populations.push_back(static_cast<u32>(point));
  } else {
    populations = {10u, 100u, 1'000u, 10'000u, 100'000u};
  }

  std::printf("FIG-SCALE — population sweep on the %s queue (sparse TP piggybacks)\n",
              des::queue_kind_name(queue));
  std::printf("%8s %6s %9s %10s %9s %10s %10s %14s %14s %8s\n", "hosts", "mss", "length",
              "events", "wall(s)", "events/s", "TP N_tot", "TP enc(B)", "TP dense(B)",
              "enc/dense");

  std::vector<ScaleRow> rows;
  for (const u32 n : populations) {
    rows.push_back(run_point(n, budget, queue));
    print_row(rows.back());
  }

  const std::string out_path = args.get_string("out", "");
  if (!out_path.empty()) write_json(out_path, rows, queue);

  // Sanity gates (keep this binary usable as a CI smoke): the sparse
  // encoding must never exceed the dense-equivalent cost, and every
  // requested point must actually have executed events.
  for (const ScaleRow& r : rows) {
    if (r.tp_encoded_bytes > r.tp_dense_bytes) {
      std::fprintf(stderr, "FAIL: n=%u encoded %llu > dense %llu\n", r.hosts,
                   static_cast<unsigned long long>(r.tp_encoded_bytes),
                   static_cast<unsigned long long>(r.tp_dense_bytes));
      return 1;
    }
    if (r.events == 0) {
      std::fprintf(stderr, "FAIL: n=%u executed no events\n", r.hosts);
      return 1;
    }
  }
  std::printf("PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
