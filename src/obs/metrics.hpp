// Observability metrics: a typed registry of counters, gauges and
// fixed-bucket histograms, plus an RAII scoped timer.
//
// Design constraints (see docs/observability.md):
//  * Instrumented hot paths hold pre-resolved `Counter*` / `Gauge*` /
//    `FixedHistogram*` pointers behind a single branch-on-null probe
//    pointer, so a run with observability off pays one predictable branch
//    and allocates nothing.
//  * Metric updates never allocate: histograms pre-size their buckets at
//    registration time, and counters/gauges are plain words.
//  * Registration is idempotent by name (re-registering returns the
//    existing metric) and addresses are stable for the registry's life,
//    so probes can cache raw pointers.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "des/types.hpp"

namespace mobichk::obs {

/// Monotonic counter (events dispatched, bytes on the wire, ...).
class Counter {
 public:
  void add(u64 n = 1) noexcept { value_ += n; }
  u64 value() const noexcept { return value_; }

 private:
  u64 value_ = 0;
};

/// Last-write-wins instantaneous value (queue depth, high-water marks).
class Gauge {
 public:
  void set(f64 v) noexcept { value_ = v; }
  /// Keeps the maximum of the current and the offered value.
  void max_of(f64 v) noexcept {
    if (v > value_) value_ = v;
  }
  f64 value() const noexcept { return value_; }

 private:
  f64 value_ = 0.0;
};

/// Fixed-range histogram with uniform buckets plus under/overflow.
/// Buckets are allocated once at registration; add() never allocates.
class FixedHistogram {
 public:
  FixedHistogram(f64 lo, f64 hi, u32 buckets);

  void add(f64 x) noexcept;

  u64 count() const noexcept { return count_; }
  f64 sum() const noexcept { return sum_; }
  f64 mean() const noexcept { return count_ > 0 ? sum_ / static_cast<f64>(count_) : 0.0; }
  f64 min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  f64 max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  u64 underflow() const noexcept { return underflow_; }
  u64 overflow() const noexcept { return overflow_; }
  f64 lo() const noexcept { return lo_; }
  f64 hi() const noexcept { return hi_; }
  usize buckets() const noexcept { return counts_.size(); }
  u64 bucket_count(usize i) const { return counts_.at(i); }
  f64 bucket_lo(usize i) const noexcept { return lo_ + width_ * static_cast<f64>(i); }
  f64 bucket_hi(usize i) const noexcept { return lo_ + width_ * static_cast<f64>(i + 1); }

  /// Approximate quantile: linear interpolation inside the bucket.
  /// Underflow counts at lo, overflow at hi.
  f64 quantile(f64 q) const noexcept;

 private:
  f64 lo_;
  f64 hi_;
  f64 width_;
  std::vector<u64> counts_;
  u64 count_ = 0;
  f64 sum_ = 0.0;
  f64 min_ = 0.0;
  f64 max_ = 0.0;
  u64 underflow_ = 0;
  u64 overflow_ = 0;
};

/// RAII wall-clock timer: on destruction (or stop()) records the elapsed
/// seconds into a histogram. A null histogram makes the whole object a
/// no-op — the clock is never read.
class ScopedTimer {
 public:
  explicit ScopedTimer(FixedHistogram* hist) noexcept;
  ~ScopedTimer() { stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records now (idempotent) and returns the elapsed seconds (0 when
  /// the timer is a no-op).
  f64 stop() noexcept;

 private:
  FixedHistogram* hist_;
  u64 start_ns_ = 0;
};

/// One exported scalar. Histograms expand into several samples
/// (.count / .mean / .p50 / .p95 / .max).
struct MetricSample {
  std::string name;
  f64 value = 0.0;
};

/// Owner of all metrics of one observed run. Registration is by unique
/// name; returned references stay valid for the registry's lifetime.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Registers (or returns the existing) metric under `name`. Throws
  /// std::invalid_argument when the name is already bound to a metric of
  /// a different kind (or, for histograms, a different shape).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  FixedHistogram& histogram(std::string_view name, f64 lo, f64 hi, u32 buckets);

  /// Lookup without registration; nullptr when absent or wrong kind.
  const Counter* find_counter(std::string_view name) const noexcept;
  const Gauge* find_gauge(std::string_view name) const noexcept;
  const FixedHistogram* find_histogram(std::string_view name) const noexcept;

  /// Number of registered metrics.
  usize size() const noexcept { return entries_.size(); }

  /// Flattens every metric into scalar samples, in registration order
  /// (deterministic for goldens and JSON output).
  std::vector<MetricSample> snapshot() const;

  /// Visits (name, kind) in registration order; kind is one of
  /// "counter", "gauge", "histogram".
  struct Entry {
    std::string name;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<FixedHistogram> histogram;
  };
  const std::vector<Entry>& entries() const noexcept { return entries_; }

 private:
  Entry* find_entry(std::string_view name) noexcept;
  const Entry* find_entry(std::string_view name) const noexcept;

  std::vector<Entry> entries_;
};

}  // namespace mobichk::obs
